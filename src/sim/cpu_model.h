// CpuModel: charges CPU instruction costs against the SimClock.
//
// Section 3.1 of the paper shows that with synchronous disk writes, a 15x
// faster CPU speeds up file creation by only 20% — the CPU is decoupled from
// the result only if the file system stops waiting on the disk. To reproduce
// that experiment the file systems charge a configurable number of
// instructions per operation, and the model converts instructions to
// simulated seconds at a configurable MIPS rating.
#ifndef LOGFS_SRC_SIM_CPU_MODEL_H_
#define LOGFS_SRC_SIM_CPU_MODEL_H_

#include <atomic>
#include <cstdint>

#include "src/sim/sim_clock.h"

namespace logfs {

// Instruction budgets for file-system operations. These are rough but
// plausible path lengths for a 1990 UNIX kernel; only their order of
// magnitude matters (microseconds of CPU vs milliseconds of disk).
struct CpuCosts {
  uint64_t create_instructions = 20'000;          // Namei + inode alloc + dirent insert.
  uint64_t remove_instructions = 15'000;          // Namei + dirent delete + inode free.
  uint64_t lookup_instructions = 5'000;          // Per path component.
  uint64_t per_block_instructions = 2'000;        // Block map walk + cache bookkeeping.
  uint64_t per_kilobyte_copy_instructions = 250;  // memcpy user<->cache.
  uint64_t segment_build_per_block = 1'500;       // LFS summary + layout work.
};

class CpuModel {
 public:
  // `mips`: millions of instructions per second. The paper's Sun-4/260 is
  // about 10 MIPS; the Section 3.1 comparison uses 0.9 and 14 MIPS.
  CpuModel(SimClock* clock, double mips) : clock_(clock), mips_(mips) {}

  double mips() const { return mips_; }
  void set_mips(double mips) { mips_ = mips; }

  const CpuCosts& costs() const { return costs_; }
  void set_costs(const CpuCosts& costs) { costs_ = costs; }

  // Advance the clock by `instructions` worth of CPU time.
  void Charge(uint64_t instructions) {
    clock_->Advance(static_cast<double>(instructions) / (mips_ * 1e6));
  }

  uint64_t total_instructions() const {
    return total_instructions_.load(std::memory_order_relaxed);
  }

  // Charge and account (used by the file systems; one model may be shared
  // by every shard of a sharded mount, so the tally is atomic).
  void ChargeTracked(uint64_t instructions) {
    total_instructions_.fetch_add(instructions, std::memory_order_relaxed);
    Charge(instructions);
  }

 private:
  SimClock* clock_;
  double mips_;
  CpuCosts costs_;
  std::atomic<uint64_t> total_instructions_{0};
};

}  // namespace logfs

#endif  // LOGFS_SRC_SIM_CPU_MODEL_H_
