// SimClock: the single source of simulated time.
//
// logfs is a deterministic single-threaded simulation. All components that
// consume time (the disk model, the CPU model) advance one shared SimClock;
// everything that measures time (benchmark harnesses, the cache's write-back
// age policy, checkpoint intervals) reads it. Wall-clock time never appears
// in results, which makes every experiment bit-reproducible.
#ifndef LOGFS_SRC_SIM_SIM_CLOCK_H_
#define LOGFS_SRC_SIM_SIM_CLOCK_H_

#include <cassert>

namespace logfs {

class SimClock {
 public:
  SimClock() = default;

  // Current simulated time in seconds since simulation start.
  double Now() const { return now_seconds_; }

  // Advance time; negative advances are a programming error.
  void Advance(double seconds) {
    assert(seconds >= 0.0);
    now_seconds_ += seconds;
  }

  // Jump directly to a later time (used by workload generators to model
  // idle periods, e.g. "run the cleaner at night").
  void AdvanceTo(double seconds) {
    assert(seconds >= now_seconds_);
    now_seconds_ = seconds;
  }

 private:
  double now_seconds_ = 0.0;
};

// Deterministic fixed-interval cadence: Due(now) reports whether the next
// deadline has arrived and, if so, re-arms it at now + interval. The first
// call is always due, and a large jump in `now` (idle period, AdvanceTo)
// fires once rather than once per missed interval — periodic consumers like
// the telemetry sampler want "at most one per interval", never a catch-up
// burst that would distort rate computation.
class PeriodicTimer {
 public:
  explicit PeriodicTimer(double interval_seconds) : interval_(interval_seconds) {}

  bool Due(double now) {
    if (armed_ && now < next_) return false;
    armed_ = true;
    next_ = now + interval_;
    return true;
  }

  // Forget the deadline; the next Due() fires unconditionally.
  void Reset() { armed_ = false; }
  double interval() const { return interval_; }

 private:
  double interval_;
  double next_ = 0.0;
  bool armed_ = false;
};

}  // namespace logfs

#endif  // LOGFS_SRC_SIM_SIM_CLOCK_H_
