// SimClock: the single source of simulated time.
//
// logfs started as a deterministic single-threaded simulation. All
// components that consume time (the disk model, the CPU model) advance one
// shared SimClock; everything that measures time (benchmark harnesses, the
// cache's write-back age policy, checkpoint intervals) reads it. Wall-clock
// time never appears in results, which makes every single-threaded
// experiment bit-reproducible.
//
// The sharded front-end (src/lfs/sharded_lfs.h) runs shard operations from
// many threads against the one clock, so the counter is atomic: Advance is
// a CAS add, AdvanceTo a CAS max. Single-threaded callers observe exactly
// the sequential semantics the plain double had; concurrent callers get a
// monotone, race-free clock whose advances interleave (each shard's delta
// is applied exactly once — simulated time then measures the *sum* of
// concurrent work, which is the single-spindle view the disk model wants).
#ifndef LOGFS_SRC_SIM_SIM_CLOCK_H_
#define LOGFS_SRC_SIM_SIM_CLOCK_H_

#include <atomic>
#include <cassert>

namespace logfs {

class SimClock {
 public:
  SimClock() = default;

  // Current simulated time in seconds since simulation start.
  double Now() const { return now_seconds_.load(std::memory_order_relaxed); }

  // Advance time; negative advances are a programming error.
  void Advance(double seconds) {
    assert(seconds >= 0.0);
    double cur = now_seconds_.load(std::memory_order_relaxed);
    while (!now_seconds_.compare_exchange_weak(cur, cur + seconds,
                                               std::memory_order_relaxed)) {
    }
  }

  // Jump directly to a later time (used by workload generators to model
  // idle periods, e.g. "run the cleaner at night"). Under concurrency this
  // is a max: a target another thread has already passed is a no-op rather
  // than a step backwards.
  void AdvanceTo(double seconds) {
    double cur = now_seconds_.load(std::memory_order_relaxed);
    while (cur < seconds && !now_seconds_.compare_exchange_weak(
                                cur, seconds, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<double> now_seconds_{0.0};
};

// Deterministic fixed-interval cadence: Due(now) reports whether the next
// deadline has arrived and, if so, re-arms it at now + interval. The first
// call is always due, and a large jump in `now` (idle period, AdvanceTo)
// fires once rather than once per missed interval — periodic consumers like
// the telemetry sampler want "at most one per interval", never a catch-up
// burst that would distort rate computation. Not itself thread-safe: every
// timer instance belongs to one component (one shard), whose lock covers it.
class PeriodicTimer {
 public:
  explicit PeriodicTimer(double interval_seconds) : interval_(interval_seconds) {}

  bool Due(double now) {
    if (armed_ && now < next_) return false;
    armed_ = true;
    next_ = now + interval_;
    return true;
  }

  // Forget the deadline; the next Due() fires unconditionally.
  void Reset() { armed_ = false; }
  double interval() const { return interval_; }

 private:
  double interval_;
  double next_ = 0.0;
  bool armed_ = false;
};

}  // namespace logfs

#endif  // LOGFS_SRC_SIM_SIM_CLOCK_H_
