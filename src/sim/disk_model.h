// DiskModel: service-time model for a single-spindle disk.
//
// The paper's evaluation hardware was a WREN IV behind a Sun SCSI3 HBA:
// 1.3 MB/s maximum transfer bandwidth and 17.5 ms average seek. Every result
// in the paper is a consequence of the ratio between positioning time
// (seek + rotation) and transfer time, so reproducing that ratio reproduces
// the paper's shapes. The model:
//
//   service(start, count) =
//       positioning(start)            if start != current head position
//     + count * kSectorSize / bandwidth
//
//   positioning(start) = seek(cylinder distance) + average rotational latency
//   seek(d) = min_seek + (max_seek - min_seek) * sqrt(d / total)   (d > 0)
//
// The sqrt seek curve is the standard disk-modelling approximation (short
// seeks are dominated by settle time, long seeks by acceleration).
#ifndef LOGFS_SRC_SIM_DISK_MODEL_H_
#define LOGFS_SRC_SIM_DISK_MODEL_H_

#include <cstdint>

namespace logfs {

inline constexpr uint32_t kSectorSize = 512;

struct DiskModelParams {
  // WREN IV defaults (paper Section 5).
  double min_seek_ms = 3.0;        // Track-to-track.
  double max_seek_ms = 30.0;       // Full-stroke.
  double rotation_ms = 16.67;      // Full revolution at 3600 RPM.
  double bandwidth_bytes_per_sec = 1.3e6;
  // Fixed per-request cost (controller/SCSI command processing). Default 0
  // keeps the paper calibration; set ~1 ms to model late-80s SCSI overhead
  // (the read-ahead ablation does).
  double command_overhead_ms = 0.0;

  // Sectors per notional cylinder, used to convert sector distance into
  // seek distance. WREN IV-ish: ~26 sectors/track * 9 heads.
  uint64_t sectors_per_cylinder = 234;
};

class DiskModel {
 public:
  DiskModel(DiskModelParams params, uint64_t total_sectors);

  // Service time in seconds for an access of `count` sectors starting at
  // `start`, with the head currently parked after sector `head`. A transfer
  // that begins exactly at the head position is sequential: it pays only
  // transfer time.
  double ServiceTimeSeconds(uint64_t start, uint64_t count, uint64_t head) const;

  // Positioning-only component (0.0 for sequential access).
  double PositioningSeconds(uint64_t start, uint64_t head) const;

  // Transfer-only component.
  double TransferSeconds(uint64_t count) const;

  const DiskModelParams& params() const { return params_; }

 private:
  DiskModelParams params_;
  uint64_t total_cylinders_;
};

}  // namespace logfs

#endif  // LOGFS_SRC_SIM_DISK_MODEL_H_
