// EventQueue: deterministic discrete-event scheduling on the SimClock.
//
// The serve layer (src/serve/) turns the single-threaded simulation into a
// many-party system: clients, the transport, and the server all schedule
// work at future instants (message deliveries, retransmission timers, lease
// expiries). All of it funnels through one EventQueue so execution order is
// a pure function of (timestamp, insertion order) — two events due at the
// same instant run in the order they were scheduled, which keeps every
// multi-client run bit-reproducible.
//
// RunOne() advances the shared clock to the event's due time before firing
// it. The clock may already be *past* the due time (the previous event's
// handler performed disk I/O that consumed simulated time); the event then
// fires late without rewinding the clock — exactly a busy server working
// through its backlog.
#ifndef LOGFS_SRC_SIM_EVENT_QUEUE_H_
#define LOGFS_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "src/sim/sim_clock.h"

namespace logfs {

class EventQueue {
 public:
  explicit EventQueue(SimClock* clock) : clock_(clock) {}

  // Schedules `fn` to run at absolute sim time `at` (clamped to now for
  // past deadlines). Returns an id usable with Cancel.
  uint64_t ScheduleAt(double at, std::function<void()> fn) {
    if (at < clock_->Now()) {
      at = clock_->Now();
    }
    const uint64_t id = next_id_++;
    heap_.push(Event{at, id, std::move(fn)});
    ++live_;
    return id;
  }

  uint64_t ScheduleAfter(double delay, std::function<void()> fn) {
    return ScheduleAt(clock_->Now() + (delay > 0.0 ? delay : 0.0), std::move(fn));
  }

  // Lazily cancels a pending event; a fired or unknown id is a no-op.
  void Cancel(uint64_t id) {
    if (cancelled_.size() <= id) {
      cancelled_.resize(id + 1, false);
    }
    if (!cancelled_[id]) {
      cancelled_[id] = true;
      if (live_ > 0) --live_;
    }
  }

  bool empty() const { return live_ == 0; }
  size_t pending() const { return live_; }
  // Due time of the next live event; meaningless when empty().
  double NextDue() const { return heap_.empty() ? 0.0 : heap_.top().at; }

  // Fires the earliest live event, advancing the clock to its due time if
  // the clock is still behind it. Returns false when no event is pending.
  bool RunOne() {
    while (!heap_.empty()) {
      Event event = heap_.top();
      heap_.pop();
      if (event.id < cancelled_.size() && cancelled_[event.id]) {
        continue;
      }
      --live_;
      if (event.at > clock_->Now()) {
        clock_->AdvanceTo(event.at);
      }
      event.fn();
      return true;
    }
    return false;
  }

  // Drains the queue (events may schedule further events). `max_events`
  // bounds runaway feedback loops; returns the number of events fired.
  size_t RunUntilIdle(size_t max_events = SIZE_MAX) {
    size_t fired = 0;
    while (fired < max_events && RunOne()) {
      ++fired;
    }
    return fired;
  }

  // Fires every event due at or before `deadline`, then advances the clock
  // to `deadline` (if it is still behind). Returns the number fired.
  size_t RunUntil(double deadline, size_t max_events = SIZE_MAX) {
    size_t fired = 0;
    while (fired < max_events && !heap_.empty()) {
      // Skip cancelled tombstones without consuming the deadline check.
      if (heap_.top().id < cancelled_.size() && cancelled_[heap_.top().id]) {
        heap_.pop();
        continue;
      }
      if (heap_.top().at > deadline) {
        break;
      }
      if (RunOne()) ++fired;
    }
    if (clock_->Now() < deadline) {
      clock_->AdvanceTo(deadline);
    }
    return fired;
  }

 private:
  struct Event {
    double at = 0.0;
    uint64_t id = 0;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among same-instant events.
    }
  };

  SimClock* clock_;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::vector<bool> cancelled_;
  size_t live_ = 0;
  uint64_t next_id_ = 0;
};

}  // namespace logfs

#endif  // LOGFS_SRC_SIM_EVENT_QUEUE_H_
