#include "src/sim/disk_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace logfs {

DiskModel::DiskModel(DiskModelParams params, uint64_t total_sectors) : params_(params) {
  assert(params_.sectors_per_cylinder > 0);
  total_cylinders_ = std::max<uint64_t>(1, total_sectors / params_.sectors_per_cylinder);
}

double DiskModel::PositioningSeconds(uint64_t start, uint64_t head) const {
  if (start == head) {
    return 0.0;  // Sequential continuation: no seek, no rotational loss.
  }
  const uint64_t start_cyl = start / params_.sectors_per_cylinder;
  const uint64_t head_cyl = head / params_.sectors_per_cylinder;
  const uint64_t distance = start_cyl > head_cyl ? start_cyl - head_cyl : head_cyl - start_cyl;
  double seek_ms = 0.0;
  if (distance > 0) {
    const double frac = static_cast<double>(distance) / static_cast<double>(total_cylinders_);
    seek_ms = params_.min_seek_ms + (params_.max_seek_ms - params_.min_seek_ms) * std::sqrt(frac);
  }
  // Average rotational latency: half a revolution. Paid on every
  // repositioning, including same-cylinder jumps.
  const double rotation_ms = params_.rotation_ms / 2.0;
  return (seek_ms + rotation_ms) / 1e3;
}

double DiskModel::TransferSeconds(uint64_t count) const {
  return static_cast<double>(count) * kSectorSize / params_.bandwidth_bytes_per_sec;
}

double DiskModel::ServiceTimeSeconds(uint64_t start, uint64_t count, uint64_t head) const {
  return params_.command_overhead_ms / 1e3 + PositioningSeconds(start, head) +
         TransferSeconds(count);
}

}  // namespace logfs
