#include "src/lfs/lfs_check.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "src/util/crc32.h"

namespace logfs {

std::string LfsCheckReport::Summary() const {
  std::ostringstream os;
  os << (ok() ? "CLEAN" : "CORRUPT") << ": " << files << " files, " << directories
     << " directories, " << total_bytes << " bytes, " << blocks_checksum_verified
     << " blocks checksum-verified";
  if (checksum_failures > 0) {
    os << ", " << checksum_failures << " checksum failures";
  }
  if (quarantined_segments > 0) {
    os << ", " << quarantined_segments << " quarantined segments";
  }
  if (read_only) {
    os << " [read-only]";
  }
  if (repairs_applied > 0) {
    os << ", " << repairs_applied << " repairs applied";
  }
  for (const auto& [seg, failures] : segment_checksum_failures) {
    os << "\n  segment " << seg << ": " << failures << " checksum failures";
  }
  for (const std::string& problem : problems) {
    os << "\n  problem: " << problem;
  }
  return os.str();
}

Result<LfsCheckReport> LfsChecker::Check(bool verify_data) {
  LfsCheckReport report;
  auto complain = [&report](std::string message) {
    if (report.problems.size() < 64) {
      report.problems.push_back(std::move(message));
    }
  };
  // Quiesce: every structure must be on disk (or exactly tracked). A mount
  // demoted to read-only cannot sync, but it also cannot dirty anything
  // further, so the check proceeds on whatever is durable.
  Status quiesce = fs_->Sync();
  report.read_only = fs_->read_only();
  if (!quiesce.ok() && !report.read_only) {
    return quiesce;
  }

  const LfsSuperblock& sb = fs_->sb_;
  const InodeMap& imap = fs_->imap_;
  const uint64_t segment_area_end =
      sb.first_segment_sector + static_cast<uint64_t>(sb.num_segments) * sb.SectorsPerSegment();
  auto addr_in_range = [&](DiskAddr addr) {
    return addr >= sb.first_segment_sector && addr < segment_area_end;
  };

  // --- 1. imap -> on-disk inode blocks ---
  std::vector<std::byte> block(sb.block_size);
  for (uint32_t slot = 0; slot < imap.max_inodes(); ++slot) {
    const InodeNum ino = imap.InoAtSlot(slot);
    const ImapEntry& entry = imap.GetSlot(slot);
    if (!entry.allocated) {
      continue;
    }
    if (entry.block_addr == kNoAddr || !addr_in_range(entry.block_addr)) {
      complain("ino " + std::to_string(ino) + " has bad inode-block address");
      continue;
    }
    if (!fs_->ReadBlockAt(entry.block_addr, block).ok()) {
      complain("ino " + std::to_string(ino) + " inode block unreadable");
      continue;
    }
    Result<std::vector<PackedInode>> packed = DecodeInodeBlock(block);
    if (!packed.ok()) {
      complain("ino " + std::to_string(ino) + " inode block undecodable");
      continue;
    }
    if (entry.slot >= packed->size()) {
      complain("ino " + std::to_string(ino) + " slot out of range");
      continue;
    }
    const PackedInode& packed_slot = (*packed)[entry.slot];
    if (packed_slot.ino != ino) {
      complain("ino " + std::to_string(ino) + " slot tagged with ino " +
               std::to_string(packed_slot.ino));
    }
    if (packed_slot.version != entry.version) {
      complain("ino " + std::to_string(ino) + " on-disk version stale");
    }
  }

  // --- 2. directory tree walk: reachability, nlink, dot entries ---
  // Shard mode (check_namespace_ false): the tree spans shards, so walk the
  // inode map instead — every allocated inode must stat and every file's
  // content must read end to end; reachability/nlink belong to the global
  // sharded checker.
  if (!check_namespace_) {
    for (uint32_t slot = 0; slot < imap.max_inodes(); ++slot) {
      const InodeNum ino = imap.InoAtSlot(slot);
      if (!imap.GetSlot(slot).allocated) {
        continue;
      }
      Result<FileStat> stat = fs_->Stat(ino);
      if (!stat.ok()) {
        complain("stat of ino " + std::to_string(ino) + " failed");
        continue;
      }
      if (stat->type == FileType::kDirectory) {
        ++report.directories;
        if (!fs_->ReadDir(ino).ok()) {
          complain("dir " + std::to_string(ino) + " unreadable");
        }
      } else {
        ++report.files;
        if (verify_data) {
          report.total_bytes += stat->size;
          std::vector<std::byte> content(stat->size);
          if (stat->size > 0) {
            Result<uint64_t> n = fs_->Read(ino, 0, content);
            if (!n.ok() || *n != stat->size) {
              complain("file ino " + std::to_string(ino) + " content unreadable");
            }
          }
        }
      }
    }
  }
  std::unordered_map<InodeNum, uint32_t> name_refs;     // Non-dot references.
  std::unordered_map<InodeNum, uint32_t> child_dirs;    // Subdirectory count.
  std::unordered_map<InodeNum, InodeNum> parent_of;
  std::unordered_set<InodeNum> visited;
  std::deque<InodeNum> queue;
  if (check_namespace_) {
    queue.push_back(kRootIno);
    visited.insert(kRootIno);
    parent_of[kRootIno] = kRootIno;
  }
  while (!queue.empty()) {
    const InodeNum dir = queue.front();
    queue.pop_front();
    ++report.directories;
    Result<std::vector<DirEntry>> entries = fs_->ReadDir(dir);
    if (!entries.ok()) {
      complain("dir " + std::to_string(dir) + " unreadable: " + entries.status().ToString());
      continue;
    }
    bool saw_dot = false;
    bool saw_dotdot = false;
    for (const DirEntry& entry : entries.value()) {
      if (!imap.IsValid(entry.ino) || !imap.Get(entry.ino).allocated) {
        complain("dir " + std::to_string(dir) + " entry '" + entry.name +
                 "' references unallocated ino " + std::to_string(entry.ino));
        continue;
      }
      if (entry.name == ".") {
        saw_dot = true;
        if (entry.ino != dir) {
          complain("dir " + std::to_string(dir) + " has wrong '.'");
        }
        continue;
      }
      if (entry.name == "..") {
        saw_dotdot = true;
        if (entry.ino != parent_of[dir]) {
          complain("dir " + std::to_string(dir) + " has wrong '..'");
        }
        continue;
      }
      ++name_refs[entry.ino];
      Result<FileStat> stat = fs_->Stat(entry.ino);
      if (!stat.ok()) {
        complain("stat of ino " + std::to_string(entry.ino) + " failed");
        continue;
      }
      if (stat->type == FileType::kDirectory) {
        ++child_dirs[dir];
        if (!visited.insert(entry.ino).second) {
          complain("directory ino " + std::to_string(entry.ino) + " linked twice");
          continue;
        }
        parent_of[entry.ino] = dir;
        queue.push_back(entry.ino);
      } else {
        ++report.files;
        if (visited.insert(entry.ino).second && verify_data) {
          report.total_bytes += stat->size;
          std::vector<std::byte> content(stat->size);
          if (stat->size > 0) {
            Result<uint64_t> n = fs_->Read(entry.ino, 0, content);
            if (!n.ok() || *n != stat->size) {
              complain("file ino " + std::to_string(entry.ino) + " content unreadable");
            }
          }
        }
      }
    }
    if (!saw_dot || !saw_dotdot) {
      complain("dir " + std::to_string(dir) + " missing . or ..");
    }
  }
  // nlink verification and orphan detection (namespace checks only).
  for (uint32_t slot = 0; check_namespace_ && slot < imap.max_inodes(); ++slot) {
    const InodeNum ino = imap.InoAtSlot(slot);
    if (!imap.GetSlot(slot).allocated) {
      continue;
    }
    if (!visited.contains(ino)) {
      complain("allocated ino " + std::to_string(ino) + " unreachable from root");
      continue;
    }
    Result<FileStat> stat = fs_->Stat(ino);
    if (!stat.ok()) {
      continue;  // Already complained above.
    }
    uint32_t expected;
    if (stat->type == FileType::kDirectory) {
      expected = 2 + child_dirs[ino];  // ".", parent entry, children's "..".
      if (ino == kRootIno) {
        expected = 2 + child_dirs[ino];
      }
    } else {
      expected = name_refs[ino];
    }
    if (stat->nlink != expected) {
      complain("ino " + std::to_string(ino) + " nlink " + std::to_string(stat->nlink) +
               " != expected " + std::to_string(expected));
    }
  }

  // --- 3 & 4. live-address uniqueness and usage-table exactness ---
  ASSIGN_OR_RETURN(std::vector<uint64_t> recount, fs_->ComputeExactUsage());
  for (uint32_t seg = 0; seg < sb.num_segments; ++seg) {
    const SegUsage& usage = fs_->usage_.Get(seg);
    if (usage.live_bytes != recount[seg]) {
      complain("segment " + std::to_string(seg) + " usage " +
               std::to_string(usage.live_bytes) + " != recount " +
               std::to_string(recount[seg]));
    }
    if (usage.state == SegState::kClean && recount[seg] != 0) {
      complain("clean segment " + std::to_string(seg) + " has live data");
    }
  }
  if (fs_->usage_.CountState(SegState::kActive) != 1) {
    complain("active segment count != 1");
  }
  // Address uniqueness: walk every live pointer set.
  std::unordered_set<uint64_t> seen;
  auto claim = [&](DiskAddr addr, const char* what, InodeNum ino) {
    if (addr == kNoAddr) {
      return;
    }
    if (!addr_in_range(addr)) {
      complain(std::string(what) + " of ino " + std::to_string(ino) +
               " outside segment area");
      return;
    }
    if (!seen.insert(addr).second) {
      complain(std::string(what) + " of ino " + std::to_string(ino) +
               " double-references sector " + std::to_string(addr));
    }
  };
  for (uint32_t slot = 0; slot < imap.max_inodes(); ++slot) {
    const InodeNum ino = imap.InoAtSlot(slot);
    if (!imap.GetSlot(slot).allocated) {
      continue;
    }
    Result<LfsFileSystem::CachedInode*> ci = fs_->GetInode(ino);
    if (!ci.ok()) {
      continue;
    }
    const Inode inode = (*ci)->inode;
    for (DiskAddr addr : inode.direct) {
      claim(addr, "direct block", ino);
    }
    claim(inode.single_indirect, "single indirect", ino);
    claim(inode.double_indirect, "double indirect", ino);
    if (inode.single_indirect != kNoAddr) {
      Result<CacheRef> ref = fs_->GetIndirectRef(ino, 0, false);
      if (ref.ok()) {
        for (uint64_t j = 0; j < fs_->EntriesPerBlock(); ++j) {
          claim(ReadIndirectEntry((*ref)->data(), j), "indirect entry", ino);
        }
      }
    }
    if (inode.double_indirect != kNoAddr) {
      for (uint64_t j = 0; j < fs_->EntriesPerBlock(); ++j) {
        Result<DiskAddr> leaf_addr = fs_->GetIndirectAddr(ino, 2 + j);
        if (!leaf_addr.ok() || *leaf_addr == kNoAddr) {
          continue;
        }
        claim(*leaf_addr, "double-indirect leaf", ino);
        Result<CacheRef> leaf = fs_->GetIndirectRef(ino, 2 + j, false);
        if (leaf.ok()) {
          for (uint64_t k = 0; k < fs_->EntriesPerBlock(); ++k) {
            claim(ReadIndirectEntry((*leaf)->data(), k), "double-indirect entry", ino);
          }
        }
      }
    }
  }

  // --- 5. media verification ---
  // Compare every live block whose write-time CRC the mount knows against
  // the bytes on the medium, bypassing the buffer cache. Failures in a
  // quarantined segment are expected (the damage is already tracked and the
  // segment side-lined), so only failures in ordinary segments are
  // inconsistencies; both are counted per segment.
  report.quarantined_segments = fs_->usage_.CountState(SegState::kQuarantined);
  std::unordered_set<uint64_t> verify_addrs(seen);
  for (uint32_t slot = 0; slot < imap.max_inodes(); ++slot) {
    const ImapEntry& entry = imap.GetSlot(slot);
    if (entry.allocated && entry.block_addr != kNoAddr) {
      verify_addrs.insert(entry.block_addr);
    }
  }
  for (DiskAddr addr : fs_->imap_block_addrs_) {
    if (addr != kNoAddr) {
      verify_addrs.insert(addr);
    }
  }
  for (DiskAddr addr : fs_->usage_block_addrs_) {
    if (addr != kNoAddr) {
      verify_addrs.insert(addr);
    }
  }
  std::unordered_map<uint32_t, uint64_t> seg_failures;
  std::vector<std::byte> raw(sb.block_size);
  for (uint64_t addr : verify_addrs) {
    if (!addr_in_range(addr)) {
      continue;  // Already complained about by the claim walk.
    }
    auto it = fs_->block_crcs_.find(addr);
    if (it == fs_->block_crcs_.end()) {
      continue;  // No write-time CRC known (e.g. damaged summary at mount).
    }
    if (!fs_->device_->ReadSectors(addr, raw).ok() || Crc32(raw) != it->second) {
      ++seg_failures[sb.SegmentOfSector(addr)];
      continue;
    }
    ++report.blocks_checksum_verified;
  }
  report.segment_checksum_failures.assign(seg_failures.begin(), seg_failures.end());
  std::sort(report.segment_checksum_failures.begin(),
            report.segment_checksum_failures.end());
  for (const auto& [seg, failures] : report.segment_checksum_failures) {
    report.checksum_failures += failures;
    if (fs_->usage_.Get(seg).state != SegState::kQuarantined) {
      complain("segment " + std::to_string(seg) + ": " + std::to_string(failures) +
               " live blocks fail their write-time checksum");
    }
  }
  return report;
}

}  // namespace logfs
