// Cross-shard intent log (DESIGN.md §6i).
//
// The sharded multi-log recovers each shard independently, so a crash
// between the two halves of a cross-shard namespace operation (create,
// link, unlink, rmdir, rename) can leave a dangling dirent on one shard or
// an orphaned inode on another. The intent log closes that gap with the
// classic write-ahead-intent discipline: before a multi-shard operation
// mutates its FIRST shard, the router durably records an intent describing
// the whole operation; on mount, unretired intents drive a deterministic
// reconciliation (src/lfs/lfs_repair.h) that rolls each half-applied
// operation forward or back, so the recovered namespace is always clean.
//
// On-disk layout: a small dedicated region after the last shard slice,
// located by the INT1 superblock extension (lfs_format.h). The region is a
// fixed array of `kIntentSlots` slots of `kIntentSlotBytes` each. A slot is
// either garbage (free), a PENDING record, or a RETIRED record; each record
// is CRC-sealed, so a torn slot write parses as garbage.
//
// Why garbage slots are always safe to ignore:
//   * a torn PENDING write means the op never started — the intent write is
//     synchronous (a full barrier in the crash model) and returns before
//     the first in-memory shard mutation, so no later flush can carry the
//     op's effects if the intent itself did not land;
//   * a torn RETIRED overwrite means the op was fully durable on every
//     involved shard (that is the retirement precondition), so there is
//     nothing to reconcile.
//
// Retirement: an intent is retired (slot overwritten with a RETIRED record)
// only once every involved shard's durable horizon (synced_seq) covers the
// mutation_seq that shard had when the operation completed. The horizon
// only advances at checkpoints — synchronous writes, hence barriers — so a
// reorder-crash can never surface a retired intent whose halves are not
// durable. Until then the intent stays PENDING on disk; recovery probes the
// actual shard state, so reconciling an already-durable op is a no-op.
//
// Media faults: all region I/O goes through a ResilientDisk owned by the
// caller. A persistent media error on a slot marks it bad in memory and the
// publish moves to another slot; if the whole region is unwritable the
// publish fails and the router aborts the operation BEFORE any shard
// mutation — a cross-shard op either has a durable intent or never starts.
#ifndef LOGFS_SRC_LFS_LFS_INTENT_H_
#define LOGFS_SRC_LFS_LFS_INTENT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/disk/block_device.h"
#include "src/fsbase/fs_types.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace logfs {

inline constexpr uint32_t kIntentRecordMagic = 0x494E5443;  // "INTC"
// 64 slots x 1 KB = a 128-sector region; a slot comfortably holds two
// max-length names. The ring bounds the number of cross-shard operations
// in flight between checkpoints; the router drains (sync + retire) when
// it fills.
inline constexpr uint32_t kIntentSlots = 64;
inline constexpr uint32_t kIntentSlotBytes = 1024;
inline constexpr uint64_t kIntentRegionSectors =
    static_cast<uint64_t>(kIntentSlots) * kIntentSlotBytes / kSectorSize;

enum class IntentKind : uint8_t {
  kCreate = 1,  // dirent on from_dir's shard, new inode `child` elsewhere.
  kLink = 2,    // dirent on from_dir's shard, nlink++ on `child`.
  kUnlink = 3,  // dirent removal on from_dir's shard, link drop on `child`.
  kRmdir = 4,   // dirent removal on from_dir's shard, dir release of `child`.
  kRename = 5,  // entry moves from (from_dir, from_name) to (to_dir, to_name).
};

enum class IntentState : uint8_t {
  kPending = 1,
  kRetired = 2,
};

// One cross-shard operation, described completely enough that recovery can
// probe every half and decide the reconciliation direction without any
// other context. Fields that do not apply to a kind are zero / empty.
struct IntentRecord {
  uint64_t op_id = 0;  // Monotone across the volume's lifetime.
  IntentKind kind = IntentKind::kCreate;
  InodeNum from_dir = 0;      // Parent of the (only) name, or rename source dir.
  InodeNum to_dir = 0;        // Rename destination dir.
  InodeNum child = 0;         // Created / linked / unlinked ino; rename src ino.
  InodeNum victim = 0;        // Rename replace victim (0 = none).
  FileType child_type = FileType::kRegular;
  FileType victim_type = FileType::kRegular;
  std::string from_name;      // The name, or rename source name.
  std::string to_name;        // Rename destination name.
};

// Slot codec. Encode writes a CRC-sealed record into `slot`
// (kIntentSlotBytes); Decode returns kCorrupted for garbage.
Status EncodeIntentSlot(const IntentRecord& rec, IntentState state,
                        std::span<std::byte> slot);
Result<std::pair<IntentRecord, IntentState>> DecodeIntentSlot(
    std::span<const std::byte> slot);

// A decoded slot as surfaced to recovery and tooling.
struct LoadedIntent {
  uint32_t slot = 0;
  IntentState state = IntentState::kPending;
  IntentRecord record;
};

// The runtime intent log. Thread-safe: a single internal mutex serializes
// slot allocation, region I/O and retirement bookkeeping (callers hold
// their shard locks around Publish, but the log itself never takes shard
// locks, so there is no ordering interaction).
class IntentLog {
 public:
  // `device` is the RAW volume device (typically wrapped in a
  // ResilientDisk by the owner); the region is [first_sector,
  // first_sector + sector_count). `sector_count` must cover kIntentSlots
  // slots.
  IntentLog(BlockDevice* device, uint64_t first_sector, uint64_t sector_count);

  // Reads every slot; returns the parseable records (pending and retired),
  // slot-ordered. Garbage slots are recorded as free. A media error on a
  // slot read marks the slot bad and skips it (best-effort: recovery then
  // falls back to the full repair walk via the caller).
  Result<std::vector<LoadedIntent>> LoadAll();
  // Pending records only, sorted by op_id — the reconciliation work list.
  Result<std::vector<IntentRecord>> LoadPending();

  // Durably records a pending intent (synchronous region write — a full
  // barrier). Assigns the next op_id. Returns the slot, or:
  //   * kBusy when every slot is occupied by a live intent — the caller
  //     must drain (sync involved shards, RetireCovered) and retry;
  //   * the device error when the region cannot be written (all remaining
  //     slots bad): the caller must abort the operation unstarted.
  Result<uint32_t> Publish(IntentRecord* rec);

  // Marks the published intent applied: `covers` lists (shard index,
  // mutation_seq) pairs; the intent is retireable once every listed
  // shard's synced_seq reaches its mutation_seq. In-memory only.
  void MarkApplied(uint32_t slot, std::vector<std::pair<uint32_t, uint64_t>> covers);

  // Retires every applied slot whose covering sequences are all durable
  // per `synced_seqs` (indexed by shard). Retire writes are best-effort
  // and asynchronous-class: losing one only means recovery re-probes a
  // fully durable op.
  Status RetireCovered(std::span<const uint64_t> synced_seqs);

  // Overwrites one slot with a RETIRED record regardless of coverage.
  // Mount-time reconciliation calls this after repairing + syncing.
  Status RetireSlot(uint32_t slot, const IntentRecord& rec);

  // Occupied (pending-on-disk, not yet retired) slots.
  uint32_t PendingCount();
  uint64_t next_op_id();

 private:
  enum class SlotState : uint8_t { kFree, kPublished, kApplied, kBad };
  struct Slot {
    SlotState state = SlotState::kFree;
    IntentRecord rec;
    std::vector<std::pair<uint32_t, uint64_t>> covers;
  };

  uint64_t SlotSector(uint32_t slot) const {
    return first_sector_ + static_cast<uint64_t>(slot) * (kIntentSlotBytes / kSectorSize);
  }
  // Writes `rec` with `state` into `slot`. Synchronous iff `synchronous`.
  Status WriteSlot(uint32_t slot, const IntentRecord& rec, IntentState state,
                   bool synchronous);

  BlockDevice* device_;
  uint64_t first_sector_;
  std::mutex mu_;
  std::vector<Slot> slots_;
  uint64_t next_op_id_ = 1;
  bool loaded_ = false;
};

}  // namespace logfs

#endif  // LOGFS_SRC_LFS_LFS_INTENT_H_
