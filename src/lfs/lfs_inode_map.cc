#include "src/lfs/lfs_inode_map.h"

#include <cassert>

#include "src/util/serializer.h"

namespace logfs {

InodeMap::InodeMap(uint32_t max_inodes, uint32_t block_size, uint32_t stride,
                   uint32_t offset)
    : max_inodes_(max_inodes),
      block_size_(block_size),
      entries_per_block_(block_size / kImapEntrySize),
      stride_(stride),
      offset_(offset),
      entries_(max_inodes) {
  assert(stride_ >= 1 && offset_ < stride_);
  block_count_ = (max_inodes_ + entries_per_block_ - 1) / entries_per_block_;
  dirty_blocks_.assign(block_count_, false);
}

void InodeMap::SetLocation(InodeNum ino, DiskAddr block_addr, uint16_t slot) {
  assert(IsValid(ino));
  ImapEntry& entry = entries_[SlotOf(ino)];
  entry.block_addr = block_addr;
  entry.slot = slot;
  MarkDirty(ino);
}

void InodeMap::SetAtime(InodeNum ino, double atime) {
  assert(IsValid(ino));
  entries_[SlotOf(ino)].atime = atime;
  MarkDirty(ino);
}

void InodeMap::SetVersion(InodeNum ino, uint32_t version) {
  assert(IsValid(ino));
  entries_[SlotOf(ino)].version = version;
  MarkDirty(ino);
}

Result<InodeNum> InodeMap::Allocate(InodeNum hint) {
  // Round the hint up to this map's residue class, then scan slots
  // circularly. With stride 1 this is exactly the original ino scan.
  uint32_t start_slot = 0;
  if (hint > offset_ + 1) {
    start_slot = static_cast<uint32_t>((static_cast<uint64_t>(hint) - 1 - offset_ +
                                        stride_ - 1) / stride_);
  }
  if (start_slot >= max_inodes_) {
    start_slot = 0;
  }
  for (uint32_t step = 0; step < max_inodes_; ++step) {
    const uint32_t slot = (start_slot + step) % max_inodes_;
    const InodeNum ino = InoAtSlot(slot);
    ImapEntry& entry = entries_[slot];
    if (!entry.allocated) {
      entry.allocated = true;
      ++entry.version;
      entry.block_addr = kNoAddr;
      entry.slot = 0;
      entry.atime = 0.0;
      ++allocated_count_;
      MarkDirty(ino);
      return ino;
    }
  }
  return NoSpaceError("out of inodes");
}

Result<InodeNum> InodeMap::PeekAllocate(InodeNum hint) const {
  // Mirrors Allocate's scan exactly, minus the mutation.
  uint32_t start_slot = 0;
  if (hint > offset_ + 1) {
    start_slot = static_cast<uint32_t>((static_cast<uint64_t>(hint) - 1 - offset_ +
                                        stride_ - 1) / stride_);
  }
  if (start_slot >= max_inodes_) {
    start_slot = 0;
  }
  for (uint32_t step = 0; step < max_inodes_; ++step) {
    const uint32_t slot = (start_slot + step) % max_inodes_;
    if (!entries_[slot].allocated) {
      return InoAtSlot(slot);
    }
  }
  return NoSpaceError("out of inodes");
}

void InodeMap::Free(InodeNum ino) {
  assert(IsValid(ino));
  ImapEntry& entry = entries_[SlotOf(ino)];
  assert(entry.allocated);
  entry.allocated = false;
  entry.block_addr = kNoAddr;
  entry.slot = 0;
  ++entry.version;
  --allocated_count_;
  MarkDirty(ino);
}

void InodeMap::ForceAllocated(InodeNum ino, bool allocated) {
  assert(IsValid(ino));
  ImapEntry& entry = entries_[SlotOf(ino)];
  if (entry.allocated != allocated) {
    allocated_count_ += allocated ? 1 : -1;
    entry.allocated = allocated;
    MarkDirty(ino);
  }
}

Status InodeMap::EncodeBlock(uint32_t block_index, std::span<std::byte> out) const {
  if (block_index >= block_count_ || out.size() < block_size_) {
    return InvalidArgumentError("bad imap block encode request");
  }
  BufferWriter writer(out);
  const uint32_t first = block_index * entries_per_block_;
  const uint32_t last = std::min(first + entries_per_block_, max_inodes_);
  for (uint32_t i = first; i < last; ++i) {
    const ImapEntry& entry = entries_[i];
    RETURN_IF_ERROR(writer.WriteU64(entry.block_addr));
    RETURN_IF_ERROR(writer.WriteU16(entry.slot));
    RETURN_IF_ERROR(writer.WriteU16(entry.allocated ? 1 : 0));
    RETURN_IF_ERROR(writer.WriteU32(entry.version));
    RETURN_IF_ERROR(writer.WriteF64(entry.atime));
  }
  return writer.WriteZeros(out.size() - writer.offset());
}

Status InodeMap::DecodeBlock(uint32_t block_index, std::span<const std::byte> in) {
  if (block_index >= block_count_ || in.size() < block_size_) {
    return CorruptedError("bad imap block decode request");
  }
  BufferReader reader(in);
  const uint32_t first = block_index * entries_per_block_;
  const uint32_t last = std::min(first + entries_per_block_, max_inodes_);
  for (uint32_t i = first; i < last; ++i) {
    ImapEntry entry;
    ASSIGN_OR_RETURN(entry.block_addr, reader.ReadU64());
    ASSIGN_OR_RETURN(entry.slot, reader.ReadU16());
    ASSIGN_OR_RETURN(uint16_t flags, reader.ReadU16());
    entry.allocated = (flags & 1) != 0;
    ASSIGN_OR_RETURN(entry.version, reader.ReadU32());
    ASSIGN_OR_RETURN(entry.atime, reader.ReadF64());
    if (entries_[i].allocated != entry.allocated) {
      allocated_count_ += entry.allocated ? 1 : -1;
    }
    entries_[i] = entry;
  }
  dirty_blocks_[block_index] = false;
  return OkStatus();
}

void InodeMap::MarkAllDirty() { dirty_blocks_.assign(block_count_, true); }

}  // namespace logfs
