#include "src/lfs/lfs_format.h"

#include <cstring>

#include "src/util/crc32.h"
#include "src/util/serializer.h"

namespace logfs {
namespace {

constexpr size_t kSuperblockPayload = 4 * 9 + 8 + 8;

Status ValidateLfsParams(const LfsParams& params) {
  if (params.block_size < 1024 || params.block_size % kSectorSize != 0 ||
      params.block_size > 65536) {
    return InvalidArgumentError("LFS block size must be 1K-64K and sector aligned");
  }
  if (params.segment_size % params.block_size != 0 ||
      params.segment_size / params.block_size < 4) {
    return InvalidArgumentError("LFS segment must hold at least 4 blocks");
  }
  if (params.max_inodes < 16) {
    return InvalidArgumentError("LFS needs at least 16 inodes");
  }
  if (params.clean_stop_segments < params.clean_start_segments) {
    return InvalidArgumentError("clean_stop must be >= clean_start");
  }
  if (params.shard_count == 1 || (params.shard_count >= 2 &&
                                  params.shard_index >= params.shard_count)) {
    return InvalidArgumentError("shard_index must be < shard_count (>= 2), or count 0");
  }
  if (params.intent_sectors > 0 && params.shard_count < 2) {
    return InvalidArgumentError("intent region requires a sharded volume");
  }
  return OkStatus();
}

// Shard extension layout, starting right after the legacy payload + CRC:
// magic u32, shard_count u32, shard_index u32, CRC32 over those 12 bytes.
constexpr size_t kShardExtOffset = kSuperblockPayload + 4;
constexpr size_t kShardExtPayload = 12;

// Intent extension layout, after the shard extension + its CRC:
// magic u32, intent_start_sector u64, intent_sectors u32, CRC32 over those
// 16 bytes. Present only on sharded superblocks with an intent region.
constexpr size_t kIntentExtOffset = kShardExtOffset + kShardExtPayload + 4;
constexpr size_t kIntentExtPayload = 16;

}  // namespace

Status EncodeLfsSuperblock(const LfsSuperblock& sb, std::span<std::byte> block) {
  if (block.size() < kSuperblockPayload + 4) {
    return InvalidArgumentError("superblock buffer too small");
  }
  std::memset(block.data(), 0, block.size());
  BufferWriter writer(block);
  RETURN_IF_ERROR(writer.WriteU32(sb.magic));
  RETURN_IF_ERROR(writer.WriteU32(sb.block_size));
  RETURN_IF_ERROR(writer.WriteU32(sb.segment_size));
  RETURN_IF_ERROR(writer.WriteU32(sb.max_inodes));
  RETURN_IF_ERROR(writer.WriteU32(sb.checkpoint_region_blocks));
  RETURN_IF_ERROR(writer.WriteU64(sb.first_segment_sector));
  RETURN_IF_ERROR(writer.WriteU32(sb.num_segments));
  RETURN_IF_ERROR(writer.WriteU32(sb.clean_start_segments));
  RETURN_IF_ERROR(writer.WriteU32(sb.clean_stop_segments));
  RETURN_IF_ERROR(writer.WriteU32(sb.reserved_segments));
  RETURN_IF_ERROR(writer.WriteF64(sb.checkpoint_interval_seconds));
  const uint32_t crc = Crc32(block.subspan(0, kSuperblockPayload));
  RETURN_IF_ERROR(writer.WriteU32(crc));
  if (sb.sharded()) {
    if (block.size() < kShardExtOffset + kShardExtPayload + 4) {
      return InvalidArgumentError("superblock buffer too small for shard extension");
    }
    RETURN_IF_ERROR(writer.WriteU32(kShardMagic));
    RETURN_IF_ERROR(writer.WriteU32(sb.shard_count));
    RETURN_IF_ERROR(writer.WriteU32(sb.shard_index));
    const uint32_t ext_crc = Crc32(block.subspan(kShardExtOffset, kShardExtPayload));
    RETURN_IF_ERROR(writer.WriteU32(ext_crc));
  }
  if (sb.has_intent_region()) {
    if (block.size() < kIntentExtOffset + kIntentExtPayload + 4) {
      return InvalidArgumentError("superblock buffer too small for intent extension");
    }
    RETURN_IF_ERROR(writer.WriteU32(kIntentExtMagic));
    RETURN_IF_ERROR(writer.WriteU64(sb.intent_start_sector));
    RETURN_IF_ERROR(writer.WriteU32(sb.intent_sectors));
    const uint32_t ext_crc = Crc32(block.subspan(kIntentExtOffset, kIntentExtPayload));
    RETURN_IF_ERROR(writer.WriteU32(ext_crc));
  }
  return OkStatus();
}

Result<LfsSuperblock> DecodeLfsSuperblock(std::span<const std::byte> block) {
  if (block.size() < kSuperblockPayload + 4) {
    return CorruptedError("superblock truncated");
  }
  BufferReader reader(block);
  LfsSuperblock sb;
  ASSIGN_OR_RETURN(sb.magic, reader.ReadU32());
  if (sb.magic != kLfsMagic) {
    return CorruptedError("bad LFS superblock magic");
  }
  ASSIGN_OR_RETURN(sb.block_size, reader.ReadU32());
  ASSIGN_OR_RETURN(sb.segment_size, reader.ReadU32());
  ASSIGN_OR_RETURN(sb.max_inodes, reader.ReadU32());
  ASSIGN_OR_RETURN(sb.checkpoint_region_blocks, reader.ReadU32());
  ASSIGN_OR_RETURN(sb.first_segment_sector, reader.ReadU64());
  ASSIGN_OR_RETURN(sb.num_segments, reader.ReadU32());
  ASSIGN_OR_RETURN(sb.clean_start_segments, reader.ReadU32());
  ASSIGN_OR_RETURN(sb.clean_stop_segments, reader.ReadU32());
  ASSIGN_OR_RETURN(sb.reserved_segments, reader.ReadU32());
  ASSIGN_OR_RETURN(sb.checkpoint_interval_seconds, reader.ReadF64());
  ASSIGN_OR_RETURN(uint32_t stored_crc, reader.ReadU32());
  if (stored_crc != Crc32(block.subspan(0, kSuperblockPayload))) {
    return CorruptedError("LFS superblock CRC mismatch");
  }
  // Optional shard extension. Seed-era superblocks (and every unsharded
  // format since) have zeros here and decode as shard_count 0.
  if (block.size() >= kShardExtOffset + kShardExtPayload + 4) {
    BufferReader ext(block.subspan(kShardExtOffset));
    ASSIGN_OR_RETURN(uint32_t ext_magic, ext.ReadU32());
    if (ext_magic == kShardMagic) {
      ASSIGN_OR_RETURN(sb.shard_count, ext.ReadU32());
      ASSIGN_OR_RETURN(sb.shard_index, ext.ReadU32());
      ASSIGN_OR_RETURN(uint32_t ext_crc, ext.ReadU32());
      if (ext_crc != Crc32(block.subspan(kShardExtOffset, kShardExtPayload))) {
        return CorruptedError("LFS shard extension CRC mismatch");
      }
      if (sb.shard_count < 2 || sb.shard_index >= sb.shard_count) {
        return CorruptedError("LFS shard extension out of range");
      }
      // Optional intent extension: only meaningful on sharded superblocks.
      // Absent (pre-intent-log images) decodes as 0/0 — no region.
      if (block.size() >= kIntentExtOffset + kIntentExtPayload + 4) {
        BufferReader iext(block.subspan(kIntentExtOffset));
        ASSIGN_OR_RETURN(uint32_t iext_magic, iext.ReadU32());
        if (iext_magic == kIntentExtMagic) {
          ASSIGN_OR_RETURN(sb.intent_start_sector, iext.ReadU64());
          ASSIGN_OR_RETURN(sb.intent_sectors, iext.ReadU32());
          ASSIGN_OR_RETURN(uint32_t iext_crc, iext.ReadU32());
          if (iext_crc != Crc32(block.subspan(kIntentExtOffset, kIntentExtPayload))) {
            return CorruptedError("LFS intent extension CRC mismatch");
          }
          if (sb.intent_sectors == 0 || sb.intent_start_sector == 0) {
            return CorruptedError("LFS intent extension out of range");
          }
        }
      }
    }
  }
  return sb;
}

Status EncodeCheckpoint(const CheckpointRecord& ckpt, std::span<std::byte> region) {
  std::memset(region.data(), 0, region.size());
  BufferWriter writer(region);
  RETURN_IF_ERROR(writer.WriteU32(kCkptMagic));
  RETURN_IF_ERROR(writer.WriteU32(0));  // CRC placeholder, patched below.
  RETURN_IF_ERROR(writer.WriteU64(ckpt.sequence));
  RETURN_IF_ERROR(writer.WriteF64(ckpt.timestamp));
  RETURN_IF_ERROR(writer.WriteU64(ckpt.next_log_seq));
  RETURN_IF_ERROR(writer.WriteU32(ckpt.tail_segment));
  RETURN_IF_ERROR(writer.WriteU32(ckpt.tail_offset));
  RETURN_IF_ERROR(writer.WriteU32(ckpt.next_ino_hint));
  RETURN_IF_ERROR(writer.WriteU64(ckpt.total_live_bytes));
  RETURN_IF_ERROR(writer.WriteU32(static_cast<uint32_t>(ckpt.imap_block_addrs.size())));
  RETURN_IF_ERROR(writer.WriteU32(static_cast<uint32_t>(ckpt.usage_block_addrs.size())));
  for (DiskAddr addr : ckpt.imap_block_addrs) {
    RETURN_IF_ERROR(writer.WriteU64(addr));
  }
  for (DiskAddr addr : ckpt.usage_block_addrs) {
    RETURN_IF_ERROR(writer.WriteU64(addr));
  }
  const size_t payload = writer.offset();
  // CRC over the payload with the CRC field itself zeroed (it is).
  const uint32_t crc = Crc32(region.subspan(0, payload));
  RETURN_IF_ERROR(writer.SeekTo(4));
  RETURN_IF_ERROR(writer.WriteU32(crc));
  return OkStatus();
}

size_t CheckpointPayloadBytes(const CheckpointRecord& ckpt) {
  // Fixed header fields (through the two table counts) plus one u64 per
  // table entry; must match EncodeCheckpoint's write sequence exactly.
  return 60 + 8 * (ckpt.imap_block_addrs.size() + ckpt.usage_block_addrs.size());
}

Result<CheckpointRecord> DecodeCheckpoint(std::span<const std::byte> region) {
  BufferReader reader(region);
  ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kCkptMagic) {
    return CorruptedError("bad checkpoint magic");
  }
  ASSIGN_OR_RETURN(uint32_t stored_crc, reader.ReadU32());
  CheckpointRecord ckpt;
  ASSIGN_OR_RETURN(ckpt.sequence, reader.ReadU64());
  ASSIGN_OR_RETURN(ckpt.timestamp, reader.ReadF64());
  ASSIGN_OR_RETURN(ckpt.next_log_seq, reader.ReadU64());
  ASSIGN_OR_RETURN(ckpt.tail_segment, reader.ReadU32());
  ASSIGN_OR_RETURN(ckpt.tail_offset, reader.ReadU32());
  ASSIGN_OR_RETURN(ckpt.next_ino_hint, reader.ReadU32());
  ASSIGN_OR_RETURN(ckpt.total_live_bytes, reader.ReadU64());
  ASSIGN_OR_RETURN(uint32_t imap_count, reader.ReadU32());
  ASSIGN_OR_RETURN(uint32_t usage_count, reader.ReadU32());
  if (static_cast<uint64_t>(imap_count) + usage_count > region.size() / 8) {
    return CorruptedError("checkpoint address tables exceed region");
  }
  ckpt.imap_block_addrs.resize(imap_count);
  for (DiskAddr& addr : ckpt.imap_block_addrs) {
    ASSIGN_OR_RETURN(addr, reader.ReadU64());
  }
  ckpt.usage_block_addrs.resize(usage_count);
  for (DiskAddr& addr : ckpt.usage_block_addrs) {
    ASSIGN_OR_RETURN(addr, reader.ReadU64());
  }
  const size_t payload = reader.offset();
  // Validate CRC with the stored field zeroed.
  std::vector<std::byte> copy(region.begin(), region.begin() + payload);
  std::memset(copy.data() + 4, 0, 4);
  if (stored_crc != Crc32(copy)) {
    return CorruptedError("checkpoint CRC mismatch");
  }
  return ckpt;
}

Result<LfsSuperblock> ComputeLfsGeometry(const LfsParams& params, uint64_t sector_count) {
  RETURN_IF_ERROR(ValidateLfsParams(params));
  LfsSuperblock sb;
  sb.block_size = params.block_size;
  sb.segment_size = params.segment_size;
  sb.max_inodes = params.max_inodes;
  sb.clean_start_segments = params.clean_start_segments;
  sb.clean_stop_segments = params.clean_stop_segments;
  sb.reserved_segments = params.reserved_segments;
  sb.checkpoint_interval_seconds = params.checkpoint_interval_seconds;
  sb.shard_count = params.shard_count;
  sb.shard_index = params.shard_index;
  sb.intent_start_sector = params.intent_start_sector;
  sb.intent_sectors = params.intent_sectors;

  // Checkpoint region: header (~64 B) + one 8-byte address per inode-map
  // block and per segment-usage block. Sized generously and rounded up.
  // imap entries are 24 B (lfs_inode_map.h), usage entries 16 B.
  const uint64_t imap_blocks =
      (static_cast<uint64_t>(params.max_inodes) * 24 + params.block_size - 1) /
      params.block_size;
  // Upper bound on segments: device / segment size.
  const uint64_t max_segments =
      sector_count * kSectorSize / params.segment_size + 1;
  const uint64_t usage_blocks =
      (max_segments * 16 + params.block_size - 1) / params.block_size;
  const uint64_t ckpt_bytes = 256 + (imap_blocks + usage_blocks) * 8;
  sb.checkpoint_region_blocks =
      static_cast<uint32_t>((ckpt_bytes + params.block_size - 1) / params.block_size);

  const uint64_t first_block = 1 + 2ull * sb.checkpoint_region_blocks;
  sb.first_segment_sector = first_block * sb.SectorsPerBlock();
  const uint64_t remaining_sectors = sector_count > sb.first_segment_sector
                                         ? sector_count - sb.first_segment_sector
                                         : 0;
  sb.num_segments = static_cast<uint32_t>(remaining_sectors / sb.SectorsPerSegment());
  if (sb.num_segments < params.reserved_segments + 4) {
    return InvalidArgumentError("device too small for an LFS log");
  }
  // Checkpoints rewrite the segment-usage blocks into a single partial
  // segment (their contents are patched after their addresses are known),
  // so the whole table must fit in one segment.
  const uint64_t usage_table_blocks =
      (static_cast<uint64_t>(sb.num_segments) * 16 + params.block_size - 1) /
      params.block_size;
  if (usage_table_blocks + 2 > sb.BlocksPerSegment()) {
    return InvalidArgumentError(
        "segment too small for this device's segment-usage table; use larger segments");
  }
  return sb;
}

}  // namespace logfs
