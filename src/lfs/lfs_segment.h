// Segment summary blocks and the partial-segment builder (paper 4.3.1).
//
// Every batch of blocks LFS writes — a "partial segment" — is laid out as a
// summary block followed by the content blocks, and hits the disk as a
// single sequential transfer. The summary identifies each content block
// (file, offset, inode-map version at write time), carries a monotonically
// increasing log sequence number used by roll-forward recovery, and a CRC
// computed over the summary AND all content bytes so that a torn write
// invalidates the whole partial segment atomically.
#ifndef LOGFS_SRC_LFS_LFS_SEGMENT_H_
#define LOGFS_SRC_LFS_LFS_SEGMENT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/disk/block_device.h"
#include "src/fsbase/fs_types.h"
#include "src/lfs/lfs_format.h"
#include "src/obs/space_observatory.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace logfs {

// What a content block holds. The paper's summary identifies "the file
// number of the block's file and the position of the block within the
// file"; we additionally distinguish the metadata block types that share
// the log.
enum class BlockKind : uint8_t {
  kData = 1,        // File or directory data; offset = file block index.
  kIndirect = 2,    // Indirect pointer block; offset = indirect slot index.
  kInodeBlock = 3,  // Packed inodes (lfs_inode_map.h defines the layout).
  kImap = 4,        // Inode-map block; offset = imap block index.
  kSegUsage = 5,    // Segment-usage block; offset = usage block index.
  kMetaLog = 6,     // Directory-operation log (frees) for roll-forward.
};

struct SummaryEntry {
  BlockKind kind = BlockKind::kData;
  uint32_t ino = 0;      // Owning file for kData/kIndirect; 0 for metadata.
  uint32_t version = 0;  // Inode-map version of `ino` when written.
  int64_t offset = 0;    // Meaning depends on kind (see above).
  // CRC32 of this entry's content block alone. The partial-segment CRC
  // detects torn writes atomically; the per-block CRC localizes silent
  // corruption to one block, so readers can verify a single ReadBlockAt and
  // the cleaner/scrubber can salvage the intact blocks of a damaged partial.
  uint32_t block_crc = 0;
};

struct SegmentSummary {
  uint64_t seq = 0;        // Log sequence number of this partial segment.
  double timestamp = 0.0;  // SimClock time of the write.
  std::vector<SummaryEntry> entries;
};

// Max content blocks a single partial segment can describe.
size_t SummaryCapacity(uint32_t block_size);

// Encodes `summary` into the summary block and stamps two CRCs: a header
// CRC over the fixed header fields (so PeekSummary never trusts a garbage
// header) and a full CRC computed over the block (full-CRC field zeroed)
// plus `content` (the concatenated content blocks, in entry order).
// Per-entry block_crc values are written as given — the caller (normally
// SegmentBuilder::Flush) is responsible for computing them.
Status EncodeSummary(const SegmentSummary& summary, std::span<std::byte> block,
                     std::span<const std::byte> content);

// Same, with the content supplied as a list of extents (the zero-copy write
// path never materializes the concatenation). The CRC streams over the
// extents in order, so the stamped checksum is byte-identical to
// EncodeSummary on the coalesced buffer.
Status EncodeSummaryV(const SegmentSummary& summary, std::span<std::byte> block,
                      std::span<const std::span<const std::byte>> content_parts);

// Header fields readable without the content. The header carries its own
// CRC, which Peek validates — so a "peek" cannot be fooled by random bytes
// that happen to start with the magic — but the content CRCs are not
// checked. Used by roll-forward to size the content read and to skip stale
// partials.
struct SummaryPeek {
  uint64_t seq = 0;
  uint32_t nblocks = 0;
};
Result<SummaryPeek> PeekSummary(std::span<const std::byte> block, uint32_t block_size);

// Full decode with CRC validation against the content bytes.
Result<SegmentSummary> DecodeSummary(std::span<const std::byte> block,
                                     std::span<const std::byte> content);

// Decode WITHOUT validating the CRC over the content. Exists only so the
// crash-state explorer can inject a "recovery trusts torn partial segments"
// bug and prove its Oracle catches it (LfsFileSystem::Options::
// unsafe_skip_rollforward_crc). Never use in production paths.
Result<SegmentSummary> DecodeSummaryUnchecked(std::span<const std::byte> block);

// Assembles partial segments in memory and writes each as one transfer.
class SegmentBuilder {
 public:
  SegmentBuilder(BlockDevice* device, const LfsSuperblock& sb);

  // Positions the builder at (segment, block offset). Requires no pending
  // blocks.
  void StartAt(uint32_t segment, uint32_t offset);

  uint32_t segment() const { return segment_; }
  // Block offset the *next* partial segment would start at.
  uint32_t next_offset() const {
    return pending() == 0 ? start_offset_
                          : start_offset_ + 1 + static_cast<uint32_t>(entries_.size());
  }
  uint32_t pending() const { return static_cast<uint32_t>(entries_.size()); }

  // True if one more content block fits in this partial segment (summary
  // capacity and segment boundary respected).
  bool CanAppend() const;
  // True if the segment has room for a fresh partial segment (summary + 1).
  bool SegmentHasRoom() const;

  // Appends a content block; returns its assigned disk address. The caller
  // must have checked CanAppend().
  Result<DiskAddr> Append(BlockKind kind, uint32_t ino, uint32_t version, int64_t offset,
                          std::span<const std::byte> data);

  // Appends a block whose content will be filled in *after* the append but
  // before Flush (used for segment-usage blocks, whose contents depend on
  // the addresses this very append assigns). `*buffer` stays valid until
  // Flush or the next StartAt.
  Result<DiskAddr> AppendDeferred(BlockKind kind, uint32_t ino, uint32_t version, int64_t offset,
                                  std::span<std::byte>* buffer);

  // Appends a content block by reference: nothing is copied, and `data`
  // must stay valid and unmodified until the next Flush or StartAt. This is
  // the zero-copy path for blocks that already live in stable storage (the
  // buffer cache pins them for the duration).
  Result<DiskAddr> AppendExternal(BlockKind kind, uint32_t ino, uint32_t version, int64_t offset,
                                  std::span<const std::byte> data);

  // Writes the pending partial segment as one sequential transfer and
  // advances past it. No-op when nothing is pending. Computes each entry's
  // block_crc from its extent immediately before encoding.
  Status Flush(uint64_t seq, double timestamp);

  // Provenance context for write attribution (DESIGN.md §6j). The file
  // system stamps this before every append; a foreground context classifies
  // each entry by its BlockKind (kData -> fg_data, metadata kinds ->
  // fg_meta), any other context claims the entry outright. Flush charges
  // the device-write op and the summary block to the partial's dominant
  // class and splits content bytes per entry, so the exact-sum invariant
  // holds however classes mix within one partial.
  void set_io_context(obs::IoSource context) { io_context_ = context; }
  obs::IoSource io_context() const { return io_context_; }

  // Address and content CRC of every content block the last successful
  // Flush wrote, in log order. The file system folds these into its
  // in-memory CRC index so reads can verify without re-decoding summaries.
  struct FlushedBlock {
    DiskAddr addr = 0;
    uint32_t crc = 0;
  };
  const std::vector<FlushedBlock>& last_flush() const { return last_flush_; }

 private:
  // Provenance of one pending entry under the context active at append time
  // (see set_io_context).
  obs::IoSource EntrySource(BlockKind kind) const {
    if (io_context_ != obs::IoSource::kForegroundData) {
      return io_context_;
    }
    return kind == BlockKind::kData ? obs::IoSource::kForegroundData
                                    : obs::IoSource::kForegroundMeta;
  }

  BlockDevice* device_;
  LfsSuperblock sb_;
  uint32_t segment_ = 0;
  uint32_t start_offset_ = 0;  // Where the pending partial segment begins.
  std::vector<SummaryEntry> entries_;
  obs::IoSource io_context_ = obs::IoSource::kForegroundData;
  // Parallel to entries_ (maintained only with metrics enabled): the
  // provenance class captured when each entry was appended.
  std::vector<obs::IoSource> entry_sources_;
  // One extent per entry, in order: either a caller-owned span
  // (AppendExternal) or a slice of buffer_ (Append/AppendDeferred). Handed
  // to WriteSectorsV at Flush without coalescing.
  std::vector<std::span<const std::byte>> extents_;
  // Owned staging for Append/AppendDeferred blocks. Reserved to the full
  // segment size up front and never allowed to reallocate: extents_ and the
  // spans AppendDeferred hands out point into it.
  std::vector<std::byte> buffer_;
  std::vector<std::byte> summary_block_;
  std::vector<FlushedBlock> last_flush_;
  size_t capacity_;
};

}  // namespace logfs

#endif  // LOGFS_SRC_LFS_LFS_SEGMENT_H_
