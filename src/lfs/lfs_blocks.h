// Codecs for the packed metadata blocks LFS writes into the log:
//
//  * Inode blocks — several inodes packed into one log block, each tagged
//    with its inode number and inode-map version so the cleaner and
//    roll-forward recovery can re-register them without extra context.
//  * Meta-log blocks — records of namespace operations that would otherwise
//    be invisible to roll-forward (inode frees from unlink/rmdir). A freed
//    inode is never rewritten, so without these records a post-crash
//    roll-forward could resurrect deleted files.
#ifndef LOGFS_SRC_LFS_LFS_BLOCKS_H_
#define LOGFS_SRC_LFS_LFS_BLOCKS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/fsbase/fs_types.h"
#include "src/fsbase/inode.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace logfs {

struct PackedInode {
  InodeNum ino = kInvalidIno;
  uint32_t version = 0;  // Inode-map version at write time.
  Inode inode;
};

// Inodes per LFS inode block: header (8 B) + per-slot tag (8 B) + inode.
size_t InodesPerLfsBlock(uint32_t block_size);

Status EncodeInodeBlock(std::span<const PackedInode> inodes, std::span<std::byte> out);
Result<std::vector<PackedInode>> DecodeInodeBlock(std::span<const std::byte> in);

// One record per freed inode.
struct FreeRecord {
  InodeNum ino = kInvalidIno;
  uint32_t new_version = 0;  // Version after the free.
};

size_t FreeRecordsPerBlock(uint32_t block_size);

Status EncodeMetaLogBlock(std::span<const FreeRecord> records, std::span<std::byte> out);
Result<std::vector<FreeRecord>> DecodeMetaLogBlock(std::span<const std::byte> in);

}  // namespace logfs

#endif  // LOGFS_SRC_LFS_LFS_BLOCKS_H_
