#include "src/lfs/lfs_seg_usage.h"

#include <algorithm>
#include <cassert>

#include "src/obs/metrics.h"
#include "src/util/serializer.h"

namespace logfs {

SegmentUsageTable::SegmentUsageTable(uint32_t num_segments, uint32_t block_size)
    : num_segments_(num_segments),
      block_size_(block_size),
      entries_per_block_(block_size / kSegUsageEntrySize),
      entries_(num_segments) {
  block_count_ = (num_segments_ + entries_per_block_ - 1) / entries_per_block_;
  dirty_blocks_.assign(block_count_, false);
}

void SegmentUsageTable::AddLive(uint32_t seg, int64_t delta_bytes) {
  assert(seg < num_segments_);
  SegUsage& usage = entries_[seg];
  int64_t next = static_cast<int64_t>(usage.live_bytes) + delta_bytes;
  if (next < 0) {
    // Double-decrement guard: clamp instead of wrapping the uint32 (which
    // would make this segment look maximally live and starve the cleaner of
    // its best victim). Counted so the anomaly stays visible.
    if constexpr (obs::kMetricsEnabled) {
      static obs::Counter& clamps =
          obs::Registry().GetCounter("logfs.usage.underflow_clamps");
      clamps.Increment();
    }
    next = 0;
  }
  usage.live_bytes = static_cast<uint32_t>(next);
  MarkDirty(seg);
}

void SegmentUsageTable::SetLive(uint32_t seg, uint32_t live_bytes) {
  assert(seg < num_segments_);
  entries_[seg].live_bytes = live_bytes;
  MarkDirty(seg);
}

void SegmentUsageTable::SetState(uint32_t seg, SegState state) {
  assert(seg < num_segments_);
  entries_[seg].state = state;
  MarkDirty(seg);
}

void SegmentUsageTable::SetWriteSeq(uint32_t seg, uint64_t seq) {
  assert(seg < num_segments_);
  entries_[seg].last_write_seq = seq;
  MarkDirty(seg);
}

void SegmentUsageTable::NoteAllocated(uint32_t seg, double now) {
  assert(seg < num_segments_);
  // Deliberately no MarkDirty: heat is memory-only and must never add a
  // usage block to a checkpoint that would not otherwise carry one.
  SegUsage& usage = entries_[seg];
  usage.allocated_at = now;
  usage.last_overwrite_at = 0.0;
  usage.heat_interval_ewma = 0.0;
}

void SegmentUsageTable::RecordOverwrite(uint32_t seg, double now) {
  assert(seg < num_segments_);
  SegUsage& usage = entries_[seg];
  if (usage.last_overwrite_at > 0.0) {
    const double interval = now - usage.last_overwrite_at;
    if (interval >= 0.0) {
      usage.heat_interval_ewma =
          usage.heat_interval_ewma == 0.0
              ? interval
              : kHeatAlpha * interval + (1.0 - kHeatAlpha) * usage.heat_interval_ewma;
    }
  }
  usage.last_overwrite_at = now;
}

uint32_t SegmentUsageTable::CountState(SegState state) const {
  uint32_t count = 0;
  for (const SegUsage& usage : entries_) {
    if (usage.state == state) {
      ++count;
    }
  }
  return count;
}

uint64_t SegmentUsageTable::TotalLiveBytes() const {
  uint64_t total = 0;
  for (const SegUsage& usage : entries_) {
    total += usage.live_bytes;
  }
  return total;
}

Result<uint32_t> SegmentUsageTable::PickClean() const {
  for (uint32_t seg = 0; seg < num_segments_; ++seg) {
    if (entries_[seg].state == SegState::kClean) {
      return seg;
    }
  }
  return NotFoundError("no clean segments");
}

std::vector<uint32_t> SegmentUsageTable::PickVictims(uint32_t max_victims,
                                                     uint32_t max_live_bytes,
                                                     VictimPolicy policy) const {
  std::vector<uint32_t> dirty;
  for (uint32_t seg = 0; seg < num_segments_; ++seg) {
    if (entries_[seg].state == SegState::kDirty &&
        entries_[seg].live_bytes < max_live_bytes) {
      dirty.push_back(seg);
    }
  }
  std::sort(dirty.begin(), dirty.end(), [&](uint32_t a, uint32_t b) {
    if (policy == VictimPolicy::kGreedy) {
      if (entries_[a].live_bytes != entries_[b].live_bytes) {
        return entries_[a].live_bytes < entries_[b].live_bytes;
      }
    } else {
      if (entries_[a].last_write_seq != entries_[b].last_write_seq) {
        return entries_[a].last_write_seq < entries_[b].last_write_seq;
      }
    }
    return a < b;
  });
  if (dirty.size() > max_victims) {
    dirty.resize(max_victims);
  }
  return dirty;
}

std::vector<uint32_t> SegmentUsageTable::CommitPendingClean() {
  std::vector<uint32_t> quarantined;
  for (uint32_t seg = 0; seg < num_segments_; ++seg) {
    if (entries_[seg].state != SegState::kCleanPending) {
      continue;
    }
    if (entries_[seg].live_bytes != 0) {
      // Live bytes the cleaning pass could not relocate: keep them charged
      // (the pointers to the lost blocks are still out there) and side-track
      // the segment so it is never reallocated.
      entries_[seg].state = SegState::kQuarantined;
      quarantined.push_back(seg);
    } else {
      entries_[seg].state = SegState::kClean;
    }
    MarkDirty(seg);
  }
  return quarantined;
}

Status SegmentUsageTable::EncodeBlock(uint32_t block_index, std::span<std::byte> out) const {
  if (block_index >= block_count_ || out.size() < block_size_) {
    return InvalidArgumentError("bad usage block encode request");
  }
  BufferWriter writer(out);
  const uint32_t first = block_index * entries_per_block_;
  const uint32_t last = std::min(first + entries_per_block_, num_segments_);
  for (uint32_t seg = first; seg < last; ++seg) {
    const SegUsage& usage = entries_[seg];
    RETURN_IF_ERROR(writer.WriteU32(usage.live_bytes));
    // kActive is a runtime-only state; it persists as kDirty (the segment
    // holds live data and is not clean).
    const SegState persisted =
        usage.state == SegState::kActive ? SegState::kDirty : usage.state;
    RETURN_IF_ERROR(writer.WriteU32(static_cast<uint32_t>(persisted)));
    RETURN_IF_ERROR(writer.WriteU64(usage.last_write_seq));
  }
  return writer.WriteZeros(out.size() - writer.offset());
}

Status SegmentUsageTable::DecodeBlock(uint32_t block_index, std::span<const std::byte> in) {
  if (block_index >= block_count_ || in.size() < block_size_) {
    return CorruptedError("bad usage block decode request");
  }
  BufferReader reader(in);
  const uint32_t first = block_index * entries_per_block_;
  const uint32_t last = std::min(first + entries_per_block_, num_segments_);
  for (uint32_t seg = first; seg < last; ++seg) {
    SegUsage usage;
    ASSIGN_OR_RETURN(usage.live_bytes, reader.ReadU32());
    ASSIGN_OR_RETURN(uint32_t state_raw, reader.ReadU32());
    if (state_raw > static_cast<uint32_t>(SegState::kQuarantined)) {
      return CorruptedError("bad segment state");
    }
    usage.state = static_cast<SegState>(state_raw);
    // A kCleanPending state can only persist if the checkpoint that wrote
    // it was itself the cleaning barrier; after a reload it is clean.
    if (usage.state == SegState::kCleanPending) {
      usage.state = SegState::kClean;
      usage.live_bytes = 0;
    }
    ASSIGN_OR_RETURN(usage.last_write_seq, reader.ReadU64());
    entries_[seg] = usage;
  }
  dirty_blocks_[block_index] = false;
  return OkStatus();
}

void SegmentUsageTable::MarkAllDirty() { dirty_blocks_.assign(block_count_, true); }

}  // namespace logfs
