// Sharded-router seam primitives (declared in lfs_file_system.h; used by
// src/lfs/sharded_lfs.cc). Each is the slice of a native namespace
// operation that touches one shard's structures — the router composes them
// across shards while holding every involved shard's lock, so within a
// primitive this file system is single-threaded exactly as the native ops
// assume. Mutation accounting, CPU charges, space reservations and cache
// pressure handling deliberately mirror the native bodies in
// lfs_file_system_ops.cc so a cross-shard op costs the same as its
// same-shard equivalent split across two logs.
#include "src/fsbase/dirent.h"
#include "src/lfs/lfs_file_system.h"
#include "src/util/logging.h"

namespace logfs {

Result<DirEntry> LfsFileSystem::ShardFindEntry(InodeNum dir, std::string_view name) {
  if (cpu_ != nullptr) {
    ChargeCpu(cpu_->costs().lookup_instructions);
  }
  ASSIGN_OR_RETURN(CachedInode * dirnode, GetInode(dir));
  if (!dirnode->inode.IsDirectory()) {
    return NotDirectoryError("lookup in non-directory");
  }
  return DirFind(dir, dirnode->inode, name);
}

Status LfsFileSystem::ShardCheckCanInsert(InodeNum dir, std::string_view name) {
  RETURN_IF_ERROR(CheckWritable());
  ASSIGN_OR_RETURN(CachedInode * dirnode, GetInode(dir));
  if (!dirnode->inode.IsDirectory()) {
    return NotDirectoryError("create in non-directory");
  }
  Result<DirEntry> existing = DirFind(dir, dirnode->inode, name);
  if (existing.ok()) {
    return ExistsError(name);
  }
  if (existing.status().code() != ErrorCode::kNotFound) {
    return existing.status();
  }
  return OkStatus();
}

Result<InodeNum> LfsFileSystem::ShardAllocInode(FileType type, InodeNum parent_dir) {
  RETURN_IF_ERROR(CheckWritable());
  if (type != FileType::kRegular && type != FileType::kDirectory &&
      type != FileType::kSymlink) {
    return InvalidArgumentError("unsupported file type");
  }
  if (cpu_ != nullptr) {
    ChargeCpu(cpu_->costs().create_instructions);
  }
  RETURN_IF_ERROR(EnsureSpaceForWrite(2ull * BlockSize()));

  ASSIGN_OR_RETURN(InodeNum ino, imap_.Allocate(next_ino_hint_));
  next_ino_hint_ = ino + 1;
  CachedInode fresh;
  fresh.inode.type = type;
  fresh.inode.nlink = type == FileType::kDirectory ? 2 : 1;
  fresh.inode.generation = imap_.Get(ino).version;
  fresh.inode.mtime = fresh.inode.ctime = Now();
  SetInodeDirty(&(inodes_[ino] = fresh));
  imap_.SetAtime(ino, Now());

  if (type == FileType::kDirectory) {
    RETURN_IF_ERROR(DirInsert(ino, ".", ino, FileType::kDirectory));
    RETURN_IF_ERROR(DirInsert(ino, "..", parent_dir, FileType::kDirectory));
  }
  ++mutation_seq_;
  RETURN_IF_ERROR(MaybePressureFlush());
  return ino;
}

void LfsFileSystem::ShardAbortAlloc(InodeNum ino) {
  auto it = inodes_.find(ino);
  if (it == inodes_.end()) {
    return;
  }
  it->second.inode.nlink = 0;
  (void)ReleaseInode(ino);
  ++mutation_seq_;
}

Status LfsFileSystem::ShardAddEntry(InodeNum dir, std::string_view name, InodeNum child,
                                    FileType type, bool child_is_dir) {
  RETURN_IF_ERROR(CheckWritable());
  if (cpu_ != nullptr) {
    ChargeCpu(cpu_->costs().create_instructions);
  }
  ASSIGN_OR_RETURN(CachedInode * dirnode, GetInode(dir));
  if (!dirnode->inode.IsDirectory()) {
    return NotDirectoryError("create in non-directory");
  }
  Result<DirEntry> existing = DirFind(dir, dirnode->inode, name);
  if (existing.ok()) {
    return ExistsError(name);
  }
  if (existing.status().code() != ErrorCode::kNotFound) {
    return existing.status();
  }
  RETURN_IF_ERROR(EnsureSpaceForWrite(2ull * BlockSize()));
  RETURN_IF_ERROR(DirInsert(dir, name, child, type));
  if (child_is_dir) {
    ASSIGN_OR_RETURN(CachedInode * parent, GetInode(dir));
    ++parent->inode.nlink;
    SetInodeDirty(parent);
  }
  ++mutation_seq_;
  return MaybePressureFlush();
}

Status LfsFileSystem::ShardRemoveEntry(InodeNum dir, std::string_view name,
                                       bool child_was_dir) {
  RETURN_IF_ERROR(CheckWritable());
  if (cpu_ != nullptr) {
    ChargeCpu(cpu_->costs().remove_instructions);
  }
  RETURN_IF_ERROR(DirRemove(dir, name));
  if (child_was_dir) {
    ASSIGN_OR_RETURN(CachedInode * dirnode, GetInode(dir));
    --dirnode->inode.nlink;
    SetInodeDirty(dirnode);
  }
  ++mutation_seq_;
  return MaybePressureFlush();
}

Status LfsFileSystem::ShardReplaceEntry(InodeNum dir, std::string_view name, InodeNum child,
                                        FileType type, int nlink_delta) {
  RETURN_IF_ERROR(CheckWritable());
  if (cpu_ != nullptr) {
    ChargeCpu(cpu_->costs().create_instructions);
  }
  RETURN_IF_ERROR(DirReplace(dir, name, child, type));
  if (nlink_delta != 0) {
    ASSIGN_OR_RETURN(CachedInode * dirnode, GetInode(dir));
    dirnode->inode.nlink += nlink_delta;
    SetInodeDirty(dirnode);
  }
  ++mutation_seq_;
  return MaybePressureFlush();
}

Status LfsFileSystem::ShardAddLink(InodeNum ino) {
  RETURN_IF_ERROR(CheckWritable());
  ASSIGN_OR_RETURN(CachedInode * target, GetInode(ino));
  if (target->inode.IsDirectory()) {
    return IsDirectoryError("cannot hard-link a directory");
  }
  ++target->inode.nlink;
  target->inode.ctime = Now();
  SetInodeDirty(target);
  ++mutation_seq_;
  return MaybePressureFlush();
}

Status LfsFileSystem::ShardDropLink(InodeNum ino) {
  RETURN_IF_ERROR(CheckWritable());
  ASSIGN_OR_RETURN(CachedInode * target, GetInode(ino));
  --target->inode.nlink;
  if (target->inode.nlink == 0) {
    RETURN_IF_ERROR(ReleaseInode(ino));
  } else {
    target->inode.ctime = Now();
    SetInodeDirty(target);
  }
  ++mutation_seq_;
  return MaybePressureFlush();
}

Status LfsFileSystem::ShardReleaseDir(InodeNum ino) {
  RETURN_IF_ERROR(CheckWritable());
  ASSIGN_OR_RETURN(CachedInode * target, GetInode(ino));
  if (!target->inode.IsDirectory()) {
    return NotDirectoryError("expected a directory");
  }
  RETURN_IF_ERROR(ReleaseInode(ino));
  ++mutation_seq_;
  return MaybePressureFlush();
}

Result<bool> LfsFileSystem::ShardDirIsEmpty(InodeNum ino) {
  ASSIGN_OR_RETURN(CachedInode * node, GetInode(ino));
  if (!node->inode.IsDirectory()) {
    return NotDirectoryError("expected a directory");
  }
  return DirIsEmpty(ino, node->inode);
}

Status LfsFileSystem::ShardSetDotDot(InodeNum child_dir, InodeNum new_parent) {
  RETURN_IF_ERROR(CheckWritable());
  RETURN_IF_ERROR(DirReplace(child_dir, "..", new_parent, FileType::kDirectory));
  ++mutation_seq_;
  return MaybePressureFlush();
}

Result<InodeNum> LfsFileSystem::ShardPeekAllocInode() const {
  return imap_.PeekAllocate(next_ino_hint_);
}

// --- Repair primitives (see header note: no nlink arithmetic here; the
// repairer ends with an exact recount via ShardSetNlink). ---

Status LfsFileSystem::ShardRepairRemoveEntry(InodeNum dir, std::string_view name) {
  RETURN_IF_ERROR(CheckWritable());
  RETURN_IF_ERROR(DirRemove(dir, name));
  ++mutation_seq_;
  return MaybePressureFlush();
}

Status LfsFileSystem::ShardRepairInsertEntry(InodeNum dir, std::string_view name,
                                             InodeNum child, FileType type) {
  RETURN_IF_ERROR(CheckWritable());
  RETURN_IF_ERROR(EnsureSpaceForWrite(2ull * BlockSize()));
  RETURN_IF_ERROR(DirInsert(dir, name, child, type));
  ++mutation_seq_;
  return MaybePressureFlush();
}

Status LfsFileSystem::ShardRepairSetEntry(InodeNum dir, std::string_view name,
                                          InodeNum child, FileType type) {
  RETURN_IF_ERROR(CheckWritable());
  RETURN_IF_ERROR(DirReplace(dir, name, child, type));
  ++mutation_seq_;
  return MaybePressureFlush();
}

Status LfsFileSystem::ShardSetNlink(InodeNum ino, uint32_t nlink) {
  RETURN_IF_ERROR(CheckWritable());
  ASSIGN_OR_RETURN(CachedInode * node, GetInode(ino));
  if (node->inode.nlink == nlink) {
    return OkStatus();
  }
  node->inode.nlink = nlink;
  SetInodeDirty(node);
  ++mutation_seq_;
  return MaybePressureFlush();
}

Status LfsFileSystem::ShardReapInode(InodeNum ino) {
  RETURN_IF_ERROR(CheckWritable());
  ASSIGN_OR_RETURN(CachedInode * node, GetInode(ino));
  node->inode.nlink = 0;
  RETURN_IF_ERROR(ReleaseInode(ino));
  ++mutation_seq_;
  return MaybePressureFlush();
}

}  // namespace logfs
