#include "src/lfs/lfs_blocks.h"

#include <cstring>

#include "src/util/serializer.h"

namespace logfs {
namespace {

constexpr uint32_t kInodeBlockMagic = 0x494E424C;  // "INBL"
constexpr uint32_t kMetaLogMagic = 0x4D4C4F47;     // "MLOG"

}  // namespace

size_t InodesPerLfsBlock(uint32_t block_size) {
  return (block_size - 8) / (8 + kInodeDiskSize);
}

Status EncodeInodeBlock(std::span<const PackedInode> inodes, std::span<std::byte> out) {
  const size_t capacity = InodesPerLfsBlock(static_cast<uint32_t>(out.size()));
  if (inodes.size() > capacity || inodes.empty()) {
    return InvalidArgumentError("bad inode count for inode block");
  }
  std::memset(out.data(), 0, out.size());
  BufferWriter writer(out);
  RETURN_IF_ERROR(writer.WriteU32(kInodeBlockMagic));
  RETURN_IF_ERROR(writer.WriteU32(static_cast<uint32_t>(inodes.size())));
  for (const PackedInode& packed : inodes) {
    RETURN_IF_ERROR(writer.WriteU32(packed.ino));
    RETURN_IF_ERROR(writer.WriteU32(packed.version));
  }
  // Inode slots start right after the tag table, at fixed positions so a
  // slot index alone locates an inode.
  const size_t slots_start = 8 + inodes.size() * 8;
  for (size_t i = 0; i < inodes.size(); ++i) {
    RETURN_IF_ERROR(EncodeInode(inodes[i].inode,
                                out.subspan(slots_start + i * kInodeDiskSize, kInodeDiskSize)));
  }
  return OkStatus();
}

Result<std::vector<PackedInode>> DecodeInodeBlock(std::span<const std::byte> in) {
  BufferReader reader(in);
  ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kInodeBlockMagic) {
    return CorruptedError("bad inode block magic");
  }
  ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  if (count == 0 || count > InodesPerLfsBlock(static_cast<uint32_t>(in.size()))) {
    return CorruptedError("bad inode block count");
  }
  std::vector<PackedInode> inodes(count);
  for (PackedInode& packed : inodes) {
    ASSIGN_OR_RETURN(packed.ino, reader.ReadU32());
    ASSIGN_OR_RETURN(packed.version, reader.ReadU32());
  }
  const size_t slots_start = 8 + count * 8ull;
  for (size_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(inodes[i].inode,
                     DecodeInode(in.subspan(slots_start + i * kInodeDiskSize, kInodeDiskSize)));
  }
  return inodes;
}

size_t FreeRecordsPerBlock(uint32_t block_size) { return (block_size - 8) / 8; }

Status EncodeMetaLogBlock(std::span<const FreeRecord> records, std::span<std::byte> out) {
  if (records.size() > FreeRecordsPerBlock(static_cast<uint32_t>(out.size()))) {
    return InvalidArgumentError("too many free records for meta-log block");
  }
  std::memset(out.data(), 0, out.size());
  BufferWriter writer(out);
  RETURN_IF_ERROR(writer.WriteU32(kMetaLogMagic));
  RETURN_IF_ERROR(writer.WriteU32(static_cast<uint32_t>(records.size())));
  for (const FreeRecord& record : records) {
    RETURN_IF_ERROR(writer.WriteU32(record.ino));
    RETURN_IF_ERROR(writer.WriteU32(record.new_version));
  }
  return OkStatus();
}

Result<std::vector<FreeRecord>> DecodeMetaLogBlock(std::span<const std::byte> in) {
  BufferReader reader(in);
  ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kMetaLogMagic) {
    return CorruptedError("bad meta-log magic");
  }
  ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  if (count > FreeRecordsPerBlock(static_cast<uint32_t>(in.size()))) {
    return CorruptedError("bad meta-log count");
  }
  std::vector<FreeRecord> records(count);
  for (FreeRecord& record : records) {
    ASSIGN_OR_RETURN(record.ino, reader.ReadU32());
    ASSIGN_OR_RETURN(record.new_version, reader.ReadU32());
  }
  return records;
}

}  // namespace logfs
