// Cross-shard namespace reconciliation and repair (DESIGN.md §6i).
//
// One machine serves two masters:
//
//   * Mount-time intent reconciliation: ShardedLfs::Mount hands the
//     repairer the pending intents (lfs_intent.h) after per-shard
//     roll-forward. Each intent names every half of one cross-shard
//     operation; the repairer probes the actual durable state and settles
//     the operation forward or back (decision table in the .cc / §6i).
//   * The online repairer behind CheckShardedLfs(..., kRepair): the same
//     walk, run with an EMPTY intent list, fixes namespace damage on
//     images that predate the intent log or whose intent region was lost
//     to media faults — dangling dirents are dropped, orphans reattached
//     or reaped, dot entries and nlink counts rebuilt.
//
// The repairer never does incremental nlink arithmetic: structural edits
// use the nlink-free ShardRepair* primitives and a final exact recount
// (ShardSetNlink) sets every inode's count from the walked namespace. That
// makes each pass idempotent — re-running the repairer on a clean volume
// performs zero edits.
//
// Callers must hold every shard's lock (and the router's rename lock) for
// the duration; the repairer touches shard structures directly.
#ifndef LOGFS_SRC_LFS_LFS_REPAIR_H_
#define LOGFS_SRC_LFS_LFS_REPAIR_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/lfs/lfs_file_system.h"
#include "src/lfs/lfs_intent.h"
#include "src/util/result.h"

namespace logfs {

struct RepairReport {
  uint64_t intents_settled = 0;      // Pending intents reconciled (fwd or back).
  uint64_t dirents_dropped = 0;      // Dangling / duplicate entries removed.
  uint64_t dirents_fixed = 0;        // Dot entries / types repointed.
  uint64_t dirents_added = 0;        // Missing dots, rollback re-inserts.
  uint64_t orphans_reaped = 0;       // Unreachable inodes released.
  uint64_t orphans_reattached = 0;   // Unreachable inodes given a name.
  uint64_t nlinks_fixed = 0;         // Inodes whose recount changed nlink.
  std::vector<std::string> actions;  // Human-readable log, one per edit.

  uint64_t total_edits() const {
    return dirents_dropped + dirents_fixed + dirents_added + orphans_reaped +
           orphans_reattached + nlinks_fixed;
  }
};

// Repairs the cross-shard namespace of `shards` (indexed by shard number;
// ino homing is (ino - 1) % shards.size()). `pending` is the intent work
// list, op_id-ordered (empty for intent-less repair). Deterministic and
// idempotent; returns what was done.
Result<RepairReport> RepairShardedNamespace(std::span<LfsFileSystem* const> shards,
                                            std::span<const IntentRecord> pending);

}  // namespace logfs

#endif  // LOGFS_SRC_LFS_LFS_REPAIR_H_
