// The segment cleaner (paper Sections 4.3.2-4.3.4).
//
// Cleaning is a two-phase incremental garbage collection. Phase one reads
// whole victim segments (one sequential transfer each), identifies live
// blocks with the paper's two-step algorithm — (1) inode-map version check
// from the summary entry, (2) inode / indirect-block pointer check — and
// loads the live blocks into the file cache, marked dirty. Phase two is the
// ordinary cache write-back path: the live data is compacted into new
// segments exactly like freshly written data ("LFS implements cleaning by
// reading the live blocks into the file cache and then using the cache
// write-back code").
//
// A cleaned segment becomes kCleanPending and only turns allocatable after
// the next checkpoint commits, so a crash can never find the sole copy of a
// block overwritten before its new address was made recoverable.
#ifndef LOGFS_SRC_LFS_LFS_CLEANER_H_
#define LOGFS_SRC_LFS_LFS_CLEANER_H_

#include <cstdint>
#include <span>

#include "src/lfs/lfs_file_system.h"
#include "src/util/result.h"

namespace logfs {

// Paper write cost at observed utilization u: each segment of new data
// costs one segment write, u/(1-u) segments of live-copy writes, and
// 1/(1-u) segments of cleaner reads — 1 + u/(1-u) + 1/(1-u) = 2/(1-u).
// Published as the explicit three-term sum so a test hand-computing the
// formula from the same raw counters matches bit-for-bit.
//
// u is clamped below 1: the raw formula diverges as u -> 1 (every examined
// block alive, nothing reclaimable) and would poison the gauge — and any
// JSON export — with inf/NaN. Below the cap the clamp is exact identity.
inline constexpr double kWriteCostUtilizationCap = 1.0 - 1e-9;

inline double PaperWriteCost(double u) {
  if (!(u > 0.0)) return 2.0;  // u <= 0 or NaN: empty segments cost 2/(1-0).
  if (u > kWriteCostUtilizationCap) u = kWriteCostUtilizationCap;
  return 1.0 + u / (1.0 - u) + 1.0 / (1.0 - u);
}

class LfsCleaner {
 public:
  explicit LfsCleaner(LfsFileSystem* fs) : fs_(fs) {}

  // One cleaning pass over up to `max_victims` segments (greedy policy:
  // least-live first). Ends with a checkpoint that commits the reclaimed
  // segments. Returns the number of segments cleaned.
  Result<uint32_t> CleanSegments(uint32_t max_victims);

  // One cleaning pass over an explicit victim list (non-dirty entries are
  // skipped). Same commit protocol.
  Result<uint32_t> CleanVictims(std::vector<uint32_t> victims);

  // Best-effort rescue of a damaged segment (normally one the scrubber just
  // quarantined): walks `image` tolerantly — probing past unparseable
  // summary blocks, falling back to per-entry block checksums where a
  // partial segment's full CRC fails — and stages every live block that
  // still verifies, exactly like a cleaning pass would. Returns how many
  // blocks were staged; the caller flushes them to new homes.
  Result<uint64_t> SalvageSegment(uint32_t seg, std::span<const std::byte> image);

 private:
  // Phase one for one victim: identify live blocks and stage them in the
  // cache / in-core inode table. With `salvage` set the walk tolerates
  // damage (see SalvageSegment); without it, the walk stops at the first
  // unparseable or CRC-failing partial segment, matching the write path's
  // notion of where the valid chain ends.
  Status GatherLive(uint32_t seg, std::span<const std::byte> image, bool salvage);

  LfsFileSystem* fs_;
};

}  // namespace logfs

#endif  // LOGFS_SRC_LFS_LFS_CLEANER_H_
