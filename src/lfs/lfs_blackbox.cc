#include "src/lfs/lfs_blackbox.h"

#include <cstring>

#include "src/lfs/lfs_format.h"
#include "src/util/crc32.h"
#include "src/util/serializer.h"

namespace logfs {

size_t BlackBoxCapacity(size_t region_bytes, size_t checkpoint_payload_bytes) {
  if (region_bytes < checkpoint_payload_bytes + kBlackBoxFooterBytes) return 0;
  return region_bytes - checkpoint_payload_bytes - kBlackBoxFooterBytes;
}

Status EmbedBlackBox(std::span<std::byte> region, size_t checkpoint_payload_bytes,
                     std::span<const std::byte> blob) {
  if (blob.size() > BlackBoxCapacity(region.size(), checkpoint_payload_bytes)) {
    return NoSpaceError("black box blob does not fit the checkpoint region slack");
  }
  const size_t blob_start = region.size() - kBlackBoxFooterBytes - blob.size();
  std::memcpy(region.data() + blob_start, blob.data(), blob.size());
  BufferWriter w(region.subspan(region.size() - kBlackBoxFooterBytes));
  RETURN_IF_ERROR(w.WriteU32(static_cast<uint32_t>(blob.size())));
  RETURN_IF_ERROR(w.WriteU32(Crc32(blob)));
  RETURN_IF_ERROR(w.WriteU32(kBlackBoxVersion));
  RETURN_IF_ERROR(w.WriteU32(kBlackBoxMagic));
  return OkStatus();
}

Result<std::vector<std::byte>> ExtractBlackBox(std::span<const std::byte> region) {
  if (region.size() < kBlackBoxFooterBytes) {
    return CorruptedError("region too small for a black-box footer");
  }
  BufferReader r(region.subspan(region.size() - kBlackBoxFooterBytes));
  ASSIGN_OR_RETURN(uint32_t blob_len, r.ReadU32());
  ASSIGN_OR_RETURN(uint32_t blob_crc, r.ReadU32());
  ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kBlackBoxMagic) {
    return CorruptedError("no black-box trailer (bad magic)");
  }
  if (version != kBlackBoxVersion) {
    return CorruptedError("black-box trailer: unsupported version");
  }
  if (blob_len > region.size() - kBlackBoxFooterBytes) {
    return CorruptedError("black-box trailer: blob length exceeds region");
  }
  std::span<const std::byte> blob =
      region.subspan(region.size() - kBlackBoxFooterBytes - blob_len, blob_len);
  if (Crc32(blob) != blob_crc) {
    return CorruptedError("black-box trailer: blob CRC mismatch");
  }
  return std::vector<std::byte>(blob.begin(), blob.end());
}

namespace {

Result<RecoveredBlackBox> RecoverFromRegions(
    const std::vector<std::byte>& region_a, const std::vector<std::byte>& region_b) {
  Result<RecoveredBlackBox> best = CorruptedError("no valid black box in either region");
  const std::vector<std::byte>* regions[2] = {&region_a, &region_b};
  for (int r = 0; r < 2; ++r) {
    Result<std::vector<std::byte>> blob = ExtractBlackBox(*regions[r]);
    if (!blob.ok()) continue;
    Result<obs::TelemetryRing> ring = obs::TelemetryRing::Decode(*blob);
    if (!ring.ok()) continue;
    if (!best.ok() || ring->seq > best->ring.seq) {
      RecoveredBlackBox rec;
      rec.region = r;
      rec.ring = std::move(ring).value();
      best = std::move(rec);
    }
  }
  return best;
}

}  // namespace

Result<RecoveredBlackBox> RecoverBlackBox(BlockDevice* device) {
  std::vector<std::byte> first(4096);
  RETURN_IF_ERROR(device->ReadSectors(0, first));
  ASSIGN_OR_RETURN(LfsSuperblock sb, DecodeLfsSuperblock(first));
  const size_t region_bytes =
      static_cast<size_t>(sb.checkpoint_region_blocks) * sb.block_size;
  std::vector<std::byte> regions[2];
  for (int r = 0; r < 2; ++r) {
    regions[r].assign(region_bytes, std::byte{0});
    const uint64_t sector =
        (1ull + static_cast<uint64_t>(r) * sb.checkpoint_region_blocks) *
        sb.SectorsPerBlock();
    // A region that cannot be read simply contributes no candidate.
    (void)device->ReadSectors(sector, regions[r]);
  }
  return RecoverFromRegions(regions[0], regions[1]);
}

Result<RecoveredBlackBox> RecoverBlackBoxFromImage(std::span<const std::byte> image) {
  if (image.size() < 4096) {
    return CorruptedError("image too small for a superblock");
  }
  ASSIGN_OR_RETURN(LfsSuperblock sb, DecodeLfsSuperblock(image.subspan(0, 4096)));
  const size_t region_bytes =
      static_cast<size_t>(sb.checkpoint_region_blocks) * sb.block_size;
  std::vector<std::byte> regions[2];
  for (int r = 0; r < 2; ++r) {
    const size_t offset =
        (1ull + static_cast<uint64_t>(r) * sb.checkpoint_region_blocks) * sb.block_size;
    if (offset + region_bytes > image.size()) {
      return CorruptedError("image too small for the checkpoint regions");
    }
    regions[r].assign(image.begin() + static_cast<ptrdiff_t>(offset),
                      image.begin() + static_cast<ptrdiff_t>(offset + region_bytes));
  }
  return RecoverFromRegions(regions[0], regions[1]);
}

}  // namespace logfs
