// ShardedLfs: a sharded multi-log LFS with a thread-safe concurrent
// front-end.
//
// The single-log storage manager serializes every operation behind one
// append point: one segment builder, one cleaner, one checkpoint. This
// router partitions the volume into N independent logs ("shards"), each a
// complete LfsFileSystem over a contiguous WindowDisk slice of the device —
// its own segment writer, cleaner, segment-usage table, inode-map partition
// and buffer cache. Operations on different shards proceed concurrently on
// different threads; the router itself holds no global lock on the hot
// path.
//
// Inode-number space: global numbers are striped by residue — shard i of N
// owns every ino with (ino - 1) % N == i, so ShardOf() is pure arithmetic
// and no shared allocation state exists. The root directory (ino 1) lives
// on shard 0. New children are placed by hashing (parent, name), spreading
// even a single hot directory's files across all logs.
//
// Locking protocol: one mutex per shard. Single-shard operations (the
// common case: read, write, fsync, same-shard namespace ops) take exactly
// their shard's lock and run the native single-log code. Cross-shard
// namespace operations lock the involved shards in ascending index order
// (no deadlock), and compose the Shard* seam primitives of
// lfs_file_system.h. An operation that discovers it needs a lower-indexed
// shard after already holding a higher one releases, re-locks in order, and
// revalidates. Renames additionally serialize on a router-level mutex: the
// cross-shard subtree (cycle) check walks ".." chains with transient
// per-shard locks, and only renames can reparent directories, so holding
// rename_mu_ keeps the directory topology stable for the walk.
//
// Crash semantics across shards: each shard checkpoints and rolls forward
// independently; a cross-shard intent log (lfs_intent.h) closes the gap
// between the halves of a multi-shard namespace operation. Before the
// first shard mutates, the router durably publishes an intent record; on
// mount, unretired intents drive a deterministic reconciliation
// (lfs_repair.h) that completes or rolls back each half-applied operation,
// so CheckShardedLfs reports zero cross-shard damage on every crash image.
// Every shard is individually consistent, fsync durability per inode
// holds, and synced data is never lost; see DESIGN.md §6g/§6i for the
// full contract and the reconciliation decision table.
//
// shard_count 1 is the degenerate configuration: Format and Mount delegate
// to the unmodified single-log LfsFileSystem on the raw device — on-disk
// bytes and DiskStats are identical to the seed, with only a mutex
// acquisition added per operation.
#ifndef LOGFS_SRC_LFS_SHARDED_LFS_H_
#define LOGFS_SRC_LFS_SHARDED_LFS_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/disk/resilient_disk.h"
#include "src/disk/window_disk.h"
#include "src/fsbase/file_system.h"
#include "src/lfs/lfs_check.h"
#include "src/lfs/lfs_file_system.h"
#include "src/lfs/lfs_intent.h"
#include "src/lfs/lfs_repair.h"
#include "src/obs/trace_context.h"

namespace logfs {

class ShardedLfs : public FileSystem {
 public:
  using Options = LfsFileSystem::Options;

  // Formats `device` as `shard_count` independent logs on equal contiguous
  // slices. `params.max_inodes` is the GLOBAL inode budget, split across
  // shards by residue class. shard_count <= 1 produces the seed single-log
  // format (byte-identical). The shard membership is recorded in each
  // slice's superblock; Mount rediscovers it from sector 0.
  static Status Format(BlockDevice* device, const LfsParams& params, uint32_t shard_count);

  // Mounts whatever Format wrote: sharded volumes get one LfsFileSystem per
  // window (each rolling forward independently), unsharded volumes a single
  // passthrough instance on the raw device. `options` applies to every
  // shard (each gets its own cache of the configured size).
  static Result<std::unique_ptr<ShardedLfs>> Mount(BlockDevice* device, SimClock* clock,
                                                   CpuModel* cpu, Options options = {});

  // --- FileSystem interface: safe for concurrent callers ---
  Result<InodeNum> Create(InodeNum dir, std::string_view name, FileType type) override;
  Result<InodeNum> Lookup(InodeNum dir, std::string_view name) override;
  Status Unlink(InodeNum dir, std::string_view name) override;
  Status Rmdir(InodeNum dir, std::string_view name) override;
  Status Link(InodeNum dir, std::string_view name, InodeNum target) override;
  Status Rename(InodeNum from_dir, std::string_view from_name, InodeNum to_dir,
                std::string_view to_name) override;
  Result<uint64_t> Read(InodeNum ino, uint64_t offset, std::span<std::byte> out) override;
  Result<uint64_t> Write(InodeNum ino, uint64_t offset, std::span<const std::byte> data) override;
  Status Truncate(InodeNum ino, uint64_t new_size) override;
  Result<FileStat> Stat(InodeNum ino) override;
  Result<std::vector<DirEntry>> ReadDir(InodeNum dir) override;
  Status Sync() override;             // Per-shard checkpoints, ascending order.
  Status Fsync(InodeNum ino) override;
  Status DropCaches() override;
  Status Tick() override;             // Also refreshes logfs.shard.<i>.* gauges.
  std::string name() const override { return "LFS-sharded"; }

  // --- administration / introspection ---
  uint32_t shard_count() const { return static_cast<uint32_t>(shards_.size()); }
  // Which shard owns `ino`. Pure arithmetic — callable without locks.
  uint32_t ShardOf(InodeNum ino) const {
    return static_cast<uint32_t>((ino - 1) % shards_.size());
  }
  // Direct access for tests/tools. The caller is responsible for quiescence
  // (no concurrent router operations) while poking a shard directly.
  LfsFileSystem* shard(uint32_t i) { return shards_[i]->fs.get(); }

  // Fan-out: forces a checkpoint on every shard.
  Status Checkpoint();
  // Fan-out: cleans up to `max_victims` segments PER SHARD; returns the
  // total cleaned.
  Result<uint32_t> CleanNow(uint32_t max_victims);
  // Fan-out: scrubs up to `max_segments` PER SHARD; aggregates the reports.
  Result<LfsFileSystem::ScrubReport> Scrub(uint32_t max_segments);
  // Publishes per-shard gauges (logfs.shard.<i>.clean_segments, .live_bytes,
  // .write_cost, ...). Called from Tick(); callable directly by tools.
  void PublishShardMetrics();

  // Cross-shard intent log. Present only on N>=2 volumes formatted with an
  // intent region (the INT1 superblock extension); null on unsharded
  // mounts (shards=1 stays byte-identical to the seed) and on sharded
  // images that predate the region (repair mode covers those).
  bool intent_log_enabled() const { return intents_ != nullptr; }
  IntentLog* intent_log() { return intents_.get(); }
  // What mount-time intent reconciliation did (nullopt when there were no
  // pending intents). For lfs_inspect and tests.
  const std::optional<RepairReport>& reconcile_report() const {
    return reconcile_report_;
  }

 private:
  struct Shard {
    std::unique_ptr<WindowDisk> window;  // null for the unsharded passthrough
    std::unique_ptr<LfsFileSystem> fs;
    std::mutex mu;
  };

  // Shard-mutex acquisition with trace attribution. When the acquiring
  // thread carries an ambient trace context, time blocked on a contended
  // shard becomes a "shard.lock_wait" span and the critical section a
  // "shard.lock_held" span whose id is installed as the ambient parent, so
  // the shard's own op spans nest inside the lock section. Aggregate
  // contention counters (logfs.shard.lock.{wait,held}_us) are kept only for
  // true multi-shard mounts: the degenerate shards=1 mount must leave the
  // metric namespace — and hence the flight-recorder black box —
  // byte-identical to the seed. Waits are measured on the SimClock, which
  // other threads advance while doing the work that blocks us, so a wait's
  // extent is the simulated work the holder did meanwhile.
  class Locked {
   public:
    Locked(ShardedLfs* sfs, uint32_t shard);
    ~Locked();
    Locked(const Locked&) = delete;
    Locked& operator=(const Locked&) = delete;

   private:
    ShardedLfs* sfs_;
    uint32_t shard_;
    std::unique_lock<std::mutex> lock_;
    double held_start_ = 0.0;
    obs::TraceContext ctx_;  // caller's ambient context; inactive = untraced
    uint64_t held_span_ = 0;
    std::optional<obs::TraceContextScope> scope_;
  };

  ShardedLfs() = default;

  LfsFileSystem* fs(uint32_t i) { return shards_[i]->fs.get(); }
  // Deterministic placement of a new child created as (dir, name).
  // Directories are spread by FNV-1a over the name bytes and the parent
  // ino; everything else is colocated on the parent directory's shard.
  // The directory is the placement domain: one client working under its
  // own directory touches exactly one log (no cross-shard creates, no
  // convoying on another client's flush), while the directory tree itself
  // fans out across shards. The cost is that a flat tree — every file in
  // one directory — stays on one log; spread work by spreading the tree.
  uint32_t PlaceShard(InodeNum dir, std::string_view name, FileType type) const;
  // Locks every index in `want` (duplicates fine) in ascending order.
  std::vector<std::unique_lock<std::mutex>> LockSet(std::vector<uint32_t> want);
  // Walks `candidate`'s ".." chain to the root with transient per-shard
  // locks; true if `ancestor` is on the chain (including candidate ==
  // ancestor). Caller must hold rename_mu_ and no shard locks.
  Result<bool> IsInSubtreeGlobal(InodeNum candidate, InodeNum ancestor);

  // Mount-time intent reconciliation: loads pending intents, repairs the
  // namespace from them, syncs every shard and retires the settled slots
  // (in that order — retiring before the repair is durable would leave
  // damage with no intent on a subsequent crash).
  Status ReconcileIntents();
  // Snapshots every shard's durable horizon and retires covered intents.
  // Takes each shard lock briefly; callers must hold none.
  Status RetireDurableIntents();
  // Full drain for a kBusy publish: sync every shard, then retire.
  Status DrainIntents();

  std::vector<std::unique_ptr<Shard>> shards_;
  SimClock* clock_ = nullptr;  // Stamps lock wait/held spans; set at Mount.
  // Serializes renames (N > 1): keeps directory topology stable for the
  // cross-shard cycle walk. Never held across a blocking shard operation
  // other than the rename itself.
  std::mutex rename_mu_;
  // Intent-region I/O retries transient faults and surfaces only
  // persistent media errors (which abort the op unstarted).
  std::unique_ptr<ResilientDisk> intent_dev_;
  std::unique_ptr<IntentLog> intents_;
  std::optional<RepairReport> reconcile_report_;

  friend Result<LfsCheckReport> CheckShardedLfs(ShardedLfs*, bool, RepairMode);
};

// Global consistency check for a sharded mount: runs every per-shard
// structural invariant (LfsChecker in shard mode — imap resolution, usage
// exactness, address uniqueness, media CRCs, content readability) and then
// the namespace invariants (rooted acyclic tree, dot entries, nlink,
// orphans) globally. Problems from shard i are prefixed "shard i:".
//
// The check self-serializes against concurrent router operations: it holds
// the rename lock and every shard lock for the duration, so it may run
// online against live traffic. With RepairMode::kRepair, namespace damage
// found by the first pass is fixed in place by the online repairer
// (lfs_repair.h), the shards are synced, and the reported result is the
// post-repair re-check (repairs_applied / repair_actions record the edits)
// — this is the recovery path for images that predate the intent log or
// whose intent region was lost to media faults.
Result<LfsCheckReport> CheckShardedLfs(ShardedLfs* fs, bool verify_data = true,
                                       RepairMode repair = RepairMode::kCheckOnly);

}  // namespace logfs

#endif  // LOGFS_SRC_LFS_SHARDED_LFS_H_
