#include "src/lfs/lfs_repair.h"

#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/fsbase/dirent.h"

namespace logfs {
namespace {

// The iterated walk converges in one pass per level of damage nesting
// (an orphan directory reattached in pass N has its subtree walked in pass
// N+1); real crash images settle in 1-2 passes.
constexpr int kMaxPasses = 6;

class Repairer {
 public:
  Repairer(std::span<LfsFileSystem* const> shards, std::span<const IntentRecord> pending)
      : shards_(shards), pending_(pending) {}

  Result<RepairReport> Run() {
    for (const IntentRecord& in : pending_) {
      RETURN_IF_ERROR(SettleIntent(in));
      ++report_.intents_settled;
    }
    for (int pass = 0; pass < kMaxPasses; ++pass) {
      Walk walk;
      ASSIGN_OR_RETURN(uint64_t walk_edits, WalkAndFix(&walk));
      ASSIGN_OR_RETURN(uint64_t orphan_edits, HandleOrphans(walk));
      if (walk_edits == 0 && orphan_edits == 0) {
        break;
      }
    }
    Walk walk;
    RETURN_IF_ERROR(WalkAndFix(&walk).status());
    RETURN_IF_ERROR(RecountNlinks(walk));
    return std::move(report_);
  }

 private:
  struct Walk {
    std::unordered_set<InodeNum> visited;
    std::unordered_map<InodeNum, uint32_t> name_refs;
    std::unordered_map<InodeNum, uint32_t> child_dirs;
    std::unordered_map<InodeNum, InodeNum> parent_of;
  };

  uint32_t ShardOf(InodeNum ino) const {
    return static_cast<uint32_t>((ino - 1) % shards_.size());
  }
  LfsFileSystem* Home(InodeNum ino) const { return shards_[ShardOf(ino)]; }

  bool Allocated(InodeNum ino) const {
    if (ino == 0) {
      return false;
    }
    const InodeMap& imap = Home(ino)->imap();
    return imap.IsValid(ino) && imap.Get(ino).allocated;
  }
  // Target ino of (dir, name), or 0 when absent / unreadable.
  InodeNum EntryTarget(InodeNum dir, std::string_view name) {
    Result<DirEntry> found = Home(dir)->ShardFindEntry(dir, name);
    return found.ok() ? found->ino : 0;
  }
  bool IsDirectory(InodeNum ino) {
    Result<FileStat> stat = Home(ino)->Stat(ino);
    return stat.ok() && stat->type == FileType::kDirectory;
  }

  void Note(std::string msg) { report_.actions.push_back(std::move(msg)); }

  Status Drop(InodeNum dir, std::string_view name, const char* why) {
    RETURN_IF_ERROR(Home(dir)->ShardRepairRemoveEntry(dir, name));
    ++report_.dirents_dropped;
    Note("dropped " + std::string(why) + " entry '" + std::string(name) + "' in dir " +
         std::to_string(dir));
    return OkStatus();
  }
  Status Insert(InodeNum dir, std::string_view name, InodeNum child, FileType type,
                const char* why) {
    RETURN_IF_ERROR(Home(dir)->ShardRepairInsertEntry(dir, name, child, type));
    ++report_.dirents_added;
    Note("inserted entry '" + std::string(name) + "' -> ino " + std::to_string(child) +
         " in dir " + std::to_string(dir) + " (" + why + ")");
    return OkStatus();
  }
  Status Repoint(InodeNum dir, std::string_view name, InodeNum child, FileType type,
                 const char* why) {
    RETURN_IF_ERROR(Home(dir)->ShardRepairSetEntry(dir, name, child, type));
    ++report_.dirents_fixed;
    Note("repointed entry '" + std::string(name) + "' in dir " + std::to_string(dir) +
         " -> ino " + std::to_string(child) + " (" + why + ")");
    return OkStatus();
  }
  Status Reap(InodeNum ino, const char* why) {
    RETURN_IF_ERROR(Home(ino)->ShardReapInode(ino));
    ++report_.orphans_reaped;
    Note("reaped orphan ino " + std::to_string(ino) + " (" + why + ")");
    return OkStatus();
  }

  // --- Phase 0: settle pending intents (op_id order) ---
  //
  // Decision table (§6i). `dirent` = (from_dir, from_name); probes run
  // against the recovered (durable) shard states:
  //   create: dirent -> child but child gone     => drop dirent (roll back)
  //           child allocated, dirent gone       => reap child  (orphan pass)
  //   link:   dirent -> child but child gone     => drop dirent (roll back)
  //   unlink: dirent -> child but child gone     => drop dirent (roll forward)
  //           child allocated, dirent gone       => reap child  (orphan pass;
  //                                                 only if no other name)
  //   rmdir:  same as unlink, child is the empty directory
  //   rename: forward iff the destination half or the victim release is
  //           durable, else back — see SettleRename.
  // nlink in all cases comes from the final recount, never from the table.
  Status SettleIntent(const IntentRecord& in) {
    switch (in.kind) {
      case IntentKind::kCreate:
      case IntentKind::kLink:
      case IntentKind::kUnlink:
      case IntentKind::kRmdir: {
        reap_if_orphan_.insert(in.child);
        if (Allocated(in.from_dir) &&
            EntryTarget(in.from_dir, in.from_name) == in.child && !Allocated(in.child)) {
          RETURN_IF_ERROR(Drop(in.from_dir, in.from_name, "half-applied"));
        }
        return OkStatus();
      }
      case IntentKind::kRename:
        return SettleRename(in);
    }
    return OkStatus();
  }

  Status SettleRename(const IntentRecord& in) {
    if (in.victim != 0) {
      reap_if_orphan_.insert(in.victim);
    }
    rename_child_[in.child] = &in;
    if (!Allocated(in.child)) {
      return OkStatus();  // The walk drops whichever dangling entries remain.
    }
    const InodeNum src =
        Allocated(in.from_dir) ? EntryTarget(in.from_dir, in.from_name) : 0;
    const InodeNum dst = Allocated(in.to_dir) ? EntryTarget(in.to_dir, in.to_name) : 0;
    const bool victim_alive = in.victim != 0 && Allocated(in.victim);
    // Forward iff a destination-side half is already durable: the dst entry
    // points at the child, or the victim's release landed (the dst entry
    // cannot be rolled back to a victim that no longer exists).
    const bool forward = dst == in.child || (in.victim != 0 && !victim_alive);
    if (forward) {
      if (dst != in.child && Allocated(in.to_dir) && IsDirectory(in.to_dir)) {
        if (dst != 0) {
          RETURN_IF_ERROR(Repoint(in.to_dir, in.to_name, in.child, in.child_type,
                                  "rename roll-forward"));
        } else {
          RETURN_IF_ERROR(Insert(in.to_dir, in.to_name, in.child, in.child_type,
                                 "rename roll-forward"));
        }
      }
      if (src == in.child) {
        RETURN_IF_ERROR(Drop(in.from_dir, in.from_name, "rename roll-forward source"));
      }
      if (victim_alive) {
        RETURN_IF_ERROR(Reap(in.victim, "rename victim"));
      }
    } else if (src != in.child && src == 0 && Allocated(in.from_dir) &&
               IsDirectory(in.from_dir)) {
      RETURN_IF_ERROR(Insert(in.from_dir, in.from_name, in.child, in.child_type,
                             "rename roll-back"));
    }
    // A moved directory's '..' is corrected by the walk (it repoints '..'
    // at the actual walk parent), so neither branch edits it here.
    return OkStatus();
  }

  // --- Iterated global walk ---
  //
  // One BFS from the root that fixes what it can prove wrong locally:
  // dangling entries dropped, duplicate directory links detached
  // (first-in-BFS-order parent wins), '.'/'..' repointed or re-inserted,
  // entry/inode type disagreements repointed. Returns the number of edits;
  // `walk` receives the reachability tallies of the walked (post-fix) tree.
  Result<uint64_t> WalkAndFix(Walk* walk) {
    const uint64_t before = report_.total_edits();
    std::deque<InodeNum> queue;
    queue.push_back(kRootIno);
    walk->visited.insert(kRootIno);
    walk->parent_of[kRootIno] = kRootIno;
    while (!queue.empty()) {
      const InodeNum dir = queue.front();
      queue.pop_front();
      Result<std::vector<DirEntry>> entries_r = Home(dir)->ReadDir(dir);
      if (!entries_r.ok()) {
        Note("dir " + std::to_string(dir) + " unreadable, skipped: " +
             entries_r.status().ToString());
        continue;
      }
      std::vector<DirEntry>& entries = entries_r.value();
      const InodeNum parent = walk->parent_of[dir];
      bool saw_dot = false;
      bool saw_dotdot = false;
      for (const DirEntry& entry : entries) {
        if (entry.name == ".") {
          saw_dot = true;
          if (entry.ino != dir) {
            RETURN_IF_ERROR(Repoint(dir, ".", dir, FileType::kDirectory, "wrong '.'"));
          }
          continue;
        }
        if (entry.name == "..") {
          saw_dotdot = true;
          if (entry.ino != parent) {
            RETURN_IF_ERROR(
                Repoint(dir, "..", parent, FileType::kDirectory, "wrong '..'"));
          }
          continue;
        }
        if (!Allocated(entry.ino)) {
          RETURN_IF_ERROR(Drop(dir, entry.name, "dangling"));
          continue;
        }
        Result<FileStat> stat = Home(entry.ino)->Stat(entry.ino);
        if (!stat.ok()) {
          RETURN_IF_ERROR(Drop(dir, entry.name, "unstattable"));
          continue;
        }
        if (stat->type == FileType::kDirectory &&
            walk->visited.contains(entry.ino)) {
          RETURN_IF_ERROR(Drop(dir, entry.name, "duplicate directory link"));
          continue;
        }
        if (stat->type != entry.type) {
          RETURN_IF_ERROR(
              Repoint(dir, entry.name, entry.ino, stat->type, "type mismatch"));
        }
        ++walk->name_refs[entry.ino];
        if (stat->type == FileType::kDirectory) {
          ++walk->child_dirs[dir];
          walk->visited.insert(entry.ino);
          walk->parent_of[entry.ino] = dir;
          queue.push_back(entry.ino);
        } else {
          walk->visited.insert(entry.ino);
        }
      }
      if (!saw_dot) {
        RETURN_IF_ERROR(Insert(dir, ".", dir, FileType::kDirectory, "missing '.'"));
      }
      if (!saw_dotdot) {
        RETURN_IF_ERROR(Insert(dir, "..", parent, FileType::kDirectory, "missing '..'"));
      }
    }
    return report_.total_edits() - before;
  }

  // --- Orphan policy ---
  //
  // An allocated-but-unreachable inode is settled by what the intents say
  // about it: the half-applied child of a create/unlink/rmdir (or a rename
  // victim) is reaped; a rename's moved inode is reattached at its
  // destination name, else its source name; anything else (intent region
  // lost, pre-intent image) is reattached under the per-shard lost+found.
  Result<uint64_t> HandleOrphans(const Walk& walk) {
    const uint64_t before = report_.total_edits();
    for (uint32_t i = 0; i < shards_.size(); ++i) {
      const InodeMap& imap = shards_[i]->imap();
      for (uint32_t slot = 0; slot < imap.max_inodes(); ++slot) {
        if (!imap.GetSlot(slot).allocated) {
          continue;
        }
        const InodeNum ino = imap.InoAtSlot(slot);
        if (walk.visited.contains(ino)) {
          continue;
        }
        if (reap_if_orphan_.contains(ino)) {
          RETURN_IF_ERROR(Reap(ino, "named by a pending intent"));
          continue;
        }
        Result<FileStat> stat = shards_[i]->Stat(ino);
        if (!stat.ok()) {
          RETURN_IF_ERROR(Reap(ino, "unstattable"));
          continue;
        }
        auto moved = rename_child_.find(ino);
        if (moved != rename_child_.end()) {
          const IntentRecord& in = *moved->second;
          if (TryAttach(in.to_dir, in.to_name, ino, stat->type, walk) ||
              TryAttach(in.from_dir, in.from_name, ino, stat->type, walk)) {
            continue;
          }
        }
        ASSIGN_OR_RETURN(InodeNum lf, LostFound(i, walk));
        std::string name = "ino" + std::to_string(ino);
        for (int k = 1; EntryTarget(lf, name) != 0; ++k) {
          name = "ino" + std::to_string(ino) + "." + std::to_string(k);
        }
        RETURN_IF_ERROR(Home(lf)->ShardRepairInsertEntry(lf, name, ino, stat->type));
        ++report_.orphans_reattached;
        Note("reattached orphan ino " + std::to_string(ino) + " as lost+found." +
             std::to_string(i) + "/" + name);
      }
    }
    return report_.total_edits() - before;
  }

  // Reattaches `ino` at (dir, name) if dir is a reachable directory and the
  // name is free. Returns false (untouched) otherwise.
  bool TryAttach(InodeNum dir, std::string_view name, InodeNum ino, FileType type,
                 const Walk& walk) {
    if (dir == 0 || name.empty() || !Allocated(dir) || !walk.visited.contains(dir) ||
        !IsDirectory(dir) || EntryTarget(dir, name) != 0) {
      return false;
    }
    if (!Home(dir)->ShardRepairInsertEntry(dir, name, ino, type).ok()) {
      return false;
    }
    ++report_.orphans_reattached;
    Note("reattached rename target ino " + std::to_string(ino) + " at dir " +
         std::to_string(dir) + " entry '" + std::string(name) + "'");
    return true;
  }

  // Root entry "lost+found.<shard>": found-or-created, homed on `shard` so
  // the orphan dirent insert stays shard-local.
  Result<InodeNum> LostFound(uint32_t shard, const Walk& walk) {
    const std::string name = "lost+found." + std::to_string(shard);
    const InodeNum existing = EntryTarget(kRootIno, name);
    if (existing != 0) {
      if (Allocated(existing) && IsDirectory(existing)) {
        return existing;
      }
      RETURN_IF_ERROR(Drop(kRootIno, name, "unusable lost+found"));
    }
    (void)walk;
    ASSIGN_OR_RETURN(InodeNum ino,
                     shards_[shard]->ShardAllocInode(FileType::kDirectory, kRootIno));
    RETURN_IF_ERROR(
        Home(kRootIno)->ShardRepairInsertEntry(kRootIno, name, ino, FileType::kDirectory));
    Note("created " + name + " (ino " + std::to_string(ino) + ")");
    return ino;
  }

  // --- Final exact nlink recount over the converged namespace ---
  Status RecountNlinks(const Walk& walk) {
    auto tally = [](const std::unordered_map<InodeNum, uint32_t>& m, InodeNum ino) {
      auto it = m.find(ino);
      return it == m.end() ? 0u : it->second;
    };
    for (uint32_t i = 0; i < shards_.size(); ++i) {
      const InodeMap& imap = shards_[i]->imap();
      for (uint32_t slot = 0; slot < imap.max_inodes(); ++slot) {
        if (!imap.GetSlot(slot).allocated) {
          continue;
        }
        const InodeNum ino = imap.InoAtSlot(slot);
        if (!walk.visited.contains(ino)) {
          continue;  // kMaxPasses exhausted with damage left: do not guess.
        }
        ASSIGN_OR_RETURN(FileStat stat, shards_[i]->Stat(ino));
        const uint32_t expected = stat.type == FileType::kDirectory
                                      ? 2 + tally(walk.child_dirs, ino)
                                      : tally(walk.name_refs, ino);
        if (stat.nlink != expected) {
          RETURN_IF_ERROR(shards_[i]->ShardSetNlink(ino, expected));
          ++report_.nlinks_fixed;
          Note("recounted ino " + std::to_string(ino) + " nlink " +
               std::to_string(stat.nlink) + " -> " + std::to_string(expected));
        }
      }
    }
    return OkStatus();
  }

  std::span<LfsFileSystem* const> shards_;
  std::span<const IntentRecord> pending_;
  RepairReport report_;
  std::unordered_set<InodeNum> reap_if_orphan_;
  std::unordered_map<InodeNum, const IntentRecord*> rename_child_;
};

}  // namespace

Result<RepairReport> RepairShardedNamespace(std::span<LfsFileSystem* const> shards,
                                            std::span<const IntentRecord> pending) {
  if (shards.empty()) {
    return InvalidArgumentError("no shards to repair");
  }
  return Repairer(shards, pending).Run();
}

}  // namespace logfs
