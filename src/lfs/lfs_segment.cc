#include "src/lfs/lfs_segment.h"

#include <cassert>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/util/crc32.h"
#include "src/util/serializer.h"

namespace logfs {
namespace {

constexpr uint32_t kSummaryMagic = 0x53554D32;  // "SUM2"
// magic, full crc, seq, time, nblocks, header crc.
constexpr size_t kHeaderSize = 4 + 4 + 8 + 8 + 4 + 4;
// kind, ino, version, offset, block crc.
constexpr size_t kEntrySize = 1 + 4 + 4 + 8 + 4;

// Header-field byte offsets referenced by the CRC stamping/validation code.
constexpr size_t kFullCrcOffset = 4;
constexpr size_t kNblocksEnd = 28;     // End of the fields the header CRC covers.
constexpr size_t kHeaderCrcOffset = 28;

// CRC over the fixed header with both CRC fields zeroed, streamed so the
// caller's block is never cloned.
uint32_t HeaderCrc(std::span<const std::byte> block) {
  static constexpr std::byte kZeroCrcField[4] = {};
  uint32_t crc = Crc32Init();
  crc = Crc32Update(crc, block.subspan(0, kFullCrcOffset));
  crc = Crc32Update(crc, kZeroCrcField);
  crc = Crc32Update(crc, block.subspan(kFullCrcOffset + 4, kNblocksEnd - kFullCrcOffset - 4));
  crc = Crc32Update(crc, kZeroCrcField);
  return Crc32Finalize(crc);
}

}  // namespace

size_t SummaryCapacity(uint32_t block_size) { return (block_size - kHeaderSize) / kEntrySize; }

Status EncodeSummaryV(const SegmentSummary& summary, std::span<std::byte> block,
                      std::span<const std::span<const std::byte>> content_parts) {
  if (summary.entries.size() > SummaryCapacity(static_cast<uint32_t>(block.size()))) {
    return InvalidArgumentError("too many entries for summary block");
  }
  std::memset(block.data(), 0, block.size());
  BufferWriter writer(block);
  RETURN_IF_ERROR(writer.WriteU32(kSummaryMagic));
  RETURN_IF_ERROR(writer.WriteU32(0));  // CRC patched below.
  RETURN_IF_ERROR(writer.WriteU64(summary.seq));
  RETURN_IF_ERROR(writer.WriteF64(summary.timestamp));
  RETURN_IF_ERROR(writer.WriteU32(static_cast<uint32_t>(summary.entries.size())));
  RETURN_IF_ERROR(writer.WriteU32(0));  // Header CRC patched below.
  for (const SummaryEntry& entry : summary.entries) {
    RETURN_IF_ERROR(writer.WriteU8(static_cast<uint8_t>(entry.kind)));
    RETURN_IF_ERROR(writer.WriteU32(entry.ino));
    RETURN_IF_ERROR(writer.WriteU32(entry.version));
    RETURN_IF_ERROR(writer.WriteI64(entry.offset));
    RETURN_IF_ERROR(writer.WriteU32(entry.block_crc));
  }
  // Header CRC first (over both CRC fields zeroed), so the full CRC below
  // covers the stamped header-CRC bytes.
  RETURN_IF_ERROR(writer.SeekTo(kHeaderCrcOffset));
  RETURN_IF_ERROR(writer.WriteU32(HeaderCrc(block)));
  uint32_t crc = Crc32Init();
  crc = Crc32Update(crc, block);
  for (const auto& part : content_parts) {
    crc = Crc32Update(crc, part);
  }
  crc = Crc32Finalize(crc);
  RETURN_IF_ERROR(writer.SeekTo(4));
  return writer.WriteU32(crc);
}

Status EncodeSummary(const SegmentSummary& summary, std::span<std::byte> block,
                     std::span<const std::byte> content) {
  const std::span<const std::byte> one[] = {content};
  return EncodeSummaryV(summary, block, one);
}

Result<SummaryPeek> PeekSummary(std::span<const std::byte> block, uint32_t block_size) {
  BufferReader reader(block);
  ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kSummaryMagic) {
    return CorruptedError("bad summary magic");
  }
  RETURN_IF_ERROR(reader.Skip(4));
  SummaryPeek peek;
  ASSIGN_OR_RETURN(peek.seq, reader.ReadU64());
  RETURN_IF_ERROR(reader.Skip(8));
  ASSIGN_OR_RETURN(peek.nblocks, reader.ReadU32());
  ASSIGN_OR_RETURN(uint32_t stored_header_crc, reader.ReadU32());
  if (stored_header_crc != HeaderCrc(block)) {
    return CorruptedError("summary header CRC mismatch");
  }
  if (peek.nblocks > SummaryCapacity(block_size)) {
    return CorruptedError("summary block count out of range");
  }
  return peek;
}

namespace {

// Shared field decode for DecodeSummary / DecodeSummaryUnchecked; returns
// the summary plus the stored CRC for the caller to (not) validate.
Result<SegmentSummary> DecodeSummaryFields(std::span<const std::byte> block,
                                           uint32_t* stored_crc_out) {
  BufferReader reader(block);
  ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kSummaryMagic) {
    return CorruptedError("bad summary magic");
  }
  ASSIGN_OR_RETURN(uint32_t stored_crc, reader.ReadU32());
  SegmentSummary summary;
  ASSIGN_OR_RETURN(summary.seq, reader.ReadU64());
  ASSIGN_OR_RETURN(summary.timestamp, reader.ReadF64());
  ASSIGN_OR_RETURN(uint32_t nblocks, reader.ReadU32());
  RETURN_IF_ERROR(reader.Skip(4));  // Header CRC (validated by PeekSummary).
  if (nblocks > SummaryCapacity(static_cast<uint32_t>(block.size()))) {
    return CorruptedError("summary block count out of range");
  }
  summary.entries.resize(nblocks);
  for (SummaryEntry& entry : summary.entries) {
    ASSIGN_OR_RETURN(uint8_t kind_raw, reader.ReadU8());
    if (kind_raw < static_cast<uint8_t>(BlockKind::kData) ||
        kind_raw > static_cast<uint8_t>(BlockKind::kMetaLog)) {
      return CorruptedError("bad summary entry kind");
    }
    entry.kind = static_cast<BlockKind>(kind_raw);
    ASSIGN_OR_RETURN(entry.ino, reader.ReadU32());
    ASSIGN_OR_RETURN(entry.version, reader.ReadU32());
    ASSIGN_OR_RETURN(entry.offset, reader.ReadI64());
    ASSIGN_OR_RETURN(entry.block_crc, reader.ReadU32());
  }
  *stored_crc_out = stored_crc;
  return summary;
}

}  // namespace

Result<SegmentSummary> DecodeSummary(std::span<const std::byte> block,
                                     std::span<const std::byte> content) {
  uint32_t stored_crc = 0;
  ASSIGN_OR_RETURN(SegmentSummary summary, DecodeSummaryFields(block, &stored_crc));
  // CRC over the summary block with the CRC field zeroed, then the content.
  // Streamed as prefix / four zero bytes / suffix so the block is not cloned
  // just to blank the field.
  static constexpr std::byte kZeroCrcField[4] = {};
  uint32_t crc = Crc32Init();
  crc = Crc32Update(crc, block.subspan(0, 4));
  crc = Crc32Update(crc, kZeroCrcField);
  crc = Crc32Update(crc, block.subspan(8));
  crc = Crc32Update(crc, content);
  crc = Crc32Finalize(crc);
  if (crc != stored_crc) {
    return CorruptedError("summary CRC mismatch (torn or stale partial segment)");
  }
  return summary;
}

Result<SegmentSummary> DecodeSummaryUnchecked(std::span<const std::byte> block) {
  uint32_t ignored = 0;
  return DecodeSummaryFields(block, &ignored);
}

SegmentBuilder::SegmentBuilder(BlockDevice* device, const LfsSuperblock& sb)
    : device_(device), sb_(sb), summary_block_(sb.block_size),
      capacity_(SummaryCapacity(sb.block_size)) {
  // A partial segment holds at most BlocksPerSegment()-1 content blocks, so
  // reserving the full segment size guarantees the resizes in
  // AppendDeferred never reallocate (see the capacity assert there).
  buffer_.reserve(sb_.segment_size);
}

void SegmentBuilder::StartAt(uint32_t segment, uint32_t offset) {
  assert(entries_.empty() && "repositioning with pending blocks");
  segment_ = segment;
  start_offset_ = offset;
  buffer_.clear();
  extents_.clear();
  entry_sources_.clear();
}

bool SegmentBuilder::CanAppend() const {
  if (entries_.size() >= capacity_) {
    return false;
  }
  // Room needed: summary + existing entries + one more.
  return start_offset_ + 1 + entries_.size() + 1 <= sb_.BlocksPerSegment();
}

bool SegmentBuilder::SegmentHasRoom() const {
  return start_offset_ + 2 <= sb_.BlocksPerSegment();
}

Result<DiskAddr> SegmentBuilder::Append(BlockKind kind, uint32_t ino, uint32_t version,
                                        int64_t offset, std::span<const std::byte> data) {
  std::span<std::byte> buffer;
  ASSIGN_OR_RETURN(DiskAddr addr, AppendDeferred(kind, ino, version, offset, &buffer));
  if (data.size() != sb_.block_size) {
    return InvalidArgumentError("content block must be exactly one block");
  }
  std::memcpy(buffer.data(), data.data(), data.size());
  return addr;
}

Result<DiskAddr> SegmentBuilder::AppendDeferred(BlockKind kind, uint32_t ino, uint32_t version,
                                                int64_t offset, std::span<std::byte>* buffer) {
  if (!CanAppend()) {
    return NoSpaceError("partial segment full; flush first");
  }
  const uint32_t block_offset = start_offset_ + 1 + static_cast<uint32_t>(entries_.size());
  entries_.push_back(SummaryEntry{kind, ino, version, offset});
  if constexpr (obs::kMetricsEnabled) {
    entry_sources_.push_back(EntrySource(kind));
  }
  const size_t pos = buffer_.size();
  // A reallocation here would dangle every span previously handed out and
  // every slice in extents_; the constructor's reserve makes it impossible.
  assert(pos + sb_.block_size <= buffer_.capacity() &&
         "owned content outgrew the constructor reserve; handed-out spans would dangle");
  buffer_.resize(pos + sb_.block_size, std::byte{0});
  *buffer = std::span<std::byte>(buffer_).subspan(pos, sb_.block_size);
  extents_.push_back(*buffer);
  return sb_.SegmentBlockSector(segment_, block_offset);
}

Result<DiskAddr> SegmentBuilder::AppendExternal(BlockKind kind, uint32_t ino, uint32_t version,
                                                int64_t offset,
                                                std::span<const std::byte> data) {
  if (!CanAppend()) {
    return NoSpaceError("partial segment full; flush first");
  }
  if (data.size() != sb_.block_size) {
    return InvalidArgumentError("content block must be exactly one block");
  }
  const uint32_t block_offset = start_offset_ + 1 + static_cast<uint32_t>(entries_.size());
  entries_.push_back(SummaryEntry{kind, ino, version, offset});
  if constexpr (obs::kMetricsEnabled) {
    entry_sources_.push_back(EntrySource(kind));
  }
  extents_.push_back(data);
  return sb_.SegmentBlockSector(segment_, block_offset);
}

Status SegmentBuilder::Flush(uint64_t seq, double timestamp) {
  if (entries_.empty()) {
    return OkStatus();
  }
  // Stamp each entry with its content CRC now — deferred blocks (segment
  // usage) are only final at flush time.
  for (size_t i = 0; i < entries_.size(); ++i) {
    entries_[i].block_crc = Crc32(extents_[i]);
  }
  SegmentSummary summary;
  summary.seq = seq;
  summary.timestamp = timestamp;
  summary.entries = entries_;
  RETURN_IF_ERROR(EncodeSummaryV(summary, summary_block_, extents_));
  // One vectored write: summary block first, then the content extents in
  // entry order. Extents that are adjacent in memory (consecutive owned
  // blocks in buffer_) are merged, so the common all-owned partial goes out
  // as {summary, buffer_} — but nothing is ever copied to coalesce.
  std::vector<std::span<const std::byte>> iov;
  iov.reserve(1 + extents_.size());
  iov.push_back(summary_block_);
  for (const auto& extent : extents_) {
    if (iov.size() > 1 && iov.back().data() + iov.back().size() == extent.data()) {
      iov.back() = std::span<const std::byte>(iov.back().data(),
                                              iov.back().size() + extent.size());
    } else {
      iov.push_back(extent);
    }
  }
  const uint64_t sector = sb_.SegmentBlockSector(segment_, start_offset_);
  RETURN_IF_ERROR(device_->WriteSectorsV(sector, iov));
  // Per-flush (never per-append) accounting: one partial, its block count,
  // and the fill fraction of an entry-capacity'd summary. Handles are
  // resolved once per process; the increments are relaxed atomic adds.
  if constexpr (obs::kMetricsEnabled) {
    static obs::Counter& partials = obs::Registry().GetCounter("logfs.segwriter.partials_flushed");
    static obs::Counter& blocks = obs::Registry().GetCounter("logfs.segwriter.blocks_written");
    static obs::Counter& bytes = obs::Registry().GetCounter("logfs.segwriter.bytes_written");
    static constexpr double kFillBounds[] = {0.1, 0.25, 0.5, 0.75, 0.9, 1.0};
    static obs::Histogram& fill =
        obs::Registry().GetHistogram("logfs.segwriter.partial_fill", kFillBounds);
    partials.Increment();
    blocks.Increment(entries_.size());
    bytes.Increment((1 + entries_.size()) * sb_.block_size);
    fill.Observe(static_cast<double>(entries_.size()) /
                 static_cast<double>(SummaryCapacity(sb_.block_size)));
    // Provenance attribution (DESIGN.md §6j): content bytes split per entry
    // by the class captured at append time; the single device-write op and
    // the summary block go to the partial's dominant class — the highest
    // non-foreground class present, else fg_data whenever the partial
    // carried any data block. Σ over classes stays exactly one op and
    // (1 + entries) * block_size bytes per flush.
    uint64_t class_bytes[obs::kIoSourceCount] = {};
    obs::IoSource op_source = obs::IoSource::kForegroundMeta;
    bool any_data = false;
    for (obs::IoSource source : entry_sources_) {
      class_bytes[static_cast<size_t>(source)] += sb_.block_size;
      if (source == obs::IoSource::kForegroundData) {
        any_data = true;
      } else if (static_cast<uint8_t>(source) > static_cast<uint8_t>(op_source)) {
        op_source = source;
      }
    }
    if (op_source == obs::IoSource::kForegroundMeta && any_data) {
      op_source = obs::IoSource::kForegroundData;
    }
    class_bytes[static_cast<size_t>(op_source)] += sb_.block_size;  // Summary.
    obs::RecordWriteOp(op_source);
    for (size_t i = 0; i < obs::kIoSourceCount; ++i) {
      if (class_bytes[i] != 0) {
        obs::RecordWriteBytes(static_cast<obs::IoSource>(i), class_bytes[i]);
      }
    }
  }
  last_flush_.clear();
  last_flush_.reserve(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    last_flush_.push_back(FlushedBlock{
        sb_.SegmentBlockSector(segment_, start_offset_ + 1 + static_cast<uint32_t>(i)),
        entries_[i].block_crc});
  }
  start_offset_ += 1 + static_cast<uint32_t>(entries_.size());
  entries_.clear();
  extents_.clear();
  entry_sources_.clear();
  buffer_.clear();
  return OkStatus();
}

}  // namespace logfs
