// FileSystem-interface operations of LfsFileSystem: namespace ops, file
// I/O, durability calls, and the background Tick. The log/checkpoint
// machinery lives in lfs_file_system.cc.
#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/fsbase/dirent.h"
#include "src/lfs/lfs_cleaner.h"
#include "src/lfs/lfs_file_system.h"
#include "src/util/logging.h"

namespace logfs {

// --- Directory helpers ---------------------------------------------------------

Result<DirEntry> LfsFileSystem::DirFind(InodeNum dir_ino, const Inode& dir,
                                        std::string_view name) {
  const uint64_t blocks = dir.size / BlockSize();
  for (uint64_t b = 0; b < blocks; ++b) {
    ASSIGN_OR_RETURN(CacheRef ref, GetFileBlock(dir_ino, dir, b, /*create=*/false));
    DirBlockView view(ref->mutable_data());
    Result<DirEntry> entry = view.Find(name);
    if (entry.ok() || entry.status().code() != ErrorCode::kNotFound) {
      return entry;
    }
  }
  return NotFoundError(name);
}

Status LfsFileSystem::DirInsert(InodeNum dir_ino, std::string_view name, InodeNum ino,
                                FileType type) {
  ASSIGN_OR_RETURN(CachedInode * dir, GetInode(dir_ino));
  const uint64_t blocks = dir->inode.size / BlockSize();
  for (uint64_t b = 0; b < blocks; ++b) {
    ASSIGN_OR_RETURN(CacheRef ref, GetFileBlock(dir_ino, dir->inode, b, /*create=*/false));
    DirBlockView view(ref->mutable_data());
    Status inserted = view.Insert(ino, type, name);
    if (inserted.ok()) {
      cache_.MarkDirty(ref.get());
      dir->inode.mtime = Now();
      SetInodeDirty(dir);
      return OkStatus();
    }
    if (inserted.code() != ErrorCode::kNoSpace) {
      return inserted;
    }
  }
  // Extend the directory with a fresh block. No synchronous I/O anywhere:
  // this is the Figure 2 behaviour.
  ASSIGN_OR_RETURN(CacheRef ref, GetFileBlock(dir_ino, dir->inode, blocks, /*create=*/true));
  DirBlockView view(ref->mutable_data());
  RETURN_IF_ERROR(view.InitEmpty());
  RETURN_IF_ERROR(view.Insert(ino, type, name));
  cache_.MarkDirty(ref.get());
  dir->inode.size += BlockSize();
  dir->inode.mtime = Now();
  SetInodeDirty(dir);
  return OkStatus();
}

Status LfsFileSystem::DirRemove(InodeNum dir_ino, std::string_view name) {
  ASSIGN_OR_RETURN(CachedInode * dir, GetInode(dir_ino));
  const uint64_t blocks = dir->inode.size / BlockSize();
  for (uint64_t b = 0; b < blocks; ++b) {
    ASSIGN_OR_RETURN(CacheRef ref, GetFileBlock(dir_ino, dir->inode, b, /*create=*/false));
    DirBlockView view(ref->mutable_data());
    Status removed = view.Remove(name);
    if (removed.ok()) {
      cache_.MarkDirty(ref.get());
      dir->inode.mtime = Now();
      SetInodeDirty(dir);
      return OkStatus();
    }
    if (removed.code() != ErrorCode::kNotFound) {
      return removed;
    }
  }
  return NotFoundError(name);
}

Status LfsFileSystem::DirReplace(InodeNum dir_ino, std::string_view name, InodeNum ino,
                                 FileType type) {
  ASSIGN_OR_RETURN(CachedInode * dir, GetInode(dir_ino));
  const uint64_t blocks = dir->inode.size / BlockSize();
  for (uint64_t b = 0; b < blocks; ++b) {
    ASSIGN_OR_RETURN(CacheRef ref, GetFileBlock(dir_ino, dir->inode, b, /*create=*/false));
    DirBlockView view(ref->mutable_data());
    Status set = view.SetInode(name, ino, type);
    if (set.ok()) {
      cache_.MarkDirty(ref.get());
      dir->inode.mtime = Now();
      SetInodeDirty(dir);
      return OkStatus();
    }
    if (set.code() != ErrorCode::kNotFound) {
      return set;
    }
  }
  return NotFoundError(name);
}

Result<bool> LfsFileSystem::DirIsEmpty(InodeNum dir_ino, const Inode& dir) {
  const uint64_t blocks = dir.size / BlockSize();
  for (uint64_t b = 0; b < blocks; ++b) {
    ASSIGN_OR_RETURN(CacheRef ref, GetFileBlock(dir_ino, dir, b, /*create=*/false));
    DirBlockView view(ref->mutable_data());
    ASSIGN_OR_RETURN(auto entries, view.List());
    for (const DirEntry& entry : entries) {
      if (entry.name != "." && entry.name != "..") {
        return false;
      }
    }
  }
  return true;
}

Result<bool> LfsFileSystem::IsInSubtree(InodeNum candidate, InodeNum ancestor) {
  InodeNum current = candidate;
  for (int depth = 0; depth < 4096; ++depth) {
    if (current == ancestor) {
      return true;
    }
    if (current == kRootIno) {
      return false;
    }
    ASSIGN_OR_RETURN(CachedInode * ci, GetInode(current));
    ASSIGN_OR_RETURN(DirEntry parent, DirFind(current, ci->inode, ".."));
    current = parent.ino;
  }
  return CorruptedError("directory tree too deep or cyclic");
}

// --- Inode release ---------------------------------------------------------------

Status LfsFileSystem::ReleaseBlocksFrom(InodeNum ino, uint64_t first_index) {
  ASSIGN_OR_RETURN(CachedInode * ci, GetInode(ino));
  const uint64_t epb = EntriesPerBlock();
  const uint32_t bs = BlockSize();
  // Direct blocks.
  for (uint64_t i = first_index; i < kNumDirect; ++i) {
    if (ci->inode.direct[i] != kNoAddr) {
      AccountBlockDeath(ci->inode.direct[i], bs);
      ci->inode.direct[i] = kNoAddr;
      SetInodeDirty(ci);
    }
  }
  // Single indirect.
  const uint64_t single_base = kNumDirect;
  if (first_index < single_base + epb) {
    const bool have = ci->inode.single_indirect != kNoAddr ||
                      cache_.AcquireIfPresent(BlockKey{IndirectObject(ino), kSingleSlot});
    if (have) {
      ASSIGN_OR_RETURN(CacheRef ref, GetIndirectRef(ino, kSingleSlot, /*create=*/false));
      const uint64_t from = first_index > single_base ? first_index - single_base : 0;
      for (uint64_t j = from; j < epb; ++j) {
        const DiskAddr addr = ReadIndirectEntry(ref->data(), j);
        if (addr != kNoAddr) {
          AccountBlockDeath(addr, bs);
          WriteIndirectEntry(ref->mutable_data(), j, kNoAddr);
          cache_.MarkDirty(ref.get());
        }
      }
      if (from == 0) {
        ref.Release();
        ASSIGN_OR_RETURN(CachedInode * ci2, GetInode(ino));
        if (ci2->inode.single_indirect != kNoAddr) {
          AccountBlockDeath(ci2->inode.single_indirect, bs);
          ci2->inode.single_indirect = kNoAddr;
          SetInodeDirty(ci2);
        }
        cache_.InvalidateBlock(BlockKey{IndirectObject(ino), kSingleSlot});
      }
    }
  }
  // Double indirect.
  ASSIGN_OR_RETURN(CachedInode * ci3, GetInode(ino));
  const uint64_t double_base = kNumDirect + epb;
  const bool have_root = ci3->inode.double_indirect != kNoAddr ||
                         cache_.AcquireIfPresent(BlockKey{IndirectObject(ino), kDoubleRootSlot});
  if (have_root) {
    bool root_all_free = true;
    for (uint64_t j = 0; j < epb; ++j) {
      const uint64_t leaf_base = double_base + j * epb;
      ASSIGN_OR_RETURN(DiskAddr leaf_addr, GetIndirectAddr(ino, 2 + j));
      const bool have_leaf =
          leaf_addr != kNoAddr ||
          cache_.AcquireIfPresent(BlockKey{IndirectObject(ino), 2 + j});
      if (!have_leaf) {
        continue;
      }
      if (first_index >= leaf_base + epb) {
        root_all_free = false;
        continue;  // Entirely kept.
      }
      const uint64_t from = first_index > leaf_base ? first_index - leaf_base : 0;
      {
        ASSIGN_OR_RETURN(CacheRef leaf, GetIndirectRef(ino, 2 + j, /*create=*/false));
        for (uint64_t k = from; k < epb; ++k) {
          const DiskAddr addr = ReadIndirectEntry(leaf->data(), k);
          if (addr != kNoAddr) {
            AccountBlockDeath(addr, bs);
            WriteIndirectEntry(leaf->mutable_data(), k, kNoAddr);
            cache_.MarkDirty(leaf.get());
          }
        }
      }
      if (from == 0) {
        if (leaf_addr != kNoAddr) {
          AccountBlockDeath(leaf_addr, bs);
        }
        ASSIGN_OR_RETURN(DiskAddr old, SetIndirectAddr(ino, 2 + j, kNoAddr));
        (void)old;
        cache_.InvalidateBlock(BlockKey{IndirectObject(ino), 2 + j});
      } else {
        root_all_free = false;
      }
    }
    if (root_all_free && first_index <= double_base) {
      ASSIGN_OR_RETURN(CachedInode * ci4, GetInode(ino));
      if (ci4->inode.double_indirect != kNoAddr) {
        AccountBlockDeath(ci4->inode.double_indirect, bs);
        ci4->inode.double_indirect = kNoAddr;
        SetInodeDirty(ci4);
      }
      cache_.InvalidateBlock(BlockKey{IndirectObject(ino), kDoubleRootSlot});
    }
  }
  // Drop cached data blocks at or beyond the truncation point.
  cache_.InvalidateObject(DataObject(ino), first_index);
  return OkStatus();
}

Status LfsFileSystem::ReleaseInode(InodeNum ino) {
  RETURN_IF_ERROR(ReleaseBlocksFrom(ino, 0));
  cache_.InvalidateObject(DataObject(ino));
  cache_.InvalidateObject(IndirectObject(ino));
  // Release the inode's own residency in its inode block.
  const ImapEntry& entry = imap_.Get(ino);
  if (entry.block_addr != kNoAddr) {
    AccountBlockDeath(entry.block_addr, InodeLiveQuantum());
  }
  imap_.Free(ino);  // Bumps the version: the cleaner's fast death test.
  pending_frees_.push_back(FreeRecord{ino, imap_.Get(ino).version});
  auto it = inodes_.find(ino);
  if (it != inodes_.end()) {
    SetInodeClean(&it->second);
    inodes_.erase(it);
  }
  return OkStatus();
}

// --- Space management ---------------------------------------------------------------

uint64_t LfsFileSystem::UsableBytes() const {
  const uint64_t segments = sb_.num_segments > sb_.reserved_segments
                                ? sb_.num_segments - sb_.reserved_segments
                                : 0;
  // Budget two summary blocks of overhead per segment.
  return segments * static_cast<uint64_t>(sb_.segment_size - 2 * sb_.block_size);
}

uint64_t LfsFileSystem::DirtyBytesEstimate() const {
  return static_cast<uint64_t>(cache_.dirty_count()) * BlockSize() +
         static_cast<uint64_t>(dirty_inode_count_) * InodeLiveQuantum() +
         static_cast<uint64_t>(builder_.pending()) * BlockSize() +
         pending_frees_.size() * 8;
}

Status LfsFileSystem::EnsureSpaceForWrite(uint64_t incoming_bytes) {
  const uint64_t seg_payload = sb_.segment_size - 2ull * sb_.block_size;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const uint32_t clean = CleanSegmentCount();
    const uint64_t usable_clean =
        clean > sb_.reserved_segments
            ? static_cast<uint64_t>(clean - sb_.reserved_segments) * seg_payload
            : 0;
    const uint64_t needed = DirtyBytesEstimate() + incoming_bytes + sb_.segment_size;
    if (usable_clean >= needed) {
      return OkStatus();
    }
    // Cleaning may reclaim fragmented segments; stop when it cannot.
    // The whole pass is cleaner interference from the caller's point of
    // view — the foreground op is stalled behind garbage collection.
    const double clean_start = Now();
    Result<uint32_t> clean_result = CleanNow(4);
    AddOpCleanerSeconds(Now() - clean_start);
    ASSIGN_OR_RETURN(uint32_t cleaned, std::move(clean_result));
    if (cleaned == 0) {
      return NoSpaceError("log full: cleaning cannot reclaim enough segments");
    }
  }
  return NoSpaceError("log full after repeated cleaning");
}

Result<uint32_t> LfsFileSystem::CleanNow(uint32_t max_victims) {
  LfsCleaner cleaner(this);
  return cleaner.CleanSegments(max_victims);
}

Result<uint32_t> LfsFileSystem::CleanTheseSegments(const std::vector<uint32_t>& segments) {
  LfsCleaner cleaner(this);
  return cleaner.CleanVictims(segments);
}

Status LfsFileSystem::MaybePressureFlush() {
  if (cache_.NeedsWriteback()) {
    return cache_.FlushAll();
  }
  return OkStatus();
}

// --- FileSystem interface -------------------------------------------------------------

Result<InodeNum> LfsFileSystem::Create(InodeNum dir, std::string_view name, FileType type) {
  OpScope op(this, "create");
  RETURN_IF_ERROR(CheckWritable());
  if (type != FileType::kRegular && type != FileType::kDirectory &&
      type != FileType::kSymlink) {
    return InvalidArgumentError("unsupported file type");
  }
  if (cpu_ != nullptr) {
    ChargeCpu(cpu_->costs().create_instructions);
  }
  ASSIGN_OR_RETURN(CachedInode * dirnode, GetInode(dir));
  if (!dirnode->inode.IsDirectory()) {
    return NotDirectoryError("create in non-directory");
  }
  Result<DirEntry> existing = DirFind(dir, dirnode->inode, name);
  if (existing.ok()) {
    return ExistsError(name);
  }
  if (existing.status().code() != ErrorCode::kNotFound) {
    return existing.status();
  }
  RETURN_IF_ERROR(EnsureSpaceForWrite(2ull * BlockSize()));

  ASSIGN_OR_RETURN(InodeNum ino, imap_.Allocate(next_ino_hint_));
  next_ino_hint_ = ino + 1;
  CachedInode fresh;
  fresh.inode.type = type;
  fresh.inode.nlink = type == FileType::kDirectory ? 2 : 1;
  fresh.inode.generation = imap_.Get(ino).version;
  fresh.inode.mtime = fresh.inode.ctime = Now();
  SetInodeDirty(&(inodes_[ino] = fresh));
  imap_.SetAtime(ino, Now());

  if (type == FileType::kDirectory) {
    RETURN_IF_ERROR(DirInsert(ino, ".", ino, FileType::kDirectory));
    RETURN_IF_ERROR(DirInsert(ino, "..", dir, FileType::kDirectory));
    ASSIGN_OR_RETURN(CachedInode * parent, GetInode(dir));
    ++parent->inode.nlink;
    SetInodeDirty(parent);
  }
  RETURN_IF_ERROR(DirInsert(dir, name, ino, type));
  ++mutation_seq_;
  RETURN_IF_ERROR(MaybePressureFlush());
  return ino;
}

Result<InodeNum> LfsFileSystem::Lookup(InodeNum dir, std::string_view name) {
  if (cpu_ != nullptr) {
    ChargeCpu(cpu_->costs().lookup_instructions);
  }
  ASSIGN_OR_RETURN(CachedInode * dirnode, GetInode(dir));
  if (!dirnode->inode.IsDirectory()) {
    return NotDirectoryError("lookup in non-directory");
  }
  ASSIGN_OR_RETURN(DirEntry entry, DirFind(dir, dirnode->inode, name));
  return entry.ino;
}

Status LfsFileSystem::Unlink(InodeNum dir, std::string_view name) {
  RETURN_IF_ERROR(CheckWritable());
  if (cpu_ != nullptr) {
    ChargeCpu(cpu_->costs().remove_instructions);
  }
  ASSIGN_OR_RETURN(CachedInode * dirnode, GetInode(dir));
  if (!dirnode->inode.IsDirectory()) {
    return NotDirectoryError("unlink in non-directory");
  }
  ASSIGN_OR_RETURN(DirEntry entry, DirFind(dir, dirnode->inode, name));
  ASSIGN_OR_RETURN(CachedInode * target, GetInode(entry.ino));
  if (target->inode.IsDirectory()) {
    return IsDirectoryError("unlink of a directory; use Rmdir");
  }
  RETURN_IF_ERROR(DirRemove(dir, name));
  ASSIGN_OR_RETURN(target, GetInode(entry.ino));  // Re-fetch (map may rehash).
  --target->inode.nlink;
  if (target->inode.nlink == 0) {
    RETURN_IF_ERROR(ReleaseInode(entry.ino));
  } else {
    target->inode.ctime = Now();
    SetInodeDirty(target);
  }
  ++mutation_seq_;
  return MaybePressureFlush();
}

Status LfsFileSystem::Rmdir(InodeNum dir, std::string_view name) {
  RETURN_IF_ERROR(CheckWritable());
  if (cpu_ != nullptr) {
    ChargeCpu(cpu_->costs().remove_instructions);
  }
  if (name == "." || name == "..") {
    return InvalidArgumentError("cannot rmdir . or ..");
  }
  ASSIGN_OR_RETURN(CachedInode * dirnode, GetInode(dir));
  if (!dirnode->inode.IsDirectory()) {
    return NotDirectoryError("rmdir in non-directory");
  }
  ASSIGN_OR_RETURN(DirEntry entry, DirFind(dir, dirnode->inode, name));
  ASSIGN_OR_RETURN(CachedInode * target, GetInode(entry.ino));
  if (!target->inode.IsDirectory()) {
    return NotDirectoryError("rmdir of a non-directory");
  }
  ASSIGN_OR_RETURN(bool empty, DirIsEmpty(entry.ino, target->inode));
  if (!empty) {
    return NotEmptyError(name);
  }
  RETURN_IF_ERROR(DirRemove(dir, name));
  ASSIGN_OR_RETURN(dirnode, GetInode(dir));
  --dirnode->inode.nlink;  // Lost the child's "..".
  SetInodeDirty(dirnode);
  RETURN_IF_ERROR(ReleaseInode(entry.ino));
  ++mutation_seq_;
  return MaybePressureFlush();
}

Status LfsFileSystem::Link(InodeNum dir, std::string_view name, InodeNum target_ino) {
  RETURN_IF_ERROR(CheckWritable());
  if (cpu_ != nullptr) {
    ChargeCpu(cpu_->costs().create_instructions);
  }
  ASSIGN_OR_RETURN(CachedInode * dirnode, GetInode(dir));
  if (!dirnode->inode.IsDirectory()) {
    return NotDirectoryError("link in non-directory");
  }
  ASSIGN_OR_RETURN(CachedInode * target, GetInode(target_ino));
  if (target->inode.IsDirectory()) {
    return IsDirectoryError("hard link to a directory");
  }
  Result<DirEntry> existing = DirFind(dir, dirnode->inode, name);
  if (existing.ok()) {
    return ExistsError(name);
  }
  if (existing.status().code() != ErrorCode::kNotFound) {
    return existing.status();
  }
  RETURN_IF_ERROR(DirInsert(dir, name, target_ino, target->inode.type));
  ASSIGN_OR_RETURN(target, GetInode(target_ino));
  ++target->inode.nlink;
  target->inode.ctime = Now();
  SetInodeDirty(target);
  ++mutation_seq_;
  return MaybePressureFlush();
}

Status LfsFileSystem::Rename(InodeNum from_dir, std::string_view from_name, InodeNum to_dir,
                             std::string_view to_name) {
  RETURN_IF_ERROR(CheckWritable());
  if (cpu_ != nullptr) {
    ChargeCpu(cpu_->costs().create_instructions);
  }
  if (from_name == "." || from_name == ".." || to_name == "." || to_name == "..") {
    return InvalidArgumentError("cannot rename . or ..");
  }
  ASSIGN_OR_RETURN(CachedInode * from_node, GetInode(from_dir));
  ASSIGN_OR_RETURN(DirEntry src, DirFind(from_dir, from_node->inode, from_name));
  if (from_dir == to_dir && from_name == to_name) {
    return OkStatus();
  }
  ASSIGN_OR_RETURN(CachedInode * src_node, GetInode(src.ino));
  const bool src_is_dir = src_node->inode.IsDirectory();
  if (src_is_dir) {
    ASSIGN_OR_RETURN(bool cyclic, IsInSubtree(to_dir, src.ino));
    if (cyclic) {
      return InvalidArgumentError("rename would create a cycle");
    }
  }
  ASSIGN_OR_RETURN(CachedInode * to_node, GetInode(to_dir));
  Result<DirEntry> dst = DirFind(to_dir, to_node->inode, to_name);
  if (dst.ok()) {
    ASSIGN_OR_RETURN(CachedInode * dst_node, GetInode(dst->ino));
    if (dst_node->inode.IsDirectory()) {
      if (!src_is_dir) {
        return IsDirectoryError("cannot replace a directory with a file");
      }
      ASSIGN_OR_RETURN(bool empty, DirIsEmpty(dst->ino, dst_node->inode));
      if (!empty) {
        return NotEmptyError(to_name);
      }
      RETURN_IF_ERROR(DirReplace(to_dir, to_name, src.ino, src.type));
      if (from_dir == to_dir) {
        // Old child directory's ".." is gone and src was already a child
        // here; cross-directory moves swap one child directory for another,
        // leaving the count unchanged.
        ASSIGN_OR_RETURN(to_node, GetInode(to_dir));
        --to_node->inode.nlink;
        SetInodeDirty(to_node);
      }
      RETURN_IF_ERROR(ReleaseInode(dst->ino));
    } else {
      if (src_is_dir) {
        return NotDirectoryError("cannot replace a file with a directory");
      }
      RETURN_IF_ERROR(DirReplace(to_dir, to_name, src.ino, src.type));
      ASSIGN_OR_RETURN(dst_node, GetInode(dst->ino));
      --dst_node->inode.nlink;
      if (dst_node->inode.nlink == 0) {
        RETURN_IF_ERROR(ReleaseInode(dst->ino));
      } else {
        SetInodeDirty(dst_node);
      }
    }
  } else {
    if (dst.status().code() != ErrorCode::kNotFound) {
      return dst.status();
    }
    RETURN_IF_ERROR(DirInsert(to_dir, to_name, src.ino, src.type));
    if (src_is_dir && from_dir != to_dir) {
      ASSIGN_OR_RETURN(to_node, GetInode(to_dir));
      ++to_node->inode.nlink;
      SetInodeDirty(to_node);
    }
  }
  RETURN_IF_ERROR(DirRemove(from_dir, from_name));
  if (src_is_dir && from_dir != to_dir) {
    ASSIGN_OR_RETURN(from_node, GetInode(from_dir));
    --from_node->inode.nlink;
    SetInodeDirty(from_node);
    RETURN_IF_ERROR(DirReplace(src.ino, "..", to_dir, FileType::kDirectory));
  }
  ++mutation_seq_;
  return MaybePressureFlush();
}

Result<uint64_t> LfsFileSystem::Read(InodeNum ino, uint64_t offset, std::span<std::byte> out) {
  OpScope op(this, "read");
  ASSIGN_OR_RETURN(CachedInode * ci, GetInode(ino));
  if (ci->inode.IsDirectory()) {
    return IsDirectoryError("read of a directory");
  }
  if (offset >= ci->inode.size) {
    return uint64_t{0};
  }
  const uint64_t to_read = std::min<uint64_t>(out.size(), ci->inode.size - offset);
  const Inode inode = ci->inode;  // Copy: cache ops below may invalidate ci.
  uint64_t done = 0;
  while (done < to_read) {
    const uint64_t pos = offset + done;
    const uint64_t index = pos / BlockSize();
    const uint64_t in_block = pos % BlockSize();
    const uint64_t chunk = std::min<uint64_t>(to_read - done, BlockSize() - in_block);
    if (cpu_ != nullptr) {
      ChargeCpu(cpu_->costs().per_block_instructions +
                cpu_->costs().per_kilobyte_copy_instructions * (chunk / 1024 + 1));
    }
    ASSIGN_OR_RETURN(CacheRef ref, GetFileBlock(ino, inode, index, /*create=*/false));
    std::memcpy(out.data() + done, ref->data().data() + in_block, chunk);
    done += chunk;
  }
  // Access time lives in the inode map (paper footnote 2): updating it
  // never relocates the inode.
  imap_.SetAtime(ino, Now());
  return done;
}

Result<uint64_t> LfsFileSystem::Write(InodeNum ino, uint64_t offset,
                                      std::span<const std::byte> data) {
  OpScope op(this, "write");
  RETURN_IF_ERROR(CheckWritable());
  ASSIGN_OR_RETURN(CachedInode * ci_check, GetInode(ino));
  if (ci_check->inode.IsDirectory()) {
    return IsDirectoryError("write to a directory");
  }
  const uint64_t max_bytes = MaxFileBlocks(EntriesPerBlock()) * BlockSize();
  if (offset + data.size() > max_bytes) {
    return TooLargeError("write beyond maximum file size");
  }
  RETURN_IF_ERROR(EnsureSpaceForWrite(data.size()));

  uint64_t done = 0;
  while (done < data.size()) {
    const uint64_t pos = offset + done;
    const uint64_t index = pos / BlockSize();
    const uint64_t in_block = pos % BlockSize();
    const uint64_t chunk = std::min<uint64_t>(data.size() - done, BlockSize() - in_block);
    if (cpu_ != nullptr) {
      ChargeCpu(cpu_->costs().per_block_instructions +
                cpu_->costs().per_kilobyte_copy_instructions * (chunk / 1024 + 1));
    }
    ASSIGN_OR_RETURN(CachedInode * ci, GetInode(ino));
    const bool full_block = chunk == BlockSize();
    const bool beyond_eof = pos >= ci->inode.size;
    const Inode inode = ci->inode;
    CacheRef ref;
    if (full_block || (beyond_eof && in_block == 0)) {
      ASSIGN_OR_RETURN(ref, cache_.Create(BlockKey{DataObject(ino), index}));
    } else {
      ASSIGN_OR_RETURN(ref, GetFileBlock(ino, inode, index, /*create=*/false));
    }
    std::memcpy(ref->mutable_data().data() + in_block, data.data() + done, chunk);
    cache_.MarkDirty(ref.get());
    done += chunk;
  }
  ASSIGN_OR_RETURN(CachedInode * ci, GetInode(ino));
  const uint64_t end = offset + data.size();
  if (end > ci->inode.size) {
    ci->inode.size = end;
  }
  ci->inode.mtime = Now();
  SetInodeDirty(ci);
  ++mutation_seq_;
  RETURN_IF_ERROR(MaybePressureFlush());
  return done;
}

Status LfsFileSystem::Truncate(InodeNum ino, uint64_t new_size) {
  RETURN_IF_ERROR(CheckWritable());
  ASSIGN_OR_RETURN(CachedInode * ci, GetInode(ino));
  if (ci->inode.IsDirectory()) {
    return IsDirectoryError("truncate of a directory");
  }
  if (new_size >= ci->inode.size) {
    ci->inode.size = new_size;  // Extension creates a hole.
    ci->inode.mtime = Now();
    SetInodeDirty(ci);
    ++mutation_seq_;
    return OkStatus();
  }
  const uint64_t keep_blocks = (new_size + BlockSize() - 1) / BlockSize();
  RETURN_IF_ERROR(ReleaseBlocksFrom(ino, keep_blocks));
  if (new_size == 0) {
    // Truncation to zero bumps the inode-map version (paper Section 4.2.1):
    // every block of the old incarnation now fails the cleaner's version
    // check without any pointer walking.
    imap_.SetVersion(ino, imap_.Get(ino).version + 1);
  } else if (new_size % BlockSize() != 0) {
    ASSIGN_OR_RETURN(CachedInode * ci2, GetInode(ino));
    const Inode inode = ci2->inode;
    ASSIGN_OR_RETURN(CacheRef ref, GetFileBlock(ino, inode, keep_blocks - 1, /*create=*/false));
    const uint64_t keep = new_size % BlockSize();
    std::memset(ref->mutable_data().data() + keep, 0, BlockSize() - keep);
    cache_.MarkDirty(ref.get());
  }
  ASSIGN_OR_RETURN(CachedInode * ci3, GetInode(ino));
  ci3->inode.size = new_size;
  ci3->inode.mtime = Now();
  SetInodeDirty(ci3);
  ++mutation_seq_;
  return MaybePressureFlush();
}

Result<FileStat> LfsFileSystem::Stat(InodeNum ino) {
  ASSIGN_OR_RETURN(CachedInode * ci, GetInode(ino));
  const ImapEntry& entry = imap_.Get(ino);
  FileStat stat;
  stat.ino = ino;
  stat.type = ci->inode.type;
  stat.nlink = ci->inode.nlink;
  stat.size = ci->inode.size;
  stat.blocks = (ci->inode.size + BlockSize() - 1) / BlockSize();
  stat.atime = entry.atime;
  stat.mtime = ci->inode.mtime;
  stat.ctime = ci->inode.ctime;
  stat.version = entry.version;
  return stat;
}

Result<std::vector<DirEntry>> LfsFileSystem::ReadDir(InodeNum dir) {
  ASSIGN_OR_RETURN(CachedInode * ci, GetInode(dir));
  if (!ci->inode.IsDirectory()) {
    return NotDirectoryError("readdir of a non-directory");
  }
  const Inode inode = ci->inode;
  std::vector<DirEntry> all;
  const uint64_t blocks = inode.size / BlockSize();
  for (uint64_t b = 0; b < blocks; ++b) {
    ASSIGN_OR_RETURN(CacheRef ref, GetFileBlock(dir, inode, b, /*create=*/false));
    DirBlockView view(ref->mutable_data());
    ASSIGN_OR_RETURN(auto entries, view.List());
    all.insert(all.end(), entries.begin(), entries.end());
  }
  imap_.SetAtime(dir, Now());
  return all;
}

Status LfsFileSystem::Sync() {
  // sync(2) in LFS: flush everything and checkpoint, so a crash right after
  // Sync loses nothing.
  OpScope op(this, "sync");
  return Checkpoint();
}

Status LfsFileSystem::SyncAsOf(uint64_t seq) {
  // The group-commit seam: a durability request whose horizon is already
  // covered by an earlier flush coalesces into it for free. This is what
  // lets N clients' commits racing into the server collapse into one
  // segment flush.
  if (seq <= synced_seq_) {
    if constexpr (obs::kMetricsEnabled) {
      static obs::Counter& coalesced = obs::Registry().GetCounter("logfs.sync.coalesced");
      coalesced.Increment();
    }
    return OkStatus();
  }
  return Sync();
}

Status LfsFileSystem::Fsync(InodeNum /*ino*/) {
  OpScope op(this, "fsync");
  // fsync in LFS needs no checkpoint: flushing the dirty set into a partial
  // segment is durable, because roll-forward recovery re-registers the
  // inodes from the segment summaries (Section 4.4). The whole dirty set is
  // flushed — not just the named file — because partial-segment writes must
  // be self-consistent: an inode may only reach the log after every block
  // it points to has a log address (a directory inode written ahead of its
  // dirty directory block would point into a hole).
  RETURN_IF_ERROR(CheckWritable());
  RETURN_IF_ERROR(FlushEverything());
  // A flushed partial segment is durable only if recovery replays it: under
  // roll-forward the horizon advances, under checkpoint-only it must wait
  // for the next checkpoint.
  if (options_.roll_forward) {
    synced_seq_ = mutation_seq_;
  }
  return OkStatus();
}

Status LfsFileSystem::DropCaches() {
  cache_.DropClean();
  // Also drop clean in-core inodes so subsequent Stat/Read must fetch the
  // inode block from disk — the benchmark-fairness counterpart of the FFS
  // inode-table cache being dropped.
  for (auto it = inodes_.begin(); it != inodes_.end();) {
    if (!it->second.dirty) {
      it = inodes_.erase(it);
    } else {
      ++it;
    }
  }
  return OkStatus();
}

void LfsFileSystem::PruneInodeCache() {
  if (inodes_.size() <= options_.max_cached_inodes) {
    return;
  }
  for (auto it = inodes_.begin();
       it != inodes_.end() && inodes_.size() > options_.max_cached_inodes;) {
    if (!it->second.dirty) {
      it = inodes_.erase(it);
    } else {
      ++it;
    }
  }
}

Status LfsFileSystem::Tick() {
  // The flight recorder samples even on a demoted mount: the ring keeps
  // recording in memory and PersistBlackBoxNow may still land it. Refresh
  // the utilization-distribution gauges first so samples stay current.
  PublishSpaceTelemetry();
  sampler_.MaybeSample(Now());
  if (read_only_) {
    return OkStatus();  // All background work writes; a demoted mount idles.
  }
  RETURN_IF_ERROR(cache_.MaybeWriteBackByAge());
  PruneInodeCache();
  if (Now() - last_checkpoint_time_ >= sb_.checkpoint_interval_seconds) {
    RETURN_IF_ERROR(Checkpoint());
  }
  if (options_.auto_clean && CleanSegmentCount() < sb_.clean_start_segments) {
    RETURN_IF_ERROR(CleanNow(sb_.clean_stop_segments - CleanSegmentCount()).status());
  }
  if (options_.scrub_segments_per_tick > 0) {
    RETURN_IF_ERROR(Scrub(options_.scrub_segments_per_tick).status());
  }
  return OkStatus();
}

}  // namespace logfs
