// On-disk format of the LFS storage manager (paper Section 4).
//
// Layout:
//
//   block 0                         superblock (static after format)
//   blocks 1 .. 1+C-1               checkpoint region A   (C blocks)
//   blocks 1+C .. 1+2C-1            checkpoint region B
//   first_segment_sector ...        segments[0..nsegments), each `segment_size`
//
// Everything after the checkpoint regions is written strictly append-only in
// segment-sized units. A segment is filled by one or more *partial segments*,
// each laid out as:
//
//   [ summary block | content block 0 | ... | content block n-1 ]
//
// The summary block (lfs_segment.h) identifies every content block (file
// number, block offset, inode-map version) and carries a CRC over the whole
// partial segment, so a torn write invalidates the partial atomically.
//
// The checkpoint region holds the dynamic root state: the log tail, the
// disk addresses of the inode-map and segment-usage blocks (which live in
// the log), and allocation counters. Two regions alternate (Section 4.4.1);
// the one with the highest sequence number and a valid CRC wins at mount.
#ifndef LOGFS_SRC_LFS_LFS_FORMAT_H_
#define LOGFS_SRC_LFS_LFS_FORMAT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/fsbase/fs_types.h"
#include "src/sim/disk_model.h"  // kSectorSize
#include "src/util/result.h"
#include "src/util/status.h"

namespace logfs {

inline constexpr uint32_t kLfsMagic = 0x4C465331;   // "LFS1"
inline constexpr uint32_t kCkptMagic = 0x434B5054;  // "CKPT"
inline constexpr uint32_t kShardMagic = 0x53485244;  // "SHRD"
inline constexpr uint32_t kIntentExtMagic = 0x494E5431;  // "INT1"

struct LfsParams {
  uint32_t block_size = 4096;        // Paper Section 5: LFS used 4 KB blocks.
  uint32_t segment_size = 1 << 20;   // Paper Section 5: 1 MB segments.
  uint32_t max_inodes = 65536;
  // Cleaning policy (Section 4.3.4): cleaning starts when the number of
  // clean segments drops below `clean_start`, and proceeds until
  // `clean_stop` segments are clean (or no further progress is possible).
  uint32_t clean_start_segments = 8;
  uint32_t clean_stop_segments = 16;
  // Segments held back from normal allocation so the cleaner always has
  // room to compact into.
  uint32_t reserved_segments = 4;
  // Checkpoint interval (Section 4.4.1; paper uses 30 s).
  double checkpoint_interval_seconds = 30.0;
  // Sharded multi-log membership (src/lfs/sharded_lfs.h). 0 = unsharded
  // single log (the seed format, byte-identical on disk). When >= 2, this
  // volume slice is log `shard_index` of `shard_count`; its inode map owns
  // the global numbers with (ino - 1) % shard_count == shard_index, and
  // `max_inodes` counts that shard's LOCAL inode slots. Only shard 0 hosts
  // the root directory.
  uint32_t shard_count = 0;
  uint32_t shard_index = 0;
  // Cross-shard intent log region (src/lfs/lfs_intent.h), in RAW volume
  // sectors (the region lives after the last shard slice, outside every
  // shard's window). 0/0 = no intent region: the unsharded seed format, and
  // sharded volumes formatted before the intent log existed.
  uint64_t intent_start_sector = 0;
  uint32_t intent_sectors = 0;
};

struct LfsSuperblock {
  uint32_t magic = kLfsMagic;
  uint32_t block_size = 0;
  uint32_t segment_size = 0;
  uint32_t max_inodes = 0;
  uint32_t checkpoint_region_blocks = 0;  // C above.
  uint64_t first_segment_sector = 0;
  uint32_t num_segments = 0;
  uint32_t clean_start_segments = 0;
  uint32_t clean_stop_segments = 0;
  uint32_t reserved_segments = 0;
  double checkpoint_interval_seconds = 30.0;
  // Shard membership (see LfsParams). Encoded as a tagged extension AFTER
  // the legacy payload+CRC, and only when shard_count >= 2 — an unsharded
  // superblock is byte-identical to the seed format, and a seed-era
  // superblock decodes with shard_count 0.
  uint32_t shard_count = 0;
  uint32_t shard_index = 0;
  // Intent-log region in RAW volume sectors (see LfsParams). Encoded as a
  // second tagged extension ("INT1") after the shard extension, present
  // only when sharded AND an intent region was formatted — so unsharded
  // images stay byte-identical to the seed, and pre-intent sharded images
  // decode with 0/0 (no region: recovery falls back to the repair walk).
  uint64_t intent_start_sector = 0;
  uint32_t intent_sectors = 0;

  bool sharded() const { return shard_count >= 2; }
  bool has_intent_region() const { return sharded() && intent_sectors > 0; }
  uint32_t SectorsPerBlock() const { return block_size / kSectorSize; }
  uint32_t BlocksPerSegment() const { return segment_size / block_size; }
  uint32_t SectorsPerSegment() const { return segment_size / kSectorSize; }
  // Sector address of block `offset` within segment `seg`.
  uint64_t SegmentBlockSector(uint32_t seg, uint32_t offset) const {
    return first_segment_sector +
           static_cast<uint64_t>(seg) * SectorsPerSegment() +
           static_cast<uint64_t>(offset) * SectorsPerBlock();
  }
  // Segment that contains `sector` (sector must be in the segment area).
  uint32_t SegmentOfSector(uint64_t sector) const {
    return static_cast<uint32_t>((sector - first_segment_sector) / SectorsPerSegment());
  }
};

Status EncodeLfsSuperblock(const LfsSuperblock& sb, std::span<std::byte> block);
Result<LfsSuperblock> DecodeLfsSuperblock(std::span<const std::byte> block);

// The dynamic root state saved at each checkpoint.
struct CheckpointRecord {
  uint64_t sequence = 0;        // Monotone checkpoint counter.
  double timestamp = 0.0;       // SimClock time of the checkpoint.
  uint64_t next_log_seq = 1;    // Next partial-segment sequence number.
  uint32_t tail_segment = 0;    // Where the log continues after mount.
  uint32_t tail_offset = 0;     // Block offset within tail_segment.
  InodeNum next_ino_hint = 2;   // Allocation scan start.
  uint64_t total_live_bytes = 0;
  // Disk addresses (sector of first sector) of each inode-map block and
  // each segment-usage block, in block-index order. kNoAddr = never written
  // (entries all-free / all-clean).
  std::vector<DiskAddr> imap_block_addrs;
  std::vector<DiskAddr> usage_block_addrs;
};

// Encodes into `region` (checkpoint_region_blocks * block_size bytes).
Status EncodeCheckpoint(const CheckpointRecord& ckpt, std::span<std::byte> region);
Result<CheckpointRecord> DecodeCheckpoint(std::span<const std::byte> region);

// Exact byte length of the encoded checkpoint payload (the CRC-covered
// prefix of the region). Bytes past this offset are ignored by
// DecodeCheckpoint, which is the slack the black-box trailer rides in
// (src/lfs/lfs_blackbox.h).
size_t CheckpointPayloadBytes(const CheckpointRecord& ckpt);

// Computes the derived geometry for a device of `sector_count` sectors;
// fails if the device cannot hold at least a handful of segments.
Result<LfsSuperblock> ComputeLfsGeometry(const LfsParams& params, uint64_t sector_count);

}  // namespace logfs

#endif  // LOGFS_SRC_LFS_LFS_FORMAT_H_
