// LfsChecker: offline consistency verification (the LFS analogue of fsck,
// used heavily by the crash-recovery property tests).
//
// After quiescing the file system (Sync), it verifies that:
//   * every allocated inode-map entry resolves to an on-disk inode block
//     whose tagged slot matches (inode number and version);
//   * the directory tree is a rooted, acyclic graph with correct "." / ".."
//     entries and exact nlink counts, with no dangling references and no
//     unreachable allocated inodes;
//   * every live block address lies inside the segment area and no two live
//     pointers reference the same disk block;
//   * the segment usage table matches an exact recount, clean segments hold
//     no live data, and exactly one segment is active;
//   * every file's content is readable end to end;
//   * every live block whose write-time checksum is known still matches it
//     on the medium (silent corruption shows up here even before a reader
//     trips on it), with per-segment failure counts and the number of
//     quarantined segments reported.
#ifndef LOGFS_SRC_LFS_LFS_CHECK_H_
#define LOGFS_SRC_LFS_LFS_CHECK_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/lfs/lfs_file_system.h"
#include "src/util/result.h"

namespace logfs {

// How CheckShardedLfs (src/lfs/sharded_lfs.h) treats namespace damage:
// kCheckOnly reports it; kRepair runs the online repairer
// (src/lfs/lfs_repair.h) first and reports the post-repair state, with the
// edits recorded in LfsCheckReport::repair_actions.
enum class RepairMode {
  kCheckOnly,
  kRepair,
};

struct LfsCheckReport {
  std::vector<std::string> problems;
  uint64_t files = 0;
  uint64_t directories = 0;
  uint64_t total_bytes = 0;
  // Media verification: live blocks compared against their write-time CRCs.
  uint64_t blocks_checksum_verified = 0;
  uint64_t checksum_failures = 0;
  // Per-segment failure counts (only segments with failures are listed).
  std::vector<std::pair<uint32_t, uint64_t>> segment_checksum_failures;
  uint32_t quarantined_segments = 0;
  bool read_only = false;  // Mount was demoted before/while checking.
  // Populated only by CheckShardedLfs(..., RepairMode::kRepair): what the
  // online repairer changed before the reported (re-)check ran.
  uint64_t repairs_applied = 0;
  std::vector<std::string> repair_actions;

  bool ok() const { return problems.empty(); }
  std::string Summary() const;
};

class LfsChecker {
 public:
  // `check_namespace` = false is SHARD MODE: one shard of a sharded volume
  // holds dirents that legitimately reference inodes homed in other shards
  // (and shards other than 0 have no root directory at all), so the rooted
  // tree walk, nlink audit and orphan detection are skipped here — the
  // sharded checker (src/lfs/sharded_lfs.h) performs them globally through
  // the router. Every per-shard invariant (imap resolution, live-address
  // uniqueness, usage exactness, content readability, media CRCs) is still
  // verified, with files/directories enumerated from the inode map instead
  // of the tree.
  explicit LfsChecker(LfsFileSystem* fs, bool check_namespace = true)
      : fs_(fs), check_namespace_(check_namespace) {}

  // Full check; `verify_data` additionally reads every file's bytes.
  Result<LfsCheckReport> Check(bool verify_data = true);

 private:
  LfsFileSystem* fs_;
  bool check_namespace_;
};

}  // namespace logfs

#endif  // LOGFS_SRC_LFS_LFS_CHECK_H_
