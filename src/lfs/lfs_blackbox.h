// The black box: crash-surviving telemetry stowed in the checkpoint regions.
//
// DecodeCheckpoint CRC-covers only the payload prefix of a checkpoint
// region and ignores everything after it, and WriteCheckpointRegion already
// writes the *whole* region buffer in one request — so the tail slack
// between the checkpoint payload and the region end is free persistence: a
// telemetry ring embedded there costs zero extra I/O and cannot perturb
// DiskStats in either metrics configuration.
//
// Trailer layout, anchored at the region END so any slack size works:
//
//   [ checkpoint payload | zero fill | ring blob | footer (16 bytes) ]
//                                                  u32 blob_len
//                                                  u32 blob_crc
//                                                  u32 version
//                                                  u32 magic "LFBB"
//
// Survivability argument (what the crashsim sweep asserts): the two
// checkpoint regions alternate and at most one region write is ever
// in-flight, so while a torn write can destroy that region's trailer, the
// other region always holds a complete earlier write — and every complete
// region write since Format carries a trailer (Format seeds region A with
// an empty ring). Recovery therefore decodes both regions and takes the
// valid ring with the highest sequence number, independent of whether the
// checkpoint payloads themselves decode.
#ifndef LOGFS_SRC_LFS_LFS_BLACKBOX_H_
#define LOGFS_SRC_LFS_LFS_BLACKBOX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/disk/block_device.h"
#include "src/obs/sampler.h"
#include "src/util/result.h"

namespace logfs {

inline constexpr uint32_t kBlackBoxMagic = 0x4C464242;  // "LFBB"
inline constexpr uint32_t kBlackBoxVersion = 1;
inline constexpr size_t kBlackBoxFooterBytes = 16;

// Bytes available for a ring blob in a region whose checkpoint payload is
// `checkpoint_payload_bytes` long (0 if even the footer does not fit).
size_t BlackBoxCapacity(size_t region_bytes, size_t checkpoint_payload_bytes);

// Writes `blob` + footer at the end of `region`. The caller must have sized
// the blob to BlackBoxCapacity (TelemetryRing::Encode does); a blob that
// would collide with the checkpoint payload is rejected with kNoSpace.
Status EmbedBlackBox(std::span<std::byte> region, size_t checkpoint_payload_bytes,
                     std::span<const std::byte> blob);

// Locates and validates the trailer; returns the raw ring blob.
Result<std::vector<std::byte>> ExtractBlackBox(std::span<const std::byte> region);

struct RecoveredBlackBox {
  int region = -1;  // Checkpoint region (0 = A, 1 = B) that held the winner.
  obs::TelemetryRing ring;
};

// Reads the superblock and both checkpoint regions from `device` and
// returns the freshest valid telemetry ring (highest ring seq wins). Works
// on crashed or corrupted images: only the trailer itself must validate.
Result<RecoveredBlackBox> RecoverBlackBox(BlockDevice* device);

// Same, from a raw in-memory image (sector 0 = superblock).
Result<RecoveredBlackBox> RecoverBlackBoxFromImage(std::span<const std::byte> image);

}  // namespace logfs

#endif  // LOGFS_SRC_LFS_LFS_BLACKBOX_H_
