// The inode map (paper Section 4.2.1).
//
// LFS inodes float in the log, so the inode map provides the indirection
// from inode number to the inode's current disk location. Each entry also
// keeps the allocation state, a version number bumped every time the file
// is deleted or truncated to length zero (used by the cleaner's fast
// liveness check, Section 4.3.3 step 1), and the file's access time
// (footnote 2: atime lives here so reads never relocate inodes).
//
// The map is partitioned into blocks written to the log like file blocks;
// the checkpoint records each block's address. In memory the whole map is
// resident (it is small), with per-block dirty bits driving what gets
// rewritten at checkpoint time.
//
// Sharding: a sharded volume (src/lfs/sharded_lfs.h) stripes the global
// inode-number space across shards by residue — shard i of N owns inode
// numbers with (ino - 1) % N == i. Each shard's map holds only its own
// residue class: `stride` = N, `offset` = i, and `max_inodes` counts LOCAL
// slots. Slot s holds global inode number offset + s*stride + 1, so the
// on-disk block layout is exactly the unsharded one over the local slots
// while every ino that crosses the API (dirents, summaries, checkpoints)
// stays global. The default stride 1 / offset 0 is the identity mapping —
// bit-for-bit the original single-log behaviour.
#ifndef LOGFS_SRC_LFS_LFS_INODE_MAP_H_
#define LOGFS_SRC_LFS_LFS_INODE_MAP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/fsbase/fs_types.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace logfs {

struct ImapEntry {
  DiskAddr block_addr = kNoAddr;  // Inode block holding this inode.
  uint16_t slot = 0;              // Slot within that inode block.
  bool allocated = false;
  uint32_t version = 0;
  double atime = 0.0;
};

// On-disk size of one entry (addr 8 + slot 2 + flags 2 + version 4 + atime 8).
inline constexpr size_t kImapEntrySize = 24;

class InodeMap {
 public:
  InodeMap(uint32_t max_inodes, uint32_t block_size, uint32_t stride = 1,
           uint32_t offset = 0);

  // LOCAL slot capacity (equals the largest valid ino only when stride 1).
  uint32_t max_inodes() const { return max_inodes_; }
  uint32_t entries_per_block() const { return entries_per_block_; }
  uint32_t block_count() const { return block_count_; }
  uint32_t allocated_count() const { return allocated_count_; }
  uint32_t stride() const { return stride_; }
  uint32_t shard_offset() const { return offset_; }

  // True iff this map owns `ino`: right residue class, slot in range.
  bool IsValid(InodeNum ino) const {
    return ino >= kRootIno && (ino - 1) % stride_ == offset_ && SlotOf(ino) < max_inodes_;
  }
  // Global ino stored in local slot `slot` (< max_inodes()). Iterate the
  // map with slots, never by incrementing inos — a strided map owns only
  // every stride-th number.
  InodeNum InoAtSlot(uint32_t slot) const {
    return static_cast<InodeNum>(offset_ + static_cast<uint64_t>(slot) * stride_ + 1);
  }
  uint32_t SlotOf(InodeNum ino) const {
    return static_cast<uint32_t>((ino - 1 - offset_) / stride_);
  }

  const ImapEntry& Get(InodeNum ino) const { return entries_[SlotOf(ino)]; }
  const ImapEntry& GetSlot(uint32_t slot) const { return entries_[slot]; }

  // Records a new location for an (allocated) inode.
  void SetLocation(InodeNum ino, DiskAddr block_addr, uint16_t slot);
  void SetAtime(InodeNum ino, double atime);
  // Sets the version explicitly (roll-forward recovery).
  void SetVersion(InodeNum ino, uint32_t version);

  // Allocates the first free inode number at or after `hint` (wrapping,
  // rounded up to this map's residue class); bumps its version so blocks of
  // any previous incarnation read as dead. Returns a GLOBAL ino.
  Result<InodeNum> Allocate(InodeNum hint);
  // The ino Allocate(hint) WOULD return, without mutating anything. The
  // scan is deterministic, so under the owning shard's lock
  // PeekAllocate(h) == Allocate(h). Lets the cross-shard router name the
  // child ino in an intent record before the allocation dirties the shard.
  Result<InodeNum> PeekAllocate(InodeNum hint) const;
  // Marks an inode free and bumps its version (the delete fast-path of the
  // cleaner's liveness check).
  void Free(InodeNum ino);
  // Marks allocated without bumping (roll-forward recovery).
  void ForceAllocated(InodeNum ino, bool allocated);

  // --- block (de)serialization ---
  Status EncodeBlock(uint32_t block_index, std::span<std::byte> out) const;
  Status DecodeBlock(uint32_t block_index, std::span<const std::byte> in);

  bool BlockDirty(uint32_t block_index) const { return dirty_blocks_[block_index]; }
  void ClearBlockDirty(uint32_t block_index) { dirty_blocks_[block_index] = false; }
  // Forces a rewrite of one map block at the next checkpoint (used by the
  // cleaner to relocate a live imap block out of a victim segment).
  void MarkBlockDirty(uint32_t block_index) { dirty_blocks_[block_index] = true; }
  void MarkAllDirty();

 private:
  void MarkDirty(InodeNum ino) { dirty_blocks_[SlotOf(ino) / entries_per_block_] = true; }

  uint32_t max_inodes_;
  uint32_t block_size_;
  uint32_t entries_per_block_;
  uint32_t block_count_;
  uint32_t stride_;
  uint32_t offset_;
  uint32_t allocated_count_ = 0;
  std::vector<ImapEntry> entries_;
  std::vector<bool> dirty_blocks_;
};

}  // namespace logfs

#endif  // LOGFS_SRC_LFS_LFS_INODE_MAP_H_
