#include "src/lfs/lfs_intent.h"

#include <algorithm>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/obs/space_observatory.h"
#include "src/util/crc32.h"
#include "src/util/serializer.h"

namespace logfs {
namespace {

void CountIntent(const char* name, uint64_t n = 1) {
  if constexpr (obs::kMetricsEnabled) {
    obs::Registry().GetCounter(name).Increment(n);
  } else {
    (void)name;
    (void)n;
  }
}

}  // namespace

Status EncodeIntentSlot(const IntentRecord& rec, IntentState state,
                        std::span<std::byte> slot) {
  if (slot.size() < kIntentSlotBytes) {
    return InvalidArgumentError("intent slot buffer too small");
  }
  if (rec.from_name.size() > kMaxNameLen || rec.to_name.size() > kMaxNameLen) {
    return NameTooLongError("intent record name too long");
  }
  std::memset(slot.data(), 0, kIntentSlotBytes);
  BufferWriter writer(slot);
  RETURN_IF_ERROR(writer.WriteU32(kIntentRecordMagic));
  RETURN_IF_ERROR(writer.WriteU32(0));  // CRC placeholder, patched below.
  RETURN_IF_ERROR(writer.WriteU64(rec.op_id));
  RETURN_IF_ERROR(writer.WriteU8(static_cast<uint8_t>(state)));
  RETURN_IF_ERROR(writer.WriteU8(static_cast<uint8_t>(rec.kind)));
  RETURN_IF_ERROR(writer.WriteU8(static_cast<uint8_t>(rec.child_type)));
  RETURN_IF_ERROR(writer.WriteU8(static_cast<uint8_t>(rec.victim_type)));
  RETURN_IF_ERROR(writer.WriteU32(rec.from_dir));
  RETURN_IF_ERROR(writer.WriteU32(rec.to_dir));
  RETURN_IF_ERROR(writer.WriteU32(rec.child));
  RETURN_IF_ERROR(writer.WriteU32(rec.victim));
  RETURN_IF_ERROR(writer.WriteString(rec.from_name));
  RETURN_IF_ERROR(writer.WriteString(rec.to_name));
  const size_t payload = writer.offset();
  const uint32_t crc = Crc32(slot.subspan(0, payload));
  RETURN_IF_ERROR(writer.SeekTo(4));
  RETURN_IF_ERROR(writer.WriteU32(crc));
  return OkStatus();
}

Result<std::pair<IntentRecord, IntentState>> DecodeIntentSlot(
    std::span<const std::byte> slot) {
  BufferReader reader(slot);
  ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kIntentRecordMagic) {
    return CorruptedError("not an intent record");
  }
  ASSIGN_OR_RETURN(uint32_t stored_crc, reader.ReadU32());
  IntentRecord rec;
  ASSIGN_OR_RETURN(rec.op_id, reader.ReadU64());
  ASSIGN_OR_RETURN(uint8_t state_raw, reader.ReadU8());
  ASSIGN_OR_RETURN(uint8_t kind_raw, reader.ReadU8());
  ASSIGN_OR_RETURN(uint8_t child_type_raw, reader.ReadU8());
  ASSIGN_OR_RETURN(uint8_t victim_type_raw, reader.ReadU8());
  ASSIGN_OR_RETURN(rec.from_dir, reader.ReadU32());
  ASSIGN_OR_RETURN(rec.to_dir, reader.ReadU32());
  ASSIGN_OR_RETURN(rec.child, reader.ReadU32());
  ASSIGN_OR_RETURN(rec.victim, reader.ReadU32());
  ASSIGN_OR_RETURN(rec.from_name, reader.ReadString());
  ASSIGN_OR_RETURN(rec.to_name, reader.ReadString());
  const size_t payload = reader.offset();
  std::vector<std::byte> copy(slot.begin(), slot.begin() + payload);
  std::memset(copy.data() + 4, 0, 4);
  if (stored_crc != Crc32(copy)) {
    return CorruptedError("intent record CRC mismatch");
  }
  if (state_raw != static_cast<uint8_t>(IntentState::kPending) &&
      state_raw != static_cast<uint8_t>(IntentState::kRetired)) {
    return CorruptedError("intent record state out of range");
  }
  if (kind_raw < static_cast<uint8_t>(IntentKind::kCreate) ||
      kind_raw > static_cast<uint8_t>(IntentKind::kRename)) {
    return CorruptedError("intent record kind out of range");
  }
  rec.kind = static_cast<IntentKind>(kind_raw);
  rec.child_type = static_cast<FileType>(child_type_raw);
  rec.victim_type = static_cast<FileType>(victim_type_raw);
  return std::make_pair(std::move(rec), static_cast<IntentState>(state_raw));
}

IntentLog::IntentLog(BlockDevice* device, uint64_t first_sector, uint64_t sector_count)
    : device_(device), first_sector_(first_sector), slots_(kIntentSlots) {
  (void)sector_count;  // Geometry is validated by the formatter.
}

Result<std::vector<LoadedIntent>> IntentLog::LoadAll() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LoadedIntent> out;
  std::vector<std::byte> buf(kIntentSlotBytes);
  for (uint32_t slot = 0; slot < kIntentSlots; ++slot) {
    Status read = device_->ReadSectors(SlotSector(slot), buf);
    if (!read.ok()) {
      // An unreadable slot can hide a pending intent: mark it bad (never
      // reused) and let the caller decide to fall back to a full repair
      // walk. kCrashed is not a media verdict, so propagate it.
      if (read.code() == ErrorCode::kCrashed) {
        return read;
      }
      slots_[slot].state = SlotState::kBad;
      CountIntent("logfs.intent.slot_read_errors");
      continue;
    }
    auto decoded = DecodeIntentSlot(buf);
    if (!decoded.ok()) {
      slots_[slot].state = SlotState::kFree;  // Garbage: free by contract.
      continue;
    }
    next_op_id_ = std::max(next_op_id_, decoded->first.op_id + 1);
    if (decoded->second == IntentState::kPending) {
      slots_[slot].state = SlotState::kApplied;  // Live until retired.
      slots_[slot].rec = decoded->first;
      slots_[slot].covers.clear();
    } else {
      slots_[slot].state = SlotState::kFree;  // Retired: reusable.
    }
    out.push_back(LoadedIntent{slot, decoded->second, std::move(decoded->first)});
  }
  loaded_ = true;
  return out;
}

Result<std::vector<IntentRecord>> IntentLog::LoadPending() {
  ASSIGN_OR_RETURN(std::vector<LoadedIntent> all, LoadAll());
  std::vector<IntentRecord> pending;
  for (LoadedIntent& li : all) {
    if (li.state == IntentState::kPending) {
      pending.push_back(std::move(li.record));
    }
  }
  std::sort(pending.begin(), pending.end(),
            [](const IntentRecord& a, const IntentRecord& b) { return a.op_id < b.op_id; });
  return pending;
}

Status IntentLog::WriteSlot(uint32_t slot, const IntentRecord& rec, IntentState state,
                            bool synchronous) {
  std::vector<std::byte> buf(kIntentSlotBytes);
  RETURN_IF_ERROR(EncodeIntentSlot(rec, state, buf));
  Status wrote = device_->WriteSectors(SlotSector(slot), buf,
                                       IoOptions{.synchronous = synchronous});
  if (wrote.ok()) {
    obs::RecordWrite(obs::IoSource::kIntent, buf.size());
  }
  return wrote;
}

Result<uint32_t> IntentLog::Publish(IntentRecord* rec) {
  std::lock_guard<std::mutex> lock(mu_);
  rec->op_id = next_op_id_;
  bool any_free = false;
  for (uint32_t slot = 0; slot < kIntentSlots; ++slot) {
    if (slots_[slot].state != SlotState::kFree) {
      continue;
    }
    any_free = true;
    // Synchronous: the intent must be durable — and a barrier against
    // reordering — before the caller touches the first shard.
    Status written = WriteSlot(slot, *rec, IntentState::kPending, /*synchronous=*/true);
    if (!written.ok()) {
      if (written.code() == ErrorCode::kCrashed) {
        return written;
      }
      // Persistent media failure on this slot: stop using it, try another.
      slots_[slot].state = SlotState::kBad;
      CountIntent("logfs.intent.slot_write_errors");
      continue;
    }
    ++next_op_id_;
    slots_[slot].state = SlotState::kPublished;
    slots_[slot].rec = *rec;
    slots_[slot].covers.clear();
    CountIntent("logfs.intent.published");
    return slot;
  }
  bool any_live = false;
  for (const Slot& s : slots_) {
    any_live = any_live || s.state == SlotState::kPublished || s.state == SlotState::kApplied;
  }
  if (any_free || !any_live) {
    // Every free slot failed its write — or no slot is free and none holds
    // a live intent (they are all media-dead): the region is unusable, and
    // no amount of draining can help. The caller aborts the op unstarted.
    CountIntent("logfs.intent.media_aborts");
    return MediaError("intent region unwritable; cross-shard operation aborted");
  }
  return BusyError("intent ring full");
}

void IntentLog::MarkApplied(uint32_t slot,
                            std::vector<std::pair<uint32_t, uint64_t>> covers) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slot >= slots_.size() || slots_[slot].state != SlotState::kPublished) {
    return;
  }
  slots_[slot].state = SlotState::kApplied;
  slots_[slot].covers = std::move(covers);
}

Status IntentLog::RetireCovered(std::span<const uint64_t> synced_seqs) {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t slot = 0; slot < slots_.size(); ++slot) {
    Slot& s = slots_[slot];
    if (s.state != SlotState::kApplied || s.covers.empty()) {
      continue;  // Published-not-applied: its op is still in flight.
    }
    bool durable = true;
    for (const auto& [shard, seq] : s.covers) {
      if (shard >= synced_seqs.size() || synced_seqs[shard] < seq) {
        durable = false;
        break;
      }
    }
    if (!durable) {
      continue;
    }
    // Best-effort, non-synchronous: a lost retire only means recovery
    // re-probes a fully durable op and retires it then.
    Status written = WriteSlot(slot, s.rec, IntentState::kRetired, /*synchronous=*/false);
    if (!written.ok()) {
      if (written.code() == ErrorCode::kCrashed) {
        return written;
      }
      s.state = SlotState::kBad;
      CountIntent("logfs.intent.slot_write_errors");
      continue;
    }
    s.state = SlotState::kFree;
    CountIntent("logfs.intent.retired");
  }
  return OkStatus();
}

Status IntentLog::RetireSlot(uint32_t slot, const IntentRecord& rec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slot >= slots_.size()) {
    return InvalidArgumentError("intent slot out of range");
  }
  Status written = WriteSlot(slot, rec, IntentState::kRetired, /*synchronous=*/false);
  if (!written.ok()) {
    if (written.code() != ErrorCode::kCrashed) {
      slots_[slot].state = SlotState::kBad;
      CountIntent("logfs.intent.slot_write_errors");
    }
    return written;
  }
  slots_[slot].state = SlotState::kFree;
  CountIntent("logfs.intent.retired");
  return OkStatus();
}

uint32_t IntentLog::PendingCount() {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t n = 0;
  for (const Slot& s : slots_) {
    if (s.state == SlotState::kPublished || s.state == SlotState::kApplied) {
      ++n;
    }
  }
  return n;
}

uint64_t IntentLog::next_op_id() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_op_id_;
}

}  // namespace logfs
