#include "src/lfs/lfs_cleaner.h"

#include <cstring>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/space_observatory.h"
#include "src/obs/tracer.h"
#include "src/util/crc32.h"
#include "src/util/logging.h"

namespace logfs {

Result<uint32_t> LfsCleaner::CleanSegments(uint32_t max_victims) {
  if (fs_->in_cleaner_ || max_victims == 0) {
    return uint32_t{0};  // Re-entrant call from within a cleaning flush.
  }
  const LfsSuperblock& sb = fs_->sb_;
  // Victims must yield space: skip segments that are essentially full
  // (cleaning them costs a segment's worth of writes for no gain).
  const uint32_t max_live = sb.segment_size - 2 * sb.block_size;
  return CleanVictims(
      fs_->usage_.PickVictims(max_victims, max_live, fs_->options_.cleaner_policy));
}

Result<uint32_t> LfsCleaner::CleanVictims(std::vector<uint32_t> victims) {
  if (fs_->in_cleaner_) {
    return uint32_t{0};
  }
  // Only dirty, non-active segments are cleanable; drop the rest.
  std::erase_if(victims, [&](uint32_t seg) {
    return fs_->usage_.Get(seg).state != SegState::kDirty;
  });
  if (victims.empty()) {
    return uint32_t{0};
  }
  fs_->in_cleaner_ = true;
  const LfsFileSystem::CleanerStats before = fs_->cleaner_stats_;
  obs::SpanTimer span(fs_->clock_, "cleaner", "pass");
  span.AddArg("victims", std::to_string(victims.size()));
  Result<uint32_t> result = [&]() -> Result<uint32_t> {
    const LfsSuperblock& sb = fs_->sb_;
    if (victims.empty()) {
      return uint32_t{0};
    }
    ++fs_->cleaner_stats_.passes;

    std::vector<std::byte> image(sb.segment_size);
    for (uint32_t seg : victims) {
      bool salvage = false;
      Status read = fs_->device_->ReadSectors(sb.SegmentBlockSector(seg, 0), image);
      if (!read.ok()) {
        if (read.code() == ErrorCode::kCrashed) {
          return read;
        }
        // Media trouble: retry block-by-block so one bad sector does not
        // hide the rest of the segment, zero-filling whatever stays
        // unreadable (a zeroed block fails its per-entry checksum unless
        // its content really was zeros, in which case nothing was lost)
        // and switching this victim to the tolerant salvage walk.
        salvage = true;
        const uint32_t bs = sb.block_size;
        for (uint32_t b = 0; b < sb.BlocksPerSegment(); ++b) {
          std::span<std::byte> slot =
              std::span<std::byte>(image).subspan(static_cast<size_t>(b) * bs, bs);
          Status block_read =
              fs_->device_->ReadSectors(sb.SegmentBlockSector(seg, b), slot);
          if (!block_read.ok()) {
            if (block_read.code() == ErrorCode::kCrashed) {
              return block_read;
            }
            std::memset(slot.data(), 0, slot.size());
          }
        }
      }
      ++fs_->cleaner_stats_.segment_reads;
      RETURN_IF_ERROR(GatherLive(seg, image, salvage));
      // Staging live blocks must not exhaust the cache (large segments can
      // hold more live data than the cache does): compact mid-pass once
      // half the cache is dirty.
      if (fs_->cache_.dirty_count() > fs_->cache_.policy().capacity_blocks / 2) {
        RETURN_IF_ERROR(fs_->FlushEverything());
      }
    }
    // Phase two: the normal write-back path compacts the staged blocks.
    RETURN_IF_ERROR(fs_->FlushEverything());
    for (uint32_t seg : victims) {
      if constexpr (obs::kMetricsEnabled) {
        // The victim is retiring from the log: record how long it lived and
        // how hot its data ran before the state (and heat) is recycled.
        const SegUsage& u = fs_->usage_.Get(seg);
        if (u.allocated_at > 0.0) {
          obs::ObserveSegmentAge((fs_->Now() - u.allocated_at) * 1e6);
        }
        if (u.heat_interval_ewma > 0.0) {
          obs::ObserveSegmentHeat(u.heat_interval_ewma * 1e6);
        }
      }
      fs_->usage_.SetState(seg, SegState::kCleanPending);
    }
    // The checkpoint rewrites any imap/usage blocks the cleaner displaced
    // and commits the victims to kClean. Victims it could NOT commit clean
    // (live blocks lost to media damage, so relocation was incomplete)
    // come back quarantined instead; those were not cleaned.
    RETURN_IF_ERROR(fs_->Checkpoint());
    uint32_t cleaned = 0;
    for (uint32_t seg : victims) {
      if (fs_->usage_.Get(seg).state != SegState::kQuarantined) {
        ++cleaned;
      }
    }
    fs_->cleaner_stats_.segments_cleaned += cleaned;
    return cleaned;
  }();
  fs_->in_cleaner_ = false;
  if constexpr (obs::kMetricsEnabled) {
    const LfsFileSystem::CleanerStats& after = fs_->cleaner_stats_;
    static obs::Counter& passes = obs::Registry().GetCounter("logfs.cleaner.passes");
    static obs::Counter& cleaned = obs::Registry().GetCounter("logfs.cleaner.segments_cleaned");
    static obs::Counter& reads = obs::Registry().GetCounter("logfs.cleaner.segment_reads");
    static obs::Counter& examined = obs::Registry().GetCounter("logfs.cleaner.blocks_examined");
    static obs::Counter& copied = obs::Registry().GetCounter("logfs.cleaner.live_blocks_copied");
    passes.Increment(after.passes - before.passes);
    cleaned.Increment(after.segments_cleaned - before.segments_cleaned);
    reads.Increment(after.segment_reads - before.segment_reads);
    examined.Increment(after.blocks_examined - before.blocks_examined);
    copied.Increment(after.live_blocks_copied - before.live_blocks_copied);
    span.AddArg("segments_read", std::to_string(after.segment_reads - before.segment_reads));
    span.AddArg("blocks_examined", std::to_string(after.blocks_examined - before.blocks_examined));
    span.AddArg("live_blocks_copied",
                std::to_string(after.live_blocks_copied - before.live_blocks_copied));
    span.AddArg("ok", result.ok() ? "true" : "false");
    // Derived paper metrics over the cumulative run: u is the observed live
    // fraction of everything the cleaner has examined.
    if (examined.Value() > 0) {
      const double u = static_cast<double>(copied.Value()) /
                       static_cast<double>(examined.Value());
      obs::Registry().GetGauge("logfs.cleaner.utilization").Set(u);
      // PaperWriteCost clamps u -> 1, so the gauge stays finite (and fresh)
      // even when every examined block turned out to be live.
      obs::Registry().GetGauge("logfs.cleaner.write_cost").Set(PaperWriteCost(u));
    }
  }
  return result;
}

Result<uint64_t> LfsCleaner::SalvageSegment(uint32_t seg, std::span<const std::byte> image) {
  const uint64_t before = fs_->cleaner_stats_.live_blocks_copied;
  RETURN_IF_ERROR(GatherLive(seg, image, /*salvage=*/true));
  return fs_->cleaner_stats_.live_blocks_copied - before;
}

Status LfsCleaner::GatherLive(uint32_t seg, std::span<const std::byte> image, bool salvage) {
  const LfsSuperblock& sb = fs_->sb_;
  const uint32_t bs = sb.block_size;
  const uint32_t bps = sb.BlocksPerSegment();
  uint32_t offset = 0;
  while (offset + 1 < bps) {
    std::span<const std::byte> summary_block = image.subspan(offset * bs, bs);
    Result<SummaryPeek> peek = PeekSummary(summary_block, bs);
    if (!peek.ok() || offset + 1 + peek->nblocks > bps) {
      if (!salvage) {
        break;  // End of the valid partial-segment chain.
      }
      ++offset;  // Probe: the chain may resume past the damage.
      continue;
    }
    std::span<const std::byte> content =
        image.subspan((offset + 1) * bs, static_cast<size_t>(peek->nblocks) * bs);
    Result<SegmentSummary> summary = DecodeSummary(summary_block, content);
    bool per_block_verify = false;
    if (!summary.ok()) {
      if (!salvage) {
        break;
      }
      // Torn or damaged partial: trust only the content blocks whose own
      // checksum matches their summary entry. Blocks that fail stay put —
      // the checkpoint's residue accounting quarantines the segment.
      summary = DecodeSummaryUnchecked(summary_block);
      if (!summary.ok()) {
        ++offset;
        continue;
      }
      per_block_verify = true;
    }
    for (size_t i = 0; i < summary->entries.size(); ++i) {
      const SummaryEntry& entry = summary->entries[i];
      const DiskAddr addr = sb.SegmentBlockSector(seg, offset + 1 + static_cast<uint32_t>(i));
      std::span<const std::byte> block = content.subspan(i * bs, bs);
      ++fs_->cleaner_stats_.blocks_examined;
      if (fs_->cpu_ != nullptr) {
        fs_->ChargeCpu(fs_->cpu_->costs().per_block_instructions);
      }
      if (per_block_verify && Crc32(block) != entry.block_crc) {
        continue;  // Unsalvageable: the block no longer matches its summary.
      }
      switch (entry.kind) {
        case BlockKind::kData: {
          if (!fs_->imap_.IsValid(entry.ino)) {
            break;
          }
          const ImapEntry& map_entry = fs_->imap_.Get(entry.ino);
          // Step 1 (fast path): version mismatch means the file was deleted
          // or truncated to zero — the block is dead.
          if (!map_entry.allocated || map_entry.version != entry.version) {
            break;
          }
          // Step 2: consult the inode / indirect blocks.
          ASSIGN_OR_RETURN(LfsFileSystem::CachedInode * ci, fs_->GetInode(entry.ino));
          const Inode inode = ci->inode;
          ASSIGN_OR_RETURN(DiskAddr current,
                           fs_->GetDataBlockAddr(entry.ino, inode,
                                                 static_cast<uint64_t>(entry.offset)));
          if (current != addr) {
            break;  // Superseded by a newer copy.
          }
          // Live: stage it through the cache, dirty, so the normal
          // write-back relocates it (and, with zero-copy write-back, hands
          // the cached bytes to the segment writer by reference).
          const BlockKey key{LfsFileSystem::DataObject(entry.ino),
                             static_cast<uint64_t>(entry.offset)};
          ASSIGN_OR_RETURN(CacheRef ref, fs_->cache_.Install(key, block));
          fs_->cache_.MarkDirty(ref.get());
          ++fs_->cleaner_stats_.live_blocks_copied;
          break;
        }
        case BlockKind::kIndirect: {
          if (!fs_->imap_.IsValid(entry.ino)) {
            break;
          }
          const ImapEntry& map_entry = fs_->imap_.Get(entry.ino);
          if (!map_entry.allocated || map_entry.version != entry.version) {
            break;
          }
          ASSIGN_OR_RETURN(DiskAddr current,
                           fs_->GetIndirectAddr(entry.ino, static_cast<uint64_t>(entry.offset)));
          if (current != addr) {
            break;
          }
          const BlockKey key{LfsFileSystem::IndirectObject(entry.ino),
                             static_cast<uint64_t>(entry.offset)};
          ASSIGN_OR_RETURN(CacheRef ref, fs_->cache_.Install(key, block));
          fs_->cache_.MarkDirty(ref.get());
          ++fs_->cleaner_stats_.live_blocks_copied;
          break;
        }
        case BlockKind::kInodeBlock: {
          Result<std::vector<PackedInode>> packed = DecodeInodeBlock(block);
          if (!packed.ok()) {
            break;  // Stale bytes that happen to sit under a stale summary.
          }
          for (size_t k = 0; k < packed->size(); ++k) {
            const InodeNum ino = (*packed)[k].ino;
            if (!fs_->imap_.IsValid(ino)) {
              continue;
            }
            const ImapEntry& map_entry = fs_->imap_.Get(ino);
            if (!map_entry.allocated || map_entry.block_addr != addr ||
                map_entry.slot != k) {
              continue;  // This slot is stale; the inode lives elsewhere.
            }
            // Live inode: ensure it is in core and rewrite it.
            ASSIGN_OR_RETURN(LfsFileSystem::CachedInode * ci, fs_->GetInode(ino));
            fs_->SetInodeDirty(ci);
            ++fs_->cleaner_stats_.live_blocks_copied;
          }
          break;
        }
        case BlockKind::kImap: {
          const uint32_t index = static_cast<uint32_t>(entry.offset);
          if (index < fs_->imap_block_addrs_.size() &&
              fs_->imap_block_addrs_[index] == addr) {
            // Current inode-map block: force a rewrite at the checkpoint
            // that ends this cleaning pass.
            fs_->imap_.MarkBlockDirty(index);
            ++fs_->cleaner_stats_.live_blocks_copied;
          }
          break;
        }
        case BlockKind::kSegUsage: {
          const uint32_t index = static_cast<uint32_t>(entry.offset);
          if (index < fs_->usage_block_addrs_.size() &&
              fs_->usage_block_addrs_[index] == addr) {
            fs_->usage_.MarkBlockDirty(index);
            ++fs_->cleaner_stats_.live_blocks_copied;
          }
          break;
        }
        case BlockKind::kMetaLog:
          break;  // Meta-log blocks are dead once checkpointed past.
      }
    }
    offset += 1 + peek->nblocks;
  }
  return OkStatus();
}

}  // namespace logfs
