#include "src/lfs/lfs_cleaner.h"

#include <cstring>
#include <vector>

#include "src/util/logging.h"

namespace logfs {

Result<uint32_t> LfsCleaner::CleanSegments(uint32_t max_victims) {
  if (fs_->in_cleaner_ || max_victims == 0) {
    return uint32_t{0};  // Re-entrant call from within a cleaning flush.
  }
  const LfsSuperblock& sb = fs_->sb_;
  // Victims must yield space: skip segments that are essentially full
  // (cleaning them costs a segment's worth of writes for no gain).
  const uint32_t max_live = sb.segment_size - 2 * sb.block_size;
  return CleanVictims(
      fs_->usage_.PickVictims(max_victims, max_live, fs_->options_.cleaner_policy));
}

Result<uint32_t> LfsCleaner::CleanVictims(std::vector<uint32_t> victims) {
  if (fs_->in_cleaner_) {
    return uint32_t{0};
  }
  // Only dirty, non-active segments are cleanable; drop the rest.
  std::erase_if(victims, [&](uint32_t seg) {
    return fs_->usage_.Get(seg).state != SegState::kDirty;
  });
  fs_->in_cleaner_ = true;
  Result<uint32_t> result = [&]() -> Result<uint32_t> {
    const LfsSuperblock& sb = fs_->sb_;
    if (victims.empty()) {
      return uint32_t{0};
    }
    ++fs_->cleaner_stats_.passes;

    std::vector<std::byte> image(sb.segment_size);
    for (uint32_t seg : victims) {
      RETURN_IF_ERROR(
          fs_->device_->ReadSectors(sb.SegmentBlockSector(seg, 0), image));
      ++fs_->cleaner_stats_.segment_reads;
      RETURN_IF_ERROR(GatherLive(seg, image));
      // Staging live blocks must not exhaust the cache (large segments can
      // hold more live data than the cache does): compact mid-pass once
      // half the cache is dirty.
      if (fs_->cache_.dirty_count() > fs_->cache_.policy().capacity_blocks / 2) {
        RETURN_IF_ERROR(fs_->FlushEverything());
      }
    }
    // Phase two: the normal write-back path compacts the staged blocks.
    RETURN_IF_ERROR(fs_->FlushEverything());
    for (uint32_t seg : victims) {
      fs_->usage_.SetState(seg, SegState::kCleanPending);
    }
    // The checkpoint rewrites any imap/usage blocks the cleaner displaced
    // and commits the victims to kClean.
    RETURN_IF_ERROR(fs_->Checkpoint());
    for (uint32_t seg : victims) {
      if (fs_->usage_.Get(seg).live_bytes != 0) {
        return CorruptedError("cleaned segment still has live bytes");
      }
    }
    fs_->cleaner_stats_.segments_cleaned += victims.size();
    return static_cast<uint32_t>(victims.size());
  }();
  fs_->in_cleaner_ = false;
  return result;
}

Status LfsCleaner::GatherLive(uint32_t seg, std::span<const std::byte> image) {
  const LfsSuperblock& sb = fs_->sb_;
  const uint32_t bs = sb.block_size;
  const uint32_t bps = sb.BlocksPerSegment();
  uint32_t offset = 0;
  while (offset + 1 < bps) {
    std::span<const std::byte> summary_block = image.subspan(offset * bs, bs);
    Result<SummaryPeek> peek = PeekSummary(summary_block, bs);
    if (!peek.ok() || offset + 1 + peek->nblocks > bps) {
      break;  // End of the valid partial-segment chain.
    }
    std::span<const std::byte> content =
        image.subspan((offset + 1) * bs, static_cast<size_t>(peek->nblocks) * bs);
    Result<SegmentSummary> summary = DecodeSummary(summary_block, content);
    if (!summary.ok()) {
      break;
    }
    for (size_t i = 0; i < summary->entries.size(); ++i) {
      const SummaryEntry& entry = summary->entries[i];
      const DiskAddr addr = sb.SegmentBlockSector(seg, offset + 1 + static_cast<uint32_t>(i));
      std::span<const std::byte> block = content.subspan(i * bs, bs);
      ++fs_->cleaner_stats_.blocks_examined;
      if (fs_->cpu_ != nullptr) {
        fs_->ChargeCpu(fs_->cpu_->costs().per_block_instructions);
      }
      switch (entry.kind) {
        case BlockKind::kData: {
          if (!fs_->imap_.IsValid(entry.ino)) {
            break;
          }
          const ImapEntry& map_entry = fs_->imap_.Get(entry.ino);
          // Step 1 (fast path): version mismatch means the file was deleted
          // or truncated to zero — the block is dead.
          if (!map_entry.allocated || map_entry.version != entry.version) {
            break;
          }
          // Step 2: consult the inode / indirect blocks.
          ASSIGN_OR_RETURN(LfsFileSystem::CachedInode * ci, fs_->GetInode(entry.ino));
          const Inode inode = ci->inode;
          ASSIGN_OR_RETURN(DiskAddr current,
                           fs_->GetDataBlockAddr(entry.ino, inode,
                                                 static_cast<uint64_t>(entry.offset)));
          if (current != addr) {
            break;  // Superseded by a newer copy.
          }
          // Live: stage it through the cache, dirty, so the normal
          // write-back relocates it (and, with zero-copy write-back, hands
          // the cached bytes to the segment writer by reference).
          const BlockKey key{LfsFileSystem::DataObject(entry.ino),
                             static_cast<uint64_t>(entry.offset)};
          ASSIGN_OR_RETURN(CacheRef ref, fs_->cache_.Install(key, block));
          fs_->cache_.MarkDirty(ref.get());
          ++fs_->cleaner_stats_.live_blocks_copied;
          break;
        }
        case BlockKind::kIndirect: {
          if (!fs_->imap_.IsValid(entry.ino)) {
            break;
          }
          const ImapEntry& map_entry = fs_->imap_.Get(entry.ino);
          if (!map_entry.allocated || map_entry.version != entry.version) {
            break;
          }
          ASSIGN_OR_RETURN(DiskAddr current,
                           fs_->GetIndirectAddr(entry.ino, static_cast<uint64_t>(entry.offset)));
          if (current != addr) {
            break;
          }
          const BlockKey key{LfsFileSystem::IndirectObject(entry.ino),
                             static_cast<uint64_t>(entry.offset)};
          ASSIGN_OR_RETURN(CacheRef ref, fs_->cache_.Install(key, block));
          fs_->cache_.MarkDirty(ref.get());
          ++fs_->cleaner_stats_.live_blocks_copied;
          break;
        }
        case BlockKind::kInodeBlock: {
          Result<std::vector<PackedInode>> packed = DecodeInodeBlock(block);
          if (!packed.ok()) {
            break;  // Stale bytes that happen to sit under a stale summary.
          }
          for (size_t k = 0; k < packed->size(); ++k) {
            const InodeNum ino = (*packed)[k].ino;
            if (!fs_->imap_.IsValid(ino)) {
              continue;
            }
            const ImapEntry& map_entry = fs_->imap_.Get(ino);
            if (!map_entry.allocated || map_entry.block_addr != addr ||
                map_entry.slot != k) {
              continue;  // This slot is stale; the inode lives elsewhere.
            }
            // Live inode: ensure it is in core and rewrite it.
            ASSIGN_OR_RETURN(LfsFileSystem::CachedInode * ci, fs_->GetInode(ino));
            fs_->SetInodeDirty(ci);
            ++fs_->cleaner_stats_.live_blocks_copied;
          }
          break;
        }
        case BlockKind::kImap: {
          const uint32_t index = static_cast<uint32_t>(entry.offset);
          if (index < fs_->imap_block_addrs_.size() &&
              fs_->imap_block_addrs_[index] == addr) {
            // Current inode-map block: force a rewrite at the checkpoint
            // that ends this cleaning pass.
            fs_->imap_.MarkBlockDirty(index);
            ++fs_->cleaner_stats_.live_blocks_copied;
          }
          break;
        }
        case BlockKind::kSegUsage: {
          const uint32_t index = static_cast<uint32_t>(entry.offset);
          if (index < fs_->usage_block_addrs_.size() &&
              fs_->usage_block_addrs_[index] == addr) {
            fs_->usage_.MarkBlockDirty(index);
            ++fs_->cleaner_stats_.live_blocks_copied;
          }
          break;
        }
        case BlockKind::kMetaLog:
          break;  // Meta-log blocks are dead once checkpointed past.
      }
    }
    offset += 1 + peek->nblocks;
  }
  return OkStatus();
}

}  // namespace logfs
