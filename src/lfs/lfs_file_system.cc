#include "src/lfs/lfs_file_system.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "src/fsbase/dirent.h"
#include "src/lfs/lfs_blackbox.h"
#include "src/lfs/lfs_cleaner.h"
#include "src/obs/metrics.h"
#include "src/obs/space_observatory.h"
#include "src/obs/trace_context.h"
#include "src/obs/tracer.h"
#include "src/util/crc32.h"
#include "src/util/logging.h"

namespace logfs {

// Live-byte accounting rules (kept in exact agreement with
// ComputeExactUsage and the checker):
//   * data / indirect blocks:   one full block each;
//   * inode slots:              a fixed quantum q = block_size / slots-per-
//                               inode-block each (an inode block with k live
//                               slots counts k*q live bytes);
//   * imap / usage blocks:      one full block each (rooted in the
//                               checkpoint, relocated on rewrite);
//   * meta-log blocks, summary blocks: zero (dead on arrival; the cleaner
//                               never copies them).

uint32_t LfsFileSystem::InodeLiveQuantum() const {
  return BlockSize() / static_cast<uint32_t>(InodesPerLfsBlock(BlockSize()));
}

// --- Format -------------------------------------------------------------------

Status LfsFileSystem::Format(BlockDevice* device, const LfsParams& params) {
  ASSIGN_OR_RETURN(LfsSuperblock sb, ComputeLfsGeometry(params, device->sector_count()));
  std::vector<std::byte> block(sb.block_size);
  RETURN_IF_ERROR(EncodeLfsSuperblock(sb, block));
  RETURN_IF_ERROR(device->WriteSectors(0, block));
  // Format traffic is attributed to the checkpoint class: it writes exactly
  // the structures a checkpoint owns (superblock + both regions).
  obs::RecordWrite(obs::IoSource::kCheckpoint, block.size());

  // Initial checkpoint: empty file system, log starts at segment 0. All
  // imap/usage block addresses are kNoAddr ("decodes as default state").
  CheckpointRecord ckpt;
  ckpt.sequence = 1;
  ckpt.next_log_seq = 1;
  ckpt.tail_segment = 0;
  ckpt.tail_offset = 0;
  ckpt.next_ino_hint = kRootIno;
  const InodeMap imap_geometry(sb.max_inodes, sb.block_size);
  const SegmentUsageTable usage_geometry(sb.num_segments, sb.block_size);
  ckpt.imap_block_addrs.assign(imap_geometry.block_count(), kNoAddr);
  ckpt.usage_block_addrs.assign(usage_geometry.block_count(), kNoAddr);

  std::vector<std::byte> region(static_cast<size_t>(sb.checkpoint_region_blocks) *
                                sb.block_size);
  RETURN_IF_ERROR(EncodeCheckpoint(ckpt, region));
  if constexpr (obs::kMetricsEnabled) {
    // Seed region A with an empty black-box trailer so that from the very
    // first post-format write stream, at least one region always holds a
    // complete, CRC-valid telemetry ring (the crashsim sweep relies on it).
    obs::TelemetrySampler empty;
    const size_t payload = CheckpointPayloadBytes(ckpt);
    std::vector<std::byte> blob =
        empty.SerializeRing(BlackBoxCapacity(region.size(), payload));
    if (!blob.empty()) {
      (void)EmbedBlackBox(region, payload, blob);
    }
  }
  RETURN_IF_ERROR(
      device->WriteSectors((1ull) * sb.SectorsPerBlock(), region, IoOptions{.synchronous = true}));
  obs::RecordWrite(obs::IoSource::kCheckpoint, region.size());
  // Region B gets sequence 0 content? No — leave it invalid (zeroed) so the
  // first mount picks region A; the first checkpoint then writes B.
  std::vector<std::byte> zeros(region.size(), std::byte{0});
  RETURN_IF_ERROR(device->WriteSectors(
      (1ull + sb.checkpoint_region_blocks) * sb.SectorsPerBlock(), zeros));
  obs::RecordWrite(obs::IoSource::kCheckpoint, zeros.size());

  // Only shard 0 of a sharded volume (or an unsharded volume) hosts the
  // root directory — global ino 1 lives in residue class 0. The other
  // shards start as empty logs; their freshly written region A is already a
  // mountable state.
  if (sb.sharded() && sb.shard_index != 0) {
    return OkStatus();
  }
  // Create the root directory through a throwaway mount; its first
  // checkpoint persists everything.
  Options options;
  options.roll_forward = false;
  ASSIGN_OR_RETURN(auto fs, Mount(device, nullptr, nullptr, options));
  RETURN_IF_ERROR(fs->InitializeRoot());
  return fs->Checkpoint();
}

Status LfsFileSystem::InitializeRoot() {
  if (imap_.Get(kRootIno).allocated) {
    return OkStatus();
  }
  ASSIGN_OR_RETURN(InodeNum ino, imap_.Allocate(kRootIno));
  if (ino != kRootIno) {
    return CorruptedError("root inode number unavailable");
  }
  CachedInode root;
  root.inode.type = FileType::kDirectory;
  root.inode.nlink = 2;
  root.inode.generation = 1;
  auto [it, inserted] = inodes_.emplace(kRootIno, root);
  (void)inserted;
  SetInodeDirty(&it->second);
  RETURN_IF_ERROR(DirInsert(kRootIno, ".", kRootIno, FileType::kDirectory));
  return DirInsert(kRootIno, "..", kRootIno, FileType::kDirectory);
}

// --- Mount --------------------------------------------------------------------

LfsFileSystem::LfsFileSystem(BlockDevice* device, SimClock* clock, CpuModel* cpu,
                             const LfsSuperblock& sb, Options options)
    : device_(device),
      clock_(clock),
      cpu_(cpu),
      sb_(sb),
      options_(options),
      cache_(sb.block_size, options.cache_policy, clock),
      imap_(sb.max_inodes, sb.block_size, sb.sharded() ? sb.shard_count : 1,
            sb.sharded() ? sb.shard_index : 0),
      usage_(sb.num_segments, sb.block_size),
      builder_(device, sb),
      sampler_(obs::TelemetrySampler::Options{
          .interval_seconds = options.telemetry_interval_seconds,
          .capacity = options.telemetry_capacity}) {
  cache_.set_writeback_handler(this);
  imap_block_addrs_.assign(imap_.block_count(), kNoAddr);
  usage_block_addrs_.assign(usage_.block_count(), kNoAddr);
  // Zero-copy write-back pins up to a partial segment's worth of blocks
  // between append and flush; those pinned-clean blocks are not evictable,
  // so a cache without comfortable headroom over that bound must copy into
  // the builder instead (same device requests and stats either way).
  const size_t max_partial_blocks =
      std::min(SummaryCapacity(sb_.block_size),
               static_cast<size_t>(sb_.BlocksPerSegment()) - 1);
  zero_copy_writeback_ = cache_.policy().capacity_blocks >= 4 * max_partial_blocks;
}

LfsFileSystem::~LfsFileSystem() { (void)Sync(); }

Result<std::unique_ptr<LfsFileSystem>> LfsFileSystem::Mount(BlockDevice* device, SimClock* clock,
                                                            CpuModel* cpu, Options options) {
  std::vector<std::byte> first(4096);
  RETURN_IF_ERROR(device->ReadSectors(0, first));
  ASSIGN_OR_RETURN(LfsSuperblock sb, DecodeLfsSuperblock(first));
  auto fs = std::unique_ptr<LfsFileSystem>(new LfsFileSystem(device, clock, cpu, sb, options));

  // Seed the block-checksum index from the segment summaries before any
  // block is read back, so even the checkpoint's imap/usage reads verify.
  RETURN_IF_ERROR(fs->LoadBlockCrcIndex());

  // Read both checkpoint regions; the valid one with the highest sequence
  // number wins (Section 4.4.1).
  const size_t region_bytes = static_cast<size_t>(sb.checkpoint_region_blocks) * sb.block_size;
  std::vector<std::byte> region(region_bytes);
  Result<CheckpointRecord> best = CorruptedError("no valid checkpoint region");
  int best_region = -1;
  uint64_t max_ring_seq = 0;
  for (int r = 0; r < 2; ++r) {
    const uint64_t sector =
        (1ull + static_cast<uint64_t>(r) * sb.checkpoint_region_blocks) * sb.SectorsPerBlock();
    if (!device->ReadSectors(sector, region).ok()) {
      continue;
    }
    Result<CheckpointRecord> candidate = DecodeCheckpoint(region);
    if (candidate.ok() && (!best.ok() || candidate->sequence > best->sequence)) {
      best = std::move(candidate);
      best_region = r;
    }
    if constexpr (obs::kMetricsEnabled) {
      // Continue the flight recorder's numbering across remounts, else the
      // fresh sampler would restart at seq 1 and lose the "highest seq
      // wins" race against rings written before this mount.
      Result<std::vector<std::byte>> blob = ExtractBlackBox(region);
      if (blob.ok()) {
        Result<obs::TelemetryRing> ring = obs::TelemetryRing::Decode(*blob);
        if (ring.ok()) {
          max_ring_seq = std::max(max_ring_seq, ring->seq);
        }
      }
    }
  }
  if constexpr (obs::kMetricsEnabled) {
    if (max_ring_seq > 0) {
      fs->sampler_.SeedSequence(max_ring_seq + 1);
    }
  }
  if (!best.ok()) {
    return best.status();
  }
  RETURN_IF_ERROR(fs->LoadFromCheckpoint(*best));
  fs->next_ckpt_region_ = best_region == 0 ? 1 : 0;
  if constexpr (obs::kMetricsEnabled) {
    obs::Registry().GetCounter("logfs.recovery.mounts").Increment();
    obs::Tracer().RecordInstant("recovery", "checkpoint_select", fs->Now(),
                                {{"region", std::to_string(best_region)},
                                 {"sequence", std::to_string(best->sequence)}});
  }

  if (options.roll_forward) {
    RETURN_IF_ERROR(fs->RollForward());
  }
  if (fs->rolled_forward_partials_ == 0) {
    // Position the log writer at the checkpoint tail. (After a roll-forward
    // the builder already sits past the recovered partials and the recovery
    // checkpoint — rewinding it would overwrite recovered data.)
    fs->builder_.StartAt(best->tail_segment, best->tail_offset);
    fs->usage_.SetState(fs->builder_.segment(), SegState::kActive);
    // Heat baseline for the resumed tail segment (no lifecycle event: a
    // remount continues the segment, it does not allocate one).
    fs->usage_.NoteAllocated(fs->builder_.segment(), fs->Now());
  }
  fs->last_checkpoint_time_ = fs->Now();
  return fs;
}

Status LfsFileSystem::LoadFromCheckpoint(const CheckpointRecord& ckpt) {
  if (ckpt.imap_block_addrs.size() != imap_.block_count() ||
      ckpt.usage_block_addrs.size() != usage_.block_count()) {
    return CorruptedError("checkpoint geometry mismatch");
  }
  std::vector<std::byte> block(BlockSize());
  for (uint32_t i = 0; i < imap_.block_count(); ++i) {
    if (ckpt.imap_block_addrs[i] != kNoAddr) {
      RETURN_IF_ERROR(ReadBlockAt(ckpt.imap_block_addrs[i], block));
      RETURN_IF_ERROR(imap_.DecodeBlock(i, block));
    }
    imap_block_addrs_[i] = ckpt.imap_block_addrs[i];
  }
  for (uint32_t i = 0; i < usage_.block_count(); ++i) {
    if (ckpt.usage_block_addrs[i] != kNoAddr) {
      RETURN_IF_ERROR(ReadBlockAt(ckpt.usage_block_addrs[i], block));
      RETURN_IF_ERROR(usage_.DecodeBlock(i, block));
    }
    usage_block_addrs_[i] = ckpt.usage_block_addrs[i];
  }
  next_log_seq_ = ckpt.next_log_seq;
  checkpoint_seq_ = ckpt.sequence;
  next_ino_hint_ = ckpt.next_ino_hint;
  return OkStatus();
}

// --- Raw device helpers ---------------------------------------------------------

Status LfsFileSystem::ReadBlockAt(DiskAddr addr, std::span<std::byte> out) {
  const double t0 = Now();
  Status read = device_->ReadSectors(addr, out.subspan(0, BlockSize()));
  AddOpDiskSeconds(Now() - t0);
  RETURN_IF_ERROR(read);
  return VerifyBlockChecksum(addr, out.subspan(0, BlockSize()));
}

Status LfsFileSystem::VerifyBlockChecksum(DiskAddr addr, std::span<const std::byte> block) {
  const auto it = block_crcs_.find(addr);
  if (it == block_crcs_.end() || Crc32(block) == it->second) {
    return OkStatus();
  }
  if constexpr (obs::kMetricsEnabled) {
    static obs::Counter& failures = obs::Registry().GetCounter("logfs.lfs.checksum_failures");
    failures.Increment();
  }
  QuarantineSegment(SegmentOfAddr(addr));
  return CorruptedError("block checksum mismatch (silent corruption)");
}

// --- Per-op latency attribution -------------------------------------------------

namespace {

uint64_t BackoffMicros() {
  if constexpr (!obs::kMetricsEnabled) {
    return 0;
  }
  // Maintained by ResilientDisk; reading it through the registry keeps the
  // attribution correct however the device decorators are stacked.
  static obs::Counter& backoff =
      obs::Registry().GetCounter("logfs.resilient.backoff_us");
  return backoff.Value();
}

uint64_t Micros(double seconds) {
  return static_cast<uint64_t>(std::llround(seconds * 1e6));
}

}  // namespace

LfsFileSystem::OpScope::OpScope(LfsFileSystem* fs, const char* name) : fs_(fs) {
  if constexpr (!obs::kMetricsEnabled) {
    (void)name;
    return;
  }
  if (fs_->op_depth_++ > 0) {
    return;  // Internal reentry: attribute to the outermost op.
  }
  active_ = true;
  fs_->op_attr_ = OpAttr{};
  fs_->op_attr_.name = name;
  fs_->op_attr_.start = fs_->Now();
  fs_->op_attr_.retry_us_start = BackoffMicros();
  fs_->op_attr_.cache_hits_start = fs_->cache_.stats().hits;
  fs_->op_attr_.cache_misses_start = fs_->cache_.stats().misses;
}

LfsFileSystem::OpScope::~OpScope() {
  if constexpr (!obs::kMetricsEnabled) {
    return;
  }
  --fs_->op_depth_;
  if (!active_) {
    return;
  }
  OpAttr& a = fs_->op_attr_;
  const double end = fs_->Now();
  const double total = std::max(0.0, end - a.start);
  // Retry backoff elapses inside a device call, so it arrives folded into
  // the disk component; peel it back out into its own bucket.
  const double retry =
      static_cast<double>(BackoffMicros() - a.retry_us_start) / 1e6;
  const double disk = std::max(0.0, a.disk_seconds - retry);
  const double cleaner = a.cleaner_seconds;
  const double cache = std::max(0.0, total - disk - cleaner - retry);
  const uint64_t hits = fs_->cache_.stats().hits - a.cache_hits_start;
  const uint64_t misses = fs_->cache_.stats().misses - a.cache_misses_start;

  // Handles are resolved once per op name per instance: the hot path must
  // not take the global registry mutex seven times per operation (with a
  // concurrent sharded front-end that lock becomes the scaling ceiling).
  const OpMetricHandles& h = fs_->OpHandles(a.name);
  h.seconds->Observe(total);
  h.count->Increment();
  h.disk_us->Increment(Micros(disk));
  h.cleaner_us->Increment(Micros(cleaner));
  h.retry_us->Increment(Micros(retry));
  h.cache_us->Increment(Micros(cache));
  // Ring spans only for ops that did real work (device, cleaner, or retry
  // backoff): pure cache-hit ops would flood the ring — 65536 identical
  // microsecond spans hold under a second of history — while serializing
  // every operation on the tracer's global mutex. Exception: an op running
  // under a trace context is always recorded — its trace tree needs the leaf
  // regardless, and traced ops are a request-rate (not cache-hit-rate)
  // population.
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  if (disk > 0.0 || cleaner > 0.0 || retry > 0.0 || ctx.active()) {
    std::vector<std::pair<std::string, std::string>> args = {
        {"disk_us", std::to_string(Micros(disk))},
        {"cleaner_us", std::to_string(Micros(cleaner))},
        {"retry_us", std::to_string(Micros(retry))},
        {"cache_us", std::to_string(Micros(cache))},
        {"cache_hits", std::to_string(hits)},
        {"cache_misses", std::to_string(misses)}};
    if (ctx.active()) {
      obs::Tracer().RecordSpanIds("op", a.name, a.start, end, ctx.trace_id,
                                  obs::Tracer().NextId(), ctx.span_id, {},
                                  std::move(args));
    } else {
      obs::Tracer().RecordSpan("op", a.name, a.start, end, std::move(args));
    }
  }
}

const LfsFileSystem::OpMetricHandles& LfsFileSystem::OpHandles(const char* name) {
  auto it = op_metric_handles_.find(name);
  if (it != op_metric_handles_.end()) {
    return it->second;
  }
  static constexpr double kOpLatencyBounds[] = {0.0001, 0.001, 0.01, 0.05,
                                                0.1,    0.5,   1.0};
  const std::string prefix = std::string("logfs.op.") + name;
  auto& registry = obs::Registry();
  OpMetricHandles h;
  h.seconds = &registry.GetHistogram(prefix + ".seconds", kOpLatencyBounds);
  h.count = &registry.GetCounter(prefix + ".count");
  h.disk_us = &registry.GetCounter(prefix + ".disk_us");
  h.cleaner_us = &registry.GetCounter(prefix + ".cleaner_us");
  h.retry_us = &registry.GetCounter(prefix + ".retry_us");
  h.cache_us = &registry.GetCounter(prefix + ".cache_us");
  return op_metric_handles_.emplace(name, h).first->second;
}

void LfsFileSystem::AddOpDiskSeconds(double seconds) {
  if constexpr (!obs::kMetricsEnabled) {
    (void)seconds;
    return;
  }
  // Device time inside the cleaner belongs to the cleaner-interference
  // bucket, which is measured as one clock delta around the whole pass.
  if (op_depth_ > 0 && !in_cleaner_ && seconds > 0.0) {
    op_attr_.disk_seconds += seconds;
  }
}

void LfsFileSystem::AddOpCleanerSeconds(double seconds) {
  if constexpr (!obs::kMetricsEnabled) {
    (void)seconds;
    return;
  }
  if (op_depth_ > 0 && seconds > 0.0) {
    op_attr_.cleaner_seconds += seconds;
  }
}

Status LfsFileSystem::CheckWritable() const {
  if (read_only_) {
    return ReadOnlyError("mount demoted to read-only after checkpoint write failure");
  }
  return OkStatus();
}

void LfsFileSystem::QuarantineSegment(uint32_t seg) {
  const SegState state = usage_.Get(seg).state;
  // The active segment belongs to the builder; its summaries are not stable
  // yet, so a verification miss there is reported to the caller but the
  // segment stays writable.
  if (state == SegState::kQuarantined || state == SegState::kActive) {
    return;
  }
  usage_.SetState(seg, SegState::kQuarantined);
  if constexpr (obs::kMetricsEnabled) {
    obs::RecordSegLifecycle(obs::SegLifecycle::kQuarantined);
    static obs::Counter& quarantined =
        obs::Registry().GetCounter("logfs.lfs.segments_quarantined");
    quarantined.Increment();
    obs::Tracer().RecordInstant("lfs", "quarantine", Now(),
                                {{"segment", std::to_string(seg)}});
  }
}

Status LfsFileSystem::LoadBlockCrcIndex() {
  const uint32_t bps = sb_.BlocksPerSegment();
  std::vector<std::byte> summary_block(BlockSize());
  for (uint32_t seg = 0; seg < sb_.num_segments; ++seg) {
    uint32_t offset = 0;
    while (offset + 1 < bps) {
      if (!device_->ReadSectors(sb_.SegmentBlockSector(seg, offset), summary_block).ok()) {
        break;  // Unreadable summary: the scrubber/cleaner handles damage.
      }
      Result<SummaryPeek> peek = PeekSummary(summary_block, BlockSize());
      if (!peek.ok() || offset + 1 + peek->nblocks > bps) {
        break;
      }
      // Header CRC already vouches for the entry table; the content CRCs
      // are exactly what this index exists to check later.
      Result<SegmentSummary> summary = DecodeSummaryUnchecked(summary_block);
      if (!summary.ok()) {
        break;
      }
      for (size_t i = 0; i < summary->entries.size(); ++i) {
        block_crcs_[sb_.SegmentBlockSector(seg, offset + 1 + static_cast<uint32_t>(i))] =
            summary->entries[i].block_crc;
      }
      offset += 1 + peek->nblocks;
    }
  }
  return OkStatus();
}

void LfsFileSystem::ChargeCpu(uint64_t instructions) {
  if (cpu_ != nullptr) {
    cpu_->ChargeTracked(instructions);
  }
}

// --- In-core inodes --------------------------------------------------------------

Result<LfsFileSystem::CachedInode*> LfsFileSystem::GetInode(InodeNum ino) {
  if (!imap_.IsValid(ino)) {
    return InvalidArgumentError("inode number out of range");
  }
  auto it = inodes_.find(ino);
  if (it != inodes_.end()) {
    return &it->second;
  }
  const ImapEntry& entry = imap_.Get(ino);
  if (!entry.allocated) {
    return NotFoundError("inode not allocated");
  }
  if (entry.block_addr == kNoAddr) {
    return CorruptedError("allocated inode with no on-disk copy");
  }
  std::vector<std::byte> block(BlockSize());
  RETURN_IF_ERROR(ReadBlockAt(entry.block_addr, block));
  ASSIGN_OR_RETURN(std::vector<PackedInode> packed, DecodeInodeBlock(block));
  if (entry.slot >= packed.size()) {
    return CorruptedError("inode slot out of range");
  }
  // Install the requested inode, plus any siblings whose inode-map entry
  // still points at this block (sibling slots may be stale).
  for (size_t k = 0; k < packed.size(); ++k) {
    const InodeNum sibling = packed[k].ino;
    if (!imap_.IsValid(sibling)) {
      continue;
    }
    const ImapEntry& sib_entry = imap_.Get(sibling);
    if (sib_entry.allocated && sib_entry.block_addr == entry.block_addr &&
        sib_entry.slot == k && !inodes_.contains(sibling)) {
      inodes_.emplace(sibling, CachedInode{packed[k].inode, false});
    }
  }
  it = inodes_.find(ino);
  if (it == inodes_.end()) {
    return CorruptedError("inode block does not contain the expected inode");
  }
  return &it->second;
}

void LfsFileSystem::MarkInodeDirty(InodeNum ino) {
  auto it = inodes_.find(ino);
  assert(it != inodes_.end());
  SetInodeDirty(&it->second);
}

void LfsFileSystem::SetInodeDirty(CachedInode* ci) {
  if (!ci->dirty) {
    ci->dirty = true;
    ++dirty_inode_count_;
  }
}

void LfsFileSystem::SetInodeClean(CachedInode* ci) {
  if (ci->dirty) {
    ci->dirty = false;
    assert(dirty_inode_count_ > 0);
    --dirty_inode_count_;
  }
}

// --- Block mapping ----------------------------------------------------------------

Result<DiskAddr> LfsFileSystem::GetIndirectAddr(InodeNum ino, uint64_t slot) {
  ASSIGN_OR_RETURN(CachedInode * ci, GetInode(ino));
  if (slot == kSingleSlot) {
    return ci->inode.single_indirect;
  }
  if (slot == kDoubleRootSlot) {
    return ci->inode.double_indirect;
  }
  // Leaf: its address lives in the double-indirect root.
  CacheRef root = cache_.AcquireIfPresent(BlockKey{IndirectObject(ino), kDoubleRootSlot});
  if (!root) {
    if (ci->inode.double_indirect == kNoAddr) {
      return kNoAddr;
    }
    ASSIGN_OR_RETURN(root, GetIndirectRef(ino, kDoubleRootSlot, /*create=*/false));
  }
  return ReadIndirectEntry(root->data(), slot - 2);
}

Result<CacheRef> LfsFileSystem::GetIndirectRef(InodeNum ino, uint64_t slot, bool create) {
  const BlockKey key{IndirectObject(ino), slot};
  if (CacheRef ref = cache_.AcquireIfPresent(key)) {
    return ref;
  }
  if (create && slot >= 2) {
    // Materialize the root first so the leaf has a parent to register with.
    ASSIGN_OR_RETURN(CacheRef root, GetIndirectRef(ino, kDoubleRootSlot, /*create=*/true));
  }
  ASSIGN_OR_RETURN(DiskAddr addr, GetIndirectAddr(ino, slot));
  if (addr == kNoAddr) {
    if (!create) {
      return NotFoundError("indirect block does not exist");
    }
    ASSIGN_OR_RETURN(CacheRef fresh, cache_.Create(key));
    cache_.MarkDirty(fresh.get());
    return fresh;
  }
  return cache_.Acquire(key, [&](std::span<std::byte> out) { return ReadBlockAt(addr, out); });
}

Result<DiskAddr> LfsFileSystem::GetDataBlockAddr(InodeNum ino, const Inode& inode,
                                                 uint64_t index) {
  ASSIGN_OR_RETURN(BlockLocation loc, ResolveBlockIndex(index, EntriesPerBlock()));
  switch (loc.level) {
    case BlockLocation::Level::kDirect:
      return inode.direct[loc.direct_index];
    case BlockLocation::Level::kSingleIndirect: {
      if (inode.single_indirect == kNoAddr &&
          !cache_.AcquireIfPresent(BlockKey{IndirectObject(ino), kSingleSlot})) {
        return kNoAddr;
      }
      ASSIGN_OR_RETURN(CacheRef ref, GetIndirectRef(ino, kSingleSlot, /*create=*/false));
      return ReadIndirectEntry(ref->data(), loc.l1_index);
    }
    case BlockLocation::Level::kDoubleIndirect: {
      ASSIGN_OR_RETURN(DiskAddr leaf_addr, GetIndirectAddr(ino, 2 + loc.l1_index));
      if (leaf_addr == kNoAddr &&
          !cache_.AcquireIfPresent(BlockKey{IndirectObject(ino), 2 + loc.l1_index})) {
        return kNoAddr;
      }
      ASSIGN_OR_RETURN(CacheRef leaf, GetIndirectRef(ino, 2 + loc.l1_index, /*create=*/false));
      return ReadIndirectEntry(leaf->data(), loc.l2_index);
    }
  }
  return CorruptedError("unreachable block level");
}

Result<DiskAddr> LfsFileSystem::SetDataBlockAddr(InodeNum ino, uint64_t index,
                                                 DiskAddr new_addr) {
  ASSIGN_OR_RETURN(BlockLocation loc, ResolveBlockIndex(index, EntriesPerBlock()));
  ASSIGN_OR_RETURN(CachedInode * ci, GetInode(ino));
  switch (loc.level) {
    case BlockLocation::Level::kDirect: {
      const DiskAddr old = ci->inode.direct[loc.direct_index];
      ci->inode.direct[loc.direct_index] = new_addr;
      SetInodeDirty(ci);
      return old;
    }
    case BlockLocation::Level::kSingleIndirect: {
      ASSIGN_OR_RETURN(CacheRef ref, GetIndirectRef(ino, kSingleSlot, /*create=*/true));
      const DiskAddr old = ReadIndirectEntry(ref->data(), loc.l1_index);
      WriteIndirectEntry(ref->mutable_data(), loc.l1_index, new_addr);
      cache_.MarkDirty(ref.get());
      return old;
    }
    case BlockLocation::Level::kDoubleIndirect: {
      ASSIGN_OR_RETURN(CacheRef leaf, GetIndirectRef(ino, 2 + loc.l1_index, /*create=*/true));
      const DiskAddr old = ReadIndirectEntry(leaf->data(), loc.l2_index);
      WriteIndirectEntry(leaf->mutable_data(), loc.l2_index, new_addr);
      cache_.MarkDirty(leaf.get());
      return old;
    }
  }
  return CorruptedError("unreachable block level");
}

Result<DiskAddr> LfsFileSystem::SetIndirectAddr(InodeNum ino, uint64_t slot, DiskAddr new_addr) {
  ASSIGN_OR_RETURN(CachedInode * ci, GetInode(ino));
  if (slot == kSingleSlot) {
    const DiskAddr old = ci->inode.single_indirect;
    ci->inode.single_indirect = new_addr;
    SetInodeDirty(ci);
    return old;
  }
  if (slot == kDoubleRootSlot) {
    const DiskAddr old = ci->inode.double_indirect;
    ci->inode.double_indirect = new_addr;
    SetInodeDirty(ci);
    return old;
  }
  ASSIGN_OR_RETURN(CacheRef root, GetIndirectRef(ino, kDoubleRootSlot, /*create=*/true));
  const DiskAddr old = ReadIndirectEntry(root->data(), slot - 2);
  WriteIndirectEntry(root->mutable_data(), slot - 2, new_addr);
  cache_.MarkDirty(root.get());
  return old;
}

Result<CacheRef> LfsFileSystem::GetFileBlock(InodeNum ino, const Inode& inode, uint64_t index,
                                             bool create) {
  const BlockKey key{DataObject(ino), index};
  if (CacheRef ref = cache_.AcquireIfPresent(key)) {
    return ref;
  }
  ASSIGN_OR_RETURN(DiskAddr addr, GetDataBlockAddr(ino, inode, index));
  if (addr == kNoAddr) {
    if (!create) {
      // Hole: materialize a zero block in the cache (clean — reading a hole
      // must not cause log writes).
      return cache_.Create(key);
    }
    ASSIGN_OR_RETURN(CacheRef fresh, cache_.Create(key));
    return fresh;
  }
  if (!create && options_.read_ahead_blocks > 0) {
    return ReadBlockRun(ino, inode, index, addr);
  }
  return cache_.Acquire(key, [&](std::span<std::byte> out) { return ReadBlockAt(addr, out); });
}

Result<CacheRef> LfsFileSystem::ReadBlockRun(InodeNum ino, const Inode& inode, uint64_t index,
                                             DiskAddr addr) {
  // Extend the run while the next file block sits right after this one on
  // disk; the log layout makes whole-file runs the common case ("the log
  // layout algorithm places the data blocks sequentially on disk",
  // Section 4.2.1).
  const uint32_t spb = sb_.SectorsPerBlock();
  uint32_t run = 1;
  while (run <= options_.read_ahead_blocks) {
    Result<DiskAddr> next = GetDataBlockAddr(ino, inode, index + run);
    if (!next.ok() || *next != addr + static_cast<uint64_t>(run) * spb) {
      break;
    }
    if (cache_.AcquireIfPresent(BlockKey{DataObject(ino), index + run})) {
      break;  // Already cached (possibly dirty): do not clobber.
    }
    ++run;
  }
  // Create the run's cache blocks up front (read-ahead blocks first, then
  // the target, matching the legacy fill order) and scatter the single
  // transfer straight into their storage — no bounce buffer.
  std::vector<CacheRef> ahead;
  ahead.reserve(run);
  for (uint32_t k = 1; k < run; ++k) {
    ASSIGN_OR_RETURN(CacheRef ref, cache_.Create(BlockKey{DataObject(ino), index + k}));
    ahead.push_back(std::move(ref));
  }
  ASSIGN_OR_RETURN(CacheRef main, cache_.Create(BlockKey{DataObject(ino), index}));
  std::vector<std::span<std::byte>> bufs;
  bufs.reserve(run);
  bufs.push_back(main->mutable_data());  // Disk order: the target block is first.
  for (CacheRef& ref : ahead) {
    bufs.push_back(ref->mutable_data());
  }
  const double read_start = Now();
  Status read = device_->ReadSectorsV(addr, bufs);
  AddOpDiskSeconds(Now() - read_start);
  if (read.ok()) {
    // Verify the whole run: bufs[0] is the target at `addr`, bufs[k] the
    // k-th read-ahead block right after it on disk.
    for (uint32_t k = 0; k < run && read.ok(); ++k) {
      read = VerifyBlockChecksum(addr + static_cast<uint64_t>(k) * spb, bufs[k]);
    }
  }
  if (!read.ok()) {
    // Drop the half-filled blocks so a later retry re-reads the device.
    main.Release();
    cache_.InvalidateBlock(BlockKey{DataObject(ino), index});
    for (uint32_t k = 1; k < run; ++k) {
      ahead[k - 1].Release();
      cache_.InvalidateBlock(BlockKey{DataObject(ino), index + k});
    }
    return read;
  }
  return main;
}

// --- Log appending ----------------------------------------------------------------

Status LfsFileSystem::AdvanceSegment() {
  const uint32_t old_segment = builder_.segment();
  if (usage_.Get(old_segment).state == SegState::kActive) {
    usage_.SetState(old_segment, SegState::kDirty);
    if constexpr (obs::kMetricsEnabled) {
      obs::RecordSegLifecycle(obs::SegLifecycle::kSealed);
      const double allocated_at = usage_.Get(old_segment).allocated_at;
      if (allocated_at > 0.0) {
        obs::ObserveSegmentAge((Now() - allocated_at) * 1e6);
      }
    }
  }
  Result<uint32_t> next = usage_.PickClean();
  if (!next.ok()) {
    return NoSpaceError("log wrapped: no clean segments");
  }
  usage_.SetState(*next, SegState::kActive);
  usage_.NoteAllocated(*next, Now());
  if constexpr (obs::kMetricsEnabled) {
    obs::RecordSegLifecycle(obs::SegLifecycle::kAllocated);
  }
  builder_.StartAt(*next, 0);
  return OkStatus();
}

Status LfsFileSystem::EnsureAppendRoom() {
  if (!builder_.CanAppend()) {
    RETURN_IF_ERROR(FlushPartial());
    if (!builder_.SegmentHasRoom()) {
      RETURN_IF_ERROR(AdvanceSegment());
    }
  }
  return OkStatus();
}

Result<DiskAddr> LfsFileSystem::AppendToLog(BlockKind kind, uint32_t ino, uint32_t version,
                                            int64_t offset, std::span<const std::byte> data) {
  RETURN_IF_ERROR(EnsureAppendRoom());
  builder_.set_io_context(CurrentIoContext());
  ASSIGN_OR_RETURN(DiskAddr addr, builder_.Append(kind, ino, version, offset, data));
  usage_.SetWriteSeq(builder_.segment(), next_log_seq_);
  return addr;
}

Result<DiskAddr> LfsFileSystem::AppendToLogExternal(BlockKind kind, uint32_t ino,
                                                    uint32_t version, int64_t offset,
                                                    std::span<const std::byte> data) {
  RETURN_IF_ERROR(EnsureAppendRoom());
  builder_.set_io_context(CurrentIoContext());
  ASSIGN_OR_RETURN(DiskAddr addr, builder_.AppendExternal(kind, ino, version, offset, data));
  usage_.SetWriteSeq(builder_.segment(), next_log_seq_);
  return addr;
}

Result<DiskAddr> LfsFileSystem::AppendToLogDeferred(BlockKind kind, uint32_t ino,
                                                    uint32_t version, int64_t offset,
                                                    std::span<std::byte>* buffer) {
  RETURN_IF_ERROR(EnsureAppendRoom());
  builder_.set_io_context(CurrentIoContext());
  ASSIGN_OR_RETURN(DiskAddr addr, builder_.AppendDeferred(kind, ino, version, offset, buffer));
  usage_.SetWriteSeq(builder_.segment(), next_log_seq_);
  return addr;
}

Status LfsFileSystem::FlushPartial() {
  if (builder_.pending() == 0) {
    staged_pins_.clear();
    return OkStatus();
  }
  if (cpu_ != nullptr) {
    ChargeCpu(cpu_->costs().segment_build_per_block * builder_.pending());
  }
  // On failure the builder keeps its entries (and their extents), so the
  // pins stay too; everything unwinds together when the caller gives up.
  const double flush_start = Now();
  Status flushed = builder_.Flush(next_log_seq_++, flush_start);
  AddOpDiskSeconds(Now() - flush_start);
  RETURN_IF_ERROR(flushed);
  // Fold the write-time checksums into the read-verification index.
  for (const SegmentBuilder::FlushedBlock& fb : builder_.last_flush()) {
    block_crcs_[fb.addr] = fb.crc;
  }
  if constexpr (obs::kMetricsEnabled) {
    static constexpr double kLatencyBounds[] = {0.0001, 0.001, 0.01, 0.05, 0.1, 0.5};
    static obs::Histogram& latency =
        obs::Registry().GetHistogram("logfs.segwriter.flush_seconds", kLatencyBounds);
    latency.Observe(Now() - flush_start);
    obs::Tracer().RecordSpan("segwriter", "flush", flush_start, Now());
  }
  staged_pins_.clear();
  return OkStatus();
}

void LfsFileSystem::AccountReplace(DiskAddr old_addr, DiskAddr new_addr, uint32_t bytes) {
  if (old_addr != kNoAddr) {
    AccountBlockDeath(old_addr, bytes);
  }
  if (new_addr != kNoAddr) {
    usage_.AddLive(SegmentOfAddr(new_addr), bytes);
  }
}

void LfsFileSystem::AccountBlockDeath(DiskAddr addr, uint32_t bytes) {
  const uint32_t seg = SegmentOfAddr(addr);
  usage_.AddLive(seg, -static_cast<int64_t>(bytes));
  // Heat tracks *workload* overwrite cadence; cleaner relocation kills the
  // old copy too, but that death says nothing about how hot the data is.
  if (!in_cleaner_) {
    usage_.RecordOverwrite(seg, Now());
  }
}

void LfsFileSystem::CollectSegmentUtilization(std::vector<double>* out) const {
  // The paper's Fig. 3 as a live metric: utilization of every segment that
  // currently holds log data. Clean segments are empty by definition and
  // quarantined ones are out of service, so neither belongs on the curve.
  const double capacity =
      static_cast<double>(sb_.BlocksPerSegment()) * BlockSize();
  for (uint32_t seg = 0; seg < sb_.num_segments; ++seg) {
    const SegUsage& u = usage_.Get(seg);
    if (u.state == SegState::kClean || u.state == SegState::kQuarantined) {
      continue;
    }
    out->push_back(static_cast<double>(u.live_bytes) / capacity);
  }
}

void LfsFileSystem::PublishSpaceTelemetry() {
  if constexpr (!obs::kMetricsEnabled) {
    return;
  }
  std::vector<double> utils;
  utils.reserve(sb_.num_segments);
  CollectSegmentUtilization(&utils);
  obs::PublishUtilization(utils);
}

// --- Write-back machinery -----------------------------------------------------------

Status LfsFileSystem::WriteBack(std::span<CacheBlock* const> blocks) {
  // Phase 1: file/directory data blocks. The cache hands them over sorted
  // by (object, index), so each file's blocks land contiguously in the
  // segment — the layout property that makes LFS reads fast.
  for (CacheBlock* block : blocks) {
    if (block->key().object_id & kIndirectFlag) {
      continue;  // Phase 2.
    }
    const InodeNum ino = static_cast<InodeNum>(block->key().object_id);
    const uint64_t index = block->key().index;
    if (!imap_.Get(ino).allocated) {
      // The file vanished between dirtying and flushing; its cache blocks
      // should have been invalidated.
      return CorruptedError("dirty block for unallocated inode");
    }
    const uint32_t version = imap_.Get(ino).version;
    DiskAddr addr = kNoAddr;
    if (zero_copy_writeback_) {
      // Stage the cache block's bytes in place, then pin it so eviction
      // cannot free the storage before the vectored flush reads it. The pin
      // must come after the append: an intervening FlushPartial (builder
      // full) releases all staged pins, and until the append lands this
      // block is still dirty and therefore unevictable anyway.
      ASSIGN_OR_RETURN(addr, AppendToLogExternal(BlockKind::kData, ino, version,
                                                 static_cast<int64_t>(index), block->data()));
      staged_pins_.emplace_back(&cache_, block);
    } else {
      ASSIGN_OR_RETURN(addr, AppendToLog(BlockKind::kData, ino, version,
                                         static_cast<int64_t>(index), block->data()));
    }
    ASSIGN_OR_RETURN(DiskAddr old, SetDataBlockAddr(ino, index, addr));
    AccountReplace(old, addr, BlockSize());
    // Mark clean immediately so the cache has evictable blocks while the
    // rest of the flush proceeds (the cache re-marks the batch clean after
    // we return; MarkClean is idempotent).
    cache_.MarkClean(block);
  }
  RETURN_IF_ERROR(FlushDirtyIndirect(blocks));
  RETURN_IF_ERROR(FlushDirtyInodes());
  RETURN_IF_ERROR(FlushPendingFrees());
  return FlushPartial();
}

Status LfsFileSystem::FlushDirtyIndirect(std::span<CacheBlock* const> /*batch*/) {
  // Leaves (slot >= 2) first: appending a leaf updates the double-indirect
  // root, which must therefore be appended after all its leaves.
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<CacheBlock*> dirty = cache_.DirtyBlocks();
    for (CacheBlock* block : dirty) {
      if (!(block->key().object_id & kIndirectFlag)) {
        continue;
      }
      const uint64_t slot = block->key().index;
      const bool is_leaf = slot >= 2;
      if ((pass == 0) != is_leaf) {
        continue;
      }
      const InodeNum ino = static_cast<InodeNum>(block->key().object_id & 0xFFFFFFFFu);
      if (!imap_.Get(ino).allocated) {
        return CorruptedError("dirty indirect block for unallocated inode");
      }
      const uint32_t version = imap_.Get(ino).version;
      DiskAddr addr = kNoAddr;
      if (zero_copy_writeback_) {
        // Pin after the append, as in the data-block phase above.
        ASSIGN_OR_RETURN(addr, AppendToLogExternal(BlockKind::kIndirect, ino, version,
                                                   static_cast<int64_t>(slot), block->data()));
        staged_pins_.emplace_back(&cache_, block);
      } else {
        ASSIGN_OR_RETURN(addr, AppendToLog(BlockKind::kIndirect, ino, version,
                                           static_cast<int64_t>(slot), block->data()));
      }
      ASSIGN_OR_RETURN(DiskAddr old, SetIndirectAddr(ino, slot, addr));
      AccountReplace(old, addr, BlockSize());
      cache_.MarkClean(block);
    }
  }
  return OkStatus();
}

Status LfsFileSystem::FlushDirtyInodes() {
  std::vector<InodeNum> dirty;
  for (const auto& [ino, cached] : inodes_) {
    if (cached.dirty) {
      dirty.push_back(ino);
    }
  }
  if (dirty.empty()) {
    return OkStatus();
  }
  std::sort(dirty.begin(), dirty.end());
  const size_t per_block = InodesPerLfsBlock(BlockSize());
  const uint32_t quantum = InodeLiveQuantum();
  for (size_t start = 0; start < dirty.size(); start += per_block) {
    const size_t count = std::min(per_block, dirty.size() - start);
    std::vector<PackedInode> packed(count);
    for (size_t k = 0; k < count; ++k) {
      const InodeNum ino = dirty[start + k];
      packed[k].ino = ino;
      packed[k].version = imap_.Get(ino).version;
      packed[k].inode = inodes_.at(ino).inode;
    }
    // Encode straight into the builder's staging block.
    std::span<std::byte> block;
    ASSIGN_OR_RETURN(DiskAddr addr, AppendToLogDeferred(BlockKind::kInodeBlock, 0, 0, 0, &block));
    RETURN_IF_ERROR(EncodeInodeBlock(packed, block));
    for (size_t k = 0; k < count; ++k) {
      const InodeNum ino = dirty[start + k];
      const DiskAddr old = imap_.Get(ino).block_addr;
      AccountReplace(old, addr, quantum);
      imap_.SetLocation(ino, addr, static_cast<uint16_t>(k));
      SetInodeClean(&inodes_.at(ino));
    }
    if constexpr (obs::kMetricsEnabled) {
      static obs::Counter& blocks = obs::Registry().GetCounter("logfs.imap.inode_blocks_written");
      static obs::Counter& flushed = obs::Registry().GetCounter("logfs.imap.inodes_flushed");
      blocks.Increment();
      flushed.Increment(count);
    }
  }
  return OkStatus();
}

Status LfsFileSystem::FlushPendingFrees() {
  if (pending_frees_.empty()) {
    return OkStatus();
  }
  const size_t per_block = FreeRecordsPerBlock(BlockSize());
  for (size_t start = 0; start < pending_frees_.size(); start += per_block) {
    const size_t count = std::min(per_block, pending_frees_.size() - start);
    std::span<std::byte> block;
    RETURN_IF_ERROR(AppendToLogDeferred(BlockKind::kMetaLog, 0, 0, 0, &block).status());
    RETURN_IF_ERROR(EncodeMetaLogBlock(
        std::span<const FreeRecord>(pending_frees_).subspan(start, count), block));
    if constexpr (obs::kMetricsEnabled) {
      static obs::Counter& blocks = obs::Registry().GetCounter("logfs.lfs.meta_log_blocks");
      blocks.Increment();
    }
  }
  pending_frees_.clear();
  return OkStatus();
}

Status LfsFileSystem::FlushEverything() {
  RETURN_IF_ERROR(cache_.FlushAll());
  // Cover the cases where no cache blocks were dirty but inodes or frees
  // are pending (e.g. pure truncates).
  RETURN_IF_ERROR(FlushDirtyIndirect({}));
  RETURN_IF_ERROR(FlushDirtyInodes());
  RETURN_IF_ERROR(FlushPendingFrees());
  return FlushPartial();
}

// --- Checkpoints ---------------------------------------------------------------------

Status LfsFileSystem::WriteCheckpointRegion(const CheckpointRecord& ckpt) {
  std::vector<std::byte> region(static_cast<size_t>(sb_.checkpoint_region_blocks) *
                                BlockSize());
  RETURN_IF_ERROR(EncodeCheckpoint(ckpt, region));
  if constexpr (obs::kMetricsEnabled) {
    // Stow the flight recorder in the region's tail slack: the region is
    // written as one request either way, so the black box costs no I/O.
    const size_t payload = CheckpointPayloadBytes(ckpt);
    std::vector<std::byte> blob =
        sampler_.SerializeRing(BlackBoxCapacity(region.size(), payload));
    if (!blob.empty()) {
      (void)EmbedBlackBox(region, payload, blob);
    }
  }
  auto region_sector = [&](uint32_t r) {
    return (1ull + static_cast<uint64_t>(r) * sb_.checkpoint_region_blocks) *
           sb_.SectorsPerBlock();
  };
  const double ckpt_io_start = Now();
  Status first = device_->WriteSectors(region_sector(next_ckpt_region_), region,
                                       IoOptions{.synchronous = true});
  AddOpDiskSeconds(Now() - ckpt_io_start);
  if (first.ok()) {
    next_ckpt_region_ ^= 1;
    obs::RecordWrite(RegionIoSource(), region.size());
    return OkStatus();
  }
  if (first.code() == ErrorCode::kCrashed) {
    return first;  // Power-off, not media damage: recovery handles it.
  }
  // The chosen region is suspect; fall back to the alternate so the
  // checkpoint still lands somewhere durable. The failed region stays next
  // in the rotation: if it recovers the alternation resumes, and if it is
  // persistently bad every checkpoint retries it and keeps landing here.
  const uint32_t failed = next_ckpt_region_;
  const double failover_start = Now();
  Status second = device_->WriteSectors(region_sector(failed ^ 1), region,
                                        IoOptions{.synchronous = true});
  AddOpDiskSeconds(Now() - failover_start);
  if (second.ok()) {
    next_ckpt_region_ = failed;
    obs::RecordWrite(RegionIoSource(), region.size());
    if constexpr (obs::kMetricsEnabled) {
      static obs::Counter& failovers =
          obs::Registry().GetCounter("logfs.lfs.ckpt_region_failovers");
      failovers.Increment();
    }
    return OkStatus();
  }
  if (second.code() == ErrorCode::kCrashed) {
    return second;
  }
  // Neither region can hold a checkpoint: further writes could never be
  // made durable, so demote the mount instead of silently losing them.
  // Last forensic gesture first: try to land just the black-box trailer
  // sectors (a much smaller target than the full region) so the telemetry
  // leading up to the failure survives if any tail sector still accepts
  // writes.
  PersistBlackBoxNow();
  read_only_ = true;
  if constexpr (obs::kMetricsEnabled) {
    static obs::Counter& demotions =
        obs::Registry().GetCounter("logfs.lfs.readonly_demotions");
    demotions.Increment();
    obs::Tracer().RecordInstant("lfs", "readonly_demotion", Now(), {});
  }
  return MediaError("checkpoint write failed on both regions; mount is now read-only: " +
                    first.message());
}

void LfsFileSystem::PersistBlackBoxNow() {
  if constexpr (!obs::kMetricsEnabled) {
    return;
  }
  const size_t region_bytes =
      static_cast<size_t>(sb_.checkpoint_region_blocks) * BlockSize();
  std::vector<std::byte> region(region_bytes);
  for (uint32_t r = 0; r < 2; ++r) {
    const uint64_t sector =
        (1ull + static_cast<uint64_t>(r) * sb_.checkpoint_region_blocks) *
        sb_.SectorsPerBlock();
    if (!device_->ReadSectors(sector, region).ok()) {
      continue;
    }
    // Preserve a decodable checkpoint payload; if the region holds garbage
    // anyway, the whole slack (minus the footer) is fair game.
    size_t payload = 0;
    Result<CheckpointRecord> ckpt = DecodeCheckpoint(region);
    if (ckpt.ok()) {
      payload = CheckpointPayloadBytes(*ckpt);
    }
    std::vector<std::byte> blob =
        sampler_.SerializeRing(BlackBoxCapacity(region_bytes, payload));
    if (blob.empty() || !EmbedBlackBox(region, payload, blob).ok()) {
      continue;
    }
    // Rewrite only the sectors the trailer touches; stale bytes ahead of
    // the blob are ignored by ExtractBlackBox (the footer is end-anchored).
    const size_t trailer_bytes = blob.size() + kBlackBoxFooterBytes;
    const size_t start_byte =
        (region_bytes - trailer_bytes) / kSectorSize * kSectorSize;
    Status wrote = device_->WriteSectors(
        sector + start_byte / kSectorSize,
        std::span<const std::byte>(region).subspan(start_byte),
        IoOptions{.synchronous = true});
    if (wrote.ok()) {
      obs::RecordWrite(obs::IoSource::kCheckpoint, region_bytes - start_byte);
    }
  }
}

Status LfsFileSystem::Checkpoint() {
  RETURN_IF_ERROR(CheckWritable());
  // FlushEverything drains *foreground* dirty state; only the imap/usage
  // rewrites below are checkpoint-class traffic.
  RETURN_IF_ERROR(FlushEverything());
  ScopedFlag checkpoint_scope(&in_checkpoint_);

  // Rewrite dirty inode-map blocks into the log, encoding each straight
  // into the builder's staging block.
  for (uint32_t i = 0; i < imap_.block_count(); ++i) {
    if (!imap_.BlockDirty(i)) {
      continue;
    }
    std::span<std::byte> block;
    ASSIGN_OR_RETURN(DiskAddr addr, AppendToLogDeferred(BlockKind::kImap, 0, 0, i, &block));
    RETURN_IF_ERROR(imap_.EncodeBlock(i, block));
    AccountReplace(imap_block_addrs_[i], addr, BlockSize());
    imap_block_addrs_[i] = addr;
    imap_.ClearBlockDirty(i);
    if constexpr (obs::kMetricsEnabled) {
      static obs::Counter& rewrites = obs::Registry().GetCounter("logfs.imap.blocks_rewritten");
      rewrites.Increment();
    }
  }

  // Rewrite dirty segment-usage blocks. Their contents depend on the disk
  // addresses these very appends assign (usage changes as blocks land), so
  // they are appended with deferred content and patched afterwards — which
  // requires them all to share one partial segment. Reserve room for the
  // worst case (every usage block) before starting.
  const uint32_t usage_needed = usage_.block_count() + 1;  // + summary.
  if (usage_needed > sb_.BlocksPerSegment()) {
    return NoSpaceError("segment too small to checkpoint the usage table");
  }
  if (builder_.next_offset() + usage_needed > sb_.BlocksPerSegment() ||
      builder_.pending() + usage_.block_count() > SummaryCapacity(BlockSize())) {
    RETURN_IF_ERROR(FlushPartial());
    if (builder_.next_offset() + usage_needed > sb_.BlocksPerSegment()) {
      RETURN_IF_ERROR(AdvanceSegment());
    }
  }
  std::vector<std::pair<uint32_t, std::span<std::byte>>> deferred;
  for (int round = 0; round < 8; ++round) {
    bool appended = false;
    for (uint32_t i = 0; i < usage_.block_count(); ++i) {
      if (!usage_.BlockDirty(i)) {
        continue;
      }
      bool already = false;
      for (const auto& [index, span] : deferred) {
        if (index == i) {
          already = true;
          break;
        }
      }
      if (already) {
        continue;
      }
      if (!builder_.CanAppend()) {
        // Usage blocks must share one partial segment (their buffers are
        // patched before Flush). Make room first.
        if (!deferred.empty()) {
          return IoError("usage blocks split across partial segments");
        }
        RETURN_IF_ERROR(FlushPartial());
        if (!builder_.SegmentHasRoom()) {
          RETURN_IF_ERROR(AdvanceSegment());
        }
      }
      std::span<std::byte> buffer;
      builder_.set_io_context(CurrentIoContext());
      ASSIGN_OR_RETURN(DiskAddr addr,
                       builder_.AppendDeferred(BlockKind::kSegUsage, 0, 0, i, &buffer));
      usage_.SetWriteSeq(builder_.segment(), next_log_seq_);
      AccountReplace(usage_block_addrs_[i], addr, BlockSize());
      usage_block_addrs_[i] = addr;
      deferred.emplace_back(i, buffer);
      appended = true;
    }
    if (!appended) {
      break;
    }
  }
  for (auto& [i, buffer] : deferred) {
    RETURN_IF_ERROR(usage_.EncodeBlock(i, buffer));
    usage_.ClearBlockDirty(i);
  }
  if constexpr (obs::kMetricsEnabled) {
    static obs::Counter& rewrites = obs::Registry().GetCounter("logfs.usage.blocks_rewritten");
    rewrites.Increment(deferred.size());
  }
  RETURN_IF_ERROR(FlushPartial());

  // One guaranteed sample per checkpoint, taken after the flushes so the
  // black box records the counters exactly as of the state it rides with.
  // Refresh the utilization-distribution gauges first so the sample carries
  // the current Fig.-3 curve.
  PublishSpaceTelemetry();
  sampler_.SampleNow(Now());

  CheckpointRecord ckpt;
  ckpt.sequence = ++checkpoint_seq_;
  ckpt.timestamp = Now();
  ckpt.next_log_seq = next_log_seq_;
  ckpt.tail_segment = builder_.segment();
  ckpt.tail_offset = builder_.next_offset();
  ckpt.next_ino_hint = next_ino_hint_;
  ckpt.total_live_bytes = usage_.TotalLiveBytes();
  ckpt.imap_block_addrs = imap_block_addrs_;
  ckpt.usage_block_addrs = usage_block_addrs_;
  RETURN_IF_ERROR(WriteCheckpointRegion(ckpt));

  // Segments emptied by the cleaner become allocatable only now that the
  // checkpoint has recorded the new homes of their blocks. Pending segments
  // the cleaner could NOT fully relocate (live blocks lost to media damage)
  // come back quarantined instead of clean.
  const uint32_t pending_before = usage_.CountState(SegState::kCleanPending);
  const std::vector<uint32_t> quarantined = usage_.CommitPendingClean();
  if constexpr (obs::kMetricsEnabled) {
    // Lifecycle accounting: cleaner-emptied segments become "cleaned" at the
    // checkpoint that commits them. Recovery's terminal checkpoint merely
    // re-promotes pending state left over from before the crash — replaying
    // it would double-count, so it is excluded.
    if (!in_recovery_) {
      const uint32_t cleaned =
          pending_before - static_cast<uint32_t>(quarantined.size());
      for (uint32_t i = 0; i < cleaned; ++i) {
        obs::RecordSegLifecycle(obs::SegLifecycle::kCleaned);
      }
      for (size_t i = 0; i < quarantined.size(); ++i) {
        obs::RecordSegLifecycle(obs::SegLifecycle::kQuarantined);
      }
    }
    if (!quarantined.empty()) {
      static obs::Counter& counter =
          obs::Registry().GetCounter("logfs.lfs.segments_quarantined");
      counter.Increment(quarantined.size());
      for (uint32_t seg : quarantined) {
        obs::Tracer().RecordInstant("lfs", "quarantine", Now(),
                                    {{"segment", std::to_string(seg)}});
      }
    }
  }
  last_checkpoint_time_ = Now();
  ++checkpoint_count_;
  // Everything mutated before this point is now reachable from the
  // checkpoint: the durable horizon catches up to the mutation counter.
  synced_seq_ = mutation_seq_;
  if constexpr (obs::kMetricsEnabled) {
    static obs::Counter& checkpoints = obs::Registry().GetCounter("logfs.lfs.checkpoints");
    checkpoints.Increment();
  }
  return OkStatus();
}

// --- Roll-forward recovery ------------------------------------------------------------

Status LfsFileSystem::RollForward() {
  // Everything written while rolling forward — including the terminal
  // checkpoint below — is recovery-class traffic for attribution.
  ScopedFlag recovery_scope(&in_recovery_);
  const uint64_t checkpoint_next_seq = next_log_seq_;
  const uint32_t rolled_before = rolled_forward_partials_;
  obs::SpanTimer roll_span(clock_, "recovery", "roll_forward");
  struct Found {
    uint32_t segment;
    uint32_t offset;
    SegmentSummary summary;
    std::vector<std::byte> content;
  };
  std::map<uint64_t, Found> found;
  const uint32_t bps = sb_.BlocksPerSegment();
  std::vector<std::byte> summary_block(BlockSize());

  for (uint32_t seg = 0; seg < sb_.num_segments; ++seg) {
    uint32_t offset = 0;
    while (offset + 1 < bps) {
      const uint64_t sector = sb_.SegmentBlockSector(seg, offset);
      if (!device_->ReadSectors(sector, summary_block).ok()) {
        break;
      }
      Result<SummaryPeek> peek = PeekSummary(summary_block, BlockSize());
      if (!peek.ok()) {
        break;  // No (more) valid partial segments here.
      }
      if (offset + 1 + peek->nblocks > bps) {
        break;
      }
      if (peek->seq >= next_log_seq_) {
        // Candidate: validate fully against its content.
        std::vector<std::byte> content(static_cast<size_t>(peek->nblocks) * BlockSize());
        if (!device_->ReadSectors(sb_.SegmentBlockSector(seg, offset + 1), content).ok()) {
          break;
        }
        Result<SegmentSummary> summary =
            options_.unsafe_skip_rollforward_crc
                ? DecodeSummaryUnchecked(summary_block)
                : DecodeSummary(summary_block, content);
        if (!summary.ok()) {
          break;  // Torn write: the log ends here.
        }
        found.emplace(peek->seq,
                      Found{seg, offset, std::move(*summary), std::move(content)});
      }
      offset += 1 + peek->nblocks;
    }
  }

  // Apply in sequence order while contiguous with the checkpoint tail.
  uint32_t tail_segment = 0;
  uint32_t tail_offset = 0;
  bool advanced = false;
  while (true) {
    auto it = found.find(next_log_seq_);
    if (it == found.end()) {
      break;
    }
    const Found& partial = it->second;
    RETURN_IF_ERROR(ApplyRolledPartial(partial.summary, partial.segment, partial.offset,
                                       partial.content));
    tail_segment = partial.segment;
    tail_offset = partial.offset + 1 + static_cast<uint32_t>(partial.summary.entries.size());
    advanced = true;
    ++next_log_seq_;
    ++rolled_forward_partials_;
    found.erase(it);
  }
  if constexpr (obs::kMetricsEnabled) {
    const uint32_t applied = rolled_forward_partials_ - rolled_before;
    obs::Registry().GetCounter("logfs.recovery.segments_scanned").Increment(sb_.num_segments);
    obs::Registry().GetCounter("logfs.recovery.rolled_partials").Increment(applied);
    roll_span.AddArg("segments_scanned", std::to_string(sb_.num_segments));
    roll_span.AddArg("partials_applied", std::to_string(applied));
  }
  if (!advanced) {
    return OkStatus();
  }

  // Reposition the writer, rebuild the usage table exactly, and persist the
  // recovered state immediately.
  builder_.StartAt(tail_segment, tail_offset);
  RETURN_IF_ERROR(RebuildUsageFromScratch(tail_segment, checkpoint_next_seq));
  return Checkpoint();
}

Status LfsFileSystem::ApplyRolledPartial(const SegmentSummary& summary, uint32_t segment,
                                         uint32_t offset,
                                         std::span<const std::byte> content) {
  if constexpr (obs::kMetricsEnabled) {
    static obs::Counter& replayed = obs::Registry().GetCounter("logfs.recovery.replayed_records");
    replayed.Increment(summary.entries.size());
  }
  for (size_t i = 0; i < summary.entries.size(); ++i) {
    const SummaryEntry& entry = summary.entries[i];
    const DiskAddr block_addr = sb_.SegmentBlockSector(segment, offset + 1 +
                                                                    static_cast<uint32_t>(i));
    std::span<const std::byte> block = content.subspan(i * BlockSize(), BlockSize());
    switch (entry.kind) {
      case BlockKind::kInodeBlock: {
        ASSIGN_OR_RETURN(std::vector<PackedInode> packed, DecodeInodeBlock(block));
        for (size_t k = 0; k < packed.size(); ++k) {
          const InodeNum ino = packed[k].ino;
          if (!imap_.IsValid(ino)) {
            return CorruptedError("rolled-forward inode out of range");
          }
          // Never resurrect an older incarnation: only apply if this write
          // is at least as new as what the map knows.
          if (packed[k].version >= imap_.Get(ino).version) {
            imap_.ForceAllocated(ino, true);
            imap_.SetVersion(ino, packed[k].version);
            imap_.SetLocation(ino, block_addr, static_cast<uint16_t>(k));
          }
        }
        break;
      }
      case BlockKind::kMetaLog: {
        ASSIGN_OR_RETURN(std::vector<FreeRecord> records, DecodeMetaLogBlock(block));
        for (const FreeRecord& record : records) {
          if (!imap_.IsValid(record.ino)) {
            return CorruptedError("rolled-forward free record out of range");
          }
          if (record.new_version >= imap_.Get(record.ino).version) {
            imap_.ForceAllocated(record.ino, false);
            imap_.SetVersion(record.ino, record.new_version);
            imap_.SetLocation(record.ino, kNoAddr, 0);
          }
        }
        break;
      }
      case BlockKind::kImap: {
        // A checkpoint-era imap block re-found in the log: its content is
        // already reflected via the checkpoint (or superseded by newer
        // inode blocks); re-register its address if it is the current one.
        break;
      }
      case BlockKind::kData:
      case BlockKind::kIndirect:
      case BlockKind::kSegUsage:
        // Reached through inodes (data/indirect) or rebuilt from scratch
        // after roll-forward (usage); nothing to apply directly.
        break;
    }
  }
  return OkStatus();
}

Status LfsFileSystem::RebuildUsageFromScratch(uint32_t active_segment,
                                              uint64_t checkpoint_next_seq) {
  ASSIGN_OR_RETURN(std::vector<uint64_t> live, ComputeExactUsage());
  for (uint32_t seg = 0; seg < sb_.num_segments; ++seg) {
    usage_.SetLive(seg, static_cast<uint32_t>(live[seg]));
    if (usage_.Get(seg).state == SegState::kQuarantined) {
      continue;  // Media damage survives recovery; never reclassify it.
    }
    if (seg == active_segment) {
      usage_.SetState(seg, SegState::kActive);
      // Heat baseline for the resumed tail; not a lifecycle "allocated"
      // event — the segment was allocated before the crash.
      usage_.NoteAllocated(seg, Now());
    } else if (live[seg] > 0) {
      usage_.SetState(seg, SegState::kDirty);
    } else if (usage_.Get(seg).last_write_seq >= checkpoint_next_seq) {
      // Written after the checkpoint we recovered from: until the
      // post-recovery checkpoint lands, a second crash would roll forward
      // from the old checkpoint again, so keep the rolled log intact.
      usage_.SetState(seg, SegState::kCleanPending);
    } else {
      usage_.SetState(seg, SegState::kClean);
    }
  }
  return OkStatus();
}

Result<std::vector<uint64_t>> LfsFileSystem::ComputeExactUsage() {
  std::vector<uint64_t> live(sb_.num_segments, 0);
  const uint32_t bs = BlockSize();
  const uint32_t quantum = InodeLiveQuantum();
  auto add = [&](DiskAddr addr, uint64_t bytes) {
    if (addr != kNoAddr) {
      live[SegmentOfAddr(addr)] += bytes;
    }
  };
  for (DiskAddr addr : imap_block_addrs_) {
    add(addr, bs);
  }
  for (DiskAddr addr : usage_block_addrs_) {
    add(addr, bs);
  }
  for (uint32_t slot = 0; slot < imap_.max_inodes(); ++slot) {
    const InodeNum ino = imap_.InoAtSlot(slot);
    const ImapEntry& entry = imap_.GetSlot(slot);
    if (!entry.allocated) {
      continue;
    }
    add(entry.block_addr, quantum);
    ASSIGN_OR_RETURN(CachedInode * ci, GetInode(ino));
    const Inode inode = ci->inode;  // Copy: cache ops below may rehash.
    for (DiskAddr addr : inode.direct) {
      add(addr, bs);
    }
    if (inode.single_indirect != kNoAddr) {
      add(inode.single_indirect, bs);
      ASSIGN_OR_RETURN(CacheRef ref, GetIndirectRef(ino, kSingleSlot, /*create=*/false));
      for (uint64_t j = 0; j < EntriesPerBlock(); ++j) {
        add(ReadIndirectEntry(ref->data(), j), bs);
      }
    }
    if (inode.double_indirect != kNoAddr) {
      add(inode.double_indirect, bs);
      for (uint64_t j = 0; j < EntriesPerBlock(); ++j) {
        ASSIGN_OR_RETURN(DiskAddr leaf_addr, GetIndirectAddr(ino, 2 + j));
        if (leaf_addr == kNoAddr) {
          continue;
        }
        add(leaf_addr, bs);
        ASSIGN_OR_RETURN(CacheRef leaf, GetIndirectRef(ino, 2 + j, /*create=*/false));
        for (uint64_t k = 0; k < EntriesPerBlock(); ++k) {
          add(ReadIndirectEntry(leaf->data(), k), bs);
        }
      }
    }
  }
  return live;
}

// --- Media scrubbing --------------------------------------------------------------

Result<bool> LfsFileSystem::IsBlockLive(const SummaryEntry& entry, DiskAddr addr) {
  switch (entry.kind) {
    case BlockKind::kData: {
      if (!imap_.IsValid(entry.ino)) {
        return false;
      }
      const ImapEntry& map_entry = imap_.Get(entry.ino);
      if (!map_entry.allocated || map_entry.version != entry.version) {
        return false;
      }
      ASSIGN_OR_RETURN(CachedInode * ci, GetInode(entry.ino));
      const Inode inode = ci->inode;
      ASSIGN_OR_RETURN(DiskAddr current,
                       GetDataBlockAddr(entry.ino, inode, static_cast<uint64_t>(entry.offset)));
      return current == addr;
    }
    case BlockKind::kIndirect: {
      if (!imap_.IsValid(entry.ino)) {
        return false;
      }
      const ImapEntry& map_entry = imap_.Get(entry.ino);
      if (!map_entry.allocated || map_entry.version != entry.version) {
        return false;
      }
      ASSIGN_OR_RETURN(DiskAddr current,
                       GetIndirectAddr(entry.ino, static_cast<uint64_t>(entry.offset)));
      return current == addr;
    }
    case BlockKind::kInodeBlock: {
      // The summary cannot say which slots are current, and the (possibly
      // damaged) content is not trustworthy — consult the map's reverse
      // direction instead: any allocated inode homed in this block keeps it
      // live.
      for (uint32_t slot = 0; slot < imap_.max_inodes(); ++slot) {
        const ImapEntry& map_entry = imap_.GetSlot(slot);
        if (map_entry.allocated && map_entry.block_addr == addr) {
          return true;
        }
      }
      return false;
    }
    case BlockKind::kImap: {
      const uint32_t index = static_cast<uint32_t>(entry.offset);
      return index < imap_block_addrs_.size() && imap_block_addrs_[index] == addr;
    }
    case BlockKind::kSegUsage: {
      const uint32_t index = static_cast<uint32_t>(entry.offset);
      return index < usage_block_addrs_.size() && usage_block_addrs_[index] == addr;
    }
    case BlockKind::kMetaLog:
      return false;  // Dead once checkpointed past.
  }
  return false;
}

Result<LfsFileSystem::ScrubReport> LfsFileSystem::Scrub(uint32_t max_segments) {
  ScrubReport report;
  if (max_segments == 0 || sb_.num_segments == 0) {
    return report;
  }
  const uint32_t bps = sb_.BlocksPerSegment();
  const uint32_t bs = BlockSize();
  std::vector<std::byte> image(sb_.segment_size);
  std::vector<bool> readable(bps, true);
  for (uint32_t step = 0; step < sb_.num_segments && report.segments_scanned < max_segments;
       ++step) {
    const uint32_t seg = next_scrub_segment_;
    next_scrub_segment_ = (next_scrub_segment_ + 1) % sb_.num_segments;
    // Only settled segments with on-disk state worth checking: clean ones
    // hold nothing, the active one is still being written, pending ones are
    // about to be reclaimed, quarantined ones are already known bad.
    if (usage_.Get(seg).state != SegState::kDirty) {
      continue;
    }
    ++report.segments_scanned;
    std::fill(readable.begin(), readable.end(), true);
    Status read = device_->ReadSectors(sb_.SegmentBlockSector(seg, 0), image);
    if (!read.ok()) {
      if (read.code() == ErrorCode::kCrashed) {
        return read;
      }
      // Per-block fallback: find out which blocks are actually lost.
      // Unreadable ones are zero-filled so every checksum over them fails.
      for (uint32_t b = 0; b < bps; ++b) {
        std::span<std::byte> slot = std::span<std::byte>(image).subspan(
            static_cast<size_t>(b) * bs, bs);
        Status block_read = device_->ReadSectors(sb_.SegmentBlockSector(seg, b), slot);
        if (!block_read.ok()) {
          if (block_read.code() == ErrorCode::kCrashed) {
            return block_read;
          }
          readable[b] = false;
          ++report.media_errors;
          std::memset(slot.data(), 0, slot.size());
        }
      }
    }
    bool quarantine = false;
    uint32_t offset = 0;
    while (offset + 1 < bps) {
      const std::span<const std::byte> summary_block =
          std::span<const std::byte>(image).subspan(static_cast<size_t>(offset) * bs, bs);
      Result<SummaryPeek> peek =
          readable[offset] ? PeekSummary(summary_block, bs)
                           : Result<SummaryPeek>(MediaError("unreadable summary block"));
      if (!peek.ok() || offset + 1 + peek->nblocks > bps) {
        // Not a (valid) summary. An unreadable block we cannot attribute to
        // any partial is treated as live damage whenever the segment holds
        // live data at all — conservative, but quarantine never loses data.
        if (!readable[offset] && usage_.Get(seg).live_bytes > 0) {
          quarantine = true;
        }
        ++offset;  // Probe: the chain may resume past damage.
        continue;
      }
      const std::span<const std::byte> content = std::span<const std::byte>(image).subspan(
          static_cast<size_t>(offset + 1) * bs, static_cast<size_t>(peek->nblocks) * bs);
      bool content_readable = true;
      for (uint32_t b = offset + 1; b < offset + 1 + peek->nblocks; ++b) {
        content_readable = content_readable && readable[b];
      }
      if (content_readable && DecodeSummary(summary_block, content).ok()) {
        ++report.partials_verified;
        report.blocks_verified += peek->nblocks;
        offset += 1 + peek->nblocks;
        continue;
      }
      // Damaged partial: fall back to per-entry checksums so the damage is
      // localized to specific blocks and only *live* losses quarantine.
      Result<SegmentSummary> summary = DecodeSummaryUnchecked(summary_block);
      if (!summary.ok()) {
        ++offset;
        continue;
      }
      for (size_t i = 0; i < summary->entries.size(); ++i) {
        const SummaryEntry& entry = summary->entries[i];
        const DiskAddr addr =
            sb_.SegmentBlockSector(seg, offset + 1 + static_cast<uint32_t>(i));
        const std::span<const std::byte> block = content.subspan(i * bs, bs);
        const bool block_ok =
            readable[offset + 1 + i] && Crc32(block) == entry.block_crc;
        if (block_ok) {
          ++report.blocks_verified;
          continue;
        }
        if (readable[offset + 1 + i]) {
          ++report.checksum_failures;
        }
        Result<bool> live = IsBlockLive(entry, addr);
        if (!live.ok() || *live) {  // Unknown liveness counts as live.
          quarantine = true;
        }
      }
      offset += 1 + peek->nblocks;
    }
    if (quarantine) {
      QuarantineSegment(seg);
      ++report.segments_quarantined;
      // Salvage what still verifies so readers stop depending on the
      // damaged medium, then relocate it through the normal write-back.
      // A read-only mount cannot write new homes, so it only reports.
      if (!read_only_) {
        LfsCleaner cleaner(this);
        ASSIGN_OR_RETURN(uint64_t staged, cleaner.SalvageSegment(seg, image));
        report.blocks_salvaged += staged;
        if (staged > 0) {
          obs::RecordSegLifecycle(obs::SegLifecycle::kSalvaged);
          RETURN_IF_ERROR(FlushEverything());
        }
      }
    }
  }
  if constexpr (obs::kMetricsEnabled) {
    static obs::Counter& scanned = obs::Registry().GetCounter("logfs.scrub.segments_scanned");
    static obs::Counter& verified = obs::Registry().GetCounter("logfs.scrub.blocks_verified");
    static obs::Counter& failures = obs::Registry().GetCounter("logfs.scrub.checksum_failures");
    static obs::Counter& media = obs::Registry().GetCounter("logfs.scrub.media_errors");
    static obs::Counter& quarantined =
        obs::Registry().GetCounter("logfs.scrub.segments_quarantined");
    static obs::Counter& salvaged = obs::Registry().GetCounter("logfs.scrub.blocks_salvaged");
    scanned.Increment(report.segments_scanned);
    verified.Increment(report.blocks_verified);
    failures.Increment(report.checksum_failures);
    media.Increment(report.media_errors);
    quarantined.Increment(report.segments_quarantined);
    salvaged.Increment(report.blocks_salvaged);
  }
  return report;
}

}  // namespace logfs
