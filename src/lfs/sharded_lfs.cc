// ShardedLfs implementation: the lock-striped router over N independent
// logs, plus the global (cross-shard) consistency checker. See the header
// for the architecture and locking protocol.
#include "src/lfs/sharded_lfs.h"

#include <algorithm>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/lfs/lfs_cleaner.h"
#include "src/obs/metrics.h"
#include "src/obs/space_observatory.h"
#include "src/obs/tracer.h"
#include "src/util/logging.h"

namespace logfs {
namespace {

void CountLockMicros(const char* name, double seconds) {
  if constexpr (obs::kMetricsEnabled) {
    if (seconds > 0.0) {
      obs::Registry().GetCounter(name).Increment(
          static_cast<uint64_t>(seconds * 1e6 + 0.5));
    }
  } else {
    (void)name;
    (void)seconds;
  }
}

}  // namespace

// --- shard-lock attribution ----------------------------------------------------

ShardedLfs::Locked::Locked(ShardedLfs* sfs, uint32_t shard)
    : sfs_(sfs), shard_(shard), lock_(sfs->shards_[shard]->mu, std::defer_lock) {
  if constexpr (!obs::kMetricsEnabled) {
    lock_.lock();
    return;
  }
  ctx_ = obs::CurrentTraceContext();
  const bool multi = sfs_->shards_.size() > 1;
  if (!multi && !ctx_.active()) {
    lock_.lock();  // Seed-identical fast path: nothing to attribute.
    return;
  }
  SimClock* clock = sfs_->clock_;
  const double wait_start = clock != nullptr ? clock->Now() : 0.0;
  const bool contended = !lock_.try_lock();
  if (contended) {
    lock_.lock();
  }
  held_start_ = clock != nullptr ? clock->Now() : wait_start;
  if (multi) {
    CountLockMicros("logfs.shard.lock.wait_us", held_start_ - wait_start);
  }
  if (ctx_.active()) {
    if (contended && held_start_ > wait_start) {
      obs::Tracer().RecordSpanIds("shard.lock_wait", "acquire", wait_start,
                                  held_start_, ctx_.trace_id, obs::Tracer().NextId(),
                                  ctx_.span_id, {},
                                  {{"shard", std::to_string(shard_)}});
    }
    held_span_ = obs::Tracer().NextId();
    scope_.emplace(obs::TraceContext{ctx_.trace_id, held_span_});
  }
}

ShardedLfs::Locked::~Locked() {
  if constexpr (obs::kMetricsEnabled) {
    if (held_span_ == 0 && sfs_->shards_.size() <= 1) {
      return;  // Fast path took no timestamps.
    }
    SimClock* clock = sfs_->clock_;
    const double end = clock != nullptr ? clock->Now() : held_start_;
    if (held_span_ != 0) {
      scope_.reset();  // Restore the caller's ambient context first.
      obs::Tracer().RecordSpanIds("shard.lock_held", "section", held_start_, end,
                                  ctx_.trace_id, held_span_, ctx_.span_id, {},
                                  {{"shard", std::to_string(shard_)}});
    }
    if (sfs_->shards_.size() > 1) {
      CountLockMicros("logfs.shard.lock.held_us", end - held_start_);
    }
  }
}

// --- format / mount ------------------------------------------------------------

Status ShardedLfs::Format(BlockDevice* device, const LfsParams& params,
                          uint32_t shard_count) {
  if (shard_count <= 1) {
    // Degenerate configuration: the seed single-log format, byte-identical.
    LfsParams p = params;
    p.shard_count = 0;
    p.shard_index = 0;
    return LfsFileSystem::Format(device, p);
  }
  if (shard_count > 64) {
    return InvalidArgumentError("shard_count must be <= 64");
  }
  // The cross-shard intent region (lfs_intent.h) is carved off the end of
  // the device, after the last shard slice; each slice's superblock locates
  // it via the INT1 extension so Mount rediscovers the layout from sector 0.
  if (device->sector_count() <= kIntentRegionSectors) {
    return InvalidArgumentError("device too small to shard");
  }
  const uint64_t slice = (device->sector_count() - kIntentRegionSectors) / shard_count;
  if (slice == 0) {
    return InvalidArgumentError("device too small to shard");
  }
  const uint64_t intent_start = slice * shard_count;
  for (uint32_t i = 0; i < shard_count; ++i) {
    LfsParams p = params;
    p.shard_count = shard_count;
    p.shard_index = i;
    p.intent_start_sector = intent_start;
    p.intent_sectors = static_cast<uint32_t>(kIntentRegionSectors);
    // Shard i owns the global inos with (ino - 1) % N == i; max_inodes
    // becomes the LOCAL slot count of that residue class.
    p.max_inodes =
        params.max_inodes > i ? (params.max_inodes - i - 1) / shard_count + 1 : 0;
    if (p.max_inodes < 16) {
      return InvalidArgumentError("max_inodes too small to split across shards");
    }
    WindowDisk window(device, static_cast<uint64_t>(i) * slice, slice);
    RETURN_IF_ERROR(LfsFileSystem::Format(&window, p));
  }
  // Zero the intent region: a leftover record from a previous incarnation
  // of the device must not decode as a pending intent.
  std::vector<std::byte> zeros(kIntentRegionSectors * kSectorSize);
  RETURN_IF_ERROR(device->WriteSectors(intent_start, zeros, IoOptions{.synchronous = true}));
  obs::RecordWrite(obs::IoSource::kIntent, zeros.size());
  return OkStatus();
}

Result<std::unique_ptr<ShardedLfs>> ShardedLfs::Mount(BlockDevice* device, SimClock* clock,
                                                      CpuModel* cpu, Options options) {
  std::vector<std::byte> first(4096);
  RETURN_IF_ERROR(device->ReadSectors(0, first));
  ASSIGN_OR_RETURN(LfsSuperblock sb0, DecodeLfsSuperblock(first));
  auto sfs = std::unique_ptr<ShardedLfs>(new ShardedLfs());
  sfs->clock_ = clock;
  if (!sb0.sharded()) {
    auto shard = std::make_unique<Shard>();
    ASSIGN_OR_RETURN(shard->fs, LfsFileSystem::Mount(device, clock, cpu, options));
    sfs->shards_.push_back(std::move(shard));
    return sfs;
  }
  const uint32_t n = sb0.shard_count;
  // With an intent region the slices stop where it starts; legacy sharded
  // images (no INT1 extension) tile the whole device.
  const uint64_t slice = sb0.has_intent_region() ? sb0.intent_start_sector / n
                                                 : device->sector_count() / n;
  for (uint32_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->window =
        std::make_unique<WindowDisk>(device, static_cast<uint64_t>(i) * slice, slice);
    ASSIGN_OR_RETURN(shard->fs,
                     LfsFileSystem::Mount(shard->window.get(), clock, cpu, options));
    const LfsSuperblock& sb = shard->fs->superblock();
    if (sb.shard_count != n || sb.shard_index != i) {
      return CorruptedError("shard " + std::to_string(i) +
                            " superblock disagrees with shard 0 about the layout");
    }
    sfs->shards_.push_back(std::move(shard));
  }
  if (sb0.has_intent_region()) {
    sfs->intent_dev_ = std::make_unique<ResilientDisk>(device, clock);
    sfs->intents_ = std::make_unique<IntentLog>(
        sfs->intent_dev_.get(), sb0.intent_start_sector, sb0.intent_sectors);
    RETURN_IF_ERROR(sfs->ReconcileIntents());
  }
  return sfs;
}

// Mount-time cross-shard reconciliation: every shard has already rolled
// forward individually; unretired intents are the only operations whose
// halves can disagree. Repair first, make the repair durable, THEN retire —
// retiring before the sync would leave damage with no intent if we crash
// in between.
Status ShardedLfs::ReconcileIntents() {
  ASSIGN_OR_RETURN(std::vector<LoadedIntent> all, intents_->LoadAll());
  std::vector<LoadedIntent> pending_slots;
  for (LoadedIntent& li : all) {
    if (li.state == IntentState::kPending) {
      pending_slots.push_back(std::move(li));
    }
  }
  if (pending_slots.empty()) {
    return OkStatus();
  }
  std::sort(pending_slots.begin(), pending_slots.end(),
            [](const LoadedIntent& a, const LoadedIntent& b) {
              return a.record.op_id < b.record.op_id;
            });
  std::vector<IntentRecord> pending;
  pending.reserve(pending_slots.size());
  for (const LoadedIntent& li : pending_slots) {
    pending.push_back(li.record);
  }
  std::vector<LfsFileSystem*> raw;
  raw.reserve(shards_.size());
  for (auto& shard : shards_) {
    raw.push_back(shard->fs.get());
  }
  // Everything the repair and its durability sync write is repair-class
  // traffic: the work exists only because halves of an op disagreed.
  for (LfsFileSystem* fs : raw) {
    fs->set_repair_context(true);
  }
  Result<RepairReport> repaired = RepairShardedNamespace(raw, pending);
  Status synced = OkStatus();
  if (repaired.ok()) {
    for (auto& shard : shards_) {
      synced = shard->fs->Sync();
      if (!synced.ok()) {
        break;
      }
    }
  }
  for (LfsFileSystem* fs : raw) {
    fs->set_repair_context(false);
  }
  RETURN_IF_ERROR(repaired.status());
  RETURN_IF_ERROR(synced);
  RepairReport rep = std::move(*repaired);
  for (const LoadedIntent& li : pending_slots) {
    Status retired = intents_->RetireSlot(li.slot, li.record);
    if (!retired.ok() && retired.code() == ErrorCode::kCrashed) {
      return retired;
    }
    // A media error on the retire leaves the slot pending: the next mount
    // re-reconciles it, which is a no-op on the now-repaired image.
  }
  if constexpr (obs::kMetricsEnabled) {
    obs::Registry()
        .GetCounter("logfs.intent.reconciled")
        .Increment(pending_slots.size());
  }
  reconcile_report_ = std::move(rep);
  return OkStatus();
}

Status ShardedLfs::RetireDurableIntents() {
  if (intents_ == nullptr) {
    return OkStatus();
  }
  std::vector<uint64_t> synced(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard<std::mutex> lock(shards_[i]->mu);
    synced[i] = shards_[i]->fs->synced_seq();
  }
  return intents_->RetireCovered(synced);
}

Status ShardedLfs::DrainIntents() {
  if constexpr (obs::kMetricsEnabled) {
    obs::Registry().GetCounter("logfs.intent.ring_full_drains").Increment();
  }
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    RETURN_IF_ERROR(shard->fs->Sync());
  }
  return RetireDurableIntents();
}

// --- locking helpers -----------------------------------------------------------

uint32_t ShardedLfs::PlaceShard(InodeNum dir, std::string_view name,
                                FileType type) const {
  if (type != FileType::kDirectory) {
    // Files live on their parent directory's log: the create is
    // single-shard, and a client confined to its own directory never
    // waits out another shard's segment flush.
    return ShardOf(dir);
  }
  uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis.
  auto mix = [&h](uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;  // FNV prime.
  };
  for (char c : name) {
    mix(static_cast<uint8_t>(c));
  }
  for (int i = 0; i < 8; ++i) {
    mix(static_cast<uint8_t>(dir >> (8 * i)));
  }
  return static_cast<uint32_t>(h % shards_.size());
}

std::vector<std::unique_lock<std::mutex>> ShardedLfs::LockSet(std::vector<uint32_t> want) {
  std::sort(want.begin(), want.end());
  want.erase(std::unique(want.begin(), want.end()), want.end());
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(want.size());
  // Cross-shard acquisition is attributed as one wait covering the whole
  // ascending sweep: per-shard held spans would misstate the section (the
  // operation holds the set jointly, not each shard serially).
  const double start = clock_ != nullptr ? clock_->Now() : 0.0;
  bool contended = false;
  for (uint32_t i : want) {
    std::unique_lock<std::mutex> l(shards_[i]->mu, std::try_to_lock);
    if (!l.owns_lock()) {
      contended = true;
      l.lock();
    }
    locks.push_back(std::move(l));
  }
  if constexpr (obs::kMetricsEnabled) {
    const double end = clock_ != nullptr ? clock_->Now() : start;
    if (shards_.size() > 1) {
      CountLockMicros("logfs.shard.lock.wait_us", end - start);
    }
    const obs::TraceContext ctx = obs::CurrentTraceContext();
    if (ctx.active() && contended && end > start) {
      std::string which;
      for (uint32_t i : want) {
        which += (which.empty() ? "" : ",") + std::to_string(i);
      }
      obs::Tracer().RecordSpanIds("shard.lock_wait", "acquire_set", start, end,
                                  ctx.trace_id, obs::Tracer().NextId(), ctx.span_id,
                                  {}, {{"shards", std::move(which)}});
    }
  }
  return locks;
}

Result<bool> ShardedLfs::IsInSubtreeGlobal(InodeNum candidate, InodeNum ancestor) {
  InodeNum cur = candidate;
  for (uint32_t depth = 0; depth < 1u << 16; ++depth) {
    if (cur == ancestor) {
      return true;
    }
    if (cur == kRootIno) {
      return false;
    }
    const uint32_t s = ShardOf(cur);
    Locked lock(this, s);
    ASSIGN_OR_RETURN(DirEntry up, fs(s)->ShardFindEntry(cur, ".."));
    cur = up.ino;
  }
  return CorruptedError("'..' chain does not terminate at the root");
}

// --- namespace operations ------------------------------------------------------

Result<InodeNum> ShardedLfs::Create(InodeNum dir, std::string_view name, FileType type) {
  const uint32_t ds = ShardOf(dir);
  const uint32_t cs = shards_.size() == 1 ? ds : PlaceShard(dir, name, type);
  if (cs == ds) {
    Locked lock(this, ds);
    return fs(ds)->Create(dir, name, type);
  }
  auto attempt = [&]() -> Result<InodeNum> {
    auto locks = LockSet({ds, cs});
    RETURN_IF_ERROR(fs(ds)->ShardCheckCanInsert(dir, name));
    uint32_t slot = 0;
    if (intents_ != nullptr) {
      // The intent must name the child ino, and must be durable before ANY
      // shard mutation — ShardAllocInode can pressure-flush, so the ino is
      // peeked (deterministic under the held shard lock) and the intent
      // published first. A kBusy (full ring) or media error (region
      // unwritable) aborts with nothing mutated.
      ASSIGN_OR_RETURN(InodeNum peek, fs(cs)->ShardPeekAllocInode());
      IntentRecord rec;
      rec.kind = IntentKind::kCreate;
      rec.from_dir = dir;
      rec.child = peek;
      rec.child_type = type;
      rec.from_name = std::string(name);
      ASSIGN_OR_RETURN(slot, intents_->Publish(&rec));
    }
    ASSIGN_OR_RETURN(InodeNum ino, fs(cs)->ShardAllocInode(type, dir));
    Status inserted =
        fs(ds)->ShardAddEntry(dir, name, ino, type, type == FileType::kDirectory);
    if (!inserted.ok()) {
      fs(cs)->ShardAbortAlloc(ino);
      // The intent stays pending (never applied): if the abort's durable
      // state ends up half-applied, the next mount reconciles it.
      return inserted;
    }
    if (intents_ != nullptr) {
      intents_->MarkApplied(slot, {{ds, fs(ds)->mutation_seq()},
                                   {cs, fs(cs)->mutation_seq()}});
    }
    return ino;
  };
  for (int tries = 0;; ++tries) {
    Result<InodeNum> r = attempt();
    if (!r.ok() && r.status().code() == ErrorCode::kBusy && tries < 2) {
      RETURN_IF_ERROR(DrainIntents());  // Ring full: sync, retire, retry.
      continue;
    }
    return r;
  }
}

Result<InodeNum> ShardedLfs::Lookup(InodeNum dir, std::string_view name) {
  const uint32_t s = ShardOf(dir);
  Locked lock(this, s);
  return fs(s)->Lookup(dir, name);
}

Status ShardedLfs::Unlink(InodeNum dir, std::string_view name) {
  const uint32_t ds = ShardOf(dir);
  if (shards_.size() == 1) {
    // Degenerate fast path: skip the discovery probe — the native op does
    // its own entry lookup, so probing here would double the CPU charge
    // and break shards=1 timing identity with the seed.
    Locked lock(this, ds);
    return fs(ds)->Unlink(dir, name);
  }
  int drains = 0;
  for (;;) {
    std::unique_lock<std::mutex> dl(shards_[ds]->mu);
    Result<DirEntry> found = fs(ds)->ShardFindEntry(dir, name);
    if (!found.ok()) {
      return found.status();
    }
    const uint32_t cs = ShardOf(found->ino);
    if (cs == ds) {
      return fs(ds)->Unlink(dir, name);
    }
    std::unique_lock<std::mutex> cl;
    if (cs > ds) {
      cl = std::unique_lock<std::mutex>(shards_[cs]->mu);
    } else {
      // Lock-order inversion: release, relock ascending, revalidate.
      dl.unlock();
      cl = std::unique_lock<std::mutex>(shards_[cs]->mu);
      dl.lock();
      Result<DirEntry> again = fs(ds)->ShardFindEntry(dir, name);
      if (!again.ok() || again->ino != found->ino || again->type != found->type) {
        continue;
      }
    }
    if (found->type == FileType::kDirectory) {
      return IsDirectoryError("unlink of a directory; use Rmdir");
    }
    uint32_t slot = 0;
    if (intents_ != nullptr) {
      IntentRecord rec;
      rec.kind = IntentKind::kUnlink;
      rec.from_dir = dir;
      rec.child = found->ino;
      rec.child_type = found->type;
      rec.from_name = std::string(name);
      Result<uint32_t> published = intents_->Publish(&rec);
      if (!published.ok()) {
        if (published.status().code() == ErrorCode::kBusy && drains++ < 2) {
          dl.unlock();
          if (cl.owns_lock()) {
            cl.unlock();
          }
          RETURN_IF_ERROR(DrainIntents());
          continue;
        }
        return published.status();  // Nothing was mutated.
      }
      slot = published.value();
    }
    RETURN_IF_ERROR(fs(ds)->ShardRemoveEntry(dir, name, /*child_was_dir=*/false));
    RETURN_IF_ERROR(fs(cs)->ShardDropLink(found->ino));
    if (intents_ != nullptr) {
      intents_->MarkApplied(slot, {{ds, fs(ds)->mutation_seq()},
                                   {cs, fs(cs)->mutation_seq()}});
    }
    return OkStatus();
  }
}

Status ShardedLfs::Rmdir(InodeNum dir, std::string_view name) {
  if (name == "." || name == "..") {
    return InvalidArgumentError("cannot remove . or ..");
  }
  const uint32_t ds = ShardOf(dir);
  if (shards_.size() == 1) {
    // Degenerate fast path: see Unlink.
    Locked lock(this, ds);
    return fs(ds)->Rmdir(dir, name);
  }
  int drains = 0;
  for (;;) {
    std::unique_lock<std::mutex> dl(shards_[ds]->mu);
    Result<DirEntry> found = fs(ds)->ShardFindEntry(dir, name);
    if (!found.ok()) {
      return found.status();
    }
    const uint32_t cs = ShardOf(found->ino);
    if (cs == ds) {
      return fs(ds)->Rmdir(dir, name);
    }
    std::unique_lock<std::mutex> cl;
    if (cs > ds) {
      cl = std::unique_lock<std::mutex>(shards_[cs]->mu);
    } else {
      dl.unlock();
      cl = std::unique_lock<std::mutex>(shards_[cs]->mu);
      dl.lock();
      Result<DirEntry> again = fs(ds)->ShardFindEntry(dir, name);
      if (!again.ok() || again->ino != found->ino || again->type != found->type) {
        continue;
      }
    }
    if (found->type != FileType::kDirectory) {
      return NotDirectoryError(name);
    }
    ASSIGN_OR_RETURN(bool empty, fs(cs)->ShardDirIsEmpty(found->ino));
    if (!empty) {
      return NotEmptyError(name);
    }
    uint32_t slot = 0;
    if (intents_ != nullptr) {
      IntentRecord rec;
      rec.kind = IntentKind::kRmdir;
      rec.from_dir = dir;
      rec.child = found->ino;
      rec.child_type = found->type;
      rec.from_name = std::string(name);
      Result<uint32_t> published = intents_->Publish(&rec);
      if (!published.ok()) {
        if (published.status().code() == ErrorCode::kBusy && drains++ < 2) {
          dl.unlock();
          if (cl.owns_lock()) {
            cl.unlock();
          }
          RETURN_IF_ERROR(DrainIntents());
          continue;
        }
        return published.status();  // Nothing was mutated.
      }
      slot = published.value();
    }
    RETURN_IF_ERROR(fs(ds)->ShardRemoveEntry(dir, name, /*child_was_dir=*/true));
    RETURN_IF_ERROR(fs(cs)->ShardReleaseDir(found->ino));
    if (intents_ != nullptr) {
      intents_->MarkApplied(slot, {{ds, fs(ds)->mutation_seq()},
                                   {cs, fs(cs)->mutation_seq()}});
    }
    return OkStatus();
  }
}

Status ShardedLfs::Link(InodeNum dir, std::string_view name, InodeNum target) {
  const uint32_t ds = ShardOf(dir);
  const uint32_t ts = ShardOf(target);
  if (ts == ds) {
    Locked lock(this, ds);
    return fs(ds)->Link(dir, name, target);
  }
  auto attempt = [&]() -> Status {
    auto locks = LockSet({ds, ts});
    RETURN_IF_ERROR(fs(ds)->ShardCheckCanInsert(dir, name));
    ASSIGN_OR_RETURN(FileStat st, fs(ts)->Stat(target));
    if (st.type == FileType::kDirectory) {
      return IsDirectoryError("cannot hard-link a directory");
    }
    uint32_t slot = 0;
    if (intents_ != nullptr) {
      IntentRecord rec;
      rec.kind = IntentKind::kLink;
      rec.from_dir = dir;
      rec.child = target;
      rec.child_type = st.type;
      rec.from_name = std::string(name);
      ASSIGN_OR_RETURN(slot, intents_->Publish(&rec));
    }
    RETURN_IF_ERROR(
        fs(ds)->ShardAddEntry(dir, name, target, st.type, /*child_is_dir=*/false));
    RETURN_IF_ERROR(fs(ts)->ShardAddLink(target));
    if (intents_ != nullptr) {
      intents_->MarkApplied(slot, {{ds, fs(ds)->mutation_seq()},
                                   {ts, fs(ts)->mutation_seq()}});
    }
    return OkStatus();
  };
  for (int tries = 0;; ++tries) {
    Status s = attempt();
    if (s.code() == ErrorCode::kBusy && tries < 2) {
      RETURN_IF_ERROR(DrainIntents());
      continue;
    }
    return s;
  }
}

Status ShardedLfs::Rename(InodeNum from_dir, std::string_view from_name, InodeNum to_dir,
                          std::string_view to_name) {
  if (shards_.size() == 1) {
    Locked lock(this, 0);
    return fs(0)->Rename(from_dir, from_name, to_dir, to_name);
  }
  if (from_name == "." || from_name == ".." || to_name == "." || to_name == "..") {
    return InvalidArgumentError("cannot rename . or ..");
  }
  // rename_mu_ serializes every N>1 rename: only renames reparent
  // directories, so the cross-shard cycle walk below sees a stable
  // topology, and the apply phase cannot race another rename's.
  std::lock_guard<std::mutex> rename_guard(rename_mu_);
  const uint32_t fi = ShardOf(from_dir);
  const uint32_t ti = ShardOf(to_dir);
  int drains = 0;
  for (int attempt = 0; attempt < 64; ++attempt) {
    bool need_drain = false;
    DirEntry src;
    {
      std::lock_guard<std::mutex> lock(shards_[fi]->mu);
      ASSIGN_OR_RETURN(src, fs(fi)->ShardFindEntry(from_dir, from_name));
    }
    if (from_dir == to_dir && from_name == to_name) {
      return OkStatus();
    }
    const bool src_is_dir = src.type == FileType::kDirectory;
    if (src_is_dir) {
      ASSIGN_OR_RETURN(bool cyclic, IsInSubtreeGlobal(to_dir, src.ino));
      if (cyclic) {
        return InvalidArgumentError("rename would create a cycle");
      }
    }
    std::vector<uint32_t> want = {fi, ti, ShardOf(src.ino)};
    bool restart = false;
    while (!restart) {
      auto locks = LockSet(want);
      // Revalidate: src may have been unlinked/replaced between the
      // discovery read and taking the full lock set.
      Result<DirEntry> src2 = fs(fi)->ShardFindEntry(from_dir, from_name);
      if (!src2.ok() || src2->ino != src.ino || src2->type != src.type) {
        restart = true;
        break;
      }
      Result<DirEntry> dst = fs(ti)->ShardFindEntry(to_dir, to_name);
      if (!dst.ok() && dst.status().code() != ErrorCode::kNotFound) {
        return dst.status();
      }
      if (dst.ok()) {
        const uint32_t di = ShardOf(dst->ino);
        if (std::find(want.begin(), want.end(), di) == want.end()) {
          want.push_back(di);  // Re-lock with the victim's shard included.
          continue;
        }
      }
      LfsFileSystem* from_fs = fs(fi);
      LfsFileSystem* to_fs = fs(ti);
      // Validate everything BEFORE publishing the intent: a published
      // intent means "this op may have started"; a validation failure must
      // leave no trace.
      if (dst.ok()) {
        LfsFileSystem* dst_fs = fs(ShardOf(dst->ino));
        if (dst->type == FileType::kDirectory) {
          if (!src_is_dir) {
            return IsDirectoryError("cannot replace a directory with a file");
          }
          ASSIGN_OR_RETURN(bool empty, dst_fs->ShardDirIsEmpty(dst->ino));
          if (!empty) {
            return NotEmptyError(to_name);
          }
        } else if (src_is_dir) {
          return NotDirectoryError("cannot replace a file with a directory");
        }
      }
      uint32_t slot = 0;
      if (intents_ != nullptr) {
        IntentRecord rec;
        rec.kind = IntentKind::kRename;
        rec.from_dir = from_dir;
        rec.to_dir = to_dir;
        rec.child = src.ino;
        rec.child_type = src.type;
        rec.from_name = std::string(from_name);
        rec.to_name = std::string(to_name);
        if (dst.ok()) {
          rec.victim = dst->ino;
          rec.victim_type = dst->type;
        }
        Result<uint32_t> published = intents_->Publish(&rec);
        if (!published.ok()) {
          if (published.status().code() == ErrorCode::kBusy && drains++ < 2) {
            need_drain = true;  // Drop the lock set, drain, retry the op.
            restart = true;
            break;
          }
          return published.status();  // Nothing was mutated.
        }
        slot = published.value();
      }
      if (dst.ok()) {
        LfsFileSystem* dst_fs = fs(ShardOf(dst->ino));
        if (dst->type == FileType::kDirectory) {
          // Same-directory: the old child's ".." leaves and src was already
          // a child here, so the count drops by one. Cross-directory: one
          // child directory swaps for another — no change.
          RETURN_IF_ERROR(to_fs->ShardReplaceEntry(to_dir, to_name, src.ino, src.type,
                                                   from_dir == to_dir ? -1 : 0));
          RETURN_IF_ERROR(dst_fs->ShardReleaseDir(dst->ino));
        } else {
          RETURN_IF_ERROR(to_fs->ShardReplaceEntry(to_dir, to_name, src.ino, src.type, 0));
          RETURN_IF_ERROR(dst_fs->ShardDropLink(dst->ino));
        }
      } else {
        RETURN_IF_ERROR(to_fs->ShardAddEntry(to_dir, to_name, src.ino, src.type,
                                             src_is_dir && from_dir != to_dir));
      }
      RETURN_IF_ERROR(from_fs->ShardRemoveEntry(from_dir, from_name,
                                                src_is_dir && from_dir != to_dir));
      if (src_is_dir && from_dir != to_dir) {
        RETURN_IF_ERROR(fs(ShardOf(src.ino))->ShardSetDotDot(src.ino, to_dir));
      }
      if (intents_ != nullptr) {
        std::vector<std::pair<uint32_t, uint64_t>> covers = {
            {fi, fs(fi)->mutation_seq()},
            {ti, fs(ti)->mutation_seq()},
            {ShardOf(src.ino), fs(ShardOf(src.ino))->mutation_seq()}};
        if (dst.ok()) {
          covers.emplace_back(ShardOf(dst->ino), fs(ShardOf(dst->ino))->mutation_seq());
        }
        intents_->MarkApplied(slot, std::move(covers));
      }
      return OkStatus();
    }
    if (need_drain) {
      RETURN_IF_ERROR(DrainIntents());
    }
  }
  return BusyError("rename retry budget exhausted");
}

// --- data / single-inode operations --------------------------------------------

Result<uint64_t> ShardedLfs::Read(InodeNum ino, uint64_t offset, std::span<std::byte> out) {
  const uint32_t s = ShardOf(ino);
  Locked lock(this, s);
  return fs(s)->Read(ino, offset, out);
}

Result<uint64_t> ShardedLfs::Write(InodeNum ino, uint64_t offset,
                                   std::span<const std::byte> data) {
  const uint32_t s = ShardOf(ino);
  Locked lock(this, s);
  return fs(s)->Write(ino, offset, data);
}

Status ShardedLfs::Truncate(InodeNum ino, uint64_t new_size) {
  const uint32_t s = ShardOf(ino);
  Locked lock(this, s);
  return fs(s)->Truncate(ino, new_size);
}

Result<FileStat> ShardedLfs::Stat(InodeNum ino) {
  const uint32_t s = ShardOf(ino);
  Locked lock(this, s);
  return fs(s)->Stat(ino);
}

Result<std::vector<DirEntry>> ShardedLfs::ReadDir(InodeNum dir) {
  const uint32_t s = ShardOf(dir);
  Locked lock(this, s);
  return fs(s)->ReadDir(dir);
}

Status ShardedLfs::Fsync(InodeNum ino) {
  const uint32_t s = ShardOf(ino);
  Locked lock(this, s);
  return fs(s)->Fsync(ino);
}

// --- fan-out operations --------------------------------------------------------

Status ShardedLfs::Sync() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    RETURN_IF_ERROR(shard->fs->Sync());
  }
  return RetireDurableIntents();
}

Status ShardedLfs::Checkpoint() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    RETURN_IF_ERROR(shard->fs->Checkpoint());
  }
  return RetireDurableIntents();
}

Status ShardedLfs::DropCaches() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    RETURN_IF_ERROR(shard->fs->DropCaches());
  }
  return OkStatus();
}

Status ShardedLfs::Tick() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    RETURN_IF_ERROR(shard->fs->Tick());
  }
  // Interval checkpoints may have advanced durable horizons.
  RETURN_IF_ERROR(RetireDurableIntents());
  PublishShardMetrics();
  return OkStatus();
}

Result<uint32_t> ShardedLfs::CleanNow(uint32_t max_victims) {
  uint32_t total = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    ASSIGN_OR_RETURN(uint32_t cleaned, shard->fs->CleanNow(max_victims));
    total += cleaned;
  }
  return total;
}

Result<LfsFileSystem::ScrubReport> ShardedLfs::Scrub(uint32_t max_segments) {
  LfsFileSystem::ScrubReport total;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    ASSIGN_OR_RETURN(LfsFileSystem::ScrubReport r, shard->fs->Scrub(max_segments));
    total.segments_scanned += r.segments_scanned;
    total.partials_verified += r.partials_verified;
    total.blocks_verified += r.blocks_verified;
    total.checksum_failures += r.checksum_failures;
    total.media_errors += r.media_errors;
    total.segments_quarantined += r.segments_quarantined;
    total.blocks_salvaged += r.blocks_salvaged;
  }
  return total;
}

void ShardedLfs::PublishShardMetrics() {
  if (shards_.size() <= 1) {
    // Degenerate configuration: the single shard's own logfs.* metrics
    // already cover it, and adding logfs.shard.0.* gauges would leak into
    // the flight-recorder black box — breaking byte-identity with the
    // seed single-log image.
    return;
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    // The shard lock serializes these reads against mutating ops — Tick
    // and the other callers invoke this with no shard lock held.
    std::lock_guard<std::mutex> lock(shards_[i]->mu);
    LfsFileSystem* f = shards_[i]->fs.get();
    const std::string prefix = "logfs.shard." + std::to_string(i) + ".";
    auto& registry = obs::Registry();
    registry.GetGauge(prefix + "clean_segments").Set(f->CleanSegmentCount());
    registry.GetGauge(prefix + "quarantined_segments").Set(f->QuarantinedSegmentCount());
    registry.GetGauge(prefix + "live_bytes")
        .Set(static_cast<double>(f->TotalLiveBytes()));
    registry.GetGauge(prefix + "checkpoints")
        .Set(static_cast<double>(f->checkpoint_count()));
    const LfsFileSystem::CleanerStats& cs = f->cleaner_stats();
    registry.GetGauge(prefix + "cleaner_passes").Set(static_cast<double>(cs.passes));
    registry.GetGauge(prefix + "segments_cleaned")
        .Set(static_cast<double>(cs.segments_cleaned));
    // The paper's write-cost figure of merit at this shard's current
    // overall utilization.
    const LfsSuperblock& sb = f->superblock();
    const double capacity =
        static_cast<double>(sb.num_segments) * static_cast<double>(sb.segment_size);
    const double u =
        capacity > 0.0 ? static_cast<double>(f->TotalLiveBytes()) / capacity : 0.0;
    registry.GetGauge(prefix + "write_cost").Set(PaperWriteCost(u));
  }
  // Each shard's Tick republished logfs.seg.util.* with only its own
  // segments (last writer wins); overwrite with the merged distribution so
  // the global gauges describe the whole volume.
  std::vector<double> utils;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->fs->CollectSegmentUtilization(&utils);
  }
  obs::PublishUtilization(utils);
}

// --- global checker ------------------------------------------------------------
namespace {

// The check body: per-shard structural invariants plus the global
// namespace walk, all through DIRECT shard access (sfs->shard(i) — never
// the router's locking front-end, since CheckShardedLfs already holds
// every shard lock). Works for any shard count >= 1.
Result<LfsCheckReport> RunShardedCheck(ShardedLfs* sfs, bool verify_data) {
  LfsCheckReport report;
  auto complain = [&report](std::string msg) {
    report.problems.push_back(std::move(msg));
  };

  // Per-shard structural invariants (shard mode skips the namespace checks
  // rerun globally below). Content readability and media CRCs are verified
  // here, so the global walk does not re-read file bytes.
  for (uint32_t i = 0; i < sfs->shard_count(); ++i) {
    LfsChecker checker(sfs->shard(i), /*check_namespace=*/false);
    ASSIGN_OR_RETURN(LfsCheckReport sub, checker.Check(verify_data));
    for (std::string& p : sub.problems) {
      complain("shard " + std::to_string(i) + ": " + std::move(p));
    }
    report.total_bytes += sub.total_bytes;
    report.blocks_checksum_verified += sub.blocks_checksum_verified;
    report.checksum_failures += sub.checksum_failures;
    report.quarantined_segments += sub.quarantined_segments;
    report.read_only = report.read_only || sub.read_only;
    for (auto& f : sub.segment_checksum_failures) {
      report.segment_checksum_failures.push_back(f);  // Shard-local segment ids.
    }
  }

  // Global namespace walk: rooted acyclic reachability, dot entries, nlink
  // exactness, orphan detection — the checks each shard cannot do alone
  // because dirents cross shard boundaries.
  auto home = [&](InodeNum ino) { return sfs->shard(sfs->ShardOf(ino)); };
  auto imap_of = [&](InodeNum ino) -> const InodeMap& { return home(ino)->imap(); };
  std::unordered_map<InodeNum, uint32_t> name_refs;
  std::unordered_map<InodeNum, uint32_t> child_dirs;
  std::unordered_map<InodeNum, InodeNum> parent_of;
  std::unordered_set<InodeNum> visited;
  std::deque<InodeNum> queue;
  queue.push_back(kRootIno);
  visited.insert(kRootIno);
  parent_of[kRootIno] = kRootIno;
  while (!queue.empty()) {
    const InodeNum dir = queue.front();
    queue.pop_front();
    ++report.directories;
    Result<std::vector<DirEntry>> entries = home(dir)->ReadDir(dir);
    if (!entries.ok()) {
      complain("dir " + std::to_string(dir) + " unreadable: " +
               entries.status().ToString());
      continue;
    }
    bool saw_dot = false;
    bool saw_dotdot = false;
    for (const DirEntry& entry : entries.value()) {
      const InodeMap& imap = imap_of(entry.ino);
      if (!imap.IsValid(entry.ino) || !imap.Get(entry.ino).allocated) {
        complain("dir " + std::to_string(dir) + " entry '" + entry.name +
                 "' dangles: ino " + std::to_string(entry.ino) +
                 " not allocated on shard " + std::to_string(sfs->ShardOf(entry.ino)));
        continue;
      }
      if (entry.name == ".") {
        saw_dot = true;
        if (entry.ino != dir) {
          complain("dir " + std::to_string(dir) + " has wrong '.'");
        }
        continue;
      }
      if (entry.name == "..") {
        saw_dotdot = true;
        if (entry.ino != parent_of[dir]) {
          complain("dir " + std::to_string(dir) + " has wrong '..'");
        }
        continue;
      }
      ++name_refs[entry.ino];
      Result<FileStat> stat = home(entry.ino)->Stat(entry.ino);
      if (!stat.ok()) {
        complain("stat of ino " + std::to_string(entry.ino) + " failed");
        continue;
      }
      if (stat->type != entry.type) {
        complain("dir " + std::to_string(dir) + " entry '" + entry.name +
                 "' type disagrees with the inode");
      }
      if (stat->type == FileType::kDirectory) {
        ++child_dirs[dir];
        if (!visited.insert(entry.ino).second) {
          complain("directory ino " + std::to_string(entry.ino) + " linked twice");
          continue;
        }
        parent_of[entry.ino] = dir;
        queue.push_back(entry.ino);
      } else {
        ++report.files;
        visited.insert(entry.ino);
      }
    }
    if (!saw_dot || !saw_dotdot) {
      complain("dir " + std::to_string(dir) + " missing . or ..");
    }
  }
  // nlink exactness and orphan detection across every shard's inode map.
  for (uint32_t i = 0; i < sfs->shard_count(); ++i) {
    const InodeMap& imap = sfs->shard(i)->imap();
    for (uint32_t slot = 0; slot < imap.max_inodes(); ++slot) {
      if (!imap.GetSlot(slot).allocated) {
        continue;
      }
      const InodeNum ino = imap.InoAtSlot(slot);
      if (!visited.contains(ino)) {
        complain("allocated ino " + std::to_string(ino) + " (shard " + std::to_string(i) +
                 ") unreachable from root");
        continue;
      }
      Result<FileStat> stat = sfs->shard(i)->Stat(ino);
      if (!stat.ok()) {
        continue;  // Already complained during the walk.
      }
      const uint32_t expected = stat->type == FileType::kDirectory
                                    ? 2 + child_dirs[ino]
                                    : name_refs[ino];
      if (stat->nlink != expected) {
        complain("ino " + std::to_string(ino) + " nlink " + std::to_string(stat->nlink) +
                 " != expected " + std::to_string(expected));
      }
    }
  }
  return report;
}

}  // namespace

Result<LfsCheckReport> CheckShardedLfs(ShardedLfs* sfs, bool verify_data,
                                       RepairMode repair) {
  if (sfs->shard_count() == 1 && repair == RepairMode::kCheckOnly) {
    // Degenerate configuration: the unsliced single-log checker, exactly as
    // before sharding existed.
    return LfsChecker(sfs->shard(0)).Check(verify_data);
  }
  // Self-serialize against live traffic: the rename lock keeps the
  // directory topology stable and the shard locks quiesce every log, so
  // the check (and the repairer) may run online.
  std::lock_guard<std::mutex> rename_guard(sfs->rename_mu_);
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(sfs->shards_.size());
  for (auto& shard : sfs->shards_) {
    locks.emplace_back(shard->mu);
  }
  ASSIGN_OR_RETURN(LfsCheckReport report, RunShardedCheck(sfs, verify_data));
  if (repair == RepairMode::kCheckOnly || report.ok()) {
    return report;
  }
  // Online repair: fix the namespace in place (no intent work list — this
  // path exists precisely for images without a usable intent log), make
  // the repair durable, and report the re-checked state.
  std::vector<LfsFileSystem*> raw;
  raw.reserve(sfs->shards_.size());
  for (auto& shard : sfs->shards_) {
    raw.push_back(shard->fs.get());
  }
  // Repair-class attribution for the in-place fixes and their durability
  // sync (same bracketing as mount-time reconciliation).
  for (LfsFileSystem* fs : raw) {
    fs->set_repair_context(true);
  }
  Result<RepairReport> repaired = RepairShardedNamespace(raw, {});
  Status synced = OkStatus();
  if (repaired.ok()) {
    for (auto& shard : sfs->shards_) {
      synced = shard->fs->Sync();
      if (!synced.ok()) {
        break;
      }
    }
  }
  for (LfsFileSystem* fs : raw) {
    fs->set_repair_context(false);
  }
  RETURN_IF_ERROR(repaired.status());
  RETURN_IF_ERROR(synced);
  RepairReport rep = std::move(*repaired);
  ASSIGN_OR_RETURN(LfsCheckReport after, RunShardedCheck(sfs, verify_data));
  after.repairs_applied = rep.total_edits();
  after.repair_actions = std::move(rep.actions);
  return after;
}

}  // namespace logfs
