// LfsFileSystem: the log-structured storage manager (paper Section 4).
//
// All modifications — file data, directories, inodes, the inode map and the
// segment usage array — are accumulated in memory and written to disk in
// large sequential partial-segment transfers. Nothing is ever updated in
// place. Namespace operations (create, unlink, rename) perform *no*
// synchronous disk I/O; durability comes from write-behind flushes,
// fsync-triggered partial segments, periodic checkpoints, and roll-forward
// recovery over the segment summaries.
//
// Major in-memory state:
//   * BufferCache          — dirty file/directory/indirect blocks
//   * in-core inode table  — all touched inodes, with dirty flags
//   * InodeMap             — ino -> (inode block address, slot), version, atime
//   * SegmentUsageTable    — per-segment live bytes and lifecycle state
//   * SegmentBuilder       — the partial segment being assembled
//
// See lfs_cleaner.h for the segment cleaner and lfs_check.h for the offline
// consistency checker.
#ifndef LOGFS_SRC_LFS_LFS_FILE_SYSTEM_H_
#define LOGFS_SRC_LFS_LFS_FILE_SYSTEM_H_

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/cache/buffer_cache.h"
#include "src/disk/block_device.h"
#include "src/fsbase/file_system.h"
#include "src/fsbase/inode.h"
#include "src/lfs/lfs_blocks.h"
#include "src/lfs/lfs_format.h"
#include "src/lfs/lfs_inode_map.h"
#include "src/lfs/lfs_seg_usage.h"
#include "src/lfs/lfs_segment.h"
#include "src/obs/sampler.h"
#include "src/sim/cpu_model.h"
#include "src/sim/sim_clock.h"

namespace logfs {

class LfsCleaner;

class LfsFileSystem : public FileSystem, private WritebackHandler {
 public:
  struct Options {
    Options() { cache_policy.capacity_blocks = 3840; }  // 15 MB of 4 KB blocks.
    CachePolicy cache_policy;
    // Replay the log past the last checkpoint at mount (the paper's "roll
    // forward" recovery). With false, mount restores exactly the last
    // checkpoint (the paper's "zero recovery time" variant).
    bool roll_forward = true;
    // Run the cleaner automatically from Tick() when clean segments drop
    // below the start threshold.
    bool auto_clean = true;
    // Victim-selection policy (greedy = paper; fifo = ablation baseline).
    SegmentUsageTable::VictimPolicy cleaner_policy =
        SegmentUsageTable::VictimPolicy::kGreedy;
    // Sequential read-ahead: on a read miss, fetch up to this many further
    // blocks in the same transfer when they are contiguous on disk (which
    // LFS's log layout makes common). 0 disables.
    uint32_t read_ahead_blocks = 0;
    // Soft cap on the in-core inode table; clean entries beyond it are
    // pruned at Tick() boundaries (dirty inodes are never dropped).
    size_t max_cached_inodes = 16384;
    // TEST-ONLY fault injection: skip the summary-CRC validation during
    // roll-forward, i.e. trust torn partial segments. Exists so the crash
    // explorer's self-test (tests/crashsim_test.cc) can prove the Oracle
    // detects a real recovery bug. Must stay false everywhere else.
    bool unsafe_skip_rollforward_crc = false;
    // Background scrubbing: verify up to this many segments per Tick(),
    // round-robin, so latent media errors surface before a reader or the
    // cleaner trips on them. 0 disables.
    uint32_t scrub_segments_per_tick = 0;
    // Flight-recorder cadence: the telemetry sampler takes one sample per
    // interval (driven from Tick) plus one at every checkpoint, retaining
    // the newest `telemetry_capacity` samples. Each checkpoint embeds the
    // encoded ring in the checkpoint-region tail slack as the on-disk black
    // box (src/lfs/lfs_blackbox.h). No-op with LOGFS_METRICS=OFF.
    double telemetry_interval_seconds = 1.0;
    size_t telemetry_capacity = 256;
  };

  // Writes a fresh file system: superblock, two checkpoint regions, and a
  // root directory (persisted via an internal mount + checkpoint).
  static Status Format(BlockDevice* device, const LfsParams& params);

  static Result<std::unique_ptr<LfsFileSystem>> Mount(BlockDevice* device, SimClock* clock,
                                                      CpuModel* cpu, Options options = {});

  ~LfsFileSystem() override;

  // --- FileSystem interface ---
  Result<InodeNum> Create(InodeNum dir, std::string_view name, FileType type) override;
  Result<InodeNum> Lookup(InodeNum dir, std::string_view name) override;
  Status Unlink(InodeNum dir, std::string_view name) override;
  Status Rmdir(InodeNum dir, std::string_view name) override;
  Status Link(InodeNum dir, std::string_view name, InodeNum target) override;
  Status Rename(InodeNum from_dir, std::string_view from_name, InodeNum to_dir,
                std::string_view to_name) override;
  Result<uint64_t> Read(InodeNum ino, uint64_t offset, std::span<std::byte> out) override;
  Result<uint64_t> Write(InodeNum ino, uint64_t offset, std::span<const std::byte> data) override;
  Status Truncate(InodeNum ino, uint64_t new_size) override;
  Result<FileStat> Stat(InodeNum ino) override;
  Result<std::vector<DirEntry>> ReadDir(InodeNum dir) override;
  Status Sync() override;
  Status Fsync(InodeNum ino) override;
  Status DropCaches() override;
  Status Tick() override;
  std::string name() const override { return "LFS"; }

  // --- LFS-specific public API ---

  // Forces a checkpoint now (Section 4.4.1).
  Status Checkpoint();

  // --- group-commit seam ---
  //
  // Every successful mutating operation advances mutation_seq(); a
  // successful full flush records the value it covered as synced_seq().
  // SyncAsOf(seq) is the coalescing primitive the file service layers on: a
  // durability request whose horizon an earlier flush already covered is a
  // free no-op (counted as logfs.sync.coalesced), so N clients' commits
  // racing into the server collapse into one segment flush plus N-1 nops.
  uint64_t mutation_seq() const { return mutation_seq_; }
  uint64_t synced_seq() const { return synced_seq_; }
  Status SyncAsOf(uint64_t seq);

  // User-initiated cleaning (Section 4.3.4: "the user-level process
  // interface allows cleaning to be initiated at night..."). Cleans up to
  // `max_victims` segments; returns the number actually cleaned.
  Result<uint32_t> CleanNow(uint32_t max_victims);

  // Cleans exactly the given segments (skipping any that are not dirty by
  // the time they are reached). Used by measurement harnesses that must
  // clean a fixed victim set — repeatedly calling CleanNow would happily
  // re-clean the segments the cleaner itself just filled.
  Result<uint32_t> CleanTheseSegments(const std::vector<uint32_t>& segments);

  // Proactive media verification: reads up to `max_segments` dirty segments
  // (round-robin across calls) and checks every partial segment's CRC,
  // falling back to per-block checksums where the full CRC fails. A segment
  // with unreadable or corrupt *live* blocks is quarantined and its
  // still-verifiable live blocks are salvaged through the cleaner's staging
  // path. Driven from Tick() via Options::scrub_segments_per_tick and from
  // the `lfs_inspect scrub` verb.
  struct ScrubReport {
    uint64_t segments_scanned = 0;
    uint64_t partials_verified = 0;
    uint64_t blocks_verified = 0;
    uint64_t checksum_failures = 0;
    uint64_t media_errors = 0;
    uint64_t segments_quarantined = 0;
    uint64_t blocks_salvaged = 0;
  };
  Result<ScrubReport> Scrub(uint32_t max_segments);

  // True once a persistent checkpoint-write failure demoted the mount to
  // read-only: every mutating operation returns kReadOnly, reads still
  // work. The demotion is sticky for the life of the mount.
  bool read_only() const { return read_only_; }

  // The flight recorder: periodic MetricsRegistry samples whose encoded
  // ring becomes the on-disk black box at every checkpoint.
  obs::TelemetrySampler& telemetry() { return sampler_; }

  // Best-effort crash-path persistence: rewrites only the black-box trailer
  // sectors of both checkpoint regions with the freshest ring, leaving the
  // checkpoint payloads untouched. Never reports failure — it runs on paths
  // (read-only demotion) where the main write already failed.
  void PersistBlackBoxNow();

  // Introspection for benchmarks, tests, the cleaner and the checker.
  const LfsSuperblock& superblock() const { return sb_; }
  const InodeMap& imap() const { return imap_; }
  const SegmentUsageTable& usage() const { return usage_; }
  const CacheStats& cache_stats() const { return cache_.stats(); }
  uint32_t CleanSegmentCount() const { return usage_.CountState(SegState::kClean); }
  uint32_t QuarantinedSegmentCount() const {
    return usage_.CountState(SegState::kQuarantined);
  }
  uint64_t TotalLiveBytes() const { return usage_.TotalLiveBytes(); }
  // Capacity available to user data (excludes reserved segments and
  // per-partial summary overhead estimates).
  uint64_t UsableBytes() const;
  uint64_t checkpoint_count() const { return checkpoint_count_; }
  uint64_t rolled_forward_partials() const { return rolled_forward_partials_; }

  struct CleanerStats {
    uint64_t passes = 0;
    uint64_t segments_cleaned = 0;
    uint64_t blocks_examined = 0;
    uint64_t live_blocks_copied = 0;
    uint64_t segment_reads = 0;
  };
  const CleanerStats& cleaner_stats() const { return cleaner_stats_; }

  // Exact live-byte recount per segment (walks every live structure). Used
  // by the checker, tests, and post-roll-forward usage reconstruction.
  Result<std::vector<uint64_t>> ComputeExactUsage();

  // Live-byte quantum charged per inode slot (see inode accounting note in
  // the .cc).
  uint32_t InodeLiveQuantum() const;

  // --- Sharded-router seam (src/lfs/sharded_lfs.h) ---
  //
  // A cross-shard namespace operation decomposes into these primitives: the
  // router holds the locks of every involved shard and sequences dirent
  // edits on the parent's shard against inode/link edits on the child's
  // shard. Each primitive performs exactly the slice of the corresponding
  // native operation that touches THIS shard's structures, with the same
  // CPU charges, space reservations, dirtying and mutation accounting.
  // Same-shard operations route through the unsliced native ops and never
  // reach these. Implemented in lfs_shard_seam.cc.

  // Read-only: `dir` must be a local directory; returns its entry for
  // `name` (kNotFound if absent).
  Result<DirEntry> ShardFindEntry(InodeNum dir, std::string_view name);
  // Read-only precheck for an insert: dir exists, is a directory, `name`
  // free — the fast-fail before the child's shard allocates an inode.
  Status ShardCheckCanInsert(InodeNum dir, std::string_view name);
  // Allocates and initializes a new child inode homed on this shard. For
  // directories, inserts "." and ".." (the parent may live on any shard).
  Result<InodeNum> ShardAllocInode(FileType type, InodeNum parent_dir);
  // Undo of ShardAllocInode when the dirent insert on the parent's shard
  // fails afterwards. Best-effort: a failure here leaves an orphaned inode,
  // the same exposure a crash between the two shard edits has.
  void ShardAbortAlloc(InodeNum ino);
  // Inserts (dir, name) -> child. `child_is_dir` bumps dir's nlink for the
  // child's ".." — the router passes it only when the child's ".." will
  // newly point here (false for same-directory renames).
  Status ShardAddEntry(InodeNum dir, std::string_view name, InodeNum child, FileType type,
                       bool child_is_dir);
  // Removes (dir, name); `child_was_dir` drops dir's nlink.
  Status ShardRemoveEntry(InodeNum dir, std::string_view name, bool child_was_dir);
  // Replaces the target of (dir, name); `nlink_delta` (-1, 0, +1) applies
  // the child-directory ".." arithmetic computed by the router.
  Status ShardReplaceEntry(InodeNum dir, std::string_view name, InodeNum child, FileType type,
                           int nlink_delta);
  // nlink++ on a local non-directory inode (hard-link target).
  Status ShardAddLink(InodeNum ino);
  // nlink-- on a local inode; frees it at zero (unlink victim,
  // file-over-file rename victim).
  Status ShardDropLink(InodeNum ino);
  // Releases a local directory inode outright (rmdir victim, dir-over-dir
  // rename victim — native semantics release without walking nlink to 0).
  Status ShardReleaseDir(InodeNum ino);
  // Local directory empty?
  Result<bool> ShardDirIsEmpty(InodeNum ino);
  // Rewrites a local directory's ".." (directory moved across parents).
  Status ShardSetDotDot(InodeNum child_dir, InodeNum new_parent);

  // The ino ShardAllocInode WOULD return, without mutating anything — the
  // router records it in a cross-shard intent BEFORE the allocation can
  // dirty (and potentially pressure-flush) this shard.
  Result<InodeNum> ShardPeekAllocInode() const;

  // --- Repair primitives (src/lfs/lfs_repair.h) ---
  //
  // Raw structural edits for the cross-shard reconciler / repairer. Unlike
  // the operation slices above they do NO nlink arithmetic — the repairer
  // finishes with an exact nlink recount (ShardSetNlink), so intermediate
  // counts do not need to be maintained edit by edit.

  // Removes (dir, name) without touching any nlink.
  Status ShardRepairRemoveEntry(InodeNum dir, std::string_view name);
  // Inserts (dir, name) -> child without touching any nlink.
  Status ShardRepairInsertEntry(InodeNum dir, std::string_view name, InodeNum child,
                                FileType type);
  // Repoints (dir, name) -> child without touching any nlink ('.'/'..'
  // fixes and duplicate-link detachment).
  Status ShardRepairSetEntry(InodeNum dir, std::string_view name, InodeNum child,
                             FileType type);
  // Forces a local inode's nlink to the recounted value.
  Status ShardSetNlink(InodeNum ino, uint32_t nlink);
  // Reaps a local orphan outright: forces nlink to 0 and releases the
  // inode (and its blocks), whatever its type.
  Status ShardReapInode(InodeNum ino);

  // Write-provenance context for the repairer / router reconciliation
  // (DESIGN.md §6j): while set, every device write this mount issues is
  // attributed to the `repair` class. The sharded router brackets
  // ReconcileIntents / CheckShardedLfs(kRepair) with it.
  void set_repair_context(bool on) { in_repair_ = on; }

  // Appends the utilization (live_bytes / segment capacity, in [0, 1]) of
  // every segment currently holding log data — clean and quarantined
  // segments excluded. The sharded router merges these across shards to
  // republish the combined logfs.seg.util.* distribution.
  void CollectSegmentUtilization(std::vector<double>* out) const;

 private:
  friend class LfsCleaner;
  friend class LfsChecker;

  struct CachedInode {
    Inode inode;
    bool dirty = false;
  };

  LfsFileSystem(BlockDevice* device, SimClock* clock, CpuModel* cpu, const LfsSuperblock& sb,
                Options options);

  double Now() const { return clock_ != nullptr ? clock_->Now() : 0.0; }
  void ChargeCpu(uint64_t instructions);
  uint32_t BlockSize() const { return sb_.block_size; }
  uint64_t EntriesPerBlock() const { return sb_.block_size / sizeof(DiskAddr); }

  // --- raw device access ---
  // Reads one block and, when its write-time checksum is known (from the
  // segment writer or the mount-time summary scan), verifies it: silent
  // corruption surfaces as kCorrupted and quarantines the segment instead
  // of handing wrong bytes to the caller.
  Status ReadBlockAt(DiskAddr addr, std::span<std::byte> out);

  // --- media-fault handling ---
  // kOk when the index has no checksum for `addr` or the block matches;
  // otherwise quarantines the segment and returns kCorrupted.
  Status VerifyBlockChecksum(DiskAddr addr, std::span<const std::byte> block);
  // Guard for every mutating entry point once read_only_ is set.
  Status CheckWritable() const;
  // Marks the segment holding `addr`/`seg` quarantined (no-op for the
  // active segment and already-quarantined segments). State change and
  // metrics only — salvage runs from the scrubber/cleaner, never from
  // inside a read path.
  void QuarantineSegment(uint32_t seg);
  // Mount-time rebuild of the block-checksum index: walks every segment's
  // partial-segment chain reading only summary blocks. Best-effort (a
  // damaged segment just contributes fewer checksums).
  Status LoadBlockCrcIndex();
  // Liveness predicate mirroring the cleaner's two-step check, used by the
  // scrubber to decide whether a damaged block actually loses data.
  Result<bool> IsBlockLive(const SummaryEntry& entry, DiskAddr addr);

  // --- in-core inodes ---
  Result<CachedInode*> GetInode(InodeNum ino);
  void MarkInodeDirty(InodeNum ino);
  // All in-core dirty-flag transitions go through these so the dirty count
  // stays O(1) to read (DirtyBytesEstimate runs on every write).
  void SetInodeDirty(CachedInode* ci);
  void SetInodeClean(CachedInode* ci);

  // --- cache keys ---
  static constexpr uint64_t kIndirectFlag = 1ull << 40;
  static uint64_t DataObject(InodeNum ino) { return ino; }
  static uint64_t IndirectObject(InodeNum ino) { return kIndirectFlag | ino; }
  // Indirect slot indices: 0 = single indirect, 1 = double-indirect root,
  // 2+j = double-indirect leaf j.
  static constexpr uint64_t kSingleSlot = 0;
  static constexpr uint64_t kDoubleRootSlot = 1;

  // --- block mapping ---
  // Current disk address of an indirect block (kNoAddr if never written).
  Result<DiskAddr> GetIndirectAddr(InodeNum ino, uint64_t slot);
  // Cached view of an indirect block; creates a zero block if absent and
  // `create` is set.
  Result<CacheRef> GetIndirectRef(InodeNum ino, uint64_t slot, bool create);
  // Current address of file block `index` (kNoAddr for holes).
  Result<DiskAddr> GetDataBlockAddr(InodeNum ino, const Inode& inode, uint64_t index);
  // Records a new address for file block `index`; returns the previous
  // address. Dirties the inode or the owning indirect block.
  Result<DiskAddr> SetDataBlockAddr(InodeNum ino, uint64_t index, DiskAddr new_addr);
  // Records a new address for indirect block `slot`; returns the previous
  // address. Dirties the inode or the double-indirect root.
  Result<DiskAddr> SetIndirectAddr(InodeNum ino, uint64_t slot, DiskAddr new_addr);

  // Cached file/directory data block.
  Result<CacheRef> GetFileBlock(InodeNum ino, const Inode& inode, uint64_t index, bool create);
  // Miss path with read-ahead: reads a contiguous run of blocks starting at
  // (index, addr) in one transfer and populates the cache.
  Result<CacheRef> ReadBlockRun(InodeNum ino, const Inode& inode, uint64_t index,
                                DiskAddr addr);

  // --- log appending ---
  // Makes sure the builder can take one more block (flushing the pending
  // partial and/or advancing the segment as needed).
  Status EnsureAppendRoom();
  Result<DiskAddr> AppendToLog(BlockKind kind, uint32_t ino, uint32_t version, int64_t offset,
                               std::span<const std::byte> data);
  // Zero-copy variant: `data` is referenced, not copied, and must stay
  // valid until the partial segment is flushed. Cache-backed callers pin
  // the block in staged_pins_ first.
  Result<DiskAddr> AppendToLogExternal(BlockKind kind, uint32_t ino, uint32_t version,
                                       int64_t offset, std::span<const std::byte> data);
  // Deferred variant: returns the builder-owned block to encode into
  // directly (valid until the flush), saving the bounce buffer.
  Result<DiskAddr> AppendToLogDeferred(BlockKind kind, uint32_t ino, uint32_t version,
                                       int64_t offset, std::span<std::byte>* buffer);
  Status FlushPartial();
  Status AdvanceSegment();
  uint32_t SegmentOfAddr(DiskAddr addr) const { return sb_.SegmentOfSector(addr); }
  void AccountReplace(DiskAddr old_addr, DiskAddr new_addr, uint32_t bytes);
  // Live-byte death accounting: decrements the old home's estimate and,
  // outside the cleaner, folds the death into that segment's overwrite-
  // interval heat EWMA (cleaner relocation is not workload heat).
  void AccountBlockDeath(DiskAddr addr, uint32_t bytes);

  // --- write-provenance context (DESIGN.md §6j) ---
  // The class every append is tagged with, by flag priority:
  // repair > recovery > cleaner > checkpoint > foreground (the builder then
  // refines foreground into fg_data/fg_meta per block kind).
  obs::IoSource CurrentIoContext() const {
    if (in_repair_) return obs::IoSource::kRepair;
    if (in_recovery_) return obs::IoSource::kRecovery;
    if (in_cleaner_) return obs::IoSource::kCleaner;
    if (in_checkpoint_) return obs::IoSource::kCheckpoint;
    return obs::IoSource::kForegroundData;
  }
  // Checkpoint-region (and black-box trailer) writes bypass the builder, so
  // they classify directly from the same flags.
  obs::IoSource RegionIoSource() const {
    if (in_repair_) return obs::IoSource::kRepair;
    if (in_recovery_) return obs::IoSource::kRecovery;
    if (in_cleaner_) return obs::IoSource::kCleaner;
    return obs::IoSource::kCheckpoint;
  }
  // Sets a context flag for a scope; restores on every exit path.
  class ScopedFlag {
   public:
    explicit ScopedFlag(bool* flag) : flag_(flag), prev_(*flag) { *flag_ = true; }
    ~ScopedFlag() { *flag_ = prev_; }
    ScopedFlag(const ScopedFlag&) = delete;
    ScopedFlag& operator=(const ScopedFlag&) = delete;

   private:
    bool* flag_;
    bool prev_;
  };

  // Publishes the per-segment utilization distribution (logfs.seg.util.*
  // gauges) so the flight recorder's next sample carries it.
  void PublishSpaceTelemetry();

  // --- write-back machinery ---
  Status WriteBack(std::span<CacheBlock* const> blocks) override;  // WritebackHandler.
  Status FlushDirtyIndirect(std::span<CacheBlock* const> batch);
  Status FlushDirtyInodes();
  Status FlushPendingFrees();
  // Full data flush: cache + indirect + inodes + meta-log + partial.
  Status FlushEverything();

  // --- space management ---
  Status EnsureSpaceForWrite(uint64_t incoming_bytes);
  uint64_t DirtyBytesEstimate() const;

  // --- checkpointing & recovery ---
  Status WriteCheckpointRegion(const CheckpointRecord& ckpt);
  Status LoadFromCheckpoint(const CheckpointRecord& ckpt);
  Status RollForward();
  Status ApplyRolledPartial(const SegmentSummary& summary, uint32_t segment, uint32_t offset,
                            std::span<const std::byte> content);
  Status RebuildUsageFromScratch(uint32_t active_segment, uint64_t checkpoint_next_seq);

  // --- namespace helpers ---
  Result<DirEntry> DirFind(InodeNum dir_ino, const Inode& dir, std::string_view name);
  Status DirInsert(InodeNum dir_ino, std::string_view name, InodeNum ino, FileType type);
  Status DirRemove(InodeNum dir_ino, std::string_view name);
  Status DirReplace(InodeNum dir_ino, std::string_view name, InodeNum ino, FileType type);
  Result<bool> DirIsEmpty(InodeNum dir_ino, const Inode& dir);
  Result<bool> IsInSubtree(InodeNum candidate, InodeNum ancestor);
  // Drops an inode whose last link went away: releases blocks, frees the
  // imap entry, records the free for roll-forward.
  Status ReleaseInode(InodeNum ino);
  // Releases data blocks at index >= first_index (truncate/delete helper).
  Status ReleaseBlocksFrom(InodeNum ino, uint64_t first_index);

  // --- per-op latency attribution ---
  // RAII scope wrapped around each top-level public operation (Read, Write,
  // Sync, Fsync, Create). Only the outermost scope is live — internal
  // reentry (Sync from the destructor, Checkpoint from the cleaner) attaches
  // to it. On destruction the op's wall time is decomposed into disk-I/O,
  // cleaner-interference and retry-backoff seconds; the remainder is the
  // cache/CPU component. Published as logfs.op.<name>.* and as an "op" span.
  class OpScope {
   public:
    OpScope(LfsFileSystem* fs, const char* name);
    ~OpScope();
    OpScope(const OpScope&) = delete;
    OpScope& operator=(const OpScope&) = delete;

   private:
    LfsFileSystem* fs_;
    bool active_ = false;
  };
  struct OpAttr {
    const char* name = nullptr;
    double start = 0.0;
    double disk_seconds = 0.0;     // Device time outside the cleaner.
    double cleaner_seconds = 0.0;  // CleanNow invoked to make room.
    uint64_t retry_us_start = 0;   // logfs.resilient.backoff_us at op start.
    uint64_t cache_hits_start = 0;
    uint64_t cache_misses_start = 0;
  };
  // Registry handles for one op name's attribution metrics, resolved once
  // per instance so the hot path never takes the registry mutex. Pointers
  // are stable: the registry heap-allocates each metric.
  struct OpMetricHandles {
    obs::Histogram* seconds = nullptr;
    obs::Counter* count = nullptr;
    obs::Counter* disk_us = nullptr;
    obs::Counter* cleaner_us = nullptr;
    obs::Counter* retry_us = nullptr;
    obs::Counter* cache_us = nullptr;
  };
  // `name` must be a string literal (the cache keys on the pointer). Calls
  // are serialized by the owning shard's lock, like all other FS state.
  const OpMetricHandles& OpHandles(const char* name);

  // Charge device time to the active op (no-op when none; cleaner time is
  // charged separately, so device I/O inside the cleaner is skipped here).
  void AddOpDiskSeconds(double seconds);
  void AddOpCleanerSeconds(double seconds);

  Status InitializeRoot();
  Status MaybePressureFlush();
  // Drops clean in-core inodes beyond the configured cap. Only called from
  // quiescent points (Tick), where no CachedInode pointers are live.
  void PruneInodeCache();

  BlockDevice* device_;
  SimClock* clock_;
  CpuModel* cpu_;
  LfsSuperblock sb_;
  Options options_;
  BufferCache cache_;
  InodeMap imap_;
  SegmentUsageTable usage_;
  SegmentBuilder builder_;
  // Pins on cache blocks whose bytes the builder references in place
  // (AppendToLogExternal): the blocks are marked clean as they are staged,
  // and the pin is what keeps them from being evicted before the vectored
  // flush reads them. Released by FlushPartial once the write is durable.
  // Declared after cache_ and builder_ so the pins unwind first.
  std::vector<CacheRef> staged_pins_;
  // Whether write-back stages cache blocks by reference. Requires enough
  // cache headroom that a partial segment's worth of pinned-clean blocks
  // cannot starve eviction; tiny caches take the copying path (the on-disk
  // stream and all simulated stats are identical either way).
  bool zero_copy_writeback_ = false;
  std::unordered_map<InodeNum, CachedInode> inodes_;
  uint32_t dirty_inode_count_ = 0;
  std::vector<FreeRecord> pending_frees_;
  // Current homes of the inode-map and usage blocks (kNoAddr = never
  // written; such blocks decode as all-free / all-clean).
  std::vector<DiskAddr> imap_block_addrs_;
  std::vector<DiskAddr> usage_block_addrs_;

  // Write-time CRC of every block the log has written, keyed by address.
  // Seeded at mount from the segment summaries, kept current by
  // FlushPartial. Stale entries (dead blocks) are harmless: a reused
  // address is overwritten here before it can be read back.
  std::unordered_map<DiskAddr, uint32_t> block_crcs_;
  bool read_only_ = false;
  uint32_t next_scrub_segment_ = 0;  // Round-robin scrub cursor.

  uint64_t next_log_seq_ = 1;
  uint64_t checkpoint_seq_ = 0;
  uint32_t next_ckpt_region_ = 0;  // Alternates 0 / 1.
  double last_checkpoint_time_ = 0.0;
  InodeNum next_ino_hint_ = kRootIno;
  uint64_t checkpoint_count_ = 0;
  uint64_t rolled_forward_partials_ = 0;
  // Group-commit seam (see the public accessors): mutation_seq_ counts
  // successful mutating public ops; synced_seq_ is the horizon the last
  // successful checkpoint made durable.
  uint64_t mutation_seq_ = 0;
  uint64_t synced_seq_ = 0;
  bool in_cleaner_ = false;  // Cleaning may dip into reserved segments.
  // Further provenance flags for write attribution (see CurrentIoContext).
  bool in_checkpoint_ = false;  // Checkpoint's own imap/usage appends.
  bool in_recovery_ = false;    // Roll-forward incl. its terminal checkpoint.
  bool in_repair_ = false;      // Router reconciliation / online repairer.
  CleanerStats cleaner_stats_;

  // Flight recorder state (see Options::telemetry_interval_seconds).
  obs::TelemetrySampler sampler_;
  int op_depth_ = 0;
  OpAttr op_attr_;
  std::unordered_map<const char*, OpMetricHandles> op_metric_handles_;
};

}  // namespace logfs

#endif  // LOGFS_SRC_LFS_LFS_FILE_SYSTEM_H_
