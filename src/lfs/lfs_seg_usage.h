// The segment usage array (paper Section 4.3.4).
//
// One entry per segment, tracking an estimate of the live bytes in the
// segment plus its lifecycle state. The cleaner uses live-byte counts to
// pick victims ("choose the segments with the most free space"). The table
// is memory-resident (a few bytes per segment) and serialized into blocks
// written to the log at checkpoints.
//
// Lifecycle: kClean -> (writer picks it) kActive -> (writer moves on)
// kDirty -> (cleaner empties it) kCleanPending -> (next checkpoint) kClean.
// The kCleanPending holding state keeps a cleaned segment from being
// rewritten before a checkpoint records the new homes of its blocks; until
// then, crash recovery may still need the old copies.
//
// kQuarantined is a terminal side-track off that cycle: a segment whose
// medium failed verification (checksum mismatch or persistent read error).
// The writer never allocates it, the cleaner never picks it as a victim
// (its salvage pass copies out whatever still verifies), and the state
// persists across remounts — media damage does not heal on reboot.
#ifndef LOGFS_SRC_LFS_LFS_SEG_USAGE_H_
#define LOGFS_SRC_LFS_LFS_SEG_USAGE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/result.h"
#include "src/util/status.h"

namespace logfs {

enum class SegState : uint8_t {
  kClean = 0,
  kDirty = 1,
  kActive = 2,
  kCleanPending = 3,
  kQuarantined = 4,
};

struct SegUsage {
  uint32_t live_bytes = 0;
  uint64_t last_write_seq = 0;  // Log seq of the most recent write into it.
  SegState state = SegState::kClean;

  // --- memory-only heat telemetry (DESIGN.md §6j) ---
  // Never serialized: kSegUsageEntrySize and the encoded block layout are
  // unchanged, so remounts simply start the estimate over. Maintained even
  // with LOGFS_METRICS=OFF (plain doubles; export is what's gated).
  double allocated_at = 0.0;        // Sim time it last became kActive.
  double last_overwrite_at = 0.0;   // Sim time of the last live-block death.
  double heat_interval_ewma = 0.0;  // EWMA of inter-overwrite gaps, seconds.
                                    // 0 = no estimate yet; smaller = hotter.
};

inline constexpr size_t kSegUsageEntrySize = 16;

class SegmentUsageTable {
 public:
  SegmentUsageTable(uint32_t num_segments, uint32_t block_size);

  uint32_t num_segments() const { return num_segments_; }
  uint32_t entries_per_block() const { return entries_per_block_; }
  uint32_t block_count() const { return block_count_; }

  const SegUsage& Get(uint32_t seg) const { return entries_[seg]; }

  // Underflow-guarded: a negative delta larger than the current estimate
  // clamps to zero (and counts logfs.usage.underflow_clamps) instead of
  // wrapping the uint32 — a double-decrement must not turn a near-empty
  // segment into the cleaner's least-attractive victim.
  void AddLive(uint32_t seg, int64_t delta_bytes);
  void SetLive(uint32_t seg, uint32_t live_bytes);
  void SetState(uint32_t seg, SegState state);
  void SetWriteSeq(uint32_t seg, uint64_t seq);

  // --- heat telemetry (memory-only; never dirties a table block) ---
  // The segment was (re)allocated as the active segment: stamps
  // allocated_at and restarts the overwrite-interval estimate (heat is a
  // property of the data, and the data is new).
  void NoteAllocated(uint32_t seg, double now);
  // A live block in `seg` just died to a foreground overwrite/delete:
  // folds the gap since the previous death into heat_interval_ewma
  // (alpha = kHeatAlpha; the first gap seeds the estimate).
  void RecordOverwrite(uint32_t seg, double now);
  static constexpr double kHeatAlpha = 0.25;

  uint32_t CountState(SegState state) const;
  uint64_t TotalLiveBytes() const;

  // Lowest-numbered clean segment, or kNotFound.
  Result<uint32_t> PickClean() const;
  // Victim-selection policy. kGreedy is the paper's choice ("choose the
  // segments with the most free space"); kFifo (oldest written first) is an
  // ablation baseline.
  enum class VictimPolicy { kGreedy, kFifo };
  // Up to `max_victims` kDirty segments. Segments at or above
  // `max_live_bytes` live bytes are never proposed (cleaning full segments
  // yields no space).
  std::vector<uint32_t> PickVictims(uint32_t max_victims, uint32_t max_live_bytes,
                                    VictimPolicy policy = VictimPolicy::kGreedy) const;
  // Promotes every kCleanPending segment to kClean (checkpoint completion).
  // A pending segment that still reports live bytes was not fully relocated
  // — the cleaner could not stage every live block (media damage) — and
  // promoting it would hand the allocator a segment whose contents are
  // still reachable. Such segments become kQuarantined instead; they are
  // returned so the caller can record the demotion.
  std::vector<uint32_t> CommitPendingClean();

  // --- block (de)serialization ---
  Status EncodeBlock(uint32_t block_index, std::span<std::byte> out) const;
  Status DecodeBlock(uint32_t block_index, std::span<const std::byte> in);
  bool BlockDirty(uint32_t block_index) const { return dirty_blocks_[block_index]; }
  void ClearBlockDirty(uint32_t block_index) { dirty_blocks_[block_index] = false; }
  // Forces a rewrite of one table block at the next checkpoint (cleaner
  // relocation of a live usage block).
  void MarkBlockDirty(uint32_t block_index) { dirty_blocks_[block_index] = true; }
  void MarkAllDirty();

 private:
  void MarkDirty(uint32_t seg) { dirty_blocks_[seg / entries_per_block_] = true; }

  uint32_t num_segments_;
  uint32_t block_size_;
  uint32_t entries_per_block_;
  uint32_t block_count_;
  std::vector<SegUsage> entries_;
  std::vector<bool> dirty_blocks_;
};

}  // namespace logfs

#endif  // LOGFS_SRC_LFS_LFS_SEG_USAGE_H_
