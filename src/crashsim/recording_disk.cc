#include "src/crashsim/recording_disk.h"

namespace logfs {

Status RecordingDisk::ReadSectors(uint64_t first, std::span<std::byte> out,
                                  IoOptions options) {
  return inner_->ReadSectors(first, out, options);
}

Status RecordingDisk::WriteSectors(uint64_t first, std::span<const std::byte> data,
                                   IoOptions options) {
  RETURN_IF_ERROR(inner_->WriteSectors(first, data, options));
  const std::span<const std::byte> one[] = {data};
  Journal(first, one, options);
  return OkStatus();
}

Status RecordingDisk::ReadSectorsV(uint64_t first, std::span<const std::span<std::byte>> bufs,
                                   IoOptions options) {
  return inner_->ReadSectorsV(first, bufs, options);
}

Status RecordingDisk::WriteSectorsV(uint64_t first,
                                    std::span<const std::span<const std::byte>> bufs,
                                    IoOptions options) {
  RETURN_IF_ERROR(inner_->WriteSectorsV(first, bufs, options));
  Journal(first, bufs, options);
  return OkStatus();
}

void RecordingDisk::Journal(uint64_t first, std::span<const std::span<const std::byte>> bufs,
                            IoOptions options) {
  // A synchronous write is a barrier on both sides: close the open epoch,
  // journal the request alone in its own epoch, and open a fresh one.
  if (options.synchronous && !writes_.empty() && writes_.back().epoch == epoch_) {
    ++epoch_;
  }
  WriteRecord record;
  record.first = first;
  record.data.reserve(IoVecBytes(bufs));
  for (const auto& buf : bufs) {
    record.data.insert(record.data.end(), buf.begin(), buf.end());
  }
  record.epoch = epoch_;
  record.synchronous = options.synchronous;
  sectors_recorded_ += record.SectorCount();
  writes_.push_back(std::move(record));
  if (options.synchronous) {
    ++epoch_;
  }
}

Status RecordingDisk::Flush() {
  RETURN_IF_ERROR(inner_->Flush());
  if (!writes_.empty() && writes_.back().epoch == epoch_) {
    ++epoch_;
  }
  return OkStatus();
}

}  // namespace logfs
