#include "src/crashsim/recording_disk.h"

namespace logfs {

Status RecordingDisk::ReadSectors(uint64_t first, std::span<std::byte> out,
                                  IoOptions options) {
  return inner_->ReadSectors(first, out, options);
}

Status RecordingDisk::WriteSectors(uint64_t first, std::span<const std::byte> data,
                                   IoOptions options) {
  RETURN_IF_ERROR(inner_->WriteSectors(first, data, options));
  // A synchronous write is a barrier on both sides: close the open epoch,
  // journal the request alone in its own epoch, and open a fresh one.
  if (options.synchronous && !writes_.empty() && writes_.back().epoch == epoch_) {
    ++epoch_;
  }
  WriteRecord record;
  record.first = first;
  record.data.assign(data.begin(), data.end());
  record.epoch = epoch_;
  record.synchronous = options.synchronous;
  sectors_recorded_ += record.SectorCount();
  writes_.push_back(std::move(record));
  if (options.synchronous) {
    ++epoch_;
  }
  return OkStatus();
}

Status RecordingDisk::Flush() {
  RETURN_IF_ERROR(inner_->Flush());
  if (!writes_.empty() && writes_.back().epoch == epoch_) {
    ++epoch_;
  }
  return OkStatus();
}

}  // namespace logfs
