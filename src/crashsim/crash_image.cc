#include "src/crashsim/crash_image.h"

#include <algorithm>
#include <cstring>

#include "src/disk/fault_disk.h"
#include "src/disk/memory_disk.h"

namespace logfs {

std::string CrashPlan::Describe() const {
  std::string out = "prefix=" + std::to_string(prefix);
  if (torn_sectors > 0) {
    out += " torn=" + std::to_string(torn_sectors);
  }
  if (dropped != kNoDrop) {
    out += " dropped=" + std::to_string(dropped);
  }
  return out;
}

CrashImageGenerator::CrashImageGenerator(std::vector<std::byte> base_image,
                                         const std::vector<WriteRecord>* writes)
    : base_image_(std::move(base_image)), writes_(writes) {
  prefix_sectors_.reserve(writes_->size() + 1);
  uint64_t total = 0;
  prefix_sectors_.push_back(0);
  for (const WriteRecord& record : *writes_) {
    total += record.SectorCount();
    prefix_sectors_.push_back(total);
  }
}

std::vector<CrashPlan> CrashImageGenerator::Enumerate(
    const CrashEnumerationBudget& budget,
    const std::vector<size_t>& barrier_positions) const {
  const size_t n = writes_->size();
  const size_t boundaries = n + 1;  // p = 0 .. n (n = the complete image).
  size_t stride = 1;
  if (budget.max_boundaries > 0 && boundaries > budget.max_boundaries) {
    stride = (boundaries + budget.max_boundaries - 1) / budget.max_boundaries;
  }
  // True if a completed durability barrier separates writes j and p.
  auto barrier_between = [&](size_t j, size_t p) {
    for (size_t b : barrier_positions) {
      if (j < b && b <= p) {
        return true;
      }
    }
    return false;
  };

  std::vector<size_t> positions;
  for (size_t p = 0; p < boundaries; p += stride) {
    positions.push_back(p);
  }
  for (size_t f : budget.forced_boundaries) {
    if (f < boundaries) {
      positions.push_back(f);
    }
  }
  std::sort(positions.begin(), positions.end());
  positions.erase(std::unique(positions.begin(), positions.end()), positions.end());

  std::vector<CrashPlan> plans;
  for (size_t p : positions) {
    plans.push_back(CrashPlan{p, 0, CrashPlan::kNoDrop});
    if (p < n) {
      const uint64_t in_flight = (*writes_)[p].SectorCount();
      for (uint64_t torn : budget.torn_variants) {
        if (torn > 0 && torn < in_flight) {
          plans.push_back(CrashPlan{p, torn, CrashPlan::kNoDrop});
        }
      }
    }
    if (budget.reorder_within_epoch && p >= 2) {
      // Drop a request from the open flush epoch: same epoch as the last
      // landed write, not a barrier write, no completed barrier in between.
      const uint64_t open_epoch = (*writes_)[p - 1].epoch;
      size_t drops = 0;
      for (size_t j = p - 1; j-- > 0 && drops < budget.max_drops_per_boundary;) {
        const WriteRecord& candidate = (*writes_)[j];
        if (candidate.epoch != open_epoch) {
          break;  // Left the open epoch; everything earlier is ordered.
        }
        if (candidate.synchronous || barrier_between(j, p)) {
          break;
        }
        plans.push_back(CrashPlan{p, 0, j});
        ++drops;
      }
    }
  }
  return plans;
}

Result<std::vector<std::byte>> CrashImageGenerator::Materialize(const CrashPlan& plan) const {
  if (plan.prefix > writes_->size()) {
    return InvalidArgumentError("crash plan prefix beyond journal");
  }
  MemoryDisk scratch(sector_count(), /*clock=*/nullptr);
  std::memcpy(scratch.MutableRawImage().data(), base_image_.data(), base_image_.size());

  if (plan.dropped == CrashPlan::kNoDrop) {
    // Replay through the fault injector: the torn tail is produced by the
    // same CrashAfterSectors logic the in-situ crash tests use.
    FaultInjectingDisk fault(&scratch);
    fault.CrashAfterSectors(prefix_sectors_[plan.prefix] + plan.torn_sectors, /*torn=*/true);
    const size_t last = std::min(plan.prefix + 1, writes_->size());
    for (size_t i = 0; i < last; ++i) {
      const WriteRecord& record = (*writes_)[i];
      Status written = fault.WriteSectors(record.first, record.data);
      if (!written.ok()) {
        if (written.code() == ErrorCode::kCrashed) {
          break;
        }
        return written;
      }
    }
  } else {
    if (plan.dropped >= plan.prefix || plan.torn_sectors != 0) {
      return InvalidArgumentError("reorder plan must drop a landed write, untorn");
    }
    for (size_t i = 0; i < plan.prefix; ++i) {
      if (i == plan.dropped) {
        continue;
      }
      const WriteRecord& record = (*writes_)[i];
      RETURN_IF_ERROR(scratch.WriteSectors(record.first, record.data));
    }
  }

  std::span<const std::byte> raw = scratch.RawImage();
  return std::vector<std::byte>(raw.begin(), raw.end());
}

}  // namespace logfs
