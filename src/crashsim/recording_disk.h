// RecordingDisk: BlockDevice decorator that journals the complete write
// stream of a workload run — sector extent, payload bytes, and the flush
// epoch each request belongs to. The journal is the raw material the crash
// explorer (explorer.h) slices into candidate post-crash disk images:
// every prefix of the stream is a crash state, every prefix plus a partial
// final request is a torn-write state, and requests inside one flush epoch
// may be reordered or dropped.
//
// Flush epochs: Flush() closes the current epoch, and a synchronous write
// (IoOptions::synchronous) is treated as a full barrier — it gets an epoch
// of its own, so it can never be reordered against its neighbours. This is
// the write-ahead contract LFS relies on for the checkpoint region.
#ifndef LOGFS_SRC_CRASHSIM_RECORDING_DISK_H_
#define LOGFS_SRC_CRASHSIM_RECORDING_DISK_H_

#include <cstdint>
#include <vector>

#include "src/disk/block_device.h"

namespace logfs {

// One journaled write request, in stream order.
struct WriteRecord {
  uint64_t first = 0;           // First sector of the request.
  std::vector<std::byte> data;  // Full payload (multiple of kSectorSize).
  uint64_t epoch = 0;           // Flush epoch the request belongs to.
  bool synchronous = false;     // Marked IoOptions::synchronous.

  uint64_t SectorCount() const { return data.size() / kSectorSize; }
};

class RecordingDisk : public BlockDevice {
 public:
  explicit RecordingDisk(BlockDevice* inner) : inner_(inner) {}

  Status ReadSectors(uint64_t first, std::span<std::byte> out,
                     IoOptions options = {}) override;
  Status WriteSectors(uint64_t first, std::span<const std::byte> data,
                      IoOptions options = {}) override;
  // A vectored write is one request: it is journaled as a single record
  // (payload concatenated), so crash-image enumeration sees the same
  // request boundaries as the equivalent coalesced scalar write.
  Status ReadSectorsV(uint64_t first, std::span<const std::span<std::byte>> bufs,
                      IoOptions options = {}) override;
  Status WriteSectorsV(uint64_t first, std::span<const std::span<const std::byte>> bufs,
                       IoOptions options = {}) override;
  Status Flush() override;

  uint64_t sector_count() const override { return inner_->sector_count(); }
  const DiskStats& stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

  // The journal. Stable across calls; grows only at the tail.
  const std::vector<WriteRecord>& writes() const { return writes_; }
  size_t write_count() const { return writes_.size(); }
  uint64_t sectors_recorded() const { return sectors_recorded_; }
  uint64_t current_epoch() const { return epoch_; }

 private:
  void Journal(uint64_t first, std::span<const std::span<const std::byte>> bufs,
               IoOptions options);

  BlockDevice* inner_;
  std::vector<WriteRecord> writes_;
  uint64_t sectors_recorded_ = 0;
  uint64_t epoch_ = 0;
};

}  // namespace logfs

#endif  // LOGFS_SRC_CRASHSIM_RECORDING_DISK_H_
