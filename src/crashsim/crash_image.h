// CrashImageGenerator: turns a recorded write stream (recording_disk.h)
// into candidate post-crash disk images, CrashMonkey/ALICE-style.
//
// Three families of crash states, all relative to the journal:
//   * prefix boundaries — writes [0, p) landed, nothing of write p did;
//   * torn variants     — writes [0, p) landed plus the first `torn_sectors`
//                         sectors of write p (a mid-transfer tear);
//   * reorder variants  — writes [0, p) landed except one dropped request
//                         from the open flush epoch (an unordered device
//                         cache lost a request that later ones overtook).
// Torn variants are materialized by replaying the journal through
// FaultInjectingDisk::CrashAfterSectors, so the image generator and the
// fault injector can never disagree about tear semantics.
#ifndef LOGFS_SRC_CRASHSIM_CRASH_IMAGE_H_
#define LOGFS_SRC_CRASHSIM_CRASH_IMAGE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/crashsim/recording_disk.h"
#include "src/util/result.h"

namespace logfs {

// One candidate post-crash disk image.
struct CrashPlan {
  static constexpr size_t kNoDrop = std::numeric_limits<size_t>::max();

  size_t prefix = 0;          // Writes [0, prefix) landed fully.
  uint64_t torn_sectors = 0;  // Leading sectors of write `prefix` that landed.
  size_t dropped = kNoDrop;   // Reorder variant: this write (< prefix) never landed.

  std::string Describe() const;
};

// How many crash states to enumerate and of which kinds.
struct CrashEnumerationBudget {
  // Cap on prefix boundaries; 0 = one per journal write (plus the complete
  // image). When the journal is longer, boundaries are strided evenly.
  size_t max_boundaries = 0;
  // Torn-sector counts tried at each boundary (filtered to the in-flight
  // write's size). 8 = exactly one 4 KB block: the partial segment whose
  // summary landed but whose content did not.
  std::vector<uint64_t> torn_variants = {1, 4, 8, 12};
  // Also emit reorder (dropped-write) variants within the open flush epoch.
  bool reorder_within_epoch = false;
  size_t max_drops_per_boundary = 2;
  // Journal positions that must appear as boundaries even when
  // max_boundaries strides past them (each also gets its torn variants).
  // Lets a sweep pin crash points inside a narrow window of interest —
  // e.g. the single-sector intent publish/retire writes of a cross-shard
  // namespace operation, which a coarse stride would sample right over.
  std::vector<size_t> forced_boundaries;
};

class CrashImageGenerator {
 public:
  // `writes` must outlive the generator. `base_image` is the disk content
  // at journal start (for the explorer: right after Format).
  CrashImageGenerator(std::vector<std::byte> base_image,
                      const std::vector<WriteRecord>* writes);

  // Enumerates crash plans under the budget, in journal order. Dropped-write
  // variants never cross `barrier_positions`: a journal length at which some
  // durability barrier (sync/fsync/checkpoint) completed — requests on
  // opposite sides of a completed barrier are ordered even when the flush
  // epochs alone would not prove it (e.g. an fsync that found nothing dirty).
  std::vector<CrashPlan> Enumerate(const CrashEnumerationBudget& budget,
                                   const std::vector<size_t>& barrier_positions = {}) const;

  // Materializes the post-crash image for a plan.
  Result<std::vector<std::byte>> Materialize(const CrashPlan& plan) const;

  uint64_t sector_count() const { return base_image_.size() / kSectorSize; }
  size_t journal_size() const { return writes_->size(); }

 private:
  std::vector<std::byte> base_image_;
  const std::vector<WriteRecord>* writes_;
  std::vector<uint64_t> prefix_sectors_;  // prefix_sectors_[p] = sectors in writes [0, p).
};

}  // namespace logfs

#endif  // LOGFS_SRC_CRASHSIM_CRASH_IMAGE_H_
