#include "src/crashsim/oracle.h"

#include <algorithm>
#include <cstring>

#include "src/disk/memory_disk.h"
#include "src/fsbase/path.h"
#include "src/lfs/lfs_blackbox.h"
#include "src/lfs/lfs_check.h"
#include "src/obs/metrics.h"

namespace logfs {

// --- WorkloadModel ---------------------------------------------------------------

void WorkloadModel::PushEvent(size_t op, const std::string& path, PathState state,
                              std::optional<WriteShape> write) {
  current_[path] = state;
  histories_[path].push_back(PathEvent{op, std::move(state), std::move(write)});
}

void WorkloadModel::SetFile(size_t op, const std::string& path,
                            std::vector<std::byte> content) {
  PushEvent(op, path, PathState{StateKind::kFile, std::move(content)});
}

void WorkloadModel::ApplyWrite(size_t op, const std::string& path, uint64_t offset,
                               std::vector<std::byte> payload) {
  WriteShape shape;
  auto it = current_.find(path);
  if (it != current_.end() && it->second.kind == StateKind::kFile) {
    shape.pre = it->second.content;
  }
  shape.offset = offset;
  shape.payload = payload;

  std::vector<std::byte> content = shape.pre;
  if (content.size() < offset + payload.size()) {
    content.resize(offset + payload.size(), std::byte{0});
  }
  std::copy(payload.begin(), payload.end(), content.begin() + static_cast<ptrdiff_t>(offset));
  PushEvent(op, path, PathState{StateKind::kFile, std::move(content)}, std::move(shape));
}

void WorkloadModel::SetDir(size_t op, const std::string& path) {
  PushEvent(op, path, PathState{StateKind::kDir, {}});
}

void WorkloadModel::Remove(size_t op, const std::string& path) {
  PushEvent(op, path, PathState{StateKind::kAbsent, {}});
}

void WorkloadModel::Rename(size_t op, const std::string& from, const std::string& to) {
  PathState moved;
  auto it = current_.find(from);
  if (it != current_.end()) {
    moved = it->second;
  }
  PushEvent(op, from, PathState{StateKind::kAbsent, {}});
  PushEvent(op, to, std::move(moved));
}

void WorkloadModel::Truncate(size_t op, const std::string& path, uint64_t size) {
  PathState state;
  auto it = current_.find(path);
  if (it != current_.end()) {
    state = it->second;
  }
  state.kind = StateKind::kFile;
  state.content.resize(size, std::byte{0});
  PushEvent(op, path, std::move(state));
}

void WorkloadModel::CloseOp(OpMark mark) { marks_.push_back(std::move(mark)); }

const WorkloadModel::PathState* WorkloadModel::Current(const std::string& path) const {
  auto it = current_.find(path);
  return it == current_.end() ? nullptr : &it->second;
}

std::vector<size_t> WorkloadModel::BarrierWritePositions() const {
  std::vector<size_t> positions;
  for (const OpMark& mark : marks_) {
    if (mark.global_barrier || !mark.fsync_path.empty()) {
      positions.push_back(mark.writes_after);
    }
  }
  return positions;
}

// --- Oracle ----------------------------------------------------------------------

namespace {

// True if `actual` equals `pre` with some prefix of `payload` applied at
// `offset` — the states a crash can expose while a write(2) is mid-flush.
bool MatchesPartialWrite(const std::vector<std::byte>& actual,
                         const WorkloadModel::WriteShape& w) {
  const size_t pre_size = w.pre.size();
  const size_t off = static_cast<size_t>(w.offset);
  auto pre_at = [&](size_t i) { return i < pre_size ? w.pre[i] : std::byte{0}; };
  if (actual.size() < pre_size) {
    return false;  // Writes never shrink a file.
  }
  // Bytes below the write offset must match the pre-image (zero for holes).
  const size_t head = std::min(off, actual.size());
  for (size_t i = 0; i < head; ++i) {
    if (actual[i] != pre_at(i)) {
      return false;
    }
  }
  if (actual.size() > pre_size) {
    // The file grew: the torn prefix must account exactly for the new size.
    if (actual.size() < off || actual.size() - off > w.payload.size()) {
      return false;
    }
    const size_t l = actual.size() - off;
    return std::memcmp(actual.data() + off, w.payload.data(), l) == 0;
  }
  // Size unchanged: payload prefix [off, off+l), pre-image suffix beyond.
  size_t l_min = 0;
  for (size_t k = pre_size; k-- > off;) {
    if (actual[k] != pre_at(k)) {
      l_min = k + 1 - off;
      break;
    }
  }
  const size_t payload_max =
      std::min(w.payload.size(), pre_size > off ? pre_size - off : 0);
  size_t match = 0;
  while (match < payload_max && actual[off + match] == w.payload[match]) {
    ++match;
  }
  return l_min <= match;
}

bool SameContent(const std::vector<std::byte>& a, const std::vector<std::byte>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

}  // namespace

size_t Oracle::DurableFloor(const std::string& path, size_t crash_prefix,
                            bool roll_forward) const {
  const std::vector<WorkloadModel::OpMark>& marks = model_->marks();
  size_t floor = 0;
  for (size_t i = 0; i < marks.size(); ++i) {
    if (marks[i].writes_after > crash_prefix) {
      break;  // This op's writes were cut; nothing later is covered either.
    }
    if (marks[i].global_barrier || (roll_forward && marks[i].fsync_path == path)) {
      floor = i;
    }
  }
  return floor;
}

OracleVerdict Oracle::CheckImage(std::span<const std::byte> image, size_t crash_prefix,
                                 bool roll_forward,
                                 const LfsFileSystem::Options& base_options,
                                 bool verify_data) const {
  OracleVerdict verdict;

  // The flight recorder's crash contract: every enumerated crash image must
  // yield a CRC-valid black-box telemetry ring from at least one checkpoint
  // region, independent of whether the checkpoints themselves survived.
  // Checked on the raw image, before mount, so a failed mount still reports
  // the forensic regression. Builds with LOGFS_METRICS=OFF never embed a
  // ring, so there is nothing to assert.
  if constexpr (obs::kMetricsEnabled) {
    auto blackbox = RecoverBlackBoxFromImage(image);
    if (!blackbox.ok()) {
      verdict.violations.push_back("black box unrecoverable: " +
                                   blackbox.status().ToString());
    }
  }

  MemoryDisk scratch(sector_count_, /*clock=*/nullptr);
  std::memcpy(scratch.MutableRawImage().data(), image.data(), image.size());

  LfsFileSystem::Options options = base_options;
  options.roll_forward = roll_forward;
  auto mounted = LfsFileSystem::Mount(&scratch, /*clock=*/nullptr, /*cpu=*/nullptr, options);
  if (!mounted.ok()) {
    verdict.violations.push_back("mount failed: " + mounted.status().ToString());
    return verdict;
  }
  verdict.mount_ok = true;
  LfsFileSystem* fs = mounted->get();

  LfsChecker checker(fs);
  auto report = checker.Check(verify_data);
  if (!report.ok()) {
    verdict.violations.push_back("checker errored: " + report.status().ToString());
  } else if (!report->ok()) {
    for (const std::string& problem : report->problems) {
      verdict.violations.push_back("checker: " + problem);
    }
  }

  const std::vector<WorkloadModel::OpMark>& marks = model_->marks();
  PathFs paths(fs);
  for (const auto& [path, history] : model_->histories()) {
    const size_t floor = DurableFloor(path, crash_prefix, roll_forward);

    // Acceptable states: the durable floor state, plus every state from an
    // op that had started (issued at least one journal write, or could have
    // been flushed later) before the crash point.
    const WorkloadModel::PathEvent* floor_event = nullptr;
    std::vector<const WorkloadModel::PathEvent*> candidates;
    for (const WorkloadModel::PathEvent& event : history) {
      if (event.op_index <= floor) {
        floor_event = &event;
        continue;
      }
      const size_t writes_before =
          event.op_index - 1 < marks.size() ? marks[event.op_index - 1].writes_after : 0;
      if (crash_prefix > writes_before) {
        candidates.push_back(&event);
      }
    }
    WorkloadModel::PathState implicit_absent;  // Never-created paths.
    const WorkloadModel::PathState& floor_state =
        floor_event != nullptr ? floor_event->state : implicit_absent;

    // Observe the mounted file system.
    auto stat = paths.Stat(path);
    const bool exists = stat.ok();
    if (!exists && stat.status().code() != ErrorCode::kNotFound) {
      verdict.violations.push_back(path + ": stat failed: " + stat.status().ToString());
      continue;
    }

    auto matches = [&](const WorkloadModel::PathState& state,
                       const std::vector<std::byte>* actual_content) {
      if (!exists) {
        return state.kind == WorkloadModel::StateKind::kAbsent;
      }
      if (stat->type == FileType::kDirectory) {
        return state.kind == WorkloadModel::StateKind::kDir;
      }
      return state.kind == WorkloadModel::StateKind::kFile && actual_content != nullptr &&
             SameContent(*actual_content, state.content);
    };

    std::vector<std::byte> content;
    const std::vector<std::byte>* content_ptr = nullptr;
    if (exists && stat->type != FileType::kDirectory) {
      auto bytes = paths.ReadFile(path);
      if (!bytes.ok()) {
        verdict.violations.push_back(path + ": unreadable: " + bytes.status().ToString());
        continue;
      }
      content = std::move(*bytes);
      content_ptr = &content;
    }

    bool accepted = matches(floor_state, content_ptr);
    for (size_t i = 0; !accepted && i < candidates.size(); ++i) {
      accepted = matches(candidates[i]->state, content_ptr);
      if (!accepted && content_ptr != nullptr && candidates[i]->write.has_value()) {
        accepted = MatchesPartialWrite(content, *candidates[i]->write);
      }
    }
    if (!accepted) {
      std::string observed = !exists ? "absent"
                             : stat->type == FileType::kDirectory
                                 ? "directory"
                                 : std::to_string(content.size()) + "-byte file";
      verdict.violations.push_back(
          path + ": observed " + observed + " matches no acceptable state (floor op " +
          std::to_string(floor) + ", " + std::to_string(candidates.size() + 1) +
          " candidates)");
    }
  }
  return verdict;
}

}  // namespace logfs
