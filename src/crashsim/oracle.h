// WorkloadModel + Oracle: the judge of the crash-state explorer.
//
// The model shadows a workload run op by op: for every path it keeps the
// complete history of logical states (file content versions, absence,
// directory-ness), and for every op the journal length (recorded write
// count) at which the op returned, plus whether the op was a durability
// barrier. From that, given "the disk died after journal write N", the
// Oracle derives what a correct LFS must show after remount:
//
//   * the mount itself must succeed — a crash may lose data, never the
//     volume;
//   * LfsChecker::Check must be clean — no structural damage;
//   * durable state must be fully present: for a roll-forward mount, every
//     path covered by a completed sync/checkpoint or a completed
//     fsync(path); for a checkpoint-only mount, every path covered by a
//     completed sync/checkpoint;
//   * non-durable state must be atomically old-or-new: a path's observed
//     content must equal one of its modeled states between the durable
//     floor and the end of the workload (for in-flight `write` ops, a
//     prefix of the payload is also acceptable — write(2) has no crash
//     atomicity across blocks).
#ifndef LOGFS_SRC_CRASHSIM_ORACLE_H_
#define LOGFS_SRC_CRASHSIM_ORACLE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/lfs/lfs_file_system.h"
#include "src/util/result.h"

namespace logfs {

class WorkloadModel {
 public:
  enum class StateKind { kAbsent, kFile, kDir };

  struct PathState {
    StateKind kind = StateKind::kAbsent;
    std::vector<std::byte> content;  // kFile only.
  };

  // Present when an event came from a `write` op: lets the Oracle accept a
  // torn prefix of the payload (the crash hit mid-flush of this write).
  struct WriteShape {
    std::vector<std::byte> pre;  // Path content before the write.
    uint64_t offset = 0;
    std::vector<std::byte> payload;
  };

  struct PathEvent {
    size_t op_index = 0;
    PathState state;
    std::optional<WriteShape> write;
  };

  // Close-of-op bookkeeping. Index 0 is the baseline (format + mount, a
  // global barrier by construction); workload ops use indices 1..N.
  struct OpMark {
    size_t writes_after = 0;   // Journal length when the op returned.
    bool global_barrier = false;
    std::string fsync_path;    // Non-empty: per-path barrier (roll-forward).
  };

  // --- recording (called by the explorer's executor) ---
  void SetFile(size_t op, const std::string& path, std::vector<std::byte> content);
  void ApplyWrite(size_t op, const std::string& path, uint64_t offset,
                  std::vector<std::byte> payload);
  void SetDir(size_t op, const std::string& path);
  void Remove(size_t op, const std::string& path);
  void Rename(size_t op, const std::string& from, const std::string& to);
  void Truncate(size_t op, const std::string& path, uint64_t size);
  // Closes op `op`; ops must be closed in order, one mark per op index.
  void CloseOp(OpMark mark);

  // --- queries ---
  const std::map<std::string, std::vector<PathEvent>>& histories() const {
    return histories_;
  }
  const std::vector<OpMark>& marks() const { return marks_; }
  // Current (end-of-workload) state of a path.
  const PathState* Current(const std::string& path) const;
  // Journal positions of every completed barrier (for reorder enumeration).
  std::vector<size_t> BarrierWritePositions() const;

 private:
  void PushEvent(size_t op, const std::string& path, PathState state,
                 std::optional<WriteShape> write = std::nullopt);

  std::map<std::string, std::vector<PathEvent>> histories_;
  std::map<std::string, PathState> current_;
  std::vector<OpMark> marks_;
};

// Violations found in one crash image under one mount mode.
struct OracleVerdict {
  bool mount_ok = false;
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
};

class Oracle {
 public:
  Oracle(const WorkloadModel* model, uint64_t sector_count)
      : model_(model), sector_count_(sector_count) {}

  // Mounts `image` (copied to a scratch disk) with roll_forward as given,
  // runs LfsChecker, and validates the durability contract for a crash that
  // cut the journal after `crash_prefix` complete writes.
  OracleVerdict CheckImage(std::span<const std::byte> image, size_t crash_prefix,
                           bool roll_forward, const LfsFileSystem::Options& base_options,
                           bool verify_data) const;

 private:
  // Index of the last op (≤ all marks) whose guarantees were durable at
  // `crash_prefix` for `path` under the given mount mode.
  size_t DurableFloor(const std::string& path, size_t crash_prefix,
                      bool roll_forward) const;

  const WorkloadModel* model_;
  uint64_t sector_count_;
};

}  // namespace logfs

#endif  // LOGFS_SRC_CRASHSIM_ORACLE_H_
