#include "src/crashsim/explorer.h"

#include <cstring>
#include <sstream>

#include "src/crashsim/recording_disk.h"
#include "src/disk/memory_disk.h"
#include "src/fsbase/path.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"

namespace logfs {

namespace {

// Replays the workload against `fs` while shadowing every state change in
// `model`. Op indices are 1-based; the caller closes op 0 (the baseline)
// and op N+1 (the unmount) itself.
Status RunModeledWorkload(const std::vector<TraceOp>& workload, LfsFileSystem* fs,
                          const RecordingDisk* rec, WorkloadModel* model) {
  PathFs paths(fs);
  std::vector<std::byte> buffer;
  for (size_t i = 0; i < workload.size(); ++i) {
    const TraceOp& op = workload[i];
    const size_t op_index = i + 1;
    const uint64_t checkpoints_before = fs->checkpoint_count();
    WorkloadModel::OpMark mark;
    switch (op.kind) {
      case TraceOp::Kind::kMkdir:
        RETURN_IF_ERROR(paths.Mkdir(op.path).status());
        model->SetDir(op_index, op.path);
        break;
      case TraceOp::Kind::kCreate:
        RETURN_IF_ERROR(paths.CreateFile(op.path).status());
        model->SetFile(op_index, op.path, {});
        break;
      case TraceOp::Kind::kWrite: {
        ASSIGN_OR_RETURN(InodeNum ino, paths.Resolve(op.path));
        std::vector<std::byte> payload = TracePayload(op.length, op.seed);
        ASSIGN_OR_RETURN(uint64_t n, fs->Write(ino, op.offset, payload));
        if (n != payload.size()) {
          return IoError("short write during crash exploration workload");
        }
        model->ApplyWrite(op_index, op.path, op.offset, std::move(payload));
        break;
      }
      case TraceOp::Kind::kRead: {
        ASSIGN_OR_RETURN(InodeNum ino, paths.Resolve(op.path));
        buffer.resize(op.length);
        RETURN_IF_ERROR(fs->Read(ino, op.offset, buffer).status());
        break;
      }
      case TraceOp::Kind::kUnlink:
        RETURN_IF_ERROR(paths.Unlink(op.path));
        model->Remove(op_index, op.path);
        break;
      case TraceOp::Kind::kRmdir:
        RETURN_IF_ERROR(paths.Rmdir(op.path));
        model->Remove(op_index, op.path);
        break;
      case TraceOp::Kind::kRename:
        RETURN_IF_ERROR(paths.Rename(op.path, op.path2));
        model->Rename(op_index, op.path, op.path2);
        break;
      case TraceOp::Kind::kTruncate: {
        ASSIGN_OR_RETURN(InodeNum ino, paths.Resolve(op.path));
        RETURN_IF_ERROR(fs->Truncate(ino, op.length));
        model->Truncate(op_index, op.path, op.length);
        break;
      }
      case TraceOp::Kind::kSync:
        RETURN_IF_ERROR(fs->Sync());
        mark.global_barrier = true;
        break;
      case TraceOp::Kind::kFsync: {
        ASSIGN_OR_RETURN(InodeNum ino, paths.Resolve(op.path));
        RETURN_IF_ERROR(fs->Fsync(ino));
        mark.fsync_path = op.path;
        break;
      }
      case TraceOp::Kind::kIdle:
        // The explorer rig runs without a clock; Tick still runs the
        // cleaner / checkpoint policy once.
        RETURN_IF_ERROR(fs->Tick());
        break;
      case TraceOp::Kind::kClean:
        RETURN_IF_ERROR(fs->CleanNow(static_cast<uint32_t>(op.length)).status());
        break;
    }
    // A checkpoint that completed inside a state-neutral op is a global
    // barrier at this op's close: the checkpointed state is exactly the
    // logical state at both ends of the op. (A mid-op checkpoint inside a
    // mutating op commits an intermediate state, so no barrier is claimed —
    // the Oracle's old-or-new/torn acceptance covers what it exposed.)
    const bool state_neutral =
        op.kind == TraceOp::Kind::kSync || op.kind == TraceOp::Kind::kFsync ||
        op.kind == TraceOp::Kind::kRead || op.kind == TraceOp::Kind::kIdle ||
        op.kind == TraceOp::Kind::kClean;
    if (state_neutral && fs->checkpoint_count() > checkpoints_before) {
      mark.global_barrier = true;
    }
    mark.writes_after = rec->write_count();
    model->CloseOp(std::move(mark));
  }
  return OkStatus();
}

}  // namespace

std::string ExploreReport::Summary() const {
  std::ostringstream os;
  os << "crash exploration: " << journal_writes << " journal writes, " << plans
     << " crash images, " << states_checked << " states checked, " << failed_states
     << " failed (" << violations << " violations)";
  return os.str();
}

Result<ExploreReport> ExploreCrashStates(const std::vector<TraceOp>& workload,
                                         const ExploreBudget& budget,
                                         const ExploreRigParams& rig) {
  // 1. Format, snapshot the pristine image, and mount through the recorder.
  MemoryDisk disk(rig.sectors, /*clock=*/nullptr);
  RETURN_IF_ERROR(LfsFileSystem::Format(&disk, rig.lfs));
  std::span<const std::byte> formatted = disk.RawImage();
  std::vector<std::byte> base_image(formatted.begin(), formatted.end());

  RecordingDisk rec(&disk);
  ASSIGN_OR_RETURN(auto fs,
                   LfsFileSystem::Mount(&rec, /*clock=*/nullptr, /*cpu=*/nullptr,
                                        rig.mount_options));

  // 2. Run the workload, shadowing it in the model. Op 0 is the baseline
  // (format + mount): a global barrier — before any workload op, the
  // durable state is "everything absent".
  WorkloadModel model;
  model.CloseOp({rec.write_count(), /*global_barrier=*/true, {}});
  RETURN_IF_ERROR(RunModeledWorkload(workload, fs.get(), &rec, &model));
  fs.reset();  // Unmount syncs: one final checkpoint, one final barrier.
  model.CloseOp({rec.write_count(), /*global_barrier=*/true, {}});

  // 3. Enumerate and judge crash states.
  CrashEnumerationBudget enumeration;
  enumeration.max_boundaries = budget.max_boundaries;
  enumeration.torn_variants = budget.torn_variants;
  enumeration.reorder_within_epoch = budget.reorder_within_epoch;
  enumeration.max_drops_per_boundary = budget.max_drops_per_boundary;

  CrashImageGenerator generator(std::move(base_image), &rec.writes());
  std::vector<CrashPlan> plans =
      generator.Enumerate(enumeration, model.BarrierWritePositions());

  std::vector<bool> modes;
  if (budget.check_roll_forward) modes.push_back(true);
  if (budget.check_checkpoint_only) modes.push_back(false);
  if (modes.empty()) {
    return InvalidArgumentError("crash exploration needs at least one mount mode");
  }

  ExploreReport report;
  report.journal_writes = rec.write_count();
  report.plans = plans.size();
  Oracle oracle(&model, rig.sectors);
  for (const CrashPlan& plan : plans) {
    ASSIGN_OR_RETURN(std::vector<std::byte> image, generator.Materialize(plan));
    for (bool roll_forward : modes) {
      CrashStateResult result;
      result.plan = plan;
      result.roll_forward = roll_forward;
      result.verdict = oracle.CheckImage(image, plan.prefix, roll_forward,
                                         rig.mount_options, budget.verify_data);
      ++report.states_checked;
      if (!result.verdict.ok()) {
        ++report.failed_states;
        report.violations += result.verdict.violations.size();
      }
      // One verdict event per judged image; the oracle's own mounts run
      // clock-less, so events land at t=0 in enumeration order (seq).
      if constexpr (obs::kMetricsEnabled) {
        obs::Tracer().RecordInstant(
            "crashsim", "verdict", 0.0,
            {{"plan", plan.Describe()},
             {"roll_forward", roll_forward ? "true" : "false"},
             {"ok", result.verdict.ok() ? "true" : "false"},
             {"violations", std::to_string(result.verdict.violations.size())}});
      }
      report.results.push_back(std::move(result));
    }
  }
  if constexpr (obs::kMetricsEnabled) {
    obs::Registry().GetCounter("logfs.crashsim.plans").Increment(report.plans);
    obs::Registry().GetCounter("logfs.crashsim.states_checked").Increment(report.states_checked);
    obs::Registry().GetCounter("logfs.crashsim.failed_states").Increment(report.failed_states);
    obs::Registry().GetCounter("logfs.crashsim.violations").Increment(report.violations);
  }
  return report;
}

}  // namespace logfs
