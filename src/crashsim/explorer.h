// ExploreCrashStates: the crash-state exploration driver.
//
// Runs a trace workload against an LFS instance whose block device is
// wrapped in a RecordingDisk, shadowing every op in a WorkloadModel. Then
// enumerates candidate post-crash images with CrashImageGenerator and has
// the Oracle remount and judge each one — under roll-forward recovery,
// checkpoint-only recovery, or both.
//
// The three invariants checked per image (see oracle.h):
//   1. the mount succeeds,
//   2. LfsChecker finds no structural damage,
//   3. every path shows a state the durability contract allows.
#ifndef LOGFS_SRC_CRASHSIM_EXPLORER_H_
#define LOGFS_SRC_CRASHSIM_EXPLORER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/crashsim/crash_image.h"
#include "src/crashsim/oracle.h"
#include "src/lfs/lfs_file_system.h"
#include "src/lfs/lfs_format.h"
#include "src/util/result.h"
#include "src/workload/trace.h"

namespace logfs {

// How much of the crash-state space to cover.
struct ExploreBudget {
  // Forwarded to CrashEnumerationBudget (see crash_image.h).
  size_t max_boundaries = 0;
  std::vector<uint64_t> torn_variants = {1, 4, 8, 12};
  bool reorder_within_epoch = false;
  size_t max_drops_per_boundary = 2;
  // Which mount modes every image is judged under.
  bool check_roll_forward = true;
  bool check_checkpoint_only = true;
  // Have LfsChecker also read every file's bytes back.
  bool verify_data = true;
};

// The simulated rig the workload runs on. Small by default — 24 MB is
// 24 segments, enough for the cleaner to matter while keeping hundreds of
// image materializations cheap.
struct ExploreRigParams {
  ExploreRigParams() {
    lfs.max_inodes = 2048;
    lfs.clean_start_segments = 4;
    lfs.clean_stop_segments = 6;
    lfs.reserved_segments = 3;
  }
  uint64_t sectors = 49152;  // 24 MB.
  LfsParams lfs;
  // Used for the workload mount and for every Oracle remount (roll_forward
  // is overridden per check). Setting unsafe_skip_rollforward_crc here is
  // how the self-test weakens recovery to prove the Oracle notices.
  LfsFileSystem::Options mount_options;
};

// Verdict for one (crash plan, mount mode) pair.
struct CrashStateResult {
  CrashPlan plan;
  bool roll_forward = false;
  OracleVerdict verdict;
};

struct ExploreReport {
  size_t journal_writes = 0;    // Writes recorded during the workload.
  size_t plans = 0;             // Crash images materialized.
  size_t states_checked = 0;    // (plan, mount mode) pairs judged.
  size_t failed_states = 0;     // Pairs with at least one violation.
  size_t violations = 0;        // Total violation strings.
  std::vector<CrashStateResult> results;  // One per pair, in plan order.

  bool ok() const { return failed_states == 0; }
  std::string Summary() const;
};

// Formats a fresh rig, replays `workload` while recording, then enumerates
// and judges crash states under `budget`. Errors are infrastructure
// failures (the workload itself failing, images not materializing);
// invariant violations are reported in the returned ExploreReport.
Result<ExploreReport> ExploreCrashStates(const std::vector<TraceOp>& workload,
                                         const ExploreBudget& budget = {},
                                         const ExploreRigParams& rig = {});

}  // namespace logfs

#endif  // LOGFS_SRC_CRASHSIM_EXPLORER_H_
