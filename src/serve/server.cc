#include "src/serve/server.h"

#include <algorithm>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/tracer.h"

namespace logfs::serve {

FileServer::FileServer(LfsFileSystem* fs, SimClock* clock, EventQueue* events,
                       SimTransport* transport, FileServerOptions options, NodeId node,
                       uint64_t epoch)
    : fs_(fs),
      paths_(fs),
      clock_(clock),
      events_(events),
      transport_(transport),
      options_(std::move(options)),
      node_(0),
      epoch_(epoch),
      leases_(options_.lease_seconds) {
  auto handler = [this](Message&& m) { HandleMessage(std::move(m)); };
  if (node == kFreshNode) {
    node_ = transport_->Register(handler);
  } else {
    node_ = node;
    transport_->Reattach(node_, handler);
  }
  // A first incarnation (epoch 1) starts with an empty world: no outstanding
  // leases exist, so no grace period is needed. Every restart must fence.
  grace_until_ = epoch_ > 1 ? Now() + options_.lease_seconds : 0.0;
  last_seen_synced_seq_ = fs_->synced_seq();
  tick_event_ = events_->ScheduleAfter(options_.tick_seconds, [this] { Tick(); });
  tick_scheduled_ = true;
}

FileServer::~FileServer() { Shutdown(); }

void FileServer::Shutdown() {
  if (!alive_) {
    return;
  }
  alive_ = false;
  transport_->Deregister(node_);
  if (tick_scheduled_) {
    events_->Cancel(tick_event_);
    tick_scheduled_ = false;
  }
  // The min-hold retry captures `this`; it must not outlive the server.
  if (hold_retry_scheduled_) {
    events_->Cancel(hold_retry_event_);
    hold_retry_scheduled_ = false;
  }
}

void FileServer::Tick() {
  if (!alive_) {
    return;
  }
  tick_scheduled_ = false;
  leases_.ExpireDue(Now());
  // Repost outstanding recalls: the transport may have dropped the revoke
  // (or its ack). A holder mid-flush ignores the duplicate; one that already
  // surrendered the lease re-acks immediately; a dead one never answers and
  // expiry reclaims the lease below.
  for (const auto& entry : leases_.Dump(Now())) {
    if (entry.record.recall_posted) {
      Revoke revoke;
      revoke.client_id = entry.client;
      revoke.fh = entry.fh;
      revoke.revoke_id = next_revoke_id_++;
      transport_->Send(static_cast<NodeId>(entry.client), Message::MakeRevoke(revoke));
    }
  }
  RetryParked();
  // Drive the storage manager's own background work. Its Tick may
  // checkpoint, which advances the durable horizon without a client commit.
  (void)fs_->Tick();
  if (fs_->synced_seq() != last_seen_synced_seq_) {
    last_seen_synced_seq_ = fs_->synced_seq();
    if (options_.sync_hook) {
      options_.sync_hook(last_seen_synced_seq_);
    }
  }
  tick_event_ = events_->ScheduleAfter(options_.tick_seconds, [this] { Tick(); });
  tick_scheduled_ = true;
}

void FileServer::HandleMessage(Message&& message) {
  if (!alive_) {
    return;
  }
  switch (message.kind) {
    case Message::Kind::kRequest:
      HandleRequest(std::move(message.request));
      return;
    case Message::Kind::kRevokeAck:
      HandleRevokeAck(message.revoke_ack);
      return;
    case Message::Kind::kResponse:
    case Message::Kind::kRevoke:
      return;  // Not addressed to a server; ignore.
  }
}

void FileServer::HandleRequest(Request&& request) {
  ++requests_received_;
  if constexpr (obs::kMetricsEnabled) {
    static obs::Counter& received = obs::Registry().GetCounter("logfs.serve.req.received");
    received.Increment();
  }
  Session& session = sessions_[request.client_id];
  // Duplicate suppression: a cached reply is resent verbatim; a request
  // that is parked (executed-but-unanswered) is silently absorbed — its
  // response goes out when the park resolves.
  auto cached = session.replies.find(request.request_id);
  if (cached != session.replies.end()) {
    ++duplicates_;
    if constexpr (obs::kMetricsEnabled) {
      static obs::Counter& dups = obs::Registry().GetCounter("logfs.serve.req.duplicates");
      dups.Increment();
    }
    // The resend answers *this* retransmit: quote its attempt number back so
    // the client tags the winning attempt span exactly (the original reply —
    // or an earlier resend — was evidently lost).
    cached->second.attempt = request.attempt;
    if constexpr (obs::kMetricsEnabled) {
      if (request.ctx.active()) {
        obs::Tracer().RecordSpanIds("serve.dedup", "replay", Now(), Now(),
                                    request.ctx.trace_id, obs::Tracer().NextId(),
                                    request.ctx.span_id);
      }
    }
    transport_->Send(static_cast<NodeId>(request.client_id), Message::MakeResponse(cached->second));
    return;
  }
  if (std::find(session.parked_ids.begin(), session.parked_ids.end(), request.request_id) !=
      session.parked_ids.end()) {
    ++duplicates_;
    if constexpr (obs::kMetricsEnabled) {
      // Absorbed into the parked original: remember when the retransmit
      // arrived so the park span grows a "serve.dedup" child covering the
      // tail of the wait the client spent with a retransmit already parked.
      for (Parked& p : parked_) {
        if (p.request.client_id == request.client_id &&
            p.request.request_id == request.request_id) {
          if (p.ctx.active()) p.dup_arrivals.push_back(Now());
          break;
        }
      }
    }
    return;
  }
  // Anything else executes, even ids below max_request_id: with parallel
  // write-backs in flight, a dropped request can be overtaken by its
  // successors, and swallowing its retransmission would strand the client
  // forever. Every protocol op is idempotent (writes are gated by the lease
  // check), so re-executing a genuinely ancient duplicate is harmless.
  session.max_request_id = std::max(session.max_request_id, request.request_id);
  if constexpr (obs::kMetricsEnabled) {
    if (request.ctx.active()) {
      InflightTrace& inf = inflight_[{request.client_id, request.request_id}];
      inf.ctx = obs::TraceContext{request.ctx.trace_id, obs::Tracer().NextId()};
      inf.parent = request.ctx.span_id;
      inf.arrival = Now();
    }
  }
  Execute(request);
}

obs::TraceContext FileServer::InflightCtx(const Request& req) const {
  if constexpr (!obs::kMetricsEnabled) {
    (void)req;
    return {};
  }
  auto it = inflight_.find({req.client_id, req.request_id});
  return it == inflight_.end() ? obs::TraceContext{} : it->second.ctx;
}

void FileServer::Execute(const Request& request) {
  // Everything below — lease decisions, LFS op scopes, park episodes — runs
  // under the request's trace so their spans join its tree.
  obs::TraceContextScope trace_scope(InflightCtx(request));
  Response resp;
  resp.client_id = request.client_id;
  resp.request_id = request.request_id;
  resp.op = request.op;
  resp.server_epoch = epoch_;
  bool parked = false;
  switch (request.op) {
    case OpKind::kOpen:
      DoOpen(request, &resp);
      break;
    case OpKind::kRead:
      DoRead(request, &resp, &parked);
      break;
    case OpKind::kWrite:
      DoWrite(request, &resp);
      break;
    case OpKind::kCommit:
      DoCommit(request, &resp);
      break;
    case OpKind::kClose:
      DoClose(request, &resp);
      break;
    case OpKind::kGetLease:
    case OpKind::kRenew:
      DoLease(request, &resp, &parked);
      break;
    case OpKind::kRelease: {
      if (leases_.Release(request.fh, request.client_id)) {
        RetryParked();
      }
      break;
    }
  }
  if (parked) {
    return;  // Response deferred until the lease situation resolves.
  }
  FinishRequest(request, std::move(resp));
}

void FileServer::FinishRequest(const Request& req, Response resp) {
  resp.mutation_seq = fs_->mutation_seq();
  resp.durable_seq = fs_->synced_seq();
  resp.attempt = req.attempt;  // The send that triggered execution won.
  if constexpr (obs::kMetricsEnabled) {
    auto it = inflight_.find({req.client_id, req.request_id});
    if (it != inflight_.end()) {
      obs::Tracer().RecordSpanIds(
          "serve.handle", OpKindName(req.op), it->second.arrival, Now(),
          it->second.ctx.trace_id, it->second.ctx.span_id, it->second.parent,
          {}, {{"client", std::to_string(req.client_id)}});
      inflight_.erase(it);
    }
  }
  Session& session = sessions_[req.client_id];
  session.replies[req.request_id] = resp;
  while (session.replies.size() > options_.dedup_window) {
    session.replies.erase(session.replies.begin());
  }
  SendResponse(std::move(resp));
}

void FileServer::SendResponse(Response resp) {
  const NodeId to = static_cast<NodeId>(resp.client_id);
  transport_->Send(to, Message::MakeResponse(std::move(resp)));
}

Status FileServer::CheckHandle(uint64_t fh) const {
  if (handle_paths_.count(fh) == 0) {
    return NotFoundError("unknown file handle");
  }
  return OkStatus();
}

void FileServer::DoOpen(const Request& req, Response* resp) {
  auto resolved = paths_.Resolve(req.path);
  InodeNum ino = 0;
  if (resolved.ok()) {
    ino = *resolved;
  } else if (resolved.status().code() == ErrorCode::kNotFound) {
    auto created = paths_.CreateFile(req.path);
    if (!created.ok()) {
      resp->code = created.status().code();
      resp->error = created.status().message();
      return;
    }
    ino = *created;
    // The create itself is a mutation a grant may expose; track it so
    // SyncBeforeGrant covers it too.
    file_mutation_seq_[ino] = fs_->mutation_seq();
    if (options_.open_hook) {
      options_.open_hook(req.path, fs_->mutation_seq());
    }
  } else {
    resp->code = resolved.status().code();
    resp->error = resolved.status().message();
    return;
  }
  auto stat = fs_->Stat(ino);
  if (!stat.ok()) {
    resp->code = stat.status().code();
    resp->error = stat.status().message();
    return;
  }
  resp->fh = ino;
  resp->size = stat->size;
  handle_paths_[ino] = req.path;
}

void FileServer::DoRead(const Request& req, Response* resp, bool* parked) {
  Status handle = CheckHandle(req.fh);
  if (!handle.ok()) {
    resp->code = handle.code();
    resp->error = handle.message();
    return;
  }
  // A read implicitly carries a read lease: acquire (or refresh) it first.
  // Failure to acquire parks the whole request behind a recall.
  if (!AcquireOrPark(req, LeaseKind::kRead, resp)) {
    *parked = true;
    return;
  }
  resp->data.resize(req.length);
  auto n = fs_->Read(req.fh, req.offset, resp->data);
  if (!n.ok()) {
    resp->code = n.status().code();
    resp->error = n.status().message();
    resp->data.clear();
    return;
  }
  resp->data.resize(*n);  // Short read at EOF.
}

void FileServer::DoWrite(const Request& req, Response* resp) {
  Status handle = CheckHandle(req.fh);
  if (!handle.ok()) {
    resp->code = handle.code();
    resp->error = handle.message();
    return;
  }
  // Writes are valid only under a live write lease. A write-back racing its
  // own lease's expiry loses: the data may already have been granted away.
  if (leases_.Held(req.fh, req.client_id, Now()) != LeaseKind::kWrite) {
    ++stale_writebacks_;
    if constexpr (obs::kMetricsEnabled) {
      static obs::Counter& stale =
          obs::Registry().GetCounter("logfs.serve.lease.stale_writebacks");
      stale.Increment();
    }
    resp->code = ErrorCode::kBusy;
    resp->error = "write lease not held (expired or revoked)";
    return;
  }
  auto written = fs_->Write(req.fh, req.offset, req.data);
  if (!written.ok()) {
    resp->code = written.status().code();
    resp->error = written.status().message();
    return;
  }
  file_mutation_seq_[req.fh] = fs_->mutation_seq();
  if (options_.write_hook) {
    options_.write_hook(handle_paths_[req.fh], req.offset, req.data, fs_->mutation_seq());
  }
}

void FileServer::DoCommit(const Request& req, Response* resp) {
  // Commit through the group-commit seam: a flush that already covered the
  // requested horizon costs nothing (logfs.sync.coalesced).
  Status synced = fs_->SyncAsOf(req.commit_seq);
  if (!synced.ok()) {
    resp->code = synced.code();
    resp->error = synced.message();
    return;
  }
  if (fs_->synced_seq() != last_seen_synced_seq_) {
    last_seen_synced_seq_ = fs_->synced_seq();
    if (options_.sync_hook) {
      options_.sync_hook(last_seen_synced_seq_);
    }
  }
}

void FileServer::DoClose(const Request& req, Response* resp) {
  (void)resp;
  // The handle table keeps the path mapping: other clients may hold the
  // file open, and fh values are stable inode numbers. Nothing to tear
  // down beyond the lease.
  if (leases_.Release(req.fh, req.client_id)) {
    RetryParked();
  }
}

void FileServer::DoLease(const Request& req, Response* resp, bool* parked) {
  Status handle = CheckHandle(req.fh);
  if (!handle.ok()) {
    resp->code = handle.code();
    resp->error = handle.message();
    return;
  }
  if (req.op == OpKind::kRenew) {
    double expires = 0.0;
    if (leases_.Renew(req.fh, req.client_id, Now(), &expires)) {
  resp->lease = leases_.Held(req.fh, req.client_id, Now());
      resp->lease_expiry = expires;
    } else {
      // Too late — at (or past) the expiry tick the lease is gone and the
      // file may already be promised to someone else. The client must go
      // back through a full acquire.
      resp->code = ErrorCode::kBusy;
      resp->error = "lease expired; re-acquire";
    }
    return;
  }
  if (!AcquireOrPark(req, req.lease, resp)) {
    *parked = true;
  }
}

bool FileServer::AcquireOrPark(const Request& req, LeaseKind kind, Response* resp) {
  if (kind == LeaseKind::kNone) {
    resp->code = ErrorCode::kInvalidArgument;
    resp->error = "lease kind required";
    return true;
  }
  // Write leases exist to accept mutations; a demoted (read-only) mount can
  // never accept them, so fail the grant cleanly instead of letting the
  // client cache writes it could never write back.
  if (kind == LeaseKind::kWrite && fs_->read_only()) {
    resp->code = ErrorCode::kReadOnly;
    resp->error = "server is read-only; write lease unavailable";
    return true;
  }
  // A holder whose own lease is under recall gets nothing new until the
  // recall resolves (ack, release, or expiry). Granting here would refresh
  // the very lease being surrendered — the client would trust a term the
  // imminent ack is about to release.
  if (leases_.RecallPosted(req.fh, req.client_id)) {
    Park(req, "recall_frozen", {leases_.HolderTrace(req.fh, req.client_id)});
    return false;
  }
  const double now = Now();
  // Writer fairness: a parked conflicting acquire acts as a barrier. Without
  // it a waiting writer starves — its revokes clear the current readers, but
  // a steady stream of *new* readers re-acquires the instant the old leases
  // fall, and every retry finds fresh conflicts (a livelock under Zipf
  // sharing). Newcomers queue behind the parked request instead; RetryParked
  // drains in arrival order, so the writer goes first. Reclaims are exempt:
  // a reclaim proves a still-valid lease from the dead incarnation, which a
  // merely parked request can never outrank. Also exempt: a holder
  // re-asking for what it already holds. A client that voided a grant (a
  // revoke crossed it in flight) recovers by re-asking, and barring that
  // re-ask strands the lease — the server thinks it is held, the holder
  // knows it is not, and at hold expiry the recall meets no state and the
  // lease rotates to the next writer, who voids for the same reason (a
  // four-way rotation observed under Zipf write sharing). The refresh
  // cannot starve the queue: the moment the parked writer's recall posts,
  // the lease freezes and no re-grant or renewal extends it.
  const LeaseKind already = leases_.Held(req.fh, req.client_id, now);
  const bool holder_refresh = already == LeaseKind::kWrite || already == kind;
  if (!req.reclaim && !holder_refresh) {
    for (const Parked& p : parked_) {
      const LeaseKind parked_kind =
          p.request.op == OpKind::kRead ? LeaseKind::kRead : p.request.lease;
      if (p.request.fh == req.fh && p.request.client_id != req.client_id &&
          (parked_kind == LeaseKind::kWrite || kind == LeaseKind::kWrite)) {
        Park(req, "barrier", {p.ctx.trace_id});
        return false;
      }
    }
  }
  if (now < grace_until_) {
    // Post-restart grace: only clients proving a still-valid lease from the
    // dead incarnation may proceed; everyone else waits out the fence.
    const bool reclaim_ok = req.reclaim && now < req.claimed_expiry;
    if (!reclaim_ok) {
      Park(req, "grace");
      return false;
    }
  }
  LeaseManager::AcquireResult result = leases_.Acquire(req.fh, req.client_id, kind, now);
  if (!result.granted) {
    // Recall every conflicting holder (once per lease term each), then park.
    // Holders inside their minimum hold are left alone for now; the parked
    // request retries when the youngest such hold expires.
    double earliest_retry = 0.0;
    bool recall_active = false;
    std::vector<uint64_t> holder_traces;
    for (uint64_t holder : result.conflicts) {
      holder_traces.push_back(leases_.HolderTrace(req.fh, holder));
      if (leases_.RecallPosted(req.fh, holder)) {
        recall_active = true;
      }
      if (!leases_.RecallPosted(req.fh, holder)) {
        const double hold_left =
            options_.min_hold_seconds - (now - leases_.HeldSince(req.fh, holder));
        // The nanosecond slack absorbs double rounding: at the scheduled
        // retry instant `now - granted_at` can land a few ulps short of the
        // hold, and a residual hold of ~1e-16 would reschedule the retry at
        // a time that rounds back to `now` — an infinite same-instant loop.
        if (hold_left > 1e-9) {
          const double retry_at = now + hold_left;
          if (earliest_retry == 0.0 || retry_at < earliest_retry) {
            earliest_retry = retry_at;
          }
          continue;
        }
        leases_.MarkRecallPosted(req.fh, holder);
        recall_active = true;
        ++revokes_sent_;
        if constexpr (obs::kMetricsEnabled) {
          static obs::Counter& revokes =
              obs::Registry().GetCounter("logfs.serve.lease.revokes");
          revokes.Increment();
        }
        Revoke revoke;
        revoke.client_id = holder;
        revoke.fh = req.fh;
        revoke.revoke_id = next_revoke_id_++;
        // Ambient context = the acquirer's handle span: the holder's flush
        // trace links back to the request that forced the recall.
        revoke.ctx = obs::CurrentTraceContext();
        transport_->Send(static_cast<NodeId>(holder), Message::MakeRevoke(revoke));
      }
    }
    Park(req, recall_active ? "conflict" : "min_hold", std::move(holder_traces));
    if (earliest_retry > 0.0 &&
        (!hold_retry_scheduled_ || earliest_retry < hold_retry_at_)) {
      if (hold_retry_scheduled_) {
        events_->Cancel(hold_retry_event_);
      }
      hold_retry_at_ = earliest_retry;
      hold_retry_scheduled_ = true;
      hold_retry_event_ = events_->ScheduleAt(earliest_retry, [this] {
        hold_retry_scheduled_ = false;
        if (alive_) {
          RetryParked();
        }
      });
    }
    return false;
  }
  // Pre-grant durability: everything this lease could observe must survive
  // a server crash, or a cached copy would outlive the authoritative one.
  Status synced = SyncBeforeGrant(req.fh);
  if (!synced.ok()) {
    leases_.Release(req.fh, req.client_id);
    resp->code = synced.code();
    resp->error = synced.message();
    return true;
  }
  resp->lease = leases_.Held(req.fh, req.client_id, Now());
  resp->lease_expiry = result.expires_at;
  // Grant-time size: the one instant the client may trust it outright. While
  // the lease stays valid no one else can change it, so the client's cached
  // size stays exact without further Stats.
  if (auto stat = fs_->Stat(req.fh); stat.ok()) {
    resp->size = stat->size;
  }
  return true;
}

Status FileServer::SyncBeforeGrant(uint64_t fh) {
  auto it = file_mutation_seq_.find(fh);
  if (it == file_mutation_seq_.end()) {
    return OkStatus();
  }
  RETURN_IF_ERROR(fs_->SyncAsOf(it->second));
  if (fs_->synced_seq() != last_seen_synced_seq_) {
    last_seen_synced_seq_ = fs_->synced_seq();
    if (options_.sync_hook) {
      options_.sync_hook(last_seen_synced_seq_);
    }
  }
  return OkStatus();
}

void FileServer::Park(const Request& req, const char* reason,
                      std::vector<uint64_t> links) {
  Session& session = sessions_[req.client_id];
  session.parked_ids.push_back(req.request_id);
  Parked p;
  p.request = req;
  p.since = Now();
  if constexpr (obs::kMetricsEnabled) {
    p.ctx = InflightCtx(req);
    if (p.ctx.active()) {
      p.span_id = obs::Tracer().NextId();
      p.reason = reason;
      links.erase(std::remove(links.begin(), links.end(), uint64_t{0}), links.end());
      // Self-links happen on holder refresh (the blocker is the parker's own
      // earlier grant); drop them, the tree already contains that trace.
      links.erase(std::remove(links.begin(), links.end(), p.ctx.trace_id), links.end());
      p.links = std::move(links);
    }
  }
  parked_.push_back(std::move(p));
  if constexpr (obs::kMetricsEnabled) {
    static obs::Counter& parked = obs::Registry().GetCounter("logfs.serve.req.parked");
    parked.Increment();
  }
}

void FileServer::RetryParked() {
  if (parked_.empty()) {
    return;
  }
  // Swap out the queue: a retried request that parks again re-enters it,
  // and a grant may unblock several waiters (shared read leases) at once.
  std::vector<Parked> waiting;
  waiting.swap(parked_);
  for (Parked& p : waiting) {
    Session& session = sessions_[p.request.client_id];
    auto& ids = session.parked_ids;
    ids.erase(std::remove(ids.begin(), ids.end(), p.request.request_id), ids.end());
    if constexpr (obs::kMetricsEnabled) {
      // The park episode ends here (the retry may park again — that becomes
      // a fresh span). Links name the traces that were blocking at park
      // time; absorbed retransmits become dedup_parked children covering
      // the tail of the wait.
      if (p.ctx.active()) {
        const double unparked = Now();
        obs::Tracer().RecordSpanIds(
            "serve.park", p.reason, p.since, unparked, p.ctx.trace_id,
            p.span_id, p.ctx.span_id, p.links,
            {{"op", OpKindName(p.request.op)},
             {"fh", std::to_string(p.request.fh)}});
        for (double dup_at : p.dup_arrivals) {
          obs::Tracer().RecordSpanIds(
              "serve.dedup", "absorbed", std::max(dup_at, p.since), unparked,
              p.ctx.trace_id, obs::Tracer().NextId(), p.span_id);
        }
      }
    }
    Execute(p.request);
  }
}

void FileServer::HandleRevokeAck(const RevokeAck& ack) {
  // The ack promises the holder's dirty blocks are applied *and committed*
  // (the client writes back, commits, then acks), so releasing here cannot
  // lose anything a successor could observe. Only a release that actually
  // dropped a lease can unblock a parked request; duplicate acks (reposted
  // revokes, crossed retransmissions) skip the sweep — under a delivery
  // backlog they arrive by the thousand at one sim instant, and sweeping
  // the whole parked queue for each is quadratic host time for nothing.
  if (leases_.Release(ack.fh, ack.client_id)) {
    RetryParked();
  }
}

std::vector<FileServer::ParkedInfo> FileServer::DumpParked() const {
  std::vector<ParkedInfo> out;
  out.reserve(parked_.size());
  for (const Parked& p : parked_) {
    ParkedInfo info;
    info.client = p.request.client_id;
    info.request_id = p.request.request_id;
    info.op = p.request.op;
    info.fh = p.request.fh;
    info.want = p.request.op == OpKind::kRead ? LeaseKind::kRead : p.request.lease;
    info.since = p.since;
    out.push_back(info);
  }
  return out;
}

std::vector<FileServer::SessionInfo> FileServer::DumpSessions() const {
  std::vector<SessionInfo> out;
  out.reserve(sessions_.size());
  for (const auto& [client, session] : sessions_) {
    out.push_back(SessionInfo{client, session.max_request_id, session.replies.size()});
  }
  return out;
}

}  // namespace logfs::serve
