// FileServer: the multi-client face of the LFS storage manager.
//
// One server owns one mounted LfsFileSystem and speaks the src/serve/
// protocol (message.h) over a SimTransport. Consistency is lease-based
// (lease.h); the rules that make the whole thing recoverable:
//
//   * Writes require a valid write lease; write-backs arriving after the
//     holder's lease died are rejected (kBusy) — the revoke-races-expiry
//     case — and counted as logfs.serve.lease.stale_writebacks.
//   * A lease grant that would expose another holder's recent writes first
//     makes them durable: the server tracks the newest LFS mutation per
//     file and calls SyncAsOf before granting, which the group-commit seam
//     coalesces into an already-covering flush whenever possible
//     (logfs.sync.coalesced). Hence anything a freshly granted lease can
//     observe is reproducible by roll-forward recovery after a crash.
//   * Conflicting acquires are parked, recall callbacks go to the current
//     holders, and the parked request proceeds on ack, release, or expiry —
//     whichever comes first. The lease table lives nowhere but memory.
//
// Crash recovery: a new incarnation mounts the recovered file system, bumps
// the epoch, and opens a grace period of one lease term. During grace only
// reclaim acquires (clients proving a still-valid lease from the old epoch)
// are granted; everything else parks until every dead-incarnation lease
// must have expired. Clients notice the epoch change in the next response
// and replay their non-durable writes under reclaimed leases.
#ifndef LOGFS_SRC_SERVE_SERVER_H_
#define LOGFS_SRC_SERVE_SERVER_H_

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/fsbase/path.h"
#include "src/lfs/lfs_file_system.h"
#include "src/obs/trace_context.h"
#include "src/serve/lease.h"
#include "src/serve/message.h"
#include "src/serve/transport.h"
#include "src/sim/event_queue.h"

namespace logfs::serve {

struct FileServerOptions {
  double lease_seconds = 30.0;
  // Background cadence: lease-expiry sweep, parked-grant retries, and the
  // file system's own Tick (write-behind, checkpoints, cleaner).
  double tick_seconds = 1.0;
  // Cached responses kept per client for duplicate suppression.
  size_t dedup_window = 64;
  // Minimum hold: a lease younger than this is never recalled — the
  // conflicting acquire parks and the recall is retried at hold expiry.
  // Several transport round trips long, so a grant always reaches its holder
  // with no revoke chasing it. Without the quiet window two writers
  // ping-ponging over one file can each void every grant they receive (a
  // revoke from the previous handoff is forever in flight when the grant
  // lands) and the protocol livelocks; with it, each handoff completes at
  // least one operation.
  double min_hold_seconds = 0.002;
  // Observability hooks for the consistency model (cluster.h): called after
  // a write lands in the LFS and after a sync advances the durable horizon.
  std::function<void(const std::string& path, uint64_t offset,
                     std::span<const std::byte> data, uint64_t mutation_seq)>
      write_hook;
  std::function<void(uint64_t synced_seq)> sync_hook;
  // Called when an Open had to create the file — a mutation the crash
  // oracle must model just like a write.
  std::function<void(const std::string& path, uint64_t mutation_seq)> open_hook;
};

class FileServer {
 public:
  // `node` re-binds an existing transport id (server restart keeps its
  // address); pass kFreshNode to register a new endpoint. `epoch` must
  // exceed every previous incarnation's.
  static constexpr NodeId kFreshNode = static_cast<NodeId>(-1);
  FileServer(LfsFileSystem* fs, SimClock* clock, EventQueue* events,
             SimTransport* transport, FileServerOptions options = {},
             NodeId node = kFreshNode, uint64_t epoch = 1);
  ~FileServer();

  FileServer(const FileServer&) = delete;
  FileServer& operator=(const FileServer&) = delete;

  NodeId node() const { return node_; }
  uint64_t epoch() const { return epoch_; }
  // End of the post-restart grace period (absolute sim time).
  double grace_until() const { return grace_until_; }

  // Stops serving: detaches from the transport and cancels the tick. The
  // cluster calls this to simulate a server crash (state is simply lost).
  void Shutdown();

  // Background maintenance; normally self-scheduled every tick_seconds.
  void Tick();

  LfsFileSystem* fs() const { return fs_; }
  const LeaseManager& leases() const { return leases_; }

  // --- introspection (lfs_inspect serve, tests) ---
  struct ParkedInfo {
    uint64_t client = 0;
    uint64_t request_id = 0;
    OpKind op = OpKind::kGetLease;
    uint64_t fh = 0;
    LeaseKind want = LeaseKind::kNone;
    double since = 0.0;
  };
  std::vector<ParkedInfo> DumpParked() const;
  struct SessionInfo {
    uint64_t client = 0;
    uint64_t max_request_id = 0;
    size_t cached_replies = 0;
  };
  std::vector<SessionInfo> DumpSessions() const;
  const std::map<uint64_t, std::string>& handle_paths() const { return handle_paths_; }

  uint64_t requests_received() const { return requests_received_; }
  uint64_t duplicates_suppressed() const { return duplicates_; }
  uint64_t revokes_sent() const { return revokes_sent_; }
  uint64_t stale_writebacks() const { return stale_writebacks_; }

 private:
  struct Session {
    uint64_t max_request_id = 0;            // Highest id ever executed/parked.
    std::map<uint64_t, Response> replies;   // Dedup cache, newest ids kept.
    std::vector<uint64_t> parked_ids;       // Ids parked, awaiting a lease.
  };
  struct Parked {
    Request request;
    double since = 0.0;
    // Tracing (inert when the request carried no context): the park episode
    // becomes a "serve.park" span under the request's handle span, linking
    // to the traces that blocked it; duplicates absorbed while parked
    // become "serve.dedup" child spans.
    obs::TraceContext ctx;        // {trace, handle span} of the parked request
    uint64_t span_id = 0;         // pre-minted park span id
    const char* reason = "conflict";
    std::vector<uint64_t> links;  // blocking holders' trace ids
    std::vector<double> dup_arrivals;
  };
  // Tracing state of a request between arrival and response. Keyed by
  // (client, request id); lives in this incarnation only, like the dedup
  // cache — a crash loses the spans of in-flight requests, nothing else.
  struct InflightTrace {
    obs::TraceContext ctx;   // {trace id, handle span id}
    uint64_t parent = 0;     // the client attempt span that reached us
    double arrival = 0.0;
  };

  double Now() const { return clock_->Now(); }
  void HandleMessage(Message&& message);
  void HandleRequest(Request&& request);
  void HandleRevokeAck(const RevokeAck& ack);

  // Executes `request` now or parks it (lease conflict / grace period).
  // Parked requests produce no response until unparked.
  void Execute(const Request& request);
  // The op bodies; each fills `resp` (already stamped with ids/epoch).
  void DoOpen(const Request& req, Response* resp);
  void DoRead(const Request& req, Response* resp, bool* parked);
  void DoWrite(const Request& req, Response* resp);
  void DoCommit(const Request& req, Response* resp);
  void DoClose(const Request& req, Response* resp);
  void DoLease(const Request& req, Response* resp, bool* parked);

  // Acquire with the full protocol: grace fencing, conflict parking with
  // recall callbacks, and pre-grant durability. True = granted (lease fields
  // of `resp` filled); false = parked (caller must not respond).
  bool AcquireOrPark(const Request& req, LeaseKind kind, Response* resp);
  // Makes every mutation of `fh` durable before a grant exposes it.
  Status SyncBeforeGrant(uint64_t fh);
  void Park(const Request& req, const char* reason, std::vector<uint64_t> links = {});
  void RetryParked();
  obs::TraceContext InflightCtx(const Request& req) const;
  void SendResponse(Response resp);
  void FinishRequest(const Request& req, Response resp);
  Status CheckHandle(uint64_t fh) const;

  LfsFileSystem* fs_;
  PathFs paths_;
  SimClock* clock_;
  EventQueue* events_;
  SimTransport* transport_;
  FileServerOptions options_;
  NodeId node_;
  uint64_t epoch_;
  double grace_until_ = 0.0;
  bool alive_ = true;
  uint64_t tick_event_ = 0;
  bool tick_scheduled_ = false;

  LeaseManager leases_;
  std::map<uint64_t, Session> sessions_;     // client id -> session.
  std::vector<Parked> parked_;               // In arrival order.
  std::map<std::pair<uint64_t, uint64_t>, InflightTrace> inflight_;
  // At most one pending min-hold retry, at the earliest requested deadline.
  // One event re-runs the whole parked queue, so per-request events would
  // only multiply: each retry re-parks N waiters which would schedule N
  // more retries — quadratic event growth on a hot file.
  uint64_t hold_retry_event_ = 0;
  double hold_retry_at_ = 0.0;
  bool hold_retry_scheduled_ = false;
  std::map<uint64_t, std::string> handle_paths_;   // fh -> path (open files).
  std::map<uint64_t, uint64_t> file_mutation_seq_; // fh -> newest LFS mutation.
  uint64_t next_revoke_id_ = 1;

  uint64_t requests_received_ = 0;
  uint64_t duplicates_ = 0;
  uint64_t revokes_sent_ = 0;
  uint64_t stale_writebacks_ = 0;
  uint64_t last_seen_synced_seq_ = 0;
};

}  // namespace logfs::serve

#endif  // LOGFS_SRC_SERVE_SERVER_H_
