// Client: a simulated file-service client with a private, lease-consistent
// block cache.
//
// The availability/consistency story (Gray & Cheriton):
//   * Reads are served from the private cache whenever the client holds a
//     valid (read or write) lease on the file and the blocks are resident —
//     no server round trip, and the lease guarantees freshness: any writer
//     must first revoke this lease, and the revoke completes only after the
//     holder's dirty blocks are written back, committed, and acked.
//   * Writes are write-back: they require a valid write lease and land only
//     in the private cache. Dirty blocks reach the server on revoke,
//     release, close, commit, or eviction pressure — then are committed
//     (group-committed server-side) before anyone else may see the file.
//   * Every RPC is retransmitted on timeout with exponential backoff and
//     deduplicated server-side, so the drop/reorder transport fault mode
//     costs latency, never correctness.
//
// Crash handling, both directions:
//   * Client crash: Crash() drops all state. The server's recalls go
//     unanswered; its leases expire on the sim clock; writers parked on the
//     dead client's lease proceed at expiry. Unwritten dirty data is lost —
//     that is the contract of a volatile client cache.
//   * Server crash: leases remain time-valid through the outage, so cached
//     reads keep working. On the first response from the new incarnation
//     (higher epoch) — or a kNotFound for a handle the old one knew — the
//     client re-opens the path, *reclaims* its still-valid write lease
//     through the grace fence, replays every non-durable block, commits,
//     and only then continues. Blocks already covered by a durable commit
//     are never replayed (the durable_seq piggyback retires them).
#ifndef LOGFS_SRC_SERVE_CLIENT_H_
#define LOGFS_SRC_SERVE_CLIENT_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/serve/message.h"
#include "src/serve/transport.h"
#include "src/sim/event_queue.h"
#include "src/util/result.h"

namespace logfs::serve {

struct ClientOptions {
  uint32_t block_size = 4096;
  // Clean-block cache capacity (dirty and not-yet-durable blocks are pinned
  // on top of this; they are the client's replay state).
  size_t cache_blocks = 256;
  // Retransmission timeout; doubles per retry up to max_rto_seconds.
  double rto_seconds = 0.01;
  double max_rto_seconds = 1.0;
  // Renew asynchronously when a lease being used has less than this
  // fraction of its term left.
  double renew_fraction = 0.25;
  // Parallel write-back RPCs per flush batch.
  size_t writeback_window = 4;
  // Consistency-model hooks (cluster.h): local write application (the
  // serialization point under the exclusive lease) and read observation.
  std::function<void(const std::string& path, uint64_t offset,
                     std::span<const std::byte> data)>
      write_hook;
  std::function<void(const std::string& path, uint64_t offset,
                     std::span<const std::byte> data, bool from_cache)>
      read_hook;
  // Fires once per completed op with its client-observed latency — the
  // per-sample feed the latency-percentile benches need (the aggregate
  // latencies() map only keeps count/sum/max).
  std::function<void(const char* kind, double seconds)> latency_hook;
};

class Client {
 public:
  // Registers on the transport; the returned node id is the client_id used
  // on the wire. `server` is the server's node.
  Client(SimClock* clock, EventQueue* events, SimTransport* transport, NodeId server,
         ClientOptions options = {});

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  uint64_t id() const { return node_; }

  using StatusCb = std::function<void(Status)>;
  using OpenCb = std::function<void(Result<uint64_t>)>;
  using ReadCb = std::function<void(Result<std::vector<std::byte>>)>;

  // All operations are asynchronous; completions fire from the event queue.
  // Ops queue per client and run one at a time, in order, like a
  // single-threaded application process.
  void Open(const std::string& path, OpenCb cb);
  void Read(uint64_t handle, uint64_t offset, uint64_t length, ReadCb cb);
  void Write(uint64_t handle, uint64_t offset, std::vector<std::byte> data, StatusCb cb);
  // Flushes every dirty block and makes all of this client's writes durable.
  void Commit(StatusCb cb);
  void Close(uint64_t handle, StatusCb cb);

  // Dies abruptly: drops every lease, cached block, and pending op without
  // telling anyone. The transport blackholes future traffic to this node.
  void Crash();
  bool crashed() const { return crashed_; }

  // Last server epoch observed; exposed for restart tests.
  uint64_t server_epoch() const { return server_epoch_; }
  // True while a user op (or its recovery work) is in flight or queued.
  bool busy() const { return busy_ || !op_queue_.empty(); }

  struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;
    uint64_t writebacks = 0;   // Dirty blocks pushed to the server.
    uint64_t replays = 0;      // Blocks replayed after a server restart.
    uint64_t discards = 0;     // Non-durable blocks lost with a dead lease.
    uint64_t evictions = 0;
    size_t cached_blocks = 0;  // Live totals.
    size_t dirty_blocks = 0;
    size_t unstable_blocks = 0;
  };
  CacheStats cache_stats() const;

  struct OpLatency {
    uint64_t count = 0;
    double sum_seconds = 0.0;
    double max_seconds = 0.0;
  };
  // Client-observed latency per op kind ("open", "read", ...).
  const std::map<std::string, OpLatency>& latencies() const { return latencies_; }

  struct HandleInfo {
    uint64_t handle = 0;
    std::string path;
    LeaseKind lease = LeaseKind::kNone;
    double lease_expiry = 0.0;
    size_t cached = 0;
    size_t dirty = 0;
  };
  std::vector<HandleInfo> DumpHandles() const;

 private:
  struct CachedBlock {
    std::vector<std::byte> data;   // Always block_size long (zero-padded).
    bool dirty = false;      // Local write not yet at the server.
    bool unstable = false;   // At the server but not yet durable.
    uint64_t server_seq = 0; // Server mutation seq of the last write-back.
    uint64_t seq_epoch = 0;  // Server epoch server_seq belongs to.
    uint64_t lru = 0;
  };
  struct Handle {
    std::string path;
    uint64_t fh = 0;
    uint64_t epoch = 0;      // Server epoch the fh was obtained from.
    bool open = false;
    LeaseKind lease = LeaseKind::kNone;
    double lease_expiry = 0.0;
    double lease_term = 0.0;  // Term length observed at grant (drives renewal).
    uint64_t size = 0;
    std::map<uint64_t, CachedBlock> blocks;
    bool renew_inflight = false;
    // A recall for this file's write lease is being serviced out-of-band
    // (dirty blocks flushing, commit, then ack). While set, new local writes
    // and lease acquires for the file wait — a write slipped in mid-flush
    // would be discarded with the surrendered lease.
    bool recalled = false;
    // Action number of the last revoke processed for this file. A lease
    // grant carried by a response to a request sent before that action is
    // void: we already promised the server the lease was gone, and the
    // delayed (or dedup-cache-replayed) grant reflects a pre-revoke world.
    uint64_t last_revoke_action = 0;
  };
  struct Outstanding {
    Request request;
    std::function<void(Response&&)> cb;
    uint64_t timer = 0;
    double rto = 0.0;
    // Tracing (inert when ctx is inactive): the whole exchange becomes a
    // "serve.rpc" span under `ctx`, with one "serve.attempt" child per send.
    // The response names the attempt that won; the rest were wasted.
    obs::TraceContext ctx;   // parent context (usually the op root span)
    uint64_t rpc_span = 0;   // pre-minted "serve.rpc" span id
    double call_time = 0.0;
    std::vector<std::pair<double, uint64_t>> attempts;  // (send time, span id)
  };

  double Now() const;
  Handle* Find(uint64_t handle);

  // --- RPC layer ---
  // `ctx` overrides the trace parent for this exchange; nullptr means the
  // ambient foreground op (op_ctx_). Out-of-band work (revoke flushes) runs
  // under its own root trace and must pass it explicitly.
  void Call(Request request, std::function<void(Response&&)> cb,
            const obs::TraceContext* ctx = nullptr);
  void Retransmit(uint64_t request_id);
  void OnMessage(Message&& message);
  void OnResponse(Response&& response);
  // Emits the serve.rpc span and its serve.attempt children for a completed
  // exchange; `response.attempt` names the winner exactly.
  void RecordRpcSpans(const Outstanding& out, const Response& response);
  void OnRevoke(const Revoke& revoke);
  // Services a write-lease recall immediately, concurrent with whatever op
  // is in flight: flush dirty blocks, commit, invalidate, ack. Running this
  // out-of-band (not behind the op queue) is what keeps a client whose
  // foreground op is parked on another file's lease from deadlocking the
  // cluster until expiry. The flush runs under its own trace (`flush_ctx`),
  // linked to the conflicting request's trace (`link_trace`) that forced it.
  void FlushForRevoke(uint64_t hid, RevokeAck ack, obs::TraceContext flush_ctx,
                      uint64_t link_trace, double started);
  void RetireDurable(uint64_t durable_seq);

  // --- op queueing ---
  void Enqueue(const char* kind, std::function<void(std::function<void()>)> body,
               bool front = false);
  void StartNext();

  // --- async building blocks (each calls `then` exactly once) ---
  // Re-opens the handle if the server epoch moved (or `force`), then
  // replays non-durable blocks under a reclaimed lease.
  void EnsureHandle(uint64_t handle, bool force, StatusCb then);
  void ReplayIfNeeded(uint64_t handle, uint64_t server_size, StatusCb then);
  void EnsureWriteLease(uint64_t handle, bool reclaim, StatusCb then);
  // Writes the given blocks back (bounded parallelism); `then` fires after
  // every ack. Blocks that fail with a lost lease are surfaced as kBusy.
  void WritebackBlocks(uint64_t handle, std::vector<uint64_t> indices, StatusCb then,
                       obs::TraceContext ctx = {});
  void CommitSeq(uint64_t seq, StatusCb then, obs::TraceContext ctx = {});
  // Applies a write to the cache (fetching partially-covered blocks first).
  void ApplyLocalWrite(uint64_t handle, uint64_t offset, std::vector<std::byte> data,
                       StatusCb then);
  void FetchBlock(uint64_t handle, uint64_t index, StatusCb then);

  // --- op bodies ---
  void DoRead(uint64_t handle, uint64_t offset, uint64_t length, bool retried, ReadCb cb);
  void DoWrite(uint64_t handle, uint64_t offset, std::vector<std::byte> data, bool retried,
               StatusCb cb);
  void DoClose(uint64_t handle, StatusCb cb, std::function<void()> done);

  // --- cache ---
  bool LeaseValid(const Handle& h) const;
  void UpdateSizeFromGrant(Handle& h, uint64_t server_size);
  bool CacheCovers(const Handle& h, uint64_t offset, uint64_t length) const;
  std::vector<std::byte> ReadFromCache(Handle& h, uint64_t offset, uint64_t length);
  void InstallClean(Handle& h, uint64_t offset, std::span<const std::byte> data);
  void MaybeRenew(uint64_t handle);
  void InvalidateFile(Handle& h);
  void EvictForSpace();
  size_t CleanCount() const;

  void RecordLatency(const char* kind, double start);

  SimClock* clock_;
  EventQueue* events_;
  SimTransport* transport_;
  NodeId server_;
  NodeId node_;
  ClientOptions options_;
  bool crashed_ = false;

  uint64_t next_request_id_ = 1;
  // Totally orders request sends against revoke arrivals (sim time can tie;
  // this cannot). Bumped once per Call and once per revoke processed.
  uint64_t action_seq_ = 0;
  std::map<uint64_t, Outstanding> outstanding_;
  uint64_t server_epoch_ = 0;
  uint64_t durable_seq_ = 0;
  uint64_t max_write_seq_ = 0;  // Newest server seq among my write-backs.

  uint64_t next_handle_ = 1;
  std::map<uint64_t, Handle> handles_;
  uint64_t lru_counter_ = 0;

  std::deque<std::function<void()>> op_queue_;
  bool busy_ = false;
  // Trace of the foreground op currently executing (inactive between ops).
  // Ops run one at a time, so a single slot suffices; RPCs issued while an
  // op runs inherit it as their parent unless Call is given an explicit ctx.
  obs::TraceContext op_ctx_;

  CacheStats stats_;
  std::map<std::string, OpLatency> latencies_;
};

}  // namespace logfs::serve

#endif  // LOGFS_SRC_SERVE_CLIENT_H_
