// The serve-layer wire protocol (DESIGN.md §6f).
//
// Requests flow client -> server, responses flow back; the server can also
// originate lease-recall callbacks (kRevoke), which the client answers with
// kRevokeAck carrying its dirty blocks for the recalled file. Messages are
// plain structs — the transport is simulated, so there is no byte
// serialization — but the protocol is built as if there were a real network:
// requests carry monotonically increasing per-client ids, the client
// retransmits on timeout, and the server deduplicates, giving at-most-once
// execution over a lossy, reordering transport.
#ifndef LOGFS_SRC_SERVE_MESSAGE_H_
#define LOGFS_SRC_SERVE_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/trace_context.h"
#include "src/util/status.h"

namespace logfs::serve {

// Lease modes, per Gray & Cheriton: read leases are shareable, the write
// lease is exclusive and covers reads too.
enum class LeaseKind : uint8_t { kNone = 0, kRead, kWrite };

inline const char* LeaseKindName(LeaseKind kind) {
  switch (kind) {
    case LeaseKind::kNone:
      return "none";
    case LeaseKind::kRead:
      return "read";
    case LeaseKind::kWrite:
      return "write";
  }
  return "?";
}

enum class OpKind : uint8_t {
  kOpen = 0,   // Resolve (creating if absent) a path to a file handle.
  kRead,       // Read [offset, offset+length) of a handle.
  kWrite,      // Apply a write; used both for foreground writes and
               // revocation/close write-backs of dirty client blocks.
  kCommit,     // Make every server mutation up to the op durable (group
               // commit: coalesced into an already-covering flush).
  kClose,      // Drop the handle; releases the caller's lease.
  kGetLease,   // Acquire or upgrade a lease on a handle.
  kRenew,      // Extend a currently valid lease.
  kRelease,    // Voluntarily drop a lease (after writing dirty blocks back).
};

inline const char* OpKindName(OpKind op) {
  switch (op) {
    case OpKind::kOpen:
      return "open";
    case OpKind::kRead:
      return "read";
    case OpKind::kWrite:
      return "write";
    case OpKind::kCommit:
      return "commit";
    case OpKind::kClose:
      return "close";
    case OpKind::kGetLease:
      return "get_lease";
    case OpKind::kRenew:
      return "renew";
    case OpKind::kRelease:
      return "release";
  }
  return "?";
}

struct Request {
  // The client's transport address doubles as its identity: the cluster
  // registers the server first (node 0) and clients after, so responses and
  // recalls are addressed by client_id directly.
  uint64_t client_id = 0;
  uint64_t request_id = 0;  // Per-client, monotonically increasing.
  OpKind op = OpKind::kOpen;
  std::string path;                // kOpen.
  uint64_t fh = 0;                 // File handle (server-side: inode number).
  uint64_t offset = 0;             // kRead / kWrite.
  uint64_t length = 0;             // kRead.
  std::vector<std::byte> data;     // kWrite payload.
  LeaseKind lease = LeaseKind::kNone;  // kGetLease / kRenew.
  uint64_t commit_seq = 0;         // kCommit: durability horizon requested.
  // Lease reclaim across a server restart: the client proves it held a
  // still-valid lease from the previous incarnation. Reclaims pass the
  // post-restart grace fence; fresh acquires wait it out.
  bool reclaim = false;
  double claimed_expiry = 0.0;
  // Causal trace context (observability only — the server never branches on
  // it, so traced and untraced runs execute identically). span_id names the
  // client's per-attempt send span; the server parents its handling span
  // under it. Retransmits bump `attempt` so the response can say exactly
  // which send won.
  obs::TraceContext ctx;
  uint32_t attempt = 0;
};

struct Response {
  uint64_t client_id = 0;
  uint64_t request_id = 0;
  OpKind op = OpKind::kOpen;
  ErrorCode code = ErrorCode::kOk;
  std::string error;               // Human-readable detail when code != kOk.
  uint64_t fh = 0;                 // kOpen.
  uint64_t size = 0;               // kOpen: current file size.
  std::vector<std::byte> data;     // kRead payload.
  LeaseKind lease = LeaseKind::kNone;  // Granted/now-held lease, if any.
  double lease_expiry = 0.0;           // Absolute sim time the lease dies.
  // Server incarnation. Bumped every restart; a changed epoch tells the
  // client its handles and leases are void and pending ops must be replayed.
  uint64_t server_epoch = 0;
  // Server mutation sequence after this op; quoting it back in a kCommit
  // asks for durability of exactly this much history.
  uint64_t mutation_seq = 0;
  // Durable horizon (newest synced mutation) at response time. Piggybacked
  // on every response so clients can retire replay state opportunistically.
  uint64_t durable_seq = 0;
  // Which client send attempt this response answers: the attempt that was
  // executed (or, for a dedup-cache resend, the retransmit that triggered
  // the resend). Lets the client tag the winning attempt span exactly.
  uint32_t attempt = 0;
};

// Server -> client lease recall. The client answers with RevokeAck after
// writing dirty blocks for the file back (kWrite requests), or immediately
// when its copy is clean. Revoke is an optimization only: a client that
// never answers is bounded by lease expiry.
struct Revoke {
  uint64_t client_id = 0;  // Addressee.
  uint64_t fh = 0;
  uint64_t revoke_id = 0;  // Echoed in the ack.
  // Trace of the conflicting request that forced the recall; the client's
  // flush work links back to it so the blocked writer's trace tree shows
  // who it was waiting on.
  obs::TraceContext ctx;
};

struct RevokeAck {
  uint64_t client_id = 0;
  uint64_t fh = 0;
  uint64_t revoke_id = 0;
};

struct Message {
  enum class Kind : uint8_t { kRequest, kResponse, kRevoke, kRevokeAck };
  Kind kind = Kind::kRequest;
  Request request;      // kRequest.
  Response response;    // kResponse.
  Revoke revoke;        // kRevoke.
  RevokeAck revoke_ack; // kRevokeAck.

  static Message MakeRequest(Request req) {
    Message m;
    m.kind = Kind::kRequest;
    m.request = std::move(req);
    return m;
  }
  static Message MakeResponse(Response resp) {
    Message m;
    m.kind = Kind::kResponse;
    m.response = std::move(resp);
    return m;
  }
  static Message MakeRevoke(Revoke rev) {
    Message m;
    m.kind = Kind::kRevoke;
    m.revoke = rev;
    return m;
  }
  static Message MakeRevokeAck(RevokeAck ack) {
    Message m;
    m.kind = Kind::kRevokeAck;
    m.revoke_ack = ack;
    return m;
  }
};

}  // namespace logfs::serve

#endif  // LOGFS_SRC_SERVE_MESSAGE_H_
