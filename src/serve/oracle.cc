#include "src/serve/oracle.h"

#include <sstream>
#include <utility>

#include "src/crashsim/oracle.h"
#include "src/serve/driver.h"

namespace logfs::serve {

std::string ServeCrashReport::Summary() const {
  std::ostringstream os;
  os << "serve crash sweep: " << ops_completed << " client ops (" << drive_errors
     << " errors), " << online_reads_checked << " reads checked online ("
     << online_violations << " stale), " << journal_writes << " journal writes, " << plans
     << " crash images, " << states_checked << " states checked, " << failed_states
     << " failed";
  return os.str();
}

Result<ServeCrashReport> ExploreServeCrashStates(const ServeCrashSweepParams& params) {
  ServeClusterParams cp = params.cluster;
  cp.record_disk = true;
  cp.clients = params.load.clients;
  cp.mount_options.roll_forward = true;  // The protocol's recovery contract.

  WorkloadModel model;
  size_t op_index = 0;
  uint64_t last_modeled_seq = 0;
  RecordingDisk* rec = nullptr;  // Bound after Create; hooks fire only later.

  cp.server_open_hook = [&](const std::string& path, uint64_t seq) {
    model.SetFile(++op_index, path, {});
    model.CloseOp({rec->write_count(), /*global_barrier=*/false, {}});
    last_modeled_seq = seq;
  };
  cp.server_write_hook = [&](const std::string& path, uint64_t offset,
                             std::span<const std::byte> data, uint64_t seq) {
    model.ApplyWrite(++op_index, path, offset, {data.begin(), data.end()});
    model.CloseOp({rec->write_count(), /*global_barrier=*/false, {}});
    last_modeled_seq = seq;
  };
  cp.server_sync_hook = [&](uint64_t synced_seq) {
    // Positional barrier: only sound when the horizon covers every mutation
    // modeled so far (see header).
    if (synced_seq >= last_modeled_seq) {
      ++op_index;
      model.CloseOp({rec->write_count(), /*global_barrier=*/true, {}});
    }
  };

  ASSIGN_OR_RETURN(auto cluster, ServeCluster::Create(cp));
  rec = cluster->recording();
  // Op 0, the baseline: format + mount, durably empty.
  model.CloseOp({rec->write_count(), /*global_barrier=*/true, {}});

  ServeLoad load = MakeSharedLoad(params.load);
  DriveOptions drive_options;
  drive_options.close_at_end = true;
  ASSIGN_OR_RETURN(DriveStats drive, DriveSharedLoad(*cluster, load, drive_options));

  // Final quiesce: the complete image must show exactly the end state.
  RETURN_IF_ERROR(cluster->fs()->Sync());
  ++op_index;
  model.CloseOp({rec->write_count(), /*global_barrier=*/true, {}});

  CrashImageGenerator generator(cluster->base_image(), &rec->writes());
  std::vector<CrashPlan> plans =
      generator.Enumerate(params.budget, model.BarrierWritePositions());

  ServeCrashReport report;
  report.journal_writes = rec->write_count();
  report.plans = plans.size();
  report.ops_completed = drive.ops_completed;
  report.drive_errors = drive.errors;
  report.online_reads_checked = cluster->shadow().reads_checked();
  report.online_violations = cluster->shadow().violation_count();
  for (const std::string& v : cluster->shadow().violations()) {
    if (report.violations.size() < params.max_violation_reports) {
      report.violations.push_back("online: " + v);
    }
  }
  for (const std::string& e : drive.first_errors) {
    if (report.violations.size() < params.max_violation_reports) {
      report.violations.push_back("drive: " + e);
    }
  }

  Oracle oracle(&model, cp.sectors);
  for (const CrashPlan& plan : plans) {
    ASSIGN_OR_RETURN(std::vector<std::byte> image, generator.Materialize(plan));
    OracleVerdict verdict = oracle.CheckImage(image, plan.prefix, /*roll_forward=*/true,
                                              cp.mount_options, params.verify_data);
    ++report.states_checked;
    if (!verdict.ok()) {
      ++report.failed_states;
      for (const std::string& v : verdict.violations) {
        if (report.violations.size() < params.max_violation_reports) {
          report.violations.push_back(plan.Describe() + ": " + v);
        }
      }
    }
  }
  return report;
}

}  // namespace logfs::serve
