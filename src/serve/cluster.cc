#include "src/serve/cluster.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace logfs::serve {

// ---------------------------------------------------------------------------
// ShadowModel

void ShadowModel::OnWrite(const std::string& path, uint64_t offset,
                          std::span<const std::byte> data) {
  std::vector<std::byte>& f = files_[path];
  if (f.size() < offset + data.size()) {
    f.resize(offset + data.size(), std::byte{0});
  }
  std::copy(data.begin(), data.end(), f.begin() + static_cast<ptrdiff_t>(offset));
}

bool ShadowModel::OnRead(const std::string& path, uint64_t offset,
                         std::span<const std::byte> data, bool from_cache) {
  ++reads_checked_;
  static const std::vector<std::byte> kEmpty;
  auto it = files_.find(path);
  const std::vector<std::byte>& f = it == files_.end() ? kEmpty : it->second;
  for (size_t i = 0; i < data.size(); ++i) {
    const uint64_t pos = offset + i;
    const std::byte expect = pos < f.size() ? f[pos] : std::byte{0};
    if (data[i] != expect) {
      ++violation_count_;
      if (violations_.size() < 16) {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "stale read: %s@%llu expected 0x%02x got 0x%02x (%s)", path.c_str(),
                      static_cast<unsigned long long>(pos), std::to_integer<unsigned>(expect),
                      std::to_integer<unsigned>(data[i]), from_cache ? "cached" : "served");
        violations_.emplace_back(buf);
      }
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// ServeCluster

ServeCluster::ServeCluster(ServeClusterParams params) : params_(std::move(params)) {}

Result<std::unique_ptr<ServeCluster>> ServeCluster::Create(ServeClusterParams params) {
  std::unique_ptr<ServeCluster> cluster(new ServeCluster(std::move(params)));
  RETURN_IF_ERROR(cluster->Init());
  return cluster;
}

BlockDevice* ServeCluster::device() {
  return recording_ ? static_cast<BlockDevice*>(recording_.get())
                    : static_cast<BlockDevice*>(disk_.get());
}

Status ServeCluster::Init() {
  clock_ = std::make_unique<SimClock>();
  cpu_ = std::make_unique<CpuModel>(clock_.get(), params_.mips);
  disk_ = std::make_unique<MemoryDisk>(params_.sectors, clock_.get());
  RETURN_IF_ERROR(LfsFileSystem::Format(disk_.get(), params_.lfs));
  if (params_.record_disk) {
    base_image_.assign(disk_->RawImage().begin(), disk_->RawImage().end());
    recording_ = std::make_unique<RecordingDisk>(disk_.get());
  }
  ASSIGN_OR_RETURN(auto fs, LfsFileSystem::Mount(device(), clock_.get(), cpu_.get(),
                                                 params_.mount_options));
  fs_ = std::move(fs);
  events_ = std::make_unique<EventQueue>(clock_.get());
  transport_ = std::make_unique<SimTransport>(clock_.get(), events_.get(), params_.transport);
  server_ = std::make_unique<FileServer>(fs_.get(), clock_.get(), events_.get(),
                                         transport_.get(), MakeServerOptions());
  server_node_ = server_->node();
  server_epoch_ = server_->epoch();
  for (size_t i = 0; i < params_.clients; ++i) {
    AddClient();
  }
  return OkStatus();
}

FileServerOptions ServeCluster::MakeServerOptions() {
  FileServerOptions so;
  so.lease_seconds = params_.lease_seconds;
  so.tick_seconds = params_.server_tick_seconds;
  so.write_hook = params_.server_write_hook;
  so.sync_hook = params_.server_sync_hook;
  so.open_hook = params_.server_open_hook;
  return so;
}

Client* ServeCluster::AddClient() {
  clients_.push_back(std::make_unique<Client>(clock_.get(), events_.get(), transport_.get(),
                                              server_node_, MakeClientOptions()));
  return clients_.back().get();
}

ClientOptions ServeCluster::MakeClientOptions() {
  ClientOptions o = params_.client;
  auto user_write = params_.client.write_hook;
  auto user_read = params_.client.read_hook;
  const bool strict = params_.strict_shadow;
  // The shadow always tracks writes (they define the serialization order);
  // read verification is what strict mode toggles.
  o.write_hook = [this, user_write](const std::string& path, uint64_t offset,
                                    std::span<const std::byte> data) {
    shadow_.OnWrite(path, offset, data);
    if (user_write) {
      user_write(path, offset, data);
    }
  };
  o.read_hook = [this, strict, user_read](const std::string& path, uint64_t offset,
                                          std::span<const std::byte> data, bool from_cache) {
    if (strict) {
      shadow_.OnRead(path, offset, data, from_cache);
    }
    if (user_read) {
      user_read(path, offset, data, from_cache);
    }
  };
  return o;
}

size_t ServeCluster::Run(size_t max_events) { return events_->RunUntilIdle(max_events); }

size_t ServeCluster::RunFor(double seconds, size_t max_events) {
  const double deadline = clock_->Now() + seconds;
  const size_t ran = events_->RunUntil(deadline, max_events);
  if (clock_->Now() < deadline) {
    clock_->AdvanceTo(deadline);
  }
  return ran;
}

Status ServeCluster::Settle(size_t max_events) {
  auto any_busy = [this] {
    for (const auto& c : clients_) {
      if (!c->crashed() && c->busy()) {
        return true;
      }
    }
    return false;
  };
  size_t ran = 0;
  while (any_busy()) {
    if (ran >= max_events) {
      return BusyError("cluster did not settle within the event budget");
    }
    if (events_->empty()) {
      return BusyError("clients busy but no events pending (protocol stall)");
    }
    events_->RunOne();
    ++ran;
  }
  return OkStatus();
}

void ServeCluster::CrashServer() {
  if (!server_) {
    return;
  }
  server_node_ = server_->node();
  server_epoch_ = server_->epoch();
  server_->Shutdown();
  server_.reset();
  // Freeze the disk exactly as the dead incarnation last left it. The LFS
  // destructor syncs on the way out — an orderly unmount a crash would never
  // get — so snapshot first and put the crash-instant bytes back after.
  std::vector<std::byte> frozen(disk_->RawImage().begin(), disk_->RawImage().end());
  crash_journal_len_ = recording_ ? recording_->write_count() : 0;
  fs_.reset();
  auto img = disk_->MutableRawImage();
  std::copy(frozen.begin(), frozen.end(), img.begin());
}

Status ServeCluster::RestartServer() {
  if (server_) {
    return BusyError("server already running");
  }
  ASSIGN_OR_RETURN(auto fs, LfsFileSystem::Mount(device(), clock_.get(), cpu_.get(),
                                                 params_.mount_options));
  fs_ = std::move(fs);
  server_ = std::make_unique<FileServer>(fs_.get(), clock_.get(), events_.get(),
                                         transport_.get(), MakeServerOptions(),
                                         server_node_, server_epoch_ + 1);
  server_epoch_ = server_->epoch();
  return OkStatus();
}

}  // namespace logfs::serve
