#include "src/serve/driver.h"

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "src/fsbase/path.h"

namespace logfs::serve {

namespace {

Status EnsureParentDirs(LfsFileSystem* fs, const std::vector<std::string>& paths) {
  PathFs pathfs(fs);
  std::set<std::string> parents;
  for (const std::string& path : paths) {
    const size_t slash = path.rfind('/');
    if (slash != std::string::npos && slash > 0) {
      parents.insert(path.substr(0, slash));
    }
  }
  for (const std::string& dir : parents) {
    auto made = pathfs.MkdirAll(dir);
    if (!made.ok() && made.status().code() != ErrorCode::kExists) {
      return made.status();
    }
  }
  return OkStatus();
}

struct ClientRun {
  size_t index = 0;                     // Next schedule entry.
  std::map<size_t, uint64_t> handles;   // File index -> client handle.
  std::vector<size_t> close_order;      // Files in open order, for teardown.
  bool done = false;
};

// The whole drive's mutable state, shared by every callback. Lives until
// the event loop drains, which DriveSharedLoad guarantees before returning.
struct Drive {
  ServeCluster* cluster = nullptr;
  const ServeLoad* load = nullptr;
  DriveOptions options;
  DriveStats stats;
  std::vector<ClientRun> runs;
  std::function<void(size_t)> step;

  void Fail(size_t client, const std::string& what, const Status& status) {
    ++stats.errors;
    if (stats.first_errors.size() < 8) {
      stats.first_errors.push_back("client " + std::to_string(client) + " " + what + ": " +
                                   status.ToString());
    }
  }
};

void CloseNext(const std::shared_ptr<Drive>& d, size_t c) {
  ClientRun& r = d->runs[c];
  if (r.close_order.empty()) {
    r.done = true;
    return;
  }
  const size_t file = r.close_order.back();
  r.close_order.pop_back();
  const uint64_t handle = r.handles[file];
  r.handles.erase(file);
  d->cluster->client(c)->Close(handle, [d, c](Status st) {
    if (!st.ok()) {
      d->Fail(c, "close", st);
    }
    CloseNext(d, c);
  });
}

void Execute(const std::shared_ptr<Drive>& d, size_t c) {
  ClientRun& r = d->runs[c];
  const ServeOp& op = d->load->schedules[c][r.index];
  Client* cl = d->cluster->client(c);
  auto advance = [d, c] {
    ++d->runs[c].index;
    d->step(c);
  };
  if (op.kind == ServeOp::Kind::kCommit) {
    cl->Commit([d, c, advance](Status st) {
      if (st.ok()) {
        ++d->stats.ops_completed;
      } else {
        d->Fail(c, "commit", st);
      }
      advance();
    });
    return;
  }
  auto it = r.handles.find(op.file);
  if (it == r.handles.end()) {
    // Lazy open; re-enter Execute with the handle in place.
    cl->Open(d->load->paths[op.file], [d, c, file = op.file](Result<uint64_t> h) {
      if (!h.ok()) {
        d->Fail(c, "open", h.status());
        ++d->runs[c].index;
        d->step(c);
        return;
      }
      d->runs[c].handles[file] = *h;
      d->runs[c].close_order.push_back(file);
      Execute(d, c);
    });
    return;
  }
  const uint64_t handle = it->second;
  if (op.kind == ServeOp::Kind::kRead) {
    cl->Read(handle, op.offset, op.length, [d, c, advance](Result<std::vector<std::byte>> got) {
      if (got.ok()) {
        ++d->stats.ops_completed;
      } else {
        d->Fail(c, "read", got.status());
      }
      advance();
    });
  } else {
    cl->Write(handle, op.offset,
              DrivePayload(c, d->runs[c].index, d->options.payload_salt, op.length),
              [d, c, advance](Status st) {
                if (st.ok()) {
                  ++d->stats.ops_completed;
                } else {
                  d->Fail(c, "write", st);
                }
                advance();
              });
  }
}

void Step(const std::shared_ptr<Drive>& d, size_t c) {
  ClientRun& r = d->runs[c];
  const auto& schedule = d->load->schedules[c];
  if (r.index >= schedule.size()) {
    if (d->options.close_at_end && !r.handles.empty()) {
      CloseNext(d, c);
    } else {
      r.done = true;
    }
    return;
  }
  const double think = schedule[r.index].think_seconds;
  if (think > 0.0) {
    d->cluster->events()->ScheduleAfter(think, [d, c] { Execute(d, c); });
  } else {
    Execute(d, c);
  }
}

}  // namespace

std::vector<std::byte> DrivePayload(uint64_t client, uint64_t op_index, uint64_t salt,
                                    size_t length) {
  std::vector<std::byte> data(length);
  uint64_t x = (client + 1) * 0x9E3779B97F4A7C15ull + op_index * 0xBF58476D1CE4E5B9ull +
               salt * 0x94D049BB133111EBull + 1;
  for (size_t i = 0; i < length; ++i) {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    data[i] = static_cast<std::byte>((x * 0x2545F4914F6CDD1Dull) >> 56);
  }
  return data;
}

Result<DriveStats> DriveSharedLoad(ServeCluster& cluster, const ServeLoad& load,
                                   DriveOptions options) {
  if (load.schedules.size() > cluster.num_clients()) {
    return InvalidArgumentError("load has more schedules than the cluster has clients");
  }
  RETURN_IF_ERROR(EnsureParentDirs(cluster.fs(), load.paths));

  auto d = std::make_shared<Drive>();
  d->cluster = &cluster;
  d->load = &load;
  d->options = options;
  d->runs.resize(load.schedules.size());
  d->step = [d_weak = std::weak_ptr<Drive>(d)](size_t c) {
    if (auto drive = d_weak.lock()) {
      Step(drive, c);
    }
  };
  for (size_t c = 0; c < load.schedules.size(); ++c) {
    Step(d, c);
  }

  auto all_done = [&] {
    for (const ClientRun& r : d->runs) {
      if (!r.done) {
        return false;
      }
    }
    return true;
  };
  size_t ran = 0;
  while (!all_done()) {
    if (ran >= options.max_events) {
      return BusyError("drive exceeded its event budget (protocol livelock?)");
    }
    if (cluster.events()->empty()) {
      return BusyError("drive stalled: clients unfinished but no events pending");
    }
    cluster.events()->RunOne();
    ++ran;
  }
  return d->stats;
}

}  // namespace logfs::serve
