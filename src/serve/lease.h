// LeaseManager: Gray & Cheriton-style leases over file handles.
//
// A lease is (holder, kind, expiry). Read leases are shareable; the write
// lease is exclusive against every other holder. All validity is judged
// against the sim clock: a lease is valid strictly while now < expires_at —
// at the expiry tick itself it is dead, so a renewal arriving exactly at
// expiry is too late (the server may already have granted the file away; the
// strict boundary is what makes that race benign).
//
// The table is deliberately ephemeral: nothing is persisted, and the
// recovery story is the classic one — after a server crash the new
// incarnation simply refuses to grant conflicting leases until a full lease
// term has passed (the grant fence), by which time every lease issued by the
// dead incarnation has expired on its own. Clients holding still-valid
// leases keep serving cached reads through the outage and replay their
// pending writes on reconnect.
#ifndef LOGFS_SRC_SERVE_LEASE_H_
#define LOGFS_SRC_SERVE_LEASE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/serve/message.h"

namespace logfs::serve {

struct LeaseRecord {
  LeaseKind kind = LeaseKind::kNone;
  double expires_at = 0.0;
  // When the current grant (or re-grant) was issued. The server's minimum
  // hold reads this: a lease younger than a few round trips is never
  // recalled, so the grant always reaches its holder before any revoke can.
  double granted_at = 0.0;
  // A recall has been posted to the holder. While set the lease is frozen:
  // it cannot be renewed or re-granted (the server parks the holder's own
  // acquires), only acked, released, or left to expire.
  bool recall_posted = false;
  // Trace id of the request that acquired (or last re-granted) this lease.
  // Observability only: a request parked behind this holder records the id
  // as a span link, naming the actual blocker in its trace tree.
  uint64_t trace_id = 0;
};

class LeaseManager {
 public:
  explicit LeaseManager(double lease_seconds) : lease_seconds_(lease_seconds) {}

  double lease_seconds() const { return lease_seconds_; }

  struct AcquireResult {
    bool granted = false;
    double expires_at = 0.0;              // Valid when granted.
    std::vector<uint64_t> conflicts;      // Holders to recall when not.
  };

  // Tries to grant `kind` on `fh` to `client`. Expired holders are pruned
  // first (their count is reported through expired()). A holder acquiring a
  // kind it already has — or a read when it holds write — is a cheap
  // re-grant with a fresh term.
  AcquireResult Acquire(uint64_t fh, uint64_t client, LeaseKind kind, double now);

  // Extends a *currently valid, un-recalled* lease by a full term. Returns
  // false when the client holds no valid lease (expired or never granted) or
  // the lease is under recall: the client must go back through Acquire.
  bool Renew(uint64_t fh, uint64_t client, double now, double* expires_at);

  // Voluntarily drops the holder's lease. False when none was held (already
  // expired — the release raced expiry and lost; harmless).
  bool Release(uint64_t fh, uint64_t client);

  // Drops the client's every lease (close/crash handling); returns how many.
  size_t ReleaseAll(uint64_t client);

  // Prunes every expired lease in the table. Returns the number pruned.
  size_t ExpireDue(double now);

  // Valid lease held by `client` on `fh`, or kNone.
  LeaseKind Held(uint64_t fh, uint64_t client, double now) const;

  // When the holder's current grant was issued; 0.0 when none is held.
  double HeldSince(uint64_t fh, uint64_t client) const;

  // Marks a recall as posted so the server sends each revoke once per term.
  void MarkRecallPosted(uint64_t fh, uint64_t client);
  bool RecallPosted(uint64_t fh, uint64_t client) const;

  // Trace id recorded at grant time; 0 when the holder is unknown or the
  // grant predated tracing.
  uint64_t HolderTrace(uint64_t fh, uint64_t client) const;

  // Monotonic counters for metrics and the inspect verb.
  uint64_t grants() const { return grants_; }
  uint64_t renewals() const { return renewals_; }
  uint64_t expiries() const { return expiries_; }
  uint64_t releases() const { return releases_; }

  struct TableEntry {
    uint64_t fh = 0;
    uint64_t client = 0;
    LeaseRecord record;
  };
  // The live table, ordered by (fh, client) — for lfs_inspect serve.
  std::vector<TableEntry> Dump(double now) const;
  size_t ActiveCount(double now) const;

 private:
  static bool Valid(const LeaseRecord& r, double now) { return now < r.expires_at; }
  // Removes expired holders of one file, counting them as expiries.
  void PruneFile(uint64_t fh, double now);

  double lease_seconds_;
  // fh -> holder -> record. std::map keeps enumeration deterministic.
  std::map<uint64_t, std::map<uint64_t, LeaseRecord>> table_;
  uint64_t grants_ = 0;
  uint64_t renewals_ = 0;
  uint64_t expiries_ = 0;
  uint64_t releases_ = 0;
};

}  // namespace logfs::serve

#endif  // LOGFS_SRC_SERVE_LEASE_H_
