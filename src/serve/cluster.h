// ServeCluster: one simulated machine room — a FileServer over an LFS on a
// simulated disk, N clients, and the lossy transport between them — plus an
// online consistency referee.
//
// Everything shares one SimClock and one EventQueue, so a whole multi-client
// run is deterministic: same seed, same interleaving, same verdict.
//
// The referee (ShadowModel) exploits the lease protocol's own claim: write
// leases are exclusive, so the order in which client-side writes apply IS
// the serialization order. The shadow applies them to an in-memory copy and
// checks every read (cached or served) byte-for-byte against it. Any stale
// cached read — a block surviving a revoke, a lease outliving its term, a
// delayed grant believed — shows up as a mismatch. Strict checking assumes
// no write is discarded (no lease allowed to expire with dirty data), which
// holds in scenarios whose think times are well under the lease term;
// crash/expiry scenarios turn it off and use end-state convergence checks
// and the crash-image oracle instead.
#ifndef LOGFS_SRC_SERVE_CLUSTER_H_
#define LOGFS_SRC_SERVE_CLUSTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/crashsim/recording_disk.h"
#include "src/disk/memory_disk.h"
#include "src/lfs/lfs_file_system.h"
#include "src/serve/client.h"
#include "src/serve/server.h"
#include "src/serve/transport.h"
#include "src/sim/cpu_model.h"
#include "src/sim/event_queue.h"
#include "src/sim/sim_clock.h"
#include "src/util/result.h"

namespace logfs::serve {

// Byte-accurate referee for lease-serialized writes (see file comment).
class ShadowModel {
 public:
  void OnWrite(const std::string& path, uint64_t offset, std::span<const std::byte> data);
  // Returns false (and logs) on a mismatch.
  bool OnRead(const std::string& path, uint64_t offset, std::span<const std::byte> data,
              bool from_cache);

  uint64_t reads_checked() const { return reads_checked_; }
  uint64_t violation_count() const { return violation_count_; }
  const std::vector<std::string>& violations() const { return violations_; }
  const std::map<std::string, std::vector<std::byte>>& files() const { return files_; }

 private:
  std::map<std::string, std::vector<std::byte>> files_;
  uint64_t reads_checked_ = 0;
  uint64_t violation_count_ = 0;
  std::vector<std::string> violations_;  // First few, for diagnostics.
};

struct ServeClusterParams {
  ServeClusterParams() {
    lfs.max_inodes = 2048;
    lfs.clean_start_segments = 4;
    lfs.clean_stop_segments = 6;
    lfs.reserved_segments = 3;
    mount_options.roll_forward = true;
  }
  uint64_t sectors = 49152;  // 24 MB rig, same as the crash explorer's.
  double mips = 10.0;
  LfsParams lfs;
  LfsFileSystem::Options mount_options;
  TransportParams transport;
  double lease_seconds = 30.0;
  double server_tick_seconds = 1.0;
  ClientOptions client;  // Hooks set here are chained after the shadow's.
  size_t clients = 2;
  // Wrap the disk in a RecordingDisk (crash-image sweeps need the journal).
  bool record_disk = false;
  // Byte-check every client read against the shadow.
  bool strict_shadow = true;
  // Forwarded to FileServerOptions (the serve crash oracle listens here).
  decltype(FileServerOptions{}.write_hook) server_write_hook;
  decltype(FileServerOptions{}.sync_hook) server_sync_hook;
  decltype(FileServerOptions{}.open_hook) server_open_hook;
};

class ServeCluster {
 public:
  static Result<std::unique_ptr<ServeCluster>> Create(ServeClusterParams params = {});

  ServeCluster(const ServeCluster&) = delete;
  ServeCluster& operator=(const ServeCluster&) = delete;

  SimClock* clock() { return clock_.get(); }
  EventQueue* events() { return events_.get(); }
  SimTransport* transport() { return transport_.get(); }
  LfsFileSystem* fs() { return fs_.get(); }
  FileServer* server() { return server_.get(); }
  size_t num_clients() const { return clients_.size(); }
  Client* client(size_t i) { return clients_[i].get(); }
  // Registers another client mid-run (post-crash readers, late joiners).
  Client* AddClient();

  // Drives the event loop. Run: until idle (or the event cap). RunFor:
  // until `seconds` of sim time pass. Settle: until every client is idle —
  // the loop the scenario drivers end on.
  size_t Run(size_t max_events = 2'000'000);
  size_t RunFor(double seconds, size_t max_events = 2'000'000);
  Status Settle(size_t max_events = 20'000'000);

  // Server crash: the in-memory world (lease table, sessions, fs caches)
  // vanishes; the disk is frozen exactly as last written — the unmount-time
  // sync a destructor would do is undone. RestartServer remounts (rolling
  // the log forward) and starts the next epoch behind a grace fence.
  void CrashServer();
  Status RestartServer();
  void CrashClient(size_t i) { clients_[i]->Crash(); }

  const ShadowModel& shadow() const { return shadow_; }
  // Journal length at the last CrashServer (RecordingDisk coordinates).
  size_t crash_journal_len() const { return crash_journal_len_; }
  RecordingDisk* recording() { return recording_.get(); }
  const std::vector<std::byte>& base_image() const { return base_image_; }
  MemoryDisk* disk() { return disk_.get(); }

 private:
  explicit ServeCluster(ServeClusterParams params);
  Status Init();
  BlockDevice* device();
  ClientOptions MakeClientOptions();
  FileServerOptions MakeServerOptions();

  ServeClusterParams params_;
  std::unique_ptr<SimClock> clock_;
  std::unique_ptr<CpuModel> cpu_;
  std::unique_ptr<MemoryDisk> disk_;
  std::vector<std::byte> base_image_;  // Post-format, pre-mount image.
  std::unique_ptr<RecordingDisk> recording_;
  std::unique_ptr<LfsFileSystem> fs_;
  std::unique_ptr<EventQueue> events_;
  std::unique_ptr<SimTransport> transport_;
  std::unique_ptr<FileServer> server_;
  std::vector<std::unique_ptr<Client>> clients_;

  ShadowModel shadow_;
  NodeId server_node_ = 0;
  uint64_t server_epoch_ = 1;
  size_t crash_journal_len_ = 0;
};

}  // namespace logfs::serve

#endif  // LOGFS_SRC_SERVE_CLUSTER_H_
