// SimTransport: the in-sim message fabric between clients and the server.
//
// Every Send schedules a delivery event on the shared EventQueue after the
// configured one-way latency plus (optionally) seeded uniform jitter — two
// messages whose jittered delays cross arrive reordered, which is how the
// fault mode exercises the protocol's sequencing. A seeded drop probability
// silently discards messages; correctness then rests on client
// retransmission and server-side duplicate suppression, never on the fabric.
//
// Endpoints are registered handlers. A deregistered endpoint (a crashed
// client or server) blackholes its traffic, which is indistinguishable from
// loss — exactly the failure model leases are built for.
#ifndef LOGFS_SRC_SERVE_TRANSPORT_H_
#define LOGFS_SRC_SERVE_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/serve/message.h"
#include "src/sim/event_queue.h"
#include "src/sim/sim_clock.h"
#include "src/util/rng.h"

namespace logfs::serve {

using NodeId = uint32_t;

struct TransportParams {
  // One-way propagation + service latency. 200 us ~ a fast 1990s LAN RPC.
  double latency_seconds = 200e-6;
  // Uniform extra delay in [0, jitter_seconds); > 0 lets messages overtake
  // each other (reordering). Deterministic per seed.
  double jitter_seconds = 0.0;
  // Probability a message is silently dropped. Deterministic per seed.
  double drop_probability = 0.0;
  uint64_t seed = 0x5eedf00d;
};

class SimTransport {
 public:
  SimTransport(SimClock* clock, EventQueue* events, TransportParams params = {});

  using Handler = std::function<void(Message&&)>;

  // Registers an endpoint; the returned id is its address.
  NodeId Register(Handler handler);
  // Drops the endpoint's handler: all traffic to it vanishes (crash model).
  void Deregister(NodeId node);
  // Re-attaches a handler to an existing id (restart after a crash).
  void Reattach(NodeId node, Handler handler);

  // Queues `message` for delivery to `to`. Delivery may be dropped or
  // delayed per the fault mode; never delivered synchronously.
  void Send(NodeId to, Message message);

  const TransportParams& params() const { return params_; }
  // Live fault-mode control (tests flip loss on and off mid-run).
  void set_drop_probability(double p) { params_.drop_probability = p; }
  void set_jitter_seconds(double j) { params_.jitter_seconds = j; }

  uint64_t sent() const { return sent_; }
  uint64_t delivered() const { return delivered_; }
  uint64_t dropped() const { return dropped_; }
  uint64_t blackholed() const { return blackholed_; }

 private:
  SimClock* clock_;
  EventQueue* events_;
  TransportParams params_;
  Rng rng_;
  std::vector<Handler> handlers_;
  uint64_t sent_ = 0;
  uint64_t delivered_ = 0;
  uint64_t dropped_ = 0;
  uint64_t blackholed_ = 0;
};

}  // namespace logfs::serve

#endif  // LOGFS_SRC_SERVE_TRANSPORT_H_
