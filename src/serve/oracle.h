// ExploreServeCrashStates: the end-to-end "zero stale reads" proof for the
// multi-client file service.
//
// The run: a recorded ServeCluster executes a shared Zipf workload while
// two referees watch. Online, the ShadowModel byte-checks every client read
// against the lease-serialized write order. For the crash sweep, the
// server's open/write/sync hooks shadow every server-side mutation into a
// crashsim WorkloadModel: each applied write is an op closed at the current
// journal length, and each durable-horizon advance (commit, pre-grant sync,
// background checkpoint) is a global barrier.
//
// The sweep: every recorded crash image (prefix/torn/reorder, enumerated by
// the crashsim generator) is remounted with roll-forward and judged by the
// crashsim Oracle. The serve-level claim this proves is exactly the lease
// protocol's grant-time durability rule: anything a client could have
// observed under a granted lease was synced before the grant, so it sits at
// or below a barrier — and the Oracle fails any image where content behind
// a barrier is missing (a stale read after recovery) or ahead of the write
// chain (corruption).
//
// One conservatism: a sync barrier is only claimed when the advanced
// horizon covers every modeled mutation so far. A checkpoint racing a write
// mid-op is skipped — weakening the floor, never faking one.
#ifndef LOGFS_SRC_SERVE_ORACLE_H_
#define LOGFS_SRC_SERVE_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/crashsim/crash_image.h"
#include "src/serve/cluster.h"
#include "src/util/result.h"
#include "src/workload/serve_load.h"

namespace logfs::serve {

struct ServeCrashSweepParams {
  ServeLoadParams load;
  // record_disk, clients, and the server hooks are overridden internally.
  ServeClusterParams cluster;
  CrashEnumerationBudget budget;
  bool verify_data = true;
  size_t max_violation_reports = 16;
};

struct ServeCrashReport {
  size_t journal_writes = 0;
  size_t plans = 0;
  size_t states_checked = 0;
  size_t failed_states = 0;
  // The online referee's tally from the recorded run itself.
  uint64_t online_reads_checked = 0;
  uint64_t online_violations = 0;
  uint64_t ops_completed = 0;
  uint64_t drive_errors = 0;
  std::vector<std::string> violations;  // Capped at max_violation_reports.

  bool ok() const {
    return failed_states == 0 && online_violations == 0 && drive_errors == 0;
  }
  std::string Summary() const;
};

Result<ServeCrashReport> ExploreServeCrashStates(const ServeCrashSweepParams& params);

}  // namespace logfs::serve

#endif  // LOGFS_SRC_SERVE_ORACLE_H_
