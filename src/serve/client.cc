#include "src/serve/client.h"


#include <algorithm>
#include <memory>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace_context.h"
#include "src/obs/tracer.h"

namespace logfs::serve {
namespace {

Status ToStatus(const Response& resp) {
  if (resp.code == ErrorCode::kOk) {
    return OkStatus();
  }
  return Status(resp.code, resp.error);
}

// Client-observed op latency distribution, microseconds.
constexpr double kLatencyBoundsUs[] = {50,    100,   200,   500,    1000,   2000,
                                       5000,  10000, 20000, 50000,  100000, 200000,
                                       500000, 1e6,  2e6,   5e6};

void CountMetric(const char* name, uint64_t delta = 1) {
  if constexpr (obs::kMetricsEnabled) {
    obs::Registry().GetCounter(name).Increment(delta);
  } else {
    (void)name;
    (void)delta;
  }
}

}  // namespace

Client::Client(SimClock* clock, EventQueue* events, SimTransport* transport, NodeId server,
               ClientOptions options)
    : clock_(clock),
      events_(events),
      transport_(transport),
      server_(server),
      node_(0),
      options_(std::move(options)) {
  node_ = transport_->Register([this](Message&& m) { OnMessage(std::move(m)); });
}

double Client::Now() const { return clock_->Now(); }

Client::Handle* Client::Find(uint64_t handle) {
  auto it = handles_.find(handle);
  return it == handles_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// RPC layer: at-most-once over a lossy transport. Every call retransmits on
// timeout with exponential backoff; the server's dedup cache absorbs the
// duplicates, so a response always corresponds to exactly one execution.

void Client::Call(Request request, std::function<void(Response&&)> cb,
                  const obs::TraceContext* ctx) {
  if (crashed_) {
    return;  // A dead client sends nothing; the callback is abandoned.
  }
  request.client_id = node_;
  request.request_id = next_request_id_++;
  const uint64_t id = request.request_id;
  Outstanding& out = outstanding_[id];
  if constexpr (obs::kMetricsEnabled) {
    out.ctx = ctx != nullptr ? *ctx : op_ctx_;
    if (out.ctx.active()) {
      out.rpc_span = obs::Tracer().NextId();
      out.call_time = Now();
      const uint64_t attempt_span = obs::Tracer().NextId();
      out.attempts.emplace_back(out.call_time, attempt_span);
      // The wire carries the *attempt* span so the server's handle span
      // parents under the send that actually reached it.
      request.ctx = obs::TraceContext{out.ctx.trace_id, attempt_span};
      request.attempt = 0;
    }
  } else {
    (void)ctx;
  }
  out.request = request;
  out.cb = std::move(cb);
  out.rto = options_.rto_seconds;
  out.timer = events_->ScheduleAfter(out.rto, [this, id] { Retransmit(id); });
  transport_->Send(server_, Message::MakeRequest(std::move(request)));
}

void Client::Retransmit(uint64_t request_id) {
  if (crashed_) {
    return;
  }
  auto it = outstanding_.find(request_id);
  if (it == outstanding_.end()) {
    return;  // Answered between scheduling and firing.
  }
  Outstanding& out = it->second;
  CountMetric("logfs.serve.client.retransmits");
  if constexpr (obs::kMetricsEnabled) {
    if (out.ctx.active()) {
      // Each resend is its own sibling attempt span, tagged with the RTO
      // generation; the response will name exactly one of them the winner.
      const uint64_t attempt_span = obs::Tracer().NextId();
      out.attempts.emplace_back(Now(), attempt_span);
      out.request.ctx.span_id = attempt_span;
      out.request.attempt = static_cast<uint32_t>(out.attempts.size() - 1);
    }
  }
  out.rto = std::min(out.rto * 2.0, options_.max_rto_seconds);
  out.timer = events_->ScheduleAfter(out.rto, [this, request_id] { Retransmit(request_id); });
  transport_->Send(server_, Message::MakeRequest(out.request));
}

void Client::OnMessage(Message&& message) {
  if (crashed_) {
    return;
  }
  switch (message.kind) {
    case Message::Kind::kResponse:
      OnResponse(std::move(message.response));
      return;
    case Message::Kind::kRevoke:
      OnRevoke(message.revoke);
      return;
    case Message::Kind::kRequest:
    case Message::Kind::kRevokeAck:
      return;  // Not addressed to a client; ignore.
  }
}

void Client::OnResponse(Response&& response) {
  if (response.server_epoch > server_epoch_) {
    // New server incarnation: sequence numbers restarted, so per-epoch
    // bookkeeping resets. Handles re-establish lazily (EnsureHandle) and
    // non-durable blocks replay under reclaimed leases.
    server_epoch_ = response.server_epoch;
    durable_seq_ = 0;
    max_write_seq_ = 0;
  }
  RetireDurable(response.durable_seq);
  auto it = outstanding_.find(response.request_id);
  if (it == outstanding_.end()) {
    return;  // Duplicate reply to a retransmitted request.
  }
  events_->Cancel(it->second.timer);
  Outstanding out = std::move(it->second);
  outstanding_.erase(it);
  if constexpr (obs::kMetricsEnabled) {
    RecordRpcSpans(out, response);
  }
  out.cb(std::move(response));
}

void Client::RecordRpcSpans(const Outstanding& out, const Response& response) {
  if constexpr (obs::kMetricsEnabled) {
    if (!out.ctx.active()) {
      return;
    }
    const double now = Now();
    const char* op = OpKindName(out.request.op);
    const size_t n = out.attempts.size();
    // The server echoed which send's payload it executed (or replayed from
    // the dedup cache) — that attempt carried the exchange; clamp defends
    // against a response from a pre-crash incarnation that never saw it.
    const size_t winner = std::min<size_t>(response.attempt, n - 1);
    for (size_t i = 0; i < n; ++i) {
      const auto [sent_at, span] = out.attempts[i];
      // Attempts tile [call, response]: a loser span ends where the next
      // send starts (its useful life — waiting — ended there); the winner
      // runs to the response, so the tree's critical path credits the
      // network exactly once and every earlier wait as retransmit cost.
      const double end =
          i == winner ? now : (i + 1 < n ? std::min(out.attempts[i + 1].first, now) : now);
      obs::Tracer().RecordSpanIds(
          "serve.attempt", op, sent_at, end, out.ctx.trace_id, span, out.rpc_span, {},
          {{"rto_gen", std::to_string(i)}, {"winner", i == winner ? "1" : "0"}});
    }
    obs::Tracer().RecordSpanIds("serve.rpc", op, out.call_time, now, out.ctx.trace_id,
                                out.rpc_span, out.ctx.span_id);
    if (n > 1) {
      CountMetric("logfs.serve.rpc.wasted_attempts", n - 1);
    }
    CountMetric("logfs.serve.rpc.attempts", n);
  } else {
    (void)out;
    (void)response;
  }
}

void Client::RetireDurable(uint64_t durable_seq) {
  if (durable_seq <= durable_seq_) {
    return;
  }
  durable_seq_ = durable_seq;
  for (auto& [id, h] : handles_) {
    for (auto& [b, blk] : h.blocks) {
      if (blk.unstable && blk.seq_epoch == server_epoch_ && blk.server_seq <= durable_seq_) {
        blk.unstable = false;  // Covered by a durable commit: replay no more.
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Lease recall. A read lease (or a clean write lease) acks immediately; a
// dirty write lease queues a front-of-line op that writes back, commits, and
// only then acks — the ack is the server's license to hand the file to the
// next writer, so it must imply durability of everything we did to it.

void Client::OnRevoke(const Revoke& revoke) {
  const uint64_t action = ++action_seq_;
  uint64_t hid = 0;
  Handle* h = nullptr;
  for (auto& [id, hh] : handles_) {
    if (hh.open && hh.fh == revoke.fh) {
      hh.last_revoke_action = action;  // Voids in-flight grants for the file.
      if (h == nullptr && hh.lease != LeaseKind::kNone) {
        hid = id;
        h = &hh;
      }
    }
  }
  const RevokeAck ack{node_, revoke.fh, revoke.revoke_id};
  if (h == nullptr || !LeaseValid(*h) || h->lease == LeaseKind::kRead) {
    if (h != nullptr) {
      InvalidateFile(*h);
    }
    transport_->Send(server_, Message::MakeRevokeAck(ack));
    return;
  }
  if (h->recalled) {
    return;  // Already flushing; its ack will release the lease for both.
  }
  h->recalled = true;
  // The flush is out-of-band work with no foreground op to parent under: it
  // gets its own root trace, linked to the conflicting request's trace (the
  // revoke carries it) so that request's park span can be followed here.
  FlushForRevoke(hid, ack, obs::MintTrace(), revoke.ctx.trace_id, Now());
}

void Client::FlushForRevoke(uint64_t hid, RevokeAck ack, obs::TraceContext flush_ctx,
                            uint64_t link_trace, double started) {
  Handle* h = Find(hid);
  if (h == nullptr || !h->open) {
    transport_->Send(server_, Message::MakeRevokeAck(ack));
    return;
  }
  std::vector<uint64_t> dirty;
  for (const auto& [b, blk] : h->blocks) {
    if (blk.dirty) {
      dirty.push_back(b);
    }
  }
  WritebackBlocks(hid, std::move(dirty), [this, hid, ack, flush_ctx, link_trace,
                                          started](Status) {
    CommitSeq(max_write_seq_, [this, hid, ack, flush_ctx, link_trace, started](Status) {
      if (crashed_) {
        return;
      }
      if (Handle* h2 = Find(hid)) {
        InvalidateFile(*h2);
        h2->recalled = false;
      }
      if constexpr (obs::kMetricsEnabled) {
        if (flush_ctx.active()) {
          std::vector<uint64_t> links;
          if (link_trace != 0) {
            links.push_back(link_trace);
          }
          obs::Tracer().RecordSpanIds("serve.revoke_flush", "flush", started, Now(),
                                      flush_ctx.trace_id, flush_ctx.span_id, 0,
                                      std::move(links),
                                      {{"client", std::to_string(node_)}});
        }
      }
      transport_->Send(server_, Message::MakeRevokeAck(ack));
    }, flush_ctx);
  }, flush_ctx);
}

// ---------------------------------------------------------------------------
// Op queue: one user op at a time, in order, like a single application
// process. Completion trampolines through the event queue so a burst of
// cache hits cannot recurse.

void Client::Enqueue(const char* kind, std::function<void(std::function<void()>)> body,
                     bool front) {
  const double start = Now();
  std::string k(kind);
  // Every user op is one trace; the root span opens when the op starts
  // executing (queue wait is the client's own, not the system's) and closes
  // at completion, so its extent IS the client-observed latency.
  auto wrapped = [this, k, start, body = std::move(body)]() {
    const double op_start = Now();
    op_ctx_ = obs::MintTrace();
    const obs::TraceContext op_ctx = op_ctx_;
    body([this, k, start, op_start, op_ctx]() {
      if (crashed_) {
        return;
      }
      if constexpr (obs::kMetricsEnabled) {
        if (op_ctx.active()) {
          obs::Tracer().RecordSpanIds("serve.op", k, op_start, Now(), op_ctx.trace_id,
                                      op_ctx.span_id, 0, {},
                                      {{"client", std::to_string(node_)}});
        }
      }
      op_ctx_ = obs::TraceContext{};
      RecordLatency(k.c_str(), start);
      busy_ = false;
      events_->ScheduleAfter(0.0, [this] { StartNext(); });
    });
  };
  if (front) {
    op_queue_.push_front(std::move(wrapped));
  } else {
    op_queue_.push_back(std::move(wrapped));
  }
  StartNext();
}

void Client::StartNext() {
  if (busy_ || crashed_ || op_queue_.empty()) {
    return;
  }
  busy_ = true;
  auto body = std::move(op_queue_.front());
  op_queue_.pop_front();
  body();
}

// ---------------------------------------------------------------------------
// Public operations.

void Client::Open(const std::string& path, OpenCb cb) {
  if (crashed_) {
    cb(CrashedError("client crashed"));
    return;
  }
  Enqueue("open", [this, path, cb](std::function<void()> done) {
    Request req;
    req.op = OpKind::kOpen;
    req.path = path;
    Call(std::move(req), [this, path, cb, done](Response&& resp) {
      if (resp.code != ErrorCode::kOk) {
        cb(ToStatus(resp));
        done();
        return;
      }
      const uint64_t hid = next_handle_++;
      Handle h;
      h.path = path;
      h.fh = resp.fh;
      h.epoch = resp.server_epoch;
      h.open = true;
      h.size = resp.size;
      handles_[hid] = std::move(h);
      cb(hid);
      done();
    });
  });
}

void Client::Read(uint64_t handle, uint64_t offset, uint64_t length, ReadCb cb) {
  if (crashed_) {
    cb(CrashedError("client crashed"));
    return;
  }
  Enqueue("read", [this, handle, offset, length, cb](std::function<void()> done) {
    DoRead(handle, offset, length, /*retried=*/false,
           [cb, done](Result<std::vector<std::byte>> r) {
             cb(std::move(r));
             done();
           });
  });
}

void Client::Write(uint64_t handle, uint64_t offset, std::vector<std::byte> data, StatusCb cb) {
  if (crashed_) {
    cb(CrashedError("client crashed"));
    return;
  }
  Enqueue("write", [this, handle, offset, data = std::move(data),
                    cb](std::function<void()> done) mutable {
    DoWrite(handle, offset, std::move(data), /*retried=*/false, [cb, done](Status st) {
      cb(st);
      done();
    });
  });
}

void Client::Commit(StatusCb cb) {
  if (crashed_) {
    cb(CrashedError("client crashed"));
    return;
  }
  Enqueue("commit", [this, cb](std::function<void()> done) {
    auto dirty_handles = std::make_shared<std::vector<uint64_t>>();
    for (const auto& [id, h] : handles_) {
      if (!h.open) {
        continue;
      }
      for (const auto& [b, blk] : h.blocks) {
        if (blk.dirty) {
          dirty_handles->push_back(id);
          break;
        }
      }
    }
    auto first_error = std::make_shared<Status>(OkStatus());
    auto next = std::make_shared<std::function<void(size_t, bool)>>();
    // Self-reference must be weak: a function object that strongly captures
    // its own shared_ptr is a reference cycle and never frees. Continuations
    // hold the strong refs, so the lock below cannot fail while running.
    std::weak_ptr<std::function<void(size_t, bool)>> weak_next = next;
    *next = [this, dirty_handles, first_error, weak_next, cb, done](size_t i, bool retried) {
      auto next = weak_next.lock();
      if (i >= dirty_handles->size()) {
        CommitSeq(max_write_seq_, [first_error, cb, done](Status st) {
          cb(first_error->ok() ? st : *first_error);
          done();
        });
        return;
      }
      const uint64_t hid = (*dirty_handles)[i];
      // Re-establish the handle first: a commit may be the client's first
      // contact with a restarted server, and EnsureHandle is where the new
      // epoch's re-open + lease reclaim + dirty-block replay happens.
      EnsureHandle(hid, /*force=*/false, [this, hid, i, retried, first_error, next](Status est) {
        if (!est.ok()) {
          if (first_error->ok()) {
            *first_error = est;
          }
          (*next)(i + 1, false);
          return;
        }
        Handle* h = Find(hid);
        std::vector<uint64_t> dirty;
        if (h != nullptr) {
          for (const auto& [b, blk] : h->blocks) {
            if (blk.dirty) {
              dirty.push_back(b);
            }
          }
        }
        WritebackBlocks(hid, std::move(dirty), [this, hid, i, retried, first_error,
                                                next](Status st) {
          if (st.code() == ErrorCode::kNotFound && !retried) {
            // The server forgot this handle (it restarted under us and the
            // write-back's own failure is how we learned). Force a re-open
            // and retry this handle once; EnsureHandle replays what is owed.
            if (Handle* hh = Find(hid)) {
              hh->epoch = 0;
            }
            (*next)(i, true);
            return;
          }
          if (!st.ok() && first_error->ok()) {
            *first_error = st;
          }
          (*next)(i + 1, false);
        });
      });
    };
    (*next)(0, false);
  });
}

void Client::Close(uint64_t handle, StatusCb cb) {
  if (crashed_) {
    cb(CrashedError("client crashed"));
    return;
  }
  Enqueue("close", [this, handle, cb](std::function<void()> done) {
    DoClose(handle, cb, done);
  });
}

void Client::DoClose(uint64_t handle, StatusCb cb, std::function<void()> done) {
  {
    Handle* h = Find(handle);
    if (h == nullptr || !h->open) {
      cb(NotFoundError("unknown handle"));
      done();
      return;
    }
    if (h->recalled) {
      // Close sends a Release; doing that under an in-flight recall flush
      // would free the lease out from under the flush's write-backs. Wait
      // for the ack, then close what's left (nothing dirty by then).
      events_->ScheduleAfter(0.001, [this, handle, cb, done] {
        if (!crashed_) {
          DoClose(handle, cb, done);
        }
      });
      return;
    }
  }
  {
    Handle* h = Find(handle);
    std::vector<uint64_t> dirty;
    for (const auto& [b, blk] : h->blocks) {
      if (blk.dirty) {
        dirty.push_back(b);
      }
    }
    auto first_error = std::make_shared<Status>(OkStatus());
    WritebackBlocks(handle, std::move(dirty), [this, handle, first_error, cb,
                                               done](Status st) {
      if (!st.ok()) {
        *first_error = st;
      }
      CommitSeq(max_write_seq_, [this, handle, first_error, cb, done](Status st2) {
        if (!st2.ok() && first_error->ok()) {
          *first_error = st2;
        }
        Handle* hh = Find(handle);
        if (hh == nullptr) {
          cb(*first_error);
          done();
          return;
        }
        Request req;
        req.op = OpKind::kClose;
        req.fh = hh->fh;
        Call(std::move(req), [this, handle, first_error, cb, done](Response&& resp) {
          if (Handle* h2 = Find(handle)) {
            InvalidateFile(*h2);
            handles_.erase(handle);
          }
          cb(first_error->ok() ? ToStatus(resp) : *first_error);
          done();
        });
      });
    });
  }
}

void Client::Crash() {
  if (crashed_) {
    return;
  }
  crashed_ = true;
  for (auto& [id, out] : outstanding_) {
    events_->Cancel(out.timer);
  }
  outstanding_.clear();
  op_queue_.clear();
  busy_ = false;
  handles_.clear();
  transport_->Deregister(node_);
}

// ---------------------------------------------------------------------------
// Op bodies.

void Client::DoRead(uint64_t handle, uint64_t offset, uint64_t length, bool retried, ReadCb cb) {
  Handle* h = Find(handle);
  if (h == nullptr || !h->open) {
    cb(NotFoundError("unknown handle"));
    return;
  }
  if (h->lease != LeaseKind::kNone && !LeaseValid(*h)) {
    InvalidateFile(*h);  // Lapsed: nothing cached under it can be trusted.
  }
  if (LeaseValid(*h) && h->epoch == server_epoch_ && CacheCovers(*h, offset, length)) {
    auto data = ReadFromCache(*h, offset, length);
    ++stats_.hits;
    CountMetric("logfs.serve.client.cache_hits");
    MaybeRenew(handle);
    if (options_.read_hook) {
      options_.read_hook(h->path, offset, data, /*from_cache=*/true);
    }
    cb(std::move(data));
    return;
  }
  ++stats_.misses;
  CountMetric("logfs.serve.client.cache_misses");
  EnsureHandle(handle, /*force=*/false, [this, handle, offset, length, retried,
                                         cb](Status st) {
    if (!st.ok()) {
      cb(st);
      return;
    }
    Handle* h2 = Find(handle);
    Request req;
    req.op = OpKind::kRead;
    req.fh = h2->fh;
    req.offset = offset;
    req.length = length;
    const uint64_t sent = ++action_seq_;
    Call(std::move(req), [this, handle, offset, length, retried, sent, cb](Response&& resp) {
      Handle* hh = Find(handle);
      if (hh == nullptr || !hh->open) {
        cb(NotFoundError("handle closed during read"));
        return;
      }
      if (resp.code == ErrorCode::kNotFound && !retried) {
        // The server forgot this handle (silent restart). Re-establish once.
        hh->epoch = 0;
        DoRead(handle, offset, length, /*retried=*/true, cb);
        return;
      }
      if (resp.code != ErrorCode::kOk) {
        cb(ToStatus(resp));
        return;
      }
      // A revoke we acked after sending this request voids its grant: the
      // response reflects a pre-revoke world. The data itself is still a
      // legal read (it took effect while the lease was held server-side),
      // but nothing may be cached or believed from it.
      const bool grant_void = hh->last_revoke_action > sent;
      if (!grant_void && resp.lease != LeaseKind::kNone) {
        hh->lease = resp.lease;
        hh->lease_term = resp.lease_expiry - Now();
        hh->lease_expiry = resp.lease_expiry;
        UpdateSizeFromGrant(*hh, resp.size);
      }
      if (!grant_void) {
        InstallClean(*hh, offset, resp.data);
        if (options_.read_hook) {
          options_.read_hook(hh->path, offset, resp.data, /*from_cache=*/false);
        }
      }
      cb(std::move(resp.data));
    });
  });
}

void Client::DoWrite(uint64_t handle, uint64_t offset, std::vector<std::byte> data, bool retried,
                     StatusCb cb) {
  Handle* h = Find(handle);
  if (h == nullptr || !h->open) {
    cb(NotFoundError("unknown handle"));
    return;
  }
  if (h->lease != LeaseKind::kNone && !LeaseValid(*h)) {
    InvalidateFile(*h);
  }
  if (h->lease == LeaseKind::kWrite && LeaseValid(*h) && h->epoch == server_epoch_ &&
      !h->recalled) {
    MaybeRenew(handle);
    ApplyLocalWrite(handle, offset, std::move(data), cb);
    return;
  }
  EnsureHandle(handle, /*force=*/false, [this, handle, offset, data = std::move(data), retried,
                                         cb](Status st) mutable {
    if (!st.ok()) {
      cb(st);
      return;
    }
    EnsureWriteLease(handle, /*reclaim=*/false,
                     [this, handle, offset, data = std::move(data), retried, cb](Status st2) mutable {
                       if (st2.code() == ErrorCode::kNotFound && !retried) {
                         if (Handle* hh = Find(handle)) {
                           hh->epoch = 0;
                         }
                         DoWrite(handle, offset, std::move(data), /*retried=*/true, cb);
                         return;
                       }
                       if (!st2.ok()) {
                         cb(st2);
                         return;
                       }
                       ApplyLocalWrite(handle, offset, std::move(data), cb);
                     });
  });
}

// ---------------------------------------------------------------------------
// Async building blocks.

void Client::EnsureHandle(uint64_t handle, bool force, StatusCb then) {
  Handle* h = Find(handle);
  if (h == nullptr || !h->open) {
    then(NotFoundError("unknown handle"));
    return;
  }
  if (!force && h->epoch == server_epoch_) {
    then(OkStatus());
    return;
  }
  Request req;
  req.op = OpKind::kOpen;
  req.path = h->path;
  Call(std::move(req), [this, handle, then](Response&& resp) {
    Handle* hh = Find(handle);
    if (hh == nullptr) {
      then(NotFoundError("handle closed during re-open"));
      return;
    }
    if (resp.code != ErrorCode::kOk) {
      then(ToStatus(resp));
      return;
    }
    hh->fh = resp.fh;
    hh->epoch = resp.server_epoch;
    ReplayIfNeeded(handle, resp.size, then);
  });
}

void Client::ReplayIfNeeded(uint64_t handle, uint64_t server_size, StatusCb then) {
  Handle* h = Find(handle);
  std::vector<uint64_t> replay;
  for (const auto& [b, blk] : h->blocks) {
    if (blk.dirty || blk.unstable) {
      replay.push_back(b);
    }
  }
  const bool write_lease_live = h->lease == LeaseKind::kWrite && LeaseValid(*h);
  if (replay.empty()) {
    // Nothing pending. A still-valid lease survives the restart (the grace
    // fence keeps conflicting grants out until it must have expired), so the
    // cache stays warm; an invalid one takes its blocks with it.
    if (h->lease != LeaseKind::kNone && !LeaseValid(*h)) {
      InvalidateFile(*h);
      h->size = server_size;
    }
    then(OkStatus());
    return;
  }
  if (!write_lease_live) {
    // The lease died with the server outage: whatever the durable horizon
    // did not cover is gone. This is the contract — data loss is bounded by
    // the last commit, never silent corruption.
    InvalidateFile(*h);
    h->size = server_size;
    then(OkStatus());
    return;
  }
  // Live write lease: reclaim it through the grace fence, then replay every
  // non-durable block and commit, putting the new incarnation exactly where
  // the old one promised to be.
  EnsureWriteLease(handle, /*reclaim=*/true, [this, handle, replay, then](Status st) {
    Handle* hh = Find(handle);
    if (!st.ok()) {
      if (hh != nullptr) {
        InvalidateFile(*hh);
      }
      then(st);
      return;
    }
    for (uint64_t b : replay) {
      auto it = hh->blocks.find(b);
      if (it != hh->blocks.end()) {
        it->second.dirty = true;
        it->second.unstable = false;
        it->second.server_seq = 0;
      }
    }
    stats_.replays += replay.size();
    CountMetric("logfs.serve.client.replays", replay.size());
    WritebackBlocks(handle, replay, [this, then](Status st2) {
      if (!st2.ok()) {
        then(st2);
        return;
      }
      CommitSeq(max_write_seq_, then);
    });
  });
}

void Client::EnsureWriteLease(uint64_t handle, bool reclaim, StatusCb then) {
  Handle* h = Find(handle);
  if (h == nullptr || !h->open) {
    then(NotFoundError("unknown handle"));
    return;
  }
  if (h->recalled) {
    // Mid-recall: asking now would re-grant the very lease we promised to
    // surrender. Wait for the flush to ack, then acquire fresh.
    events_->ScheduleAfter(0.001, [this, handle, reclaim, then] {
      if (!crashed_) {
        EnsureWriteLease(handle, reclaim, then);
      }
    });
    return;
  }
  if (!reclaim && h->lease == LeaseKind::kWrite && LeaseValid(*h) &&
      h->epoch == server_epoch_) {
    then(OkStatus());
    return;
  }
  Request req;
  req.op = OpKind::kGetLease;
  req.fh = h->fh;
  req.lease = LeaseKind::kWrite;
  if (reclaim) {
    req.reclaim = true;
    req.claimed_expiry = h->lease_expiry;
  }
  const uint64_t sent = ++action_seq_;
  Call(std::move(req), [this, handle, reclaim, sent, then](Response&& resp) {
    Handle* hh = Find(handle);
    if (hh == nullptr) {
      then(NotFoundError("handle closed during lease acquire"));
      return;
    }
    if (resp.code != ErrorCode::kOk) {
      then(ToStatus(resp));
      return;
    }
    if (hh->last_revoke_action > sent) {
      // Granted, then revoked and acked before this reply landed: the grant
      // is already gone. Ask again from the post-revoke world.
      EnsureWriteLease(handle, reclaim, then);
      return;
    }
    hh->lease = resp.lease;
    hh->lease_term = resp.lease_expiry - Now();
    hh->lease_expiry = resp.lease_expiry;
    UpdateSizeFromGrant(*hh, resp.size);
    then(OkStatus());
  });
}

void Client::WritebackBlocks(uint64_t handle, std::vector<uint64_t> indices, StatusCb then,
                             obs::TraceContext ctx) {
  Handle* h = Find(handle);
  if (h == nullptr || indices.empty()) {
    then(OkStatus());
    return;
  }
  struct State {
    std::vector<uint64_t> todo;
    size_t next = 0;
    size_t inflight = 0;
    Status first_error = OkStatus();
    bool finished = false;
  };
  auto st = std::make_shared<State>();
  st->todo = std::move(indices);
  auto pump = std::make_shared<std::function<void()>>();
  auto maybe_finish = [st, then]() {
    if (!st->finished && st->inflight == 0 && st->next >= st->todo.size()) {
      st->finished = true;
      then(st->first_error);
    }
  };
  // Weak self-reference: see Commit's chain for why a strong one leaks.
  std::weak_ptr<std::function<void()>> weak_pump = pump;
  *pump = [this, handle, st, weak_pump, maybe_finish, ctx]() {
    auto pump = weak_pump.lock();
    Handle* h2 = Find(handle);
    if (h2 == nullptr) {
      if (st->first_error.ok()) {
        st->first_error = NotFoundError("handle closed during write-back");
      }
      st->next = st->todo.size();
      maybe_finish();
      return;
    }
    const uint32_t bs = options_.block_size;
    while (st->next < st->todo.size() && st->inflight < options_.writeback_window) {
      const uint64_t b = st->todo[st->next++];
      auto it = h2->blocks.find(b);
      if (it == h2->blocks.end() || !it->second.dirty) {
        continue;  // Already flushed by a concurrent revoke or commit.
      }
      const uint64_t off = b * bs;
      if (off >= h2->size) {
        continue;
      }
      const uint64_t len = std::min<uint64_t>(bs, h2->size - off);
      Request req;
      req.op = OpKind::kWrite;
      req.fh = h2->fh;
      req.offset = off;
      req.data.assign(it->second.data.begin(), it->second.data.begin() + len);
      ++st->inflight;
      ++stats_.writebacks;
      CountMetric("logfs.serve.client.writebacks");
      Call(std::move(req), [this, handle, b, st, pump, maybe_finish](Response&& resp) {
        --st->inflight;
        Handle* hh = Find(handle);
        if (resp.code == ErrorCode::kOk && hh != nullptr) {
          auto bit = hh->blocks.find(b);
          if (bit != hh->blocks.end()) {
            bit->second.dirty = false;
            bit->second.unstable = true;
            bit->second.server_seq = resp.mutation_seq;
            bit->second.seq_epoch = resp.server_epoch;
          }
          max_write_seq_ = std::max(max_write_seq_, resp.mutation_seq);
        } else if (resp.code != ErrorCode::kOk && st->first_error.ok()) {
          st->first_error = ToStatus(resp);
        }
        (*pump)();
        maybe_finish();
      }, ctx.active() ? &ctx : nullptr);
    }
    maybe_finish();
  };
  (*pump)();
}

void Client::CommitSeq(uint64_t seq, StatusCb then, obs::TraceContext ctx) {
  Request req;
  req.op = OpKind::kCommit;
  req.commit_seq = seq;
  Call(std::move(req), [then](Response&& resp) { then(ToStatus(resp)); },
       ctx.active() ? &ctx : nullptr);
}

void Client::ApplyLocalWrite(uint64_t handle, uint64_t offset, std::vector<std::byte> data,
                             StatusCb then) {
  if (data.empty()) {
    then(OkStatus());
    return;
  }
  Handle* h = Find(handle);
  const uint32_t bs = options_.block_size;
  const uint64_t first = offset / bs;
  const uint64_t last = (offset + data.size() - 1) / bs;
  // Partially-covered edge blocks holding existing data must be fetched
  // before the overwrite lands on top of them (read-modify-write).
  std::vector<uint64_t> need;
  auto consider = [&](uint64_t b, uint64_t cover_begin, uint64_t cover_end) {
    if (cover_begin <= b * bs && cover_end >= (b + 1) * bs) {
      return;  // Fully covered: no base needed.
    }
    if (h->blocks.count(b) != 0) {
      return;
    }
    if (b * bs >= h->size) {
      return;  // Beyond EOF: the implicit base is zeros.
    }
    need.push_back(b);
  };
  consider(first, offset, offset + data.size());
  if (last != first) {
    consider(last, offset, offset + data.size());
  }
  auto apply = [this, handle, offset, data = std::move(data), then]() mutable {
    Handle* hh = Find(handle);
    if (hh == nullptr) {
      then(NotFoundError("handle closed during write"));
      return;
    }
    if (hh->lease != LeaseKind::kWrite || !LeaseValid(*hh) || hh->epoch != server_epoch_ ||
        hh->recalled) {
      // The lease was recalled (or lapsed) between validation and apply —
      // possible when an edge-block fetch yielded to an out-of-band flush.
      // Dirtying the block now would hand it to a dying lease; restart the
      // write from lease acquisition instead.
      DoWrite(handle, offset, std::move(data), /*retried=*/false, then);
      return;
    }
    const uint32_t bsz = options_.block_size;
    uint64_t pos = 0;
    while (pos < data.size()) {
      const uint64_t abs = offset + pos;
      const uint64_t b = abs / bsz;
      const uint64_t in_block = abs % bsz;
      const uint64_t n = std::min<uint64_t>(bsz - in_block, data.size() - pos);
      CachedBlock& blk = hh->blocks[b];
      if (blk.data.size() != bsz) {
        blk.data.assign(bsz, std::byte{0});
      }
      std::copy(data.begin() + static_cast<ptrdiff_t>(pos),
                data.begin() + static_cast<ptrdiff_t>(pos + n),
                blk.data.begin() + static_cast<ptrdiff_t>(in_block));
      blk.dirty = true;
      blk.unstable = false;
      blk.server_seq = 0;
      blk.lru = ++lru_counter_;
      pos += n;
    }
    hh->size = std::max(hh->size, offset + data.size());
    EvictForSpace();
    if (options_.write_hook) {
      options_.write_hook(hh->path, offset, data);
    }
    then(OkStatus());
  };
  if (need.empty()) {
    apply();
    return;
  }
  auto fetch_next = std::make_shared<std::function<void(size_t)>>();
  // Weak self-reference: see Commit's chain for why a strong one leaks.
  std::weak_ptr<std::function<void(size_t)>> weak_fetch = fetch_next;
  *fetch_next = [this, handle, need, weak_fetch, apply, then](size_t i) mutable {
    auto fetch_next = weak_fetch.lock();
    if (i >= need.size()) {
      apply();
      return;
    }
    FetchBlock(handle, need[i], [fetch_next, i, then](Status st) {
      if (!st.ok()) {
        then(st);
        return;
      }
      (*fetch_next)(i + 1);
    });
  };
  (*fetch_next)(0);
}

void Client::FetchBlock(uint64_t handle, uint64_t index, StatusCb then) {
  Handle* h = Find(handle);
  const uint32_t bs = options_.block_size;
  Request req;
  req.op = OpKind::kRead;
  req.fh = h->fh;
  req.offset = index * bs;
  req.length = bs;
  const uint64_t sent = ++action_seq_;
  Call(std::move(req), [this, handle, index, sent, then](Response&& resp) {
    Handle* hh = Find(handle);
    if (hh == nullptr) {
      then(NotFoundError("handle closed during fetch"));
      return;
    }
    if (resp.code != ErrorCode::kOk) {
      then(ToStatus(resp));
      return;
    }
    if (hh->last_revoke_action > sent) {
      FetchBlock(handle, index, then);  // Pre-revoke data: fetch afresh.
      return;
    }
    auto it = hh->blocks.find(index);
    if (it == hh->blocks.end()) {  // Never clobber a newer local version.
      CachedBlock blk;
      blk.data = std::move(resp.data);
      blk.data.resize(options_.block_size, std::byte{0});
      blk.lru = ++lru_counter_;
      hh->blocks[index] = std::move(blk);
      EvictForSpace();
    }
    then(OkStatus());
  });
}

// ---------------------------------------------------------------------------
// Cache mechanics.

bool Client::LeaseValid(const Handle& h) const {
  return h.lease != LeaseKind::kNone && Now() < h.lease_expiry;
}

void Client::UpdateSizeFromGrant(Handle& h, uint64_t server_size) {
  bool pending = false;
  for (const auto& [b, blk] : h.blocks) {
    if (blk.dirty || blk.unstable) {
      pending = true;
      break;
    }
  }
  // With local writes in flight our extent may legitimately exceed the
  // server's; with none, the grant-time size is exact.
  h.size = pending ? std::max(h.size, server_size) : server_size;
}

bool Client::CacheCovers(const Handle& h, uint64_t offset, uint64_t length) const {
  const uint64_t end = std::min(offset + length, h.size);
  if (end <= offset) {
    return true;  // Entirely past EOF: an empty read, served locally.
  }
  const uint32_t bs = options_.block_size;
  for (uint64_t b = offset / bs; b <= (end - 1) / bs; ++b) {
    if (h.blocks.count(b) == 0) {
      return false;
    }
  }
  return true;
}

std::vector<std::byte> Client::ReadFromCache(Handle& h, uint64_t offset, uint64_t length) {
  const uint64_t end = std::min(offset + length, h.size);
  std::vector<std::byte> out;
  if (end <= offset) {
    return out;
  }
  out.resize(end - offset);
  const uint32_t bs = options_.block_size;
  uint64_t pos = 0;
  while (offset + pos < end) {
    const uint64_t abs = offset + pos;
    const uint64_t b = abs / bs;
    const uint64_t in_block = abs % bs;
    const uint64_t n = std::min<uint64_t>(bs - in_block, end - abs);
    CachedBlock& blk = h.blocks[b];
    std::copy(blk.data.begin() + static_cast<ptrdiff_t>(in_block),
              blk.data.begin() + static_cast<ptrdiff_t>(in_block + n),
              out.begin() + static_cast<ptrdiff_t>(pos));
    blk.lru = ++lru_counter_;
    pos += n;
  }
  return out;
}

void Client::InstallClean(Handle& h, uint64_t offset, std::span<const std::byte> data) {
  if (data.empty()) {
    return;
  }
  const uint32_t bs = options_.block_size;
  const uint64_t end = offset + data.size();
  // Cache whole blocks whose start the payload covers. A short tail can only
  // mean EOF (the server clips reads there), so zero-padding it is exact.
  for (uint64_t b = (offset + bs - 1) / bs; b * bs < end; ++b) {
    const uint64_t avail = std::min<uint64_t>(bs, end - b * bs);
    auto it = h.blocks.find(b);
    if (it != h.blocks.end() && (it->second.dirty || it->second.unstable)) {
      continue;  // The local version is newer.
    }
    CachedBlock& blk = h.blocks[b];
    blk.data.assign(bs, std::byte{0});
    std::copy(data.begin() + static_cast<ptrdiff_t>(b * bs - offset),
              data.begin() + static_cast<ptrdiff_t>(b * bs - offset + avail), blk.data.begin());
    blk.dirty = false;
    blk.unstable = false;
    blk.server_seq = 0;
    blk.lru = ++lru_counter_;
  }
  EvictForSpace();
}

void Client::MaybeRenew(uint64_t handle) {
  Handle* h = Find(handle);
  if (h == nullptr || h->lease == LeaseKind::kNone || h->renew_inflight || h->recalled) {
    return;  // Never renew a lease we have been asked to surrender.
  }
  const double remaining = h->lease_expiry - Now();
  if (h->lease_term <= 0.0 || remaining > options_.renew_fraction * h->lease_term) {
    return;
  }
  h->renew_inflight = true;
  Request req;
  req.op = OpKind::kRenew;
  req.fh = h->fh;
  req.lease = h->lease;
  const uint64_t sent = ++action_seq_;
  // Out-of-band: renewal success extends the expiry; failure simply leaves
  // it to lapse, which the next op start detects and invalidates.
  Call(std::move(req), [this, handle, sent](Response&& resp) {
    Handle* hh = Find(handle);
    if (hh == nullptr) {
      return;
    }
    hh->renew_inflight = false;
    if (hh->last_revoke_action > sent) {
      return;  // Renewed a lease we have since surrendered.
    }
    if (resp.code == ErrorCode::kOk && resp.lease != LeaseKind::kNone) {
      hh->lease = resp.lease;
      hh->lease_term = resp.lease_expiry - Now();
      hh->lease_expiry = resp.lease_expiry;
      CountMetric("logfs.serve.client.renewals");
    }
  });
}

void Client::InvalidateFile(Handle& h) {
  for (const auto& [b, blk] : h.blocks) {
    if (blk.dirty || blk.unstable) {
      ++stats_.discards;
      CountMetric("logfs.serve.client.discards");
    } else {
      ++stats_.invalidations;
      CountMetric("logfs.serve.client.invalidations");
    }
  }
  h.blocks.clear();
  h.lease = LeaseKind::kNone;
  h.lease_expiry = 0.0;
}

size_t Client::CleanCount() const {
  size_t clean = 0;
  for (const auto& [id, h] : handles_) {
    for (const auto& [b, blk] : h.blocks) {
      if (!blk.dirty && !blk.unstable) {
        ++clean;
      }
    }
  }
  return clean;
}

void Client::EvictForSpace() {
  while (CleanCount() > options_.cache_blocks) {
    Handle* victim_h = nullptr;
    uint64_t victim_b = 0;
    uint64_t best_lru = ~uint64_t{0};
    for (auto& [id, h] : handles_) {
      for (auto& [b, blk] : h.blocks) {
        if (!blk.dirty && !blk.unstable && blk.lru < best_lru) {
          best_lru = blk.lru;
          victim_h = &h;
          victim_b = b;
        }
      }
    }
    if (victim_h == nullptr) {
      return;
    }
    victim_h->blocks.erase(victim_b);
    ++stats_.evictions;
    CountMetric("logfs.serve.client.evictions");
  }
}

// ---------------------------------------------------------------------------
// Introspection.

Client::CacheStats Client::cache_stats() const {
  CacheStats out = stats_;
  for (const auto& [id, h] : handles_) {
    for (const auto& [b, blk] : h.blocks) {
      ++out.cached_blocks;
      if (blk.dirty) {
        ++out.dirty_blocks;
      }
      if (blk.unstable) {
        ++out.unstable_blocks;
      }
    }
  }
  return out;
}

std::vector<Client::HandleInfo> Client::DumpHandles() const {
  std::vector<HandleInfo> out;
  out.reserve(handles_.size());
  for (const auto& [id, h] : handles_) {
    HandleInfo info;
    info.handle = id;
    info.path = h.path;
    info.lease = h.lease;
    info.lease_expiry = h.lease_expiry;
    info.cached = h.blocks.size();
    for (const auto& [b, blk] : h.blocks) {
      if (blk.dirty) {
        ++info.dirty;
      }
    }
    out.push_back(std::move(info));
  }
  return out;
}

void Client::RecordLatency(const char* kind, double start) {
  const double elapsed = Now() - start;
  OpLatency& lat = latencies_[kind];
  ++lat.count;
  lat.sum_seconds += elapsed;
  lat.max_seconds = std::max(lat.max_seconds, elapsed);
  if constexpr (obs::kMetricsEnabled) {
    static obs::Histogram& hist = obs::Registry().GetHistogram(
        "logfs.serve.client.op_latency_us", kLatencyBoundsUs);
    hist.Observe(elapsed * 1e6);
  }
  if (options_.latency_hook) {
    options_.latency_hook(kind, elapsed);
  }
}

}  // namespace logfs::serve
