#include "src/serve/transport.h"

#include <utility>

#include "src/obs/metrics.h"

namespace logfs::serve {

SimTransport::SimTransport(SimClock* clock, EventQueue* events, TransportParams params)
    : clock_(clock), events_(events), params_(params), rng_(params.seed) {}

NodeId SimTransport::Register(Handler handler) {
  handlers_.push_back(std::move(handler));
  return static_cast<NodeId>(handlers_.size() - 1);
}

void SimTransport::Deregister(NodeId node) {
  if (node < handlers_.size()) {
    handlers_[node] = nullptr;
  }
}

void SimTransport::Reattach(NodeId node, Handler handler) {
  if (node < handlers_.size()) {
    handlers_[node] = std::move(handler);
  }
}

void SimTransport::Send(NodeId to, Message message) {
  ++sent_;
  if constexpr (obs::kMetricsEnabled) {
    static obs::Counter& sent = obs::Registry().GetCounter("logfs.serve.net.sent");
    sent.Increment();
  }
  // The fault dice roll even for messages to dead endpoints, so a crash does
  // not perturb the drop/jitter stream seen by the survivors.
  const bool drop =
      params_.drop_probability > 0.0 && rng_.NextBool(params_.drop_probability);
  double delay = params_.latency_seconds;
  if (params_.jitter_seconds > 0.0) {
    delay += rng_.NextDouble() * params_.jitter_seconds;
  }
  if (drop) {
    ++dropped_;
    if constexpr (obs::kMetricsEnabled) {
      static obs::Counter& dropped = obs::Registry().GetCounter("logfs.serve.net.dropped");
      dropped.Increment();
    }
    return;
  }
  events_->ScheduleAfter(delay, [this, to, msg = std::move(message)]() mutable {
    if (to >= handlers_.size() || !handlers_[to]) {
      ++blackholed_;
      return;
    }
    ++delivered_;
    if constexpr (obs::kMetricsEnabled) {
      static obs::Counter& delivered =
          obs::Registry().GetCounter("logfs.serve.net.delivered");
      delivered.Increment();
    }
    handlers_[to](std::move(msg));
  });
  (void)clock_;
}

}  // namespace logfs::serve
