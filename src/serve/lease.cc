#include "src/serve/lease.h"

#include "src/obs/metrics.h"
#include "src/obs/trace_context.h"

namespace logfs::serve {

namespace {

void CountExpiries(uint64_t n) {
  if constexpr (obs::kMetricsEnabled) {
    static obs::Counter& expiries =
        obs::Registry().GetCounter("logfs.serve.lease.expiries");
    expiries.Increment(n);
  }
}

}  // namespace

void LeaseManager::PruneFile(uint64_t fh, double now) {
  auto it = table_.find(fh);
  if (it == table_.end()) {
    return;
  }
  uint64_t pruned = 0;
  for (auto h = it->second.begin(); h != it->second.end();) {
    if (!Valid(h->second, now)) {
      h = it->second.erase(h);
      ++pruned;
    } else {
      ++h;
    }
  }
  if (it->second.empty()) {
    table_.erase(it);
  }
  expiries_ += pruned;
  CountExpiries(pruned);
}

LeaseManager::AcquireResult LeaseManager::Acquire(uint64_t fh, uint64_t client,
                                                  LeaseKind kind, double now) {
  AcquireResult result;
  if (kind == LeaseKind::kNone) {
    return result;
  }
  PruneFile(fh, now);
  auto& holders = table_[fh];
  for (const auto& [holder, record] : holders) {
    if (holder == client) {
      continue;  // Own lease never conflicts; it is upgraded below.
    }
    const bool conflict = kind == LeaseKind::kWrite || record.kind == LeaseKind::kWrite;
    if (conflict) {
      result.conflicts.push_back(holder);
    }
  }
  if (!result.conflicts.empty()) {
    if (holders.empty()) {
      table_.erase(fh);  // PruneFile created no entry; keep the table tight.
    }
    return result;
  }
  LeaseRecord& mine = holders[client];
  // Never downgrade: a write holder asking for read keeps write.
  if (mine.kind != LeaseKind::kWrite) {
    mine.kind = kind;
  }
  mine.expires_at = now + lease_seconds_;
  mine.granted_at = now;
  mine.recall_posted = false;
  // The server executes requests under their trace scope, so the ambient
  // context here is the acquiring request's; later waiters link to it.
  mine.trace_id = obs::CurrentTraceContext().trace_id;
  result.granted = true;
  result.expires_at = mine.expires_at;
  ++grants_;
  if constexpr (obs::kMetricsEnabled) {
    static obs::Counter& grants = obs::Registry().GetCounter("logfs.serve.lease.grants");
    grants.Increment();
  }
  return result;
}

bool LeaseManager::Renew(uint64_t fh, uint64_t client, double now, double* expires_at) {
  auto it = table_.find(fh);
  if (it == table_.end()) {
    return false;
  }
  auto h = it->second.find(client);
  if (h == it->second.end() || !Valid(h->second, now)) {
    return false;  // now >= expires_at: at the expiry tick the lease is gone.
  }
  if (h->second.recall_posted) {
    // A recalled lease is frozen: extending it would push out the expiry
    // backstop the waiting writer depends on. The holder must finish the
    // recall and re-acquire.
    return false;
  }
  h->second.expires_at = now + lease_seconds_;
  if (expires_at != nullptr) {
    *expires_at = h->second.expires_at;
  }
  ++renewals_;
  if constexpr (obs::kMetricsEnabled) {
    static obs::Counter& renewals =
        obs::Registry().GetCounter("logfs.serve.lease.renewals");
    renewals.Increment();
  }
  return true;
}

bool LeaseManager::Release(uint64_t fh, uint64_t client) {
  auto it = table_.find(fh);
  if (it == table_.end()) {
    return false;
  }
  const size_t erased = it->second.erase(client);
  if (it->second.empty()) {
    table_.erase(it);
  }
  if (erased > 0) {
    ++releases_;
    if constexpr (obs::kMetricsEnabled) {
      static obs::Counter& releases =
          obs::Registry().GetCounter("logfs.serve.lease.releases");
      releases.Increment();
    }
  }
  return erased > 0;
}

size_t LeaseManager::ReleaseAll(uint64_t client) {
  size_t released = 0;
  for (auto it = table_.begin(); it != table_.end();) {
    released += it->second.erase(client);
    if (it->second.empty()) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
  releases_ += released;
  if constexpr (obs::kMetricsEnabled) {
    static obs::Counter& releases =
        obs::Registry().GetCounter("logfs.serve.lease.releases");
    releases.Increment(released);
  }
  return released;
}

size_t LeaseManager::ExpireDue(double now) {
  size_t pruned = 0;
  for (auto it = table_.begin(); it != table_.end();) {
    for (auto h = it->second.begin(); h != it->second.end();) {
      if (!Valid(h->second, now)) {
        h = it->second.erase(h);
        ++pruned;
      } else {
        ++h;
      }
    }
    if (it->second.empty()) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
  expiries_ += pruned;
  CountExpiries(pruned);
  return pruned;
}

LeaseKind LeaseManager::Held(uint64_t fh, uint64_t client, double now) const {
  auto it = table_.find(fh);
  if (it == table_.end()) {
    return LeaseKind::kNone;
  }
  auto h = it->second.find(client);
  if (h == it->second.end() || !Valid(h->second, now)) {
    return LeaseKind::kNone;
  }
  return h->second.kind;
}

double LeaseManager::HeldSince(uint64_t fh, uint64_t client) const {
  auto it = table_.find(fh);
  if (it == table_.end()) {
    return 0.0;
  }
  auto h = it->second.find(client);
  return h == it->second.end() ? 0.0 : h->second.granted_at;
}

void LeaseManager::MarkRecallPosted(uint64_t fh, uint64_t client) {
  auto it = table_.find(fh);
  if (it == table_.end()) {
    return;
  }
  auto h = it->second.find(client);
  if (h != it->second.end()) {
    h->second.recall_posted = true;
  }
}

uint64_t LeaseManager::HolderTrace(uint64_t fh, uint64_t client) const {
  auto it = table_.find(fh);
  if (it == table_.end()) {
    return 0;
  }
  auto h = it->second.find(client);
  return h == it->second.end() ? 0 : h->second.trace_id;
}

bool LeaseManager::RecallPosted(uint64_t fh, uint64_t client) const {
  auto it = table_.find(fh);
  if (it == table_.end()) {
    return false;
  }
  auto h = it->second.find(client);
  return h != it->second.end() && h->second.recall_posted;
}

std::vector<LeaseManager::TableEntry> LeaseManager::Dump(double now) const {
  std::vector<TableEntry> entries;
  for (const auto& [fh, holders] : table_) {
    for (const auto& [client, record] : holders) {
      if (Valid(record, now)) {
        entries.push_back(TableEntry{fh, client, record});
      }
    }
  }
  return entries;
}

size_t LeaseManager::ActiveCount(double now) const {
  size_t n = 0;
  for (const auto& [fh, holders] : table_) {
    for (const auto& [client, record] : holders) {
      n += Valid(record, now) ? 1 : 0;
    }
  }
  return n;
}

}  // namespace logfs::serve
