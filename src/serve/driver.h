// DriveSharedLoad: replays generated shared-file schedules
// (workload/serve_load.h) against a ServeCluster — each client walks its
// schedule sequentially, pausing for the generated think times, opening
// handles lazily on first touch. The same driver feeds the scenario tests,
// the crash-image sweep, and the benchmark binary, so they all exercise the
// identical protocol paths.
#ifndef LOGFS_SRC_SERVE_DRIVER_H_
#define LOGFS_SRC_SERVE_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/serve/cluster.h"
#include "src/util/result.h"
#include "src/workload/serve_load.h"

namespace logfs::serve {

struct DriveOptions {
  // Commit and close every handle once a client's schedule is exhausted
  // (leaves the server with no dirty client state).
  bool close_at_end = true;
  // Event budget for the whole run; exceeded = protocol livelock.
  size_t max_events = 50'000'000;
  // Folded into write payloads so repeated runs can differ.
  uint64_t payload_salt = 0;
};

struct DriveStats {
  uint64_t ops_completed = 0;
  uint64_t errors = 0;
  std::vector<std::string> first_errors;  // Up to 8, for diagnostics.
};

// Deterministic payload for client `client`'s schedule entry `op_index`.
std::vector<std::byte> DrivePayload(uint64_t client, uint64_t op_index, uint64_t salt,
                                    size_t length);

// Requires load.schedules.size() <= cluster.num_clients(). Creates any
// missing parent directories of load.paths directly on the server's file
// system before driving. Returns BusyError if the event budget runs out.
Result<DriveStats> DriveSharedLoad(ServeCluster& cluster, const ServeLoad& load,
                                   DriveOptions options = {});

}  // namespace logfs::serve

#endif  // LOGFS_SRC_SERVE_DRIVER_H_
