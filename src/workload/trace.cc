#include "src/workload/trace.h"

#include <sstream>

#include "src/workload/benchmarks.h"

namespace logfs {

std::vector<std::byte> TracePayload(size_t length, uint64_t seed) {
  std::vector<std::byte> data(length);
  uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (size_t i = 0; i < length; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    data[i] = static_cast<std::byte>(x);
  }
  return data;
}

Result<std::vector<TraceOp>> ParseTrace(std::string_view text) {
  std::vector<TraceOp> ops;
  std::istringstream input{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(input, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream tokens(line);
    std::string verb;
    if (!(tokens >> verb)) {
      continue;  // Blank line.
    }
    TraceOp op;
    auto bad = [&](const char* why) {
      return InvalidArgumentError("trace line " + std::to_string(line_no) + ": " + why);
    };
    if (verb == "mkdir" || verb == "create" || verb == "unlink" || verb == "rmdir" ||
        verb == "fsync") {
      if (!(tokens >> op.path)) {
        return bad("missing path");
      }
      op.kind = verb == "mkdir"    ? TraceOp::Kind::kMkdir
                : verb == "create" ? TraceOp::Kind::kCreate
                : verb == "unlink" ? TraceOp::Kind::kUnlink
                : verb == "rmdir"  ? TraceOp::Kind::kRmdir
                                   : TraceOp::Kind::kFsync;
    } else if (verb == "write") {
      op.kind = TraceOp::Kind::kWrite;
      if (!(tokens >> op.path >> op.offset >> op.length)) {
        return bad("write needs <path> <offset> <length>");
      }
      tokens >> op.seed;  // Optional.
    } else if (verb == "read") {
      op.kind = TraceOp::Kind::kRead;
      if (!(tokens >> op.path >> op.offset >> op.length)) {
        return bad("read needs <path> <offset> <length>");
      }
    } else if (verb == "rename") {
      op.kind = TraceOp::Kind::kRename;
      if (!(tokens >> op.path >> op.path2)) {
        return bad("rename needs <from> <to>");
      }
    } else if (verb == "trunc") {
      op.kind = TraceOp::Kind::kTruncate;
      if (!(tokens >> op.path >> op.length)) {
        return bad("trunc needs <path> <size>");
      }
    } else if (verb == "sync") {
      op.kind = TraceOp::Kind::kSync;
    } else if (verb == "clean") {
      op.kind = TraceOp::Kind::kClean;
      if (!(tokens >> op.length)) {
        return bad("clean needs <max_victims>");
      }
    } else if (verb == "idle") {
      op.kind = TraceOp::Kind::kIdle;
      if (!(tokens >> op.seconds)) {
        return bad("idle needs <seconds>");
      }
    } else {
      return bad("unknown verb");
    }
    ops.push_back(op);
  }
  return ops;
}

std::string FormatTrace(const std::vector<TraceOp>& ops) {
  std::ostringstream os;
  for (const TraceOp& op : ops) {
    switch (op.kind) {
      case TraceOp::Kind::kMkdir:
        os << "mkdir " << op.path;
        break;
      case TraceOp::Kind::kCreate:
        os << "create " << op.path;
        break;
      case TraceOp::Kind::kWrite:
        os << "write " << op.path << " " << op.offset << " " << op.length << " " << op.seed;
        break;
      case TraceOp::Kind::kRead:
        os << "read " << op.path << " " << op.offset << " " << op.length;
        break;
      case TraceOp::Kind::kUnlink:
        os << "unlink " << op.path;
        break;
      case TraceOp::Kind::kRmdir:
        os << "rmdir " << op.path;
        break;
      case TraceOp::Kind::kRename:
        os << "rename " << op.path << " " << op.path2;
        break;
      case TraceOp::Kind::kTruncate:
        os << "trunc " << op.path << " " << op.length;
        break;
      case TraceOp::Kind::kSync:
        os << "sync";
        break;
      case TraceOp::Kind::kFsync:
        os << "fsync " << op.path;
        break;
      case TraceOp::Kind::kIdle:
        os << "idle " << op.seconds;
        break;
      case TraceOp::Kind::kClean:
        os << "clean " << op.length;
        break;
    }
    os << "\n";
  }
  return os.str();
}

Result<TraceReplayResult> ReplayTrace(Testbed& bed, const std::vector<TraceOp>& ops) {
  TraceReplayResult result;
  const double t0 = bed.Now();
  std::vector<std::byte> buffer;
  for (const TraceOp& op : ops) {
    switch (op.kind) {
      case TraceOp::Kind::kMkdir:
        RETURN_IF_ERROR(bed.paths->MkdirAll(op.path).status());
        break;
      case TraceOp::Kind::kCreate:
        RETURN_IF_ERROR(bed.paths->CreateFile(op.path).status());
        break;
      case TraceOp::Kind::kWrite: {
        ASSIGN_OR_RETURN(InodeNum ino, bed.paths->Resolve(op.path));
        ASSIGN_OR_RETURN(uint64_t n,
                         bed.fs->Write(ino, op.offset, TracePayload(op.length, op.seed)));
        result.bytes_written += n;
        break;
      }
      case TraceOp::Kind::kRead: {
        ASSIGN_OR_RETURN(InodeNum ino, bed.paths->Resolve(op.path));
        buffer.resize(op.length);
        ASSIGN_OR_RETURN(uint64_t n, bed.fs->Read(ino, op.offset, buffer));
        result.bytes_read += n;
        break;
      }
      case TraceOp::Kind::kUnlink:
        RETURN_IF_ERROR(bed.paths->Unlink(op.path));
        break;
      case TraceOp::Kind::kRmdir:
        RETURN_IF_ERROR(bed.paths->Rmdir(op.path));
        break;
      case TraceOp::Kind::kRename:
        RETURN_IF_ERROR(bed.paths->Rename(op.path, op.path2));
        break;
      case TraceOp::Kind::kTruncate: {
        ASSIGN_OR_RETURN(InodeNum ino, bed.paths->Resolve(op.path));
        RETURN_IF_ERROR(bed.fs->Truncate(ino, op.length));
        break;
      }
      case TraceOp::Kind::kSync:
        RETURN_IF_ERROR(bed.fs->Sync());
        break;
      case TraceOp::Kind::kFsync: {
        ASSIGN_OR_RETURN(InodeNum ino, bed.paths->Resolve(op.path));
        RETURN_IF_ERROR(bed.fs->Fsync(ino));
        break;
      }
      case TraceOp::Kind::kIdle: {
        const double before = bed.Now();
        bed.clock->Advance(op.seconds);
        RETURN_IF_ERROR(bed.fs->Tick());
        result.idle_seconds += bed.Now() - before;
        break;
      }
      case TraceOp::Kind::kClean: {
        if (auto* lfs = dynamic_cast<LfsFileSystem*>(bed.fs.get())) {
          RETURN_IF_ERROR(lfs->CleanNow(static_cast<uint32_t>(op.length)).status());
        }
        break;
      }
    }
    ++result.operations;
  }
  result.seconds = bed.Now() - t0;
  return result;
}

namespace {
TraceOp MakeOp(TraceOp::Kind kind, std::string path = {}, uint64_t offset = 0,
               uint64_t length = 0, uint64_t seed = 0, double seconds = 0.0) {
  TraceOp op;
  op.kind = kind;
  op.path = std::move(path);
  op.offset = offset;
  op.length = length;
  op.seed = seed;
  op.seconds = seconds;
  return op;
}
}  // namespace

std::vector<TraceOp> GenerateOfficeTrace(int operations, uint64_t seed) {
  Rng rng(seed);
  std::vector<TraceOp> ops;
  std::vector<std::pair<std::string, uint64_t>> live;  // Path, size.
  uint64_t counter = 0;
  ops.push_back(MakeOp(TraceOp::Kind::kMkdir, "/work"));
  auto pick = [&](size_t count) -> size_t {
    if (rng.NextBool(0.8)) {
      return rng.NextBelow(std::max<size_t>(1, count / 5));
    }
    return rng.NextBelow(count);
  };
  for (int i = 0; i < operations; ++i) {
    const double dice = rng.NextDouble();
    if (dice < 0.5 && !live.empty()) {
      const auto& [path, size] = live[pick(live.size())];
      ops.push_back(MakeOp(TraceOp::Kind::kRead, path, 0, size));
    } else if (dice < 0.68 && !live.empty()) {
      const size_t index = pick(live.size());
      ops.push_back(MakeOp(TraceOp::Kind::kUnlink, live[index].first));
      live.erase(live.begin() + static_cast<ptrdiff_t>(index));
    } else {
      const uint64_t size = DrawOfficeFileSize(rng);
      std::string path;
      if (!live.empty() && rng.NextBool(0.35)) {
        const size_t index = pick(live.size());
        path = live[index].first;
        live[index].second = size;
        ops.push_back(MakeOp(TraceOp::Kind::kTruncate, path, 0, 0));
      } else {
        path = "/work/f" + std::to_string(counter++);
        live.emplace_back(path, size);
        ops.push_back(MakeOp(TraceOp::Kind::kCreate, path));
      }
      ops.push_back(
          MakeOp(TraceOp::Kind::kWrite, path, 0, size, static_cast<uint64_t>(i)));
    }
    if (rng.NextBool(0.02)) {
      ops.push_back(MakeOp(TraceOp::Kind::kIdle, {}, 0, 0, 0, 35.0));
    }
  }
  ops.push_back(MakeOp(TraceOp::Kind::kSync));
  return ops;
}

std::vector<TraceOp> GenerateCrashTrace(int operations, uint64_t seed) {
  Rng rng(seed);
  std::vector<TraceOp> ops;
  std::vector<std::string> live;
  uint64_t counter = 0;
  ops.push_back(MakeOp(TraceOp::Kind::kMkdir, "/c"));
  for (int i = 0; i < operations; ++i) {
    const double dice = rng.NextDouble();
    if (dice < 0.55 || live.empty()) {
      // Create a new file or overwrite an existing one, then often fsync it
      // so the log grows a fresh partial segment (a new tearing target).
      std::string path;
      if (!live.empty() && rng.NextBool(0.4)) {
        path = live[rng.NextBelow(live.size())];
      } else {
        path = "/c/f" + std::to_string(counter++);
        ops.push_back(MakeOp(TraceOp::Kind::kCreate, path));
        live.push_back(path);
      }
      const uint64_t size = 4096ull << rng.NextBelow(5);  // 4 KB .. 64 KB.
      ops.push_back(MakeOp(TraceOp::Kind::kWrite, path, 0, size,
                           seed * 1000 + static_cast<uint64_t>(i)));
      if (rng.NextBool(0.6)) {
        ops.push_back(MakeOp(TraceOp::Kind::kFsync, path));
      }
    } else if (dice < 0.75 && live.size() > 4) {
      const size_t index = rng.NextBelow(live.size());
      ops.push_back(MakeOp(TraceOp::Kind::kUnlink, live[index]));
      live.erase(live.begin() + static_cast<ptrdiff_t>(index));
    } else if (dice < 0.88) {
      ops.push_back(MakeOp(TraceOp::Kind::kSync));
    } else {
      // Deleted space only becomes reclaimable after a checkpoint, so pair
      // the cleaner invocation with one.
      ops.push_back(MakeOp(TraceOp::Kind::kSync));
      ops.push_back(MakeOp(TraceOp::Kind::kClean, {}, 0, 2));
    }
  }
  ops.push_back(MakeOp(TraceOp::Kind::kSync));
  return ops;
}

}  // namespace logfs
