// Testbed: assembles the simulated machine from the paper's Section 5 —
// a Sun-4/260-class CPU and a WREN IV disk with ~300 MB of usable storage —
// and mounts either file system on it. Shared by the benchmark binaries and
// the examples.
#ifndef LOGFS_SRC_WORKLOAD_TESTBED_H_
#define LOGFS_SRC_WORKLOAD_TESTBED_H_

#include <memory>

#include "src/disk/memory_disk.h"
#include "src/ffs/ffs_file_system.h"
#include "src/fsbase/path.h"
#include "src/lfs/lfs_file_system.h"
#include "src/sim/cpu_model.h"
#include "src/sim/sim_clock.h"

namespace logfs {

struct TestbedParams {
  // Disk size. Paper: "around 300 megabytes of usable storage".
  uint64_t disk_bytes = 300ull << 20;
  // CPU speed. The Sun-4/260's 16.6 MHz SPARC is roughly 10 MIPS.
  double mips = 10.0;
  DiskModelParams disk_model;  // WREN IV defaults.
  LfsParams lfs;
  FfsParams ffs;
  LfsFileSystem::Options lfs_options;
  FfsFileSystem::Options ffs_options;
};

// A fully assembled machine with one mounted file system.
struct Testbed {
  std::unique_ptr<SimClock> clock;
  std::unique_ptr<CpuModel> cpu;
  std::unique_ptr<MemoryDisk> disk;
  std::unique_ptr<FileSystem> fs;
  std::unique_ptr<PathFs> paths;

  double Now() const { return clock->Now(); }
};

// Formats and mounts an LFS testbed.
Result<Testbed> MakeLfsTestbed(const TestbedParams& params = {});

// Formats and mounts an FFS testbed.
Result<Testbed> MakeFfsTestbed(const TestbedParams& params = {});

}  // namespace logfs

#endif  // LOGFS_SRC_WORKLOAD_TESTBED_H_
