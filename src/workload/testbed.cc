#include "src/workload/testbed.h"

namespace logfs {
namespace {

Testbed MakeMachine(const TestbedParams& params) {
  Testbed bed;
  bed.clock = std::make_unique<SimClock>();
  bed.cpu = std::make_unique<CpuModel>(bed.clock.get(), params.mips);
  bed.disk = std::make_unique<MemoryDisk>(params.disk_bytes / kSectorSize, bed.clock.get(),
                                          params.disk_model);
  return bed;
}

}  // namespace

Result<Testbed> MakeLfsTestbed(const TestbedParams& params) {
  Testbed bed = MakeMachine(params);
  RETURN_IF_ERROR(LfsFileSystem::Format(bed.disk.get(), params.lfs));
  ASSIGN_OR_RETURN(auto fs, LfsFileSystem::Mount(bed.disk.get(), bed.clock.get(),
                                                 bed.cpu.get(), params.lfs_options));
  bed.fs = std::move(fs);
  bed.paths = std::make_unique<PathFs>(bed.fs.get());
  bed.disk->ResetStats();
  return bed;
}

Result<Testbed> MakeFfsTestbed(const TestbedParams& params) {
  Testbed bed = MakeMachine(params);
  RETURN_IF_ERROR(FfsFileSystem::Format(bed.disk.get(), params.ffs));
  ASSIGN_OR_RETURN(auto fs, FfsFileSystem::Mount(bed.disk.get(), bed.clock.get(),
                                                 bed.cpu.get(), params.ffs_options));
  bed.fs = std::move(fs);
  bed.paths = std::make_unique<PathFs>(bed.fs.get());
  bed.disk->ResetStats();
  return bed;
}

}  // namespace logfs
