// Small fixed-width table printer for benchmark output. Produces the same
// rows/series the paper's figures report, in plain text.
#ifndef LOGFS_SRC_WORKLOAD_REPORT_H_
#define LOGFS_SRC_WORKLOAD_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

namespace logfs {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os) const;

  // Numeric formatting helpers.
  static std::string Fixed(double value, int decimals = 1);
  static std::string Int(uint64_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace logfs

#endif  // LOGFS_SRC_WORKLOAD_REPORT_H_
