// Shared-file workload generator for the multi-client file service.
//
// Produces per-client op schedules over a common set of files whose
// popularity follows a Zipf distribution — the classic shape of shared-file
// traffic (a few hot files, a long cold tail) and the regime where lease
// caching either pays (read sharing of hot files) or hurts (write sharing
// forces revocation storms). The structs here are plain data, independent
// of src/serve/, so the same schedules can drive the cluster simulator,
// the benchmark binary, and the crash oracle.
#ifndef LOGFS_SRC_WORKLOAD_SERVE_LOAD_H_
#define LOGFS_SRC_WORKLOAD_SERVE_LOAD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace logfs {

// Zipf(s) over ranks 1..n via inverse-CDF lookup: Sample(u) returns the
// 0-based rank whose cumulative probability covers u. O(n) setup, O(log n)
// per sample.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  // u must be in [0, 1).
  size_t Sample(double u) const;

 private:
  std::vector<double> cdf_;
};

struct ServeOp {
  enum class Kind { kRead, kWrite, kCommit };
  Kind kind = Kind::kRead;
  size_t file = 0;       // Index into ServeLoad::paths.
  uint64_t offset = 0;
  uint64_t length = 0;
  // Idle time before issuing this op (the client "thinking").
  double think_seconds = 0.0;
};

struct ServeLoad {
  std::vector<std::string> paths;
  // schedules[i] is client i's op sequence, in order.
  std::vector<std::vector<ServeOp>> schedules;
};

struct ServeLoadParams {
  size_t clients = 8;
  size_t files = 64;
  double zipf_s = 0.9;   // File-popularity skew.
  size_t ops_per_client = 100;
  double write_fraction = 0.3;
  uint64_t file_size = 64 * 1024;   // Offsets are drawn within this.
  uint64_t io_size = 4096;
  double mean_think_seconds = 0.05;  // Exponential think time between ops.
  double commit_probability = 0.05;  // Chance a write is followed by commit.
  uint64_t seed = 1;
};

ServeLoad MakeSharedLoad(const ServeLoadParams& params);

}  // namespace logfs

#endif  // LOGFS_SRC_WORKLOAD_SERVE_LOAD_H_
