#include "src/workload/concurrent_driver.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "src/util/status.h"

namespace logfs {
namespace {

uint64_t XorShift(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

// Deterministic content for (name, version): every byte derivable from the
// header, so verification needs only the expectation table.
void FillPattern(std::string_view name, uint32_t version, std::span<std::byte> out) {
  uint64_t h = 14695981039346656037ull;
  for (char c : name) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ull;
  }
  h = (h ^ version) * 1099511628211ull;
  if (h == 0) {
    h = 1;
  }
  for (size_t i = 0; i < out.size(); ++i) {
    if (i % 8 == 0) {
      XorShift(&h);
    }
    out[i] = static_cast<std::byte>(h >> (8 * (i % 8)));
  }
}

struct Expected {
  uint32_t version = 0;
  uint64_t size = 0;
  // The name the content was generated under: FillPattern keys on the
  // name at write time, and a rename changes the dirent, not the bytes.
  std::string content_name;
};

struct ThreadState {
  InodeNum dir = kRootIno;
  std::unordered_map<std::string, Expected> files;
  ConcurrentLoadReport local;
};

}  // namespace

Result<ConcurrentLoadReport> RunConcurrentLoad(FileSystem* fs,
                                               const ConcurrentLoadOptions& options) {
  if (options.threads == 0 || options.names_per_thread == 0) {
    return InvalidArgumentError("threads and names_per_thread must be positive");
  }
  std::vector<ThreadState> states(options.threads);
  // Working directories are created up front, single-threaded, so the
  // concurrent phase starts from a deterministic namespace.
  for (uint32_t t = 0; t < options.threads; ++t) {
    if (options.shared_root) {
      states[t].dir = fs->root();
    } else {
      ASSIGN_OR_RETURN(states[t].dir, fs->Create(fs->root(), "w" + std::to_string(t),
                                                 FileType::kDirectory));
    }
  }

  auto worker = [&](uint32_t t) {
    ThreadState& st = states[t];
    ConcurrentLoadReport& r = st.local;
    uint64_t rng = options.seed * 0x9E3779B97F4A7C15ull + t + 1;
    auto note = [&r](std::string msg) {
      ++r.unexpected_errors;
      if (r.problems.size() < 8) {
        r.problems.push_back(std::move(msg));
      }
    };
    std::vector<std::byte> buf;
    for (uint32_t op = 0; op < options.ops_per_thread; ++op) {
      const uint64_t roll = XorShift(&rng) % 100;
      const std::string name =
          "f" + std::to_string(t) + "_" + std::to_string(XorShift(&rng) % options.names_per_thread);
      auto it = st.files.find(name);
      if (roll < 45 || st.files.empty()) {
        // Write (creating if new): bump the version, rewrite the content.
        const uint32_t version = it == st.files.end() ? 1 : it->second.version + 1;
        const uint64_t size =
            (1 + XorShift(&rng) % options.max_file_blocks) * options.write_block_bytes;
        Result<InodeNum> ino = fs->Lookup(st.dir, name);
        if (!ino.ok()) {
          ino = fs->Create(st.dir, name, FileType::kRegular);
          if (ino.ok()) {
            ++r.creates;
          }
        }
        if (!ino.ok()) {
          note("create " + name + ": " + ino.status().ToString());
          continue;
        }
        buf.resize(size);
        FillPattern(name, version, buf);
        Result<uint64_t> n = fs->Write(*ino, 0, buf);
        if (!n.ok() || *n != size) {
          note("write " + name + ": " + n.status().ToString());
          continue;
        }
        if (it != st.files.end() && it->second.size > size) {
          if (Status s = fs->Truncate(*ino, size); !s.ok()) {
            note("truncate " + name + ": " + s.ToString());
            continue;
          }
        }
        st.files[name] = Expected{version, size, name};
        ++r.writes;
        r.bytes_written += size;
        if (options.fsync_interval != 0 && r.writes % options.fsync_interval == 0) {
          if (Status s = fs->Fsync(*ino); s.ok()) {
            ++r.fsyncs;
          } else {
            note("fsync " + name + ": " + s.ToString());
          }
        }
      } else if (roll < 70) {
        // Read back a file this thread owns and verify its bytes.
        if (it == st.files.end()) {
          continue;
        }
        Result<InodeNum> ino = fs->Lookup(st.dir, name);
        if (!ino.ok()) {
          note("lookup " + name + ": " + ino.status().ToString());
          continue;
        }
        buf.resize(it->second.size);
        Result<uint64_t> n = fs->Read(*ino, 0, buf);
        if (!n.ok() || *n != it->second.size) {
          note("read " + name + ": " + n.status().ToString());
          continue;
        }
        std::vector<std::byte> want(it->second.size);
        FillPattern(it->second.content_name, it->second.version, want);
        if (std::memcmp(buf.data(), want.data(), want.size()) != 0) {
          note("content mismatch in " + name + " v" + std::to_string(it->second.version));
          continue;
        }
        ++r.reads;
        r.bytes_read += *n;
      } else if (roll < 80) {
        if (it == st.files.end()) {
          continue;
        }
        if (Status s = fs->Unlink(st.dir, name); s.ok()) {
          st.files.erase(it);
          ++r.unlinks;
        } else {
          note("unlink " + name + ": " + s.ToString());
        }
      } else if (roll < 90) {
        // Rename within this thread's directory (possibly replacing).
        if (it == st.files.end()) {
          continue;
        }
        const std::string to = "f" + std::to_string(t) + "_" +
                               std::to_string(XorShift(&rng) % options.names_per_thread);
        if (to == name) {
          continue;
        }
        if (Status s = fs->Rename(st.dir, name, st.dir, to); s.ok()) {
          const Expected moved = it->second;  // Copy: the insert below may rehash.
          st.files.erase(it);
          st.files[to] = moved;
          ++r.renames;
        } else {
          note("rename " + name + " -> " + to + ": " + s.ToString());
        }
      } else {
        if (it == st.files.end()) {
          continue;
        }
        Result<InodeNum> ino = fs->Lookup(st.dir, name);
        if (!ino.ok()) {
          note("lookup " + name + ": " + ino.status().ToString());
          continue;
        }
        Result<FileStat> stat = fs->Stat(*ino);
        if (!stat.ok() || stat->size != it->second.size) {
          note("stat " + name + " size mismatch");
        }
      }
    }
  };

  const auto start = std::chrono::steady_clock::now();
  if (options.threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(options.threads);
    for (uint32_t t = 0; t < options.threads; ++t) {
      threads.emplace_back(worker, t);
    }
    for (std::thread& th : threads) {
      th.join();
    }
  }
  const auto end = std::chrono::steady_clock::now();

  ConcurrentLoadReport report;
  report.wall_seconds = std::chrono::duration<double>(end - start).count();
  for (ThreadState& st : states) {
    report.creates += st.local.creates;
    report.writes += st.local.writes;
    report.reads += st.local.reads;
    report.fsyncs += st.local.fsyncs;
    report.unlinks += st.local.unlinks;
    report.renames += st.local.renames;
    report.bytes_written += st.local.bytes_written;
    report.bytes_read += st.local.bytes_read;
    report.unexpected_errors += st.local.unexpected_errors;
    for (std::string& p : st.local.problems) {
      if (report.problems.size() < 16) {
        report.problems.push_back(std::move(p));
      }
    }
  }

  // Single-threaded final sweep: every file each thread believes exists
  // must be present with exactly the last-written content.
  std::vector<std::byte> buf;
  for (uint32_t t = 0; t < options.threads; ++t) {
    for (const auto& [name, want] : states[t].files) {
      Result<InodeNum> ino = fs->Lookup(states[t].dir, name);
      if (!ino.ok()) {
        report.problems.push_back("final: " + name + " missing");
        continue;
      }
      buf.resize(want.size);
      Result<uint64_t> n = fs->Read(*ino, 0, buf);
      if (!n.ok() || *n != want.size) {
        report.problems.push_back("final: " + name + " unreadable");
        continue;
      }
      std::vector<std::byte> expect(want.size);
      FillPattern(want.content_name, want.version, expect);
      if (std::memcmp(buf.data(), expect.data(), expect.size()) != 0) {
        report.problems.push_back("final: " + name + " content mismatch");
      }
    }
  }
  return report;
}

}  // namespace logfs
