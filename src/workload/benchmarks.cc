#include "src/workload/benchmarks.h"

#include <algorithm>
#include <cmath>

#include "src/lfs/lfs_file_system.h"
#include "src/obs/tracer.h"

namespace logfs {
namespace {

std::vector<std::byte> Payload(size_t size, uint64_t seed) {
  std::vector<std::byte> data(size);
  uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (size_t i = 0; i < size; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    data[i] = static_cast<std::byte>(x);
  }
  return data;
}

std::string SmallFilePath(const SmallFileParams& params, int index) {
  return "/bench/dir" + std::to_string(index % params.num_dirs) + "/file" +
         std::to_string(index);
}


// Every completed benchmark phase becomes a workload-category span (sim
// time), so a Chrome-trace export lines phases up against the cleaner and
// segment-writer spans they caused.
void RecordPhaseSpan(const Testbed& bed, const PhaseResult& phase) {
  if constexpr (obs::kMetricsEnabled) {
    obs::Tracer().RecordSpan("workload", phase.name, bed.Now() - phase.seconds, bed.Now(),
                             {{"operations", std::to_string(phase.operations)},
                              {"bytes", std::to_string(phase.bytes)}});
  }
}
}  // namespace

// --- Figure 3 -----------------------------------------------------------------

Result<std::vector<PhaseResult>> RunSmallFileBenchmark(Testbed& bed,
                                                       const SmallFileParams& params) {
  std::vector<PhaseResult> phases;
  RETURN_IF_ERROR(bed.paths->MkdirAll("/bench").status());
  for (int d = 0; d < params.num_dirs; ++d) {
    RETURN_IF_ERROR(bed.paths->Mkdir("/bench/dir" + std::to_string(d)).status());
  }
  RETURN_IF_ERROR(bed.fs->Sync());
  const auto payload = Payload(params.file_size, params.seed);

  // Phase 1: create. Ends with a sync so every file is durable — the same
  // end state the synchronous FFS creates reach.
  double t0 = bed.Now();
  for (int i = 0; i < params.num_files; ++i) {
    std::string leaf;
    // Create + write through the inode interface (one lookup, not a full
    // path walk per op, mirroring an open file descriptor).
    ASSIGN_OR_RETURN(InodeNum dir,
                     bed.fs->Lookup(bed.fs->Lookup(bed.fs->root(), "bench").value(),
                                    "dir" + std::to_string(i % params.num_dirs)));
    ASSIGN_OR_RETURN(InodeNum ino, bed.fs->Create(dir, "file" + std::to_string(i),
                                                  FileType::kRegular));
    ASSIGN_OR_RETURN(uint64_t written, bed.fs->Write(ino, 0, payload));
    if (written != params.file_size) {
      return IoError("short write in small-file benchmark");
    }
  }
  RETURN_IF_ERROR(bed.fs->Sync());
  phases.push_back(PhaseResult{"create", bed.Now() - t0,
                               static_cast<uint64_t>(params.num_files),
                               static_cast<uint64_t>(params.num_files) * params.file_size});
  RecordPhaseSpan(bed, phases.back());

  // "The file cache was flushed" between phases.
  RETURN_IF_ERROR(bed.fs->DropCaches());

  // Phase 2: read all files in creation order.
  std::vector<std::byte> buffer(params.file_size);
  t0 = bed.Now();
  for (int i = 0; i < params.num_files; ++i) {
    ASSIGN_OR_RETURN(InodeNum ino, bed.paths->Resolve(SmallFilePath(params, i)));
    ASSIGN_OR_RETURN(uint64_t read, bed.fs->Read(ino, 0, buffer));
    if (read != params.file_size) {
      return IoError("short read in small-file benchmark");
    }
  }
  phases.push_back(PhaseResult{"read", bed.Now() - t0,
                               static_cast<uint64_t>(params.num_files),
                               static_cast<uint64_t>(params.num_files) * params.file_size});
  RecordPhaseSpan(bed, phases.back());

  // Phase 3: delete everything.
  t0 = bed.Now();
  for (int i = 0; i < params.num_files; ++i) {
    RETURN_IF_ERROR(bed.paths->Unlink(SmallFilePath(params, i)));
  }
  RETURN_IF_ERROR(bed.fs->Sync());
  phases.push_back(PhaseResult{"delete", bed.Now() - t0,
                               static_cast<uint64_t>(params.num_files),
                               static_cast<uint64_t>(params.num_files) * params.file_size});
  RecordPhaseSpan(bed, phases.back());
  return phases;
}

// --- Figure 4 -----------------------------------------------------------------

Result<std::vector<PhaseResult>> RunLargeFileBenchmark(Testbed& bed,
                                                       const LargeFileParams& params) {
  std::vector<PhaseResult> phases;
  const uint64_t requests = params.file_bytes / params.request_size;
  const auto payload = Payload(params.request_size, params.seed);
  std::vector<std::byte> buffer(params.request_size);
  Rng rng(params.seed);

  ASSIGN_OR_RETURN(InodeNum ino, bed.fs->Create(bed.fs->root(), "bigfile",
                                                FileType::kRegular));
  auto run_phase = [&](const std::string& name, bool is_write, bool sequential,
                       bool sync_at_end) -> Status {
    // Random phases touch every request slot exactly once, in shuffled order.
    std::vector<uint64_t> order(requests);
    for (uint64_t i = 0; i < requests; ++i) {
      order[i] = i;
    }
    if (!sequential) {
      for (uint64_t i = requests - 1; i > 0; --i) {
        std::swap(order[i], order[rng.NextBelow(i + 1)]);
      }
    }
    const double t0 = bed.Now();
    for (uint64_t i = 0; i < requests; ++i) {
      const uint64_t offset = order[i] * params.request_size;
      if (is_write) {
        ASSIGN_OR_RETURN(uint64_t n, bed.fs->Write(ino, offset, payload));
        if (n != params.request_size) {
          return IoError("short write");
        }
      } else {
        ASSIGN_OR_RETURN(uint64_t n, bed.fs->Read(ino, offset, buffer));
        if (n != params.request_size) {
          return IoError("short read");
        }
      }
    }
    if (sync_at_end) {
      RETURN_IF_ERROR(bed.fs->Sync());
    }
    phases.push_back(
        PhaseResult{name, bed.Now() - t0, requests, requests * params.request_size});
    RecordPhaseSpan(bed, phases.back());
    return OkStatus();
  };

  RETURN_IF_ERROR(run_phase("seq_write", true, true, true));
  RETURN_IF_ERROR(bed.fs->DropCaches());
  RETURN_IF_ERROR(run_phase("seq_read", false, true, false));
  RETURN_IF_ERROR(run_phase("rand_write", true, false, true));
  RETURN_IF_ERROR(bed.fs->DropCaches());
  RETURN_IF_ERROR(run_phase("rand_read", false, false, false));
  RETURN_IF_ERROR(bed.fs->DropCaches());
  RETURN_IF_ERROR(run_phase("seq_reread", false, true, false));
  return phases;
}

// --- Figure 5 -----------------------------------------------------------------

Result<CleaningRateResult> RunCleaningRateBenchmark(Testbed& bed,
                                                    const CleaningRateParams& params) {
  auto* lfs = dynamic_cast<LfsFileSystem*>(bed.fs.get());
  if (lfs == nullptr) {
    return InvalidArgumentError("cleaning benchmark requires an LFS testbed");
  }
  const uint64_t fill_bytes =
      params.fill_bytes != 0 ? params.fill_bytes : lfs->UsableBytes() * 7 / 10;
  const int num_files = static_cast<int>(fill_bytes / params.file_size);
  const auto payload = Payload(params.file_size, params.seed);

  // Fill the log.
  const int dirs = 64;
  for (int d = 0; d < dirs; ++d) {
    RETURN_IF_ERROR(bed.paths->Mkdir("/d" + std::to_string(d)).status());
  }
  for (int i = 0; i < num_files; ++i) {
    const std::string path =
        "/d" + std::to_string(i % dirs) + "/f" + std::to_string(i);
    RETURN_IF_ERROR(bed.paths->WriteFile(path, payload));
    if (i % 512 == 511) {
      RETURN_IF_ERROR(bed.fs->Sync());
    }
  }
  RETURN_IF_ERROR(bed.fs->Sync());

  // Delete a random (1 - utilization) fraction.
  Rng rng(params.seed + 17);
  for (int i = 0; i < num_files; ++i) {
    if (rng.NextDouble() >= params.utilization) {
      const std::string path =
          "/d" + std::to_string(i % dirs) + "/f" + std::to_string(i);
      RETURN_IF_ERROR(bed.paths->Unlink(path));
    }
  }
  RETURN_IF_ERROR(bed.fs->Sync());

  // Measure: mean utilization of the dirty segments, then clean them all.
  CleaningRateResult result;
  result.utilization_target = params.utilization;
  // Snapshot the fragmented victims: cleaning refills fresh segments with
  // the survivors, and those must not be re-cleaned by this measurement.
  // Fully dead segments (live == 0) are included — the paper's u = 0 point
  // is exactly "segments with no live blocks have no cost".
  const auto& usage = lfs->usage();
  std::vector<uint32_t> victims;
  uint64_t live_total = 0;
  for (uint32_t seg = 0; seg < lfs->superblock().num_segments; ++seg) {
    if (usage.Get(seg).state == SegState::kDirty) {
      victims.push_back(seg);
      live_total += usage.Get(seg).live_bytes;
    }
  }
  result.utilization_measured =
      !victims.empty()
          ? static_cast<double>(live_total) /
                (victims.size() * static_cast<double>(lfs->superblock().segment_size))
          : 0.0;

  const double t0 = bed.Now();
  const uint64_t cleaned_before = lfs->cleaner_stats().segments_cleaned;
  const uint32_t clean_before = lfs->CleanSegmentCount();
  for (size_t i = 0; i < victims.size(); i += 8) {
    std::vector<uint32_t> batch(victims.begin() + i,
                                victims.begin() + std::min(victims.size(), i + 8));
    RETURN_IF_ERROR(lfs->CleanTheseSegments(batch).status());
  }
  result.seconds = bed.Now() - t0;
  result.segments_cleaned =
      static_cast<uint32_t>(lfs->cleaner_stats().segments_cleaned - cleaned_before);
  // Net clean space: how many more segments are clean now than before —
  // the paper's "rate at which clean segments can be generated".
  const uint32_t clean_after = lfs->CleanSegmentCount();
  result.net_clean_kb = clean_after > clean_before
                            ? (clean_after - clean_before) *
                                  (lfs->superblock().segment_size / 1024.0)
                            : 0.0;
  return result;
}

// --- Section 3.1 ----------------------------------------------------------------

Result<CreateDeleteLatencyResult> RunCreateDeleteLatency(Testbed& bed, int iterations) {
  const double t0 = bed.Now();
  for (int i = 0; i < iterations; ++i) {
    ASSIGN_OR_RETURN(InodeNum ino,
                     bed.fs->Create(bed.fs->root(), "probe", FileType::kRegular));
    (void)ino;
    RETURN_IF_ERROR(bed.fs->Unlink(bed.fs->root(), "probe"));
  }
  RETURN_IF_ERROR(bed.fs->Sync());
  CreateDeleteLatencyResult result;
  result.seconds_per_pair = (bed.Now() - t0) / iterations;
  return result;
}

// --- Office/engineering workload ---------------------------------------------------

size_t DrawOfficeFileSize(Rng& rng) {
  const double bucket = rng.NextDouble();
  auto log_uniform = [&rng](double lo, double hi) {
    const double x = std::log(lo) + rng.NextDouble() * (std::log(hi) - std::log(lo));
    return static_cast<size_t>(std::exp(x));
  };
  if (bucket < 0.80) {
    return log_uniform(256, 8 * 1024);  // "less than 8 kilobytes".
  }
  if (bucket < 0.95) {
    return log_uniform(8 * 1024, 64 * 1024);
  }
  return log_uniform(64 * 1024, 1024 * 1024);
}

Result<OfficeWorkloadResult> RunOfficeWorkload(Testbed& bed,
                                               const OfficeWorkloadParams& params) {
  Rng rng(params.seed);
  OfficeWorkloadResult result;
  std::vector<std::pair<std::string, size_t>> live;  // name -> size.
  uint64_t name_counter = 0;
  RETURN_IF_ERROR(bed.paths->MkdirAll("/office").status());

  // 80/20 working-set skew: 80% of accesses go to the first 20% of files.
  auto pick_index = [&](size_t count) -> size_t {
    if (rng.NextBool(0.8)) {
      return rng.NextBelow(std::max<size_t>(1, count / 5));
    }
    return rng.NextBelow(count);
  };

  const double t0 = bed.Now();
  for (int op = 0; op < params.operations; ++op) {
    const double dice = rng.NextDouble();
    if (dice < params.read_fraction && !live.empty()) {
      const auto& [name, size] = live[pick_index(live.size())];
      ASSIGN_OR_RETURN(auto data, bed.paths->ReadFile(name));
      result.bytes_read += data.size();
      (void)size;
    } else if (dice < params.read_fraction + params.delete_fraction && !live.empty()) {
      const size_t index = pick_index(live.size());
      RETURN_IF_ERROR(bed.paths->Unlink(live[index].first));
      live.erase(live.begin() + static_cast<ptrdiff_t>(index));
      ++result.files_deleted;
    } else {
      const size_t size = DrawOfficeFileSize(rng);
      std::string name;
      if (!live.empty() &&
          (static_cast<int>(live.size()) >= params.max_live_files || rng.NextBool(0.3))) {
        // Overwrite an existing file (whole-file rewrite, Section 3).
        const size_t index = pick_index(live.size());
        name = live[index].first;
        live[index].second = size;
      } else {
        name = "/office/f" + std::to_string(name_counter++);
        live.emplace_back(name, size);
        ++result.files_created;
      }
      RETURN_IF_ERROR(bed.paths->WriteFile(name, Payload(size, params.seed + op)));
      result.bytes_written += size;
    }
    ++result.operations;
    bed.clock->Advance(params.think_time_seconds);
    RETURN_IF_ERROR(bed.fs->Tick());
  }
  RETURN_IF_ERROR(bed.fs->Sync());
  result.seconds = bed.Now() - t0;
  return result;
}

}  // namespace logfs
