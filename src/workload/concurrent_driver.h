// ConcurrentDriver: a deterministic multi-threaded workload for exercising
// a thread-safe FileSystem front-end (src/lfs/sharded_lfs.h).
//
// N worker threads run a mixed create/write/read/fsync/unlink/rename
// stream. Each thread owns a private working set (its own directory and
// file-name space by default), tracks the expected content of every file it
// has written, and verifies every read against that expectation — so data
// races that scramble content, lose writes, or cross-wire caches surface as
// verification failures, not just crashes. A single-threaded sweep after
// the workers join re-verifies every surviving file through the same mount.
//
// Everything is deterministic per (seed, thread): names, sizes, contents
// and op mix derive from an xorshift64 stream, so a failure reproduces.
// Thread *interleaving* is of course not deterministic — that is the point:
// run under TSan (tools/check_tsan.sh) to turn interleavings into reports.
#ifndef LOGFS_SRC_WORKLOAD_CONCURRENT_DRIVER_H_
#define LOGFS_SRC_WORKLOAD_CONCURRENT_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fsbase/file_system.h"
#include "src/util/result.h"

namespace logfs {

struct ConcurrentLoadOptions {
  uint32_t threads = 4;
  uint32_t ops_per_thread = 200;
  // File sizes are 1..max_file_blocks "blocks" of write_block_bytes.
  uint32_t max_file_blocks = 4;
  uint32_t write_block_bytes = 4096;
  // Every k-th write is followed by Fsync (0 disables).
  uint32_t fsync_interval = 8;
  // All threads share the root directory instead of one directory per
  // thread — maximum namespace contention on one (shard-homed) directory.
  bool shared_root = false;
  uint64_t seed = 1;
  // Distinct file names per thread (bounded so unlink/rename hit).
  uint32_t names_per_thread = 32;
};

struct ConcurrentLoadReport {
  uint64_t creates = 0;
  uint64_t writes = 0;
  uint64_t reads = 0;
  uint64_t fsyncs = 0;
  uint64_t unlinks = 0;
  uint64_t renames = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  uint64_t unexpected_errors = 0;
  // Host wall-clock seconds of the threaded phase (the figure of merit for
  // bench_shard_scaling; simulated time is meaningless across threads).
  double wall_seconds = 0.0;
  // Content mismatches and unexpected errors (first few, with context).
  std::vector<std::string> problems;

  bool ok() const { return unexpected_errors == 0 && problems.empty(); }
};

// Runs the workload. The file system must be safe for concurrent calls
// when options.threads > 1. Leaves the created files in place (callers
// remount/check afterwards); returns the report.
Result<ConcurrentLoadReport> RunConcurrentLoad(FileSystem* fs,
                                               const ConcurrentLoadOptions& options);

}  // namespace logfs

#endif  // LOGFS_SRC_WORKLOAD_CONCURRENT_DRIVER_H_
