// Workload generators reproducing the paper's evaluation (Section 5) plus
// the synthetic office/engineering workload the design targets (Section 3).
//
// Each benchmark runs against the abstract FileSystem interface and reports
// phase results measured on the simulated clock, so every binary in bench/
// can run it unchanged on both LFS and FFS.
#ifndef LOGFS_SRC_WORKLOAD_BENCHMARKS_H_
#define LOGFS_SRC_WORKLOAD_BENCHMARKS_H_

#include <string>
#include <vector>

#include "src/fsbase/file_system.h"
#include "src/sim/sim_clock.h"
#include "src/util/result.h"
#include "src/util/rng.h"
#include "src/workload/testbed.h"

namespace logfs {

struct PhaseResult {
  std::string name;
  double seconds = 0.0;
  uint64_t operations = 0;
  uint64_t bytes = 0;

  double OpsPerSecond() const { return seconds > 0 ? operations / seconds : 0.0; }
  double KBytesPerSecond() const { return seconds > 0 ? bytes / 1024.0 / seconds : 0.0; }
};

// --- Figure 3: small-file I/O -----------------------------------------------
//
// Create `num_files` files of `file_size` bytes spread over `num_dirs`
// directories (10 MB of data in the paper: 10000 x 1 KB or 1000 x 10 KB);
// flush the cache; read them all back in creation order; delete them all.
struct SmallFileParams {
  int num_files = 10000;
  size_t file_size = 1024;
  int num_dirs = 10;
  uint64_t seed = 1;
};

Result<std::vector<PhaseResult>> RunSmallFileBenchmark(Testbed& bed,
                                                       const SmallFileParams& params);

// --- Figure 4: large-file I/O -----------------------------------------------
//
// Five phases on one file with `request_size` transfers: sequential write,
// sequential read, random write, random read, sequential re-read.
struct LargeFileParams {
  uint64_t file_bytes = 100ull << 20;
  size_t request_size = 8192;
  uint64_t seed = 2;
};

Result<std::vector<PhaseResult>> RunLargeFileBenchmark(Testbed& bed,
                                                       const LargeFileParams& params);

// --- Figure 5: cleaning rate vs segment utilization ---------------------------
//
// Fill the log with small files, delete all but `utilization` of them
// (uniformly, so segments end up at ~uniform utilization), then measure the
// rate at which the cleaner generates clean segments.
struct CleaningRateParams {
  double utilization = 0.5;       // Fraction of live blocks at cleaning time.
  uint64_t fill_bytes = 0;        // 0 = ~70% of the disk.
  size_t file_size = 4096;        // One block per file, as in the paper's 1 KB
                                  // files on 4 KB blocks (block-granular).
  uint64_t seed = 3;
};

struct CleaningRateResult {
  double utilization_target = 0.0;
  double utilization_measured = 0.0;  // Mean live fraction of cleaned victims.
  uint32_t segments_cleaned = 0;      // Gross victims processed.
  double net_clean_kb = 0.0;          // Net clean space generated (gross minus
                                      // the space the survivors re-occupy).
  double seconds = 0.0;
  // Paper's y-axis: KB/s at which clean segments are generated (net).
  double CleanKBytesPerSecond() const {
    return seconds > 0 ? net_clean_kb / seconds : 0.0;
  }
};

// Requires an LFS testbed (`bed.fs` must be an LfsFileSystem).
Result<CleaningRateResult> RunCleaningRateBenchmark(Testbed& bed,
                                                    const CleaningRateParams& params);

// --- Section 3.1: create/delete latency vs CPU speed ---------------------------
//
// Creates and deletes `iterations` empty files, fsyncing each step the way
// the BSD create path forces synchronous metadata writes; reports the mean
// latency of a create+delete pair. Sweeping CPU MIPS exposes whether the
// file system couples application speed to disk speed.
struct CreateDeleteLatencyResult {
  double seconds_per_pair = 0.0;
};

Result<CreateDeleteLatencyResult> RunCreateDeleteLatency(Testbed& bed, int iterations);

// --- Office/engineering synthetic workload (Section 3) -------------------------
//
// The design-target workload: many small short-lived files accessed whole,
// with an 80/20 working-set skew and occasional large files. Used by the
// workload-replay example and the cache ablation bench.
struct OfficeWorkloadParams {
  int operations = 5000;
  int max_live_files = 400;
  double read_fraction = 0.55;   // Reads vs (create/overwrite/delete).
  double delete_fraction = 0.2;
  double think_time_seconds = 0.05;  // Advances the clock between ops.
  uint64_t seed = 4;
};

struct OfficeWorkloadResult {
  uint64_t operations = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t files_created = 0;
  uint64_t files_deleted = 0;
  double seconds = 0.0;
  double OpsPerSecond() const { return seconds > 0 ? operations / seconds : 0.0; }
};

Result<OfficeWorkloadResult> RunOfficeWorkload(Testbed& bed,
                                               const OfficeWorkloadParams& params);

// Draws a file size from the office/engineering distribution ("a large
// number of relatively small files, less than 8 KB, accessed in their
// entirety"; a small tail of big files).
size_t DrawOfficeFileSize(Rng& rng);

}  // namespace logfs

#endif  // LOGFS_SRC_WORKLOAD_BENCHMARKS_H_
