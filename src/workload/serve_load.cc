#include "src/workload/serve_load.h"

#include <algorithm>
#include <cmath>

#include "src/util/rng.h"

namespace logfs {

ZipfSampler::ZipfSampler(size_t n, double s) {
  cdf_.reserve(n);
  double total = 0.0;
  for (size_t rank = 1; rank <= n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank), s);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) {
    c /= total;
  }
}

size_t ZipfSampler::Sample(double u) const {
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<size_t>(it - cdf_.begin());
}

ServeLoad MakeSharedLoad(const ServeLoadParams& params) {
  ServeLoad load;
  load.paths.reserve(params.files);
  for (size_t i = 0; i < params.files; ++i) {
    load.paths.push_back("/shared/f" + std::to_string(i));
  }
  ZipfSampler zipf(params.files, params.zipf_s);
  load.schedules.resize(params.clients);
  for (size_t c = 0; c < params.clients; ++c) {
    // Per-client stream: adding a client never perturbs the others' draws.
    Rng rng(params.seed * 1000003 + c);
    auto& schedule = load.schedules[c];
    schedule.reserve(params.ops_per_client);
    for (size_t i = 0; i < params.ops_per_client; ++i) {
      ServeOp op;
      op.file = zipf.Sample(rng.NextDouble());
      op.length = std::min(params.io_size, params.file_size);
      const uint64_t slots =
          std::max<uint64_t>(1, params.file_size / std::max<uint64_t>(1, op.length));
      op.offset = rng.NextBelow(slots) * op.length;
      op.think_seconds = rng.NextExponential(params.mean_think_seconds);
      op.kind = rng.NextBool(params.write_fraction) ? ServeOp::Kind::kWrite
                                                    : ServeOp::Kind::kRead;
      schedule.push_back(op);
      if (op.kind == ServeOp::Kind::kWrite && rng.NextBool(params.commit_probability)) {
        ServeOp commit;
        commit.kind = ServeOp::Kind::kCommit;
        commit.file = op.file;
        schedule.push_back(commit);
      }
    }
  }
  return load;
}

}  // namespace logfs
