// Line-oriented file-system trace format, recorder, and replayer.
//
// Format (one operation per line, '#' comments allowed):
//
//   mkdir  <path>
//   create <path>
//   write  <path> <offset> <length> [seed]
//   read   <path> <offset> <length>
//   unlink <path>
//   rmdir  <path>
//   rename <from> <to>
//   trunc  <path> <size>
//   sync
//   fsync  <path>
//   idle   <seconds>            # advance the clock, run Tick()
//   clean  <max_victims>        # LFS: CleanNow; no-op on other file systems
//
// Replaying the same trace against FFS and LFS testbeds is how the
// workload_replay example compares the systems on identical operation
// streams (the simulation equivalent of the paper's plan to put LFS "in
// continuous use by the Sprite user community").
#ifndef LOGFS_SRC_WORKLOAD_TRACE_H_
#define LOGFS_SRC_WORKLOAD_TRACE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/util/result.h"
#include "src/util/rng.h"
#include "src/workload/testbed.h"

namespace logfs {

struct TraceOp {
  enum class Kind {
    kMkdir,
    kCreate,
    kWrite,
    kRead,
    kUnlink,
    kRmdir,
    kRename,
    kTruncate,
    kSync,
    kFsync,
    kIdle,
    kClean,
  };
  Kind kind = Kind::kSync;
  std::string path;
  std::string path2;     // Rename target.
  uint64_t offset = 0;
  uint64_t length = 0;   // Also: truncate size; clean max_victims.
  uint64_t seed = 0;
  double seconds = 0.0;  // Idle time.
};

// The deterministic payload `write` ops carry: `length` bytes derived from
// `seed`. Shared with the crash explorer, whose workload model must predict
// file contents byte-for-byte.
std::vector<std::byte> TracePayload(size_t length, uint64_t seed);

// Parses a trace from text; reports the first malformed line.
Result<std::vector<TraceOp>> ParseTrace(std::string_view text);

// Serializes ops back to the text format.
std::string FormatTrace(const std::vector<TraceOp>& ops);

struct TraceReplayResult {
  uint64_t operations = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  double seconds = 0.0;       // Total elapsed simulated time.
  double idle_seconds = 0.0;  // Time spent in explicit `idle` ops.
  double ActiveSeconds() const { return seconds - idle_seconds; }
};

// Replays a trace against a testbed.
Result<TraceReplayResult> ReplayTrace(Testbed& bed, const std::vector<TraceOp>& ops);

// Generates a synthetic office/engineering trace of `operations` ops
// (deterministic for a seed), suitable for cross-FS replay.
std::vector<TraceOp> GenerateOfficeTrace(int operations, uint64_t seed);

// Generates a crash-exploration corpus: a mixed create / overwrite / fsync /
// unlink / sync / clean / idle stream sized so that fsyncs land often (lots
// of partial segments to tear) and the cleaner does real work. Used by
// ExploreCrashStates (src/crashsim/) and the crash_explorer example.
std::vector<TraceOp> GenerateCrashTrace(int operations, uint64_t seed);

}  // namespace logfs

#endif  // LOGFS_SRC_WORKLOAD_TRACE_H_
