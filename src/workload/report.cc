#include "src/workload/report.h"

#include <algorithm>
#include <cstdio>

namespace logfs {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      os << "  " << cell;
      for (size_t pad = cell.size(); pad < widths[c]; ++pad) {
        os << ' ';
      }
    }
    os << "\n";
  };
  print_row(headers_);
  std::vector<std::string> rule(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule[c] = std::string(widths[c], '-');
  }
  print_row(rule);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string TablePrinter::Fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string TablePrinter::Int(uint64_t value) { return std::to_string(value); }

}  // namespace logfs
