#include "src/fsbase/file_system.h"

namespace logfs {

Result<InodeNum> FileSystem::Symlink(InodeNum dir, std::string_view name,
                                     std::string_view target) {
  if (target.empty() || target.size() > 4096) {
    return InvalidArgumentError("symlink target must be 1..4096 bytes");
  }
  ASSIGN_OR_RETURN(InodeNum ino, Create(dir, name, FileType::kSymlink));
  ASSIGN_OR_RETURN(uint64_t written,
                   Write(ino, 0, std::as_bytes(std::span<const char>(target.data(),
                                                                     target.size()))));
  if (written != target.size()) {
    return IoError("short symlink target write");
  }
  return ino;
}

Result<std::string> FileSystem::Readlink(InodeNum ino) {
  ASSIGN_OR_RETURN(FileStat stat, Stat(ino));
  if (stat.type != FileType::kSymlink) {
    return InvalidArgumentError("readlink of a non-symlink");
  }
  std::string target(stat.size, '\0');
  ASSIGN_OR_RETURN(uint64_t read,
                   Read(ino, 0, std::as_writable_bytes(std::span<char>(target.data(),
                                                                       target.size()))));
  target.resize(read);
  return target;
}

}  // namespace logfs
