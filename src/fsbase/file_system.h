// FileSystem: the inode-level interface implemented by both FfsFileSystem
// and LfsFileSystem. Benchmarks, examples, and the model-based property
// tests are written against this interface so every experiment runs
// unmodified on both file systems.
#ifndef LOGFS_SRC_FSBASE_FILE_SYSTEM_H_
#define LOGFS_SRC_FSBASE_FILE_SYSTEM_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/fsbase/fs_types.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace logfs {

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  // Namespace operations. `dir` must be a directory inode.
  virtual Result<InodeNum> Create(InodeNum dir, std::string_view name, FileType type) = 0;
  virtual Result<InodeNum> Lookup(InodeNum dir, std::string_view name) = 0;
  virtual Status Unlink(InodeNum dir, std::string_view name) = 0;
  virtual Status Rmdir(InodeNum dir, std::string_view name) = 0;
  virtual Status Link(InodeNum dir, std::string_view name, InodeNum target) = 0;
  virtual Status Rename(InodeNum from_dir, std::string_view from_name, InodeNum to_dir,
                        std::string_view to_name) = 0;

  // Data operations.
  virtual Result<uint64_t> Read(InodeNum ino, uint64_t offset, std::span<std::byte> out) = 0;
  virtual Result<uint64_t> Write(InodeNum ino, uint64_t offset,
                                 std::span<const std::byte> data) = 0;
  virtual Status Truncate(InodeNum ino, uint64_t new_size) = 0;

  virtual Result<FileStat> Stat(InodeNum ino) = 0;
  virtual Result<std::vector<DirEntry>> ReadDir(InodeNum dir) = 0;

  // Symbolic links. The default implementations store the target string as
  // the link inode's data, which both file systems support natively; they
  // are virtual so an implementation could specialize (e.g. fast symlinks
  // embedded in the inode).
  virtual Result<InodeNum> Symlink(InodeNum dir, std::string_view name,
                                   std::string_view target);
  virtual Result<std::string> Readlink(InodeNum ino);

  // Durability.
  virtual Status Sync() = 0;             // sync(2): flush everything dirty.
  virtual Status Fsync(InodeNum ino) = 0;

  // Benchmark/test hooks.
  //
  // Drop all clean cached blocks, forcing subsequent reads from disk (the
  // paper's "the file cache was flushed" step between phases).
  virtual Status DropCaches() = 0;
  // Give background machinery a chance to run: age-based write-back and,
  // for LFS, the segment cleaner. Called by workloads between operations —
  // the simulated equivalent of the paper's cleaner overlapping normal use.
  virtual Status Tick() = 0;

  virtual InodeNum root() const { return kRootIno; }
  virtual std::string name() const = 0;
};

}  // namespace logfs

#endif  // LOGFS_SRC_FSBASE_FILE_SYSTEM_H_
