#include "src/fsbase/path.h"

namespace logfs {

std::vector<std::string> SplitPath(std::string_view path) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') {
      ++i;
    }
    size_t start = i;
    while (i < path.size() && path[i] != '/') {
      ++i;
    }
    if (i > start) {
      std::string_view part = path.substr(start, i - start);
      if (part != ".") {
        parts.emplace_back(part);
      }
    }
  }
  return parts;
}

Result<InodeNum> PathFs::Resolve(std::string_view path) {
  InodeNum current = fs_->root();
  for (const std::string& part : SplitPath(path)) {
    ASSIGN_OR_RETURN(current, fs_->Lookup(current, part));
  }
  return current;
}

Result<InodeNum> PathFs::ResolveParent(std::string_view path, std::string* leaf) {
  std::vector<std::string> parts = SplitPath(path);
  if (parts.empty() || parts.back() == "..") {
    return InvalidArgumentError("path has no final component");
  }
  *leaf = parts.back();
  parts.pop_back();
  InodeNum current = fs_->root();
  for (const std::string& part : parts) {
    ASSIGN_OR_RETURN(current, fs_->Lookup(current, part));
  }
  return current;
}

Result<InodeNum> PathFs::CreateFile(std::string_view path) {
  std::string leaf;
  ASSIGN_OR_RETURN(InodeNum dir, ResolveParent(path, &leaf));
  return fs_->Create(dir, leaf, FileType::kRegular);
}

Result<InodeNum> PathFs::Mkdir(std::string_view path) {
  std::string leaf;
  ASSIGN_OR_RETURN(InodeNum dir, ResolveParent(path, &leaf));
  return fs_->Create(dir, leaf, FileType::kDirectory);
}

Result<InodeNum> PathFs::MkdirAll(std::string_view path) {
  InodeNum current = fs_->root();
  for (const std::string& part : SplitPath(path)) {
    Result<InodeNum> next = fs_->Lookup(current, part);
    if (next.ok()) {
      current = *next;
      continue;
    }
    if (next.status().code() != ErrorCode::kNotFound) {
      return next;
    }
    ASSIGN_OR_RETURN(current, fs_->Create(current, part, FileType::kDirectory));
  }
  return current;
}

Status PathFs::Unlink(std::string_view path) {
  std::string leaf;
  ASSIGN_OR_RETURN(InodeNum dir, ResolveParent(path, &leaf));
  return fs_->Unlink(dir, leaf);
}

Status PathFs::Rmdir(std::string_view path) {
  std::string leaf;
  ASSIGN_OR_RETURN(InodeNum dir, ResolveParent(path, &leaf));
  return fs_->Rmdir(dir, leaf);
}

Status PathFs::Rename(std::string_view from, std::string_view to) {
  std::string from_leaf;
  ASSIGN_OR_RETURN(InodeNum from_dir, ResolveParent(from, &from_leaf));
  std::string to_leaf;
  ASSIGN_OR_RETURN(InodeNum to_dir, ResolveParent(to, &to_leaf));
  return fs_->Rename(from_dir, from_leaf, to_dir, to_leaf);
}

Result<InodeNum> PathFs::Symlink(std::string_view path, std::string_view target) {
  std::string leaf;
  ASSIGN_OR_RETURN(InodeNum dir, ResolveParent(path, &leaf));
  return fs_->Symlink(dir, leaf, target);
}

Result<std::string> PathFs::Readlink(std::string_view path) {
  ASSIGN_OR_RETURN(InodeNum ino, Resolve(path));
  return fs_->Readlink(ino);
}

Status PathFs::WriteFile(std::string_view path, std::span<const std::byte> data) {
  Result<InodeNum> ino = Resolve(path);
  if (!ino.ok()) {
    if (ino.status().code() != ErrorCode::kNotFound) {
      return ino.status();
    }
    ino = CreateFile(path);
    RETURN_IF_ERROR(ino.status());
  } else {
    RETURN_IF_ERROR(fs_->Truncate(*ino, 0));
  }
  ASSIGN_OR_RETURN(uint64_t written, fs_->Write(*ino, 0, data));
  if (written != data.size()) {
    return IoError("short write");
  }
  return OkStatus();
}

Result<std::vector<std::byte>> PathFs::ReadFile(std::string_view path) {
  ASSIGN_OR_RETURN(InodeNum ino, Resolve(path));
  ASSIGN_OR_RETURN(FileStat stat, fs_->Stat(ino));
  std::vector<std::byte> data(stat.size);
  if (stat.size > 0) {
    ASSIGN_OR_RETURN(uint64_t read, fs_->Read(ino, 0, data));
    data.resize(read);
  }
  return data;
}

Status PathFs::AppendFile(std::string_view path, std::span<const std::byte> data) {
  Result<InodeNum> ino = Resolve(path);
  if (!ino.ok()) {
    if (ino.status().code() != ErrorCode::kNotFound) {
      return ino.status();
    }
    ino = CreateFile(path);
    RETURN_IF_ERROR(ino.status());
  }
  ASSIGN_OR_RETURN(FileStat stat, fs_->Stat(*ino));
  ASSIGN_OR_RETURN(uint64_t written, fs_->Write(*ino, stat.size, data));
  if (written != data.size()) {
    return IoError("short write");
  }
  return OkStatus();
}

Result<FileStat> PathFs::Stat(std::string_view path) {
  ASSIGN_OR_RETURN(InodeNum ino, Resolve(path));
  return fs_->Stat(ino);
}

Result<std::vector<DirEntry>> PathFs::ReadDir(std::string_view path) {
  ASSIGN_OR_RETURN(InodeNum ino, Resolve(path));
  return fs_->ReadDir(ino);
}

bool PathFs::Exists(std::string_view path) { return Resolve(path).ok(); }

}  // namespace logfs
