// Variable-length directory-entry block format, shared by FFS and LFS
// (paper, Figure 2 caption: directory format identical in both).
//
// Each directory data block is a self-contained chain of records:
//
//   record := ino(u64) reclen(u16) namelen(u16) type(u8) name[namelen] pad
//
// reclen covers the record plus any following free space; the final record's
// reclen always reaches the end of the block (classic BSD ufs_dirent
// scheme). A record with ino == 0 is a hole. Deletion merges the freed
// record into its predecessor's reclen; the first record of a block is never
// merged away, it just becomes a hole.
#ifndef LOGFS_SRC_FSBASE_DIRENT_H_
#define LOGFS_SRC_FSBASE_DIRENT_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "src/fsbase/fs_types.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace logfs {

// Bytes needed for a record holding `name_len` name bytes (header + name,
// rounded up to 4-byte alignment).
size_t DirRecordSize(size_t name_len);

// View over one directory data block. Non-owning; the caller supplies the
// block buffer (typically a cache block).
class DirBlockView {
 public:
  explicit DirBlockView(std::span<std::byte> block) : block_(block) {}

  // Formats an empty directory block (a single hole record spanning it).
  Status InitEmpty();

  // Finds `name`; returns the entry or kNotFound.
  Result<DirEntry> Find(std::string_view name) const;

  // Inserts an entry. Fails with kNoSpace if the block has no large-enough
  // slot, kExists if the name is already present in this block.
  Status Insert(InodeNum ino, FileType type, std::string_view name);

  // Removes `name`; kNotFound if absent.
  Status Remove(std::string_view name);

  // Replaces the inode number of an existing entry (rename overwrite).
  Status SetInode(std::string_view name, InodeNum ino, FileType type);

  // All live entries in the block.
  Result<std::vector<DirEntry>> List() const;

  // True if the block contains no live entries.
  Result<bool> Empty() const;

  // Validates the record chain (used by checkers).
  Status Validate() const;

 private:
  struct RawRecord {
    size_t offset;
    InodeNum ino;
    uint16_t reclen;
    uint16_t namelen;
    FileType type;
    std::string_view name;
  };

  // Walk all records; returns kCorrupted on a malformed chain.
  Result<std::vector<RawRecord>> Records() const;
  void WriteRecord(size_t offset, InodeNum ino, uint16_t reclen, std::string_view name,
                   FileType type);

  std::span<std::byte> block_;
};

}  // namespace logfs

#endif  // LOGFS_SRC_FSBASE_DIRENT_H_
