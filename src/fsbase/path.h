// Path utilities and PathFs: a path-string convenience layer over the
// inode-level FileSystem interface (the moral equivalent of namei).
#ifndef LOGFS_SRC_FSBASE_PATH_H_
#define LOGFS_SRC_FSBASE_PATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/fsbase/file_system.h"
#include "src/fsbase/fs_types.h"
#include "src/util/result.h"

namespace logfs {

// Splits "/a/b//c/" into {"a", "b", "c"}. "." components are dropped; ".."
// is preserved (resolved against the directory tree during the walk).
std::vector<std::string> SplitPath(std::string_view path);

class PathFs {
 public:
  explicit PathFs(FileSystem* fs) : fs_(fs) {}

  FileSystem* fs() const { return fs_; }

  // Resolve a path to an inode.
  Result<InodeNum> Resolve(std::string_view path);
  // Resolve all but the last component; returns the directory inode and
  // leaves the final name in `leaf`.
  Result<InodeNum> ResolveParent(std::string_view path, std::string* leaf);

  Result<InodeNum> CreateFile(std::string_view path);
  Result<InodeNum> Mkdir(std::string_view path);
  // mkdir -p: creates all missing intermediate directories.
  Result<InodeNum> MkdirAll(std::string_view path);
  Status Unlink(std::string_view path);
  Status Rmdir(std::string_view path);
  Status Rename(std::string_view from, std::string_view to);
  // Creates a symlink at `path` pointing to `target` (not followed by
  // Resolve; use ReadlinkAt + re-resolution for traversal).
  Result<InodeNum> Symlink(std::string_view path, std::string_view target);
  Result<std::string> Readlink(std::string_view path);

  // Whole-file helpers used heavily by workloads and tests.
  Status WriteFile(std::string_view path, std::span<const std::byte> data);
  Result<std::vector<std::byte>> ReadFile(std::string_view path);
  Status AppendFile(std::string_view path, std::span<const std::byte> data);

  Result<FileStat> Stat(std::string_view path);
  Result<std::vector<DirEntry>> ReadDir(std::string_view path);
  bool Exists(std::string_view path);

 private:
  FileSystem* fs_;
};

}  // namespace logfs

#endif  // LOGFS_SRC_FSBASE_PATH_H_
