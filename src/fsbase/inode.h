// On-disk inode format, shared between FFS and LFS (paper Section 4: "LFS
// maintains many of the same metadata structures such as inodes and indirect
// blocks ... the format of inodes and indirect blocks is unchanged").
//
// Layout: classic BSD shape with 12 direct block pointers, one single
// indirect and one double indirect pointer. Block pointers are sector
// addresses (DiskAddr); kNoAddr marks holes. Each inode serializes into a
// fixed kInodeDiskSize-byte slot.
#ifndef LOGFS_SRC_FSBASE_INODE_H_
#define LOGFS_SRC_FSBASE_INODE_H_

#include <array>
#include <cstdint>
#include <span>

#include "src/fsbase/fs_types.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace logfs {

inline constexpr size_t kNumDirect = 12;
inline constexpr size_t kInodeDiskSize = 256;

struct Inode {
  FileType type = FileType::kNone;
  uint16_t mode = 0644;
  uint16_t nlink = 0;
  uint32_t uid = 0;
  uint32_t gid = 0;
  uint64_t size = 0;
  // atime is used by FFS only: LFS keeps access times in the inode map
  // (paper footnote 2) so that reads never relocate inodes.
  double atime = 0.0;
  double mtime = 0.0;
  double ctime = 0.0;
  // Generation number, bumped on reallocation of the inode slot (NFS-style);
  // distinct from the LFS inode-map version number.
  uint32_t generation = 0;
  std::array<DiskAddr, kNumDirect> direct{};
  DiskAddr single_indirect = kNoAddr;
  DiskAddr double_indirect = kNoAddr;

  Inode() { direct.fill(kNoAddr); }

  bool IsDirectory() const { return type == FileType::kDirectory; }
  bool IsRegular() const { return type == FileType::kRegular; }
  bool IsAllocated() const { return type != FileType::kNone; }
};

// Serializes `inode` into exactly kInodeDiskSize bytes.
Status EncodeInode(const Inode& inode, std::span<std::byte> out);

// Parses an inode from a kInodeDiskSize-byte slot.
Result<Inode> DecodeInode(std::span<const std::byte> in);

// --- Block-map geometry -----------------------------------------------------
//
// Mapping from a file block index to its slot in the direct/indirect tree.
// `entries_per_block` = block_size / sizeof(DiskAddr); it differs between
// FFS (8 KB blocks) and LFS (4 KB blocks), so the resolution is parameterized.

struct BlockLocation {
  enum class Level {
    kDirect,          // direct[direct_index]
    kSingleIndirect,  // single_indirect -> [l1_index]
    kDoubleIndirect,  // double_indirect -> [l1_index] -> [l2_index]
  };
  Level level = Level::kDirect;
  size_t direct_index = 0;
  uint64_t l1_index = 0;
  uint64_t l2_index = 0;
};

// Resolves `block_index` within a file; kTooLarge if beyond double-indirect
// reach.
Result<BlockLocation> ResolveBlockIndex(uint64_t block_index, uint64_t entries_per_block);

// Largest file block index + 1 representable with this geometry.
uint64_t MaxFileBlocks(uint64_t entries_per_block);

// Read/write one DiskAddr inside an indirect block buffer.
DiskAddr ReadIndirectEntry(std::span<const std::byte> block, uint64_t index);
void WriteIndirectEntry(std::span<std::byte> block, uint64_t index, DiskAddr addr);

}  // namespace logfs

#endif  // LOGFS_SRC_FSBASE_INODE_H_
