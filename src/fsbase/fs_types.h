// Common file-system types shared by FFS and LFS. Per the paper (Figure 2
// caption), "the formats of directories and inodes are the same" in both
// file systems; this module is where that shared format lives.
#ifndef LOGFS_SRC_FSBASE_FS_TYPES_H_
#define LOGFS_SRC_FSBASE_FS_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>

namespace logfs {

// Inode numbers. 0 is invalid; 1 is the root directory.
using InodeNum = uint32_t;
inline constexpr InodeNum kInvalidIno = 0;
inline constexpr InodeNum kRootIno = 1;

// Disk address of a block, expressed as the sector number of its first
// sector. kNoAddr marks an unallocated (hole) block pointer.
using DiskAddr = uint64_t;
inline constexpr DiskAddr kNoAddr = std::numeric_limits<DiskAddr>::max();

enum class FileType : uint8_t {
  kNone = 0,
  kRegular = 1,
  kDirectory = 2,
  kSymlink = 3,
};

// Maximum directory-entry name length (BSD FFS uses 255).
inline constexpr size_t kMaxNameLen = 255;

struct FileStat {
  InodeNum ino = kInvalidIno;
  FileType type = FileType::kNone;
  uint16_t nlink = 0;
  uint64_t size = 0;
  uint64_t blocks = 0;      // Allocated data blocks (including indirect).
  double atime = 0.0;       // Simulated seconds. LFS keeps this in the inode map.
  double mtime = 0.0;
  double ctime = 0.0;
  uint32_t version = 0;     // LFS inode-map version number (0 under FFS).
};

struct DirEntry {
  InodeNum ino = kInvalidIno;
  FileType type = FileType::kNone;
  std::string name;
};

}  // namespace logfs

#endif  // LOGFS_SRC_FSBASE_FS_TYPES_H_
