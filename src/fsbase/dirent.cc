#include "src/fsbase/dirent.h"

#include <cstring>

namespace logfs {
namespace {

constexpr size_t kHeaderSize = 8 + 2 + 2 + 1;  // ino, reclen, namelen, type.

uint64_t LoadU64(std::span<const std::byte> buffer, size_t offset) {
  uint64_t value = 0;
  std::memcpy(&value, buffer.data() + offset, sizeof(value));
  return value;
}

uint16_t LoadU16(std::span<const std::byte> buffer, size_t offset) {
  uint16_t value = 0;
  std::memcpy(&value, buffer.data() + offset, sizeof(value));
  return value;
}

void StoreU64(std::span<std::byte> buffer, size_t offset, uint64_t value) {
  std::memcpy(buffer.data() + offset, &value, sizeof(value));
}

void StoreU16(std::span<std::byte> buffer, size_t offset, uint16_t value) {
  std::memcpy(buffer.data() + offset, &value, sizeof(value));
}

}  // namespace

size_t DirRecordSize(size_t name_len) { return (kHeaderSize + name_len + 3) & ~size_t{3}; }

Status DirBlockView::InitEmpty() {
  if (block_.size() < DirRecordSize(0) || block_.size() > UINT16_MAX) {
    return InvalidArgumentError("directory block size out of range");
  }
  std::memset(block_.data(), 0, block_.size());
  WriteRecord(0, kInvalidIno, static_cast<uint16_t>(block_.size()), "", FileType::kNone);
  return OkStatus();
}

void DirBlockView::WriteRecord(size_t offset, InodeNum ino, uint16_t reclen,
                               std::string_view name, FileType type) {
  StoreU64(block_, offset, ino);
  StoreU16(block_, offset + 8, reclen);
  StoreU16(block_, offset + 10, static_cast<uint16_t>(name.size()));
  block_[offset + 12] = static_cast<std::byte>(type);
  if (!name.empty()) {
    std::memcpy(block_.data() + offset + kHeaderSize, name.data(), name.size());
  }
}

Result<std::vector<DirBlockView::RawRecord>> DirBlockView::Records() const {
  std::vector<RawRecord> records;
  size_t offset = 0;
  while (offset < block_.size()) {
    if (block_.size() - offset < kHeaderSize) {
      return CorruptedError("directory record header truncated");
    }
    RawRecord record;
    record.offset = offset;
    record.ino = static_cast<InodeNum>(LoadU64(block_, offset));
    record.reclen = LoadU16(block_, offset + 8);
    record.namelen = LoadU16(block_, offset + 10);
    const uint8_t type_raw = static_cast<uint8_t>(block_[offset + 12]);
    if (type_raw > static_cast<uint8_t>(FileType::kSymlink)) {
      return CorruptedError("directory record has bad type");
    }
    record.type = static_cast<FileType>(type_raw);
    if (record.reclen < DirRecordSize(record.namelen) ||
        offset + record.reclen > block_.size() || record.reclen % 4 != 0) {
      return CorruptedError("directory record has bad reclen");
    }
    record.name = std::string_view(
        reinterpret_cast<const char*>(block_.data() + offset + kHeaderSize), record.namelen);
    records.push_back(record);
    offset += record.reclen;
  }
  if (offset != block_.size()) {
    return CorruptedError("directory record chain does not span block");
  }
  return records;
}

Result<DirEntry> DirBlockView::Find(std::string_view name) const {
  ASSIGN_OR_RETURN(auto records, Records());
  for (const RawRecord& record : records) {
    if (record.ino != kInvalidIno && record.name == name) {
      return DirEntry{record.ino, record.type, std::string(record.name)};
    }
  }
  return NotFoundError("no directory entry with that name");
}

Status DirBlockView::Insert(InodeNum ino, FileType type, std::string_view name) {
  if (name.empty() || name.size() > kMaxNameLen) {
    return name.empty() ? InvalidArgumentError("empty name") : NameTooLongError(name);
  }
  const size_t needed = DirRecordSize(name.size());
  ASSIGN_OR_RETURN(auto records, Records());
  for (const RawRecord& record : records) {
    if (record.ino != kInvalidIno && record.name == name) {
      return ExistsError(name);
    }
  }
  for (const RawRecord& record : records) {
    if (record.ino == kInvalidIno && record.reclen >= needed) {
      // Claim the hole; keep its full reclen so trailing slack stays usable.
      WriteRecord(record.offset, ino, record.reclen, name, type);
      return OkStatus();
    }
    const size_t used = DirRecordSize(record.namelen);
    if (record.ino != kInvalidIno && record.reclen - used >= needed) {
      // Split: shrink the existing record, append the new one in its slack.
      WriteRecord(record.offset, record.ino, static_cast<uint16_t>(used),
                  record.name, record.type);
      WriteRecord(record.offset + used, ino, static_cast<uint16_t>(record.reclen - used), name,
                  type);
      return OkStatus();
    }
  }
  return NoSpaceError("no room in directory block");
}

Status DirBlockView::Remove(std::string_view name) {
  ASSIGN_OR_RETURN(auto records, Records());
  for (size_t i = 0; i < records.size(); ++i) {
    const RawRecord& record = records[i];
    if (record.ino == kInvalidIno || record.name != name) {
      continue;
    }
    if (i == 0) {
      // First record becomes a hole.
      WriteRecord(record.offset, kInvalidIno, record.reclen, "", FileType::kNone);
    } else {
      // Merge into the predecessor.
      const RawRecord& prev = records[i - 1];
      WriteRecord(prev.offset, prev.ino, static_cast<uint16_t>(prev.reclen + record.reclen),
                  prev.name, prev.type);
    }
    return OkStatus();
  }
  return NotFoundError("no directory entry with that name");
}

Status DirBlockView::SetInode(std::string_view name, InodeNum ino, FileType type) {
  ASSIGN_OR_RETURN(auto records, Records());
  for (const RawRecord& record : records) {
    if (record.ino != kInvalidIno && record.name == name) {
      WriteRecord(record.offset, ino, record.reclen, record.name, type);
      return OkStatus();
    }
  }
  return NotFoundError("no directory entry with that name");
}

Result<std::vector<DirEntry>> DirBlockView::List() const {
  ASSIGN_OR_RETURN(auto records, Records());
  std::vector<DirEntry> entries;
  for (const RawRecord& record : records) {
    if (record.ino != kInvalidIno) {
      entries.push_back(DirEntry{record.ino, record.type, std::string(record.name)});
    }
  }
  return entries;
}

Result<bool> DirBlockView::Empty() const {
  ASSIGN_OR_RETURN(auto records, Records());
  for (const RawRecord& record : records) {
    if (record.ino != kInvalidIno) {
      return false;
    }
  }
  return true;
}

Status DirBlockView::Validate() const { return Records().status(); }

}  // namespace logfs
