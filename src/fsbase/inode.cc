#include "src/fsbase/inode.h"

#include <cstring>

#include "src/util/serializer.h"

namespace logfs {

namespace {
constexpr uint32_t kInodeMagic = 0x494E4F44;  // "INOD"
}  // namespace

Status EncodeInode(const Inode& inode, std::span<std::byte> out) {
  if (out.size() < kInodeDiskSize) {
    return InvalidArgumentError("inode slot too small");
  }
  std::memset(out.data(), 0, kInodeDiskSize);
  BufferWriter writer(out.subspan(0, kInodeDiskSize));
  RETURN_IF_ERROR(writer.WriteU32(kInodeMagic));
  RETURN_IF_ERROR(writer.WriteU8(static_cast<uint8_t>(inode.type)));
  RETURN_IF_ERROR(writer.WriteU16(inode.mode));
  RETURN_IF_ERROR(writer.WriteU16(inode.nlink));
  RETURN_IF_ERROR(writer.WriteU32(inode.uid));
  RETURN_IF_ERROR(writer.WriteU32(inode.gid));
  RETURN_IF_ERROR(writer.WriteU64(inode.size));
  RETURN_IF_ERROR(writer.WriteF64(inode.atime));
  RETURN_IF_ERROR(writer.WriteF64(inode.mtime));
  RETURN_IF_ERROR(writer.WriteF64(inode.ctime));
  RETURN_IF_ERROR(writer.WriteU32(inode.generation));
  for (DiskAddr addr : inode.direct) {
    RETURN_IF_ERROR(writer.WriteU64(addr));
  }
  RETURN_IF_ERROR(writer.WriteU64(inode.single_indirect));
  RETURN_IF_ERROR(writer.WriteU64(inode.double_indirect));
  return OkStatus();
}

Result<Inode> DecodeInode(std::span<const std::byte> in) {
  if (in.size() < kInodeDiskSize) {
    return CorruptedError("inode slot truncated");
  }
  BufferReader reader(in.subspan(0, kInodeDiskSize));
  ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kInodeMagic) {
    return CorruptedError("bad inode magic");
  }
  Inode inode;
  ASSIGN_OR_RETURN(uint8_t type_raw, reader.ReadU8());
  if (type_raw > static_cast<uint8_t>(FileType::kSymlink)) {
    return CorruptedError("bad inode type");
  }
  inode.type = static_cast<FileType>(type_raw);
  ASSIGN_OR_RETURN(inode.mode, reader.ReadU16());
  ASSIGN_OR_RETURN(inode.nlink, reader.ReadU16());
  ASSIGN_OR_RETURN(inode.uid, reader.ReadU32());
  ASSIGN_OR_RETURN(inode.gid, reader.ReadU32());
  ASSIGN_OR_RETURN(inode.size, reader.ReadU64());
  ASSIGN_OR_RETURN(inode.atime, reader.ReadF64());
  ASSIGN_OR_RETURN(inode.mtime, reader.ReadF64());
  ASSIGN_OR_RETURN(inode.ctime, reader.ReadF64());
  ASSIGN_OR_RETURN(inode.generation, reader.ReadU32());
  for (DiskAddr& addr : inode.direct) {
    ASSIGN_OR_RETURN(addr, reader.ReadU64());
  }
  ASSIGN_OR_RETURN(inode.single_indirect, reader.ReadU64());
  ASSIGN_OR_RETURN(inode.double_indirect, reader.ReadU64());
  return inode;
}

Result<BlockLocation> ResolveBlockIndex(uint64_t block_index, uint64_t entries_per_block) {
  BlockLocation loc;
  if (block_index < kNumDirect) {
    loc.level = BlockLocation::Level::kDirect;
    loc.direct_index = static_cast<size_t>(block_index);
    return loc;
  }
  block_index -= kNumDirect;
  if (block_index < entries_per_block) {
    loc.level = BlockLocation::Level::kSingleIndirect;
    loc.l1_index = block_index;
    return loc;
  }
  block_index -= entries_per_block;
  if (block_index < entries_per_block * entries_per_block) {
    loc.level = BlockLocation::Level::kDoubleIndirect;
    loc.l1_index = block_index / entries_per_block;
    loc.l2_index = block_index % entries_per_block;
    return loc;
  }
  return TooLargeError("file block index beyond double-indirect reach");
}

uint64_t MaxFileBlocks(uint64_t entries_per_block) {
  return kNumDirect + entries_per_block + entries_per_block * entries_per_block;
}

// Inside indirect blocks the encoded value 0 means "hole" so that freshly
// allocated zero-filled blocks decode as all-holes (sector 0 holds a
// superblock and is never file data, so 0 is safe as a sentinel).
DiskAddr ReadIndirectEntry(std::span<const std::byte> block, uint64_t index) {
  uint64_t raw = 0;
  std::memcpy(&raw, block.data() + index * sizeof(uint64_t), sizeof(uint64_t));
  return raw == 0 ? kNoAddr : raw;
}

void WriteIndirectEntry(std::span<std::byte> block, uint64_t index, DiskAddr addr) {
  const uint64_t raw = addr == kNoAddr ? 0 : addr;
  std::memcpy(block.data() + index * sizeof(uint64_t), &raw, sizeof(uint64_t));
}

}  // namespace logfs
