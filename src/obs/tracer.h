// Structured-event tracing: timestamped spans and instant events in a
// bounded ring buffer, stamped with SimClock time so a given seed workload
// always produces the same trace. Exports as plain JSON (one object per
// event) or Chrome trace_event format ("catapult"/about:tracing/Perfetto
// loadable), with sim seconds mapped to trace microseconds.
//
// Spans are recorded at completion (begin time carried in the RAII
// SpanTimer), so the ring holds finished work only and a crash mid-span
// loses just that span. Like the metrics registry, the tracer compiles to
// no-ops under LOGFS_METRICS=OFF.
#ifndef LOGFS_SRC_OBS_TRACER_H_
#define LOGFS_SRC_OBS_TRACER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sim/sim_clock.h"

namespace logfs::obs {

struct TraceEvent {
  enum class Kind { kSpan, kInstant };
  Kind kind = Kind::kInstant;
  std::string category;  // subsystem, e.g. "cleaner", "recovery"
  std::string name;      // event within the subsystem, e.g. "pass"
  double start_seconds = 0.0;  // SimClock time
  double duration_seconds = 0.0;  // zero for instants
  uint64_t seq = 0;  // registration order; breaks ties at equal sim time
  // Causal identity (all zero for untraced events — exporters then omit the
  // fields entirely, so pre-existing golden snapshots are unchanged).
  uint64_t trace_id = 0;   // which end-to-end request this span belongs to
  uint64_t span_id = 0;    // this span's own id
  uint64_t parent_id = 0;  // enclosing span (0 = trace root)
  std::vector<uint64_t> links;  // other traces causally blocking this span
  std::vector<std::pair<std::string, std::string>> args;
};

class StructuredTracer {
 public:
  static StructuredTracer& Global();

  StructuredTracer() = default;
  StructuredTracer(const StructuredTracer&) = delete;
  StructuredTracer& operator=(const StructuredTracer&) = delete;

  // Oldest events are dropped (and counted) once the ring is full.
  void SetCapacity(size_t capacity);
  size_t capacity() const;

  void RecordSpan(std::string_view category, std::string_view name,
                  double start_seconds, double end_seconds,
                  std::vector<std::pair<std::string, std::string>> args = {});
  // Span carrying causal identity: trace/span/parent ids plus optional links
  // to other traces (e.g. the lease holder a parked request waited out).
  void RecordSpanIds(std::string_view category, std::string_view name,
                     double start_seconds, double end_seconds,
                     uint64_t trace_id, uint64_t span_id, uint64_t parent_id,
                     std::vector<uint64_t> links = {},
                     std::vector<std::pair<std::string, std::string>> args = {});
  void RecordInstant(std::string_view category, std::string_view name,
                     double at_seconds,
                     std::vector<std::pair<std::string, std::string>> args = {});

  // Monotonic id source for trace and span ids (shared so ids are unique
  // across both). Starts at 1; Clear() resets it, keeping seeded runs
  // byte-for-byte reproducible.
  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  size_t size() const;
  uint64_t dropped() const;
  std::vector<TraceEvent> Events() const;
  void Clear();  // empties the ring and zeroes dropped/seq

  // [{"kind": "span", "cat": ..., "name": ..., "t": ..., "dur": ..., "args": {...}}, ...]
  std::string ToJson() const;
  // Chrome trace_event JSON: {"traceEvents": [{"ph": "X"|"i", ...}]}.
  std::string ToChromeTrace() const;

 private:
  void Push(TraceEvent ev);

  mutable std::mutex mu_;
  std::deque<TraceEvent> ring_;
  size_t capacity_ = 65536;
  uint64_t dropped_ = 0;
  uint64_t next_seq_ = 0;
  std::atomic<uint64_t> next_id_{1};
};

inline StructuredTracer& Tracer() { return StructuredTracer::Global(); }

// RAII span: reads the clock at construction and records the span on
// destruction. A null clock records at t=0 with zero duration, so call
// sites don't need to special-case early setup paths.
class SpanTimer {
 public:
  SpanTimer(const SimClock* clock, std::string_view category, std::string_view name)
      : clock_(clock), category_(category), name_(name),
        start_(clock ? clock->Now() : 0.0) {}
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;
  ~SpanTimer() {
    if constexpr (kMetricsEnabled) {
      Tracer().RecordSpan(category_, name_, start_,
                          clock_ ? clock_->Now() : start_, std::move(args_));
    }
  }

  void AddArg(std::string_view key, std::string value) {
    if constexpr (kMetricsEnabled) {
      args_.emplace_back(std::string(key), std::move(value));
    }
  }

 private:
  const SimClock* clock_;
  std::string category_;
  std::string name_;
  double start_;
  std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace logfs::obs

#endif  // LOGFS_SRC_OBS_TRACER_H_
