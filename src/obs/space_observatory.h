// The space observatory: provenance-tagged write attribution, segment
// lifecycle / heat telemetry, and the live utilization distribution
// (DESIGN.md §6j).
//
// The paper's whole argument is about *where* the write bandwidth goes —
// foreground data vs cleaner copies vs checkpoint overhead — yet a single
// write-cost gauge cannot decompose it. This module gives every device
// write a provenance class at the append seam and publishes:
//
//   * logfs.io.<source>.{writes,bytes}   — per-class device-write counters;
//   * logfs.io.write_amplification      — Σ bytes / foreground-data bytes;
//   * logfs.seg.lifecycle.<event>       — allocated/sealed/cleaned/salvaged/
//                                         quarantined transition counters;
//   * logfs.seg.age_us / logfs.seg.heat — sim-time segment age at seal/clean
//                                         and overwrite-interval EWMA;
//   * logfs.seg.util.*                  — the paper's Fig. 3 distribution as
//                                         live gauges (decile buckets), which
//                                         the flight-recorder ring samples so
//                                         the trend survives crashes.
//
// Exact-sum invariant: every *acknowledged* LFS device write is attributed
// to exactly one class for the op count and its bytes are split across
// classes without loss, so
//
//     Σ logfs.io.<source>.bytes  == DiskStats.sectors_written * 512
//     Σ logfs.io.<source>.writes == DiskStats.write_ops
//
// for any run whose device traffic is all LFS-originated (tests hold this
// for single-shard, multi-shard, crash-recovery and fault-injection runs;
// writes a fault device fails before reaching the medium move neither side,
// and torn prefixes of *unacknowledged* writes are excluded by resetting
// both sides after remount).
//
// The enums are defined unconditionally (lfs code stores them as plain
// tags); the recording functions compile to empty inlines under
// -DLOGFS_METRICS=OFF and the .cc contributes no symbols at all.
#ifndef LOGFS_SRC_OBS_SPACE_OBSERVATORY_H_
#define LOGFS_SRC_OBS_SPACE_OBSERVATORY_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

#include "src/obs/metrics.h"

namespace logfs::obs {

// Provenance of a device write. Enum order encodes attribution precedence
// when a single partial segment mixes classes: the highest non-foreground
// class present owns the op count and the summary block; a purely foreground
// partial is owned by fg_data whenever it carried any data block (see
// SegmentBuilder::Flush).
enum class IoSource : uint8_t {
  kForegroundData = 0,  // File/directory content written for a client op.
  kForegroundMeta = 1,  // Inode blocks, indirects, imap, meta-log, summaries.
  kCheckpoint = 2,      // Checkpoint regions, usage blocks, black-box trailer.
  kCleaner = 3,         // Cleaner/scrubber relocation of live blocks.
  kRecovery = 4,        // Roll-forward replay and its terminal checkpoint.
  kRepair = 5,          // Cross-shard reconciliation / online repairer.
  kIntent = 6,          // Intent-log slots and region initialization.
};
inline constexpr size_t kIoSourceCount = 7;

constexpr std::string_view IoSourceName(IoSource source) {
  switch (source) {
    case IoSource::kForegroundData: return "fg_data";
    case IoSource::kForegroundMeta: return "fg_meta";
    case IoSource::kCheckpoint: return "checkpoint";
    case IoSource::kCleaner: return "cleaner";
    case IoSource::kRecovery: return "recovery";
    case IoSource::kRepair: return "repair";
    case IoSource::kIntent: return "intent";
  }
  return "unknown";
}

// Segment lifecycle transitions (lfs_seg_usage.h documents the state cycle).
enum class SegLifecycle : uint8_t {
  kAllocated = 0,    // kClean -> kActive (writer picked it).
  kSealed = 1,       // kActive -> kDirty (writer moved on).
  kCleaned = 2,      // kCleanPending -> kClean (checkpoint committed it).
  kSalvaged = 3,     // Scrubber copied live blocks out of a damaged segment.
  kQuarantined = 4,  // Media damage side-tracked it for good.
};
inline constexpr size_t kSegLifecycleCount = 5;

constexpr std::string_view SegLifecycleName(SegLifecycle event) {
  switch (event) {
    case SegLifecycle::kAllocated: return "allocated";
    case SegLifecycle::kSealed: return "sealed";
    case SegLifecycle::kCleaned: return "cleaned";
    case SegLifecycle::kSalvaged: return "salvaged";
    case SegLifecycle::kQuarantined: return "quarantined";
  }
  return "unknown";
}

// Utilization-distribution layout: decile buckets over u in [0, 1], bucket i
// counting segments with u in [i/10, (i+1)/10) (the last bucket closed at 1).
inline constexpr size_t kUtilBuckets = 10;

// One coherent read of the attribution counters (tests assert the exact-sum
// invariant on it; the bench reports the shares).
struct IoAttribution {
  uint64_t writes[kIoSourceCount] = {};
  uint64_t bytes[kIoSourceCount] = {};
  uint64_t total_writes = 0;
  uint64_t total_bytes = 0;
  // total_bytes / fg_data bytes; 0 until foreground data has been written.
  double write_amplification = 0.0;
};

#ifdef LOGFS_METRICS_DISABLED

// Compiled-out stand-ins: empty inlines the optimizer deletes; the .cc is
// empty in this configuration, so no observatory symbol exists to link.
inline void RecordWriteOp(IoSource) {}
inline void RecordWriteBytes(IoSource, uint64_t) {}
inline void RecordWrite(IoSource, uint64_t) {}
inline void RecordSegLifecycle(SegLifecycle) {}
inline void ObserveSegmentAge(double) {}
inline void ObserveSegmentHeat(double) {}
inline void PublishUtilization(std::span<const double>) {}
inline IoAttribution AttributionSnapshot() { return {}; }

#else

// Counts one acknowledged device-write op under `source` (bytes are added
// separately so a single vectored flush can split its bytes by class).
void RecordWriteOp(IoSource source);
// Adds attributed bytes without counting an op; refreshes the derived
// write-amplification gauge.
void RecordWriteBytes(IoSource source, uint64_t bytes);
// Single-class write: op + bytes in one call (checkpoint regions, intent
// slots, format writes — everything that is not a mixed partial segment).
void RecordWrite(IoSource source, uint64_t bytes);

// Bumps logfs.seg.lifecycle.<event>.
void RecordSegLifecycle(SegLifecycle event);
// Sim-time age of a segment at seal/clean, microseconds.
void ObserveSegmentAge(double age_us);
// Overwrite-interval EWMA of a segment retiring from the log, microseconds
// (smaller = hotter).
void ObserveSegmentHeat(double ewma_us);

// Publishes the decile histogram of `per_segment_utilization` (each value in
// [0, 1]) plus its mean and count as logfs.seg.util.* gauges. Gauges, not a
// registry histogram, because the distribution is a *state*, not a stream of
// events — the flight recorder samples gauges raw, so each ring sample holds
// the then-current distribution. Last writer wins; the sharded router
// republishes the merged view after per-shard ticks.
void PublishUtilization(std::span<const double> per_segment_utilization);

// Coherent-enough read of the attribution counters (relaxed loads; exact
// under any externally serialized workload, which is what the tests run).
IoAttribution AttributionSnapshot();

#endif  // LOGFS_METRICS_DISABLED

}  // namespace logfs::obs

#endif  // LOGFS_SRC_OBS_SPACE_OBSERVATORY_H_
