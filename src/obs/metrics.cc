#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace logfs::obs {
namespace {

// Exports must be byte-identical across runs and platforms for the same
// counter values, so floats are printed with an explicit fixed format
// instead of whatever the locale or default precision would do.
void AppendDouble(std::ostringstream& out, double v) {
  // JSON has no NaN/Infinity literals; any non-finite value would corrupt the
  // whole export, so both map to null (producers are expected to clamp —
  // see PaperWriteCost — this is the last line of defense).
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  std::ostringstream tmp;
  tmp.imbue(std::locale::classic());
  tmp.precision(17);
  tmp << v;
  std::string s = tmp.str();
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos) {
    s += ".0";
  }
  out << s;
}

void AppendJsonString(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

double HistogramQuantile(const MetricsSnapshot::HistogramValue& hv, double q) {
  if (hv.count == 0 || hv.buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank in (0, count]; rank 0 degenerates to the first occupied bucket's
  // lower edge via the max() below.
  const double rank = std::max(q * static_cast<double>(hv.count), 1e-12);
  double cum = 0.0;
  for (size_t i = 0; i < hv.buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(hv.buckets[i]);
    if (cum + in_bucket < rank) {
      cum += in_bucket;
      continue;
    }
    if (i == hv.bounds.size()) {
      // Overflow bucket: no upper edge to interpolate toward.
      return hv.bounds.empty() ? 0.0 : hv.bounds.back();
    }
    const double upper = hv.bounds[i];
    const double lower = i == 0 ? std::min(0.0, upper) : hv.bounds[i - 1];
    if (in_bucket <= 0.0) return upper;
    const double frac = (rank - cum) / in_bucket;
    return lower + frac * (upper - lower);
  }
  return hv.bounds.empty() ? 0.0 : hv.bounds.back();
}

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
}

void Histogram::Observe(double value) {
  if constexpr (!kMetricsEnabled) {
    (void)value;
    return;
  }
  size_t i = std::upper_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  // A value exactly on a bound lands in the bucket whose upper bound it is.
  if (i > 0 && bounds_[i - 1] == value) --i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // No atomic double fetch_add pre-C++20 on all toolchains; CAS loop keeps
  // the sum exact under the concurrency unit test.
  double old = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(old, old + value, std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  if constexpr (!kMetricsEnabled) {
    static Counter dummy;
    return dummy;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  if constexpr (!kMetricsEnabled) {
    static Gauge dummy;
    return dummy;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::span<const double> upper_bounds) {
  if constexpr (!kMetricsEnabled) {
    static Histogram dummy{std::vector<double>{}};
    return dummy;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::vector<double>(
                          upper_bounds.begin(), upper_bounds.end())))
             .first;
  }
  return *it->second;
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramValue hv;
    hv.bounds = h->bounds();
    hv.buckets.resize(hv.bounds.size() + 1);
    for (size_t i = 0; i < hv.buckets.size(); ++i) hv.buckets[i] = h->BucketCount(i);
    hv.count = h->Count();
    hv.sum = h->Sum();
    snap.histograms[name] = std::move(hv);
  }
  return snap;
}

std::string MetricsRegistry::ToJson() const {
  MetricsSnapshot snap = Snapshot();
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(out, name);
    out << ": " << v;
  }
  out << (snap.counters.empty() ? "}" : "\n  }");
  out << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(out, name);
    out << ": ";
    AppendDouble(out, v);
  }
  out << (snap.gauges.empty() ? "}" : "\n  }");
  out << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hv] : snap.histograms) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(out, name);
    out << ": {\"bounds\": [";
    for (size_t i = 0; i < hv.bounds.size(); ++i) {
      if (i) out << ", ";
      AppendDouble(out, hv.bounds[i]);
    }
    out << "], \"buckets\": [";
    for (size_t i = 0; i < hv.buckets.size(); ++i) {
      if (i) out << ", ";
      out << hv.buckets[i];
    }
    out << "], \"count\": " << hv.count << ", \"sum\": ";
    AppendDouble(out, hv.sum);
    out << ", \"p50\": ";
    AppendDouble(out, HistogramQuantile(hv, 0.50));
    out << ", \"p90\": ";
    AppendDouble(out, HistogramQuantile(hv, 0.90));
    out << ", \"p99\": ";
    AppendDouble(out, HistogramQuantile(hv, 0.99));
    out << "}";
  }
  out << (snap.histograms.empty() ? "}" : "\n  }");
  out << "\n}\n";
  return out.str();
}

std::string MetricsRegistry::ToText() const {
  MetricsSnapshot snap = Snapshot();
  std::ostringstream out;
  out.imbue(std::locale::classic());
  for (const auto& [name, v] : snap.counters) {
    out << name << " " << v << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    out << name << " ";
    AppendDouble(out, v);
    out << "\n";
  }
  for (const auto& [name, hv] : snap.histograms) {
    out << name << " count=" << hv.count << " sum=";
    AppendDouble(out, hv.sum);
    out << " buckets=[";
    for (size_t i = 0; i < hv.buckets.size(); ++i) {
      if (i) out << ",";
      out << hv.buckets[i];
    }
    out << "]\n";
    for (auto [suffix, q] : {std::pair{".p50", 0.50}, {".p90", 0.90}, {".p99", 0.99}}) {
      out << name << suffix << " ";
      AppendDouble(out, HistogramQuantile(hv, q));
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace logfs::obs
