#include "src/obs/tracer.h"

#include <cmath>
#include <sstream>

namespace logfs::obs {
namespace {

void AppendJsonString(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void AppendDouble(std::ostringstream& out, double v) {
  if (std::isnan(v)) {
    out << "null";
    return;
  }
  std::ostringstream tmp;
  tmp.imbue(std::locale::classic());
  tmp.precision(17);
  tmp << v;
  std::string s = tmp.str();
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos) {
    s += ".0";
  }
  out << s;
}

void AppendArgs(std::ostringstream& out,
                const std::vector<std::pair<std::string, std::string>>& args) {
  out << "{";
  bool first = true;
  for (const auto& [key, value] : args) {
    if (!first) out << ", ";
    first = false;
    AppendJsonString(out, key);
    out << ": ";
    AppendJsonString(out, value);
  }
  out << "}";
}

}  // namespace

StructuredTracer& StructuredTracer::Global() {
  static StructuredTracer* tracer = new StructuredTracer();
  return *tracer;
}

void StructuredTracer::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
}

size_t StructuredTracer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void StructuredTracer::Push(TraceEvent ev) {
  std::lock_guard<std::mutex> lock(mu_);
  ev.seq = next_seq_++;
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(ev));
}

void StructuredTracer::RecordSpan(
    std::string_view category, std::string_view name, double start_seconds,
    double end_seconds, std::vector<std::pair<std::string, std::string>> args) {
  if constexpr (!kMetricsEnabled) {
    (void)category; (void)name; (void)start_seconds; (void)end_seconds; (void)args;
    return;
  }
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kSpan;
  ev.category = std::string(category);
  ev.name = std::string(name);
  ev.start_seconds = start_seconds;
  ev.duration_seconds = end_seconds > start_seconds ? end_seconds - start_seconds : 0.0;
  ev.args = std::move(args);
  Push(std::move(ev));
}

void StructuredTracer::RecordSpanIds(
    std::string_view category, std::string_view name, double start_seconds,
    double end_seconds, uint64_t trace_id, uint64_t span_id,
    uint64_t parent_id, std::vector<uint64_t> links,
    std::vector<std::pair<std::string, std::string>> args) {
  if constexpr (!kMetricsEnabled) {
    (void)category; (void)name; (void)start_seconds; (void)end_seconds;
    (void)trace_id; (void)span_id; (void)parent_id; (void)links; (void)args;
    return;
  }
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kSpan;
  ev.category = std::string(category);
  ev.name = std::string(name);
  ev.start_seconds = start_seconds;
  ev.duration_seconds = end_seconds > start_seconds ? end_seconds - start_seconds : 0.0;
  ev.trace_id = trace_id;
  ev.span_id = span_id;
  ev.parent_id = parent_id;
  ev.links = std::move(links);
  ev.args = std::move(args);
  Push(std::move(ev));
}

void StructuredTracer::RecordInstant(
    std::string_view category, std::string_view name, double at_seconds,
    std::vector<std::pair<std::string, std::string>> args) {
  if constexpr (!kMetricsEnabled) {
    (void)category; (void)name; (void)at_seconds; (void)args;
    return;
  }
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kInstant;
  ev.category = std::string(category);
  ev.name = std::string(name);
  ev.start_seconds = at_seconds;
  ev.args = std::move(args);
  Push(std::move(ev));
}

size_t StructuredTracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t StructuredTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<TraceEvent> StructuredTracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TraceEvent>(ring_.begin(), ring_.end());
}

void StructuredTracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  dropped_ = 0;
  next_seq_ = 0;
  next_id_.store(1, std::memory_order_relaxed);
}

std::string StructuredTracer::ToJson() const {
  std::vector<TraceEvent> events = Events();
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << "[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    out << (first ? "\n" : ",\n") << "  {\"kind\": ";
    first = false;
    out << (ev.kind == TraceEvent::Kind::kSpan ? "\"span\"" : "\"instant\"");
    out << ", \"cat\": ";
    AppendJsonString(out, ev.category);
    out << ", \"name\": ";
    AppendJsonString(out, ev.name);
    out << ", \"t\": ";
    AppendDouble(out, ev.start_seconds);
    out << ", \"dur\": ";
    AppendDouble(out, ev.duration_seconds);
    out << ", \"seq\": " << ev.seq;
    if (ev.trace_id != 0) {
      out << ", \"trace\": " << ev.trace_id << ", \"span\": " << ev.span_id
          << ", \"parent\": " << ev.parent_id;
      if (!ev.links.empty()) {
        out << ", \"links\": [";
        for (size_t i = 0; i < ev.links.size(); ++i) {
          if (i) out << ", ";
          out << ev.links[i];
        }
        out << "]";
      }
    }
    out << ", \"args\": ";
    AppendArgs(out, ev.args);
    out << "}";
  }
  out << (first ? "]\n" : "\n]\n");
  return out.str();
}

std::string StructuredTracer::ToChromeTrace() const {
  std::vector<TraceEvent> events = Events();
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& ev : events) {
    out << (first ? "\n" : ",\n") << "  {";
    first = false;
    if (ev.kind == TraceEvent::Kind::kSpan) {
      out << "\"ph\": \"X\", \"dur\": ";
      AppendDouble(out, ev.duration_seconds * 1e6);
      out << ", ";
    } else {
      out << "\"ph\": \"i\", \"s\": \"g\", ";
    }
    out << "\"ts\": ";
    AppendDouble(out, ev.start_seconds * 1e6);
    out << ", \"pid\": 1, \"tid\": 1, \"cat\": ";
    AppendJsonString(out, ev.category);
    out << ", \"name\": ";
    AppendJsonString(out, ev.name);
    out << ", \"args\": ";
    if (ev.trace_id != 0) {
      auto args = ev.args;
      args.emplace_back("trace", std::to_string(ev.trace_id));
      args.emplace_back("span", std::to_string(ev.span_id));
      args.emplace_back("parent", std::to_string(ev.parent_id));
      AppendArgs(out, args);
    } else {
      AppendArgs(out, ev.args);
    }
    out << "}";
    // Cross-layer causality as Chrome flow events: a trace root opens a
    // flow keyed by its trace id; any span linking to that trace closes an
    // enclosing-slice flow step, so about:tracing/Perfetto draw arrows from
    // the blocking request to the blocked span.
    if (ev.kind == TraceEvent::Kind::kSpan && ev.trace_id != 0) {
      if (ev.parent_id == 0) {
        out << ",\n  {\"ph\": \"s\", \"id\": " << ev.trace_id << ", \"ts\": ";
        AppendDouble(out, ev.start_seconds * 1e6);
        out << ", \"pid\": 1, \"tid\": 1, \"cat\": ";
        AppendJsonString(out, ev.category);
        out << ", \"name\": \"flow\"}";
      }
      for (uint64_t link : ev.links) {
        out << ",\n  {\"ph\": \"f\", \"bp\": \"e\", \"id\": " << link << ", \"ts\": ";
        AppendDouble(out, ev.start_seconds * 1e6);
        out << ", \"pid\": 1, \"tid\": 1, \"cat\": ";
        AppendJsonString(out, ev.category);
        out << ", \"name\": \"flow\"}";
      }
    }
  }
  out << (first ? "], " : "\n], ");
  out << "\"displayTimeUnit\": \"ms\"}\n";
  return out.str();
}

}  // namespace logfs::obs
