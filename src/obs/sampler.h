// Flight-recorder telemetry: periodic, sim-time-driven samples of the
// MetricsRegistry kept in a bounded, delta-compressed ring.
//
// The paper's evaluation is all about *trends* — write cost as utilization
// drifts, cleaner pressure during overwrite churn — which a point-in-time
// snapshot cannot show. The sampler records one TelemetrySample per cadence
// tick: counter *deltas* against the previous retained sample (counters are
// monotone, so deltas are small and rates fall out as delta/dt), raw gauge
// values, and per-histogram count/sum plus interpolated p50/p90/p99.
//
// When the ring is full the oldest sample is folded into the ring base
// (base_counters += its deltas, base_time = its t), so absolute values and
// rates stay exact for every retained sample no matter how much history has
// been evicted.
//
// TelemetryRing is both the in-memory representation and the black-box wire
// format: Encode() produces a CRC-sealed little-endian blob sized to fit a
// byte budget by folding oldest samples first (and degrading to a bare
// header if even the name tables don't fit), Decode() validates and restores
// it. LfsFileSystem stows the encoded ring in the checkpoint-region tail on
// every checkpoint (src/lfs/lfs_blackbox.h), which is what `lfs_inspect
// blackbox` digs back out of a crashed image.
//
// With LOGFS_METRICS=OFF the sampler is a no-op: no samples are taken and
// SerializeRing returns an empty blob, so nothing is embedded on disk.
#ifndef LOGFS_SRC_OBS_SAMPLER_H_
#define LOGFS_SRC_OBS_SAMPLER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sim/sim_clock.h"
#include "src/util/result.h"

namespace logfs::obs {

// One cadence tick's worth of telemetry. Vectors are indexed by the ring's
// name tables; a sample taken before an instrument existed simply has a
// shorter vector (readers pad with zero / NaN).
struct TelemetrySample {
  double t = 0.0;
  // Delta vs the previous retained sample (the oldest retained sample's
  // deltas are vs TelemetryRing::base_counters).
  std::vector<uint64_t> counter_deltas;
  std::vector<double> gauges;  // NaN = gauge not yet registered at sample time
  struct HistState {
    uint64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0, p90 = 0.0, p99 = 0.0;
  };
  std::vector<HistState> hists;
};

// The delta-compressed ring: in-memory form and black-box wire format.
struct TelemetryRing {
  uint64_t seq = 0;        // bumped every Encode; freshest ring wins at recovery
  double base_time = 0.0;  // time of the last evicted sample (rate base for [0])
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> hist_names;
  std::vector<uint64_t> base_counters;  // absolute values just before samples[0]
  std::vector<TelemetrySample> samples;

  // Absolute counter value at sample i (base + prefix sum of deltas).
  uint64_t CounterAt(size_t sample, size_t counter) const;
  // delta / dt against the previous retained sample (0 when dt <= 0).
  double RateAt(size_t sample, size_t counter) const;

  // CRC-sealed little-endian blob at most `max_bytes` long. Oldest samples
  // are folded into the base until the blob fits; if even a sample-free ring
  // with name tables is too big, degrades to a bare nameless header; if that
  // still does not fit, returns empty (caller skips embedding).
  std::vector<std::byte> Encode(size_t max_bytes) const;
  static Result<TelemetryRing> Decode(std::span<const std::byte> blob);
};

// Periodically snapshots a MetricsRegistry into a TelemetryRing. Thread-safe
// (the registry already is; tools may poll while a workload runs), though the
// simulation itself is single-threaded.
class TelemetrySampler {
 public:
  struct Options {
    double interval_seconds = 1.0;  // sim seconds between MaybeSample hits
    size_t capacity = 256;          // retained samples before folding
  };

  // `registry` defaults to the process-wide MetricsRegistry::Global().
  TelemetrySampler() : TelemetrySampler(Options{}, nullptr) {}
  explicit TelemetrySampler(Options opts, MetricsRegistry* registry = nullptr);

  // Samples iff the cadence deadline has arrived (the first call always
  // fires). Returns whether a sample was taken. No-op when metrics are
  // compiled out.
  bool MaybeSample(double now);
  // Unconditional sample (checkpoint paths want one regardless of cadence).
  void SampleNow(double now);

  size_t size() const;             // retained samples
  uint64_t total_samples() const;  // including evicted ones
  const Options& options() const { return opts_; }

  // Copy of the current ring (seq stamped as it would be on the next Encode).
  TelemetryRing Ring() const;
  // Encode the current ring into at most `max_bytes`; bumps seq.
  std::vector<std::byte> SerializeRing(size_t max_bytes) const;

  // Continue a prior recorder's numbering: the next serialized ring gets a
  // seq of at least `next_seq`. Never moves the sequence backwards — mount
  // paths call this with (recovered ring seq + 1) so "highest seq wins"
  // recovery keeps preferring the freshest write across remounts.
  void SeedSequence(uint64_t next_seq);

  void Reset();

 private:
  void TakeSample(double now);  // caller holds mu_

  const Options opts_;
  MetricsRegistry* const registry_;
  mutable std::mutex mu_;
  PeriodicTimer timer_;
  TelemetryRing ring_;
  std::map<std::string, size_t, std::less<>> counter_idx_;
  std::map<std::string, size_t, std::less<>> gauge_idx_;
  std::map<std::string, size_t, std::less<>> hist_idx_;
  std::vector<uint64_t> last_counters_;  // absolute values at the last sample
  uint64_t total_samples_ = 0;
  mutable uint64_t next_seq_ = 1;
};

}  // namespace logfs::obs

#endif  // LOGFS_SRC_OBS_SAMPLER_H_
