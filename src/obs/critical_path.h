// Critical-path analysis over assembled trace trees.
//
// The tracer ring holds flat span records; this module groups them by trace
// id, wires parent links into one tree per request, and walks each tree
// attributing every instant of the root's [start, end] interval to exactly
// one of eight canonical classes:
//
//   network      — wire time of the RPC attempt that actually won
//   retransmit   — time waited out on attempts that were dropped or lost
//   dedup_parked — lease-wait time during which a retransmit sat absorbed
//                  in the server's parked-request window
//   lease_wait   — time parked behind a conflicting lease holder (recall,
//                  writer-fairness barrier, grace fence, min-hold)
//   shard_lock   — shard-mutex wait + router time under the lock
//   disk         — device time (including retry backoff) inside LFS ops
//   cleaner      — foreground CleanNow time inside LFS ops
//   cache        — everything else: client/server CPU and cache-hit work
//
// The walk is an interval sweep: a node's interval is partitioned between
// its children (clipped to the parent, earliest-start wins an overlap) and
// its own self-time, which goes to the node's class. LFS "op" spans split
// their self-time proportionally by the disk/cleaner/retry/cache argument
// microseconds PR 5 already attaches (which sum to the span's duration by
// construction). Because the sweep partitions, the per-class seconds sum to
// the root span's duration *exactly* — the property the seeded serve
// scenario test asserts for every completed request.
//
// SloTracker turns breakdowns into the logfs.slo.* / logfs.path.* metric
// families: per-op latency histograms, p50/p99 gauges, and violation
// counters against a configurable latency target.
#ifndef LOGFS_SRC_OBS_CRITICAL_PATH_H_
#define LOGFS_SRC_OBS_CRITICAL_PATH_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/obs/tracer.h"

namespace logfs::obs {

enum class PathClass {
  kNetwork = 0,
  kRetransmit,
  kDedupParked,
  kLeaseWait,
  kShardLock,
  kDisk,
  kCleaner,
  kCache,
};
inline constexpr size_t kPathClassCount = 8;
const char* PathClassName(PathClass c);

struct TraceNode {
  TraceEvent event;
  std::vector<size_t> children;  // indices into TraceTree::nodes
};

struct TraceTree {
  uint64_t trace_id = 0;
  size_t root = 0;  // index into nodes
  std::vector<TraceNode> nodes;
};

// Groups span events by trace id and wires parent links. The root is the
// parentless span (unique by construction; if a ring eviction orphaned
// nodes, stragglers attach to the root so no recorded time is lost).
// Trees are returned sorted by trace id. Instants are ignored.
std::vector<TraceTree> AssembleTraceTrees(const std::vector<TraceEvent>& events);

const TraceTree* FindTree(const std::vector<TraceTree>& trees, uint64_t trace_id);

struct Breakdown {
  uint64_t trace_id = 0;
  std::string op;          // root span name, e.g. "write"
  std::string category;    // root span category, e.g. "serve.op"
  double start_seconds = 0.0;
  double total_seconds = 0.0;  // root span duration (= end-to-end latency)
  double seconds[kPathClassCount] = {};
  double Sum() const;
};

Breakdown AnalyzeCriticalPath(const TraceTree& tree);

// Feeds breakdowns into the SLO metric families:
//   logfs.slo.<op>.latency_us   histogram of end-to-end latency
//   logfs.slo.<op>.violations   counter, latency > target
//   logfs.slo.<op>.p50_us/.p99_us  gauges (on Publish)
//   logfs.slo.target_us         gauge (on Publish)
//   logfs.path.<op>.<class>_us  counters, per-class critical-path time
class SloTracker {
 public:
  explicit SloTracker(double target_seconds);

  void Observe(const Breakdown& b);
  void Publish() const;  // refresh the quantile gauges from the histograms

  double target_seconds() const { return target_seconds_; }

 private:
  double target_seconds_;
  std::set<std::string> ops_;
};

}  // namespace logfs::obs

#endif  // LOGFS_SRC_OBS_CRITICAL_PATH_H_
