#include "src/obs/critical_path.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "src/obs/metrics.h"

namespace logfs::obs {
namespace {

// End-to-end serve latencies run from sub-millisecond cache hits to seconds
// of lease-wait; bucket bounds in microseconds.
constexpr double kSloLatencyBoundsUs[] = {100.0,    250.0,    500.0,
                                          1000.0,   2500.0,   5000.0,
                                          10000.0,  25000.0,  50000.0,
                                          100000.0, 500000.0, 2000000.0};

double ArgValue(const TraceEvent& ev, std::string_view key) {
  for (const auto& [k, v] : ev.args) {
    if (k == key) return std::strtod(v.c_str(), nullptr);
  }
  return 0.0;
}

bool ArgIs(const TraceEvent& ev, std::string_view key, std::string_view want) {
  for (const auto& [k, v] : ev.args) {
    if (k == key) return v == want;
  }
  return false;
}

// Which class a span's *self* time (interval minus children) belongs to.
PathClass ClassOf(const TraceEvent& ev) {
  const std::string& cat = ev.category;
  if (cat == "serve.attempt") {
    return ArgIs(ev, "winner", "1") ? PathClass::kNetwork : PathClass::kRetransmit;
  }
  if (cat == "serve.rpc") return PathClass::kRetransmit;  // pre-winning-send gap
  if (cat == "serve.park") return PathClass::kLeaseWait;
  if (cat == "serve.dedup") return PathClass::kDedupParked;
  if (cat == "shard.lock_wait" || cat == "shard.lock_held") {
    return PathClass::kShardLock;
  }
  // serve.op (client CPU + queue), serve.handle (server CPU), and anything
  // unrecognized fall into the CPU/cache bucket.
  return PathClass::kCache;
}

struct ChildRef {
  size_t node = 0;
  double start = 0.0;
  double end = 0.0;
  uint64_t seq = 0;
};

void Attribute(const TraceTree& tree, size_t node_i, double s, double e,
               Breakdown* out) {
  if (e <= s) return;
  const TraceNode& node = tree.nodes[node_i];

  std::vector<ChildRef> kids;
  kids.reserve(node.children.size());
  for (size_t ci : node.children) {
    const TraceEvent& cev = tree.nodes[ci].event;
    ChildRef ref;
    ref.node = ci;
    ref.start = cev.start_seconds;
    ref.end = cev.start_seconds + cev.duration_seconds;
    ref.seq = cev.seq;
    kids.push_back(ref);
  }
  std::sort(kids.begin(), kids.end(), [](const ChildRef& a, const ChildRef& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.seq < b.seq;
  });

  double self = 0.0;
  double cursor = s;
  for (const ChildRef& kid : kids) {
    const double cs = std::max(kid.start, cursor);
    const double ce = std::min(kid.end, e);
    if (ce <= cs) continue;  // fully clipped by the parent or a prior sibling
    if (cs > cursor) self += cs - cursor;
    Attribute(tree, kid.node, cs, ce, out);
    cursor = ce;
  }
  if (e > cursor) self += e - cursor;
  if (self <= 0.0) return;

  const TraceEvent& ev = node.event;
  if (ev.category == "op") {
    // PR 5's per-op decomposition: disk/cleaner/retry/cache microseconds sum
    // to the span duration by construction; scale them onto the self time
    // (children, e.g. nested shard work, have already taken their share).
    const double disk = ArgValue(ev, "disk_us") + ArgValue(ev, "retry_us");
    const double cleaner = ArgValue(ev, "cleaner_us");
    const double cache = ArgValue(ev, "cache_us");
    const double sum = disk + cleaner + cache;
    if (sum > 0.0) {
      out->seconds[static_cast<size_t>(PathClass::kDisk)] += self * (disk / sum);
      out->seconds[static_cast<size_t>(PathClass::kCleaner)] += self * (cleaner / sum);
      out->seconds[static_cast<size_t>(PathClass::kCache)] += self * (cache / sum);
    } else {
      out->seconds[static_cast<size_t>(PathClass::kCache)] += self;
    }
    return;
  }
  out->seconds[static_cast<size_t>(ClassOf(ev))] += self;
}

}  // namespace

const char* PathClassName(PathClass c) {
  switch (c) {
    case PathClass::kNetwork: return "network";
    case PathClass::kRetransmit: return "retransmit";
    case PathClass::kDedupParked: return "dedup_parked";
    case PathClass::kLeaseWait: return "lease_wait";
    case PathClass::kShardLock: return "shard_lock";
    case PathClass::kDisk: return "disk";
    case PathClass::kCleaner: return "cleaner";
    case PathClass::kCache: return "cache";
  }
  return "unknown";
}

std::vector<TraceTree> AssembleTraceTrees(const std::vector<TraceEvent>& events) {
  std::map<uint64_t, std::vector<const TraceEvent*>> by_trace;
  for (const TraceEvent& ev : events) {
    if (ev.kind != TraceEvent::Kind::kSpan || ev.trace_id == 0) continue;
    by_trace[ev.trace_id].push_back(&ev);
  }

  std::vector<TraceTree> trees;
  trees.reserve(by_trace.size());
  for (auto& [trace_id, spans] : by_trace) {
    TraceTree tree;
    tree.trace_id = trace_id;
    tree.nodes.reserve(spans.size());
    std::map<uint64_t, size_t> by_span;
    for (const TraceEvent* ev : spans) {
      by_span.emplace(ev->span_id, tree.nodes.size());
      tree.nodes.push_back(TraceNode{*ev, {}});
    }
    // Root = the parentless span; prefer the earliest-registered one if a
    // ring eviction left more than one candidate.
    size_t root = tree.nodes.size();
    for (size_t i = 0; i < tree.nodes.size(); ++i) {
      const TraceEvent& ev = tree.nodes[i].event;
      if (ev.parent_id != 0 && by_span.count(ev.parent_id)) continue;
      if (root == tree.nodes.size() ||
          ev.seq < tree.nodes[root].event.seq) {
        root = i;
      }
    }
    if (root == tree.nodes.size()) continue;  // defensive; cannot happen
    tree.root = root;
    for (size_t i = 0; i < tree.nodes.size(); ++i) {
      if (i == root) continue;
      const uint64_t parent = tree.nodes[i].event.parent_id;
      auto it = parent != 0 ? by_span.find(parent) : by_span.end();
      const size_t pi = (it != by_span.end() && it->second != i) ? it->second : root;
      tree.nodes[pi].children.push_back(i);
    }
    trees.push_back(std::move(tree));
  }
  return trees;
}

const TraceTree* FindTree(const std::vector<TraceTree>& trees, uint64_t trace_id) {
  for (const TraceTree& t : trees) {
    if (t.trace_id == trace_id) return &t;
  }
  return nullptr;
}

double Breakdown::Sum() const {
  double sum = 0.0;
  for (double s : seconds) sum += s;
  return sum;
}

Breakdown AnalyzeCriticalPath(const TraceTree& tree) {
  Breakdown b;
  const TraceEvent& root = tree.nodes[tree.root].event;
  b.trace_id = tree.trace_id;
  b.op = root.name;
  b.category = root.category;
  b.start_seconds = root.start_seconds;
  b.total_seconds = root.duration_seconds;
  Attribute(tree, tree.root, root.start_seconds,
            root.start_seconds + root.duration_seconds, &b);
  return b;
}

SloTracker::SloTracker(double target_seconds) : target_seconds_(target_seconds) {}

void SloTracker::Observe(const Breakdown& b) {
  if constexpr (!kMetricsEnabled) {
    (void)b;
    return;
  }
  ops_.insert(b.op);
  auto& registry = Registry();
  const std::string prefix = "logfs.slo." + b.op;
  registry.GetHistogram(prefix + ".latency_us", kSloLatencyBoundsUs)
      .Observe(b.total_seconds * 1e6);
  if (b.total_seconds > target_seconds_) {
    registry.GetCounter(prefix + ".violations").Increment();
  }
  for (size_t c = 0; c < kPathClassCount; ++c) {
    const double us = b.seconds[c] * 1e6;
    if (us <= 0.0) continue;
    registry
        .GetCounter("logfs.path." + b.op + "." +
                    PathClassName(static_cast<PathClass>(c)) + "_us")
        .Increment(static_cast<uint64_t>(us + 0.5));
  }
}

void SloTracker::Publish() const {
  if constexpr (!kMetricsEnabled) return;
  auto& registry = Registry();
  registry.GetGauge("logfs.slo.target_us").Set(target_seconds_ * 1e6);
  const MetricsSnapshot snap = registry.Snapshot();
  for (const std::string& op : ops_) {
    auto it = snap.histograms.find("logfs.slo." + op + ".latency_us");
    if (it == snap.histograms.end()) continue;
    registry.GetGauge("logfs.slo." + op + ".p50_us")
        .Set(HistogramQuantile(it->second, 0.50));
    registry.GetGauge("logfs.slo." + op + ".p99_us")
        .Set(HistogramQuantile(it->second, 0.99));
  }
}

}  // namespace logfs::obs
