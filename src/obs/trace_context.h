// Causal trace context: the identity a request carries across layers.
//
// A TraceContext is (trace id, current span id). The trace id names one
// end-to-end request — minted at the client op boundary — and the span id
// names the innermost span in flight, which becomes the parent of any span
// opened beneath it. Ids come from the tracer's own counter, so a seeded
// single-threaded run mints the same ids every time (and Tracer().Clear()
// resets them, keeping the byte-identical-snapshot guarantees of obs_test).
//
// Propagation is two-mode:
//   * Within a thread, the context is ambient: CurrentTraceContext() is a
//     thread-local that TraceContextScope pushes/pops RAII-style. The LFS
//     OpScope and the shard router read it without any plumbing.
//   * Across the simulated network, the context rides inside serve-layer
//     messages (message.h) as plain data; the server re-installs it around
//     request execution.
//
// Tracing never branches the traced code: it only records. That is what
// keeps the serve wire behaviour, DiskStats, and crash-image enumeration
// byte-identical whether tracing is enabled, runtime-disabled
// (SetTracingEnabled(false)), or compiled out (LOGFS_METRICS=OFF, where
// everything here is a no-op and MintTrace returns the inactive context).
#ifndef LOGFS_SRC_OBS_TRACE_CONTEXT_H_
#define LOGFS_SRC_OBS_TRACE_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sim/sim_clock.h"

namespace logfs::obs {

struct TraceContext {
  uint64_t trace_id = 0;  // 0 = inactive (untraced work).
  uint64_t span_id = 0;   // Innermost live span; parent of new children.
  bool active() const { return trace_id != 0; }
};

// Runtime gate. Minting respects it; recording spans for an already-minted
// context does not need to re-check (an inactive context records nothing).
bool TracingEnabled();
void SetTracingEnabled(bool enabled);

// The ambient context of the calling thread ({0,0} when none).
TraceContext CurrentTraceContext();

// Mints a fresh trace (trace id + root span id) when tracing is enabled and
// compiled in; returns the inactive context otherwise.
TraceContext MintTrace();

// Mints a child span id under `parent` (0 when parent is inactive).
uint64_t MintSpanId(const TraceContext& parent);

// Installs `ctx` as the thread's ambient context for the scope's lifetime.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext ctx);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

// RAII root span: mints a trace, installs it as the ambient context, and
// records the root span on destruction. The unit of work drivers and tools
// wrap around one logical client operation.
class TraceRoot {
 public:
  TraceRoot(const SimClock* clock, std::string_view category, std::string_view name);
  ~TraceRoot();
  TraceRoot(const TraceRoot&) = delete;
  TraceRoot& operator=(const TraceRoot&) = delete;

  const TraceContext& ctx() const { return ctx_; }
  void AddArg(std::string_view key, std::string value);
  void AddLink(uint64_t trace_id);

 private:
  const SimClock* clock_;
  std::string category_;
  std::string name_;
  double start_ = 0.0;
  TraceContext ctx_;
  TraceContext saved_;
  std::vector<uint64_t> links_;
  std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace logfs::obs

#endif  // LOGFS_SRC_OBS_TRACE_CONTEXT_H_
