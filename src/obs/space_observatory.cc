#include "src/obs/space_observatory.h"

// The whole translation unit compiles away under -DLOGFS_METRICS=OFF: the
// header's inline no-ops take over and `nm` on the archive shows no
// observatory symbols (tools/check_metrics_off.sh holds us to that).
#ifndef LOGFS_METRICS_DISABLED

#include <string>

namespace logfs::obs {
namespace {

// Handles for every per-source counter pair, resolved once per process so
// the hot path is two relaxed atomic adds plus a gauge refresh.
struct SourceCells {
  Counter* writes[kIoSourceCount] = {};
  Counter* bytes[kIoSourceCount] = {};
  Gauge* write_amp = nullptr;
};

SourceCells& Cells() {
  static SourceCells cells = [] {
    SourceCells c;
    for (size_t i = 0; i < kIoSourceCount; ++i) {
      const std::string base =
          "logfs.io." + std::string(IoSourceName(static_cast<IoSource>(i)));
      c.writes[i] = &Registry().GetCounter(base + ".writes");
      c.bytes[i] = &Registry().GetCounter(base + ".bytes");
    }
    c.write_amp = &Registry().GetGauge("logfs.io.write_amplification");
    return c;
  }();
  return cells;
}

void RefreshWriteAmplification(const SourceCells& cells) {
  uint64_t total = 0;
  for (size_t i = 0; i < kIoSourceCount; ++i) {
    total += cells.bytes[i]->Value();
  }
  const uint64_t fg =
      cells.bytes[static_cast<size_t>(IoSource::kForegroundData)]->Value();
  if (fg > 0) {
    cells.write_amp->Set(static_cast<double>(total) / static_cast<double>(fg));
  }
}

}  // namespace

void RecordWriteOp(IoSource source) {
  Cells().writes[static_cast<size_t>(source)]->Increment();
}

void RecordWriteBytes(IoSource source, uint64_t bytes) {
  SourceCells& cells = Cells();
  cells.bytes[static_cast<size_t>(source)]->Increment(bytes);
  RefreshWriteAmplification(cells);
}

void RecordWrite(IoSource source, uint64_t bytes) {
  RecordWriteOp(source);
  RecordWriteBytes(source, bytes);
}

void RecordSegLifecycle(SegLifecycle event) {
  static Counter* cells[kSegLifecycleCount] = {};
  static const bool init = [] {
    for (size_t i = 0; i < kSegLifecycleCount; ++i) {
      cells[i] = &Registry().GetCounter(
          "logfs.seg.lifecycle." +
          std::string(SegLifecycleName(static_cast<SegLifecycle>(i))));
    }
    return true;
  }();
  (void)init;
  cells[static_cast<size_t>(event)]->Increment();
}

void ObserveSegmentAge(double age_us) {
  static constexpr double kBounds[] = {1e3, 1e4, 1e5, 1e6, 1e7, 1e8};
  static Histogram& hist = Registry().GetHistogram("logfs.seg.age_us", kBounds);
  hist.Observe(age_us);
}

void ObserveSegmentHeat(double ewma_us) {
  static constexpr double kBounds[] = {1e2, 1e3, 1e4, 1e5, 1e6, 1e7};
  static Histogram& hist = Registry().GetHistogram("logfs.seg.heat", kBounds);
  hist.Observe(ewma_us);
}

void PublishUtilization(std::span<const double> per_segment_utilization) {
  static Gauge* buckets[kUtilBuckets] = {};
  static Gauge* mean = nullptr;
  static Gauge* count = nullptr;
  static const bool init = [] {
    for (size_t i = 0; i < kUtilBuckets; ++i) {
      buckets[i] = &Registry().GetGauge("logfs.seg.util.bucket" + std::to_string(i));
    }
    mean = &Registry().GetGauge("logfs.seg.util.mean");
    count = &Registry().GetGauge("logfs.seg.util.segments");
    return true;
  }();
  (void)init;
  uint64_t histo[kUtilBuckets] = {};
  double sum = 0.0;
  for (double u : per_segment_utilization) {
    if (u < 0.0) u = 0.0;
    if (u > 1.0) u = 1.0;
    size_t bucket = static_cast<size_t>(u * kUtilBuckets);
    if (bucket >= kUtilBuckets) bucket = kUtilBuckets - 1;  // u == 1.0.
    ++histo[bucket];
    sum += u;
  }
  for (size_t i = 0; i < kUtilBuckets; ++i) {
    buckets[i]->Set(static_cast<double>(histo[i]));
  }
  const size_t n = per_segment_utilization.size();
  mean->Set(n == 0 ? 0.0 : sum / static_cast<double>(n));
  count->Set(static_cast<double>(n));
}

IoAttribution AttributionSnapshot() {
  SourceCells& cells = Cells();
  IoAttribution attr;
  for (size_t i = 0; i < kIoSourceCount; ++i) {
    attr.writes[i] = cells.writes[i]->Value();
    attr.bytes[i] = cells.bytes[i]->Value();
    attr.total_writes += attr.writes[i];
    attr.total_bytes += attr.bytes[i];
  }
  const uint64_t fg = attr.bytes[static_cast<size_t>(IoSource::kForegroundData)];
  if (fg > 0) {
    attr.write_amplification =
        static_cast<double>(attr.total_bytes) / static_cast<double>(fg);
  }
  return attr;
}

}  // namespace logfs::obs

#endif  // LOGFS_METRICS_DISABLED
