#include "src/obs/trace_context.h"

#include "src/obs/tracer.h"

namespace logfs::obs {
namespace {

std::atomic<bool> g_tracing_enabled{true};
thread_local TraceContext t_current_ctx;

}  // namespace

bool TracingEnabled() {
  if constexpr (!kMetricsEnabled) return false;
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

TraceContext CurrentTraceContext() {
  if constexpr (!kMetricsEnabled) return {};
  return t_current_ctx;
}

TraceContext MintTrace() {
  if (!TracingEnabled()) return {};
  StructuredTracer& tracer = Tracer();
  TraceContext ctx;
  ctx.trace_id = tracer.NextId();
  ctx.span_id = tracer.NextId();
  return ctx;
}

uint64_t MintSpanId(const TraceContext& parent) {
  if constexpr (!kMetricsEnabled) return 0;
  if (!parent.active()) return 0;
  return Tracer().NextId();
}

TraceContextScope::TraceContextScope(TraceContext ctx) {
  if constexpr (kMetricsEnabled) {
    saved_ = t_current_ctx;
    if (ctx.active()) t_current_ctx = ctx;
  }
}

TraceContextScope::~TraceContextScope() {
  if constexpr (kMetricsEnabled) {
    t_current_ctx = saved_;
  }
}

TraceRoot::TraceRoot(const SimClock* clock, std::string_view category,
                     std::string_view name)
    : clock_(clock), category_(category), name_(name),
      start_(clock ? clock->Now() : 0.0), ctx_(MintTrace()) {
  if constexpr (kMetricsEnabled) {
    saved_ = t_current_ctx;
    if (ctx_.active()) t_current_ctx = ctx_;
  }
}

TraceRoot::~TraceRoot() {
  if constexpr (kMetricsEnabled) {
    t_current_ctx = saved_;
    if (ctx_.active()) {
      Tracer().RecordSpanIds(category_, name_, start_,
                             clock_ ? clock_->Now() : start_, ctx_.trace_id,
                             ctx_.span_id, /*parent_id=*/0, std::move(links_),
                             std::move(args_));
    }
  }
}

void TraceRoot::AddArg(std::string_view key, std::string value) {
  if constexpr (kMetricsEnabled) {
    args_.emplace_back(std::string(key), std::move(value));
  }
}

void TraceRoot::AddLink(uint64_t trace_id) {
  if constexpr (kMetricsEnabled) {
    if (trace_id != 0) links_.push_back(trace_id);
  }
}

}  // namespace logfs::obs
