#include "src/obs/sampler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/crc32.h"
#include "src/util/serializer.h"

namespace logfs::obs {
namespace {

constexpr uint32_t kTelemetryRingMagic = 0x4C465452;  // "LFTR"
constexpr uint32_t kTelemetryRingVersion = 1;
// Offset of the CRC field in the encoded blob (magic, version, then crc).
constexpr size_t kCrcOffset = 8;
// Decode-side sanity caps so a corrupted length field cannot demand an
// absurd allocation before the CRC check has had a chance to run.
constexpr uint32_t kMaxNames = 65536;
constexpr uint32_t kMaxSamples = 1u << 20;

// LEB128: counter deltas between adjacent samples are usually tiny, so
// varints are where the "delta-compressed" in the ring's contract comes from.
Status WriteVarint(BufferWriter& w, uint64_t v) {
  while (v >= 0x80) {
    RETURN_IF_ERROR(w.WriteU8(static_cast<uint8_t>(v) | 0x80));
    v >>= 7;
  }
  return w.WriteU8(static_cast<uint8_t>(v));
}

Result<uint64_t> ReadVarint(BufferReader& r) {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    ASSIGN_OR_RETURN(uint8_t byte, r.ReadU8());
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  return CorruptedError("telemetry ring: varint overruns 64 bits");
}

// Worst-case encoded size, used to size the scratch buffer.
size_t EncodedSizeBound(const TelemetryRing& ring, size_t first_sample) {
  size_t names = 0;
  for (const auto& n : ring.counter_names) names += n.size() + 2;
  for (const auto& n : ring.gauge_names) names += n.size() + 2;
  for (const auto& n : ring.hist_names) names += n.size() + 2;
  const size_t per_sample = 8 + 10 * ring.counter_names.size() +
                            8 * ring.gauge_names.size() + 42 * ring.hist_names.size();
  const size_t n_samples = ring.samples.size() - first_sample;
  return 48 + names + 10 * ring.counter_names.size() + per_sample * n_samples;
}

// Encodes `ring` with samples[first..) against the given folded base.
// Returns an empty vector only on (impossible-by-construction) overflow.
std::vector<std::byte> EncodeFrom(const TelemetryRing& ring, uint64_t seq,
                                  std::span<const uint64_t> base, double base_time,
                                  size_t first_sample) {
  std::vector<std::byte> buf(EncodedSizeBound(ring, first_sample));
  BufferWriter w{std::span<std::byte>(buf)};
  auto encode = [&]() -> Status {
    RETURN_IF_ERROR(w.WriteU32(kTelemetryRingMagic));
    RETURN_IF_ERROR(w.WriteU32(kTelemetryRingVersion));
    RETURN_IF_ERROR(w.WriteU32(0));  // CRC placeholder, patched below.
    RETURN_IF_ERROR(w.WriteU64(seq));
    RETURN_IF_ERROR(w.WriteF64(base_time));
    RETURN_IF_ERROR(w.WriteU32(static_cast<uint32_t>(ring.counter_names.size())));
    RETURN_IF_ERROR(w.WriteU32(static_cast<uint32_t>(ring.gauge_names.size())));
    RETURN_IF_ERROR(w.WriteU32(static_cast<uint32_t>(ring.hist_names.size())));
    for (const auto& n : ring.counter_names) RETURN_IF_ERROR(w.WriteString(n));
    for (const auto& n : ring.gauge_names) RETURN_IF_ERROR(w.WriteString(n));
    for (const auto& n : ring.hist_names) RETURN_IF_ERROR(w.WriteString(n));
    for (size_t j = 0; j < ring.counter_names.size(); ++j) {
      RETURN_IF_ERROR(WriteVarint(w, j < base.size() ? base[j] : 0));
    }
    RETURN_IF_ERROR(
        w.WriteU32(static_cast<uint32_t>(ring.samples.size() - first_sample)));
    for (size_t i = first_sample; i < ring.samples.size(); ++i) {
      const TelemetrySample& s = ring.samples[i];
      RETURN_IF_ERROR(w.WriteF64(s.t));
      for (size_t j = 0; j < ring.counter_names.size(); ++j) {
        RETURN_IF_ERROR(
            WriteVarint(w, j < s.counter_deltas.size() ? s.counter_deltas[j] : 0));
      }
      for (size_t j = 0; j < ring.gauge_names.size(); ++j) {
        RETURN_IF_ERROR(w.WriteF64(
            j < s.gauges.size() ? s.gauges[j] : std::numeric_limits<double>::quiet_NaN()));
      }
      for (size_t j = 0; j < ring.hist_names.size(); ++j) {
        TelemetrySample::HistState h = j < s.hists.size() ? s.hists[j]
                                                          : TelemetrySample::HistState{};
        RETURN_IF_ERROR(WriteVarint(w, h.count));
        RETURN_IF_ERROR(w.WriteF64(h.sum));
        RETURN_IF_ERROR(w.WriteF64(h.p50));
        RETURN_IF_ERROR(w.WriteF64(h.p90));
        RETURN_IF_ERROR(w.WriteF64(h.p99));
      }
    }
    return OkStatus();
  };
  if (!encode().ok()) return {};
  buf.resize(w.offset());
  const uint32_t crc = Crc32(std::span<const std::byte>(buf));
  BufferWriter patch{std::span<std::byte>(buf)};
  (void)patch.SeekTo(kCrcOffset);
  (void)patch.WriteU32(crc);
  return buf;
}

}  // namespace

uint64_t TelemetryRing::CounterAt(size_t sample, size_t counter) const {
  uint64_t v = counter < base_counters.size() ? base_counters[counter] : 0;
  for (size_t i = 0; i <= sample && i < samples.size(); ++i) {
    if (counter < samples[i].counter_deltas.size()) {
      v += samples[i].counter_deltas[counter];
    }
  }
  return v;
}

double TelemetryRing::RateAt(size_t sample, size_t counter) const {
  if (sample >= samples.size()) return 0.0;
  const double prev_t = sample == 0 ? base_time : samples[sample - 1].t;
  const double dt = samples[sample].t - prev_t;
  if (!(dt > 0.0)) return 0.0;
  const auto& deltas = samples[sample].counter_deltas;
  const uint64_t d = counter < deltas.size() ? deltas[counter] : 0;
  return static_cast<double>(d) / dt;
}

std::vector<std::byte> TelemetryRing::Encode(size_t max_bytes) const {
  std::vector<uint64_t> base = base_counters;
  base.resize(counter_names.size(), 0);
  double base_t = base_time;
  for (size_t first = 0; first <= samples.size(); ++first) {
    if (first > 0) {
      const TelemetrySample& evicted = samples[first - 1];
      for (size_t j = 0; j < evicted.counter_deltas.size(); ++j) {
        base[j] += evicted.counter_deltas[j];
      }
      base_t = evicted.t;
    }
    std::vector<std::byte> blob = EncodeFrom(*this, seq, base, base_t, first);
    if (!blob.empty() && blob.size() <= max_bytes) return blob;
  }
  // Even a sample-free ring with the name tables is too big (tiny checkpoint
  // slack): fall back to a bare header — still a valid, CRC-sealed ring.
  TelemetryRing bare;
  bare.seq = seq;
  bare.base_time = base_t;
  std::vector<std::byte> blob = EncodeFrom(bare, seq, {}, base_t, 0);
  if (!blob.empty() && blob.size() <= max_bytes) return blob;
  return {};
}

Result<TelemetryRing> TelemetryRing::Decode(std::span<const std::byte> blob) {
  BufferReader r(blob);
  ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kTelemetryRingMagic) {
    return CorruptedError("telemetry ring: bad magic");
  }
  ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kTelemetryRingVersion) {
    return CorruptedError("telemetry ring: unsupported version");
  }
  ASSIGN_OR_RETURN(uint32_t stored_crc, r.ReadU32());
  std::vector<std::byte> scratch(blob.begin(), blob.end());
  BufferWriter zero{std::span<std::byte>(scratch)};
  (void)zero.SeekTo(kCrcOffset);
  (void)zero.WriteU32(0);
  if (Crc32(std::span<const std::byte>(scratch)) != stored_crc) {
    return CorruptedError("telemetry ring: CRC mismatch");
  }

  TelemetryRing ring;
  ASSIGN_OR_RETURN(ring.seq, r.ReadU64());
  ASSIGN_OR_RETURN(ring.base_time, r.ReadF64());
  ASSIGN_OR_RETURN(uint32_t n_counters, r.ReadU32());
  ASSIGN_OR_RETURN(uint32_t n_gauges, r.ReadU32());
  ASSIGN_OR_RETURN(uint32_t n_hists, r.ReadU32());
  if (n_counters > kMaxNames || n_gauges > kMaxNames || n_hists > kMaxNames) {
    return CorruptedError("telemetry ring: name table too large");
  }
  ring.counter_names.reserve(n_counters);
  for (uint32_t j = 0; j < n_counters; ++j) {
    ASSIGN_OR_RETURN(std::string n, r.ReadString());
    ring.counter_names.push_back(std::move(n));
  }
  ring.gauge_names.reserve(n_gauges);
  for (uint32_t j = 0; j < n_gauges; ++j) {
    ASSIGN_OR_RETURN(std::string n, r.ReadString());
    ring.gauge_names.push_back(std::move(n));
  }
  ring.hist_names.reserve(n_hists);
  for (uint32_t j = 0; j < n_hists; ++j) {
    ASSIGN_OR_RETURN(std::string n, r.ReadString());
    ring.hist_names.push_back(std::move(n));
  }
  ring.base_counters.resize(n_counters);
  for (uint32_t j = 0; j < n_counters; ++j) {
    ASSIGN_OR_RETURN(ring.base_counters[j], ReadVarint(r));
  }
  ASSIGN_OR_RETURN(uint32_t n_samples, r.ReadU32());
  if (n_samples > kMaxSamples) {
    return CorruptedError("telemetry ring: sample count too large");
  }
  ring.samples.resize(n_samples);
  for (uint32_t i = 0; i < n_samples; ++i) {
    TelemetrySample& s = ring.samples[i];
    ASSIGN_OR_RETURN(s.t, r.ReadF64());
    s.counter_deltas.resize(n_counters);
    for (uint32_t j = 0; j < n_counters; ++j) {
      ASSIGN_OR_RETURN(s.counter_deltas[j], ReadVarint(r));
    }
    s.gauges.resize(n_gauges);
    for (uint32_t j = 0; j < n_gauges; ++j) {
      ASSIGN_OR_RETURN(s.gauges[j], r.ReadF64());
    }
    s.hists.resize(n_hists);
    for (uint32_t j = 0; j < n_hists; ++j) {
      ASSIGN_OR_RETURN(s.hists[j].count, ReadVarint(r));
      ASSIGN_OR_RETURN(s.hists[j].sum, r.ReadF64());
      ASSIGN_OR_RETURN(s.hists[j].p50, r.ReadF64());
      ASSIGN_OR_RETURN(s.hists[j].p90, r.ReadF64());
      ASSIGN_OR_RETURN(s.hists[j].p99, r.ReadF64());
    }
  }
  return ring;
}

TelemetrySampler::TelemetrySampler(Options opts, MetricsRegistry* registry)
    : opts_(opts),
      registry_(registry != nullptr ? registry : &MetricsRegistry::Global()),
      timer_(opts.interval_seconds) {}

bool TelemetrySampler::MaybeSample(double now) {
  if constexpr (!kMetricsEnabled) {
    (void)now;
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!timer_.Due(now)) return false;
  TakeSample(now);
  return true;
}

void TelemetrySampler::SampleNow(double now) {
  if constexpr (!kMetricsEnabled) {
    (void)now;
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  TakeSample(now);
}

void TelemetrySampler::TakeSample(double now) {
  MetricsSnapshot snap = registry_->Snapshot();

  TelemetrySample s;
  s.t = now;
  for (const auto& [name, value] : snap.counters) {
    auto it = counter_idx_.find(name);
    if (it == counter_idx_.end()) {
      it = counter_idx_.emplace(name, ring_.counter_names.size()).first;
      ring_.counter_names.push_back(name);
      last_counters_.push_back(0);
    }
    (void)value;
  }
  s.counter_deltas.resize(ring_.counter_names.size(), 0);
  for (const auto& [name, value] : snap.counters) {
    const size_t j = counter_idx_.find(name)->second;
    // Counters are monotone in steady state; a ResetAll between phases shows
    // up as value < last, which we record as a zero delta rather than an
    // underflowed one.
    s.counter_deltas[j] = value >= last_counters_[j] ? value - last_counters_[j] : 0;
    last_counters_[j] = value;
  }

  for (const auto& [name, value] : snap.gauges) {
    if (gauge_idx_.find(name) == gauge_idx_.end()) {
      gauge_idx_.emplace(name, ring_.gauge_names.size());
      ring_.gauge_names.push_back(name);
    }
    (void)value;
  }
  s.gauges.resize(ring_.gauge_names.size(), std::numeric_limits<double>::quiet_NaN());
  for (const auto& [name, value] : snap.gauges) {
    s.gauges[gauge_idx_.find(name)->second] = value;
  }

  for (const auto& [name, hv] : snap.histograms) {
    if (hist_idx_.find(name) == hist_idx_.end()) {
      hist_idx_.emplace(name, ring_.hist_names.size());
      ring_.hist_names.push_back(name);
    }
    (void)hv;
  }
  s.hists.resize(ring_.hist_names.size());
  for (const auto& [name, hv] : snap.histograms) {
    TelemetrySample::HistState& h = s.hists[hist_idx_.find(name)->second];
    h.count = hv.count;
    h.sum = hv.sum;
    h.p50 = HistogramQuantile(hv, 0.50);
    h.p90 = HistogramQuantile(hv, 0.90);
    h.p99 = HistogramQuantile(hv, 0.99);
  }

  ring_.samples.push_back(std::move(s));
  ++total_samples_;

  while (ring_.samples.size() > opts_.capacity && !ring_.samples.empty()) {
    const TelemetrySample& evicted = ring_.samples.front();
    ring_.base_counters.resize(ring_.counter_names.size(), 0);
    for (size_t j = 0; j < evicted.counter_deltas.size(); ++j) {
      ring_.base_counters[j] += evicted.counter_deltas[j];
    }
    ring_.base_time = evicted.t;
    ring_.samples.erase(ring_.samples.begin());
  }
}

size_t TelemetrySampler::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.samples.size();
}

uint64_t TelemetrySampler::total_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_samples_;
}

TelemetryRing TelemetrySampler::Ring() const {
  std::lock_guard<std::mutex> lock(mu_);
  TelemetryRing copy = ring_;
  copy.seq = next_seq_;
  return copy;
}

std::vector<std::byte> TelemetrySampler::SerializeRing(size_t max_bytes) const {
  if constexpr (!kMetricsEnabled) {
    (void)max_bytes;
    return {};
  }
  std::lock_guard<std::mutex> lock(mu_);
  TelemetryRing staged = ring_;
  staged.seq = next_seq_++;
  return staged.Encode(max_bytes);
}

void TelemetrySampler::SeedSequence(uint64_t next_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  next_seq_ = std::max(next_seq_, next_seq);
}

void TelemetrySampler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_ = TelemetryRing{};
  counter_idx_.clear();
  gauge_idx_.clear();
  hist_idx_.clear();
  last_counters_.clear();
  total_samples_ = 0;
  timer_.Reset();
}

}  // namespace logfs::obs
