// The process-wide metrics substrate (naming scheme: logfs.<subsystem>.<metric>).
//
// The paper's whole argument is quantitative — write cost as a function of
// segment utilization u, cleaner overhead, disk-bandwidth utilization — so
// every layer publishes its counters here instead of growing another ad-hoc
// stats struct. Three instrument kinds:
//
//   * Counter   — monotonically increasing u64 (events, blocks, bytes);
//   * Gauge     — last-written double (utilization, derived write cost);
//   * Histogram — fixed bucket boundaries chosen at registration (latency
//                 and size distributions).
//
// Hot-path increments are single relaxed atomic adds on a handle looked up
// once (function-local static at the instrumentation site); the registry
// mutex guards registration only. Everything a snapshot exports is derived
// from SimClock-driven, deterministic execution, so an identical seed
// workload yields a byte-identical snapshot (tests/obs_test.cc holds us to
// that).
//
// Configure with -DLOGFS_METRICS=OFF to compile the layer out: the handle
// getters return shared dummies, the registry stays empty, and every
// increment is an empty inline function the optimizer deletes.
#ifndef LOGFS_SRC_OBS_METRICS_H_
#define LOGFS_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace logfs::obs {

#ifdef LOGFS_METRICS_DISABLED
inline constexpr bool kMetricsEnabled = false;
#else
inline constexpr bool kMetricsEnabled = true;
#endif

class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    if constexpr (kMetricsEnabled) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    } else {
      (void)delta;
    }
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double value) {
    if constexpr (kMetricsEnabled) {
      value_.store(value, std::memory_order_relaxed);
    } else {
      (void)value;
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: N upper bounds define N+1 buckets, the last one
// unbounded. Bounds are fixed at registration; a later Get with different
// bounds returns the existing histogram unchanged (first writer wins).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  // i in [0, bounds().size()]; the final slot counts values above every bound.
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  const std::vector<double>& bounds() const { return bounds_; }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// One immutable view of every registered instrument, for tools that want to
// diff or post-process rather than print.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  struct HistogramValue {
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;  // bounds.size() + 1 entries.
    uint64_t count = 0;
    double sum = 0.0;
  };
  std::map<std::string, HistogramValue> histograms;
};

// Quantile estimate from a fixed-bucket histogram snapshot: finds the bucket
// containing rank q*count and interpolates linearly between its bounds (the
// paper's distributions are smooth enough inside a bucket for that to be the
// honest choice). The unbounded overflow bucket cannot be interpolated, so a
// rank landing there clamps to the last finite bound. Returns 0 when empty.
// `q` is clamped to [0, 1].
double HistogramQuantile(const MetricsSnapshot::HistogramValue& hv, double q);

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Handles are stable for the registry's lifetime; call once per site and
  // keep the reference (function-local static at the instrumentation site).
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name, std::span<const double> upper_bounds);

  // nullptr when absent (or when metrics are compiled out).
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  // Zeroes every instrument, keeping registrations (benchmark harnesses
  // reset between phases; the determinism test resets between runs).
  void ResetAll();

  MetricsSnapshot Snapshot() const;
  // Deterministic exports: names sorted, fixed float formatting.
  std::string ToJson() const;
  std::string ToText() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Shorthand for the process-wide registry at instrumentation sites.
inline MetricsRegistry& Registry() { return MetricsRegistry::Global(); }

}  // namespace logfs::obs

#endif  // LOGFS_SRC_OBS_METRICS_H_
