// BufferCache: the write-behind file cache (paper Section 4.1).
//
// LFS uses the file cache as a write buffer that accumulates many small
// changes and converts them into large sequential transfers; FFS uses the
// same cache with delayed write-back of data blocks. The cache stores
// fixed-size logical blocks keyed by (object id, block index) — logical
// identity, not disk address, because in LFS a block has no stable disk
// address until the segment writer assigns one.
//
// The cache does not know how to read or write the disk. The owning file
// system supplies a fetch callback on miss and a WritebackHandler that is
// handed batches of dirty blocks (FFS writes them in place; LFS packs them
// into segments). Dirty blocks are flushed when:
//   * their age exceeds `writeback_age_seconds` (paper: 30 s), checked by
//     the file system calling MaybeWriteBackByAge() at operation boundaries;
//   * the dirty count reaches the high watermark ("cache full" trigger);
//   * the file system syncs (FlushAll / FlushObject).
#ifndef LOGFS_SRC_CACHE_BUFFER_CACHE_H_
#define LOGFS_SRC_CACHE_BUFFER_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/sim/sim_clock.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace logfs {

// Logical identity of a cached block. `object_id` is file-system assigned:
// inode numbers for file and directory data; file systems reserve high bits
// for metadata namespaces (indirect blocks, inode table blocks, bitmaps).
struct BlockKey {
  uint64_t object_id = 0;
  uint64_t index = 0;

  bool operator==(const BlockKey&) const = default;
};

struct BlockKeyHash {
  size_t operator()(const BlockKey& key) const {
    // 64-bit mix of the two fields.
    uint64_t h = key.object_id * 0x9E3779B97F4A7C15ull;
    h ^= key.index + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

class BufferCache;

// One cached block. Stable address for the lifetime of the entry.
class CacheBlock {
 public:
  const BlockKey& key() const { return key_; }
  std::span<const std::byte> data() const { return data_; }
  std::span<std::byte> mutable_data() { return data_; }
  bool dirty() const { return dirty_; }
  double dirty_since() const { return dirty_since_; }
  bool pinned() const { return pin_count_ > 0; }

 private:
  friend class BufferCache;
  BlockKey key_;
  std::vector<std::byte> data_;
  bool dirty_ = false;
  double dirty_since_ = 0.0;
  uint32_t pin_count_ = 0;
};

// RAII pin on a cache block: the block cannot be evicted while a CacheRef
// to it is alive.
class CacheRef {
 public:
  CacheRef() = default;
  CacheRef(BufferCache* cache, CacheBlock* block);
  ~CacheRef();

  CacheRef(CacheRef&& other) noexcept;
  CacheRef& operator=(CacheRef&& other) noexcept;
  CacheRef(const CacheRef&) = delete;
  CacheRef& operator=(const CacheRef&) = delete;

  CacheBlock* get() const { return block_; }
  CacheBlock* operator->() const { return block_; }
  CacheBlock& operator*() const { return *block_; }
  explicit operator bool() const { return block_ != nullptr; }

  void Release();

 private:
  BufferCache* cache_ = nullptr;
  CacheBlock* block_ = nullptr;
};

// Receives batches of dirty blocks to make durable. After a successful
// return the cache marks the batch clean. Blocks arrive sorted by
// (object_id, index) so file systems can lay out related blocks together.
class WritebackHandler {
 public:
  virtual ~WritebackHandler() = default;
  virtual Status WriteBack(std::span<CacheBlock* const> blocks) = 0;
};

struct CachePolicy {
  size_t capacity_blocks = 3840;        // 15 MB of 4 KB blocks (paper Section 5).
  double writeback_age_seconds = 30.0;  // Paper Section 4.3.5.
  // Dirty-count trigger for the "cache full" condition. 0 = capacity / 4.
  size_t dirty_high_watermark = 0;
};

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writeback_batches = 0;
  uint64_t blocks_written_back = 0;
};

class BufferCache {
 public:
  // `clock` may be null (age-based policies then never trigger).
  BufferCache(size_t block_size, CachePolicy policy, const SimClock* clock);
  ~BufferCache();

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  void set_writeback_handler(WritebackHandler* handler) { writeback_ = handler; }

  size_t block_size() const { return block_size_; }
  const CachePolicy& policy() const { return policy_; }
  size_t size() const { return map_.size(); }
  size_t dirty_count() const { return dirty_count_; }
  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

  // Fills a freshly allocated block on a miss.
  using FetchFn = std::function<Status(std::span<std::byte> out)>;

  // Look up or load a block. On miss, `fetch` fills the new block.
  Result<CacheRef> Acquire(const BlockKey& key, const FetchFn& fetch);

  // Ensure `key` is cached given its current bytes in hand: a present block
  // is returned untouched (the cached copy may be newer than `data`), an
  // absent one is populated from `data` in a single copy. Accounting
  // (hit/miss/eviction) matches Acquire with a memcpy fetch; the
  // std::function detour is skipped. `data` must be exactly one block.
  Result<CacheRef> Install(const BlockKey& key, std::span<const std::byte> data);

  // Look up without loading; empty ref if absent.
  CacheRef AcquireIfPresent(const BlockKey& key);

  // Create a zero-filled block that must not already exist on disk (file
  // extension). The block starts clean; callers mark it dirty after writing.
  Result<CacheRef> Create(const BlockKey& key);

  // Mark dirty, stamping the dirty age on the first marking.
  void MarkDirty(CacheBlock* block);

  // Explicitly mark a block clean without a writeback round-trip (used by
  // file systems that write through, e.g. FFS synchronous metadata).
  void MarkClean(CacheBlock* block);

  // True if the "cache full" dirty trigger has been reached.
  bool NeedsWriteback() const;

  // Flush dirty blocks older than the policy age. No-op without a clock.
  Status MaybeWriteBackByAge();

  // Flush every dirty block.
  Status FlushAll();

  // Flush dirty blocks of one object (fsync).
  Status FlushObject(uint64_t object_id);

  // Drop blocks of an object without writing them (delete/truncate). Blocks
  // with index >= first_index are dropped; pinned blocks are a caller bug.
  void InvalidateObject(uint64_t object_id, uint64_t first_index = 0);

  // Drop a single block without writing it.
  void InvalidateBlock(const BlockKey& key);

  // Drop all clean blocks (the benchmark "flush the file cache" step).
  void DropClean();

  // Enumerate dirty blocks (for checkers and tests).
  std::vector<CacheBlock*> DirtyBlocks() const;

 private:
  friend class CacheRef;

  struct Entry;
  using LruList = std::list<Entry>;

  struct Entry {
    CacheBlock block;
  };

  void Pin(CacheBlock* block);
  void Unpin(CacheBlock* block);
  void TouchLru(const BlockKey& key);
  // Make room for one more block; may trigger write-back of dirty blocks.
  Status EnsureCapacity();
  Status WriteBackBlocks(std::vector<CacheBlock*> blocks);

  size_t block_size_;
  CachePolicy policy_;
  const SimClock* clock_;
  WritebackHandler* writeback_ = nullptr;

  LruList lru_;  // Front = most recently used.
  std::unordered_map<BlockKey, LruList::iterator, BlockKeyHash> map_;
  size_t dirty_count_ = 0;
  bool in_writeback_ = false;
  CacheStats stats_;
};

}  // namespace logfs

#endif  // LOGFS_SRC_CACHE_BUFFER_CACHE_H_
