#include "src/cache/buffer_cache.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/obs/metrics.h"

namespace logfs {
namespace {

// Shadow the per-instance CacheStats into the process-wide registry so
// snapshots correlate cache behaviour with segment-writer and cleaner
// activity. One static lookup per process; increments are relaxed atomic
// adds (no-ops when metrics are compiled out).
struct CacheMetrics {
  obs::Counter& hits = obs::Registry().GetCounter("logfs.cache.hits");
  obs::Counter& misses = obs::Registry().GetCounter("logfs.cache.misses");
  obs::Counter& evictions = obs::Registry().GetCounter("logfs.cache.evictions");
  obs::Counter& pins = obs::Registry().GetCounter("logfs.cache.pins");
  obs::Counter& writeback_batches = obs::Registry().GetCounter("logfs.cache.writeback_batches");
  obs::Counter& blocks_written_back =
      obs::Registry().GetCounter("logfs.cache.blocks_written_back");
};

CacheMetrics& Metrics() {
  static CacheMetrics* metrics = new CacheMetrics();
  return *metrics;
}

}  // namespace

CacheRef::CacheRef(BufferCache* cache, CacheBlock* block) : cache_(cache), block_(block) {
  if (block_ != nullptr) {
    cache_->Pin(block_);
  }
}

CacheRef::~CacheRef() { Release(); }

CacheRef::CacheRef(CacheRef&& other) noexcept : cache_(other.cache_), block_(other.block_) {
  other.cache_ = nullptr;
  other.block_ = nullptr;
}

CacheRef& CacheRef::operator=(CacheRef&& other) noexcept {
  if (this != &other) {
    Release();
    cache_ = other.cache_;
    block_ = other.block_;
    other.cache_ = nullptr;
    other.block_ = nullptr;
  }
  return *this;
}

void CacheRef::Release() {
  if (block_ != nullptr) {
    cache_->Unpin(block_);
    block_ = nullptr;
    cache_ = nullptr;
  }
}

BufferCache::BufferCache(size_t block_size, CachePolicy policy, const SimClock* clock)
    : block_size_(block_size), policy_(policy), clock_(clock) {
  if (policy_.dirty_high_watermark == 0) {
    policy_.dirty_high_watermark = std::max<size_t>(1, policy_.capacity_blocks / 4);
  }
}

BufferCache::~BufferCache() = default;

void BufferCache::Pin(CacheBlock* block) {
  ++block->pin_count_;
  Metrics().pins.Increment();
}

void BufferCache::Unpin(CacheBlock* block) {
  assert(block->pin_count_ > 0);
  --block->pin_count_;
}

void BufferCache::TouchLru(const BlockKey& key) {
  auto it = map_.find(key);
  assert(it != map_.end());
  lru_.splice(lru_.begin(), lru_, it->second);
  it->second = lru_.begin();
}

Status BufferCache::EnsureCapacity() {
  if (map_.size() < policy_.capacity_blocks) {
    return OkStatus();
  }
  // First choice: evict the least recently used clean, unpinned block.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    CacheBlock& block = it->block;
    if (!block.dirty() && !block.pinned()) {
      auto fwd = std::next(it).base();
      map_.erase(block.key());
      lru_.erase(fwd);
      ++stats_.evictions;
      Metrics().evictions.Increment();
      return OkStatus();
    }
  }
  // All clean blocks pinned (or none): write everything dirty back, then
  // retry the eviction scan once. Re-entrant flushes (a writeback handler
  // acquiring blocks while the cache is full) are refused instead of
  // recursing.
  if (in_writeback_) {
    return BusyError("cache exhausted during writeback");
  }
  RETURN_IF_ERROR(FlushAll());
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    CacheBlock& block = it->block;
    if (!block.dirty() && !block.pinned()) {
      auto fwd = std::next(it).base();
      map_.erase(block.key());
      lru_.erase(fwd);
      ++stats_.evictions;
      Metrics().evictions.Increment();
      return OkStatus();
    }
  }
  return BusyError("cache full of pinned blocks");
}

Result<CacheRef> BufferCache::Acquire(const BlockKey& key, const FetchFn& fetch) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    ++stats_.hits;
    Metrics().hits.Increment();
    TouchLru(key);
    return CacheRef(this, &map_.find(key)->second->block);
  }
  ++stats_.misses;
  Metrics().misses.Increment();
  RETURN_IF_ERROR(EnsureCapacity());
  lru_.emplace_front();
  CacheBlock& block = lru_.front().block;
  block.key_ = key;
  block.data_.resize(block_size_);
  Status fetched = fetch(std::span<std::byte>(block.data_));
  if (!fetched.ok()) {
    lru_.pop_front();
    return fetched;
  }
  map_.emplace(key, lru_.begin());
  return CacheRef(this, &block);
}

Result<CacheRef> BufferCache::Install(const BlockKey& key, std::span<const std::byte> data) {
  if (data.size() != block_size_) {
    return InvalidArgumentError("Install data must be exactly one block");
  }
  auto it = map_.find(key);
  if (it != map_.end()) {
    ++stats_.hits;
    Metrics().hits.Increment();
    TouchLru(key);
    return CacheRef(this, &map_.find(key)->second->block);
  }
  ++stats_.misses;
  Metrics().misses.Increment();
  RETURN_IF_ERROR(EnsureCapacity());
  lru_.emplace_front();
  CacheBlock& block = lru_.front().block;
  block.key_ = key;
  block.data_.assign(data.begin(), data.end());
  map_.emplace(key, lru_.begin());
  return CacheRef(this, &block);
}

CacheRef BufferCache::AcquireIfPresent(const BlockKey& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    return CacheRef();
  }
  ++stats_.hits;
  Metrics().hits.Increment();
  TouchLru(key);
  return CacheRef(this, &map_.find(key)->second->block);
}

Result<CacheRef> BufferCache::Create(const BlockKey& key) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Re-creating a cached block (e.g. rewriting a freshly truncated file):
    // zero it and hand it back.
    CacheBlock& existing = it->second->block;
    std::memset(existing.data_.data(), 0, existing.data_.size());
    TouchLru(key);
    return CacheRef(this, &existing);
  }
  RETURN_IF_ERROR(EnsureCapacity());
  lru_.emplace_front();
  CacheBlock& block = lru_.front().block;
  block.key_ = key;
  block.data_.assign(block_size_, std::byte{0});
  map_.emplace(key, lru_.begin());
  return CacheRef(this, &block);
}

void BufferCache::MarkDirty(CacheBlock* block) {
  if (!block->dirty_) {
    block->dirty_ = true;
    block->dirty_since_ = clock_ != nullptr ? clock_->Now() : 0.0;
    ++dirty_count_;
  }
}

void BufferCache::MarkClean(CacheBlock* block) {
  if (block->dirty_) {
    block->dirty_ = false;
    assert(dirty_count_ > 0);
    --dirty_count_;
  }
}

bool BufferCache::NeedsWriteback() const { return dirty_count_ >= policy_.dirty_high_watermark; }

Status BufferCache::WriteBackBlocks(std::vector<CacheBlock*> blocks) {
  if (blocks.empty()) {
    return OkStatus();
  }
  if (writeback_ == nullptr) {
    return InvalidArgumentError("no writeback handler registered");
  }
  std::sort(blocks.begin(), blocks.end(), [](const CacheBlock* a, const CacheBlock* b) {
    if (a->key().object_id != b->key().object_id) {
      return a->key().object_id < b->key().object_id;
    }
    return a->key().index < b->key().index;
  });
  in_writeback_ = true;
  Status written = writeback_->WriteBack(blocks);
  in_writeback_ = false;
  RETURN_IF_ERROR(written);
  for (CacheBlock* block : blocks) {
    MarkClean(block);
  }
  ++stats_.writeback_batches;
  stats_.blocks_written_back += blocks.size();
  Metrics().writeback_batches.Increment();
  Metrics().blocks_written_back.Increment(blocks.size());
  return OkStatus();
}

Status BufferCache::MaybeWriteBackByAge() {
  if (clock_ == nullptr || dirty_count_ == 0) {
    return OkStatus();
  }
  const double now = clock_->Now();
  std::vector<CacheBlock*> old_blocks;
  bool any_old = false;
  for (auto& entry : lru_) {
    if (entry.block.dirty() &&
        now - entry.block.dirty_since() >= policy_.writeback_age_seconds) {
      any_old = true;
      break;
    }
  }
  if (!any_old) {
    return OkStatus();
  }
  // The paper's write-back flushes everything dirty once the age trigger
  // fires, so the resulting segment write is as large as possible.
  for (auto& entry : lru_) {
    if (entry.block.dirty()) {
      old_blocks.push_back(&entry.block);
    }
  }
  return WriteBackBlocks(std::move(old_blocks));
}

Status BufferCache::FlushAll() {
  // A writeback handler may dirty additional blocks (e.g. LFS updating an
  // indirect block not in the batch); loop until the cache is clean, with a
  // bound to turn a misbehaving handler into an error instead of a hang.
  for (int round = 0; round < 16; ++round) {
    if (dirty_count_ == 0) {
      return OkStatus();
    }
    RETURN_IF_ERROR(WriteBackBlocks(DirtyBlocks()));
  }
  return dirty_count_ == 0 ? OkStatus()
                           : IoError("writeback handler keeps producing dirty blocks");
}

Status BufferCache::FlushObject(uint64_t object_id) {
  std::vector<CacheBlock*> dirty;
  for (auto& entry : lru_) {
    if (entry.block.dirty() && entry.block.key().object_id == object_id) {
      dirty.push_back(&entry.block);
    }
  }
  return WriteBackBlocks(std::move(dirty));
}

void BufferCache::InvalidateObject(uint64_t object_id, uint64_t first_index) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    CacheBlock& block = it->block;
    if (block.key().object_id == object_id && block.key().index >= first_index) {
      assert(!block.pinned() && "invalidating a pinned block");
      MarkClean(&block);
      map_.erase(block.key());
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void BufferCache::InvalidateBlock(const BlockKey& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    return;
  }
  CacheBlock& block = it->second->block;
  assert(!block.pinned() && "invalidating a pinned block");
  MarkClean(&block);
  lru_.erase(it->second);
  map_.erase(it);
}

void BufferCache::DropClean() {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (!it->block.dirty() && !it->block.pinned()) {
      map_.erase(it->block.key());
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<CacheBlock*> BufferCache::DirtyBlocks() const {
  std::vector<CacheBlock*> dirty;
  for (auto& entry : const_cast<LruList&>(lru_)) {
    if (entry.block.dirty()) {
      dirty.push_back(&entry.block);
    }
  }
  return dirty;
}

}  // namespace logfs
