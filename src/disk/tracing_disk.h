// TracingDisk: decorator that records every request, used to reproduce the
// paper's Figures 1 and 2 (the disk-access pattern of small-file creation
// under FFS vs LFS) and to assert I/O patterns in tests.
#ifndef LOGFS_SRC_DISK_TRACING_DISK_H_
#define LOGFS_SRC_DISK_TRACING_DISK_H_

#include <deque>
#include <mutex>
#include <string>

#include "src/disk/block_device.h"
#include "src/sim/sim_clock.h"

namespace logfs {

struct TraceRecord {
  enum class Kind { kRead, kWrite };
  Kind kind;
  uint64_t first_sector;
  uint64_t sector_count;
  bool synchronous;
  bool sequential;  // Continued exactly at the previous request's end.
  double time_seconds;

  std::string ToString() const;
};

class TracingDisk : public BlockDevice {
 public:
  // `clock` may be null; trace timestamps are then 0.
  TracingDisk(BlockDevice* inner, const SimClock* clock) : inner_(inner), clock_(clock) {}

  Status ReadSectors(uint64_t first, std::span<std::byte> out, IoOptions options = {}) override;
  Status WriteSectors(uint64_t first, std::span<const std::byte> data,
                      IoOptions options = {}) override;
  // A vectored request is one transfer and traces as one record.
  Status ReadSectorsV(uint64_t first, std::span<const std::span<std::byte>> bufs,
                      IoOptions options = {}) override;
  Status WriteSectorsV(uint64_t first, std::span<const std::span<const std::byte>> bufs,
                       IoOptions options = {}) override;
  Status Flush() override;

  uint64_t sector_count() const override { return inner_->sector_count(); }
  const DiskStats& stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

  // The retained window of the trace: a bounded ring — once `trace_limit()`
  // records are held, each new request drops the oldest (soak workloads
  // otherwise grow the trace without bound). Sequentiality of new records
  // is still judged against the true previous request, dropped or not.
  //
  // Ring bookkeeping is mutex-guarded, so requests may arrive from several
  // threads; this accessor hands out a reference to the live deque and is
  // only safe once concurrent requests have quiesced (e.g. after joining
  // worker threads in a test). Use TraceSnapshot() while I/O is in flight.
  const std::deque<TraceRecord>& trace() const { return trace_; }
  std::deque<TraceRecord> TraceSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return trace_;
  }
  void ClearTrace() {
    std::lock_guard<std::mutex> lock(mu_);
    trace_.clear();
    dropped_records_ = 0;
  }

  // Records evicted from the ring since the last ClearTrace().
  uint64_t dropped_records() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_records_;
  }
  size_t trace_limit() const {
    std::lock_guard<std::mutex> lock(mu_);
    return trace_limit_;
  }
  void set_trace_limit(size_t limit);

  // Summary counters over the retained window.
  uint64_t WriteRequestCount() const;
  uint64_t SyncWriteRequestCount() const;
  uint64_t NonSequentialWriteCount() const;

 private:
  // Generous default: ~256k records (a few tens of MB) holds any test or
  // figure-reproduction trace whole while bounding soak runs.
  static constexpr size_t kDefaultTraceLimit = 262144;

  void Record(TraceRecord::Kind kind, uint64_t first, uint64_t count, bool synchronous);

  BlockDevice* inner_;
  const SimClock* clock_;
  // Guards the ring and its bookkeeping so decorated devices can be shared
  // across threads; dropped_records_ stays monotone under concurrent appends.
  mutable std::mutex mu_;
  std::deque<TraceRecord> trace_;
  size_t trace_limit_ = kDefaultTraceLimit;
  uint64_t dropped_records_ = 0;
  uint64_t last_end_ = 0;
  bool have_last_ = false;
};

}  // namespace logfs

#endif  // LOGFS_SRC_DISK_TRACING_DISK_H_
