#include "src/disk/block_device.h"

#include <cstring>

namespace logfs {

// Default vectored implementations: coalesce through a bounce buffer and
// issue one scalar request. Extent and size validation is delegated to the
// scalar call so errors match the device's own checks.

Status BlockDevice::ReadSectorsV(uint64_t first, std::span<const std::span<std::byte>> bufs,
                                 IoOptions options) {
  std::vector<std::byte> bounce(IoVecBytes(bufs));
  RETURN_IF_ERROR(ReadSectors(first, bounce, options));
  size_t offset = 0;
  for (const auto& buf : bufs) {
    if (!buf.empty()) {
      std::memcpy(buf.data(), bounce.data() + offset, buf.size());
      offset += buf.size();
    }
  }
  return OkStatus();
}

Status BlockDevice::WriteSectorsV(uint64_t first,
                                  std::span<const std::span<const std::byte>> bufs,
                                  IoOptions options) {
  std::vector<std::byte> bounce(IoVecBytes(bufs));
  size_t offset = 0;
  for (const auto& buf : bufs) {
    if (!buf.empty()) {
      std::memcpy(bounce.data() + offset, buf.data(), buf.size());
      offset += buf.size();
    }
  }
  return WriteSectors(first, bounce, options);
}

}  // namespace logfs
