#include "src/disk/resilient_disk.h"

#include "src/obs/metrics.h"

namespace logfs {

namespace {

struct ResilientMetrics {
  obs::Counter* retries = nullptr;
  obs::Counter* recovered = nullptr;
  obs::Counter* exhausted = nullptr;
  obs::Counter* media_errors = nullptr;
  obs::Counter* backoff_us = nullptr;
};

ResilientMetrics& Metrics() {
  static ResilientMetrics m = [] {
    ResilientMetrics init;
    if constexpr (obs::kMetricsEnabled) {
      init.retries = &obs::Registry().GetCounter("logfs.resilient.retries");
      init.recovered = &obs::Registry().GetCounter("logfs.resilient.recovered");
      init.exhausted = &obs::Registry().GetCounter("logfs.resilient.exhausted");
      init.media_errors = &obs::Registry().GetCounter("logfs.resilient.media_errors");
      // Cumulative sim-time spent sleeping between retries, in microseconds.
      // LfsFileSystem's per-op attribution diffs this around each operation
      // to split retry backoff out of the disk component.
      init.backoff_us = &obs::Registry().GetCounter("logfs.resilient.backoff_us");
    }
    return init;
  }();
  return m;
}

}  // namespace

template <typename Attempt>
Status ResilientDisk::RunWithRetries(Attempt&& attempt) {
  double backoff = policy_.initial_backoff_seconds;
  const uint32_t max_attempts = policy_.max_attempts < 1 ? 1 : policy_.max_attempts;
  for (uint32_t attempt_index = 0;; ++attempt_index) {
    Status status = attempt();
    if (status.ok()) {
      if (attempt_index > 0) {
        ++recovered_;
        if constexpr (obs::kMetricsEnabled) {
          Metrics().recovered->Increment();
        }
      }
      return status;
    }
    if (status.code() == ErrorCode::kMediaError) {
      ++media_errors_;
      if constexpr (obs::kMetricsEnabled) {
        Metrics().media_errors->Increment();
      }
      return status;
    }
    if (status.code() != ErrorCode::kIoError) {
      // kCrashed and everything else: not transient, pass through untouched.
      return status;
    }
    if (attempt_index + 1 >= max_attempts) {
      ++exhausted_;
      ++media_errors_;
      if constexpr (obs::kMetricsEnabled) {
        Metrics().exhausted->Increment();
        Metrics().media_errors->Increment();
      }
      return MediaError("transient error persisted through retries: " + status.message());
    }
    if (clock_ != nullptr) {
      clock_->Advance(backoff);
    }
    backoff_seconds_ += backoff;
    ++retries_;
    if constexpr (obs::kMetricsEnabled) {
      Metrics().retries->Increment();
      Metrics().backoff_us->Increment(static_cast<uint64_t>(backoff * 1e6));
    }
    backoff *= policy_.backoff_multiplier;
  }
}

Status ResilientDisk::ReadSectors(uint64_t first, std::span<std::byte> out, IoOptions options) {
  return RunWithRetries([&] { return inner_->ReadSectors(first, out, options); });
}

Status ResilientDisk::WriteSectors(uint64_t first, std::span<const std::byte> data,
                                   IoOptions options) {
  return RunWithRetries([&] { return inner_->WriteSectors(first, data, options); });
}

Status ResilientDisk::ReadSectorsV(uint64_t first, std::span<const std::span<std::byte>> bufs,
                                   IoOptions options) {
  return RunWithRetries([&] { return inner_->ReadSectorsV(first, bufs, options); });
}

Status ResilientDisk::WriteSectorsV(uint64_t first,
                                    std::span<const std::span<const std::byte>> bufs,
                                    IoOptions options) {
  return RunWithRetries([&] { return inner_->WriteSectorsV(first, bufs, options); });
}

Status ResilientDisk::Flush() {
  return RunWithRetries([&] { return inner_->Flush(); });
}

}  // namespace logfs
