// BlockDevice: the sector-extent storage interface every file system in
// logfs is built on. Implementations: MemoryDisk (simulated spindle),
// StripedDisk (RAID-0), FaultInjectingDisk, TracingDisk and
// crashsim::RecordingDisk (decorators).
#ifndef LOGFS_SRC_DISK_BLOCK_DEVICE_H_
#define LOGFS_SRC_DISK_BLOCK_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/sim/disk_model.h"
#include "src/util/status.h"

namespace logfs {

// Per-request options. `synchronous` marks requests the application must
// wait for (FFS metadata updates, fsync); it does not change device
// behaviour, but it is recorded in DiskStats and traces so the benchmarks
// can reproduce the paper's "8 writes, half synchronous" analysis.
struct IoOptions {
  bool synchronous = false;
};

// Aggregate device statistics, maintained by the physical device and
// readable through every decorator.
struct DiskStats {
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  uint64_t sectors_read = 0;
  uint64_t sectors_written = 0;
  uint64_t seeks = 0;             // Requests that paid positioning cost.
  uint64_t sequential_ops = 0;    // Requests that continued at the head.
  uint64_t sync_writes = 0;       // Write requests marked synchronous.
  double busy_seconds = 0.0;      // Total simulated service time.
  double seek_seconds = 0.0;      // Positioning component only.

  void Reset() { *this = DiskStats{}; }
  std::string ToString() const;
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  // `out.size()` / `data.size()` must be a positive multiple of kSectorSize
  // and the extent must lie inside the device.
  virtual Status ReadSectors(uint64_t first, std::span<std::byte> out,
                             IoOptions options = {}) = 0;
  virtual Status WriteSectors(uint64_t first, std::span<const std::byte> data,
                              IoOptions options = {}) = 0;

  // Vectored (scatter-gather) I/O. One device request covering the sector
  // extent [first, first + total/kSectorSize), where `total` is the summed
  // size of all buffers; the buffers are consumed (gather write) or filled
  // (scatter read) in order, as if they had been coalesced into one
  // contiguous span. The contract:
  //   * the vector must be non-empty and `total` a positive multiple of
  //     kSectorSize; individual buffers may be any size, including sizes
  //     that are not sector-aligned (empty buffers are permitted and
  //     ignored);
  //   * the request is accounted as ONE operation: DiskStats, traces, fault
  //     budgets and crash journals see exactly what a scalar call on the
  //     coalesced buffer would have seen;
  //   * buffers need only stay valid for the duration of the call.
  // The base-class default coalesces through a bounce buffer and issues one
  // scalar request (correct everywhere, zero-copy nowhere); devices
  // override it to move each extent directly.
  virtual Status ReadSectorsV(uint64_t first, std::span<const std::span<std::byte>> bufs,
                              IoOptions options = {});
  virtual Status WriteSectorsV(uint64_t first,
                               std::span<const std::span<const std::byte>> bufs,
                               IoOptions options = {});

  // Barrier: all previous writes are durable after Flush returns. The
  // simulated devices are always durable per-write, so this is a no-op hook
  // kept for interface fidelity (a real backing store would fsync here).
  virtual Status Flush() = 0;

  virtual uint64_t sector_count() const = 0;

  virtual const DiskStats& stats() const = 0;
  virtual void ResetStats() = 0;
};

// Summed byte count of an I/O vector (works for both const and mutable
// buffer vectors).
template <typename Span>
constexpr size_t IoVecBytes(std::span<const Span> bufs) {
  size_t total = 0;
  for (const auto& buf : bufs) {
    total += buf.size();
  }
  return total;
}

// The sub-vector of `bufs` covering the byte range [offset, offset + len),
// preserving buffer boundaries. Used by decorators that must split or
// truncate a vectored request (stripe runs, torn-write prefixes) without
// coalescing it.
template <typename Span>
std::vector<Span> SliceIoVec(std::span<const Span> bufs, size_t offset, size_t len) {
  std::vector<Span> out;
  for (const auto& buf : bufs) {
    if (len == 0) {
      break;
    }
    if (offset >= buf.size()) {
      offset -= buf.size();
      continue;
    }
    const size_t take = std::min(buf.size() - offset, len);
    out.push_back(buf.subspan(offset, take));
    offset = 0;
    len -= take;
  }
  return out;
}

}  // namespace logfs

#endif  // LOGFS_SRC_DISK_BLOCK_DEVICE_H_
