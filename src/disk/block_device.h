// BlockDevice: the sector-extent storage interface every file system in
// logfs is built on. Implementations: MemoryDisk (simulated spindle),
// FaultInjectingDisk and TracingDisk (decorators).
#ifndef LOGFS_SRC_DISK_BLOCK_DEVICE_H_
#define LOGFS_SRC_DISK_BLOCK_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "src/sim/disk_model.h"
#include "src/util/status.h"

namespace logfs {

// Per-request options. `synchronous` marks requests the application must
// wait for (FFS metadata updates, fsync); it does not change device
// behaviour, but it is recorded in DiskStats and traces so the benchmarks
// can reproduce the paper's "8 writes, half synchronous" analysis.
struct IoOptions {
  bool synchronous = false;
};

// Aggregate device statistics, maintained by the physical device and
// readable through every decorator.
struct DiskStats {
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  uint64_t sectors_read = 0;
  uint64_t sectors_written = 0;
  uint64_t seeks = 0;             // Requests that paid positioning cost.
  uint64_t sequential_ops = 0;    // Requests that continued at the head.
  uint64_t sync_writes = 0;       // Write requests marked synchronous.
  double busy_seconds = 0.0;      // Total simulated service time.
  double seek_seconds = 0.0;      // Positioning component only.

  void Reset() { *this = DiskStats{}; }
  std::string ToString() const;
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  // `out.size()` / `data.size()` must be a positive multiple of kSectorSize
  // and the extent must lie inside the device.
  virtual Status ReadSectors(uint64_t first, std::span<std::byte> out,
                             IoOptions options = {}) = 0;
  virtual Status WriteSectors(uint64_t first, std::span<const std::byte> data,
                              IoOptions options = {}) = 0;

  // Barrier: all previous writes are durable after Flush returns. The
  // simulated devices are always durable per-write, so this is a no-op hook
  // kept for interface fidelity (a real backing store would fsync here).
  virtual Status Flush() = 0;

  virtual uint64_t sector_count() const = 0;

  virtual const DiskStats& stats() const = 0;
  virtual void ResetStats() = 0;
};

}  // namespace logfs

#endif  // LOGFS_SRC_DISK_BLOCK_DEVICE_H_
