// StripedDisk: a RAID-0 composition of block devices (paper Section 2.1:
// "the bandwidth and throughput of disk subsystems can be substantially
// increased by the use of arrays of disks such as RAIDs [3], [but] the
// access time for small disk accesses is not substantially improved").
//
// Sector extents are split across member disks in `stripe_sectors` units.
// Member service times overlap — the array's time for a request is the
// *maximum* of its members' times, not the sum — so sequential bandwidth
// scales with the member count while small-access latency does not: exactly
// the asymmetry LFS is designed to exploit, and the FFS baseline cannot.
//
// Implementation note on timing: members are constructed with their own
// private SimClocks; the striped layer advances the shared simulation clock
// by the slowest member's delta per request.
// Thread safety: concurrent requests (shards flushing in parallel) are
// safe — member data copies run in parallel guarded per member, the shared
// and member clocks are atomic, and the array-level stats are mutex
// guarded. Concurrent requests overlap in *wall* time, so each one's
// observed member deltas may include a neighbour's service time; the
// array-level busy_seconds then over-approximates. Single-threaded timing
// is bit-identical to the original.
#ifndef LOGFS_SRC_DISK_STRIPED_DISK_H_
#define LOGFS_SRC_DISK_STRIPED_DISK_H_

#include <memory>
#include <mutex>
#include <vector>

#include "src/disk/block_device.h"
#include "src/disk/memory_disk.h"
#include "src/sim/sim_clock.h"

namespace logfs {

class StripedDisk : public BlockDevice {
 public:
  // Builds a RAID-0 array of `members` MemoryDisks, each of
  // `sectors_per_member` sectors, striped in `stripe_sectors` units.
  // `clock` is the shared simulation clock (may be null).
  StripedDisk(uint32_t members, uint64_t sectors_per_member, uint64_t stripe_sectors,
              SimClock* clock, DiskModelParams params = {});

  Status ReadSectors(uint64_t first, std::span<std::byte> out, IoOptions options = {}) override;
  Status WriteSectors(uint64_t first, std::span<const std::byte> data,
                      IoOptions options = {}) override;
  // Vectored I/O: extents are split at stripe boundaries and each member
  // run is issued as one vectored request to the member, so buffers that
  // straddle a boundary are never coalesced.
  Status ReadSectorsV(uint64_t first, std::span<const std::span<std::byte>> bufs,
                      IoOptions options = {}) override;
  Status WriteSectorsV(uint64_t first, std::span<const std::span<const std::byte>> bufs,
                       IoOptions options = {}) override;
  Status Flush() override;

  uint64_t sector_count() const override { return total_sectors_; }
  // Array-level view: one logical request is one op here even when it
  // touched several members.
  const DiskStats& stats() const override { return stats_; }
  // Member-level view: the members' own counters summed (per-member
  // requests, sectors, and busy time — NOT the same as stats(), which would
  // under-count member ops and double-count nothing). busy/seek seconds sum
  // device-observed time across members, so they can exceed wall time.
  DiskStats inner_stats() const;
  void ResetStats() override;

  uint32_t member_count() const { return static_cast<uint32_t>(members_.size()); }
  const MemoryDisk& member(uint32_t index) const { return *members_[index]; }

 private:
  // Splits the request into per-member runs and executes them, advancing
  // the shared clock by the slowest member. Exactly one of the two buffer
  // vectors is used, selected by `is_write`.
  Status ForEachRun(uint64_t first, bool is_write, IoOptions options,
                    std::span<const std::span<std::byte>> read_bufs,
                    std::span<const std::span<const std::byte>> write_bufs);

  uint64_t stripe_sectors_;
  uint64_t total_sectors_;
  SimClock* clock_;
  std::vector<std::unique_ptr<SimClock>> member_clocks_;
  std::vector<std::unique_ptr<MemoryDisk>> members_;
  std::mutex stats_mu_;  // Guards stats_ against concurrent requests.
  DiskStats stats_;
};

}  // namespace logfs

#endif  // LOGFS_SRC_DISK_STRIPED_DISK_H_
