// WindowDisk: a contiguous sector-range view of another device.
//
// The sharded LFS (src/lfs/sharded_lfs.h) slices one volume into N equal
// regions and mounts an independent log in each; WindowDisk is the slice.
// Sector w of the window is sector `first_sector + w` of the parent, so a
// shard formats "its" superblock at window sector 0 without knowing it
// lives mid-volume, and when the parent is a StripedDisk the window's
// sequential transfers still stripe across every member.
//
// Thread safety: the window keeps only per-window op/sector tallies (under
// a mutex); correctness of concurrent access is the parent's contract.
// Timing-dependent fields (busy/seek seconds, sequentiality) belong to the
// parent's head model and are not split per window — inspect the parent
// for those.
#ifndef LOGFS_SRC_DISK_WINDOW_DISK_H_
#define LOGFS_SRC_DISK_WINDOW_DISK_H_

#include <mutex>

#include "src/disk/block_device.h"

namespace logfs {

class WindowDisk : public BlockDevice {
 public:
  // The window [first_sector, first_sector + sector_count) must lie inside
  // `parent`, which must outlive this object.
  WindowDisk(BlockDevice* parent, uint64_t first_sector, uint64_t sector_count);

  Status ReadSectors(uint64_t first, std::span<std::byte> out, IoOptions options = {}) override;
  Status WriteSectors(uint64_t first, std::span<const std::byte> data,
                      IoOptions options = {}) override;
  Status ReadSectorsV(uint64_t first, std::span<const std::span<std::byte>> bufs,
                      IoOptions options = {}) override;
  Status WriteSectorsV(uint64_t first, std::span<const std::span<const std::byte>> bufs,
                       IoOptions options = {}) override;
  Status Flush() override;

  uint64_t sector_count() const override { return sector_count_; }
  // Per-window op/sector counts (busy/seek fields stay zero; see header
  // comment). Do not read while another thread is issuing I/O here.
  const DiskStats& stats() const override { return stats_; }
  void ResetStats() override;

  BlockDevice* parent() const { return parent_; }
  uint64_t first_sector() const { return first_sector_; }

 private:
  Status CheckExtent(uint64_t first, size_t bytes) const;
  void Count(uint64_t sectors, bool is_write, bool synchronous);

  BlockDevice* parent_;
  uint64_t first_sector_;
  uint64_t sector_count_;
  std::mutex stats_mu_;
  DiskStats stats_;
};

}  // namespace logfs

#endif  // LOGFS_SRC_DISK_WINDOW_DISK_H_
