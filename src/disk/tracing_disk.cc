#include "src/disk/tracing_disk.h"

#include <sstream>

namespace logfs {

std::string TraceRecord::ToString() const {
  std::ostringstream os;
  os << (kind == Kind::kRead ? "R" : "W") << " sector=" << first_sector << "+" << sector_count
     << (synchronous ? " sync" : " async") << (sequential ? " seq" : " rand") << " t="
     << time_seconds;
  return os.str();
}

void TracingDisk::set_trace_limit(size_t limit) {
  std::lock_guard<std::mutex> lock(mu_);
  trace_limit_ = limit;
  while (trace_.size() > trace_limit_) {
    trace_.pop_front();
    ++dropped_records_;
  }
}

void TracingDisk::Record(TraceRecord::Kind kind, uint64_t first, uint64_t count,
                         bool synchronous) {
  TraceRecord record;
  record.kind = kind;
  record.first_sector = first;
  record.sector_count = count;
  record.synchronous = synchronous;
  record.time_seconds = clock_ != nullptr ? clock_->Now() : 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  record.sequential = have_last_ && first == last_end_;
  if (trace_limit_ == 0) {
    ++dropped_records_;
  } else {
    if (trace_.size() >= trace_limit_) {
      trace_.pop_front();
      ++dropped_records_;
    }
    trace_.push_back(record);
  }
  last_end_ = first + count;
  have_last_ = true;
}

Status TracingDisk::ReadSectors(uint64_t first, std::span<std::byte> out, IoOptions options) {
  RETURN_IF_ERROR(inner_->ReadSectors(first, out, options));
  Record(TraceRecord::Kind::kRead, first, out.size() / kSectorSize, options.synchronous);
  return OkStatus();
}

Status TracingDisk::WriteSectors(uint64_t first, std::span<const std::byte> data,
                                 IoOptions options) {
  RETURN_IF_ERROR(inner_->WriteSectors(first, data, options));
  Record(TraceRecord::Kind::kWrite, first, data.size() / kSectorSize, options.synchronous);
  return OkStatus();
}

Status TracingDisk::ReadSectorsV(uint64_t first, std::span<const std::span<std::byte>> bufs,
                                 IoOptions options) {
  RETURN_IF_ERROR(inner_->ReadSectorsV(first, bufs, options));
  Record(TraceRecord::Kind::kRead, first, IoVecBytes(bufs) / kSectorSize, options.synchronous);
  return OkStatus();
}

Status TracingDisk::WriteSectorsV(uint64_t first,
                                  std::span<const std::span<const std::byte>> bufs,
                                  IoOptions options) {
  RETURN_IF_ERROR(inner_->WriteSectorsV(first, bufs, options));
  Record(TraceRecord::Kind::kWrite, first, IoVecBytes(bufs) / kSectorSize, options.synchronous);
  return OkStatus();
}

Status TracingDisk::Flush() { return inner_->Flush(); }

uint64_t TracingDisk::WriteRequestCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& r : trace_) {
    if (r.kind == TraceRecord::Kind::kWrite) {
      ++n;
    }
  }
  return n;
}

uint64_t TracingDisk::SyncWriteRequestCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& r : trace_) {
    if (r.kind == TraceRecord::Kind::kWrite && r.synchronous) {
      ++n;
    }
  }
  return n;
}

uint64_t TracingDisk::NonSequentialWriteCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& r : trace_) {
    if (r.kind == TraceRecord::Kind::kWrite && !r.sequential) {
      ++n;
    }
  }
  return n;
}

}  // namespace logfs
