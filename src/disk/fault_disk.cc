#include "src/disk/fault_disk.h"

namespace logfs {

bool FaultInjectingDisk::TouchesBadSector(const std::unordered_set<uint64_t>& bad, uint64_t first,
                                          uint64_t sectors) const {
  if (bad.empty()) {
    return false;
  }
  for (uint64_t i = 0; i < sectors; ++i) {
    if (bad.contains(first + i)) {
      return true;
    }
  }
  return false;
}

Status FaultInjectingDisk::CheckReadFaults(uint64_t first, uint64_t sectors) {
  const uint64_t request_index = read_requests_seen_;
  ++read_requests_seen_;
  if (TouchesBadSector(bad_read_sectors_, first, sectors)) {
    ++media_errors_injected_;
    return MediaError("unreadable sector");
  }
  if (fail_read_requests_.erase(request_index) > 0) {
    ++transient_read_errors_injected_;
    return IoError("injected transient read error");
  }
  if (transient_read_p_ > 0.0 && rng_.NextBool(transient_read_p_)) {
    ++transient_read_errors_injected_;
    return IoError("injected transient read error");
  }
  return OkStatus();
}

Status FaultInjectingDisk::CheckWriteFaults(uint64_t first, uint64_t sectors) {
  if (TouchesBadSector(bad_write_sectors_, first, sectors)) {
    ++media_errors_injected_;
    return MediaError("unwritable sector");
  }
  if (fail_write_requests_.erase(write_requests_seen_ - 1) > 0) {
    ++transient_write_errors_injected_;
    return IoError("injected transient write error");
  }
  if (transient_write_p_ > 0.0 && rng_.NextBool(transient_write_p_)) {
    ++transient_write_errors_injected_;
    return IoError("injected transient write error");
  }
  return OkStatus();
}

void FaultInjectingDisk::ApplyCorruption(uint64_t first, std::span<std::byte> out) {
  if (corrupt_sectors_.empty()) {
    return;
  }
  const uint64_t sectors = out.size() / kSectorSize;
  for (uint64_t i = 0; i < sectors; ++i) {
    auto it = corrupt_sectors_.find(first + i);
    if (it == corrupt_sectors_.end()) {
      continue;
    }
    const size_t pos = i * kSectorSize + it->second.byte_offset;
    out[pos] ^= std::byte{it->second.xor_mask};
    ++corruptions_applied_;
  }
}

void FaultInjectingDisk::ApplyCorruptionV(uint64_t first,
                                          std::span<const std::span<std::byte>> bufs) {
  if (corrupt_sectors_.empty()) {
    return;
  }
  // Walk the vector as one flat byte range; each buffer covers whole sectors
  // of it in order.
  uint64_t sector = first;
  for (const auto& buf : bufs) {
    ApplyCorruption(sector, buf);
    sector += buf.size() / kSectorSize;
  }
}

Status FaultInjectingDisk::ReadSectors(uint64_t first, std::span<std::byte> out,
                                       IoOptions options) {
  if (crashed_) {
    return CrashedError("device is powered off");
  }
  RETURN_IF_ERROR(CheckReadFaults(first, out.size() / kSectorSize));
  RETURN_IF_ERROR(inner_->ReadSectors(first, out, options));
  ApplyCorruption(first, out);
  return OkStatus();
}

Status FaultInjectingDisk::WriteSectors(uint64_t first, std::span<const std::byte> data,
                                        IoOptions options) {
  if (crashed_) {
    return CrashedError("device is powered off");
  }
  ++write_requests_seen_;
  const uint64_t sectors = data.size() / kSectorSize;
  // Media faults fire before the armed-crash budget: a rejected request
  // transfers nothing, so it cannot be the one interrupted by the crash.
  RETURN_IF_ERROR(CheckWriteFaults(first, sectors));
  if (armed_) {
    if (writes_until_crash_ == 0) {
      // This is the write that gets interrupted: a prefix may reach disk.
      const uint64_t keep = torn_sectors_ < sectors ? torn_sectors_ : sectors;
      if (keep > 0) {
        // Best-effort: a failure here is indistinguishable from the crash.
        (void)inner_->WriteSectors(first, data.subspan(0, keep * kSectorSize), options);
      }
      sectors_written_seen_ += keep;
      crashed_ = true;
      armed_ = false;
      return CrashedError("simulated crash during write");
    }
    --writes_until_crash_;
    if (sectors > sectors_until_crash_) {
      // The sector budget runs out inside this request.
      const uint64_t keep = torn_on_sector_boundary_ ? sectors_until_crash_ : 0;
      if (keep > 0) {
        (void)inner_->WriteSectors(first, data.subspan(0, keep * kSectorSize), options);
      }
      sectors_written_seen_ += keep;
      crashed_ = true;
      armed_ = false;
      return CrashedError("simulated crash mid-write at sector budget");
    }
    sectors_until_crash_ -= sectors;
  }
  sectors_written_seen_ += sectors;
  return inner_->WriteSectors(first, data, options);
}

Status FaultInjectingDisk::ReadSectorsV(uint64_t first, std::span<const std::span<std::byte>> bufs,
                                        IoOptions options) {
  if (crashed_) {
    return CrashedError("device is powered off");
  }
  RETURN_IF_ERROR(CheckReadFaults(first, IoVecBytes(bufs) / kSectorSize));
  RETURN_IF_ERROR(inner_->ReadSectorsV(first, bufs, options));
  ApplyCorruptionV(first, bufs);
  return OkStatus();
}

Status FaultInjectingDisk::WriteSectorsV(uint64_t first,
                                         std::span<const std::span<const std::byte>> bufs,
                                         IoOptions options) {
  if (crashed_) {
    return CrashedError("device is powered off");
  }
  ++write_requests_seen_;
  const uint64_t sectors = IoVecBytes(bufs) / kSectorSize;
  RETURN_IF_ERROR(CheckWriteFaults(first, sectors));
  if (armed_) {
    if (writes_until_crash_ == 0) {
      const uint64_t keep = torn_sectors_ < sectors ? torn_sectors_ : sectors;
      if (keep > 0) {
        const auto prefix = SliceIoVec(bufs, 0, keep * kSectorSize);
        (void)inner_->WriteSectorsV(first, prefix, options);
      }
      sectors_written_seen_ += keep;
      crashed_ = true;
      armed_ = false;
      return CrashedError("simulated crash during write");
    }
    --writes_until_crash_;
    if (sectors > sectors_until_crash_) {
      const uint64_t keep = torn_on_sector_boundary_ ? sectors_until_crash_ : 0;
      if (keep > 0) {
        const auto prefix = SliceIoVec(bufs, 0, keep * kSectorSize);
        (void)inner_->WriteSectorsV(first, prefix, options);
      }
      sectors_written_seen_ += keep;
      crashed_ = true;
      armed_ = false;
      return CrashedError("simulated crash mid-write at sector budget");
    }
    sectors_until_crash_ -= sectors;
  }
  sectors_written_seen_ += sectors;
  return inner_->WriteSectorsV(first, bufs, options);
}

Status FaultInjectingDisk::Flush() {
  if (crashed_) {
    return CrashedError("device is powered off");
  }
  return inner_->Flush();
}

}  // namespace logfs
