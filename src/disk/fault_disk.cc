#include "src/disk/fault_disk.h"

namespace logfs {

Status FaultInjectingDisk::ReadSectors(uint64_t first, std::span<std::byte> out,
                                       IoOptions options) {
  if (crashed_) {
    return CrashedError("device is powered off");
  }
  return inner_->ReadSectors(first, out, options);
}

Status FaultInjectingDisk::WriteSectors(uint64_t first, std::span<const std::byte> data,
                                        IoOptions options) {
  if (crashed_) {
    return CrashedError("device is powered off");
  }
  ++write_requests_seen_;
  const uint64_t sectors = data.size() / kSectorSize;
  if (armed_) {
    if (writes_until_crash_ == 0) {
      // This is the write that gets interrupted: a prefix may reach disk.
      const uint64_t keep = torn_sectors_ < sectors ? torn_sectors_ : sectors;
      if (keep > 0) {
        // Best-effort: a failure here is indistinguishable from the crash.
        (void)inner_->WriteSectors(first, data.subspan(0, keep * kSectorSize), options);
      }
      sectors_written_seen_ += keep;
      crashed_ = true;
      armed_ = false;
      return CrashedError("simulated crash during write");
    }
    --writes_until_crash_;
    if (sectors > sectors_until_crash_) {
      // The sector budget runs out inside this request.
      const uint64_t keep = torn_on_sector_boundary_ ? sectors_until_crash_ : 0;
      if (keep > 0) {
        (void)inner_->WriteSectors(first, data.subspan(0, keep * kSectorSize), options);
      }
      sectors_written_seen_ += keep;
      crashed_ = true;
      armed_ = false;
      return CrashedError("simulated crash mid-write at sector budget");
    }
    sectors_until_crash_ -= sectors;
  }
  sectors_written_seen_ += sectors;
  return inner_->WriteSectors(first, data, options);
}

Status FaultInjectingDisk::ReadSectorsV(uint64_t first, std::span<const std::span<std::byte>> bufs,
                                        IoOptions options) {
  if (crashed_) {
    return CrashedError("device is powered off");
  }
  return inner_->ReadSectorsV(first, bufs, options);
}

Status FaultInjectingDisk::WriteSectorsV(uint64_t first,
                                         std::span<const std::span<const std::byte>> bufs,
                                         IoOptions options) {
  if (crashed_) {
    return CrashedError("device is powered off");
  }
  ++write_requests_seen_;
  const uint64_t sectors = IoVecBytes(bufs) / kSectorSize;
  if (armed_) {
    if (writes_until_crash_ == 0) {
      const uint64_t keep = torn_sectors_ < sectors ? torn_sectors_ : sectors;
      if (keep > 0) {
        const auto prefix = SliceIoVec(bufs, 0, keep * kSectorSize);
        (void)inner_->WriteSectorsV(first, prefix, options);
      }
      sectors_written_seen_ += keep;
      crashed_ = true;
      armed_ = false;
      return CrashedError("simulated crash during write");
    }
    --writes_until_crash_;
    if (sectors > sectors_until_crash_) {
      const uint64_t keep = torn_on_sector_boundary_ ? sectors_until_crash_ : 0;
      if (keep > 0) {
        const auto prefix = SliceIoVec(bufs, 0, keep * kSectorSize);
        (void)inner_->WriteSectorsV(first, prefix, options);
      }
      sectors_written_seen_ += keep;
      crashed_ = true;
      armed_ = false;
      return CrashedError("simulated crash mid-write at sector budget");
    }
    sectors_until_crash_ -= sectors;
  }
  sectors_written_seen_ += sectors;
  return inner_->WriteSectorsV(first, bufs, options);
}

Status FaultInjectingDisk::Flush() {
  if (crashed_) {
    return CrashedError("device is powered off");
  }
  return inner_->Flush();
}

}  // namespace logfs
