#include "src/disk/memory_disk.h"

#include <cstring>
#include <sstream>

namespace logfs {

std::string DiskStats::ToString() const {
  std::ostringstream os;
  os << "reads=" << read_ops << " writes=" << write_ops << " (sync=" << sync_writes << ")"
     << " sectors_read=" << sectors_read << " sectors_written=" << sectors_written
     << " seeks=" << seeks << " sequential=" << sequential_ops << " busy=" << busy_seconds
     << "s seek_time=" << seek_seconds << "s";
  return os.str();
}

MemoryDisk::MemoryDisk(uint64_t sector_count, SimClock* clock, DiskModelParams params)
    : sector_count_(sector_count),
      clock_(clock),
      model_(params, sector_count),
      data_(sector_count * kSectorSize) {}

Status MemoryDisk::CheckExtent(uint64_t first, size_t bytes) const {
  if (bytes == 0 || bytes % kSectorSize != 0) {
    return InvalidArgumentError("I/O size must be a positive multiple of the sector size");
  }
  const uint64_t count = bytes / kSectorSize;
  if (first >= sector_count_ || count > sector_count_ - first) {
    return OutOfRangeError("I/O extent beyond end of device");
  }
  return OkStatus();
}

void MemoryDisk::Account(uint64_t first, uint64_t count, bool is_write, bool synchronous) {
  std::lock_guard<std::mutex> lock(account_mu_);
  const double positioning = model_.PositioningSeconds(first, head_);
  const double transfer =
      model_.TransferSeconds(count) + model_.params().command_overhead_ms / 1e3;
  if (positioning > 0.0) {
    ++stats_.seeks;
    stats_.seek_seconds += positioning;
  } else {
    ++stats_.sequential_ops;
  }
  stats_.busy_seconds += positioning + transfer;
  if (clock_ != nullptr) {
    clock_->Advance(positioning + transfer);
  }
  if (is_write) {
    ++stats_.write_ops;
    stats_.sectors_written += count;
    if (synchronous) {
      ++stats_.sync_writes;
    }
  } else {
    ++stats_.read_ops;
    stats_.sectors_read += count;
  }
  head_ = first + count;
}

Status MemoryDisk::ReadSectors(uint64_t first, std::span<std::byte> out, IoOptions options) {
  RETURN_IF_ERROR(CheckExtent(first, out.size()));
  std::memcpy(out.data(), data_.data() + first * kSectorSize, out.size());
  Account(first, out.size() / kSectorSize, /*is_write=*/false, options.synchronous);
  return OkStatus();
}

Status MemoryDisk::WriteSectors(uint64_t first, std::span<const std::byte> data,
                                IoOptions options) {
  RETURN_IF_ERROR(CheckExtent(first, data.size()));
  std::memcpy(data_.data() + first * kSectorSize, data.data(), data.size());
  Account(first, data.size() / kSectorSize, /*is_write=*/true, options.synchronous);
  return OkStatus();
}

Status MemoryDisk::ReadSectorsV(uint64_t first, std::span<const std::span<std::byte>> bufs,
                                IoOptions options) {
  const size_t total = IoVecBytes(bufs);
  RETURN_IF_ERROR(CheckExtent(first, total));
  const std::byte* src = data_.data() + first * kSectorSize;
  for (const auto& buf : bufs) {
    if (!buf.empty()) {
      std::memcpy(buf.data(), src, buf.size());
      src += buf.size();
    }
  }
  Account(first, total / kSectorSize, /*is_write=*/false, options.synchronous);
  return OkStatus();
}

Status MemoryDisk::WriteSectorsV(uint64_t first, std::span<const std::span<const std::byte>> bufs,
                                 IoOptions options) {
  const size_t total = IoVecBytes(bufs);
  RETURN_IF_ERROR(CheckExtent(first, total));
  std::byte* dst = data_.data() + first * kSectorSize;
  for (const auto& buf : bufs) {
    if (!buf.empty()) {
      std::memcpy(dst, buf.data(), buf.size());
      dst += buf.size();
    }
  }
  Account(first, total / kSectorSize, /*is_write=*/true, options.synchronous);
  return OkStatus();
}

Status MemoryDisk::Flush() { return OkStatus(); }

}  // namespace logfs
