#include "src/disk/striped_disk.h"

#include <algorithm>

namespace logfs {

StripedDisk::StripedDisk(uint32_t members, uint64_t sectors_per_member,
                         uint64_t stripe_sectors, SimClock* clock, DiskModelParams params)
    : stripe_sectors_(stripe_sectors),
      total_sectors_(static_cast<uint64_t>(members) * sectors_per_member),
      clock_(clock) {
  for (uint32_t i = 0; i < members; ++i) {
    member_clocks_.push_back(std::make_unique<SimClock>());
    members_.push_back(
        std::make_unique<MemoryDisk>(sectors_per_member, member_clocks_.back().get(), params));
  }
}

Status StripedDisk::ForEachRun(uint64_t first, bool is_write, IoOptions options,
                               std::span<const std::span<std::byte>> read_bufs,
                               std::span<const std::span<const std::byte>> write_bufs) {
  const size_t bytes = is_write ? IoVecBytes(write_bufs) : IoVecBytes(read_bufs);
  if (bytes == 0 || bytes % kSectorSize != 0) {
    return InvalidArgumentError("I/O size must be a positive multiple of the sector size");
  }
  const uint64_t count = bytes / kSectorSize;
  if (first >= total_sectors_ || count > total_sectors_ - first) {
    return OutOfRangeError("I/O extent beyond end of array");
  }
  // Execute per-member runs; each member's private clock advances by its own
  // service time. The array is done when the slowest member is done.
  std::vector<double> start_times(members_.size());
  for (size_t m = 0; m < members_.size(); ++m) {
    start_times[m] = member_clocks_[m]->Now();
  }
  uint64_t done = 0;
  while (done < count) {
    const uint64_t logical = first + done;
    const uint64_t stripe_index = logical / stripe_sectors_;
    const uint64_t within = logical % stripe_sectors_;
    const uint32_t member = static_cast<uint32_t>(stripe_index % members_.size());
    const uint64_t member_sector =
        (stripe_index / members_.size()) * stripe_sectors_ + within;
    const uint64_t run = std::min(stripe_sectors_ - within, count - done);
    if (is_write) {
      const auto fragments =
          SliceIoVec(write_bufs, done * kSectorSize, run * kSectorSize);
      RETURN_IF_ERROR(members_[member]->WriteSectorsV(member_sector, fragments, options));
    } else {
      const auto fragments =
          SliceIoVec(read_bufs, done * kSectorSize, run * kSectorSize);
      RETURN_IF_ERROR(members_[member]->ReadSectorsV(member_sector, fragments, options));
    }
    done += run;
  }
  // The request completes when the slowest member finishes (members work in
  // parallel); idle members catch up to the completion time.
  double max_elapsed = 0.0;
  for (size_t m = 0; m < members_.size(); ++m) {
    max_elapsed = std::max(max_elapsed, member_clocks_[m]->Now() - start_times[m]);
  }
  for (size_t m = 0; m < members_.size(); ++m) {
    member_clocks_[m]->AdvanceTo(start_times[m] + max_elapsed);
  }
  if (clock_ != nullptr) {
    clock_->Advance(max_elapsed);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.busy_seconds += max_elapsed;
    if (is_write) {
      ++stats_.write_ops;
      stats_.sectors_written += count;
      if (options.synchronous) {
        ++stats_.sync_writes;
      }
    } else {
      ++stats_.read_ops;
      stats_.sectors_read += count;
    }
  }
  return OkStatus();
}

Status StripedDisk::ReadSectors(uint64_t first, std::span<std::byte> out, IoOptions options) {
  const std::span<std::byte> one[] = {out};
  return ForEachRun(first, /*is_write=*/false, options, one, {});
}

Status StripedDisk::WriteSectors(uint64_t first, std::span<const std::byte> data,
                                 IoOptions options) {
  const std::span<const std::byte> one[] = {data};
  return ForEachRun(first, /*is_write=*/true, options, {}, one);
}

Status StripedDisk::ReadSectorsV(uint64_t first, std::span<const std::span<std::byte>> bufs,
                                 IoOptions options) {
  return ForEachRun(first, /*is_write=*/false, options, bufs, {});
}

Status StripedDisk::WriteSectorsV(uint64_t first,
                                  std::span<const std::span<const std::byte>> bufs,
                                  IoOptions options) {
  return ForEachRun(first, /*is_write=*/true, options, {}, bufs);
}

Status StripedDisk::Flush() {
  for (auto& member : members_) {
    RETURN_IF_ERROR(member->Flush());
  }
  return OkStatus();
}

void StripedDisk::ResetStats() {
  stats_.Reset();
  for (auto& member : members_) {
    member->ResetStats();
  }
}

DiskStats StripedDisk::inner_stats() const {
  DiskStats sum;
  for (const auto& member : members_) {
    const DiskStats& m = member->stats();
    sum.read_ops += m.read_ops;
    sum.write_ops += m.write_ops;
    sum.sectors_read += m.sectors_read;
    sum.sectors_written += m.sectors_written;
    sum.seeks += m.seeks;
    sum.sequential_ops += m.sequential_ops;
    sum.sync_writes += m.sync_writes;
    sum.busy_seconds += m.busy_seconds;
    sum.seek_seconds += m.seek_seconds;
  }
  return sum;
}

}  // namespace logfs
