// MemoryDisk: the simulated physical disk.
//
// Stores sector data in RAM and charges simulated service time (seek +
// rotation + transfer) to a shared SimClock through a DiskModel. Tracks the
// head position so sequential continuation is free of positioning cost,
// exactly the property LFS exploits.
//
// Thread safety: the accounting state (head position, stats, clock charge)
// is guarded by an internal mutex so shards of a sharded mount can issue
// I/O from many threads. The sector image itself is copied *outside* the
// lock — concurrent callers touching disjoint extents (each shard owns a
// disjoint window) proceed in parallel; overlapping concurrent writes were
// never defined and stay undefined. Single-threaded accounting is
// bit-identical to the lock-free original.
#ifndef LOGFS_SRC_DISK_MEMORY_DISK_H_
#define LOGFS_SRC_DISK_MEMORY_DISK_H_

#include <mutex>
#include <vector>

#include "src/disk/block_device.h"
#include "src/sim/disk_model.h"
#include "src/sim/sim_clock.h"

namespace logfs {

class MemoryDisk : public BlockDevice {
 public:
  // `clock` must outlive the disk and may be null (timing disabled, for
  // pure functional tests).
  MemoryDisk(uint64_t sector_count, SimClock* clock, DiskModelParams params = {});

  Status ReadSectors(uint64_t first, std::span<std::byte> out, IoOptions options = {}) override;
  Status WriteSectors(uint64_t first, std::span<const std::byte> data,
                      IoOptions options = {}) override;
  // Native scatter-gather: one memcpy per extent straight to/from the
  // image, one Account() call — simulated stats and timing are identical to
  // the scalar path on the coalesced buffer.
  Status ReadSectorsV(uint64_t first, std::span<const std::span<std::byte>> bufs,
                      IoOptions options = {}) override;
  Status WriteSectorsV(uint64_t first, std::span<const std::span<const std::byte>> bufs,
                       IoOptions options = {}) override;
  Status Flush() override;

  uint64_t sector_count() const override { return sector_count_; }
  const DiskStats& stats() const override { return stats_; }
  void ResetStats() override { stats_.Reset(); }

  const DiskModel& model() const { return model_; }

  // Raw image access for checkers and "dd"-style inspection in tests.
  std::span<const std::byte> RawImage() const { return data_; }
  std::span<std::byte> MutableRawImage() { return data_; }

 private:
  Status CheckExtent(uint64_t first, size_t bytes) const;
  void Account(uint64_t first, uint64_t count, bool is_write, bool synchronous);

  uint64_t sector_count_;
  SimClock* clock_;
  DiskModel model_;
  std::vector<std::byte> data_;
  std::mutex account_mu_;  // Guards head_, stats_, and the clock charge.
  uint64_t head_ = 0;      // Sector after the last transferred sector.
  DiskStats stats_;
};

}  // namespace logfs

#endif  // LOGFS_SRC_DISK_MEMORY_DISK_H_
