#include "src/disk/window_disk.h"

#include <cassert>

namespace logfs {

WindowDisk::WindowDisk(BlockDevice* parent, uint64_t first_sector, uint64_t sector_count)
    : parent_(parent), first_sector_(first_sector), sector_count_(sector_count) {
  assert(parent != nullptr);
  assert(first_sector + sector_count <= parent->sector_count());
}

Status WindowDisk::CheckExtent(uint64_t first, size_t bytes) const {
  if (bytes == 0 || bytes % kSectorSize != 0) {
    return InvalidArgumentError("I/O size must be a positive multiple of the sector size");
  }
  const uint64_t count = bytes / kSectorSize;
  if (first >= sector_count_ || count > sector_count_ - first) {
    return OutOfRangeError("I/O extent beyond end of window");
  }
  return OkStatus();
}

void WindowDisk::Count(uint64_t sectors, bool is_write, bool synchronous) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (is_write) {
    ++stats_.write_ops;
    stats_.sectors_written += sectors;
    if (synchronous) {
      ++stats_.sync_writes;
    }
  } else {
    ++stats_.read_ops;
    stats_.sectors_read += sectors;
  }
}

Status WindowDisk::ReadSectors(uint64_t first, std::span<std::byte> out, IoOptions options) {
  RETURN_IF_ERROR(CheckExtent(first, out.size()));
  RETURN_IF_ERROR(parent_->ReadSectors(first_sector_ + first, out, options));
  Count(out.size() / kSectorSize, /*is_write=*/false, options.synchronous);
  return OkStatus();
}

Status WindowDisk::WriteSectors(uint64_t first, std::span<const std::byte> data,
                                IoOptions options) {
  RETURN_IF_ERROR(CheckExtent(first, data.size()));
  RETURN_IF_ERROR(parent_->WriteSectors(first_sector_ + first, data, options));
  Count(data.size() / kSectorSize, /*is_write=*/true, options.synchronous);
  return OkStatus();
}

Status WindowDisk::ReadSectorsV(uint64_t first, std::span<const std::span<std::byte>> bufs,
                                IoOptions options) {
  const size_t total = IoVecBytes(bufs);
  RETURN_IF_ERROR(CheckExtent(first, total));
  RETURN_IF_ERROR(parent_->ReadSectorsV(first_sector_ + first, bufs, options));
  Count(total / kSectorSize, /*is_write=*/false, options.synchronous);
  return OkStatus();
}

Status WindowDisk::WriteSectorsV(uint64_t first,
                                 std::span<const std::span<const std::byte>> bufs,
                                 IoOptions options) {
  const size_t total = IoVecBytes(bufs);
  RETURN_IF_ERROR(CheckExtent(first, total));
  RETURN_IF_ERROR(parent_->WriteSectorsV(first_sector_ + first, bufs, options));
  Count(total / kSectorSize, /*is_write=*/true, options.synchronous);
  return OkStatus();
}

Status WindowDisk::Flush() { return parent_->Flush(); }

void WindowDisk::ResetStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.Reset();
}

}  // namespace logfs
