// FaultInjectingDisk: decorator that simulates crashes and torn writes.
//
// Crash-recovery tests schedule a crash after the Nth write request (or the
// Nth written sector); once the crash fires, the write in flight may be torn
// (only a prefix of its sectors reach the medium) and every subsequent
// request fails with kCrashed — the device is "powered off". Remounting the
// file system on the *inner* device models rebooting the machine.
#ifndef LOGFS_SRC_DISK_FAULT_DISK_H_
#define LOGFS_SRC_DISK_FAULT_DISK_H_

#include <cstdint>
#include <limits>

#include "src/disk/block_device.h"

namespace logfs {

class FaultInjectingDisk : public BlockDevice {
 public:
  explicit FaultInjectingDisk(BlockDevice* inner) : inner_(inner) {}

  // Crash after `n` more successful write *requests*. The (n+1)-th write
  // writes `torn_sectors` sectors (possibly 0) and then the device dies.
  void CrashAfterWrites(uint64_t n, uint64_t torn_sectors = 0) {
    writes_until_crash_ = n;
    torn_sectors_ = torn_sectors;
    sectors_until_crash_ = std::numeric_limits<uint64_t>::max();
    crashed_ = false;
    armed_ = true;
  }

  // Crash after `n` more written *sectors*. The write request that crosses
  // the boundary is the one interrupted: with `torn` it persists exactly the
  // sectors that fit in the remaining budget (a mid-transfer tear at an
  // arbitrary sector), without it the whole request is dropped (a
  // request-atomic device). A request that lands exactly on the boundary
  // completes; the next write dies.
  void CrashAfterSectors(uint64_t n, bool torn = true) {
    sectors_until_crash_ = n;
    torn_on_sector_boundary_ = torn;
    writes_until_crash_ = std::numeric_limits<uint64_t>::max();
    crashed_ = false;
    armed_ = true;
  }

  // Immediately power off the device.
  void CrashNow() {
    crashed_ = true;
    armed_ = false;
  }

  // Clear the crash state (the "reboot": the data survives, I/O works again).
  void Reset() {
    crashed_ = false;
    armed_ = false;
  }

  bool crashed() const { return crashed_; }
  uint64_t write_requests_seen() const { return write_requests_seen_; }
  uint64_t sectors_written_seen() const { return sectors_written_seen_; }

  Status ReadSectors(uint64_t first, std::span<std::byte> out, IoOptions options = {}) override;
  Status WriteSectors(uint64_t first, std::span<const std::byte> data,
                      IoOptions options = {}) override;
  // Vectored forwarding. Crash and torn budgets apply to the vector's total
  // sector count exactly as they would to the coalesced request; a torn
  // prefix is carved out of the vector at sector granularity, so a tear can
  // land in the middle of any buffer.
  Status ReadSectorsV(uint64_t first, std::span<const std::span<std::byte>> bufs,
                      IoOptions options = {}) override;
  Status WriteSectorsV(uint64_t first, std::span<const std::span<const std::byte>> bufs,
                       IoOptions options = {}) override;
  Status Flush() override;

  uint64_t sector_count() const override { return inner_->sector_count(); }
  // This decorator keeps no stats of its own, so stats() IS the inner
  // device's view. inner_stats() names that explicitly — the decorator
  // convention (see StripedDisk) is that both accessors always exist, so
  // tools never have to guess whether stats() already includes the device
  // underneath or double-counts it.
  const DiskStats& stats() const override { return inner_->stats(); }
  const DiskStats& inner_stats() const { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

 private:
  BlockDevice* inner_;
  bool armed_ = false;
  bool crashed_ = false;
  uint64_t writes_until_crash_ = std::numeric_limits<uint64_t>::max();
  uint64_t torn_sectors_ = 0;
  uint64_t sectors_until_crash_ = std::numeric_limits<uint64_t>::max();
  bool torn_on_sector_boundary_ = true;
  uint64_t write_requests_seen_ = 0;
  uint64_t sectors_written_seen_ = 0;
};

}  // namespace logfs

#endif  // LOGFS_SRC_DISK_FAULT_DISK_H_
