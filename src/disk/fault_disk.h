// FaultInjectingDisk: decorator that simulates crashes, torn writes, and
// media faults.
//
// Crash-recovery tests schedule a crash after the Nth write request (or the
// Nth written sector); once the crash fires, the write in flight may be torn
// (only a prefix of its sectors reach the medium) and every subsequent
// request fails with kCrashed — the device is "powered off". Remounting the
// file system on the *inner* device models rebooting the machine.
//
// Beyond crashes the decorator models three media-fault classes, each with a
// distinguishable Status so upper layers can react differently:
//
//   persistent (kMediaError)  Sectors marked bad with MarkBadSectors(). Any
//                             request touching one fails atomically (no bytes
//                             transferred) and keeps failing forever —
//                             retrying cannot help.
//   transient (kIoError)      Seeded probabilistic failures from
//                             SetTransientErrorRates(), or a one-shot
//                             FailNthRead()/FailNthWrite(). The fault fires
//                             *before* any bytes transfer, so a retry of the
//                             same request can succeed.
//   silent corruption (kOk)   CorruptSector() XORs a mask into the read
//                             buffer. The read itself reports success with
//                             wrong bytes — only end-to-end checksums above
//                             the device can catch it. The inner medium is
//                             never modified.
//
// Read behavior by mode, pinned by disk_test.cc: after CrashNow() every read
// returns kCrashed; a transient fault returns kIoError once and the retry
// succeeds with correct data; a bad sector returns kMediaError on every
// attempt. Injected faults are checked before the armed-crash write budget,
// and a failed write still counts toward write_requests_seen().
#ifndef LOGFS_SRC_DISK_FAULT_DISK_H_
#define LOGFS_SRC_DISK_FAULT_DISK_H_

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "src/disk/block_device.h"
#include "src/util/rng.h"

namespace logfs {

class FaultInjectingDisk : public BlockDevice {
 public:
  explicit FaultInjectingDisk(BlockDevice* inner) : inner_(inner) {}

  // Crash after `n` more successful write *requests*. The (n+1)-th write
  // writes `torn_sectors` sectors (possibly 0) and then the device dies.
  void CrashAfterWrites(uint64_t n, uint64_t torn_sectors = 0) {
    writes_until_crash_ = n;
    torn_sectors_ = torn_sectors;
    sectors_until_crash_ = std::numeric_limits<uint64_t>::max();
    crashed_ = false;
    armed_ = true;
  }

  // Crash after `n` more written *sectors*. The write request that crosses
  // the boundary is the one interrupted: with `torn` it persists exactly the
  // sectors that fit in the remaining budget (a mid-transfer tear at an
  // arbitrary sector), without it the whole request is dropped (a
  // request-atomic device). A request that lands exactly on the boundary
  // completes; the next write dies.
  void CrashAfterSectors(uint64_t n, bool torn = true) {
    sectors_until_crash_ = n;
    torn_on_sector_boundary_ = torn;
    writes_until_crash_ = std::numeric_limits<uint64_t>::max();
    crashed_ = false;
    armed_ = true;
  }

  // Immediately power off the device.
  void CrashNow() {
    crashed_ = true;
    armed_ = false;
  }

  // Clear the crash state (the "reboot": the data survives, I/O works again).
  // Bad sectors, corruption, and transient rates persist across Reset() —
  // media damage does not heal on reboot.
  void Reset() {
    crashed_ = false;
    armed_ = false;
  }

  // Which operations a bad sector rejects.
  enum class BadSectorMode { kRead, kWrite, kReadWrite };

  // Mark `count` sectors starting at `first` as persistently bad. Requests
  // overlapping a bad sector fail with kMediaError before transferring any
  // bytes; the damage never heals.
  void MarkBadSectors(uint64_t first, uint64_t count,
                      BadSectorMode mode = BadSectorMode::kReadWrite) {
    for (uint64_t i = 0; i < count; ++i) {
      if (mode != BadSectorMode::kWrite) bad_read_sectors_.insert(first + i);
      if (mode != BadSectorMode::kRead) bad_write_sectors_.insert(first + i);
    }
  }
  void ClearBadSectors() {
    bad_read_sectors_.clear();
    bad_write_sectors_.clear();
  }

  // Seeded probabilistic transient faults: each read (write) request fails
  // with kIoError with probability `read_p` (`write_p`), decided before any
  // bytes transfer so a retry of the same request can succeed. Rates of 0
  // disable the mechanism.
  void SetTransientErrorRates(uint64_t seed, double read_p, double write_p) {
    rng_ = Rng(seed);
    transient_read_p_ = read_p;
    transient_write_p_ = write_p;
  }

  // One-shot transient fault: the read (write) request whose zero-based
  // request index equals `n` fails with kIoError. Indices count from device
  // construction — compare against read_requests_seen(). Calls accumulate,
  // so arming several consecutive indices makes that many retries fail.
  void FailNthRead(uint64_t n) { fail_read_requests_.insert(n); }
  void FailNthWrite(uint64_t n) { fail_write_requests_.insert(n); }

  // Silent corruption: reads covering `sector` get `xor_mask` XORed into the
  // byte at `byte_offset` (< kSectorSize) of that sector's data, while the
  // read still reports success. Lazy: the inner medium is untouched, so the
  // same logical flip applies to every future read until cleared.
  void CorruptSector(uint64_t sector, uint32_t byte_offset, uint8_t xor_mask) {
    corrupt_sectors_[sector] = CorruptionSpec{byte_offset % kSectorSize, xor_mask};
  }
  void ClearCorruption() { corrupt_sectors_.clear(); }

  bool crashed() const { return crashed_; }
  uint64_t write_requests_seen() const { return write_requests_seen_; }
  uint64_t read_requests_seen() const { return read_requests_seen_; }
  uint64_t sectors_written_seen() const { return sectors_written_seen_; }
  uint64_t transient_read_errors_injected() const { return transient_read_errors_injected_; }
  uint64_t transient_write_errors_injected() const { return transient_write_errors_injected_; }
  uint64_t media_errors_injected() const { return media_errors_injected_; }
  uint64_t corruptions_applied() const { return corruptions_applied_; }

  Status ReadSectors(uint64_t first, std::span<std::byte> out, IoOptions options = {}) override;
  Status WriteSectors(uint64_t first, std::span<const std::byte> data,
                      IoOptions options = {}) override;
  // Vectored forwarding. Crash and torn budgets apply to the vector's total
  // sector count exactly as they would to the coalesced request; a torn
  // prefix is carved out of the vector at sector granularity, so a tear can
  // land in the middle of any buffer. Bad-sector and transient checks treat
  // the vector as one request; corruption lands in whichever buffer holds
  // the affected sector.
  Status ReadSectorsV(uint64_t first, std::span<const std::span<std::byte>> bufs,
                      IoOptions options = {}) override;
  Status WriteSectorsV(uint64_t first, std::span<const std::span<const std::byte>> bufs,
                       IoOptions options = {}) override;
  Status Flush() override;

  uint64_t sector_count() const override { return inner_->sector_count(); }
  // This decorator keeps no stats of its own, so stats() IS the inner
  // device's view. inner_stats() names that explicitly — the decorator
  // convention (see StripedDisk) is that both accessors always exist, so
  // tools never have to guess whether stats() already includes the device
  // underneath or double-counts it.
  const DiskStats& stats() const override { return inner_->stats(); }
  const DiskStats& inner_stats() const { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

 private:
  struct CorruptionSpec {
    uint32_t byte_offset;
    uint8_t xor_mask;
  };

  bool TouchesBadSector(const std::unordered_set<uint64_t>& bad, uint64_t first,
                        uint64_t sectors) const;
  // Fault gate shared by both read entry points; fires before any transfer.
  Status CheckReadFaults(uint64_t first, uint64_t sectors);
  Status CheckWriteFaults(uint64_t first, uint64_t sectors);
  void ApplyCorruption(uint64_t first, std::span<std::byte> out);
  void ApplyCorruptionV(uint64_t first, std::span<const std::span<std::byte>> bufs);

  BlockDevice* inner_;
  bool armed_ = false;
  bool crashed_ = false;
  uint64_t writes_until_crash_ = std::numeric_limits<uint64_t>::max();
  uint64_t torn_sectors_ = 0;
  uint64_t sectors_until_crash_ = std::numeric_limits<uint64_t>::max();
  bool torn_on_sector_boundary_ = true;
  uint64_t write_requests_seen_ = 0;
  uint64_t read_requests_seen_ = 0;
  uint64_t sectors_written_seen_ = 0;

  std::unordered_set<uint64_t> bad_read_sectors_;
  std::unordered_set<uint64_t> bad_write_sectors_;
  std::unordered_map<uint64_t, CorruptionSpec> corrupt_sectors_;
  Rng rng_{0};
  double transient_read_p_ = 0.0;
  double transient_write_p_ = 0.0;
  std::unordered_set<uint64_t> fail_read_requests_;
  std::unordered_set<uint64_t> fail_write_requests_;
  uint64_t transient_read_errors_injected_ = 0;
  uint64_t transient_write_errors_injected_ = 0;
  uint64_t media_errors_injected_ = 0;
  uint64_t corruptions_applied_ = 0;
};

}  // namespace logfs

#endif  // LOGFS_SRC_DISK_FAULT_DISK_H_
