// ResilientDisk: decorator that retries transient I/O errors.
//
// Real devices report two flavours of failure: transient errors (a retry of
// the identical request can succeed — bus glitches, ECC-recoverable reads)
// and persistent media errors (no retry will ever succeed). This decorator
// implements the bounded-retry half of that contract: kIoError results are
// retried up to RetryPolicy::max_attempts total attempts with exponential
// simulated-time backoff, and an exhausted retry budget is *reclassified* as
// kMediaError so upper layers see one persistent-failure code regardless of
// whether the device said so directly or the retries just never won.
//
// kMediaError and kCrashed pass through immediately (retrying a dead sector
// or a powered-off device is pointless), as does every other error code —
// only kIoError is considered transient.
//
// Metrics: logfs.resilient.retries (re-issued requests), .recovered
// (requests that failed at least once and then succeeded), .exhausted
// (requests reclassified after the budget ran out), .media_errors
// (kMediaError results passed or reclassified upward), .backoff_us
// (cumulative simulated backoff sleep — the per-op latency attribution in
// LfsFileSystem diffs it to isolate the retry-backoff component).
#ifndef LOGFS_SRC_DISK_RESILIENT_DISK_H_
#define LOGFS_SRC_DISK_RESILIENT_DISK_H_

#include <cstdint>

#include "src/disk/block_device.h"
#include "src/sim/sim_clock.h"

namespace logfs {

struct RetryPolicy {
  // Total attempts per request, including the first (must be >= 1).
  uint32_t max_attempts = 4;
  // Simulated seconds to wait before the first retry.
  double initial_backoff_seconds = 0.001;
  // Backoff multiplier applied per further retry.
  double backoff_multiplier = 2.0;
};

class ResilientDisk : public BlockDevice {
 public:
  // `clock` may be null: retries then happen with no simulated delay.
  ResilientDisk(BlockDevice* inner, SimClock* clock = nullptr, RetryPolicy policy = {})
      : inner_(inner), clock_(clock), policy_(policy) {}

  Status ReadSectors(uint64_t first, std::span<std::byte> out, IoOptions options = {}) override;
  Status WriteSectors(uint64_t first, std::span<const std::byte> data,
                      IoOptions options = {}) override;
  Status ReadSectorsV(uint64_t first, std::span<const std::span<std::byte>> bufs,
                      IoOptions options = {}) override;
  Status WriteSectorsV(uint64_t first, std::span<const std::span<const std::byte>> bufs,
                       IoOptions options = {}) override;
  Status Flush() override;

  uint64_t sector_count() const override { return inner_->sector_count(); }
  const DiskStats& stats() const override { return inner_->stats(); }
  const DiskStats& inner_stats() const { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

  const RetryPolicy& policy() const { return policy_; }
  uint64_t retries() const { return retries_; }
  uint64_t recovered() const { return recovered_; }
  uint64_t exhausted() const { return exhausted_; }
  uint64_t media_errors() const { return media_errors_; }
  // Total simulated seconds this decorator spent backing off between
  // retries (counted even when no clock is attached).
  double backoff_seconds() const { return backoff_seconds_; }

 private:
  // Runs `attempt` under the retry policy. `attempt` must be re-issuable
  // verbatim (all our request lambdas are: the fault layer injects errors
  // before transferring bytes, so a failed attempt left no partial state
  // worth preserving).
  template <typename Attempt>
  Status RunWithRetries(Attempt&& attempt);

  BlockDevice* inner_;
  SimClock* clock_;
  RetryPolicy policy_;
  uint64_t retries_ = 0;
  uint64_t recovered_ = 0;
  uint64_t exhausted_ = 0;
  uint64_t media_errors_ = 0;
  double backoff_seconds_ = 0.0;
};

}  // namespace logfs

#endif  // LOGFS_SRC_DISK_RESILIENT_DISK_H_
