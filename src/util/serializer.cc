#include "src/util/serializer.h"

#include <bit>
#include <cstring>

namespace logfs {
namespace {

Status Overflow() { return CorruptedError("serialized structure exceeds buffer"); }

}  // namespace

Status BufferWriter::WriteU8(uint8_t value) {
  if (remaining() < 1) {
    return Overflow();
  }
  buffer_[offset_++] = static_cast<std::byte>(value);
  return OkStatus();
}

Status BufferWriter::WriteU16(uint16_t value) {
  if (remaining() < 2) {
    return Overflow();
  }
  for (int i = 0; i < 2; ++i) {
    buffer_[offset_++] = static_cast<std::byte>((value >> (8 * i)) & 0xFF);
  }
  return OkStatus();
}

Status BufferWriter::WriteU32(uint32_t value) {
  if (remaining() < 4) {
    return Overflow();
  }
  for (int i = 0; i < 4; ++i) {
    buffer_[offset_++] = static_cast<std::byte>((value >> (8 * i)) & 0xFF);
  }
  return OkStatus();
}

Status BufferWriter::WriteU64(uint64_t value) {
  if (remaining() < 8) {
    return Overflow();
  }
  for (int i = 0; i < 8; ++i) {
    buffer_[offset_++] = static_cast<std::byte>((value >> (8 * i)) & 0xFF);
  }
  return OkStatus();
}

Status BufferWriter::WriteI64(int64_t value) { return WriteU64(static_cast<uint64_t>(value)); }

Status BufferWriter::WriteF64(double value) { return WriteU64(std::bit_cast<uint64_t>(value)); }

Status BufferWriter::WriteBytes(std::span<const std::byte> data) {
  if (remaining() < data.size()) {
    return Overflow();
  }
  std::memcpy(buffer_.data() + offset_, data.data(), data.size());
  offset_ += data.size();
  return OkStatus();
}

Status BufferWriter::WriteString(std::string_view s) {
  if (s.size() > UINT16_MAX) {
    return InvalidArgumentError("string too long for u16 length prefix");
  }
  RETURN_IF_ERROR(WriteU16(static_cast<uint16_t>(s.size())));
  return WriteBytes(std::as_bytes(std::span<const char>(s.data(), s.size())));
}

Status BufferWriter::WriteZeros(size_t count) {
  if (remaining() < count) {
    return Overflow();
  }
  std::memset(buffer_.data() + offset_, 0, count);
  offset_ += count;
  return OkStatus();
}

Status BufferWriter::SeekTo(size_t offset) {
  if (offset > buffer_.size()) {
    return Overflow();
  }
  offset_ = offset;
  return OkStatus();
}

Result<uint8_t> BufferReader::ReadU8() {
  if (remaining() < 1) {
    return Overflow();
  }
  return static_cast<uint8_t>(buffer_[offset_++]);
}

Result<uint16_t> BufferReader::ReadU16() {
  if (remaining() < 2) {
    return Overflow();
  }
  uint16_t value = 0;
  for (int i = 0; i < 2; ++i) {
    value = static_cast<uint16_t>(value | (static_cast<uint16_t>(buffer_[offset_++]) << (8 * i)));
  }
  return value;
}

Result<uint32_t> BufferReader::ReadU32() {
  if (remaining() < 4) {
    return Overflow();
  }
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(buffer_[offset_++]) << (8 * i);
  }
  return value;
}

Result<uint64_t> BufferReader::ReadU64() {
  if (remaining() < 8) {
    return Overflow();
  }
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(buffer_[offset_++]) << (8 * i);
  }
  return value;
}

Result<int64_t> BufferReader::ReadI64() {
  ASSIGN_OR_RETURN(uint64_t raw, ReadU64());
  return static_cast<int64_t>(raw);
}

Result<double> BufferReader::ReadF64() {
  ASSIGN_OR_RETURN(uint64_t raw, ReadU64());
  return std::bit_cast<double>(raw);
}

Status BufferReader::ReadBytes(std::span<std::byte> out) {
  if (remaining() < out.size()) {
    return Overflow();
  }
  std::memcpy(out.data(), buffer_.data() + offset_, out.size());
  offset_ += out.size();
  return OkStatus();
}

Result<std::string> BufferReader::ReadString() {
  ASSIGN_OR_RETURN(uint16_t length, ReadU16());
  if (remaining() < length) {
    return Overflow();
  }
  std::string s(reinterpret_cast<const char*>(buffer_.data() + offset_), length);
  offset_ += length;
  return s;
}

Status BufferReader::Skip(size_t count) {
  if (remaining() < count) {
    return Overflow();
  }
  offset_ += count;
  return OkStatus();
}

Status BufferReader::SeekTo(size_t offset) {
  if (offset > buffer_.size()) {
    return Overflow();
  }
  offset_ = offset;
  return OkStatus();
}

}  // namespace logfs
