#include "src/util/status.h"

namespace logfs {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "Ok";
    case ErrorCode::kNotFound:
      return "NotFound";
    case ErrorCode::kExists:
      return "Exists";
    case ErrorCode::kNoSpace:
      return "NoSpace";
    case ErrorCode::kInvalidArgument:
      return "InvalidArgument";
    case ErrorCode::kIoError:
      return "IoError";
    case ErrorCode::kCorrupted:
      return "Corrupted";
    case ErrorCode::kNotDirectory:
      return "NotDirectory";
    case ErrorCode::kIsDirectory:
      return "IsDirectory";
    case ErrorCode::kNotEmpty:
      return "NotEmpty";
    case ErrorCode::kNameTooLong:
      return "NameTooLong";
    case ErrorCode::kTooLarge:
      return "TooLarge";
    case ErrorCode::kReadOnly:
      return "ReadOnly";
    case ErrorCode::kBusy:
      return "Busy";
    case ErrorCode::kCrashed:
      return "Crashed";
    case ErrorCode::kNotSupported:
      return "NotSupported";
    case ErrorCode::kOutOfRange:
      return "OutOfRange";
    case ErrorCode::kMediaError:
      return "MediaError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "Ok";
  }
  std::string result(ErrorCodeName(code_));
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

Status OkStatus() { return Status(); }

namespace {
Status Make(ErrorCode code, std::string_view message) {
  return Status(code, std::string(message));
}
}  // namespace

Status NotFoundError(std::string_view m) { return Make(ErrorCode::kNotFound, m); }
Status ExistsError(std::string_view m) { return Make(ErrorCode::kExists, m); }
Status NoSpaceError(std::string_view m) { return Make(ErrorCode::kNoSpace, m); }
Status InvalidArgumentError(std::string_view m) { return Make(ErrorCode::kInvalidArgument, m); }
Status IoError(std::string_view m) { return Make(ErrorCode::kIoError, m); }
Status CorruptedError(std::string_view m) { return Make(ErrorCode::kCorrupted, m); }
Status NotDirectoryError(std::string_view m) { return Make(ErrorCode::kNotDirectory, m); }
Status IsDirectoryError(std::string_view m) { return Make(ErrorCode::kIsDirectory, m); }
Status NotEmptyError(std::string_view m) { return Make(ErrorCode::kNotEmpty, m); }
Status NameTooLongError(std::string_view m) { return Make(ErrorCode::kNameTooLong, m); }
Status TooLargeError(std::string_view m) { return Make(ErrorCode::kTooLarge, m); }
Status ReadOnlyError(std::string_view m) { return Make(ErrorCode::kReadOnly, m); }
Status BusyError(std::string_view m) { return Make(ErrorCode::kBusy, m); }
Status CrashedError(std::string_view m) { return Make(ErrorCode::kCrashed, m); }
Status NotSupportedError(std::string_view m) { return Make(ErrorCode::kNotSupported, m); }
Status OutOfRangeError(std::string_view m) { return Make(ErrorCode::kOutOfRange, m); }
Status MediaError(std::string_view m) { return Make(ErrorCode::kMediaError, m); }

}  // namespace logfs
