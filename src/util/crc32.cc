#include "src/util/crc32.h"

#include <array>

namespace logfs {
namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;  // Reflected IEEE 802.3.

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPolynomial : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32Init() { return 0xFFFFFFFFu; }

uint32_t Crc32Update(uint32_t state, std::span<const std::byte> data) {
  const auto& table = Table();
  for (std::byte b : data) {
    state = table[(state ^ static_cast<uint32_t>(b)) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

uint32_t Crc32Finalize(uint32_t state) { return state ^ 0xFFFFFFFFu; }

uint32_t Crc32(std::span<const std::byte> data) {
  return Crc32Finalize(Crc32Update(Crc32Init(), data));
}

}  // namespace logfs
