#include "src/util/crc32.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define LOGFS_CRC32_PCLMUL 1
#include <immintrin.h>
#include <wmmintrin.h>
#elif defined(__aarch64__) && defined(__GNUC__)
#define LOGFS_CRC32_ARMV8 1
#include <arm_acle.h>
#if defined(__linux__)
#include <sys/auxv.h>
#endif
#endif

namespace logfs {
namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;  // Reflected IEEE 802.3.

// Slice-by-8 tables: kTables[k][b] is the CRC of byte b followed by k zero
// bytes, so eight table lookups advance the state by eight input bytes.
constexpr std::array<std::array<uint32_t, 256>, 8> BuildTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPolynomial : 0u);
    }
    tables[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    for (int k = 1; k < 8; ++k) {
      tables[k][i] = (tables[k - 1][i] >> 8) ^ tables[0][tables[k - 1][i] & 0xFFu];
    }
  }
  return tables;
}

constexpr std::array<std::array<uint32_t, 256>, 8> kTables = BuildTables();

}  // namespace

uint32_t Crc32Init() { return 0xFFFFFFFFu; }

uint32_t Crc32UpdateBytewise(uint32_t state, std::span<const std::byte> data) {
  const auto& table = kTables[0];
  for (std::byte b : data) {
    state = table[(state ^ static_cast<uint32_t>(b)) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

uint32_t Crc32UpdateSlice8(uint32_t state, std::span<const std::byte> data) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  const std::byte* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    // One unaligned 64-bit load; the state folds into the low word.
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    chunk ^= state;
    state = kTables[7][chunk & 0xFFu] ^ kTables[6][(chunk >> 8) & 0xFFu] ^
            kTables[5][(chunk >> 16) & 0xFFu] ^ kTables[4][(chunk >> 24) & 0xFFu] ^
            kTables[3][(chunk >> 32) & 0xFFu] ^ kTables[2][(chunk >> 40) & 0xFFu] ^
            kTables[1][(chunk >> 48) & 0xFFu] ^ kTables[0][(chunk >> 56) & 0xFFu];
    p += 8;
    n -= 8;
  }
  return Crc32UpdateBytewise(state, data.subspan(data.size() - n));
#else
  // The wide loads above assume little-endian byte order; big-endian hosts
  // take the table[0] kernel.
  return Crc32UpdateBytewise(state, data);
#endif
}

namespace {

using UpdateFn = uint32_t (*)(uint32_t, std::span<const std::byte>);

#if defined(LOGFS_CRC32_PCLMUL)

// Carry-less-multiply folding for the reflected IEEE polynomial, after
// Gopal et al., "Fast CRC Computation for Generic Polynomials Using
// PCLMULQDQ" (Intel, 2009). Folding constants are x^k mod P for the fold
// distances used below; the final Barrett step divides by P once to bring
// 64 bits of remainder down to the 32-bit CRC.
//
//   kFold512  = { x^(512+32) mod P, x^(512-32) mod P }  fold 4 lanes ahead
//   kFold128  = { x^(128+32) mod P, x^(128-32) mod P }  fold 1 lane ahead
//   kFold64   =   x^(64+32)  mod P                      fold 96 -> 64 bits
//   kBarrett  = { P' (full 33-bit poly), mu = floor(x^64 / P) }
//
// Requires len >= 64 and len % 16 == 0; the dispatcher peels head/tail.
__attribute__((target("pclmul,sse4.1"))) uint32_t
UpdatePclmulAligned(uint32_t state, const std::byte* buf, size_t len) {
  alignas(16) static const uint64_t kFold512[2] = {0x0154442bd4, 0x01c6e41596};
  alignas(16) static const uint64_t kFold128[2] = {0x01751997d0, 0x00ccaa009e};
  alignas(16) static const uint64_t kFold64[2] = {0x0163cd6124, 0x0000000000};
  alignas(16) static const uint64_t kBarrett[2] = {0x01db710641, 0x01f7011641};

  const __m128i* p = reinterpret_cast<const __m128i*>(buf);
  __m128i a = _mm_loadu_si128(p + 0);
  __m128i b = _mm_loadu_si128(p + 1);
  __m128i c = _mm_loadu_si128(p + 2);
  __m128i d = _mm_loadu_si128(p + 3);
  a = _mm_xor_si128(a, _mm_cvtsi32_si128(static_cast<int>(state)));
  p += 4;
  len -= 64;

  // Four independent 128-bit lanes, each folded 512 bits forward per step:
  // enough ILP to keep the multiplier busy.
  const __m128i k512 = _mm_load_si128(reinterpret_cast<const __m128i*>(kFold512));
  while (len >= 64) {
    const __m128i la = _mm_clmulepi64_si128(a, k512, 0x00);
    const __m128i lb = _mm_clmulepi64_si128(b, k512, 0x00);
    const __m128i lc = _mm_clmulepi64_si128(c, k512, 0x00);
    const __m128i ld = _mm_clmulepi64_si128(d, k512, 0x00);
    a = _mm_clmulepi64_si128(a, k512, 0x11);
    b = _mm_clmulepi64_si128(b, k512, 0x11);
    c = _mm_clmulepi64_si128(c, k512, 0x11);
    d = _mm_clmulepi64_si128(d, k512, 0x11);
    a = _mm_xor_si128(_mm_xor_si128(a, la), _mm_loadu_si128(p + 0));
    b = _mm_xor_si128(_mm_xor_si128(b, lb), _mm_loadu_si128(p + 1));
    c = _mm_xor_si128(_mm_xor_si128(c, lc), _mm_loadu_si128(p + 2));
    d = _mm_xor_si128(_mm_xor_si128(d, ld), _mm_loadu_si128(p + 3));
    p += 4;
    len -= 64;
  }

  // Collapse the four lanes into one, then fold any 16-byte stragglers.
  const __m128i k128 = _mm_load_si128(reinterpret_cast<const __m128i*>(kFold128));
  __m128i lo = _mm_clmulepi64_si128(a, k128, 0x00);
  a = _mm_clmulepi64_si128(a, k128, 0x11);
  a = _mm_xor_si128(_mm_xor_si128(a, lo), b);
  lo = _mm_clmulepi64_si128(a, k128, 0x00);
  a = _mm_clmulepi64_si128(a, k128, 0x11);
  a = _mm_xor_si128(_mm_xor_si128(a, lo), c);
  lo = _mm_clmulepi64_si128(a, k128, 0x00);
  a = _mm_clmulepi64_si128(a, k128, 0x11);
  a = _mm_xor_si128(_mm_xor_si128(a, lo), d);
  while (len >= 16) {
    lo = _mm_clmulepi64_si128(a, k128, 0x00);
    a = _mm_clmulepi64_si128(a, k128, 0x11);
    a = _mm_xor_si128(_mm_xor_si128(a, lo), _mm_loadu_si128(p));
    ++p;
    len -= 16;
  }

  // 128 -> 64 bits.
  const __m128i mask32 = _mm_setr_epi32(~0, 0, ~0, 0);
  __m128i t = _mm_clmulepi64_si128(a, k128, 0x10);
  a = _mm_srli_si128(a, 8);
  a = _mm_xor_si128(a, t);
  const __m128i k64 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(kFold64));
  t = _mm_srli_si128(a, 4);
  a = _mm_and_si128(a, mask32);
  a = _mm_clmulepi64_si128(a, k64, 0x00);
  a = _mm_xor_si128(a, t);

  // Barrett reduction: q = (a * mu) >> 32, remainder = a ^ q * P'.
  const __m128i barrett = _mm_load_si128(reinterpret_cast<const __m128i*>(kBarrett));
  t = _mm_and_si128(a, mask32);
  t = _mm_clmulepi64_si128(t, barrett, 0x10);
  t = _mm_and_si128(t, mask32);
  t = _mm_clmulepi64_si128(t, barrett, 0x00);
  a = _mm_xor_si128(a, t);
  return static_cast<uint32_t>(_mm_extract_epi32(a, 1));
}

uint32_t UpdatePclmul(uint32_t state, std::span<const std::byte> data) {
  if (data.size() < 64) {
    return Crc32UpdateSlice8(state, data);
  }
  const size_t main = data.size() & ~size_t{15};
  state = UpdatePclmulAligned(state, data.data(), main);
  return Crc32UpdateSlice8(state, data.subspan(main));
}

UpdateFn ResolveHardware() {
  if (__builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1")) {
    return &UpdatePclmul;
  }
  return nullptr;
}
const char* const kHwName = "pclmul";

#elif defined(LOGFS_CRC32_ARMV8)

// The ARMv8 CRC32 extension implements the IEEE polynomial directly
// (__crc32*; the Castagnoli variants are the separate __crc32c* family).
__attribute__((target("+crc"))) uint32_t UpdateArmv8(uint32_t state,
                                                     std::span<const std::byte> data) {
  const std::byte* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    state = __crc32d(state, v);
    p += 8;
    n -= 8;
  }
  if (n >= 4) {
    uint32_t v;
    std::memcpy(&v, p, 4);
    state = __crc32w(state, v);
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    state = __crc32b(state, static_cast<uint8_t>(*p));
    ++p;
    --n;
  }
  return state;
}

UpdateFn ResolveHardware() {
#if defined(__linux__) && defined(HWCAP_CRC32)
  if ((getauxval(AT_HWCAP) & HWCAP_CRC32) != 0) {
    return &UpdateArmv8;
  }
#endif
  return nullptr;
}
const char* const kHwName = "armv8-crc";

#else

UpdateFn ResolveHardware() { return nullptr; }
const char* const kHwName = "slice8";

#endif

struct Dispatch {
  UpdateFn fn;
  bool hardware;
  Dispatch() {
    fn = ResolveHardware();
    hardware = fn != nullptr;
    if (fn == nullptr) {
      fn = &Crc32UpdateSlice8;
    }
  }
};

const Dispatch& GetDispatch() {
  static const Dispatch dispatch;  // Magic-static: detect once, thread-safe.
  return dispatch;
}

}  // namespace

uint32_t Crc32Update(uint32_t state, std::span<const std::byte> data) {
  return GetDispatch().fn(state, data);
}

uint32_t Crc32UpdateHw(uint32_t state, std::span<const std::byte> data) {
  return GetDispatch().fn(state, data);
}

bool Crc32HwAvailable() { return GetDispatch().hardware; }

const char* Crc32Backend() { return GetDispatch().hardware ? kHwName : "slice8"; }

uint32_t Crc32Finalize(uint32_t state) { return state ^ 0xFFFFFFFFu; }

uint32_t Crc32(std::span<const std::byte> data) {
  return Crc32Finalize(Crc32Update(Crc32Init(), data));
}

}  // namespace logfs
