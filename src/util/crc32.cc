#include "src/util/crc32.h"

#include <array>
#include <cstring>

namespace logfs {
namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;  // Reflected IEEE 802.3.

// Slice-by-8 tables: kTables[k][b] is the CRC of byte b followed by k zero
// bytes, so eight table lookups advance the state by eight input bytes.
constexpr std::array<std::array<uint32_t, 256>, 8> BuildTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPolynomial : 0u);
    }
    tables[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    for (int k = 1; k < 8; ++k) {
      tables[k][i] = (tables[k - 1][i] >> 8) ^ tables[0][tables[k - 1][i] & 0xFFu];
    }
  }
  return tables;
}

constexpr std::array<std::array<uint32_t, 256>, 8> kTables = BuildTables();

}  // namespace

uint32_t Crc32Init() { return 0xFFFFFFFFu; }

uint32_t Crc32UpdateBytewise(uint32_t state, std::span<const std::byte> data) {
  const auto& table = kTables[0];
  for (std::byte b : data) {
    state = table[(state ^ static_cast<uint32_t>(b)) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

uint32_t Crc32Update(uint32_t state, std::span<const std::byte> data) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  const std::byte* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    // One unaligned 64-bit load; the state folds into the low word.
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    chunk ^= state;
    state = kTables[7][chunk & 0xFFu] ^ kTables[6][(chunk >> 8) & 0xFFu] ^
            kTables[5][(chunk >> 16) & 0xFFu] ^ kTables[4][(chunk >> 24) & 0xFFu] ^
            kTables[3][(chunk >> 32) & 0xFFu] ^ kTables[2][(chunk >> 40) & 0xFFu] ^
            kTables[1][(chunk >> 48) & 0xFFu] ^ kTables[0][(chunk >> 56) & 0xFFu];
    p += 8;
    n -= 8;
  }
  return Crc32UpdateBytewise(state, data.subspan(data.size() - n));
#else
  // The wide loads above assume little-endian byte order; big-endian hosts
  // take the table[0] kernel.
  return Crc32UpdateBytewise(state, data);
#endif
}

uint32_t Crc32Finalize(uint32_t state) { return state ^ 0xFFFFFFFFu; }

uint32_t Crc32(std::span<const std::byte> data) {
  return Crc32Finalize(Crc32Update(Crc32Init(), data));
}

}  // namespace logfs
