// Result<T>: value-or-Status, the logfs equivalent of std::expected<T, Status>.
#ifndef LOGFS_SRC_UTIL_RESULT_H_
#define LOGFS_SRC_UTIL_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "src/util/status.h"

namespace logfs {

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a value or an error Status keeps call sites
  // terse: `return 42;` or `return NotFoundError("...")`.
  Result(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Result(Status status) : state_(std::in_place_index<1>, std::move(status)) {
    assert(!std::get<1>(state_).ok() && "Result constructed from OK status without a value");
  }

  bool ok() const { return state_.index() == 0; }

  // Status of the result: OkStatus() when a value is held.
  Status status() const { return ok() ? OkStatus() : std::get<1>(state_); }

  const T& value() const& {
    assert(ok());
    return std::get<0>(state_);
  }
  T& value() & {
    assert(ok());
    return std::get<0>(state_);
  }
  T&& value() && {
    assert(ok());
    return std::get<0>(std::move(state_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Value if present, `fallback` otherwise.
  T value_or(T fallback) const {
    return ok() ? std::get<0>(state_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> state_;
};

// ASSIGN_OR_RETURN(lhs, expr): evaluate expr (a Result<T>), propagate the
// error, or bind the value to lhs. `lhs` may include a declaration:
//   ASSIGN_OR_RETURN(auto ino, fs->Lookup(dir, "name"));
#define LOGFS_MACRO_CONCAT_INNER(a, b) a##b
#define LOGFS_MACRO_CONCAT(a, b) LOGFS_MACRO_CONCAT_INNER(a, b)
#define ASSIGN_OR_RETURN(lhs, expr)                            \
  auto LOGFS_MACRO_CONCAT(result_tmp_, __LINE__) = (expr);     \
  if (!LOGFS_MACRO_CONCAT(result_tmp_, __LINE__).ok()) {       \
    return LOGFS_MACRO_CONCAT(result_tmp_, __LINE__).status(); \
  }                                                            \
  lhs = std::move(LOGFS_MACRO_CONCAT(result_tmp_, __LINE__)).value()

}  // namespace logfs

#endif  // LOGFS_SRC_UTIL_RESULT_H_
