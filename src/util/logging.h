// Minimal leveled logging to stderr, compile-time cheap when disabled.
//
// Usage: LOGFS_LOG(kInfo) << "cleaned segment " << seg_id;
// The default threshold is kWarning so tests and benchmarks stay quiet;
// raise it with SetLogThreshold for debugging.
#ifndef LOGFS_SRC_UTIL_LOGGING_H_
#define LOGFS_SRC_UTIL_LOGGING_H_

#include <sstream>

namespace logfs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Global threshold; messages below it are discarded (stream still evaluated
// lazily by the macro's short-circuit).
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

// Internal: emits one formatted line on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

#define LOGFS_LOG(level)                                              \
  if (::logfs::LogLevel::level < ::logfs::GetLogThreshold()) {        \
  } else                                                              \
    ::logfs::LogMessage(::logfs::LogLevel::level, __FILE__, __LINE__).stream()

}  // namespace logfs

#endif  // LOGFS_SRC_UTIL_LOGGING_H_
