// Status: error propagation without exceptions.
//
// Every fallible operation in logfs returns either a Status (for void
// operations) or a Result<T> (see result.h). Error codes are deliberately
// coarse, POSIX-flavoured categories; the message carries the detail.
#ifndef LOGFS_SRC_UTIL_STATUS_H_
#define LOGFS_SRC_UTIL_STATUS_H_

#include <string>
#include <string_view>

namespace logfs {

enum class ErrorCode : int {
  kOk = 0,
  kNotFound,         // File, directory, or object does not exist.
  kExists,           // Object already exists.
  kNoSpace,          // Disk or structure is out of space.
  kInvalidArgument,  // Caller passed a nonsensical argument.
  kIoError,          // Device-level failure.
  kCorrupted,        // On-disk structure failed validation.
  kNotDirectory,     // Path component is not a directory.
  kIsDirectory,      // Operation requires a regular file.
  kNotEmpty,         // Directory not empty.
  kNameTooLong,      // Directory entry name exceeds the format limit.
  kTooLarge,         // File would exceed the maximum representable size.
  kReadOnly,         // File system mounted (or forced) read-only.
  kBusy,             // Object is in use (e.g. open handles, pinned blocks).
  kCrashed,          // Simulated crash: device refuses further I/O.
  kNotSupported,     // Operation not implemented by this file system.
  kOutOfRange,       // Offset or index beyond the valid range.
  kMediaError,       // Persistent media failure: retrying cannot succeed.
};

// Human-readable name for an error code ("NotFound", "NoSpace", ...).
std::string_view ErrorCodeName(ErrorCode code);

// Value-type status. Cheap to copy in the OK case (empty message).
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "NotFound: no such file" or "Ok".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

// Convenience constructors, mirroring absl-style factories.
Status OkStatus();
Status NotFoundError(std::string_view message);
Status ExistsError(std::string_view message);
Status NoSpaceError(std::string_view message);
Status InvalidArgumentError(std::string_view message);
Status IoError(std::string_view message);
Status CorruptedError(std::string_view message);
Status NotDirectoryError(std::string_view message);
Status IsDirectoryError(std::string_view message);
Status NotEmptyError(std::string_view message);
Status NameTooLongError(std::string_view message);
Status TooLargeError(std::string_view message);
Status ReadOnlyError(std::string_view message);
Status BusyError(std::string_view message);
Status CrashedError(std::string_view message);
Status NotSupportedError(std::string_view message);
Status OutOfRangeError(std::string_view message);
Status MediaError(std::string_view message);

// Propagate a non-OK Status to the caller.
#define RETURN_IF_ERROR(expr)                    \
  do {                                           \
    ::logfs::Status status_macro_tmp_ = (expr);  \
    if (!status_macro_tmp_.ok()) {               \
      return status_macro_tmp_;                  \
    }                                            \
  } while (0)

}  // namespace logfs

#endif  // LOGFS_SRC_UTIL_STATUS_H_
