#include "src/util/logging.h"

#include <atomic>
#include <cstdio>

namespace logfs {
namespace {

std::atomic<LogLevel> g_threshold{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogThreshold(LogLevel level) { g_threshold.store(level, std::memory_order_relaxed); }

LogLevel GetLogThreshold() { return g_threshold.load(std::memory_order_relaxed); }

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  // Strip directories for compactness.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace logfs
