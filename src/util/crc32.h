// CRC-32 (IEEE 802.3 polynomial, reflected) used to validate on-disk
// structures: segment summaries, checkpoint regions, superblocks.
//
// Three kernels, one answer:
//   - bytewise: one table lookup per byte; the reference implementation.
//   - slice-by-8: eight table lookups per eight input bytes; the portable
//     fast path.
//   - hardware: carry-less-multiply folding (PCLMULQDQ) on x86-64, or the
//     ARMv8 CRC32 extension (__crc32d) on aarch64. Note the SSE4.2 `crc32`
//     instruction is NOT usable here — it hardwires the Castagnoli
//     polynomial (CRC-32C), not IEEE 802.3.
//
// Crc32Update dispatches to the best kernel the host supports, detected
// once at first use (CPUID on x86-64, HWCAP on aarch64). All kernels share
// the same running-state convention, so chunking a buffer arbitrarily —
// even across kernels — yields the same result as one pass.
#ifndef LOGFS_SRC_UTIL_CRC32_H_
#define LOGFS_SRC_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace logfs {

// One-shot CRC of a buffer.
uint32_t Crc32(std::span<const std::byte> data);

// Incremental interface: Crc32Update(Crc32Init(), a) then more chunks,
// finish with Crc32Finalize. Update routes through the dispatched kernel.
uint32_t Crc32Init();
uint32_t Crc32Update(uint32_t state, std::span<const std::byte> data);
uint32_t Crc32Finalize(uint32_t state);

// The one-table byte-at-a-time kernel. Same results as Crc32Update; kept as
// the reference the other kernels are cross-checked (and benchmarked)
// against.
uint32_t Crc32UpdateBytewise(uint32_t state, std::span<const std::byte> data);

// The portable slice-by-8 kernel, callable directly (benchmarks compare it
// against the hardware kernel; the dispatcher falls back to it).
uint32_t Crc32UpdateSlice8(uint32_t state, std::span<const std::byte> data);

// The hardware kernel via the dispatcher. On hosts without a usable CRC
// feature this is slice-by-8, so it is always safe to call.
uint32_t Crc32UpdateHw(uint32_t state, std::span<const std::byte> data);

// True when a hardware kernel was selected at dispatch time.
bool Crc32HwAvailable();

// Name of the selected kernel: "pclmul", "armv8-crc", or "slice8".
const char* Crc32Backend();

}  // namespace logfs

#endif  // LOGFS_SRC_UTIL_CRC32_H_
