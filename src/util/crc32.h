// CRC-32 (IEEE 802.3 polynomial, reflected) used to validate on-disk
// structures: segment summaries, checkpoint regions, superblocks.
#ifndef LOGFS_SRC_UTIL_CRC32_H_
#define LOGFS_SRC_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace logfs {

// One-shot CRC of a buffer.
uint32_t Crc32(std::span<const std::byte> data);

// Incremental interface: Crc32Update(Crc32Init(), a) then more chunks,
// finish with Crc32Finalize. Update uses a slice-by-8 kernel (eight table
// lookups per eight input bytes); chunking a buffer arbitrarily yields the
// same result as one pass.
uint32_t Crc32Init();
uint32_t Crc32Update(uint32_t state, std::span<const std::byte> data);
uint32_t Crc32Finalize(uint32_t state);

// The one-table byte-at-a-time kernel. Same results as Crc32Update; kept as
// the reference the slice-by-8 kernel is cross-checked (and benchmarked)
// against.
uint32_t Crc32UpdateBytewise(uint32_t state, std::span<const std::byte> data);

}  // namespace logfs

#endif  // LOGFS_SRC_UTIL_CRC32_H_
