// Deterministic PRNG (xoshiro256**) for workload generators and
// property-based tests. Not cryptographic; chosen for reproducibility
// across platforms and standard-library versions (std::mt19937 streams are
// portable too, but this is faster and the code is self-contained).
#ifndef LOGFS_SRC_UTIL_RNG_H_
#define LOGFS_SRC_UTIL_RNG_H_

#include <array>
#include <cstdint>

namespace logfs {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli trial.
  bool NextBool(double probability_true);

  // Exponentially distributed value with the given mean (for inter-arrival
  // times and file lifetimes in synthetic workloads).
  double NextExponential(double mean);

 private:
  std::array<uint64_t, 4> state_;
};

}  // namespace logfs

#endif  // LOGFS_SRC_UTIL_RNG_H_
