// Explicit little-endian serialization for on-disk structures.
//
// All logfs on-disk formats are defined by (de)serialization code rather than
// by memcpy'ing host structs, so the disk image layout is independent of
// compiler padding and host endianness (Fuchsia endian policy: little-endian
// on disk, explicit codecs).
#ifndef LOGFS_SRC_UTIL_SERIALIZER_H_
#define LOGFS_SRC_UTIL_SERIALIZER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "src/util/result.h"
#include "src/util/status.h"

namespace logfs {

// Writes fixed-width little-endian values into a caller-owned buffer.
// Overflow is a programming error in format code, reported via Status so
// corrupted size fields cannot cause out-of-bounds writes.
class BufferWriter {
 public:
  explicit BufferWriter(std::span<std::byte> buffer) : buffer_(buffer) {}

  size_t offset() const { return offset_; }
  size_t remaining() const { return buffer_.size() - offset_; }

  Status WriteU8(uint8_t value);
  Status WriteU16(uint16_t value);
  Status WriteU32(uint32_t value);
  Status WriteU64(uint64_t value);
  Status WriteI64(int64_t value);
  Status WriteF64(double value);
  Status WriteBytes(std::span<const std::byte> data);
  // Writes length-prefixed (u16) string data.
  Status WriteString(std::string_view s);
  // Zero-fill `count` bytes (format padding).
  Status WriteZeros(size_t count);

  // Seek to an absolute offset (used to patch a checksum field after the
  // rest of the structure is serialized).
  Status SeekTo(size_t offset);

 private:
  std::span<std::byte> buffer_;
  size_t offset_ = 0;
};

// Reads fixed-width little-endian values from a buffer; all reads are
// bounds-checked and return kCorrupted on truncation.
class BufferReader {
 public:
  explicit BufferReader(std::span<const std::byte> buffer) : buffer_(buffer) {}

  size_t offset() const { return offset_; }
  size_t remaining() const { return buffer_.size() - offset_; }

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadF64();
  Status ReadBytes(std::span<std::byte> out);
  Result<std::string> ReadString();
  Status Skip(size_t count);
  Status SeekTo(size_t offset);

 private:
  std::span<const std::byte> buffer_;
  size_t offset_ = 0;
};

}  // namespace logfs

#endif  // LOGFS_SRC_UTIL_SERIALIZER_H_
