#include "src/util/rng.h"

#include <cassert>
#include <cmath>

namespace logfs {
namespace {

// SplitMix64, used to expand the seed into xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ull - bound) % bound;
  for (;;) {
    const uint64_t value = Next();
    if (value >= threshold) {
      return value % bound;
    }
  }
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  return lo + NextBelow(hi - lo + 1);
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double probability_true) { return NextDouble() < probability_true; }

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(1.0 - u);
}

}  // namespace logfs
