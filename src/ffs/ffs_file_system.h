// FfsFileSystem: the update-in-place BSD-FFS baseline (the paper's SunOS
// comparator). See ffs_format.h for the disk layout.
//
// Behavioural model (paper Section 3.1 / Figure 1):
//   * creat/unlink/mkdir perform synchronous writes of the affected inode
//     block and directory data block;
//   * file data blocks are allocated at write time but written back later
//     (delayed write) by the shared BufferCache, each to its fixed address;
//   * reads go through the cache; allocation favours the inode's cylinder
//     group and sequential placement, giving good sequential-read layout.
#ifndef LOGFS_SRC_FFS_FFS_FILE_SYSTEM_H_
#define LOGFS_SRC_FFS_FFS_FILE_SYSTEM_H_

#include <memory>
#include <vector>

#include "src/cache/buffer_cache.h"
#include "src/disk/block_device.h"
#include "src/ffs/ffs_format.h"
#include "src/fsbase/file_system.h"
#include "src/fsbase/inode.h"
#include "src/sim/cpu_model.h"
#include "src/sim/sim_clock.h"

namespace logfs {

class FfsFileSystem : public FileSystem, private WritebackHandler {
 public:
  struct Options {
    Options() { cache_policy.capacity_blocks = 1920; }  // 15 MB of 8 KB blocks.
    CachePolicy cache_policy;
  };

  // Writes a fresh file system (superblock, group headers, root directory).
  static Status Format(BlockDevice* device, const FfsParams& params);

  // Mounts a formatted device. `clock` and `cpu` may be null (no timing).
  static Result<std::unique_ptr<FfsFileSystem>> Mount(BlockDevice* device, SimClock* clock,
                                                      CpuModel* cpu, Options options = {});

  ~FfsFileSystem() override;

  // FileSystem:
  Result<InodeNum> Create(InodeNum dir, std::string_view name, FileType type) override;
  Result<InodeNum> Lookup(InodeNum dir, std::string_view name) override;
  Status Unlink(InodeNum dir, std::string_view name) override;
  Status Rmdir(InodeNum dir, std::string_view name) override;
  Status Link(InodeNum dir, std::string_view name, InodeNum target) override;
  Status Rename(InodeNum from_dir, std::string_view from_name, InodeNum to_dir,
                std::string_view to_name) override;
  Result<uint64_t> Read(InodeNum ino, uint64_t offset, std::span<std::byte> out) override;
  Result<uint64_t> Write(InodeNum ino, uint64_t offset, std::span<const std::byte> data) override;
  Status Truncate(InodeNum ino, uint64_t new_size) override;
  Result<FileStat> Stat(InodeNum ino) override;
  Result<std::vector<DirEntry>> ReadDir(InodeNum dir) override;
  Status Sync() override;
  Status Fsync(InodeNum ino) override;
  Status DropCaches() override;
  Status Tick() override;
  std::string name() const override { return "FFS"; }

  // Introspection for tests and benchmarks.
  const FfsSuperblock& superblock() const { return sb_; }
  const CacheStats& cache_stats() const { return cache_.stats(); }
  uint64_t FreeBlockCount() const;
  uint64_t FreeInodeCount() const;

  friend class FfsChecker;

 private:
  struct Group {
    std::vector<uint8_t> inode_bitmap;
    std::vector<uint8_t> block_bitmap;
    uint32_t free_inodes = 0;
    uint32_t free_blocks = 0;
    uint32_t block_count = 0;    // Blocks in this (possibly short, last) group.
    uint32_t alloc_cursor = 0;   // Next-fit rotor for data-block allocation.
    bool dirty = false;
  };

  FfsFileSystem(BlockDevice* device, SimClock* clock, CpuModel* cpu, const FfsSuperblock& sb,
                Options options);

  // --- geometry ---
  uint32_t SectorsPerBlock() const { return sb_.block_size / kSectorSize; }
  uint64_t GroupStartBlock(uint32_t group) const {
    return 1 + static_cast<uint64_t>(group) * sb_.blocks_per_group;
  }
  uint32_t GroupMetaBlocks() const { return 1 + sb_.inode_table_blocks; }
  uint32_t InodesPerBlock() const { return sb_.block_size / kInodeDiskSize; }
  uint32_t GroupOfInode(InodeNum ino) const { return (ino - 1) / sb_.inodes_per_group; }
  uint64_t EntriesPerBlock() const { return sb_.block_size / sizeof(DiskAddr); }
  DiskAddr BlockToAddr(uint64_t block_no) const { return block_no * SectorsPerBlock(); }
  uint64_t AddrToBlock(DiskAddr addr) const { return addr / SectorsPerBlock(); }

  // --- block cache (keyed by physical block number) ---
  Result<CacheRef> GetBlock(uint64_t block_no);
  Result<CacheRef> GetBlockZeroed(uint64_t block_no);
  Status WriteBlockSync(CacheBlock* block);
  void ChargeCpu(uint64_t instructions);

  // --- inode I/O ---
  Result<Inode> GetInode(InodeNum ino);
  Status PutInode(InodeNum ino, const Inode& inode, bool synchronous);
  Result<InodeNum> AllocInode(uint32_t preferred_group, FileType type);
  Status FreeInodeSlot(InodeNum ino);

  // --- block allocation ---
  Result<uint64_t> AllocBlock(uint32_t preferred_group, uint64_t hint_block);
  Status FreeBlock(uint64_t block_no);

  // --- file block mapping ---
  Result<DiskAddr> MapBlockForRead(const Inode& inode, uint64_t index);
  Result<DiskAddr> MapBlockForWrite(InodeNum ino, Inode* inode, uint64_t index,
                                    bool* inode_modified);
  Status FreeBlocksFrom(InodeNum ino, Inode* inode, uint64_t first_index);

  // --- directories ---
  Result<DirEntry> DirFind(InodeNum dir_ino, const Inode& dir, std::string_view name);
  Status DirInsert(InodeNum dir_ino, Inode* dir, InodeNum ino, FileType type,
                   std::string_view name, bool synchronous);
  Status DirRemove(InodeNum dir_ino, Inode* dir, std::string_view name, bool synchronous);
  Status DirReplace(InodeNum dir_ino, Inode* dir, std::string_view name, InodeNum ino,
                    FileType type, bool synchronous);
  Result<bool> DirIsEmpty(InodeNum dir_ino, const Inode& dir);
  // True if `candidate` is `ancestor` or lies beneath it (rename cycle check).
  Result<bool> IsInSubtree(InodeNum candidate, InodeNum ancestor);

  // WritebackHandler: delayed writes, each block to its fixed address.
  Status WriteBack(std::span<CacheBlock* const> blocks) override;

  Status FlushGroupHeaders();

  BlockDevice* device_;
  SimClock* clock_;
  CpuModel* cpu_;
  FfsSuperblock sb_;
  BufferCache cache_;
  std::vector<Group> groups_;
  uint32_t next_dir_group_ = 0;  // Round-robin spread of directories.
};

}  // namespace logfs

#endif  // LOGFS_SRC_FFS_FFS_FILE_SYSTEM_H_
