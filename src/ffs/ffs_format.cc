#include "src/ffs/ffs_format.h"

#include <cstring>

#include "src/util/crc32.h"
#include "src/util/serializer.h"

namespace logfs {
namespace {
// Serialized payload size (excluding the trailing CRC).
constexpr size_t kPayloadSize = 4 + 4 + 8 + 4 + 4 + 4 + 4;
}  // namespace

Status EncodeFfsSuperblock(const FfsSuperblock& sb, std::span<std::byte> block) {
  if (block.size() < kPayloadSize + 4) {
    return InvalidArgumentError("superblock buffer too small");
  }
  std::memset(block.data(), 0, block.size());
  BufferWriter writer(block);
  RETURN_IF_ERROR(writer.WriteU32(sb.magic));
  RETURN_IF_ERROR(writer.WriteU32(sb.block_size));
  RETURN_IF_ERROR(writer.WriteU64(sb.total_blocks));
  RETURN_IF_ERROR(writer.WriteU32(sb.num_groups));
  RETURN_IF_ERROR(writer.WriteU32(sb.blocks_per_group));
  RETURN_IF_ERROR(writer.WriteU32(sb.inodes_per_group));
  RETURN_IF_ERROR(writer.WriteU32(sb.inode_table_blocks));
  const uint32_t crc = Crc32(block.subspan(0, kPayloadSize));
  return writer.WriteU32(crc);
}

Result<FfsSuperblock> DecodeFfsSuperblock(std::span<const std::byte> block) {
  if (block.size() < kPayloadSize + 4) {
    return CorruptedError("superblock truncated");
  }
  BufferReader reader(block);
  FfsSuperblock sb;
  ASSIGN_OR_RETURN(sb.magic, reader.ReadU32());
  if (sb.magic != kFfsMagic) {
    return CorruptedError("bad FFS superblock magic");
  }
  ASSIGN_OR_RETURN(sb.block_size, reader.ReadU32());
  ASSIGN_OR_RETURN(sb.total_blocks, reader.ReadU64());
  ASSIGN_OR_RETURN(sb.num_groups, reader.ReadU32());
  ASSIGN_OR_RETURN(sb.blocks_per_group, reader.ReadU32());
  ASSIGN_OR_RETURN(sb.inodes_per_group, reader.ReadU32());
  ASSIGN_OR_RETURN(sb.inode_table_blocks, reader.ReadU32());
  ASSIGN_OR_RETURN(uint32_t stored_crc, reader.ReadU32());
  if (stored_crc != Crc32(block.subspan(0, kPayloadSize))) {
    return CorruptedError("FFS superblock CRC mismatch");
  }
  return sb;
}

}  // namespace logfs
