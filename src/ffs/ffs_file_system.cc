#include "src/ffs/ffs_file_system.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/fsbase/dirent.h"
#include "src/util/logging.h"

namespace logfs {
namespace {

// Cache object id shared by every FFS block: FFS blocks have fixed physical
// addresses, so they are cached by physical block number.
constexpr uint64_t kPhysObject = 1;

bool TestBit(const std::vector<uint8_t>& bitmap, uint64_t bit) {
  return (bitmap[bit / 8] >> (bit % 8)) & 1u;
}

void SetBit(std::vector<uint8_t>& bitmap, uint64_t bit) {
  bitmap[bit / 8] = static_cast<uint8_t>(bitmap[bit / 8] | (1u << (bit % 8)));
}

void ClearBit(std::vector<uint8_t>& bitmap, uint64_t bit) {
  bitmap[bit / 8] = static_cast<uint8_t>(bitmap[bit / 8] & ~(1u << (bit % 8)));
}

Status ValidateParams(const FfsParams& params) {
  if (params.block_size < 4096 || params.block_size > 65536 ||
      params.block_size % kSectorSize != 0) {
    return InvalidArgumentError("FFS block size must be 4K-64K and sector aligned");
  }
  if (params.inodes_per_group % 8 != 0 || params.blocks_per_group % 8 != 0) {
    return InvalidArgumentError("FFS group sizes must be multiples of 8");
  }
  if ((params.inodes_per_group * kInodeDiskSize) % params.block_size != 0) {
    return InvalidArgumentError("FFS inode table must fill whole blocks");
  }
  const uint32_t table_blocks = params.inodes_per_group * kInodeDiskSize / params.block_size;
  if (1 + table_blocks + 8 > params.blocks_per_group) {
    return InvalidArgumentError("FFS group too small for its metadata");
  }
  if (params.inodes_per_group / 8 + params.blocks_per_group / 8 > params.block_size) {
    return InvalidArgumentError("FFS bitmaps do not fit in the group header block");
  }
  return OkStatus();
}

}  // namespace

// --- Format -----------------------------------------------------------------

Status FfsFileSystem::Format(BlockDevice* device, const FfsParams& params) {
  RETURN_IF_ERROR(ValidateParams(params));
  const uint32_t spb = params.block_size / kSectorSize;
  const uint64_t total_blocks = device->sector_count() / spb;
  if (total_blocks < 1 + params.blocks_per_group) {
    return InvalidArgumentError("device too small for one FFS group");
  }
  const uint32_t table_blocks = params.inodes_per_group * kInodeDiskSize / params.block_size;
  const uint32_t meta_blocks = 1 + table_blocks;
  // Only full-enough trailing groups are used.
  uint32_t num_groups = 0;
  for (uint64_t start = 1; start + meta_blocks + 8 <= total_blocks;
       start += params.blocks_per_group) {
    ++num_groups;
  }
  if (num_groups == 0) {
    return InvalidArgumentError("device too small for one FFS group");
  }

  FfsSuperblock sb;
  sb.block_size = params.block_size;
  sb.total_blocks = total_blocks;
  sb.num_groups = num_groups;
  sb.blocks_per_group = params.blocks_per_group;
  sb.inodes_per_group = params.inodes_per_group;
  sb.inode_table_blocks = table_blocks;

  std::vector<std::byte> block(params.block_size);
  RETURN_IF_ERROR(EncodeFfsSuperblock(sb, block));
  RETURN_IF_ERROR(device->WriteSectors(0, block));

  // Group headers: bitmaps with metadata blocks (and, in the last group,
  // nonexistent blocks) marked in use.
  for (uint32_t g = 0; g < num_groups; ++g) {
    const uint64_t start = 1 + static_cast<uint64_t>(g) * params.blocks_per_group;
    const uint32_t group_blocks = static_cast<uint32_t>(
        std::min<uint64_t>(params.blocks_per_group, total_blocks - start));
    std::vector<uint8_t> inode_bitmap(params.inodes_per_group / 8, 0);
    std::vector<uint8_t> block_bitmap(params.blocks_per_group / 8, 0);
    for (uint32_t b = 0; b < meta_blocks; ++b) {
      SetBit(block_bitmap, b);
    }
    for (uint32_t b = group_blocks; b < params.blocks_per_group; ++b) {
      SetBit(block_bitmap, b);
    }
    if (g == 0) {
      SetBit(inode_bitmap, 0);                // Root inode.
      SetBit(block_bitmap, meta_blocks);      // Root directory data block.
    }
    std::memset(block.data(), 0, block.size());
    std::memcpy(block.data(), inode_bitmap.data(), inode_bitmap.size());
    std::memcpy(block.data() + inode_bitmap.size(), block_bitmap.data(), block_bitmap.size());
    RETURN_IF_ERROR(device->WriteSectors(start * spb, block));
  }

  // Root directory: inode 1 in group 0 slot 0; one data block with "." "..".
  const uint64_t root_data_block = 1 + meta_blocks;
  std::memset(block.data(), 0, block.size());
  DirBlockView view(block);
  RETURN_IF_ERROR(view.InitEmpty());
  RETURN_IF_ERROR(view.Insert(kRootIno, FileType::kDirectory, "."));
  RETURN_IF_ERROR(view.Insert(kRootIno, FileType::kDirectory, ".."));
  RETURN_IF_ERROR(device->WriteSectors(root_data_block * spb, block));

  Inode root;
  root.type = FileType::kDirectory;
  root.nlink = 2;
  root.size = params.block_size;
  root.generation = 1;
  root.direct[0] = root_data_block * spb;
  std::memset(block.data(), 0, block.size());
  RETURN_IF_ERROR(EncodeInode(root, std::span<std::byte>(block).subspan(0, kInodeDiskSize)));
  RETURN_IF_ERROR(device->WriteSectors((1 + 1) * spb, block));  // Group 0 table block 0.
  return device->Flush();
}

// --- Mount ------------------------------------------------------------------

FfsFileSystem::FfsFileSystem(BlockDevice* device, SimClock* clock, CpuModel* cpu,
                             const FfsSuperblock& sb, Options options)
    : device_(device),
      clock_(clock),
      cpu_(cpu),
      sb_(sb),
      cache_(sb.block_size, options.cache_policy, clock) {
  cache_.set_writeback_handler(this);
}

FfsFileSystem::~FfsFileSystem() {
  // Best-effort flush; errors are ignored at destruction (a crashed device
  // stays crashed).
  (void)Sync();
}

Result<std::unique_ptr<FfsFileSystem>> FfsFileSystem::Mount(BlockDevice* device, SimClock* clock,
                                                            CpuModel* cpu, Options options) {
  std::vector<std::byte> block(65536);
  // Read the superblock with a minimal 4 KB guess, then re-read full size.
  block.resize(4096);
  RETURN_IF_ERROR(device->ReadSectors(0, block));
  ASSIGN_OR_RETURN(FfsSuperblock sb, DecodeFfsSuperblock(block));
  auto fs = std::unique_ptr<FfsFileSystem>(new FfsFileSystem(device, clock, cpu, sb, options));

  // Rebuild per-group bitmaps and free counts from the group headers.
  const uint32_t spb = fs->SectorsPerBlock();
  block.resize(sb.block_size);
  fs->groups_.resize(sb.num_groups);
  for (uint32_t g = 0; g < sb.num_groups; ++g) {
    Group& group = fs->groups_[g];
    const uint64_t start = fs->GroupStartBlock(g);
    RETURN_IF_ERROR(device->ReadSectors(start * spb, block));
    group.inode_bitmap.assign(sb.inodes_per_group / 8, 0);
    group.block_bitmap.assign(sb.blocks_per_group / 8, 0);
    std::memcpy(group.inode_bitmap.data(), block.data(), group.inode_bitmap.size());
    std::memcpy(group.block_bitmap.data(), block.data() + group.inode_bitmap.size(),
                group.block_bitmap.size());
    group.block_count = static_cast<uint32_t>(
        std::min<uint64_t>(sb.blocks_per_group, sb.total_blocks - start));
    group.free_inodes = 0;
    for (uint32_t i = 0; i < sb.inodes_per_group; ++i) {
      if (!TestBit(group.inode_bitmap, i)) {
        ++group.free_inodes;
      }
    }
    group.free_blocks = 0;
    for (uint32_t b = 0; b < group.block_count; ++b) {
      if (!TestBit(group.block_bitmap, b)) {
        ++group.free_blocks;
      }
    }
  }
  return fs;
}

// --- Cache plumbing ----------------------------------------------------------

void FfsFileSystem::ChargeCpu(uint64_t instructions) {
  if (cpu_ != nullptr) {
    cpu_->ChargeTracked(instructions);
  }
}

Result<CacheRef> FfsFileSystem::GetBlock(uint64_t block_no) {
  return cache_.Acquire(BlockKey{kPhysObject, block_no}, [&](std::span<std::byte> out) {
    return device_->ReadSectors(block_no * SectorsPerBlock(), out);
  });
}

Result<CacheRef> FfsFileSystem::GetBlockZeroed(uint64_t block_no) {
  return cache_.Create(BlockKey{kPhysObject, block_no});
}

Status FfsFileSystem::WriteBlockSync(CacheBlock* block) {
  RETURN_IF_ERROR(device_->WriteSectors(block->key().index * SectorsPerBlock(), block->data(),
                                        IoOptions{.synchronous = true}));
  cache_.MarkClean(block);
  return OkStatus();
}

Status FfsFileSystem::WriteBack(std::span<CacheBlock* const> blocks) {
  // Delayed writes: each block goes to its fixed address. The cache hands
  // the batch over sorted by block number, so the schedule is an elevator
  // pass — but the addresses themselves are scattered, which is exactly the
  // FFS behaviour the paper contrasts with LFS.
  for (CacheBlock* block : blocks) {
    RETURN_IF_ERROR(
        device_->WriteSectors(block->key().index * SectorsPerBlock(), block->data()));
  }
  return OkStatus();
}

// --- Inode I/O ---------------------------------------------------------------

Result<Inode> FfsFileSystem::GetInode(InodeNum ino) {
  if (ino == kInvalidIno || ino > sb_.num_groups * sb_.inodes_per_group) {
    return InvalidArgumentError("inode number out of range");
  }
  const uint32_t group = GroupOfInode(ino);
  const uint32_t index = (ino - 1) % sb_.inodes_per_group;
  if (!TestBit(groups_[group].inode_bitmap, index)) {
    return NotFoundError("inode not allocated");
  }
  const uint64_t table_block = GroupStartBlock(group) + 1 + index / InodesPerBlock();
  ASSIGN_OR_RETURN(CacheRef ref, GetBlock(table_block));
  const size_t slot = (index % InodesPerBlock()) * kInodeDiskSize;
  return DecodeInode(ref->data().subspan(slot, kInodeDiskSize));
}

Status FfsFileSystem::PutInode(InodeNum ino, const Inode& inode, bool synchronous) {
  const uint32_t group = GroupOfInode(ino);
  const uint32_t index = (ino - 1) % sb_.inodes_per_group;
  const uint64_t table_block = GroupStartBlock(group) + 1 + index / InodesPerBlock();
  ASSIGN_OR_RETURN(CacheRef ref, GetBlock(table_block));
  const size_t slot = (index % InodesPerBlock()) * kInodeDiskSize;
  RETURN_IF_ERROR(EncodeInode(inode, ref->mutable_data().subspan(slot, kInodeDiskSize)));
  if (synchronous) {
    return WriteBlockSync(ref.get());
  }
  cache_.MarkDirty(ref.get());
  return OkStatus();
}

Result<InodeNum> FfsFileSystem::AllocInode(uint32_t preferred_group, FileType /*type*/) {
  for (uint32_t attempt = 0; attempt < sb_.num_groups; ++attempt) {
    const uint32_t g = (preferred_group + attempt) % sb_.num_groups;
    Group& group = groups_[g];
    if (group.free_inodes == 0) {
      continue;
    }
    for (uint32_t i = 0; i < sb_.inodes_per_group; ++i) {
      if (!TestBit(group.inode_bitmap, i)) {
        SetBit(group.inode_bitmap, i);
        --group.free_inodes;
        group.dirty = true;
        return static_cast<InodeNum>(g * sb_.inodes_per_group + i + 1);
      }
    }
  }
  return NoSpaceError("out of inodes");
}

Status FfsFileSystem::FreeInodeSlot(InodeNum ino) {
  const uint32_t group = GroupOfInode(ino);
  const uint32_t index = (ino - 1) % sb_.inodes_per_group;
  if (!TestBit(groups_[group].inode_bitmap, index)) {
    return CorruptedError("double free of inode");
  }
  ClearBit(groups_[group].inode_bitmap, index);
  ++groups_[group].free_inodes;
  groups_[group].dirty = true;
  // Zero the on-disk slot synchronously: deletion in BSD FFS is a
  // synchronous metadata update (paper Section 3.1).
  const uint64_t table_block = GroupStartBlock(group) + 1 + index / InodesPerBlock();
  ASSIGN_OR_RETURN(CacheRef ref, GetBlock(table_block));
  const size_t slot = (index % InodesPerBlock()) * kInodeDiskSize;
  std::memset(ref->mutable_data().data() + slot, 0, kInodeDiskSize);
  return WriteBlockSync(ref.get());
}

// --- Block allocation --------------------------------------------------------

Result<uint64_t> FfsFileSystem::AllocBlock(uint32_t preferred_group, uint64_t hint_block) {
  // File contiguity: try the block immediately after the hint first.
  if (hint_block != 0) {
    const uint64_t next = hint_block + 1;
    if (next > 0 && next < sb_.total_blocks) {
      const uint64_t rel_start = GroupStartBlock(0);
      if (next >= rel_start) {
        const uint32_t g = static_cast<uint32_t>((next - 1) / sb_.blocks_per_group);
        if (g < sb_.num_groups) {
          Group& group = groups_[g];
          const uint32_t rel = static_cast<uint32_t>(next - GroupStartBlock(g));
          if (rel >= GroupMetaBlocks() && rel < group.block_count &&
              !TestBit(group.block_bitmap, rel)) {
            SetBit(group.block_bitmap, rel);
            --group.free_blocks;
            group.dirty = true;
            return next;
          }
        }
      }
    }
  }
  // Next-fit within the preferred group (rotating cursor), then the other
  // groups in order.
  for (uint32_t attempt = 0; attempt < sb_.num_groups; ++attempt) {
    const uint32_t g = (preferred_group + attempt) % sb_.num_groups;
    Group& group = groups_[g];
    if (group.free_blocks == 0) {
      continue;
    }
    const uint32_t begin = GroupMetaBlocks();
    const uint32_t span = group.block_count - begin;
    for (uint32_t step = 0; step < span; ++step) {
      const uint32_t rel = begin + (group.alloc_cursor + step) % span;
      if (!TestBit(group.block_bitmap, rel)) {
        SetBit(group.block_bitmap, rel);
        --group.free_blocks;
        group.dirty = true;
        group.alloc_cursor = (rel - begin + 1) % span;
        return GroupStartBlock(g) + rel;
      }
    }
  }
  return NoSpaceError("out of data blocks");
}

Status FfsFileSystem::FreeBlock(uint64_t block_no) {
  const uint32_t g = static_cast<uint32_t>((block_no - 1) / sb_.blocks_per_group);
  if (g >= sb_.num_groups) {
    return CorruptedError("freeing block outside any group");
  }
  Group& group = groups_[g];
  const uint32_t rel = static_cast<uint32_t>(block_no - GroupStartBlock(g));
  if (rel < GroupMetaBlocks() || rel >= group.block_count) {
    return CorruptedError("freeing metadata or out-of-range block");
  }
  if (!TestBit(group.block_bitmap, rel)) {
    return CorruptedError("double free of block");
  }
  ClearBit(group.block_bitmap, rel);
  ++group.free_blocks;
  group.dirty = true;
  cache_.InvalidateBlock(BlockKey{kPhysObject, block_no});
  return OkStatus();
}

uint64_t FfsFileSystem::FreeBlockCount() const {
  uint64_t total = 0;
  for (const Group& group : groups_) {
    total += group.free_blocks;
  }
  return total;
}

uint64_t FfsFileSystem::FreeInodeCount() const {
  uint64_t total = 0;
  for (const Group& group : groups_) {
    total += group.free_inodes;
  }
  return total;
}

// --- File block mapping ------------------------------------------------------

Result<DiskAddr> FfsFileSystem::MapBlockForRead(const Inode& inode, uint64_t index) {
  ASSIGN_OR_RETURN(BlockLocation loc, ResolveBlockIndex(index, EntriesPerBlock()));
  switch (loc.level) {
    case BlockLocation::Level::kDirect:
      return inode.direct[loc.direct_index];
    case BlockLocation::Level::kSingleIndirect: {
      if (inode.single_indirect == kNoAddr) {
        return kNoAddr;
      }
      ASSIGN_OR_RETURN(CacheRef ref, GetBlock(AddrToBlock(inode.single_indirect)));
      return ReadIndirectEntry(ref->data(), loc.l1_index);
    }
    case BlockLocation::Level::kDoubleIndirect: {
      if (inode.double_indirect == kNoAddr) {
        return kNoAddr;
      }
      ASSIGN_OR_RETURN(CacheRef l1, GetBlock(AddrToBlock(inode.double_indirect)));
      const DiskAddr l2_addr = ReadIndirectEntry(l1->data(), loc.l1_index);
      if (l2_addr == kNoAddr) {
        return kNoAddr;
      }
      ASSIGN_OR_RETURN(CacheRef l2, GetBlock(AddrToBlock(l2_addr)));
      return ReadIndirectEntry(l2->data(), loc.l2_index);
    }
  }
  return CorruptedError("unreachable block level");
}

Result<DiskAddr> FfsFileSystem::MapBlockForWrite(InodeNum ino, Inode* inode, uint64_t index,
                                                 bool* inode_modified) {
  const uint32_t group = GroupOfInode(ino);
  ASSIGN_OR_RETURN(BlockLocation loc, ResolveBlockIndex(index, EntriesPerBlock()));
  // Contiguity hint: the physical block of the previous file block, when it
  // is cheap to find (direct range).
  uint64_t hint = 0;
  if (loc.level == BlockLocation::Level::kDirect && loc.direct_index > 0 &&
      inode->direct[loc.direct_index - 1] != kNoAddr) {
    hint = AddrToBlock(inode->direct[loc.direct_index - 1]);
  }
  switch (loc.level) {
    case BlockLocation::Level::kDirect: {
      if (inode->direct[loc.direct_index] == kNoAddr) {
        ASSIGN_OR_RETURN(uint64_t block_no, AllocBlock(group, hint));
        inode->direct[loc.direct_index] = BlockToAddr(block_no);
        *inode_modified = true;
      }
      return inode->direct[loc.direct_index];
    }
    case BlockLocation::Level::kSingleIndirect: {
      if (inode->single_indirect == kNoAddr) {
        ASSIGN_OR_RETURN(uint64_t ind_no, AllocBlock(group, 0));
        inode->single_indirect = BlockToAddr(ind_no);
        *inode_modified = true;
        ASSIGN_OR_RETURN(CacheRef fresh, GetBlockZeroed(ind_no));
        cache_.MarkDirty(fresh.get());
      }
      ASSIGN_OR_RETURN(CacheRef ref, GetBlock(AddrToBlock(inode->single_indirect)));
      DiskAddr addr = ReadIndirectEntry(ref->data(), loc.l1_index);
      if (addr == kNoAddr) {
        ASSIGN_OR_RETURN(uint64_t block_no, AllocBlock(group, 0));
        addr = BlockToAddr(block_no);
        WriteIndirectEntry(ref->mutable_data(), loc.l1_index, addr);
        cache_.MarkDirty(ref.get());
      }
      return addr;
    }
    case BlockLocation::Level::kDoubleIndirect: {
      if (inode->double_indirect == kNoAddr) {
        ASSIGN_OR_RETURN(uint64_t ind_no, AllocBlock(group, 0));
        inode->double_indirect = BlockToAddr(ind_no);
        *inode_modified = true;
        ASSIGN_OR_RETURN(CacheRef fresh, GetBlockZeroed(ind_no));
        cache_.MarkDirty(fresh.get());
      }
      ASSIGN_OR_RETURN(CacheRef l1, GetBlock(AddrToBlock(inode->double_indirect)));
      DiskAddr l2_addr = ReadIndirectEntry(l1->data(), loc.l1_index);
      if (l2_addr == kNoAddr) {
        ASSIGN_OR_RETURN(uint64_t block_no, AllocBlock(group, 0));
        l2_addr = BlockToAddr(block_no);
        WriteIndirectEntry(l1->mutable_data(), loc.l1_index, l2_addr);
        cache_.MarkDirty(l1.get());
        ASSIGN_OR_RETURN(CacheRef fresh, GetBlockZeroed(block_no));
        cache_.MarkDirty(fresh.get());
      }
      ASSIGN_OR_RETURN(CacheRef l2, GetBlock(AddrToBlock(l2_addr)));
      DiskAddr addr = ReadIndirectEntry(l2->data(), loc.l2_index);
      if (addr == kNoAddr) {
        ASSIGN_OR_RETURN(uint64_t block_no, AllocBlock(group, 0));
        addr = BlockToAddr(block_no);
        WriteIndirectEntry(l2->mutable_data(), loc.l2_index, addr);
        cache_.MarkDirty(l2.get());
      }
      return addr;
    }
  }
  return CorruptedError("unreachable block level");
}

Status FfsFileSystem::FreeBlocksFrom(InodeNum /*ino*/, Inode* inode, uint64_t first_index) {
  const uint64_t epb = EntriesPerBlock();
  // Direct blocks.
  for (uint64_t i = first_index; i < kNumDirect; ++i) {
    if (inode->direct[i] != kNoAddr) {
      RETURN_IF_ERROR(FreeBlock(AddrToBlock(inode->direct[i])));
      inode->direct[i] = kNoAddr;
    }
  }
  // Single indirect.
  if (inode->single_indirect != kNoAddr) {
    const uint64_t base = kNumDirect;
    if (first_index < base + epb) {
      const uint64_t from = first_index > base ? first_index - base : 0;
      ASSIGN_OR_RETURN(CacheRef ref, GetBlock(AddrToBlock(inode->single_indirect)));
      for (uint64_t i = from; i < epb; ++i) {
        const DiskAddr addr = ReadIndirectEntry(ref->data(), i);
        if (addr != kNoAddr) {
          RETURN_IF_ERROR(FreeBlock(AddrToBlock(addr)));
          WriteIndirectEntry(ref->mutable_data(), i, kNoAddr);
          cache_.MarkDirty(ref.get());
        }
      }
      if (from == 0) {
        ref.Release();
        RETURN_IF_ERROR(FreeBlock(AddrToBlock(inode->single_indirect)));
        inode->single_indirect = kNoAddr;
      }
    }
  }
  // Double indirect.
  if (inode->double_indirect != kNoAddr) {
    const uint64_t base = kNumDirect + epb;
    ASSIGN_OR_RETURN(CacheRef l1, GetBlock(AddrToBlock(inode->double_indirect)));
    bool l1_all_free = true;
    for (uint64_t j = 0; j < epb; ++j) {
      const DiskAddr l2_addr = ReadIndirectEntry(l1->data(), j);
      if (l2_addr == kNoAddr) {
        continue;
      }
      const uint64_t l2_base = base + j * epb;
      if (first_index >= l2_base + epb) {
        l1_all_free = false;
        continue;  // Entirely kept.
      }
      const uint64_t from = first_index > l2_base ? first_index - l2_base : 0;
      ASSIGN_OR_RETURN(CacheRef l2, GetBlock(AddrToBlock(l2_addr)));
      for (uint64_t i = from; i < epb; ++i) {
        const DiskAddr addr = ReadIndirectEntry(l2->data(), i);
        if (addr != kNoAddr) {
          RETURN_IF_ERROR(FreeBlock(AddrToBlock(addr)));
          WriteIndirectEntry(l2->mutable_data(), i, kNoAddr);
          cache_.MarkDirty(l2.get());
        }
      }
      if (from == 0) {
        l2.Release();
        RETURN_IF_ERROR(FreeBlock(AddrToBlock(l2_addr)));
        WriteIndirectEntry(l1->mutable_data(), j, kNoAddr);
        cache_.MarkDirty(l1.get());
      } else {
        l1_all_free = false;
      }
    }
    if (l1_all_free && first_index <= base) {
      l1.Release();
      RETURN_IF_ERROR(FreeBlock(AddrToBlock(inode->double_indirect)));
      inode->double_indirect = kNoAddr;
    }
  }
  return OkStatus();
}

// --- Directory helpers -------------------------------------------------------

Result<DirEntry> FfsFileSystem::DirFind(InodeNum /*dir_ino*/, const Inode& dir,
                                        std::string_view name) {
  const uint64_t blocks = dir.size / sb_.block_size;
  for (uint64_t b = 0; b < blocks; ++b) {
    ASSIGN_OR_RETURN(DiskAddr addr, MapBlockForRead(dir, b));
    if (addr == kNoAddr) {
      continue;
    }
    ASSIGN_OR_RETURN(CacheRef ref, GetBlock(AddrToBlock(addr)));
    DirBlockView view(ref->mutable_data());
    Result<DirEntry> entry = view.Find(name);
    if (entry.ok()) {
      return entry;
    }
    if (entry.status().code() != ErrorCode::kNotFound) {
      return entry;
    }
  }
  return NotFoundError(name);
}

Status FfsFileSystem::DirInsert(InodeNum dir_ino, Inode* dir, InodeNum ino, FileType type,
                                std::string_view name, bool synchronous) {
  const uint64_t blocks = dir->size / sb_.block_size;
  for (uint64_t b = 0; b < blocks; ++b) {
    ASSIGN_OR_RETURN(DiskAddr addr, MapBlockForRead(*dir, b));
    if (addr == kNoAddr) {
      continue;
    }
    ASSIGN_OR_RETURN(CacheRef ref, GetBlock(AddrToBlock(addr)));
    DirBlockView view(ref->mutable_data());
    Status inserted = view.Insert(ino, type, name);
    if (inserted.ok()) {
      if (synchronous) {
        return WriteBlockSync(ref.get());
      }
      cache_.MarkDirty(ref.get());
      return OkStatus();
    }
    if (inserted.code() != ErrorCode::kNoSpace) {
      return inserted;
    }
  }
  // Extend the directory with a fresh block.
  bool inode_modified = false;
  ASSIGN_OR_RETURN(DiskAddr addr, MapBlockForWrite(dir_ino, dir, blocks, &inode_modified));
  ASSIGN_OR_RETURN(CacheRef ref, GetBlockZeroed(AddrToBlock(addr)));
  DirBlockView view(ref->mutable_data());
  RETURN_IF_ERROR(view.InitEmpty());
  RETURN_IF_ERROR(view.Insert(ino, type, name));
  dir->size += sb_.block_size;
  if (synchronous) {
    return WriteBlockSync(ref.get());
  }
  cache_.MarkDirty(ref.get());
  return OkStatus();
}

Status FfsFileSystem::DirRemove(InodeNum /*dir_ino*/, Inode* dir, std::string_view name,
                                bool synchronous) {
  const uint64_t blocks = dir->size / sb_.block_size;
  for (uint64_t b = 0; b < blocks; ++b) {
    ASSIGN_OR_RETURN(DiskAddr addr, MapBlockForRead(*dir, b));
    if (addr == kNoAddr) {
      continue;
    }
    ASSIGN_OR_RETURN(CacheRef ref, GetBlock(AddrToBlock(addr)));
    DirBlockView view(ref->mutable_data());
    Status removed = view.Remove(name);
    if (removed.ok()) {
      if (synchronous) {
        return WriteBlockSync(ref.get());
      }
      cache_.MarkDirty(ref.get());
      return OkStatus();
    }
    if (removed.code() != ErrorCode::kNotFound) {
      return removed;
    }
  }
  return NotFoundError(name);
}

Status FfsFileSystem::DirReplace(InodeNum /*dir_ino*/, Inode* dir, std::string_view name,
                                 InodeNum ino, FileType type, bool synchronous) {
  const uint64_t blocks = dir->size / sb_.block_size;
  for (uint64_t b = 0; b < blocks; ++b) {
    ASSIGN_OR_RETURN(DiskAddr addr, MapBlockForRead(*dir, b));
    if (addr == kNoAddr) {
      continue;
    }
    ASSIGN_OR_RETURN(CacheRef ref, GetBlock(AddrToBlock(addr)));
    DirBlockView view(ref->mutable_data());
    Status set = view.SetInode(name, ino, type);
    if (set.ok()) {
      if (synchronous) {
        return WriteBlockSync(ref.get());
      }
      cache_.MarkDirty(ref.get());
      return OkStatus();
    }
    if (set.code() != ErrorCode::kNotFound) {
      return set;
    }
  }
  return NotFoundError(name);
}

Result<bool> FfsFileSystem::DirIsEmpty(InodeNum /*dir_ino*/, const Inode& dir) {
  const uint64_t blocks = dir.size / sb_.block_size;
  for (uint64_t b = 0; b < blocks; ++b) {
    ASSIGN_OR_RETURN(DiskAddr addr, MapBlockForRead(dir, b));
    if (addr == kNoAddr) {
      continue;
    }
    ASSIGN_OR_RETURN(CacheRef ref, GetBlock(AddrToBlock(addr)));
    DirBlockView view(ref->mutable_data());
    ASSIGN_OR_RETURN(auto entries, view.List());
    for (const DirEntry& entry : entries) {
      if (entry.name != "." && entry.name != "..") {
        return false;
      }
    }
  }
  return true;
}

Result<bool> FfsFileSystem::IsInSubtree(InodeNum candidate, InodeNum ancestor) {
  InodeNum current = candidate;
  for (int depth = 0; depth < 4096; ++depth) {
    if (current == ancestor) {
      return true;
    }
    if (current == kRootIno) {
      return false;
    }
    ASSIGN_OR_RETURN(Inode inode, GetInode(current));
    ASSIGN_OR_RETURN(DirEntry parent, DirFind(current, inode, ".."));
    current = parent.ino;
  }
  return CorruptedError("directory tree too deep or cyclic");
}

// --- FileSystem interface ----------------------------------------------------

Result<InodeNum> FfsFileSystem::Create(InodeNum dir, std::string_view name, FileType type) {
  if (type != FileType::kRegular && type != FileType::kDirectory &&
      type != FileType::kSymlink) {
    return InvalidArgumentError("unsupported file type");
  }
  if (cpu_ != nullptr) {
    cpu_->ChargeTracked(cpu_->costs().create_instructions);
  }
  ASSIGN_OR_RETURN(Inode dir_inode, GetInode(dir));
  if (!dir_inode.IsDirectory()) {
    return NotDirectoryError("create in non-directory");
  }
  Result<DirEntry> existing = DirFind(dir, dir_inode, name);
  if (existing.ok()) {
    return ExistsError(name);
  }
  if (existing.status().code() != ErrorCode::kNotFound) {
    return existing.status();
  }

  const uint32_t preferred = type == FileType::kDirectory
                                 ? (next_dir_group_++ % sb_.num_groups)
                                 : GroupOfInode(dir);
  ASSIGN_OR_RETURN(InodeNum ino, AllocInode(preferred, type));
  const double now = clock_ != nullptr ? clock_->Now() : 0.0;
  Inode inode;
  inode.type = type;
  inode.nlink = type == FileType::kDirectory ? 2 : 1;
  inode.generation = 1;
  inode.atime = inode.mtime = inode.ctime = now;

  if (type == FileType::kDirectory) {
    bool modified = false;
    ASSIGN_OR_RETURN(DiskAddr addr, MapBlockForWrite(ino, &inode, 0, &modified));
    ASSIGN_OR_RETURN(CacheRef ref, GetBlockZeroed(AddrToBlock(addr)));
    DirBlockView view(ref->mutable_data());
    RETURN_IF_ERROR(view.InitEmpty());
    RETURN_IF_ERROR(view.Insert(ino, FileType::kDirectory, "."));
    RETURN_IF_ERROR(view.Insert(dir, FileType::kDirectory, ".."));
    inode.size = sb_.block_size;
    RETURN_IF_ERROR(WriteBlockSync(ref.get()));
    ++dir_inode.nlink;
  }

  // The two synchronous metadata writes of Figure 1: the new inode's block
  // and the directory data block.
  RETURN_IF_ERROR(PutInode(ino, inode, /*synchronous=*/true));
  RETURN_IF_ERROR(DirInsert(dir, &dir_inode, ino, type, name, /*synchronous=*/true));
  dir_inode.mtime = now;
  RETURN_IF_ERROR(PutInode(dir, dir_inode, /*synchronous=*/false));
  return ino;
}

Result<InodeNum> FfsFileSystem::Lookup(InodeNum dir, std::string_view name) {
  if (cpu_ != nullptr) {
    cpu_->ChargeTracked(cpu_->costs().lookup_instructions);
  }
  ASSIGN_OR_RETURN(Inode dir_inode, GetInode(dir));
  if (!dir_inode.IsDirectory()) {
    return NotDirectoryError("lookup in non-directory");
  }
  ASSIGN_OR_RETURN(DirEntry entry, DirFind(dir, dir_inode, name));
  return entry.ino;
}

Status FfsFileSystem::Unlink(InodeNum dir, std::string_view name) {
  if (cpu_ != nullptr) {
    cpu_->ChargeTracked(cpu_->costs().remove_instructions);
  }
  ASSIGN_OR_RETURN(Inode dir_inode, GetInode(dir));
  if (!dir_inode.IsDirectory()) {
    return NotDirectoryError("unlink in non-directory");
  }
  ASSIGN_OR_RETURN(DirEntry entry, DirFind(dir, dir_inode, name));
  ASSIGN_OR_RETURN(Inode target, GetInode(entry.ino));
  if (target.IsDirectory()) {
    return IsDirectoryError("unlink of a directory; use Rmdir");
  }
  RETURN_IF_ERROR(DirRemove(dir, &dir_inode, name, /*synchronous=*/true));
  dir_inode.mtime = clock_ != nullptr ? clock_->Now() : 0.0;
  RETURN_IF_ERROR(PutInode(dir, dir_inode, /*synchronous=*/false));
  --target.nlink;
  if (target.nlink == 0) {
    RETURN_IF_ERROR(FreeBlocksFrom(entry.ino, &target, 0));
    return FreeInodeSlot(entry.ino);
  }
  return PutInode(entry.ino, target, /*synchronous=*/true);
}

Status FfsFileSystem::Rmdir(InodeNum dir, std::string_view name) {
  if (cpu_ != nullptr) {
    cpu_->ChargeTracked(cpu_->costs().remove_instructions);
  }
  if (name == "." || name == "..") {
    return InvalidArgumentError("cannot rmdir . or ..");
  }
  ASSIGN_OR_RETURN(Inode dir_inode, GetInode(dir));
  if (!dir_inode.IsDirectory()) {
    return NotDirectoryError("rmdir in non-directory");
  }
  ASSIGN_OR_RETURN(DirEntry entry, DirFind(dir, dir_inode, name));
  ASSIGN_OR_RETURN(Inode target, GetInode(entry.ino));
  if (!target.IsDirectory()) {
    return NotDirectoryError("rmdir of a non-directory");
  }
  ASSIGN_OR_RETURN(bool empty, DirIsEmpty(entry.ino, target));
  if (!empty) {
    return NotEmptyError(name);
  }
  RETURN_IF_ERROR(DirRemove(dir, &dir_inode, name, /*synchronous=*/true));
  --dir_inode.nlink;  // Lost the child's "..".
  dir_inode.mtime = clock_ != nullptr ? clock_->Now() : 0.0;
  RETURN_IF_ERROR(PutInode(dir, dir_inode, /*synchronous=*/false));
  RETURN_IF_ERROR(FreeBlocksFrom(entry.ino, &target, 0));
  return FreeInodeSlot(entry.ino);
}

Status FfsFileSystem::Link(InodeNum dir, std::string_view name, InodeNum target_ino) {
  if (cpu_ != nullptr) {
    cpu_->ChargeTracked(cpu_->costs().create_instructions);
  }
  ASSIGN_OR_RETURN(Inode dir_inode, GetInode(dir));
  if (!dir_inode.IsDirectory()) {
    return NotDirectoryError("link in non-directory");
  }
  ASSIGN_OR_RETURN(Inode target, GetInode(target_ino));
  if (target.IsDirectory()) {
    return IsDirectoryError("hard link to a directory");
  }
  Result<DirEntry> existing = DirFind(dir, dir_inode, name);
  if (existing.ok()) {
    return ExistsError(name);
  }
  if (existing.status().code() != ErrorCode::kNotFound) {
    return existing.status();
  }
  RETURN_IF_ERROR(DirInsert(dir, &dir_inode, target_ino, target.type, name,
                            /*synchronous=*/true));
  RETURN_IF_ERROR(PutInode(dir, dir_inode, /*synchronous=*/false));
  ++target.nlink;
  return PutInode(target_ino, target, /*synchronous=*/true);
}

Status FfsFileSystem::Rename(InodeNum from_dir, std::string_view from_name, InodeNum to_dir,
                             std::string_view to_name) {
  if (cpu_ != nullptr) {
    cpu_->ChargeTracked(cpu_->costs().create_instructions);
  }
  if (from_name == "." || from_name == ".." || to_name == "." || to_name == "..") {
    return InvalidArgumentError("cannot rename . or ..");
  }
  ASSIGN_OR_RETURN(Inode from_inode, GetInode(from_dir));
  ASSIGN_OR_RETURN(DirEntry src, DirFind(from_dir, from_inode, from_name));
  if (from_dir == to_dir && from_name == to_name) {
    return OkStatus();
  }
  ASSIGN_OR_RETURN(Inode src_inode, GetInode(src.ino));
  if (src_inode.IsDirectory()) {
    ASSIGN_OR_RETURN(bool cyclic, IsInSubtree(to_dir, src.ino));
    if (cyclic) {
      return InvalidArgumentError("rename would create a cycle");
    }
  }
  ASSIGN_OR_RETURN(Inode to_inode, GetInode(to_dir));
  Result<DirEntry> dst = DirFind(to_dir, to_inode, to_name);
  if (dst.ok()) {
    // Replace the destination.
    ASSIGN_OR_RETURN(Inode dst_inode, GetInode(dst->ino));
    if (dst_inode.IsDirectory()) {
      if (!src_inode.IsDirectory()) {
        return IsDirectoryError("cannot replace a directory with a file");
      }
      ASSIGN_OR_RETURN(bool empty, DirIsEmpty(dst->ino, dst_inode));
      if (!empty) {
        return NotEmptyError(to_name);
      }
      RETURN_IF_ERROR(DirReplace(to_dir, &to_inode, to_name, src.ino, src.type,
                                 /*synchronous=*/true));
      --to_inode.nlink;  // Old child directory's ".." is gone.
      RETURN_IF_ERROR(FreeBlocksFrom(dst->ino, &dst_inode, 0));
      RETURN_IF_ERROR(FreeInodeSlot(dst->ino));
    } else {
      if (src_inode.IsDirectory()) {
        return NotDirectoryError("cannot replace a file with a directory");
      }
      RETURN_IF_ERROR(DirReplace(to_dir, &to_inode, to_name, src.ino, src.type,
                                 /*synchronous=*/true));
      --dst_inode.nlink;
      if (dst_inode.nlink == 0) {
        RETURN_IF_ERROR(FreeBlocksFrom(dst->ino, &dst_inode, 0));
        RETURN_IF_ERROR(FreeInodeSlot(dst->ino));
      } else {
        RETURN_IF_ERROR(PutInode(dst->ino, dst_inode, /*synchronous=*/true));
      }
    }
  } else {
    if (dst.status().code() != ErrorCode::kNotFound) {
      return dst.status();
    }
    RETURN_IF_ERROR(DirInsert(to_dir, &to_inode, src.ino, src.type, to_name,
                              /*synchronous=*/true));
    if (src_inode.IsDirectory() && from_dir != to_dir) {
      ++to_inode.nlink;
    }
  }
  RETURN_IF_ERROR(PutInode(to_dir, to_inode, /*synchronous=*/false));
  // Remove the source entry. Reload the source directory inode: it may have
  // changed if from_dir == to_dir (size growth during insert).
  ASSIGN_OR_RETURN(from_inode, GetInode(from_dir));
  RETURN_IF_ERROR(DirRemove(from_dir, &from_inode, from_name, /*synchronous=*/true));
  if (src_inode.IsDirectory() && from_dir != to_dir) {
    --from_inode.nlink;
    // Rewrite the child's "..".
    ASSIGN_OR_RETURN(src_inode, GetInode(src.ino));
    RETURN_IF_ERROR(DirReplace(src.ino, &src_inode, "..", to_dir, FileType::kDirectory,
                               /*synchronous=*/false));
    RETURN_IF_ERROR(PutInode(src.ino, src_inode, /*synchronous=*/false));
  }
  return PutInode(from_dir, from_inode, /*synchronous=*/false);
}

Result<uint64_t> FfsFileSystem::Read(InodeNum ino, uint64_t offset, std::span<std::byte> out) {
  ASSIGN_OR_RETURN(Inode inode, GetInode(ino));
  if (inode.IsDirectory()) {
    return IsDirectoryError("read of a directory");
  }
  if (offset >= inode.size) {
    return uint64_t{0};
  }
  const uint64_t to_read = std::min<uint64_t>(out.size(), inode.size - offset);
  uint64_t done = 0;
  while (done < to_read) {
    const uint64_t pos = offset + done;
    const uint64_t index = pos / sb_.block_size;
    const uint64_t in_block = pos % sb_.block_size;
    const uint64_t chunk = std::min<uint64_t>(to_read - done, sb_.block_size - in_block);
    if (cpu_ != nullptr) {
      cpu_->ChargeTracked(cpu_->costs().per_block_instructions +
                          cpu_->costs().per_kilobyte_copy_instructions * (chunk / 1024 + 1));
    }
    ASSIGN_OR_RETURN(DiskAddr addr, MapBlockForRead(inode, index));
    if (addr == kNoAddr) {
      std::memset(out.data() + done, 0, chunk);
    } else {
      ASSIGN_OR_RETURN(CacheRef ref, GetBlock(AddrToBlock(addr)));
      std::memcpy(out.data() + done, ref->data().data() + in_block, chunk);
    }
    done += chunk;
  }
  // Access-time update, delayed-written with the inode block (real FFS
  // behaviour; LFS avoids exactly this by keeping atime in the inode map).
  inode.atime = clock_ != nullptr ? clock_->Now() : 0.0;
  RETURN_IF_ERROR(PutInode(ino, inode, /*synchronous=*/false));
  return done;
}

Result<uint64_t> FfsFileSystem::Write(InodeNum ino, uint64_t offset,
                                      std::span<const std::byte> data) {
  ASSIGN_OR_RETURN(Inode inode, GetInode(ino));
  if (inode.IsDirectory()) {
    return IsDirectoryError("write to a directory");
  }
  const uint64_t max_bytes = MaxFileBlocks(EntriesPerBlock()) * sb_.block_size;
  if (offset + data.size() > max_bytes) {
    return TooLargeError("write beyond maximum file size");
  }
  bool inode_modified = false;
  uint64_t done = 0;
  while (done < data.size()) {
    const uint64_t pos = offset + done;
    const uint64_t index = pos / sb_.block_size;
    const uint64_t in_block = pos % sb_.block_size;
    const uint64_t chunk = std::min<uint64_t>(data.size() - done, sb_.block_size - in_block);
    if (cpu_ != nullptr) {
      cpu_->ChargeTracked(cpu_->costs().per_block_instructions +
                          cpu_->costs().per_kilobyte_copy_instructions * (chunk / 1024 + 1));
    }
    // Distinguish writes into existing blocks (read-modify-write) from
    // writes that materialize a new block: a freshly allocated block's disk
    // content is stale garbage and must never be read.
    ASSIGN_OR_RETURN(DiskAddr before, MapBlockForRead(inode, index));
    const bool was_hole = before == kNoAddr;
    ASSIGN_OR_RETURN(DiskAddr addr, MapBlockForWrite(ino, &inode, index, &inode_modified));
    const bool full_block = chunk == sb_.block_size;
    CacheRef ref;
    if (full_block || was_hole) {
      ASSIGN_OR_RETURN(ref, GetBlockZeroed(AddrToBlock(addr)));
    } else {
      ASSIGN_OR_RETURN(ref, GetBlock(AddrToBlock(addr)));
    }
    std::memcpy(ref->mutable_data().data() + in_block, data.data() + done, chunk);
    cache_.MarkDirty(ref.get());
    done += chunk;
  }
  const uint64_t end = offset + data.size();
  if (end > inode.size) {
    inode.size = end;
    inode_modified = true;
  }
  inode.mtime = clock_ != nullptr ? clock_->Now() : 0.0;
  RETURN_IF_ERROR(PutInode(ino, inode, /*synchronous=*/false));
  (void)inode_modified;
  if (cache_.NeedsWriteback()) {
    RETURN_IF_ERROR(cache_.FlushAll());
  }
  return done;
}

Status FfsFileSystem::Truncate(InodeNum ino, uint64_t new_size) {
  ASSIGN_OR_RETURN(Inode inode, GetInode(ino));
  if (inode.IsDirectory()) {
    return IsDirectoryError("truncate of a directory");
  }
  if (new_size >= inode.size) {
    inode.size = new_size;  // Extension creates a hole.
    return PutInode(ino, inode, /*synchronous=*/false);
  }
  const uint64_t keep_blocks = (new_size + sb_.block_size - 1) / sb_.block_size;
  RETURN_IF_ERROR(FreeBlocksFrom(ino, &inode, keep_blocks));
  // Zero the tail of the final partial block so re-extension reads zeros.
  if (new_size % sb_.block_size != 0) {
    ASSIGN_OR_RETURN(DiskAddr addr, MapBlockForRead(inode, keep_blocks - 1));
    if (addr != kNoAddr) {
      ASSIGN_OR_RETURN(CacheRef ref, GetBlock(AddrToBlock(addr)));
      const uint64_t keep = new_size % sb_.block_size;
      std::memset(ref->mutable_data().data() + keep, 0, sb_.block_size - keep);
      cache_.MarkDirty(ref.get());
    }
  }
  inode.size = new_size;
  inode.mtime = clock_ != nullptr ? clock_->Now() : 0.0;
  return PutInode(ino, inode, /*synchronous=*/false);
}

Result<FileStat> FfsFileSystem::Stat(InodeNum ino) {
  ASSIGN_OR_RETURN(Inode inode, GetInode(ino));
  FileStat stat;
  stat.ino = ino;
  stat.type = inode.type;
  stat.nlink = inode.nlink;
  stat.size = inode.size;
  stat.blocks = (inode.size + sb_.block_size - 1) / sb_.block_size;
  stat.atime = inode.atime;
  stat.mtime = inode.mtime;
  stat.ctime = inode.ctime;
  stat.version = 0;
  return stat;
}

Result<std::vector<DirEntry>> FfsFileSystem::ReadDir(InodeNum dir) {
  ASSIGN_OR_RETURN(Inode inode, GetInode(dir));
  if (!inode.IsDirectory()) {
    return NotDirectoryError("readdir of a non-directory");
  }
  std::vector<DirEntry> all;
  const uint64_t blocks = inode.size / sb_.block_size;
  for (uint64_t b = 0; b < blocks; ++b) {
    ASSIGN_OR_RETURN(DiskAddr addr, MapBlockForRead(inode, b));
    if (addr == kNoAddr) {
      continue;
    }
    ASSIGN_OR_RETURN(CacheRef ref, GetBlock(AddrToBlock(addr)));
    DirBlockView view(ref->mutable_data());
    ASSIGN_OR_RETURN(auto entries, view.List());
    all.insert(all.end(), entries.begin(), entries.end());
  }
  return all;
}

Status FfsFileSystem::FlushGroupHeaders() {
  std::vector<std::byte> block(sb_.block_size);
  for (uint32_t g = 0; g < sb_.num_groups; ++g) {
    Group& group = groups_[g];
    if (!group.dirty) {
      continue;
    }
    std::memset(block.data(), 0, block.size());
    std::memcpy(block.data(), group.inode_bitmap.data(), group.inode_bitmap.size());
    std::memcpy(block.data() + group.inode_bitmap.size(), group.block_bitmap.data(),
                group.block_bitmap.size());
    RETURN_IF_ERROR(device_->WriteSectors(GroupStartBlock(g) * SectorsPerBlock(), block));
    group.dirty = false;
  }
  return OkStatus();
}

Status FfsFileSystem::Sync() {
  RETURN_IF_ERROR(cache_.FlushAll());
  RETURN_IF_ERROR(FlushGroupHeaders());
  return device_->Flush();
}

Status FfsFileSystem::Fsync(InodeNum /*ino*/) {
  // FFS blocks are cached by physical address, so per-file selection is not
  // possible; fsync degenerates to a full sync (SunOS-era fsync forced the
  // same synchronous metadata writes).
  return Sync();
}

Status FfsFileSystem::DropCaches() {
  cache_.DropClean();
  return OkStatus();
}

Status FfsFileSystem::Tick() { return cache_.MaybeWriteBackByAge(); }

}  // namespace logfs
