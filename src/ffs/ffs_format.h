// On-disk format of the FFS baseline: a simplified BSD fast file system
// (McKusick et al. 1984), the stand-in for the paper's SunOS 4.0.3
// comparator. Update-in-place layout:
//
//   block 0                superblock
//   per cylinder group g:
//     block cg_start(g)    group header (inode bitmap + block bitmap)
//     + inode table        inodes_per_group * kInodeDiskSize bytes
//     + data blocks        the rest of the group
//
// Faithful behavioural properties (the ones the paper's comparison rests
// on): inodes live at fixed disk addresses derived from the inode number;
// creat/unlink force synchronous writes of the inode block and directory
// block; data blocks are delayed-written in place; allocation prefers the
// cylinder group of the file's inode with rotational locality approximated
// by next-fit search.
#ifndef LOGFS_SRC_FFS_FFS_FORMAT_H_
#define LOGFS_SRC_FFS_FFS_FORMAT_H_

#include <cstdint>
#include <span>

#include "src/util/result.h"
#include "src/util/status.h"

namespace logfs {

inline constexpr uint32_t kFfsMagic = 0x46465331;  // "FFS1"

struct FfsParams {
  uint32_t block_size = 8192;        // Paper: SunOS used 8 KB blocks.
  uint32_t blocks_per_group = 2048;  // 16 MB groups.
  uint32_t inodes_per_group = 1024;
};

struct FfsSuperblock {
  uint32_t magic = kFfsMagic;
  uint32_t block_size = 0;
  uint64_t total_blocks = 0;  // Whole-disk capacity in FS blocks.
  uint32_t num_groups = 0;
  uint32_t blocks_per_group = 0;
  uint32_t inodes_per_group = 0;
  uint32_t inode_table_blocks = 0;  // Per group.
};

// Serializes into / parses from one FS block (the codec only touches the
// first few hundred bytes; the block is CRC-protected).
Status EncodeFfsSuperblock(const FfsSuperblock& sb, std::span<std::byte> block);
Result<FfsSuperblock> DecodeFfsSuperblock(std::span<const std::byte> block);

}  // namespace logfs

#endif  // LOGFS_SRC_FFS_FFS_FORMAT_H_
