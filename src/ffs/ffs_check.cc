#include "src/ffs/ffs_check.h"

#include <deque>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace logfs {
namespace {

bool TestBit(const std::vector<uint8_t>& bitmap, uint64_t bit) {
  return (bitmap[bit / 8] >> (bit % 8)) & 1u;
}

}  // namespace

std::string FfsCheckReport::Summary() const {
  std::ostringstream os;
  os << (ok() ? "CLEAN" : "CORRUPT") << ": " << files << " files, " << directories
     << " directories, " << total_bytes << " bytes, " << blocks_in_use << " data blocks";
  for (const std::string& problem : problems) {
    os << "\n  problem: " << problem;
  }
  return os.str();
}

Result<FfsCheckReport> FfsChecker::Check(bool verify_data) {
  FfsCheckReport report;
  auto complain = [&report](std::string message) {
    if (report.problems.size() < 64) {
      report.problems.push_back(std::move(message));
    }
  };
  RETURN_IF_ERROR(fs_->Sync());
  const FfsSuperblock& sb = fs_->sb_;

  // --- collect every live block pointer, checking for double references ---
  std::unordered_set<uint64_t> used_blocks;  // Physical block numbers.
  auto claim = [&](DiskAddr addr, InodeNum ino, const char* what) {
    if (addr == kNoAddr) {
      return;
    }
    const uint64_t block = fs_->AddrToBlock(addr);
    if (block == 0 || block >= sb.total_blocks) {
      complain(std::string(what) + " of ino " + std::to_string(ino) + " out of range");
      return;
    }
    // Must lie in a data area, not group metadata.
    const uint32_t group = static_cast<uint32_t>((block - 1) / sb.blocks_per_group);
    const uint64_t rel = block - fs_->GroupStartBlock(group);
    if (group >= sb.num_groups || rel < fs_->GroupMetaBlocks()) {
      complain(std::string(what) + " of ino " + std::to_string(ino) +
               " points into metadata");
      return;
    }
    if (!used_blocks.insert(block).second) {
      complain("block " + std::to_string(block) + " referenced twice (" + what + " of ino " +
               std::to_string(ino) + ")");
    }
  };

  auto walk_inode_blocks = [&](InodeNum ino, const Inode& inode) -> Status {
    for (DiskAddr addr : inode.direct) {
      claim(addr, ino, "direct block");
    }
    const uint64_t epb = fs_->EntriesPerBlock();
    if (inode.single_indirect != kNoAddr) {
      claim(inode.single_indirect, ino, "single indirect");
      ASSIGN_OR_RETURN(CacheRef ref, fs_->GetBlock(fs_->AddrToBlock(inode.single_indirect)));
      for (uint64_t j = 0; j < epb; ++j) {
        claim(ReadIndirectEntry(ref->data(), j), ino, "indirect entry");
      }
    }
    if (inode.double_indirect != kNoAddr) {
      claim(inode.double_indirect, ino, "double indirect");
      ASSIGN_OR_RETURN(CacheRef l1, fs_->GetBlock(fs_->AddrToBlock(inode.double_indirect)));
      for (uint64_t j = 0; j < epb; ++j) {
        const DiskAddr l2_addr = ReadIndirectEntry(l1->data(), j);
        if (l2_addr == kNoAddr) {
          continue;
        }
        claim(l2_addr, ino, "double-indirect leaf");
        ASSIGN_OR_RETURN(CacheRef l2, fs_->GetBlock(fs_->AddrToBlock(l2_addr)));
        for (uint64_t k = 0; k < epb; ++k) {
          claim(ReadIndirectEntry(l2->data(), k), ino, "double-indirect entry");
        }
      }
    }
    return OkStatus();
  };

  // --- directory tree walk ---
  std::unordered_map<InodeNum, uint32_t> name_refs;
  std::unordered_map<InodeNum, uint32_t> child_dirs;
  std::unordered_map<InodeNum, InodeNum> parent_of;
  std::unordered_set<InodeNum> visited;
  std::deque<InodeNum> queue;
  queue.push_back(kRootIno);
  visited.insert(kRootIno);
  parent_of[kRootIno] = kRootIno;
  while (!queue.empty()) {
    const InodeNum dir = queue.front();
    queue.pop_front();
    ++report.directories;
    Result<std::vector<DirEntry>> entries = fs_->ReadDir(dir);
    if (!entries.ok()) {
      complain("dir " + std::to_string(dir) + " unreadable");
      continue;
    }
    bool saw_dot = false;
    bool saw_dotdot = false;
    for (const DirEntry& entry : entries.value()) {
      const uint32_t group = fs_->GroupOfInode(entry.ino);
      const uint32_t index = (entry.ino - 1) % sb.inodes_per_group;
      if (entry.ino == kInvalidIno || group >= sb.num_groups ||
          !TestBit(fs_->groups_[group].inode_bitmap, index)) {
        complain("dir " + std::to_string(dir) + " entry '" + entry.name +
                 "' references unallocated ino " + std::to_string(entry.ino));
        continue;
      }
      if (entry.name == ".") {
        saw_dot = true;
        if (entry.ino != dir) {
          complain("dir " + std::to_string(dir) + " has wrong '.'");
        }
        continue;
      }
      if (entry.name == "..") {
        saw_dotdot = true;
        if (entry.ino != parent_of[dir]) {
          complain("dir " + std::to_string(dir) + " has wrong '..'");
        }
        continue;
      }
      ++name_refs[entry.ino];
      Result<FileStat> stat = fs_->Stat(entry.ino);
      if (!stat.ok()) {
        complain("stat of ino " + std::to_string(entry.ino) + " failed");
        continue;
      }
      if (stat->type == FileType::kDirectory) {
        ++child_dirs[dir];
        if (!visited.insert(entry.ino).second) {
          complain("directory ino " + std::to_string(entry.ino) + " linked twice");
          continue;
        }
        parent_of[entry.ino] = dir;
        queue.push_back(entry.ino);
      } else if (visited.insert(entry.ino).second) {
        ++report.files;
        report.total_bytes += stat->size;
        if (verify_data && stat->size > 0) {
          std::vector<std::byte> content(stat->size);
          Result<uint64_t> n = fs_->Read(entry.ino, 0, content);
          if (!n.ok() || *n != stat->size) {
            complain("file ino " + std::to_string(entry.ino) + " content unreadable");
          }
        }
      }
    }
    if (!saw_dot || !saw_dotdot) {
      complain("dir " + std::to_string(dir) + " missing . or ..");
    }
  }

  // --- per-inode: reachability, nlink, block walk ---
  for (uint32_t g = 0; g < sb.num_groups; ++g) {
    for (uint32_t i = 0; i < sb.inodes_per_group; ++i) {
      if (!TestBit(fs_->groups_[g].inode_bitmap, i)) {
        continue;
      }
      const InodeNum ino = static_cast<InodeNum>(g * sb.inodes_per_group + i + 1);
      if (!visited.contains(ino)) {
        complain("allocated ino " + std::to_string(ino) + " unreachable from root");
        continue;
      }
      Result<Inode> inode = fs_->GetInode(ino);
      if (!inode.ok()) {
        complain("ino " + std::to_string(ino) + " undecodable");
        continue;
      }
      const uint32_t expected = inode->IsDirectory() ? 2 + child_dirs[ino] : name_refs[ino];
      if (inode->nlink != expected) {
        complain("ino " + std::to_string(ino) + " nlink " + std::to_string(inode->nlink) +
                 " != expected " + std::to_string(expected));
      }
      RETURN_IF_ERROR(walk_inode_blocks(ino, *inode));
    }
  }
  report.blocks_in_use = used_blocks.size();

  // --- bitmaps must agree exactly with the reachable block set ---
  for (uint32_t g = 0; g < sb.num_groups; ++g) {
    const FfsFileSystem::Group& group = fs_->groups_[g];
    for (uint32_t rel = fs_->GroupMetaBlocks(); rel < group.block_count; ++rel) {
      const uint64_t block = fs_->GroupStartBlock(g) + rel;
      const bool marked = TestBit(group.block_bitmap, rel);
      const bool used = used_blocks.contains(block);
      if (marked && !used) {
        complain("block " + std::to_string(block) + " marked in use but unreferenced (leak)");
      } else if (!marked && used) {
        complain("block " + std::to_string(block) + " referenced but marked free");
      }
    }
  }
  return report;
}

}  // namespace logfs
