// FfsChecker: fsck-style consistency verification for the FFS baseline.
//
// After quiescing the file system, verifies that:
//   * the directory tree is rooted, acyclic and fully connected, with
//     correct "." / ".." entries and exact nlink counts;
//   * every allocated inode is reachable and every dirent target allocated;
//   * every block pointer lies in a valid data area and no two live
//     pointers reference the same block (no double allocation);
//   * the block and inode bitmaps agree exactly with the reachable set
//     (no leaked blocks, no unallocated-but-referenced blocks);
//   * every file's content is readable end to end.
//
// The paper contrasts LFS's log-bounded recovery with FFS needing exactly
// this kind of whole-disk scan after a crash; implementing the scan also
// gives the property tests a ground truth for the baseline.
#ifndef LOGFS_SRC_FFS_FFS_CHECK_H_
#define LOGFS_SRC_FFS_FFS_CHECK_H_

#include <string>
#include <vector>

#include "src/ffs/ffs_file_system.h"
#include "src/util/result.h"

namespace logfs {

struct FfsCheckReport {
  std::vector<std::string> problems;
  uint64_t files = 0;
  uint64_t directories = 0;
  uint64_t total_bytes = 0;
  uint64_t blocks_in_use = 0;

  bool ok() const { return problems.empty(); }
  std::string Summary() const;
};

class FfsChecker {
 public:
  explicit FfsChecker(FfsFileSystem* fs) : fs_(fs) {}

  Result<FfsCheckReport> Check(bool verify_data = true);

 private:
  FfsFileSystem* fs_;
};

}  // namespace logfs

#endif  // LOGFS_SRC_FFS_FFS_CHECK_H_
