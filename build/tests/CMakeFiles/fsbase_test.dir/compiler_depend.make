# Empty compiler generated dependencies file for fsbase_test.
# This may be replaced when dependencies are built.
