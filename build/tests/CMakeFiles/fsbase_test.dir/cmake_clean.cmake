file(REMOVE_RECURSE
  "CMakeFiles/fsbase_test.dir/fsbase_test.cc.o"
  "CMakeFiles/fsbase_test.dir/fsbase_test.cc.o.d"
  "fsbase_test"
  "fsbase_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsbase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
