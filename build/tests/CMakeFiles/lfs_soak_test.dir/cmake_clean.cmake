file(REMOVE_RECURSE
  "CMakeFiles/lfs_soak_test.dir/lfs_soak_test.cc.o"
  "CMakeFiles/lfs_soak_test.dir/lfs_soak_test.cc.o.d"
  "lfs_soak_test"
  "lfs_soak_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfs_soak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
