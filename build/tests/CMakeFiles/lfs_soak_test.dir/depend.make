# Empty dependencies file for lfs_soak_test.
# This may be replaced when dependencies are built.
