# Empty compiler generated dependencies file for lfs_segment_builder_test.
# This may be replaced when dependencies are built.
