file(REMOVE_RECURSE
  "CMakeFiles/lfs_segment_builder_test.dir/lfs_segment_builder_test.cc.o"
  "CMakeFiles/lfs_segment_builder_test.dir/lfs_segment_builder_test.cc.o.d"
  "lfs_segment_builder_test"
  "lfs_segment_builder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfs_segment_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
