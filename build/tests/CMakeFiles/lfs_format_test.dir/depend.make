# Empty dependencies file for lfs_format_test.
# This may be replaced when dependencies are built.
