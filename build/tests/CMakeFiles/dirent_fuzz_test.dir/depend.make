# Empty dependencies file for dirent_fuzz_test.
# This may be replaced when dependencies are built.
