file(REMOVE_RECURSE
  "CMakeFiles/dirent_fuzz_test.dir/dirent_fuzz_test.cc.o"
  "CMakeFiles/dirent_fuzz_test.dir/dirent_fuzz_test.cc.o.d"
  "dirent_fuzz_test"
  "dirent_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirent_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
