# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dirent_fuzz_test.
