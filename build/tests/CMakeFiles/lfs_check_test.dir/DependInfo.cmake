
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lfs_check_test.cc" "tests/CMakeFiles/lfs_check_test.dir/lfs_check_test.cc.o" "gcc" "tests/CMakeFiles/lfs_check_test.dir/lfs_check_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/logfs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ffs/CMakeFiles/logfs_ffs.dir/DependInfo.cmake"
  "/root/repo/build/src/lfs/CMakeFiles/logfs_lfs.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/logfs_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/logfs_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/logfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fsbase/CMakeFiles/logfs_fsbase.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/logfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
