# Empty compiler generated dependencies file for lfs_check_test.
# This may be replaced when dependencies are built.
