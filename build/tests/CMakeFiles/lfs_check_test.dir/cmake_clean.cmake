file(REMOVE_RECURSE
  "CMakeFiles/lfs_check_test.dir/lfs_check_test.cc.o"
  "CMakeFiles/lfs_check_test.dir/lfs_check_test.cc.o.d"
  "lfs_check_test"
  "lfs_check_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfs_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
