file(REMOVE_RECURSE
  "CMakeFiles/lfs_cleaner_crash_test.dir/lfs_cleaner_crash_test.cc.o"
  "CMakeFiles/lfs_cleaner_crash_test.dir/lfs_cleaner_crash_test.cc.o.d"
  "lfs_cleaner_crash_test"
  "lfs_cleaner_crash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfs_cleaner_crash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
