file(REMOVE_RECURSE
  "CMakeFiles/ffs_check_test.dir/ffs_check_test.cc.o"
  "CMakeFiles/ffs_check_test.dir/ffs_check_test.cc.o.d"
  "ffs_check_test"
  "ffs_check_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffs_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
