file(REMOVE_RECURSE
  "CMakeFiles/lfs_recovery_test.dir/lfs_recovery_test.cc.o"
  "CMakeFiles/lfs_recovery_test.dir/lfs_recovery_test.cc.o.d"
  "lfs_recovery_test"
  "lfs_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfs_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
