# Empty dependencies file for bench_ablation_readahead.
# This may be replaced when dependencies are built.
