# Empty compiler generated dependencies file for bench_raid.
# This may be replaced when dependencies are built.
