file(REMOVE_RECURSE
  "CMakeFiles/bench_raid.dir/bench_raid.cc.o"
  "CMakeFiles/bench_raid.dir/bench_raid.cc.o.d"
  "bench_raid"
  "bench_raid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
