# Empty dependencies file for bench_create_pattern.
# This may be replaced when dependencies are built.
