file(REMOVE_RECURSE
  "CMakeFiles/bench_create_pattern.dir/bench_create_pattern.cc.o"
  "CMakeFiles/bench_create_pattern.dir/bench_create_pattern.cc.o.d"
  "bench_create_pattern"
  "bench_create_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_create_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
