# Empty dependencies file for bench_small_file.
# This may be replaced when dependencies are built.
