file(REMOVE_RECURSE
  "CMakeFiles/bench_small_file.dir/bench_small_file.cc.o"
  "CMakeFiles/bench_small_file.dir/bench_small_file.cc.o.d"
  "bench_small_file"
  "bench_small_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_small_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
