file(REMOVE_RECURSE
  "CMakeFiles/bench_cleaning.dir/bench_cleaning.cc.o"
  "CMakeFiles/bench_cleaning.dir/bench_cleaning.cc.o.d"
  "bench_cleaning"
  "bench_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
