file(REMOVE_RECURSE
  "CMakeFiles/bench_large_file.dir/bench_large_file.cc.o"
  "CMakeFiles/bench_large_file.dir/bench_large_file.cc.o.d"
  "bench_large_file"
  "bench_large_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_large_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
