# Empty dependencies file for lfs_inspect.
# This may be replaced when dependencies are built.
