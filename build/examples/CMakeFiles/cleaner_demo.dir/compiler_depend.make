# Empty compiler generated dependencies file for cleaner_demo.
# This may be replaced when dependencies are built.
