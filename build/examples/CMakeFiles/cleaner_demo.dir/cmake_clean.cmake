file(REMOVE_RECURSE
  "CMakeFiles/cleaner_demo.dir/cleaner_demo.cpp.o"
  "CMakeFiles/cleaner_demo.dir/cleaner_demo.cpp.o.d"
  "cleaner_demo"
  "cleaner_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaner_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
