# Empty compiler generated dependencies file for logfs_ffs.
# This may be replaced when dependencies are built.
