file(REMOVE_RECURSE
  "CMakeFiles/logfs_ffs.dir/ffs_check.cc.o"
  "CMakeFiles/logfs_ffs.dir/ffs_check.cc.o.d"
  "CMakeFiles/logfs_ffs.dir/ffs_file_system.cc.o"
  "CMakeFiles/logfs_ffs.dir/ffs_file_system.cc.o.d"
  "CMakeFiles/logfs_ffs.dir/ffs_format.cc.o"
  "CMakeFiles/logfs_ffs.dir/ffs_format.cc.o.d"
  "liblogfs_ffs.a"
  "liblogfs_ffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logfs_ffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
