file(REMOVE_RECURSE
  "liblogfs_ffs.a"
)
