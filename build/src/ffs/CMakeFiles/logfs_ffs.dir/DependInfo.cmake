
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ffs/ffs_check.cc" "src/ffs/CMakeFiles/logfs_ffs.dir/ffs_check.cc.o" "gcc" "src/ffs/CMakeFiles/logfs_ffs.dir/ffs_check.cc.o.d"
  "/root/repo/src/ffs/ffs_file_system.cc" "src/ffs/CMakeFiles/logfs_ffs.dir/ffs_file_system.cc.o" "gcc" "src/ffs/CMakeFiles/logfs_ffs.dir/ffs_file_system.cc.o.d"
  "/root/repo/src/ffs/ffs_format.cc" "src/ffs/CMakeFiles/logfs_ffs.dir/ffs_format.cc.o" "gcc" "src/ffs/CMakeFiles/logfs_ffs.dir/ffs_format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/logfs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/logfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/logfs_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/logfs_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/fsbase/CMakeFiles/logfs_fsbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
