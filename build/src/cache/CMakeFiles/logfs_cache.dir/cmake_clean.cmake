file(REMOVE_RECURSE
  "CMakeFiles/logfs_cache.dir/buffer_cache.cc.o"
  "CMakeFiles/logfs_cache.dir/buffer_cache.cc.o.d"
  "liblogfs_cache.a"
  "liblogfs_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logfs_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
