file(REMOVE_RECURSE
  "liblogfs_cache.a"
)
