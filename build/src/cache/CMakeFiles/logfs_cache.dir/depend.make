# Empty dependencies file for logfs_cache.
# This may be replaced when dependencies are built.
