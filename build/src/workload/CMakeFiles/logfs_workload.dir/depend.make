# Empty dependencies file for logfs_workload.
# This may be replaced when dependencies are built.
