file(REMOVE_RECURSE
  "CMakeFiles/logfs_workload.dir/benchmarks.cc.o"
  "CMakeFiles/logfs_workload.dir/benchmarks.cc.o.d"
  "CMakeFiles/logfs_workload.dir/report.cc.o"
  "CMakeFiles/logfs_workload.dir/report.cc.o.d"
  "CMakeFiles/logfs_workload.dir/testbed.cc.o"
  "CMakeFiles/logfs_workload.dir/testbed.cc.o.d"
  "CMakeFiles/logfs_workload.dir/trace.cc.o"
  "CMakeFiles/logfs_workload.dir/trace.cc.o.d"
  "liblogfs_workload.a"
  "liblogfs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logfs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
