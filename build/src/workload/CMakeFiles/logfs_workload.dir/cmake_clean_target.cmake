file(REMOVE_RECURSE
  "liblogfs_workload.a"
)
