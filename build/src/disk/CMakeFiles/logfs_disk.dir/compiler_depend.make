# Empty compiler generated dependencies file for logfs_disk.
# This may be replaced when dependencies are built.
