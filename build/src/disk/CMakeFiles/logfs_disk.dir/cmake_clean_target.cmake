file(REMOVE_RECURSE
  "liblogfs_disk.a"
)
