file(REMOVE_RECURSE
  "CMakeFiles/logfs_disk.dir/fault_disk.cc.o"
  "CMakeFiles/logfs_disk.dir/fault_disk.cc.o.d"
  "CMakeFiles/logfs_disk.dir/memory_disk.cc.o"
  "CMakeFiles/logfs_disk.dir/memory_disk.cc.o.d"
  "CMakeFiles/logfs_disk.dir/striped_disk.cc.o"
  "CMakeFiles/logfs_disk.dir/striped_disk.cc.o.d"
  "CMakeFiles/logfs_disk.dir/tracing_disk.cc.o"
  "CMakeFiles/logfs_disk.dir/tracing_disk.cc.o.d"
  "liblogfs_disk.a"
  "liblogfs_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logfs_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
