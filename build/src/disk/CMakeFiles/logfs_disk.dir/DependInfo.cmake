
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/disk/fault_disk.cc" "src/disk/CMakeFiles/logfs_disk.dir/fault_disk.cc.o" "gcc" "src/disk/CMakeFiles/logfs_disk.dir/fault_disk.cc.o.d"
  "/root/repo/src/disk/memory_disk.cc" "src/disk/CMakeFiles/logfs_disk.dir/memory_disk.cc.o" "gcc" "src/disk/CMakeFiles/logfs_disk.dir/memory_disk.cc.o.d"
  "/root/repo/src/disk/striped_disk.cc" "src/disk/CMakeFiles/logfs_disk.dir/striped_disk.cc.o" "gcc" "src/disk/CMakeFiles/logfs_disk.dir/striped_disk.cc.o.d"
  "/root/repo/src/disk/tracing_disk.cc" "src/disk/CMakeFiles/logfs_disk.dir/tracing_disk.cc.o" "gcc" "src/disk/CMakeFiles/logfs_disk.dir/tracing_disk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/logfs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/logfs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
