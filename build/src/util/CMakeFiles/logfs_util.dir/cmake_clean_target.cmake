file(REMOVE_RECURSE
  "liblogfs_util.a"
)
