# Empty compiler generated dependencies file for logfs_util.
# This may be replaced when dependencies are built.
