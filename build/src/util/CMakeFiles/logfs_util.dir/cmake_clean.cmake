file(REMOVE_RECURSE
  "CMakeFiles/logfs_util.dir/crc32.cc.o"
  "CMakeFiles/logfs_util.dir/crc32.cc.o.d"
  "CMakeFiles/logfs_util.dir/logging.cc.o"
  "CMakeFiles/logfs_util.dir/logging.cc.o.d"
  "CMakeFiles/logfs_util.dir/rng.cc.o"
  "CMakeFiles/logfs_util.dir/rng.cc.o.d"
  "CMakeFiles/logfs_util.dir/serializer.cc.o"
  "CMakeFiles/logfs_util.dir/serializer.cc.o.d"
  "CMakeFiles/logfs_util.dir/status.cc.o"
  "CMakeFiles/logfs_util.dir/status.cc.o.d"
  "liblogfs_util.a"
  "liblogfs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logfs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
