# Empty compiler generated dependencies file for logfs_sim.
# This may be replaced when dependencies are built.
