file(REMOVE_RECURSE
  "liblogfs_sim.a"
)
