file(REMOVE_RECURSE
  "CMakeFiles/logfs_sim.dir/disk_model.cc.o"
  "CMakeFiles/logfs_sim.dir/disk_model.cc.o.d"
  "liblogfs_sim.a"
  "liblogfs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logfs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
