# Empty dependencies file for logfs_lfs.
# This may be replaced when dependencies are built.
