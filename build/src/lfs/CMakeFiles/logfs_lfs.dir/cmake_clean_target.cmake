file(REMOVE_RECURSE
  "liblogfs_lfs.a"
)
