
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lfs/lfs_blocks.cc" "src/lfs/CMakeFiles/logfs_lfs.dir/lfs_blocks.cc.o" "gcc" "src/lfs/CMakeFiles/logfs_lfs.dir/lfs_blocks.cc.o.d"
  "/root/repo/src/lfs/lfs_check.cc" "src/lfs/CMakeFiles/logfs_lfs.dir/lfs_check.cc.o" "gcc" "src/lfs/CMakeFiles/logfs_lfs.dir/lfs_check.cc.o.d"
  "/root/repo/src/lfs/lfs_cleaner.cc" "src/lfs/CMakeFiles/logfs_lfs.dir/lfs_cleaner.cc.o" "gcc" "src/lfs/CMakeFiles/logfs_lfs.dir/lfs_cleaner.cc.o.d"
  "/root/repo/src/lfs/lfs_file_system.cc" "src/lfs/CMakeFiles/logfs_lfs.dir/lfs_file_system.cc.o" "gcc" "src/lfs/CMakeFiles/logfs_lfs.dir/lfs_file_system.cc.o.d"
  "/root/repo/src/lfs/lfs_file_system_ops.cc" "src/lfs/CMakeFiles/logfs_lfs.dir/lfs_file_system_ops.cc.o" "gcc" "src/lfs/CMakeFiles/logfs_lfs.dir/lfs_file_system_ops.cc.o.d"
  "/root/repo/src/lfs/lfs_format.cc" "src/lfs/CMakeFiles/logfs_lfs.dir/lfs_format.cc.o" "gcc" "src/lfs/CMakeFiles/logfs_lfs.dir/lfs_format.cc.o.d"
  "/root/repo/src/lfs/lfs_inode_map.cc" "src/lfs/CMakeFiles/logfs_lfs.dir/lfs_inode_map.cc.o" "gcc" "src/lfs/CMakeFiles/logfs_lfs.dir/lfs_inode_map.cc.o.d"
  "/root/repo/src/lfs/lfs_seg_usage.cc" "src/lfs/CMakeFiles/logfs_lfs.dir/lfs_seg_usage.cc.o" "gcc" "src/lfs/CMakeFiles/logfs_lfs.dir/lfs_seg_usage.cc.o.d"
  "/root/repo/src/lfs/lfs_segment.cc" "src/lfs/CMakeFiles/logfs_lfs.dir/lfs_segment.cc.o" "gcc" "src/lfs/CMakeFiles/logfs_lfs.dir/lfs_segment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/logfs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/logfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/logfs_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/logfs_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/fsbase/CMakeFiles/logfs_fsbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
