file(REMOVE_RECURSE
  "CMakeFiles/logfs_lfs.dir/lfs_blocks.cc.o"
  "CMakeFiles/logfs_lfs.dir/lfs_blocks.cc.o.d"
  "CMakeFiles/logfs_lfs.dir/lfs_check.cc.o"
  "CMakeFiles/logfs_lfs.dir/lfs_check.cc.o.d"
  "CMakeFiles/logfs_lfs.dir/lfs_cleaner.cc.o"
  "CMakeFiles/logfs_lfs.dir/lfs_cleaner.cc.o.d"
  "CMakeFiles/logfs_lfs.dir/lfs_file_system.cc.o"
  "CMakeFiles/logfs_lfs.dir/lfs_file_system.cc.o.d"
  "CMakeFiles/logfs_lfs.dir/lfs_file_system_ops.cc.o"
  "CMakeFiles/logfs_lfs.dir/lfs_file_system_ops.cc.o.d"
  "CMakeFiles/logfs_lfs.dir/lfs_format.cc.o"
  "CMakeFiles/logfs_lfs.dir/lfs_format.cc.o.d"
  "CMakeFiles/logfs_lfs.dir/lfs_inode_map.cc.o"
  "CMakeFiles/logfs_lfs.dir/lfs_inode_map.cc.o.d"
  "CMakeFiles/logfs_lfs.dir/lfs_seg_usage.cc.o"
  "CMakeFiles/logfs_lfs.dir/lfs_seg_usage.cc.o.d"
  "CMakeFiles/logfs_lfs.dir/lfs_segment.cc.o"
  "CMakeFiles/logfs_lfs.dir/lfs_segment.cc.o.d"
  "liblogfs_lfs.a"
  "liblogfs_lfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logfs_lfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
