# Empty compiler generated dependencies file for logfs_fsbase.
# This may be replaced when dependencies are built.
