
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsbase/dirent.cc" "src/fsbase/CMakeFiles/logfs_fsbase.dir/dirent.cc.o" "gcc" "src/fsbase/CMakeFiles/logfs_fsbase.dir/dirent.cc.o.d"
  "/root/repo/src/fsbase/file_system.cc" "src/fsbase/CMakeFiles/logfs_fsbase.dir/file_system.cc.o" "gcc" "src/fsbase/CMakeFiles/logfs_fsbase.dir/file_system.cc.o.d"
  "/root/repo/src/fsbase/inode.cc" "src/fsbase/CMakeFiles/logfs_fsbase.dir/inode.cc.o" "gcc" "src/fsbase/CMakeFiles/logfs_fsbase.dir/inode.cc.o.d"
  "/root/repo/src/fsbase/path.cc" "src/fsbase/CMakeFiles/logfs_fsbase.dir/path.cc.o" "gcc" "src/fsbase/CMakeFiles/logfs_fsbase.dir/path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/logfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
