file(REMOVE_RECURSE
  "liblogfs_fsbase.a"
)
