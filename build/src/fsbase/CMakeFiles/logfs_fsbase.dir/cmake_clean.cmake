file(REMOVE_RECURSE
  "CMakeFiles/logfs_fsbase.dir/dirent.cc.o"
  "CMakeFiles/logfs_fsbase.dir/dirent.cc.o.d"
  "CMakeFiles/logfs_fsbase.dir/file_system.cc.o"
  "CMakeFiles/logfs_fsbase.dir/file_system.cc.o.d"
  "CMakeFiles/logfs_fsbase.dir/inode.cc.o"
  "CMakeFiles/logfs_fsbase.dir/inode.cc.o.d"
  "CMakeFiles/logfs_fsbase.dir/path.cc.o"
  "CMakeFiles/logfs_fsbase.dir/path.cc.o.d"
  "liblogfs_fsbase.a"
  "liblogfs_fsbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logfs_fsbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
