# CMake generated Testfile for 
# Source directory: /root/repo/src/fsbase
# Build directory: /root/repo/build/src/fsbase
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
