// Cross-file-system conformance suite: the same behavioural contract,
// executed against both FfsFileSystem and LfsFileSystem through the shared
// FileSystem interface. Anything here is semantics both systems must agree
// on — the paper's claim that LFS supports "the full UNIX file system
// semantics" is what this suite pins down.
#include <gtest/gtest.h>

#include "tests/fs_fixture.h"

namespace logfs {
namespace {

template <typename Instance>
class ConformanceTest : public ::testing::Test {
 protected:
  Instance inst_;
};

using Implementations = ::testing::Types<FfsInstance, LfsInstance>;

class ImplementationNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    if constexpr (std::is_same_v<T, FfsInstance>) {
      return "FFS";
    } else {
      return "LFS";
    }
  }
};

TYPED_TEST_SUITE(ConformanceTest, Implementations, ImplementationNames);

TYPED_TEST(ConformanceTest, RootIsADirectoryWithDotEntries) {
  auto& inst = this->inst_;
  auto entries = inst.fs->ReadDir(kRootIno);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  bool dot = false;
  bool dotdot = false;
  for (const auto& entry : *entries) {
    dot |= entry.name == "." && entry.ino == kRootIno;
    dotdot |= entry.name == ".." && entry.ino == kRootIno;
  }
  EXPECT_TRUE(dot);
  EXPECT_TRUE(dotdot);
}

TYPED_TEST(ConformanceTest, LookupErrors) {
  auto& inst = this->inst_;
  EXPECT_EQ(inst.fs->Lookup(kRootIno, "missing").status().code(), ErrorCode::kNotFound);
  auto file = inst.paths->CreateFile("/f");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(inst.fs->Lookup(*file, "x").status().code(), ErrorCode::kNotDirectory);
  EXPECT_FALSE(inst.fs->Lookup(0, "x").ok());
  EXPECT_FALSE(inst.fs->Lookup(999999, "x").ok());
}

TYPED_TEST(ConformanceTest, CreateErrors) {
  auto& inst = this->inst_;
  ASSERT_TRUE(inst.paths->CreateFile("/f").ok());
  EXPECT_EQ(inst.fs->Create(kRootIno, "f", FileType::kRegular).status().code(),
            ErrorCode::kExists);
  auto file = inst.paths->Resolve("/f");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(inst.fs->Create(*file, "x", FileType::kRegular).status().code(),
            ErrorCode::kNotDirectory);
  std::string long_name(kMaxNameLen + 1, 'a');
  EXPECT_EQ(inst.fs->Create(kRootIno, long_name, FileType::kRegular).status().code(),
            ErrorCode::kNameTooLong);
}

TYPED_TEST(ConformanceTest, WriteThenReadBackExactBytes) {
  auto& inst = this->inst_;
  for (size_t size : {1u, 100u, 4096u, 8192u, 10000u, 100000u}) {
    const std::string name = "/size_" + std::to_string(size);
    auto data = TestBytes(size, size);
    ASSERT_TRUE(inst.paths->WriteFile(name, data).ok());
    auto back = inst.paths->ReadFile(name);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, data) << name;
  }
}

TYPED_TEST(ConformanceTest, ReadBeyondEofReturnsShortCount) {
  auto& inst = this->inst_;
  ASSERT_TRUE(inst.paths->WriteFile("/f", TestBytes(100, 1)).ok());
  auto ino = inst.paths->Resolve("/f");
  ASSERT_TRUE(ino.ok());
  std::vector<std::byte> buffer(1000);
  auto n = inst.fs->Read(*ino, 50, buffer);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 50u);
  n = inst.fs->Read(*ino, 100, buffer);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
  n = inst.fs->Read(*ino, 5000, buffer);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TYPED_TEST(ConformanceTest, UnalignedOverwriteAcrossBlocks) {
  auto& inst = this->inst_;
  auto base = TestBytes(50000, 1);
  ASSERT_TRUE(inst.paths->WriteFile("/f", base).ok());
  auto ino = inst.paths->Resolve("/f");
  ASSERT_TRUE(ino.ok());
  auto patch = TestBytes(10000, 2);
  ASSERT_TRUE(inst.fs->Write(*ino, 3000, patch).ok());
  std::copy(patch.begin(), patch.end(), base.begin() + 3000);
  auto back = inst.paths->ReadFile("/f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, base);
}

TYPED_TEST(ConformanceTest, AppendGrowsFile) {
  auto& inst = this->inst_;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(inst.paths->AppendFile("/log", TestBytes(3000, i)).ok());
  }
  auto stat = inst.paths->Stat("/log");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->size, 30000u);
  auto back = inst.paths->ReadFile("/log");
  ASSERT_TRUE(back.ok());
  for (int i = 0; i < 10; ++i) {
    auto expected = TestBytes(3000, i);
    EXPECT_TRUE(std::equal(expected.begin(), expected.end(), back->begin() + i * 3000)) << i;
  }
}

TYPED_TEST(ConformanceTest, HolesReadAsZeros) {
  auto& inst = this->inst_;
  auto ino = inst.paths->CreateFile("/sparse");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(inst.fs->Write(*ino, 200000, TestBytes(10, 1)).ok());
  std::vector<std::byte> buffer(65536);
  auto n = inst.fs->Read(*ino, 10000, buffer);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, buffer.size());
  for (std::byte b : buffer) {
    ASSERT_EQ(b, std::byte{0});
  }
}

TYPED_TEST(ConformanceTest, TruncateUpAndDown) {
  auto& inst = this->inst_;
  ASSERT_TRUE(inst.paths->WriteFile("/f", TestBytes(20000, 1)).ok());
  auto ino = inst.paths->Resolve("/f");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(inst.fs->Truncate(*ino, 7777).ok());
  auto back = inst.paths->ReadFile("/f");
  ASSERT_TRUE(back.ok());
  auto expected = TestBytes(20000, 1);
  expected.resize(7777);
  EXPECT_EQ(*back, expected);
  ASSERT_TRUE(inst.fs->Truncate(*ino, 40000).ok());
  back = inst.paths->ReadFile("/f");
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 40000u);
  expected.resize(40000, std::byte{0});
  EXPECT_EQ(*back, expected);
}

TYPED_TEST(ConformanceTest, DirectoryLifecycle) {
  auto& inst = this->inst_;
  ASSERT_TRUE(inst.paths->MkdirAll("/a/b/c").ok());
  ASSERT_TRUE(inst.paths->WriteFile("/a/b/c/f", TestBytes(100, 1)).ok());
  EXPECT_EQ(inst.paths->Rmdir("/a/b").code(), ErrorCode::kNotEmpty);
  EXPECT_EQ(inst.paths->Rmdir("/a/b/c").code(), ErrorCode::kNotEmpty);
  ASSERT_TRUE(inst.paths->Unlink("/a/b/c/f").ok());
  ASSERT_TRUE(inst.paths->Rmdir("/a/b/c").ok());
  ASSERT_TRUE(inst.paths->Rmdir("/a/b").ok());
  ASSERT_TRUE(inst.paths->Rmdir("/a").ok());
  auto entries = inst.fs->ReadDir(kRootIno);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
}

TYPED_TEST(ConformanceTest, RmdirOfFileAndUnlinkOfDirRejected) {
  auto& inst = this->inst_;
  ASSERT_TRUE(inst.paths->CreateFile("/f").ok());
  ASSERT_TRUE(inst.paths->Mkdir("/d").ok());
  EXPECT_EQ(inst.paths->Rmdir("/f").code(), ErrorCode::kNotDirectory);
  EXPECT_EQ(inst.paths->Unlink("/d").code(), ErrorCode::kIsDirectory);
}

TYPED_TEST(ConformanceTest, ManyEntriesForceDirectoryGrowth) {
  auto& inst = this->inst_;
  // Enough names to overflow several directory blocks.
  const int count = 600;
  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(
        inst.fs->Create(kRootIno, "entry_with_a_longish_name_" + std::to_string(i),
                        FileType::kRegular)
            .ok())
        << i;
  }
  auto entries = inst.fs->ReadDir(kRootIno);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), static_cast<size_t>(count) + 2);
  // Spot-check lookups.
  for (int i = 0; i < count; i += 37) {
    EXPECT_TRUE(
        inst.fs->Lookup(kRootIno, "entry_with_a_longish_name_" + std::to_string(i)).ok());
  }
  // Delete all and confirm the directory still works.
  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(
        inst.fs->Unlink(kRootIno, "entry_with_a_longish_name_" + std::to_string(i)).ok());
  }
  EXPECT_TRUE(inst.paths->CreateFile("/fresh").ok());
}

TYPED_TEST(ConformanceTest, LinkCountsAcrossRenameAndUnlink) {
  auto& inst = this->inst_;
  ASSERT_TRUE(inst.paths->WriteFile("/a", TestBytes(100, 1)).ok());
  auto ino = inst.paths->Resolve("/a");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(inst.fs->Link(kRootIno, "b", *ino).ok());
  ASSERT_TRUE(inst.fs->Link(kRootIno, "c", *ino).ok());
  auto stat = inst.fs->Stat(*ino);
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->nlink, 3);
  ASSERT_TRUE(inst.paths->Rename("/b", "/renamed").ok());
  stat = inst.fs->Stat(*ino);
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->nlink, 3);
  ASSERT_TRUE(inst.paths->Unlink("/a").ok());
  ASSERT_TRUE(inst.paths->Unlink("/c").ok());
  stat = inst.fs->Stat(*ino);
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->nlink, 1);
  auto back = inst.paths->ReadFile("/renamed");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, TestBytes(100, 1));
}

TYPED_TEST(ConformanceTest, RenameOntoSelfIsNoOp) {
  auto& inst = this->inst_;
  ASSERT_TRUE(inst.paths->WriteFile("/f", TestBytes(10, 1)).ok());
  ASSERT_TRUE(inst.paths->Rename("/f", "/f").ok());
  EXPECT_TRUE(inst.paths->Exists("/f"));
}

TYPED_TEST(ConformanceTest, SyncThenDropCachesPreservesEverything) {
  auto& inst = this->inst_;
  ASSERT_TRUE(inst.paths->MkdirAll("/deep/tree").ok());
  ASSERT_TRUE(inst.paths->WriteFile("/deep/tree/f1", TestBytes(12345, 1)).ok());
  ASSERT_TRUE(inst.paths->WriteFile("/deep/tree/f2", TestBytes(54321, 2)).ok());
  ASSERT_TRUE(inst.fs->Sync().ok());
  ASSERT_TRUE(inst.fs->DropCaches().ok());
  auto f1 = inst.paths->ReadFile("/deep/tree/f1");
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(*f1, TestBytes(12345, 1));
  auto f2 = inst.paths->ReadFile("/deep/tree/f2");
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(*f2, TestBytes(54321, 2));
}

TYPED_TEST(ConformanceTest, StatReflectsWrites) {
  auto& inst = this->inst_;
  inst.clock->Advance(5.0);
  ASSERT_TRUE(inst.paths->WriteFile("/f", TestBytes(9999, 1)).ok());
  auto stat = inst.paths->Stat("/f");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->type, FileType::kRegular);
  EXPECT_EQ(stat->size, 9999u);
  EXPECT_EQ(stat->nlink, 1);
  EXPECT_GE(stat->mtime, 5.0);
}

TYPED_TEST(ConformanceTest, WritesToDirectoriesRejected) {
  auto& inst = this->inst_;
  ASSERT_TRUE(inst.paths->Mkdir("/d").ok());
  auto dir = inst.paths->Resolve("/d");
  ASSERT_TRUE(dir.ok());
  std::vector<std::byte> buffer(100);
  EXPECT_EQ(inst.fs->Write(*dir, 0, buffer).status().code(), ErrorCode::kIsDirectory);
  EXPECT_EQ(inst.fs->Read(*dir, 0, buffer).status().code(), ErrorCode::kIsDirectory);
  EXPECT_EQ(inst.fs->Truncate(*dir, 0).code(), ErrorCode::kIsDirectory);
}

TYPED_TEST(ConformanceTest, MaxLengthNamesWork) {
  auto& inst = this->inst_;
  const std::string name(kMaxNameLen, 'n');
  auto ino = inst.fs->Create(kRootIno, name, FileType::kRegular);
  ASSERT_TRUE(ino.ok());
  auto found = inst.fs->Lookup(kRootIno, name);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *ino);
  ASSERT_TRUE(inst.fs->Unlink(kRootIno, name).ok());
}

TYPED_TEST(ConformanceTest, DeepDirectoryTree) {
  auto& inst = this->inst_;
  std::string path;
  for (int depth = 0; depth < 24; ++depth) {
    path += "/d" + std::to_string(depth);
    ASSERT_TRUE(inst.paths->Mkdir(path).ok()) << path;
  }
  ASSERT_TRUE(inst.paths->WriteFile(path + "/leaf", TestBytes(100, 1)).ok());
  ASSERT_TRUE(inst.fs->Sync().ok());
  ASSERT_TRUE(inst.fs->DropCaches().ok());
  auto back = inst.paths->ReadFile(path + "/leaf");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 100u);
  // Tear it back down from the leaf.
  ASSERT_TRUE(inst.paths->Unlink(path + "/leaf").ok());
  for (int depth = 23; depth >= 0; --depth) {
    ASSERT_TRUE(inst.paths->Rmdir(path).ok()) << path;
    const size_t cut = path.rfind('/');
    path.resize(cut);
  }
}

TYPED_TEST(ConformanceTest, ReadDirOfFileRejected) {
  auto& inst = this->inst_;
  auto ino = inst.paths->CreateFile("/f");
  ASSERT_TRUE(ino.ok());
  EXPECT_EQ(inst.fs->ReadDir(*ino).status().code(), ErrorCode::kNotDirectory);
}

TYPED_TEST(ConformanceTest, StatOfInvalidInodeFails) {
  auto& inst = this->inst_;
  EXPECT_FALSE(inst.fs->Stat(0).ok());
  EXPECT_FALSE(inst.fs->Stat(99999999).ok());
  // A freed inode's number stops resolving.
  auto ino = inst.paths->CreateFile("/gone");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(inst.paths->Unlink("/gone").ok());
  EXPECT_FALSE(inst.fs->Stat(*ino).ok());
}

TYPED_TEST(ConformanceTest, ZeroByteFilesRoundTrip) {
  auto& inst = this->inst_;
  ASSERT_TRUE(inst.paths->CreateFile("/empty").ok());
  ASSERT_TRUE(inst.fs->Sync().ok());
  ASSERT_TRUE(inst.fs->DropCaches().ok());
  auto stat = inst.paths->Stat("/empty");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->size, 0u);
  auto back = inst.paths->ReadFile("/empty");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TYPED_TEST(ConformanceTest, ZeroLengthWriteIsANoOp) {
  auto& inst = this->inst_;
  auto ino = inst.paths->CreateFile("/f");
  ASSERT_TRUE(ino.ok());
  auto n = inst.fs->Write(*ino, 0, std::span<const std::byte>{});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
  auto stat = inst.fs->Stat(*ino);
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->size, 0u);
}

TYPED_TEST(ConformanceTest, SymlinkRoundTrip) {
  auto& inst = this->inst_;
  auto link = inst.paths->Symlink("/link", "/some/target/path");
  ASSERT_TRUE(link.ok());
  auto target = inst.paths->Readlink("/link");
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(*target, "/some/target/path");
  auto stat = inst.paths->Stat("/link");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->type, FileType::kSymlink);
  // Readlink of a regular file is rejected.
  ASSERT_TRUE(inst.paths->CreateFile("/plain").ok());
  EXPECT_FALSE(inst.paths->Readlink("/plain").ok());
  // Links can be renamed and unlinked like files.
  ASSERT_TRUE(inst.paths->Rename("/link", "/moved_link").ok());
  auto moved = inst.paths->Readlink("/moved_link");
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, "/some/target/path");
  ASSERT_TRUE(inst.paths->Unlink("/moved_link").ok());
  EXPECT_FALSE(inst.paths->Exists("/moved_link"));
}

TYPED_TEST(ConformanceTest, SymlinkSurvivesSyncAndCacheDrop) {
  auto& inst = this->inst_;
  ASSERT_TRUE(inst.paths->Symlink("/durable_link", "relative/target").ok());
  ASSERT_TRUE(inst.fs->Sync().ok());
  ASSERT_TRUE(inst.fs->DropCaches().ok());
  auto target = inst.paths->Readlink("/durable_link");
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(*target, "relative/target");
}

TYPED_TEST(ConformanceTest, SymlinkRejectsBadTargets) {
  auto& inst = this->inst_;
  EXPECT_FALSE(inst.paths->Symlink("/bad", "").ok());
  EXPECT_FALSE(inst.paths->Symlink("/bad", std::string(5000, 'x')).ok());
}

TYPED_TEST(ConformanceTest, TickIsAlwaysSafe) {
  auto& inst = this->inst_;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(inst.paths->WriteFile("/f" + std::to_string(i), TestBytes(5000, i)).ok());
    inst.clock->Advance(40.0);
    ASSERT_TRUE(inst.fs->Tick().ok());
  }
  for (int i = 0; i < 5; ++i) {
    auto back = inst.paths->ReadFile("/f" + std::to_string(i));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, TestBytes(5000, i));
  }
}

}  // namespace
}  // namespace logfs
