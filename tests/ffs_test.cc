// FFS-specific tests: format/mount, allocation, synchronous-write policy,
// persistence across remount.
#include <gtest/gtest.h>

#include "src/disk/tracing_disk.h"
#include "tests/fs_fixture.h"

namespace logfs {
namespace {

TEST(FfsFormatTest, RejectsBadParams) {
  SimClock clock;
  MemoryDisk disk(70000, &clock);
  FfsParams params;
  params.block_size = 1000;  // Not sector aligned.
  EXPECT_FALSE(FfsFileSystem::Format(&disk, params).ok());
  params = FfsParams{};
  params.inodes_per_group = 13;  // Not a multiple of 8.
  EXPECT_FALSE(FfsFileSystem::Format(&disk, params).ok());
}

TEST(FfsFormatTest, RejectsTinyDevice) {
  SimClock clock;
  MemoryDisk disk(100, &clock);
  EXPECT_FALSE(FfsFileSystem::Format(&disk, FfsParams{}).ok());
}

TEST(FfsFormatTest, MountFailsOnUnformattedDisk) {
  SimClock clock;
  MemoryDisk disk(70000, &clock);
  EXPECT_FALSE(FfsFileSystem::Mount(&disk, &clock, nullptr).ok());
}

TEST(FfsTest, RootDirectoryExists) {
  FfsInstance inst;
  auto stat = inst.fs->Stat(kRootIno);
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->type, FileType::kDirectory);
  EXPECT_EQ(stat->nlink, 2);
  auto entries = inst.fs->ReadDir(kRootIno);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);  // "." and "..".
}

TEST(FfsTest, CreateLookupRoundTrip) {
  FfsInstance inst;
  auto ino = inst.fs->Create(kRootIno, "hello", FileType::kRegular);
  ASSERT_TRUE(ino.ok());
  auto found = inst.fs->Lookup(kRootIno, "hello");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *ino);
  EXPECT_EQ(inst.fs->Lookup(kRootIno, "nonesuch").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(inst.fs->Create(kRootIno, "hello", FileType::kRegular).status().code(),
            ErrorCode::kExists);
}

TEST(FfsTest, WriteReadSmallFile) {
  FfsInstance inst;
  auto data = TestBytes(1000, 42);
  ASSERT_TRUE(inst.paths->WriteFile("/f", data).ok());
  auto back = inst.paths->ReadFile("/f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(FfsTest, WriteReadAfterCacheDrop) {
  FfsInstance inst;
  auto data = TestBytes(20000, 1);
  ASSERT_TRUE(inst.paths->WriteFile("/f", data).ok());
  ASSERT_TRUE(inst.fs->Sync().ok());
  ASSERT_TRUE(inst.fs->DropCaches().ok());
  auto back = inst.paths->ReadFile("/f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(FfsTest, LargeFileThroughIndirectBlocks) {
  // > 12 * 8 KB = 96 KB forces single-indirect blocks; use 2 MB.
  FfsInstance inst(600000);
  auto data = TestBytes(2 << 20, 3);
  ASSERT_TRUE(inst.paths->WriteFile("/big", data).ok());
  ASSERT_TRUE(inst.fs->Sync().ok());
  ASSERT_TRUE(inst.fs->DropCaches().ok());
  auto back = inst.paths->ReadFile("/big");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(FfsTest, SparseFileReadsZeros) {
  FfsInstance inst;
  auto ino = inst.fs->Create(kRootIno, "sparse", FileType::kRegular);
  ASSERT_TRUE(ino.ok());
  auto data = TestBytes(100, 9);
  ASSERT_TRUE(inst.fs->Write(*ino, 100000, data).ok());
  auto stat = inst.fs->Stat(*ino);
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->size, 100100u);
  std::vector<std::byte> hole(512);
  auto n = inst.fs->Read(*ino, 50000, hole);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 512u);
  for (std::byte b : hole) {
    EXPECT_EQ(b, std::byte{0});
  }
}

TEST(FfsTest, OverwriteInPlaceKeepsSize) {
  FfsInstance inst;
  ASSERT_TRUE(inst.paths->WriteFile("/f", TestBytes(8192, 1)).ok());
  auto ino = inst.paths->Resolve("/f");
  ASSERT_TRUE(ino.ok());
  auto patch = TestBytes(100, 2);
  ASSERT_TRUE(inst.fs->Write(*ino, 1000, patch).ok());
  auto stat = inst.fs->Stat(*ino);
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->size, 8192u);
  auto back = inst.paths->ReadFile("/f");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(std::equal(patch.begin(), patch.end(), back->begin() + 1000));
}

TEST(FfsTest, TruncateShrinkAndRegrow) {
  FfsInstance inst;
  auto data = TestBytes(30000, 5);
  ASSERT_TRUE(inst.paths->WriteFile("/f", data).ok());
  auto ino = inst.paths->Resolve("/f");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(inst.fs->Truncate(*ino, 10000).ok());
  auto stat = inst.fs->Stat(*ino);
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->size, 10000u);
  // Regrow: the tail must read as zeros, not stale data.
  ASSERT_TRUE(inst.fs->Truncate(*ino, 20000).ok());
  std::vector<std::byte> tail(5000);
  auto n = inst.fs->Read(*ino, 12000, tail);
  ASSERT_TRUE(n.ok());
  for (std::byte b : tail) {
    EXPECT_EQ(b, std::byte{0});
  }
}

TEST(FfsTest, UnlinkFreesSpace) {
  FfsInstance inst;
  const uint64_t free_before = inst.fs->FreeBlockCount();
  ASSERT_TRUE(inst.paths->WriteFile("/f", TestBytes(200000, 1)).ok());
  ASSERT_TRUE(inst.fs->Sync().ok());
  EXPECT_LT(inst.fs->FreeBlockCount(), free_before);
  ASSERT_TRUE(inst.paths->Unlink("/f").ok());
  EXPECT_EQ(inst.fs->FreeBlockCount(), free_before);
  EXPECT_FALSE(inst.paths->Exists("/f"));
}

TEST(FfsTest, UnlinkOfDirectoryRejected) {
  FfsInstance inst;
  ASSERT_TRUE(inst.paths->Mkdir("/d").ok());
  EXPECT_EQ(inst.paths->Unlink("/d").code(), ErrorCode::kIsDirectory);
}

TEST(FfsTest, MkdirRmdir) {
  FfsInstance inst;
  ASSERT_TRUE(inst.paths->Mkdir("/d").ok());
  auto stat = inst.paths->Stat("/d");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->type, FileType::kDirectory);
  EXPECT_EQ(stat->nlink, 2);
  // Parent gained a link from "..".
  auto root_stat = inst.fs->Stat(kRootIno);
  ASSERT_TRUE(root_stat.ok());
  EXPECT_EQ(root_stat->nlink, 3);
  // Non-empty directories cannot be removed.
  ASSERT_TRUE(inst.paths->CreateFile("/d/f").ok());
  EXPECT_EQ(inst.paths->Rmdir("/d").code(), ErrorCode::kNotEmpty);
  ASSERT_TRUE(inst.paths->Unlink("/d/f").ok());
  ASSERT_TRUE(inst.paths->Rmdir("/d").ok());
  EXPECT_FALSE(inst.paths->Exists("/d"));
  root_stat = inst.fs->Stat(kRootIno);
  ASSERT_TRUE(root_stat.ok());
  EXPECT_EQ(root_stat->nlink, 2);
}

TEST(FfsTest, NestedPathsAndDotDot) {
  FfsInstance inst;
  ASSERT_TRUE(inst.paths->MkdirAll("/a/b/c").ok());
  ASSERT_TRUE(inst.paths->WriteFile("/a/b/c/f", TestBytes(10, 0)).ok());
  auto via_dotdot = inst.paths->Resolve("/a/b/c/../c/f");
  ASSERT_TRUE(via_dotdot.ok());
  auto direct = inst.paths->Resolve("/a/b/c/f");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*via_dotdot, *direct);
}

TEST(FfsTest, HardLinkSharesInode) {
  FfsInstance inst;
  ASSERT_TRUE(inst.paths->WriteFile("/orig", TestBytes(100, 7)).ok());
  auto ino = inst.paths->Resolve("/orig");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(inst.fs->Link(kRootIno, "alias", *ino).ok());
  auto alias = inst.paths->Resolve("/alias");
  ASSERT_TRUE(alias.ok());
  EXPECT_EQ(*alias, *ino);
  auto stat = inst.fs->Stat(*ino);
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->nlink, 2);
  // Deleting one name keeps the data alive.
  ASSERT_TRUE(inst.paths->Unlink("/orig").ok());
  auto back = inst.paths->ReadFile("/alias");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 100u);
  ASSERT_TRUE(inst.paths->Unlink("/alias").ok());
}

TEST(FfsTest, RenameSimple) {
  FfsInstance inst;
  ASSERT_TRUE(inst.paths->WriteFile("/old", TestBytes(50, 1)).ok());
  ASSERT_TRUE(inst.paths->Rename("/old", "/new").ok());
  EXPECT_FALSE(inst.paths->Exists("/old"));
  auto back = inst.paths->ReadFile("/new");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 50u);
}

TEST(FfsTest, RenameAcrossDirectoriesMovesDotDot) {
  FfsInstance inst;
  ASSERT_TRUE(inst.paths->Mkdir("/src").ok());
  ASSERT_TRUE(inst.paths->Mkdir("/dst").ok());
  ASSERT_TRUE(inst.paths->Mkdir("/src/child").ok());
  ASSERT_TRUE(inst.paths->Rename("/src/child", "/dst/child").ok());
  auto parent = inst.paths->Resolve("/dst/child/..");
  ASSERT_TRUE(parent.ok());
  auto dst = inst.paths->Resolve("/dst");
  ASSERT_TRUE(dst.ok());
  EXPECT_EQ(*parent, *dst);
  // nlink moved with the child.
  auto src_stat = inst.paths->Stat("/src");
  ASSERT_TRUE(src_stat.ok());
  EXPECT_EQ(src_stat->nlink, 2);
  auto dst_stat = inst.paths->Stat("/dst");
  ASSERT_TRUE(dst_stat.ok());
  EXPECT_EQ(dst_stat->nlink, 3);
}

TEST(FfsTest, RenameIntoOwnSubtreeRejected) {
  FfsInstance inst;
  ASSERT_TRUE(inst.paths->MkdirAll("/a/b").ok());
  EXPECT_EQ(inst.paths->Rename("/a", "/a/b/a").code(), ErrorCode::kInvalidArgument);
}

TEST(FfsTest, RenameReplacesExistingFile) {
  FfsInstance inst;
  ASSERT_TRUE(inst.paths->WriteFile("/a", TestBytes(10, 1)).ok());
  ASSERT_TRUE(inst.paths->WriteFile("/b", TestBytes(20, 2)).ok());
  ASSERT_TRUE(inst.paths->Rename("/a", "/b").ok());
  EXPECT_FALSE(inst.paths->Exists("/a"));
  auto back = inst.paths->ReadFile("/b");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 10u);
}

TEST(FfsTest, PersistsAcrossRemount) {
  FfsInstance inst;
  ASSERT_TRUE(inst.paths->MkdirAll("/dir1").ok());
  ASSERT_TRUE(inst.paths->WriteFile("/dir1/file", TestBytes(12345, 8)).ok());
  ASSERT_TRUE(inst.fs->Sync().ok());
  // Remount from the same disk image.
  auto remounted = FfsFileSystem::Mount(inst.disk.get(), inst.clock.get(), inst.cpu.get());
  ASSERT_TRUE(remounted.ok());
  PathFs paths(remounted->get());
  auto back = paths.ReadFile("/dir1/file");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, TestBytes(12345, 8));
  // Free counts must survive the round trip.
  EXPECT_EQ((*remounted)->FreeBlockCount(), inst.fs->FreeBlockCount());
  EXPECT_EQ((*remounted)->FreeInodeCount(), inst.fs->FreeInodeCount());
}

TEST(FfsTest, CreateUsesSynchronousWrites) {
  // The Figure 1 property: each small-file creation performs synchronous
  // metadata writes.
  SimClock clock;
  MemoryDisk inner(70000, &clock);
  ASSERT_TRUE(FfsFileSystem::Format(&inner, FfsParams{}).ok());
  TracingDisk traced(&inner, &clock);
  auto fs = FfsFileSystem::Mount(&traced, &clock, nullptr);
  ASSERT_TRUE(fs.ok());
  traced.ClearTrace();
  ASSERT_TRUE((*fs)->Create(kRootIno, "f1", FileType::kRegular).ok());
  EXPECT_GE(traced.SyncWriteRequestCount(), 2u);  // Inode block + dir block.
}

TEST(FfsTest, OutOfSpaceSurfacesNoSpace) {
  FfsInstance inst;  // ~34 MB.
  Status status = OkStatus();
  for (int i = 0; i < 100 && status.ok(); ++i) {
    status = inst.paths->WriteFile("/f" + std::to_string(i), TestBytes(1 << 20, i));
  }
  EXPECT_EQ(status.code(), ErrorCode::kNoSpace);
  // The file system remains usable after ENOSPC.
  ASSERT_TRUE(inst.paths->Unlink("/f0").ok());
  EXPECT_TRUE(inst.paths->WriteFile("/small", TestBytes(100, 0)).ok());
}

TEST(FfsTest, StatReportsTimes) {
  FfsInstance inst;
  inst.clock->Advance(100.0);
  ASSERT_TRUE(inst.paths->WriteFile("/f", TestBytes(10, 1)).ok());
  auto stat = inst.paths->Stat("/f");
  ASSERT_TRUE(stat.ok());
  EXPECT_GE(stat->mtime, 100.0);
  EXPECT_GE(stat->ctime, 100.0);
  inst.clock->Advance(50.0);
  auto ino = inst.paths->Resolve("/f");
  ASSERT_TRUE(ino.ok());
  std::vector<std::byte> buffer(10);
  ASSERT_TRUE(inst.fs->Read(*ino, 0, buffer).ok());
  stat = inst.paths->Stat("/f");
  ASSERT_TRUE(stat.ok());
  EXPECT_GT(stat->atime, stat->mtime);
}

TEST(FfsTest, ReadDirListsAllEntries) {
  FfsInstance inst;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(inst.paths->CreateFile("/file_" + std::to_string(i)).ok());
  }
  auto entries = inst.fs->ReadDir(kRootIno);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 52u);  // 50 files + "." + "..".
}

}  // namespace
}  // namespace logfs
