// End-to-end tracing structural tests: a seeded lossy multi-client run
// (drops force retransmits, two hot shared files force a recall storm) whose
// trace trees must satisfy the causal invariants by construction — one root
// per trace, an exact critical-path partition for every completed request,
// exactly one winning RPC attempt with the wasted-attempt counters to match,
// and park spans whose links name the trace that was actually blocking.
// A separate rig drives a sharded mount from real threads to pin down the
// shard-lock span shape, and a paired enabled/disabled run checks that the
// runtime gate changes nothing observable but the trace ring itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/disk/memory_disk.h"
#include "src/lfs/sharded_lfs.h"
#include "src/obs/critical_path.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_context.h"
#include "src/obs/tracer.h"
#include "src/serve/cluster.h"
#include "src/serve/driver.h"
#include "src/workload/serve_load.h"

namespace logfs {
namespace {

using obs::TraceEvent;

class ServeTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry().ResetAll();
    obs::Tracer().Clear();
    obs::SetTracingEnabled(true);
  }
  void TearDown() override { obs::SetTracingEnabled(true); }
};

const std::string* FindArg(const TraceEvent& ev, std::string_view key) {
  for (const auto& [k, v] : ev.args) {
    if (k == key) return &v;
  }
  return nullptr;
}

// The seeded scenario every serve-layer test here replays: three clients,
// two hot files, half writes — a steady stream of conflicting lease acquires
// — over a transport that drops `drop_probability` of all messages.
struct Scenario {
  std::unique_ptr<serve::ServeCluster> cluster;
  serve::DriveStats stats;
  std::vector<TraceEvent> events;
  std::vector<obs::TraceTree> trees;
};

void RunScenario(Scenario* s, double drop_probability) {
  obs::Tracer().Clear();
  serve::ServeClusterParams params;
  params.clients = 3;
  params.transport.drop_probability = drop_probability;
  auto cluster = serve::ServeCluster::Create(params);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  s->cluster = std::move(cluster).value();

  ServeLoadParams lp;
  lp.clients = 3;
  lp.files = 2;
  lp.ops_per_client = 40;
  lp.write_fraction = 0.5;
  lp.io_size = 2048;
  lp.mean_think_seconds = 0.005;
  lp.seed = 11;
  auto stats = serve::DriveSharedLoad(*s->cluster, MakeSharedLoad(lp));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  s->stats = *stats;
  EXPECT_EQ(s->stats.errors, 0u)
      << (s->stats.first_errors.empty() ? "" : s->stats.first_errors.front());
  EXPECT_EQ(s->cluster->shadow().violation_count(), 0u);

  s->events = obs::Tracer().Events();
  s->trees = obs::AssembleTraceTrees(s->events);
  EXPECT_EQ(obs::Tracer().dropped(), 0u) << "ring too small for the scenario";
}

TEST_F(ServeTraceTest, EveryCompletedRequestHasOneExactCriticalPath) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Scenario s;
  RunScenario(&s, 0.08);

  // Every trace has exactly one parentless span: the request's root.
  std::map<uint64_t, size_t> roots_per_trace;
  for (const TraceEvent& ev : s.events) {
    if (ev.kind != TraceEvent::Kind::kSpan || ev.trace_id == 0) continue;
    if (ev.parent_id == 0) ++roots_per_trace[ev.trace_id];
  }
  EXPECT_FALSE(roots_per_trace.empty());
  for (const auto& [trace, roots] : roots_per_trace) {
    EXPECT_EQ(roots, 1u) << "trace " << trace << " has " << roots << " roots";
  }

  // The sweep partitions: per-class seconds sum to the end-to-end latency
  // exactly, for EVERY tree (client ops and out-of-band revoke flushes).
  size_t serve_ops = 0;
  size_t with_retransmit = 0;
  size_t with_lease_wait = 0;
  for (const obs::TraceTree& tree : s.trees) {
    const obs::Breakdown b = obs::AnalyzeCriticalPath(tree);
    EXPECT_NEAR(b.Sum(), b.total_seconds, 1e-9)
        << "trace " << tree.trace_id << " (" << b.category << "/" << b.op << ")";
    EXPECT_GE(b.total_seconds, 0.0);
    if (b.category == "serve.op") ++serve_ops;
    if (b.seconds[static_cast<size_t>(obs::PathClass::kRetransmit)] > 0.0) {
      ++with_retransmit;
    }
    if (b.seconds[static_cast<size_t>(obs::PathClass::kLeaseWait)] > 0.0) {
      ++with_lease_wait;
    }
  }
  // Every driver op completed as exactly one traced request; the lazy
  // first-touch opens add more.
  EXPECT_GE(serve_ops, s.stats.ops_completed);
  // The scenario is lossy and write-shared, so both pathologies must show
  // up on some critical path.
  EXPECT_GT(with_retransmit, 0u);
  EXPECT_GT(with_lease_wait, 0u);
}

TEST_F(ServeTraceTest, ExactlyOneWinningAttemptPerRpc) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  // 10% is as lossy as the strict shadow allows: much beyond that, RTO
  // backoff can outlast the lease term and expiry discards dirty data.
  Scenario s;
  RunScenario(&s, 0.10);

  // Group attempts under their serve.rpc parent.
  std::map<uint64_t, std::vector<const TraceEvent*>> attempts_by_rpc;
  size_t rpc_count = 0;
  for (const TraceEvent& ev : s.events) {
    if (ev.kind != TraceEvent::Kind::kSpan) continue;
    if (ev.category == "serve.attempt") {
      ASSERT_NE(ev.parent_id, 0u);
      attempts_by_rpc[ev.parent_id].push_back(&ev);
    } else if (ev.category == "serve.rpc") {
      ++rpc_count;
    }
  }
  ASSERT_GT(rpc_count, 0u);
  EXPECT_EQ(attempts_by_rpc.size(), rpc_count);

  uint64_t expected_wasted = 0;
  uint64_t expected_attempts = 0;
  size_t multi_attempt_rpcs = 0;
  for (const auto& [rpc, attempts] : attempts_by_rpc) {
    size_t winners = 0;
    for (size_t i = 0; i < attempts.size(); ++i) {
      const std::string* gen = FindArg(*attempts[i], "rto_gen");
      ASSERT_NE(gen, nullptr);
      EXPECT_EQ(*gen, std::to_string(i));  // one span per send, in order
      const std::string* winner = FindArg(*attempts[i], "winner");
      ASSERT_NE(winner, nullptr);
      if (*winner == "1") ++winners;
    }
    EXPECT_EQ(winners, 1u) << "rpc span " << rpc;
    expected_attempts += attempts.size();
    if (attempts.size() > 1) {
      expected_wasted += attempts.size() - 1;
      ++multi_attempt_rpcs;
    }
  }
  EXPECT_GT(multi_attempt_rpcs, 0u) << "10% drops produced no retransmit?";

  // The counters are derived from the same spans, so they must agree
  // exactly: wasted = sends - 1 per RPC that needed more than one send.
  const obs::Counter* wasted =
      obs::Registry().FindCounter("logfs.serve.rpc.wasted_attempts");
  const obs::Counter* total = obs::Registry().FindCounter("logfs.serve.rpc.attempts");
  ASSERT_NE(wasted, nullptr);
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(wasted->Value(), expected_wasted);
  EXPECT_EQ(total->Value(), expected_attempts);
}

TEST_F(ServeTraceTest, ParkSpansLinkToTheBlockingTrace) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Scenario s;
  RunScenario(&s, 0.02);

  size_t parks = 0;
  size_t conflict_links_checked = 0;
  for (const TraceEvent& ev : s.events) {
    if (ev.kind != TraceEvent::Kind::kSpan || ev.category != "serve.park") continue;
    ++parks;
    for (uint64_t link : ev.links) {
      EXPECT_NE(link, 0u);
      EXPECT_NE(link, ev.trace_id) << "park span links to its own trace";
      if (ev.name != "conflict") continue;
      // A conflict park names the holder whose lease had to be recalled:
      // that trace must exist, be a completed client op, and belong to a
      // different client than the parked request.
      const obs::TraceTree* holder = obs::FindTree(s.trees, link);
      ASSERT_NE(holder, nullptr) << "link " << link << " resolves to no trace";
      const TraceEvent& holder_root = holder->nodes[holder->root].event;
      EXPECT_EQ(holder_root.category, "serve.op");
      const std::string* holder_client = FindArg(holder_root, "client");
      ASSERT_NE(holder_client, nullptr);
      const obs::TraceTree* parked = obs::FindTree(s.trees, ev.trace_id);
      ASSERT_NE(parked, nullptr);
      const std::string* parked_client =
          FindArg(parked->nodes[parked->root].event, "client");
      ASSERT_NE(parked_client, nullptr);
      EXPECT_NE(*holder_client, *parked_client)
          << "conflict park blocked by its own client";
      ++conflict_links_checked;
    }
  }
  EXPECT_GT(parks, 0u) << "write-shared hot files produced no parks?";
  EXPECT_GT(conflict_links_checked, 0u);
}

// --- shard-lock attribution under real thread contention -----------------

TEST_F(ServeTraceTest, ShardLockSpansNestUnderTheTraceRoot) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  SimClock clock;
  CpuModel cpu(&clock, 10.0);
  MemoryDisk disk(131072, &clock);
  LfsParams params;
  params.max_inodes = 4096;
  params.segment_size = 1 << 19;
  params.clean_start_segments = 3;
  params.clean_stop_segments = 5;
  params.reserved_segments = 2;
  ASSERT_TRUE(ShardedLfs::Format(&disk, params, 4).ok());
  auto mounted = ShardedLfs::Mount(&disk, &clock, &cpu);
  ASSERT_TRUE(mounted.ok());
  std::unique_ptr<ShardedLfs> fs = std::move(mounted).value();

  // Two shared hot files: every thread hammers both, so every op contends
  // on the same two shard mutexes.
  std::vector<InodeNum> files;
  for (int i = 0; i < 2; ++i) {
    auto created = fs->Create(1, "hot" + std::to_string(i), FileType::kRegular);
    ASSERT_TRUE(created.ok());
    files.push_back(*created);
  }

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 40;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::byte> buf(4096, std::byte{static_cast<unsigned char>(t)});
      for (int i = 0; i < kOpsPerThread; ++i) {
        obs::TraceRoot root(&clock, "test.op", i % 3 == 0 ? "read" : "write");
        root.AddArg("thread", std::to_string(t));
        InodeNum ino = files[i % files.size()];
        if (i % 3 == 0) {
          auto got = fs->Read(ino, 0, buf);
          EXPECT_TRUE(got.ok());
        } else {
          auto wrote = fs->Write(ino, uint64_t(i % 8) * 4096, buf);
          EXPECT_TRUE(wrote.ok());
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const std::vector<TraceEvent> events = obs::Tracer().Events();
  std::map<uint64_t, const TraceEvent*> span_by_id;
  for (const TraceEvent& ev : events) {
    if (ev.span_id != 0) span_by_id[ev.span_id] = &ev;
  }
  std::map<uint64_t, uint64_t> root_span_of_trace;
  for (const TraceEvent& ev : events) {
    if (ev.category == "test.op") root_span_of_trace[ev.trace_id] = ev.span_id;
  }
  EXPECT_EQ(root_span_of_trace.size(), size_t(kThreads * kOpsPerThread));

  size_t held = 0;
  size_t lfs_ops_under_lock = 0;
  for (const TraceEvent& ev : events) {
    if (ev.kind != TraceEvent::Kind::kSpan || ev.trace_id == 0) continue;
    if (ev.category == "shard.lock_held") {
      ++held;
      // The critical section hangs directly off the op's root span.
      auto root = root_span_of_trace.find(ev.trace_id);
      ASSERT_NE(root, root_span_of_trace.end());
      EXPECT_EQ(ev.parent_id, root->second);
      EXPECT_NE(FindArg(ev, "shard"), nullptr);
    } else if (ev.category == "shard.lock_wait") {
      auto root = root_span_of_trace.find(ev.trace_id);
      ASSERT_NE(root, root_span_of_trace.end());
      EXPECT_EQ(ev.parent_id, root->second);
    } else if (ev.category == "op") {
      // The LFS leaf span's parent must be the lock-held section it ran in.
      auto parent = span_by_id.find(ev.parent_id);
      ASSERT_NE(parent, span_by_id.end());
      EXPECT_EQ(parent->second->category, "shard.lock_held");
      ++lfs_ops_under_lock;
    }
  }
  EXPECT_EQ(held, size_t(kThreads * kOpsPerThread));
  EXPECT_GT(lfs_ops_under_lock, 0u);

  // Aggregate contention counters exist on a true multi-shard mount.
  // (wait_us is not asserted: a wait during which no other thread advanced
  // the sim clock rounds to zero and never creates the counter.)
  const obs::Counter* held_us = obs::Registry().FindCounter("logfs.shard.lock.held_us");
  ASSERT_NE(held_us, nullptr);
  EXPECT_GT(held_us->Value(), 0u);
}

// --- the runtime gate changes nothing but the trace ring ------------------

struct ParityResult {
  std::vector<std::byte> image;
  DiskStats disk_stats;
  uint64_t delivered = 0;
  uint64_t dropped = 0;
  uint64_t ops_completed = 0;
  size_t traced_spans = 0;
};

void RunParity(bool tracing_enabled, ParityResult* out) {
  obs::Registry().ResetAll();
  obs::Tracer().Clear();
  obs::SetTracingEnabled(tracing_enabled);
  Scenario s;
  RunScenario(&s, 0.10);
  obs::SetTracingEnabled(true);

  auto image = s.cluster->disk()->RawImage();
  out->image.assign(image.begin(), image.end());
  // Mask the two checkpoint regions (blocks 1 .. 1+2C-1): their tail slack
  // carries the flight-recorder black box, which embeds metric *values* —
  // and gated counters like logfs.serve.rpc.attempts legitimately read zero
  // with tracing off. Everything else on the device (superblock, every log
  // segment, all summaries/inodes/data) must be byte-identical.
  const LfsSuperblock& sb = s.cluster->fs()->superblock();
  const size_t cp_begin = sb.block_size;
  const size_t cp_end = cp_begin + size_t{2} * sb.checkpoint_region_blocks * sb.block_size;
  std::fill(out->image.begin() + cp_begin, out->image.begin() + cp_end, std::byte{0});
  out->disk_stats = s.cluster->disk()->stats();
  out->delivered = s.cluster->transport()->delivered();
  out->dropped = s.cluster->transport()->dropped();
  out->ops_completed = s.stats.ops_completed;
  out->traced_spans = 0;
  for (const TraceEvent& ev : s.events) {
    if (ev.trace_id != 0) ++out->traced_spans;
  }
}

TEST_F(ServeTraceTest, RuntimeDisabledRunIsByteIdentical) {
  ParityResult on;
  RunParity(/*tracing_enabled=*/true, &on);
  ParityResult off;
  RunParity(/*tracing_enabled=*/false, &off);

  // Tracing only records; it never branches the traced code. The disk
  // image, device accounting, wire traffic, and completed work must all be
  // identical with the recorder off.
  ASSERT_EQ(on.image.size(), off.image.size());
  EXPECT_EQ(std::memcmp(on.image.data(), off.image.data(), on.image.size()), 0);
  EXPECT_EQ(on.disk_stats.read_ops, off.disk_stats.read_ops);
  EXPECT_EQ(on.disk_stats.write_ops, off.disk_stats.write_ops);
  EXPECT_EQ(on.disk_stats.sectors_read, off.disk_stats.sectors_read);
  EXPECT_EQ(on.disk_stats.sectors_written, off.disk_stats.sectors_written);
  EXPECT_EQ(on.disk_stats.seeks, off.disk_stats.seeks);
  EXPECT_EQ(on.disk_stats.sync_writes, off.disk_stats.sync_writes);
  EXPECT_EQ(on.disk_stats.busy_seconds, off.disk_stats.busy_seconds);
  EXPECT_EQ(on.delivered, off.delivered);
  EXPECT_EQ(on.dropped, off.dropped);
  EXPECT_EQ(on.ops_completed, off.ops_completed);

  // And the gate actually gates: the enabled run traced, the disabled run
  // minted nothing.
  if (obs::kMetricsEnabled) {
    EXPECT_GT(on.traced_spans, 0u);
  }
  EXPECT_EQ(off.traced_spans, 0u);
}

}  // namespace
}  // namespace logfs
