// Media-fault tolerance tests at the file-system level:
//   * corruption sweep: flip a bit in every live data sector of a synced
//     volume and require the damage to be detected (scrubber + checker) and
//     never served to a reader as valid data;
//   * transient sweep: run a full workload over a disk with seeded random
//     transient errors behind ResilientDisk and require zero data loss;
//   * fault matrix: re-run a standard workload once per read-request index
//     with a single injected transient read error at that index;
//   * persistent checkpoint-write failure demotes the mount to read-only
//     (writes fail with kReadOnly, reads keep working);
//   * a failing device makes Sync() propagate the device error;
//   * quarantined segments survive remount and are never picked as cleaner
//     victims.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "src/disk/fault_disk.h"
#include "src/disk/memory_disk.h"
#include "src/disk/resilient_disk.h"
#include "src/lfs/lfs_check.h"
#include "src/lfs/lfs_segment.h"
#include "tests/fs_fixture.h"

namespace logfs {
namespace {

// One sector of one live data block, with enough context to read it back
// through the file system.
struct LiveSector {
  uint64_t sector = 0;
  int64_t block_index = 0;  // File block index (SummaryEntry::offset).
};

// Enumerates every sector of every live data block of inode `ino` that sits
// in a kDirty segment, by decoding the on-disk summary chains. Assumes an
// append-only history for `ino` (each kData entry written exactly once), so
// every matching entry is live.
std::vector<LiveSector> LiveDataSectors(const MemoryDisk& disk, const LfsFileSystem& fs,
                                        InodeNum ino) {
  std::vector<LiveSector> out;
  const LfsSuperblock& sb = fs.superblock();
  std::span<const std::byte> image = disk.RawImage();
  const uint32_t bps = sb.BlocksPerSegment();
  for (uint32_t seg = 0; seg < sb.num_segments; ++seg) {
    if (fs.usage().Get(seg).state != SegState::kDirty) {
      continue;
    }
    uint32_t offset = 0;
    while (offset + 1 < bps) {
      const uint64_t sum_sector = sb.SegmentBlockSector(seg, offset);
      std::span<const std::byte> sum = image.subspan(sum_sector * kSectorSize, sb.block_size);
      Result<SummaryPeek> peek = PeekSummary(sum, sb.block_size);
      if (!peek.ok() || offset + 1 + peek->nblocks > bps) {
        break;
      }
      std::span<const std::byte> content =
          image.subspan((sum_sector + sb.SectorsPerBlock()) * kSectorSize,
                        static_cast<size_t>(peek->nblocks) * sb.block_size);
      Result<SegmentSummary> summary = DecodeSummary(sum, content);
      if (!summary.ok()) {
        break;
      }
      for (size_t i = 0; i < summary->entries.size(); ++i) {
        const SummaryEntry& entry = summary->entries[i];
        if (entry.kind != BlockKind::kData || entry.ino != ino) {
          continue;
        }
        const uint64_t block_sector =
            sb.SegmentBlockSector(seg, offset + 1 + static_cast<uint32_t>(i));
        for (uint32_t s = 0; s < sb.SectorsPerBlock(); ++s) {
          out.push_back({block_sector + s, entry.offset});
        }
      }
      offset += 1 + peek->nblocks;
    }
  }
  return out;
}

// --- corruption sweep -------------------------------------------------------

TEST(LfsFaultTest, CorruptionSweepEveryLiveDataSectorIsDetected) {
  SimClock clock;
  MemoryDisk disk(131072, &clock);
  ASSERT_TRUE(LfsFileSystem::Format(&disk, LfsInstance::DefaultParams()).ok());
  // Append-only file spanning multiple segments, so most of it lands in
  // kDirty (scrubbable) segments.
  constexpr size_t kFileBytes = 300 * 4096;
  const std::vector<std::byte> payload = TestBytes(kFileBytes, 77);
  InodeNum ino = 0;
  std::vector<LiveSector> targets;
  {
    auto fs = LfsFileSystem::Mount(&disk, &clock, nullptr);
    ASSERT_TRUE(fs.ok());
    PathFs paths(fs->get());
    ASSERT_TRUE(paths.WriteFile("/big", payload).ok());
    ASSERT_TRUE((*fs)->Sync().ok());
    auto resolved = paths.Resolve("/big");
    ASSERT_TRUE(resolved.ok());
    ino = *resolved;
    targets = LiveDataSectors(disk, **fs, ino);
  }
  ASSERT_GT(targets.size(), 1000u);  // Multiple dirty segments' worth.
  const std::vector<std::byte> snapshot(disk.RawImage().begin(), disk.RawImage().end());

  const uint32_t block_size = 4096;
  for (size_t idx = 0; idx < targets.size(); ++idx) {
    const LiveSector& target = targets[idx];
    std::copy(snapshot.begin(), snapshot.end(), disk.MutableRawImage().begin());
    // Vary the flipped bit and byte position across the sweep.
    const size_t byte = (idx * 131) % kSectorSize;
    disk.MutableRawImage()[target.sector * kSectorSize + byte] ^=
        static_cast<std::byte>(1u << (idx % 8));

    auto fs = LfsFileSystem::Mount(&disk, &clock, nullptr);
    ASSERT_TRUE(fs.ok()) << "mount failed at sweep index " << idx;

    // The scrubber must detect the corruption and quarantine the segment.
    auto report = (*fs)->Scrub((*fs)->superblock().num_segments);
    ASSERT_TRUE(report.ok()) << "scrub failed at sweep index " << idx;
    EXPECT_GE(report->checksum_failures, 1u) << "undetected at sweep index " << idx;
    EXPECT_GE(report->segments_quarantined, 1u) << "not quarantined at sweep index " << idx;

    // The damaged block is never served as valid data: the read either
    // fails the end-to-end checksum or (impossible here, but the contract)
    // returns the exact original bytes.
    std::vector<std::byte> out(block_size);
    auto got =
        (*fs)->Read(ino, static_cast<uint64_t>(target.block_index) * block_size, out);
    if (got.ok()) {
      EXPECT_TRUE(std::equal(out.begin(), out.end(),
                             payload.begin() + target.block_index * block_size))
          << "wrong bytes served at sweep index " << idx;
    } else {
      EXPECT_EQ(got.status().code(), ErrorCode::kCorrupted)
          << "unexpected error at sweep index " << idx;
    }

    // Periodically run the full offline checker too (it is the slow path).
    if (idx % 64 == 0) {
      LfsChecker checker(fs->get());
      auto check = checker.Check(/*verify_data=*/false);
      ASSERT_TRUE(check.ok());
      EXPECT_GE(check->checksum_failures + check->quarantined_segments, 1u)
          << "checker blind at sweep index " << idx;
    }
  }
}

// --- transient sweep --------------------------------------------------------

TEST(LfsFaultTest, SeededTransientErrorsCauseZeroDataLoss) {
  SimClock clock;
  MemoryDisk inner(65536, &clock);
  FaultInjectingDisk fault(&inner);
  ResilientDisk disk(&fault, &clock);
  fault.SetTransientErrorRates(/*seed=*/20260805, /*read_p=*/0.02, /*write_p=*/0.02);

  ASSERT_TRUE(LfsFileSystem::Format(&disk, LfsInstance::DefaultParams()).ok());
  constexpr int kFiles = 8;
  constexpr size_t kBytesPerFile = 50000;
  {
    auto fs = LfsFileSystem::Mount(&disk, &clock, nullptr);
    ASSERT_TRUE(fs.ok());
    PathFs paths(fs->get());
    for (int i = 0; i < kFiles; ++i) {
      ASSERT_TRUE(
          paths.WriteFile("/f" + std::to_string(i), TestBytes(kBytesPerFile, i)).ok());
    }
    ASSERT_TRUE((*fs)->Sync().ok());
    // Overwrite half the files so cleaning has dead blocks to reclaim, then
    // run the cleaner under injected faults too.
    for (int i = 0; i < kFiles; i += 2) {
      ASSERT_TRUE(
          paths.WriteFile("/f" + std::to_string(i), TestBytes(kBytesPerFile, 1000 + i)).ok());
    }
    ASSERT_TRUE((*fs)->Sync().ok());
    ASSERT_TRUE((*fs)->CleanNow(8).ok());
    ASSERT_TRUE((*fs)->Sync().ok());
  }
  // Remount and read everything back, still under injected faults.
  auto fs = LfsFileSystem::Mount(&disk, &clock, nullptr);
  ASSERT_TRUE(fs.ok());
  PathFs paths(fs->get());
  for (int i = 0; i < kFiles; ++i) {
    const uint64_t seed = (i % 2 == 0) ? 1000 + i : i;
    auto back = paths.ReadFile("/f" + std::to_string(i));
    ASSERT_TRUE(back.ok()) << "file " << i;
    EXPECT_EQ(*back, TestBytes(kBytesPerFile, seed)) << "file " << i;
  }
  // The fault layer really did fire, and the retry layer absorbed it all.
  EXPECT_GT(fault.transient_read_errors_injected() + fault.transient_write_errors_injected(),
            0u);
  EXPECT_GT(disk.retries(), 0u);
  EXPECT_GT(disk.recovered(), 0u);
  EXPECT_EQ(disk.exhausted(), 0u);
}

// --- fault matrix -----------------------------------------------------------

struct MatrixOutcome {
  bool ok = false;
  uint64_t reads_issued = 0;
  std::vector<std::byte> readback;  // Concatenated contents of all files.
};

// Standard workload: format, mount, write three files, sync, overwrite one
// (dead blocks for the cleaner), clean, remount, read everything back.
// Optionally injects one transient read error at request index `fail_read`,
// behind ResilientDisk.
MatrixOutcome RunStandardWorkload(std::optional<uint64_t> fail_read) {
  MatrixOutcome outcome;
  SimClock clock;
  MemoryDisk inner(65536, &clock);
  FaultInjectingDisk fault(&inner);
  ResilientDisk disk(&fault, &clock);
  if (fail_read.has_value()) {
    fault.FailNthRead(*fail_read);
  }
  if (!LfsFileSystem::Format(&disk, LfsInstance::DefaultParams()).ok()) {
    return outcome;
  }
  constexpr int kFiles = 3;
  constexpr size_t kBytesPerFile = 20000;
  {
    auto fs = LfsFileSystem::Mount(&disk, &clock, nullptr);
    if (!fs.ok()) {
      return outcome;
    }
    PathFs paths(fs->get());
    for (int i = 0; i < kFiles; ++i) {
      if (!paths.WriteFile("/m" + std::to_string(i), TestBytes(kBytesPerFile, 100 + i)).ok()) {
        return outcome;
      }
    }
    if (!(*fs)->Sync().ok()) {
      return outcome;
    }
    if (!paths.WriteFile("/m0", TestBytes(kBytesPerFile, 200)).ok()) {
      return outcome;
    }
    if (!(*fs)->Sync().ok() || !(*fs)->CleanNow(4).ok() || !(*fs)->Sync().ok()) {
      return outcome;
    }
  }
  auto fs = LfsFileSystem::Mount(&disk, &clock, nullptr);
  if (!fs.ok()) {
    return outcome;
  }
  PathFs paths(fs->get());
  for (int i = 0; i < kFiles; ++i) {
    auto back = paths.ReadFile("/m" + std::to_string(i));
    if (!back.ok()) {
      return outcome;
    }
    outcome.readback.insert(outcome.readback.end(), back->begin(), back->end());
  }
  outcome.reads_issued = fault.read_requests_seen();
  outcome.ok = true;
  return outcome;
}

TEST(LfsFaultTest, TransientReadFaultMatrixCompletesAtEveryIndex) {
  const MatrixOutcome clean = RunStandardWorkload(std::nullopt);
  ASSERT_TRUE(clean.ok);
  ASSERT_GT(clean.reads_issued, 0u);
  for (uint64_t i = 0; i < clean.reads_issued; ++i) {
    const MatrixOutcome faulted = RunStandardWorkload(i);
    ASSERT_TRUE(faulted.ok) << "workload failed with a read fault at index " << i;
    EXPECT_EQ(faulted.readback, clean.readback)
        << "data differs with a read fault at index " << i;
  }
}

// --- read-only demotion -----------------------------------------------------

TEST(LfsFaultTest, PersistentCheckpointWriteFailureDemotesToReadOnly) {
  SimClock clock;
  MemoryDisk inner(65536, &clock);
  FaultInjectingDisk fault(&inner);
  ASSERT_TRUE(LfsFileSystem::Format(&inner, LfsInstance::DefaultParams()).ok());
  auto fs = LfsFileSystem::Mount(&fault, &clock, nullptr);
  ASSERT_TRUE(fs.ok());
  PathFs paths(fs->get());
  const std::vector<std::byte> first = TestBytes(30000, 9);
  ASSERT_TRUE(paths.WriteFile("/first", first).ok());
  ASSERT_TRUE((*fs)->Sync().ok());

  // Both checkpoint regions (blocks [1, 1 + 2C)) go write-bad: the next
  // checkpoint has nowhere persistent to land.
  const LfsSuperblock& sb = (*fs)->superblock();
  const uint64_t region_start = sb.SectorsPerBlock();
  const uint64_t region_sectors =
      2ull * sb.checkpoint_region_blocks * sb.SectorsPerBlock();
  fault.MarkBadSectors(region_start, region_sectors,
                       FaultInjectingDisk::BadSectorMode::kWrite);

  ASSERT_TRUE(paths.WriteFile("/second", TestBytes(1000, 10)).ok());
  Status sync = (*fs)->Sync();
  EXPECT_EQ(sync.code(), ErrorCode::kMediaError);
  EXPECT_TRUE((*fs)->read_only());

  // Mutations now fail with the distinct read-only status...
  std::vector<std::byte> data(100);
  EXPECT_EQ((*fs)->Write(kRootIno + 1, 0, data).status().code(), ErrorCode::kReadOnly);
  EXPECT_EQ((*fs)->Create(kRootIno, "nope", FileType::kRegular).status().code(),
            ErrorCode::kReadOnly);
  EXPECT_EQ(paths.WriteFile("/third", TestBytes(100, 11)).code(), ErrorCode::kReadOnly);

  // ...but reads keep working (the read path is untouched).
  auto back = paths.ReadFile("/first");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, first);
  EXPECT_TRUE(paths.Exists("/first"));
}

// --- Sync error propagation -------------------------------------------------

TEST(LfsFaultTest, SyncPropagatesDeviceWriteFailure) {
  SimClock clock;
  MemoryDisk inner(65536, &clock);
  FaultInjectingDisk fault(&inner);
  ASSERT_TRUE(LfsFileSystem::Format(&inner, LfsInstance::DefaultParams()).ok());
  auto fs = LfsFileSystem::Mount(&fault, &clock, nullptr);
  ASSERT_TRUE(fs.ok());
  PathFs paths(fs->get());
  ASSERT_TRUE(paths.WriteFile("/doomed", TestBytes(20000, 12)).ok());
  // The whole segment area refuses writes: flushing the dirty data must
  // surface the device error through Sync, not swallow it.
  const LfsSuperblock& sb = (*fs)->superblock();
  fault.MarkBadSectors(sb.first_segment_sector,
                       static_cast<uint64_t>(sb.num_segments) * sb.SectorsPerSegment(),
                       FaultInjectingDisk::BadSectorMode::kWrite);
  Status sync = (*fs)->Sync();
  EXPECT_EQ(sync.code(), ErrorCode::kMediaError);
  // A log-flush failure alone does not demote the mount: the checkpoint
  // regions are still writable, so a later retry could still succeed.
  EXPECT_FALSE((*fs)->read_only());
}

// --- quarantine lifecycle ---------------------------------------------------

TEST(LfsFaultTest, QuarantinePersistsAcrossRemountAndCleanerAvoidsIt) {
  SimClock clock;
  MemoryDisk disk(131072, &clock);
  ASSERT_TRUE(LfsFileSystem::Format(&disk, LfsInstance::DefaultParams()).ok());
  constexpr size_t kFileBytes = 300 * 4096;
  const std::vector<std::byte> payload = TestBytes(kFileBytes, 21);
  uint32_t quarantined_seg = 0;
  {
    auto fs = LfsFileSystem::Mount(&disk, &clock, nullptr);
    ASSERT_TRUE(fs.ok());
    PathFs paths(fs->get());
    ASSERT_TRUE(paths.WriteFile("/big", payload).ok());
    ASSERT_TRUE((*fs)->Sync().ok());
    auto ino = paths.Resolve("/big");
    ASSERT_TRUE(ino.ok());
    std::vector<LiveSector> targets = LiveDataSectors(disk, **fs, *ino);
    ASSERT_FALSE(targets.empty());
    disk.MutableRawImage()[targets.front().sector * kSectorSize + 7] ^= std::byte{0x10};

    auto report = (*fs)->Scrub((*fs)->superblock().num_segments);
    ASSERT_TRUE(report.ok());
    ASSERT_GE(report->segments_quarantined, 1u);
    ASSERT_EQ((*fs)->QuarantinedSegmentCount(), 1u);
    const auto& usage = (*fs)->usage();
    for (uint32_t seg = 0; seg < (*fs)->superblock().num_segments; ++seg) {
      if (usage.Get(seg).state == SegState::kQuarantined) {
        quarantined_seg = seg;
      }
    }
    ASSERT_TRUE((*fs)->Sync().ok());
  }

  // Remount: the quarantine is durable state, not an in-memory flag.
  auto fs = LfsFileSystem::Mount(&disk, &clock, nullptr);
  ASSERT_TRUE(fs.ok());
  EXPECT_EQ((*fs)->QuarantinedSegmentCount(), 1u);
  EXPECT_EQ((*fs)->usage().Get(quarantined_seg).state, SegState::kQuarantined);
  // The heat fields are memory-only: they ride alongside the durable state
  // in SegUsage but never reach the encoded checkpoint block, so a remount
  // reads the quarantine back with a cold heat estimate.
  EXPECT_EQ((*fs)->usage().Get(quarantined_seg).heat_interval_ewma, 0.0);
  EXPECT_EQ((*fs)->usage().Get(quarantined_seg).last_overwrite_at, 0.0);

  // The cleaner must never propose a quarantined segment as a victim.
  const auto victims = (*fs)->usage().PickVictims(
      (*fs)->superblock().num_segments, (*fs)->superblock().segment_size);
  EXPECT_EQ(std::count(victims.begin(), victims.end(), quarantined_seg), 0);
  // And an explicit cleaning pass leaves it untouched.
  auto cleaned = (*fs)->CleanNow((*fs)->superblock().num_segments);
  ASSERT_TRUE(cleaned.ok());
  EXPECT_EQ((*fs)->usage().Get(quarantined_seg).state, SegState::kQuarantined);
}

}  // namespace
}  // namespace logfs
