// Tests for the workload layer: testbeds, the figure benchmarks (scaled
// down), trace parse/format/replay round trips, and the report printer.
#include <gtest/gtest.h>

#include <sstream>

#include "src/workload/benchmarks.h"
#include "src/workload/report.h"
#include "src/workload/testbed.h"
#include "src/workload/trace.h"

namespace logfs {
namespace {

TestbedParams SmallParams() {
  TestbedParams params;
  params.disk_bytes = 64ull << 20;
  params.lfs.max_inodes = 8192;
  return params;
}

TEST(TestbedTest, LfsAndFfsTestbedsMount) {
  auto lfs = MakeLfsTestbed(SmallParams());
  ASSERT_TRUE(lfs.ok());
  EXPECT_EQ(lfs->fs->name(), "LFS");
  auto ffs = MakeFfsTestbed(SmallParams());
  ASSERT_TRUE(ffs.ok());
  EXPECT_EQ(ffs->fs->name(), "FFS");
  // Stats were reset after mount.
  EXPECT_EQ(lfs->disk->stats().write_ops, 0u);
}

TEST(SmallFileBenchmarkTest, RunsAndReportsAllPhases) {
  auto bed = MakeLfsTestbed(SmallParams());
  ASSERT_TRUE(bed.ok());
  SmallFileParams params;
  params.num_files = 200;
  params.file_size = 1024;
  auto phases = RunSmallFileBenchmark(*bed, params);
  ASSERT_TRUE(phases.ok());
  ASSERT_EQ(phases->size(), 3u);
  EXPECT_EQ((*phases)[0].name, "create");
  EXPECT_EQ((*phases)[1].name, "read");
  EXPECT_EQ((*phases)[2].name, "delete");
  for (const PhaseResult& phase : *phases) {
    EXPECT_EQ(phase.operations, 200u);
    EXPECT_GT(phase.seconds, 0.0);
    EXPECT_GT(phase.OpsPerSecond(), 0.0);
  }
}

TEST(SmallFileBenchmarkTest, LfsCreatesFasterThanFfs) {
  SmallFileParams params;
  params.num_files = 300;
  auto lfs_bed = MakeLfsTestbed(SmallParams());
  auto ffs_bed = MakeFfsTestbed(SmallParams());
  ASSERT_TRUE(lfs_bed.ok() && ffs_bed.ok());
  auto lfs = RunSmallFileBenchmark(*lfs_bed, params);
  auto ffs = RunSmallFileBenchmark(*ffs_bed, params);
  ASSERT_TRUE(lfs.ok() && ffs.ok());
  // The paper's headline claim, at reduced scale: several-fold faster
  // creation and deletion.
  EXPECT_GT((*lfs)[0].OpsPerSecond(), 3.0 * (*ffs)[0].OpsPerSecond());
  EXPECT_GT((*lfs)[2].OpsPerSecond(), 3.0 * (*ffs)[2].OpsPerSecond());
  // Reads at least competitive.
  EXPECT_GT((*lfs)[1].OpsPerSecond(), 0.8 * (*ffs)[1].OpsPerSecond());
}

TEST(LargeFileBenchmarkTest, FivePhasesAndPaperShape) {
  LargeFileParams params;
  params.file_bytes = 8 << 20;  // Scaled down.
  auto lfs_bed = MakeLfsTestbed(SmallParams());
  auto ffs_bed = MakeFfsTestbed(SmallParams());
  ASSERT_TRUE(lfs_bed.ok() && ffs_bed.ok());
  auto lfs = RunLargeFileBenchmark(*lfs_bed, params);
  auto ffs = RunLargeFileBenchmark(*ffs_bed, params);
  ASSERT_TRUE(lfs.ok() && ffs.ok());
  ASSERT_EQ(lfs->size(), 5u);
  // LFS random writes >> FFS random writes (the headline of Figure 4).
  EXPECT_GT((*lfs)[2].KBytesPerSecond(), 1.5 * (*ffs)[2].KBytesPerSecond());
  // FFS wins the sequential reread after random updates.
  EXPECT_GT((*ffs)[4].KBytesPerSecond(), (*lfs)[4].KBytesPerSecond());
  // LFS write bandwidth roughly pattern-independent (within 2x).
  EXPECT_GT((*lfs)[2].KBytesPerSecond(), (*lfs)[0].KBytesPerSecond() / 2);
}

TEST(CleaningBenchmarkTest, RateFallsWithUtilization) {
  TestbedParams params = SmallParams();
  params.lfs_options.auto_clean = false;
  CleaningRateParams low;
  low.utilization = 0.1;
  low.fill_bytes = 24 << 20;
  CleaningRateParams high = low;
  high.utilization = 0.8;

  auto bed_low = MakeLfsTestbed(params);
  auto bed_high = MakeLfsTestbed(params);
  ASSERT_TRUE(bed_low.ok() && bed_high.ok());
  auto rate_low = RunCleaningRateBenchmark(*bed_low, low);
  auto rate_high = RunCleaningRateBenchmark(*bed_high, high);
  ASSERT_TRUE(rate_low.ok()) << rate_low.status().ToString();
  ASSERT_TRUE(rate_high.ok()) << rate_high.status().ToString();
  EXPECT_GT(rate_low->segments_cleaned, 0u);
  EXPECT_GT(rate_high->segments_cleaned, 0u);
  // Figure 5's shape at two points.
  EXPECT_GT(rate_low->CleanKBytesPerSecond(), 2.0 * rate_high->CleanKBytesPerSecond());
  EXPECT_LT(rate_low->utilization_measured, rate_high->utilization_measured);
}

TEST(CreateDeleteLatencyTest, FfsIsDiskBoundLfsIsCpuBound) {
  TestbedParams slow = SmallParams();
  slow.mips = 1.0;
  TestbedParams fast = SmallParams();
  fast.mips = 16.0;
  auto run = [](TestbedParams params, bool lfs) {
    auto bed = lfs ? MakeLfsTestbed(params) : MakeFfsTestbed(params);
    auto result = RunCreateDeleteLatency(*bed, 200);
    return result->seconds_per_pair;
  };
  const double ffs_slow = run(slow, false);
  const double ffs_fast = run(fast, false);
  const double lfs_slow = run(slow, true);
  const double lfs_fast = run(fast, true);
  // FFS: 16x CPU gives < 2x speedup (disk-bound).
  EXPECT_LT(ffs_slow / ffs_fast, 2.0);
  // LFS: 16x CPU gives > 6x speedup (CPU-bound).
  EXPECT_GT(lfs_slow / lfs_fast, 6.0);
}

TEST(OfficeWorkloadTest, RunsOnBothFileSystems) {
  OfficeWorkloadParams params;
  params.operations = 300;
  auto lfs_bed = MakeLfsTestbed(SmallParams());
  auto ffs_bed = MakeFfsTestbed(SmallParams());
  ASSERT_TRUE(lfs_bed.ok() && ffs_bed.ok());
  auto lfs = RunOfficeWorkload(*lfs_bed, params);
  ASSERT_TRUE(lfs.ok()) << lfs.status().ToString();
  auto ffs = RunOfficeWorkload(*ffs_bed, params);
  ASSERT_TRUE(ffs.ok()) << ffs.status().ToString();
  EXPECT_EQ(lfs->operations, 300u);
  EXPECT_GT(lfs->files_created, 0u);
  EXPECT_GT(lfs->bytes_written, 0u);
}

TEST(OfficeFileSizeTest, DistributionIsMostlySmall) {
  Rng rng(5);
  int small = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const size_t size = DrawOfficeFileSize(rng);
    EXPECT_GE(size, 256u);
    EXPECT_LE(size, 1u << 20);
    if (size <= 8192) {
      ++small;
    }
  }
  // "A large number of relatively small files (less than 8 kilobytes)".
  EXPECT_GT(small, n * 7 / 10);
}

TEST(TraceTest, ParseFormatRoundTrip) {
  const std::string text =
      "# a comment\n"
      "mkdir /a\n"
      "create /a/f\n"
      "write /a/f 0 100 7\n"
      "read /a/f 0 100\n"
      "trunc /a/f 50\n"
      "rename /a/f /a/g\n"
      "fsync /a/g\n"
      "sync\n"
      "idle 2.5\n"
      "unlink /a/g\n"
      "rmdir /a\n";
  auto ops = ParseTrace(text);
  ASSERT_TRUE(ops.ok());
  ASSERT_EQ(ops->size(), 11u);
  EXPECT_EQ((*ops)[0].kind, TraceOp::Kind::kMkdir);
  EXPECT_EQ((*ops)[2].kind, TraceOp::Kind::kWrite);
  EXPECT_EQ((*ops)[2].length, 100u);
  EXPECT_EQ((*ops)[2].seed, 7u);
  EXPECT_EQ((*ops)[5].path2, "/a/g");
  EXPECT_DOUBLE_EQ((*ops)[8].seconds, 2.5);
  // Round trip through the formatter.
  auto again = ParseTrace(FormatTrace(*ops));
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->size(), ops->size());
  for (size_t i = 0; i < ops->size(); ++i) {
    EXPECT_EQ((*again)[i].kind, (*ops)[i].kind) << i;
    EXPECT_EQ((*again)[i].path, (*ops)[i].path) << i;
  }
}

TEST(TraceTest, ParseErrorsAreReported) {
  EXPECT_FALSE(ParseTrace("frobnicate /x\n").ok());
  EXPECT_FALSE(ParseTrace("write /x\n").ok());
  EXPECT_FALSE(ParseTrace("rename /only-one\n").ok());
  EXPECT_TRUE(ParseTrace("\n\n# only comments\n").ok());
}

TEST(TraceTest, ReplayProducesIdenticalTreesOnBothFs) {
  auto trace = GenerateOfficeTrace(400, /*seed=*/9);
  auto lfs_bed = MakeLfsTestbed(SmallParams());
  auto ffs_bed = MakeFfsTestbed(SmallParams());
  ASSERT_TRUE(lfs_bed.ok() && ffs_bed.ok());
  auto lfs = ReplayTrace(*lfs_bed, trace);
  ASSERT_TRUE(lfs.ok()) << lfs.status().ToString();
  auto ffs = ReplayTrace(*ffs_bed, trace);
  ASSERT_TRUE(ffs.ok()) << ffs.status().ToString();
  EXPECT_EQ(lfs->operations, ffs->operations);
  EXPECT_EQ(lfs->bytes_written, ffs->bytes_written);
  EXPECT_EQ(lfs->bytes_read, ffs->bytes_read);
  // Same resulting directory tree.
  auto lfs_entries = lfs_bed->paths->ReadDir("/work");
  auto ffs_entries = ffs_bed->paths->ReadDir("/work");
  ASSERT_TRUE(lfs_entries.ok() && ffs_entries.ok());
  EXPECT_EQ(lfs_entries->size(), ffs_entries->size());
  // And LFS finished the identical stream at least as fast.
  EXPECT_LE(lfs->seconds, ffs->seconds * 1.05);
}

TEST(ReportTest, TableAlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"a-much-longer-name", "23456"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(TablePrinter::Fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Int(42), "42");
}

}  // namespace
}  // namespace logfs
