// Segment-cleaner tests: liveness identification, compaction, greedy victim
// selection, checkpoint commit of cleaned segments, invariants under load.
#include <gtest/gtest.h>

#include "src/lfs/lfs_check.h"
#include "tests/fs_fixture.h"

namespace logfs {
namespace {

Status ExpectClean(LfsFileSystem* fs) {
  LfsChecker checker(fs);
  ASSIGN_OR_RETURN(LfsCheckReport report, checker.Check());
  if (!report.ok()) {
    return CorruptedError(report.Summary());
  }
  return OkStatus();
}

// Fills the log with 1 KB files, then deletes a fraction, leaving
// fragmented segments — the paper's Figure 5 setup.
Status MakeFragmentation(LfsInstance& inst, int total_files, int delete_every_nth) {
  for (int i = 0; i < total_files; ++i) {
    RETURN_IF_ERROR(
        inst.paths->WriteFile("/frag" + std::to_string(i), TestBytes(1024, i)));
    if (i % 64 == 63) {
      RETURN_IF_ERROR(inst.fs->Sync());
    }
  }
  RETURN_IF_ERROR(inst.fs->Sync());
  for (int i = 0; i < total_files; i += delete_every_nth) {
    RETURN_IF_ERROR(inst.paths->Unlink("/frag" + std::to_string(i)));
  }
  return inst.fs->Sync();
}

TEST(LfsCleanerTest, CleaningFullyDeadSegmentsIsFree) {
  LfsInstance inst;
  // Create and delete everything: segments become fully dead.
  ASSERT_TRUE(MakeFragmentation(inst, 2000, 1).ok());
  const uint32_t clean_before = inst.fs->CleanSegmentCount();
  auto cleaned = inst.fs->CleanNow(64);
  ASSERT_TRUE(cleaned.ok());
  EXPECT_GT(*cleaned, 0u);
  EXPECT_GT(inst.fs->CleanSegmentCount(), clean_before);
  // Nothing live was copied out of fully dead data segments beyond metadata.
  EXPECT_TRUE(ExpectClean(inst.fs.get()).ok());
}

TEST(LfsCleanerTest, LiveDataSurvivesCleaning) {
  LfsInstance inst;
  ASSERT_TRUE(MakeFragmentation(inst, 1500, 2).ok());  // Half the files survive.
  auto cleaned = inst.fs->CleanNow(32);
  ASSERT_TRUE(cleaned.ok());
  EXPECT_GT(*cleaned, 0u);
  EXPECT_GT(inst.fs->cleaner_stats().live_blocks_copied, 0u);
  // Every surviving file is intact.
  for (int i = 1; i < 1500; i += 2) {
    auto back = inst.paths->ReadFile("/frag" + std::to_string(i));
    ASSERT_TRUE(back.ok()) << i;
    ASSERT_EQ(*back, TestBytes(1024, i)) << i;
  }
  EXPECT_TRUE(ExpectClean(inst.fs.get()).ok());
}

TEST(LfsCleanerTest, CleanedSegmentsHaveZeroLiveBytes) {
  LfsInstance inst;
  ASSERT_TRUE(MakeFragmentation(inst, 1000, 3).ok());
  auto cleaned = inst.fs->CleanNow(16);
  ASSERT_TRUE(cleaned.ok());
  for (uint32_t seg = 0; seg < inst.fs->superblock().num_segments; ++seg) {
    if (inst.fs->usage().Get(seg).state == SegState::kClean) {
      EXPECT_EQ(inst.fs->usage().Get(seg).live_bytes, 0u) << "segment " << seg;
    }
  }
}

TEST(LfsCleanerTest, GreedyPolicyPicksLeastUtilizedFirst) {
  LfsInstance inst;
  ASSERT_TRUE(MakeFragmentation(inst, 1500, 2).ok());
  // Find the least-utilized dirty segment before cleaning.
  uint32_t min_live = UINT32_MAX;
  for (uint32_t seg = 0; seg < inst.fs->superblock().num_segments; ++seg) {
    const SegUsage& usage = inst.fs->usage().Get(seg);
    if (usage.state == SegState::kDirty) {
      min_live = std::min(min_live, usage.live_bytes);
    }
  }
  auto cleaned = inst.fs->CleanNow(1);
  ASSERT_TRUE(cleaned.ok());
  ASSERT_EQ(*cleaned, 1u);
  // After cleaning one victim, no remaining dirty segment can be *less*
  // utilized than the victim was (greedy picked the minimum).
  for (uint32_t seg = 0; seg < inst.fs->superblock().num_segments; ++seg) {
    const SegUsage& usage = inst.fs->usage().Get(seg);
    if (usage.state == SegState::kDirty) {
      EXPECT_GE(usage.live_bytes + 4096, min_live);
    }
  }
}

TEST(LfsCleanerTest, CleaningIsIdempotentWhenNothingToClean) {
  LfsInstance inst;
  ASSERT_TRUE(inst.fs->Sync().ok());
  auto cleaned = inst.fs->CleanNow(8);
  ASSERT_TRUE(cleaned.ok());
  // A freshly formatted system has at most metadata-only dirty segments.
  auto again = inst.fs->CleanNow(8);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(ExpectClean(inst.fs.get()).ok());
}

TEST(LfsCleanerTest, AutoCleanTriggersViaTick) {
  LfsParams params = LfsInstance::DefaultParams();
  params.clean_start_segments = 16;
  params.clean_stop_segments = 20;
  // ~40 segments total, so the threshold of 16 clean segments is reachable.
  LfsInstance inst(40 * 2048 + 8192, params);
  ASSERT_TRUE(MakeFragmentation(inst, 2000, 2).ok());
  // Burn down clean segments until Tick's threshold fires. Advancing the
  // clock past the write-back age makes each round actually hit the disk.
  const uint64_t passes_before = inst.fs->cleaner_stats().passes;
  for (int i = 0; i < 120 && inst.fs->cleaner_stats().passes == passes_before; ++i) {
    // Overwrite a rotating set of 30 files so dead space accumulates and
    // the log keeps consuming clean segments.
    ASSERT_TRUE(
        inst.paths->WriteFile("/more" + std::to_string(i % 30), TestBytes(524288, i)).ok());
    inst.clock->Advance(31.0);
    ASSERT_TRUE(inst.fs->Tick().ok());
  }
  EXPECT_GT(inst.fs->cleaner_stats().passes, passes_before);
  EXPECT_TRUE(ExpectClean(inst.fs.get()).ok());
}

TEST(LfsCleanerTest, RepeatedOverwriteChurnStaysConsistent) {
  // Steady-state churn on a small disk forces many cleaning passes.
  LfsParams params = LfsInstance::DefaultParams();
  LfsInstance inst(32 * 2048 + 4096, params);  // ~16 MB usable.
  for (int round = 0; round < 30; ++round) {
    for (int f = 0; f < 8; ++f) {
      ASSERT_TRUE(inst.paths
                      ->WriteFile("/churn" + std::to_string(f),
                                  TestBytes(256 * 1024, round * 10 + f))
                      .ok())
          << "round " << round << " file " << f;
    }
    inst.clock->Advance(31.0);  // Let the age-based write-back fire.
    ASSERT_TRUE(inst.fs->Tick().ok());
  }
  EXPECT_GT(inst.fs->cleaner_stats().segments_cleaned, 0u);
  for (int f = 0; f < 8; ++f) {
    auto back = inst.paths->ReadFile("/churn" + std::to_string(f));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, TestBytes(256 * 1024, 29 * 10 + f));
  }
  EXPECT_TRUE(ExpectClean(inst.fs.get()).ok());
}

TEST(LfsCleanerTest, StatsAccumulate) {
  LfsInstance inst;
  ASSERT_TRUE(MakeFragmentation(inst, 1000, 2).ok());
  auto cleaned = inst.fs->CleanNow(8);
  ASSERT_TRUE(cleaned.ok());
  const auto& stats = inst.fs->cleaner_stats();
  EXPECT_EQ(stats.passes, 1u);
  EXPECT_EQ(stats.segments_cleaned, *cleaned);
  EXPECT_EQ(stats.segment_reads, *cleaned);
  EXPECT_GT(stats.blocks_examined, 0u);
}

}  // namespace
}  // namespace logfs
